//! Item-based k-nearest-neighbour collaborative filtering.
//!
//! The Sarwar-style predictor behind "You might also like… Oliver Twist"
//! (survey Section 4.3): the target item is scored from the user's own
//! ratings of *similar items*, which doubles as evidence — the anchors are
//! the explanation.
//!
//! Item–item similarities are precomputed by [`ItemKnn::fit`]; call
//! [`ItemKnn::refit`] after bulk rating changes. (User-based kNN stays
//! lazy; item-based is the one that profits from caching because the
//! item space is smaller and more stable.)

use crate::neighbors::top_k_by;
use crate::recommender::{Ctx, ItemAnchor, ModelEvidence, Recommender};
use crate::similarity::{self, Similarity};
use exrec_types::{Confidence, Error, ItemId, Prediction, Result, UserId};

/// Configuration for [`ItemKnn`].
#[derive(Debug, Clone, PartialEq)]
pub struct ItemKnnConfig {
    /// Number of anchor items per prediction.
    pub k: usize,
    /// Similarity measure over co-rater vectors.
    pub similarity: Similarity,
    /// Minimum common raters for a similarity to be stored.
    pub min_overlap: usize,
    /// Keep only similarities above this threshold.
    pub min_similarity: f64,
}

impl Default for ItemKnnConfig {
    fn default() -> Self {
        Self {
            k: 10,
            similarity: Similarity::AdjustedCosine,
            min_overlap: 2,
            min_similarity: 0.0,
        }
    }
}

/// Item-based kNN with a precomputed similarity table.
#[derive(Debug, Clone)]
pub struct ItemKnn {
    config: ItemKnnConfig,
    /// `sims[i]` = `(other_item, similarity)` sorted by descending
    /// similarity, thresholded and truncated to a working set.
    sims: Vec<Vec<(ItemId, f64)>>,
}

impl ItemKnn {
    /// Fits the item–item similarity table from the current ratings.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidConfig`] for `k == 0` and
    /// [`Error::EmptyModel`] when the matrix holds no ratings.
    pub fn fit(ctx: &Ctx<'_>, config: ItemKnnConfig) -> Result<Self> {
        if config.k == 0 {
            return Err(Error::InvalidConfig {
                parameter: "k",
                constraint: "k >= 1".to_owned(),
            });
        }
        if ctx.ratings.n_ratings() == 0 {
            return Err(Error::EmptyModel { model: "item-knn" });
        }
        let n = ctx.ratings.n_items();
        // Cache user means once for adjusted cosine.
        let user_means: Vec<f64> = (0..ctx.ratings.n_users())
            .map(|u| {
                ctx.ratings
                    .user_mean(UserId::new(u as u32))
                    .unwrap_or_else(|| ctx.ratings.global_mean())
            })
            .collect();

        let mut sims: Vec<Vec<(ItemId, f64)>> = vec![Vec::new(); n];
        for a in 0..n {
            let ia = ItemId::new(a as u32);
            for b in (a + 1)..n {
                let ib = ItemId::new(b as u32);
                let co = ctx.ratings.co_raters(ia, ib);
                if co.len() < config.min_overlap {
                    continue;
                }
                let s = match config.similarity {
                    Similarity::AdjustedCosine => {
                        let centred: Vec<(f64, f64)> = co
                            .iter()
                            .map(|&(u, x, y)| {
                                let m = user_means[u.index()];
                                (x - m, y - m)
                            })
                            .collect();
                        similarity::adjusted_cosine(&centred)
                    }
                    Similarity::Cosine => {
                        let pairs: Vec<(f64, f64)> = co.iter().map(|&(_, x, y)| (x, y)).collect();
                        similarity::cosine(&pairs)
                    }
                    Similarity::Pearson => {
                        let pairs: Vec<(f64, f64)> = co.iter().map(|&(_, x, y)| (x, y)).collect();
                        similarity::pearson(&pairs)
                    }
                    Similarity::Jaccard => similarity::jaccard(
                        co.len(),
                        ctx.ratings.item_ratings(ia).len(),
                        ctx.ratings.item_ratings(ib).len(),
                    ),
                };
                if s > config.min_similarity {
                    sims[a].push((ib, s));
                    sims[b].push((ia, s));
                }
            }
        }
        for row in &mut sims {
            row.sort_by(|x, y| {
                y.1.partial_cmp(&x.1)
                    .unwrap_or(std::cmp::Ordering::Equal)
                    .then(x.0.cmp(&y.0))
            });
        }
        Ok(Self { config, sims })
    }

    /// Re-fits the similarity table in place.
    ///
    /// # Errors
    ///
    /// Same conditions as [`ItemKnn::fit`].
    pub fn refit(&mut self, ctx: &Ctx<'_>) -> Result<()> {
        *self = Self::fit(ctx, self.config.clone())?;
        Ok(())
    }

    /// The configuration in use.
    pub fn config(&self) -> &ItemKnnConfig {
        &self.config
    }

    /// The most similar items to `item`, descending, up to `n`.
    pub fn similar_items(&self, item: ItemId, n: usize) -> &[(ItemId, f64)] {
        match self.sims.get(item.index()) {
            Some(row) => &row[..row.len().min(n)],
            None => &[],
        }
    }

    /// Anchors for a `(user, item)` pair: similar items the user rated,
    /// strongest first, up to `k`.
    pub fn anchors(&self, ctx: &Ctx<'_>, user: UserId, item: ItemId) -> Vec<ItemAnchor> {
        let Some(row) = self.sims.get(item.index()) else {
            return Vec::new();
        };
        let candidates: Vec<ItemAnchor> = row
            .iter()
            .filter_map(|&(other, similarity)| {
                ctx.ratings
                    .rating(user, other)
                    .map(|user_rating| ItemAnchor {
                        item: other,
                        similarity,
                        user_rating,
                    })
            })
            .collect();
        top_k_by(candidates, self.config.k, |a| a.similarity)
    }

    fn check_ids(&self, ctx: &Ctx<'_>, user: UserId, item: ItemId) -> Result<()> {
        if user.index() >= ctx.ratings.n_users() {
            return Err(Error::UnknownUser { user });
        }
        if item.index() >= self.sims.len() || item.index() >= ctx.ratings.n_items() {
            return Err(Error::UnknownItem { item });
        }
        Ok(())
    }
}

impl Recommender for ItemKnn {
    fn name(&self) -> &'static str {
        "item-knn"
    }

    fn predict(&self, ctx: &Ctx<'_>, user: UserId, item: ItemId) -> Result<Prediction> {
        self.check_ids(ctx, user, item)?;
        let anchors = self.anchors(ctx, user, item);
        if anchors.is_empty() {
            return Err(Error::NoPrediction {
                user,
                item,
                reason: "user rated no items similar to this one",
            });
        }
        let mut num = 0.0;
        let mut den = 0.0;
        for a in &anchors {
            num += a.similarity * a.user_rating;
            den += a.similarity.abs();
        }
        if den <= 1e-12 {
            return Err(Error::NoPrediction {
                user,
                item,
                reason: "anchor similarities cancel out",
            });
        }
        let score = ctx.ratings.scale().bound(num / den);
        let fill = (anchors.len() as f64 / self.config.k as f64).min(1.0);
        let mean_sim = anchors.iter().map(|a| a.similarity).sum::<f64>() / anchors.len() as f64;
        let confidence = Confidence::new(fill * (0.4 + 0.6 * mean_sim.clamp(0.0, 1.0)));
        Ok(Prediction::new(score, confidence))
    }

    fn evidence(&self, ctx: &Ctx<'_>, user: UserId, item: ItemId) -> Result<ModelEvidence> {
        self.check_ids(ctx, user, item)?;
        let anchors = self.anchors(ctx, user, item);
        if anchors.is_empty() {
            return Err(Error::NoPrediction {
                user,
                item,
                reason: "user rated no items similar to this one",
            });
        }
        Ok(ModelEvidence::ItemNeighbors { anchors })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use exrec_data::synth::{movies, WorldConfig};
    use exrec_data::{Catalog, RatingsMatrix};
    use exrec_types::{DomainSchema, RatingScale};

    fn fixtures() -> (RatingsMatrix, Catalog) {
        let schema = DomainSchema::new("d", vec![]).unwrap();
        let mut catalog = Catalog::new(schema);
        for k in 0..4 {
            catalog
                .add(&format!("m{k}"), Default::default(), vec![])
                .unwrap();
        }
        // Items 0 and 1 always rated alike; item 2 rated opposite.
        let mut m = RatingsMatrix::new(4, 4, RatingScale::FIVE_STAR);
        let rows = [
            (0u32, [Some(5.0), Some(5.0), Some(1.0), None]),
            (1u32, [Some(4.0), Some(4.0), Some(2.0), Some(4.0)]),
            (2u32, [Some(1.0), Some(1.0), Some(5.0), Some(2.0)]),
            (3u32, [Some(2.0), Some(2.0), Some(4.0), Some(1.0)]),
        ];
        for (u, row) in rows {
            for (i, v) in row.into_iter().enumerate() {
                if let Some(v) = v {
                    m.rate(UserId(u), ItemId(i as u32), v).unwrap();
                }
            }
        }
        (m, catalog)
    }

    #[test]
    fn similar_items_are_symmetric_and_sorted() {
        let (m, c) = fixtures();
        let ctx = Ctx::new(&m, &c);
        let model = ItemKnn::fit(&ctx, ItemKnnConfig::default()).unwrap();
        let sim01 = model
            .similar_items(ItemId(0), 10)
            .iter()
            .find(|&&(i, _)| i == ItemId(1))
            .map(|&(_, s)| s)
            .expect("items 0 and 1 must be similar");
        let sim10 = model
            .similar_items(ItemId(1), 10)
            .iter()
            .find(|&&(i, _)| i == ItemId(0))
            .map(|&(_, s)| s)
            .unwrap();
        assert!((sim01 - sim10).abs() < 1e-12);
        for row in 0..4u32 {
            let sims = model.similar_items(ItemId(row), 10);
            assert!(sims.windows(2).all(|w| w[0].1 >= w[1].1));
        }
    }

    #[test]
    fn prediction_follows_anchor_ratings() {
        let (m, c) = fixtures();
        let ctx = Ctx::new(&m, &c);
        let model = ItemKnn::fit(&ctx, ItemKnnConfig::default()).unwrap();
        // User 0 loved items 0/1 (similar to... item 3 rated high by
        // like-structured raters). Predict item 3.
        let p = model.predict(&ctx, UserId(0), ItemId(3)).unwrap();
        assert!(p.score >= 3.0, "got {}", p.score);
    }

    #[test]
    fn evidence_anchors_are_rated_by_user() {
        let (m, c) = fixtures();
        let ctx = Ctx::new(&m, &c);
        let model = ItemKnn::fit(&ctx, ItemKnnConfig::default()).unwrap();
        match model.evidence(&ctx, UserId(0), ItemId(3)).unwrap() {
            ModelEvidence::ItemNeighbors { anchors } => {
                assert!(!anchors.is_empty());
                for a in &anchors {
                    assert_eq!(ctx.ratings.rating(UserId(0), a.item), Some(a.user_rating));
                }
            }
            other => panic!("wrong evidence: {}", other.kind()),
        }
    }

    #[test]
    fn empty_matrix_rejected() {
        let schema = DomainSchema::new("d", vec![]).unwrap();
        let catalog = Catalog::new(schema);
        let m = RatingsMatrix::new(2, 2, RatingScale::FIVE_STAR);
        let ctx = Ctx::new(&m, &catalog);
        assert!(matches!(
            ItemKnn::fit(&ctx, ItemKnnConfig::default()),
            Err(Error::EmptyModel { .. })
        ));
    }

    #[test]
    fn refit_observes_new_ratings() {
        let (mut m, c) = fixtures();
        let mut model = {
            let ctx = Ctx::new(&m, &c);
            ItemKnn::fit(&ctx, ItemKnnConfig::default()).unwrap()
        };
        m.rate(UserId(0), ItemId(3), 5.0).unwrap();
        m.unrate(UserId(1), ItemId(3)).unwrap();
        {
            let ctx = Ctx::new(&m, &c);
            model.refit(&ctx).unwrap();
            // Now item 3 co-rated with 0/1 differently; just assert refit
            // runs and predictions remain well-formed.
            let p = model.predict(&ctx, UserId(2), ItemId(3));
            if let Ok(p) = p {
                assert!(ctx.ratings.scale().contains(p.score) || p.score > 0.0);
            }
        }
    }

    #[test]
    fn beats_global_mean_on_synthetic_world() {
        let world = movies::generate(&WorldConfig {
            n_users: 60,
            n_items: 50,
            density: 0.35,
            ..WorldConfig::default()
        });
        let split = exrec_data::split::holdout(&world.ratings, 0.2, 11);
        let ctx = Ctx::new(&split.train, &world.catalog);
        let model = ItemKnn::fit(&ctx, ItemKnnConfig::default()).unwrap();
        let gm = split.train.global_mean();
        let (mut mae, mut gm_mae, mut n) = (0.0, 0.0, 0);
        for &(u, i, truth) in &split.test {
            if let Ok(p) = model.predict(&ctx, u, i) {
                mae += (p.score - truth).abs();
                gm_mae += (gm - truth).abs();
                n += 1;
            }
        }
        assert!(n > 20);
        assert!(
            mae / n as f64 <= gm_mae / n as f64 * 1.05,
            "item-kNN should be at least competitive with global mean"
        );
    }
}

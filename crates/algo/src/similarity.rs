//! Similarity measures over co-rating vectors.
//!
//! All measures consume the `(value_a, value_b)` pairs produced by
//! [`exrec_data::RatingsMatrix::co_rated`] / `co_raters` and return a
//! score in `[-1, 1]` (Jaccard: `[0, 1]`). Significance weighting damps
//! similarities computed from few overlapping ratings — the classic
//! Herlocker correction, which also drives *confidence* in explanations.

/// Choice of similarity measure.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Similarity {
    /// Pearson correlation of co-ratings (mean-centred per vector).
    #[default]
    Pearson,
    /// Raw cosine of co-ratings.
    Cosine,
    /// Cosine of co-ratings centred on each rater's own mean — the
    /// standard choice for item-based CF.
    AdjustedCosine,
    /// Overlap / union of the rated sets, ignoring values.
    Jaccard,
}

impl Similarity {
    /// Human-readable name.
    pub fn name(self) -> &'static str {
        match self {
            Similarity::Pearson => "pearson",
            Similarity::Cosine => "cosine",
            Similarity::AdjustedCosine => "adjusted-cosine",
            Similarity::Jaccard => "jaccard",
        }
    }
}

/// Pearson correlation over co-rating pairs. Returns 0 when fewer than 2
/// pairs or when either side has zero variance.
pub fn pearson(pairs: &[(f64, f64)]) -> f64 {
    if pairs.len() < 2 {
        return 0.0;
    }
    let n = pairs.len() as f64;
    let (ma, mb) = pairs
        .iter()
        .fold((0.0, 0.0), |(a, b), &(x, y)| (a + x, b + y));
    let (ma, mb) = (ma / n, mb / n);
    let (mut num, mut da, mut db) = (0.0, 0.0, 0.0);
    for &(x, y) in pairs {
        num += (x - ma) * (y - mb);
        da += (x - ma) * (x - ma);
        db += (y - mb) * (y - mb);
    }
    if da <= 1e-12 || db <= 1e-12 {
        0.0
    } else {
        (num / (da.sqrt() * db.sqrt())).clamp(-1.0, 1.0)
    }
}

/// Raw cosine over co-rating pairs. Returns 0 for empty input or a zero
/// vector.
pub fn cosine(pairs: &[(f64, f64)]) -> f64 {
    let (mut num, mut da, mut db) = (0.0, 0.0, 0.0);
    for &(x, y) in pairs {
        num += x * y;
        da += x * x;
        db += y * y;
    }
    if da <= 1e-12 || db <= 1e-12 {
        0.0
    } else {
        (num / (da.sqrt() * db.sqrt())).clamp(-1.0, 1.0)
    }
}

/// Adjusted cosine: pairs are `(value_a - rater_mean, value_b -
/// rater_mean)` deltas prepared by the caller; this is plain cosine over
/// those deltas, provided separately to make intent explicit at call
/// sites.
pub fn adjusted_cosine(centred_pairs: &[(f64, f64)]) -> f64 {
    cosine(centred_pairs)
}

/// Jaccard index from overlap and set sizes.
pub fn jaccard(overlap: usize, len_a: usize, len_b: usize) -> f64 {
    let union = len_a + len_b - overlap;
    if union == 0 {
        0.0
    } else {
        overlap as f64 / union as f64
    }
}

/// Significance weighting: scales `sim` by `overlap / threshold` when the
/// overlap is below `threshold` (Herlocker et al.'s n/50 correction).
pub fn significance_weight(sim: f64, overlap: usize, threshold: usize) -> f64 {
    if threshold == 0 || overlap >= threshold {
        sim
    } else {
        sim * overlap as f64 / threshold as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pearson_perfect_correlation() {
        let pairs = vec![(1.0, 2.0), (2.0, 4.0), (3.0, 6.0)];
        assert!((pearson(&pairs) - 1.0).abs() < 1e-9);
        let anti = vec![(1.0, 6.0), (2.0, 4.0), (3.0, 2.0)];
        assert!((pearson(&anti) + 1.0).abs() < 1e-9);
    }

    #[test]
    fn pearson_degenerate_cases() {
        assert_eq!(pearson(&[]), 0.0);
        assert_eq!(pearson(&[(3.0, 4.0)]), 0.0);
        // Zero variance on one side.
        assert_eq!(pearson(&[(3.0, 1.0), (3.0, 5.0)]), 0.0);
    }

    #[test]
    fn cosine_basic() {
        assert!((cosine(&[(1.0, 1.0), (1.0, 1.0)]) - 1.0).abs() < 1e-9);
        assert!((cosine(&[(1.0, -1.0)]) + 1.0).abs() < 1e-9);
        assert_eq!(cosine(&[]), 0.0);
        assert_eq!(cosine(&[(0.0, 5.0)]), 0.0);
    }

    #[test]
    fn jaccard_basic() {
        assert_eq!(jaccard(0, 0, 0), 0.0);
        assert!((jaccard(2, 3, 3) - 0.5).abs() < 1e-9);
        assert!((jaccard(3, 3, 3) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn significance_weighting_damps_small_overlap() {
        assert!((significance_weight(0.8, 25, 50) - 0.4).abs() < 1e-9);
        assert_eq!(significance_weight(0.8, 60, 50), 0.8);
        assert_eq!(significance_weight(0.8, 10, 0), 0.8);
    }

    #[test]
    fn names() {
        assert_eq!(Similarity::Pearson.name(), "pearson");
        assert_eq!(Similarity::default(), Similarity::Pearson);
    }

    #[test]
    fn scores_clamped() {
        // Numerically awkward input should never exceed [-1, 1].
        let pairs: Vec<(f64, f64)> = (0..100).map(|i| (i as f64 * 1e8, i as f64 * 1e8)).collect();
        let p = pearson(&pairs);
        assert!((-1.0..=1.0).contains(&p));
        let c = cosine(&pairs);
        assert!((-1.0..=1.0).contains(&c));
    }
}

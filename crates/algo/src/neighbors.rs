//! Top-k selection of weighted neighbours.

/// Keeps the `k` entries with the largest key, in descending key order.
///
/// A simple partial sort: at the sizes the toolkit handles (thousands of
/// candidates) a full `sort_unstable_by` then truncate beats heap
/// management; the function exists to make intent explicit and keep the
/// tie-break rule (stable index order) in one place.
pub fn top_k_by<T, F>(mut items: Vec<T>, k: usize, mut key: F) -> Vec<T>
where
    F: FnMut(&T) -> f64,
{
    items.sort_by(|a, b| {
        key(b)
            .partial_cmp(&key(a))
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    items.truncate(k);
    items
}

/// Streaming top-k with the same result contract as [`top_k_by`]:
/// the `k` entries with the largest (finite, non-NaN) key, descending,
/// ties broken by arrival order.
///
/// Where [`top_k_by`] sorts the whole candidate vector, this keeps a
/// bounded `k`-entry working set and replaces its worst entry on the
/// fly — `O(m · k)` worst case but `O(m + k log k)`-ish in practice
/// since replacements thin out fast — which is what the kernel gather
/// path wants when it ranks thousands of raters per item at `k ≈ 20`.
/// Verified equivalent to `top_k_by` (including tie order) by the
/// `streaming_matches_sort` test below.
pub fn top_k_stream<T, I, F>(items: I, k: usize, mut key: F) -> Vec<T>
where
    I: IntoIterator<Item = T>,
    F: FnMut(&T) -> f64,
{
    if k == 0 {
        return Vec::new();
    }
    // (key, arrival position, value); "better" = higher key, then
    // earlier arrival — exactly the order a stable descending sort
    // leaves equal keys in.
    let mut top: Vec<(f64, usize, T)> = Vec::with_capacity(k);
    let mut worst = 0usize;
    let find_worst = |top: &[(f64, usize, T)]| {
        let mut w = 0usize;
        for i in 1..top.len() {
            if top[i].0 < top[w].0 || (top[i].0 == top[w].0 && top[i].1 > top[w].1) {
                w = i;
            }
        }
        w
    };
    for (pos, item) in items.into_iter().enumerate() {
        let score = key(&item);
        if top.len() < k {
            top.push((score, pos, item));
            if top.len() == k {
                worst = find_worst(&top);
            }
        } else if score > top[worst].0 {
            top[worst] = (score, pos, item);
            worst = find_worst(&top);
        }
    }
    top.sort_by(|a, b| {
        b.0.partial_cmp(&a.0)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.1.cmp(&b.1))
    });
    top.into_iter().map(|(_, _, item)| item).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn selects_largest() {
        let v = vec![1.0f64, 5.0, 3.0, 4.0, 2.0];
        let top = top_k_by(v, 2, |x| *x);
        assert_eq!(top, vec![5.0, 4.0]);
    }

    #[test]
    fn k_larger_than_input() {
        let v = vec![1.0f64, 2.0];
        assert_eq!(top_k_by(v, 10, |x| *x), vec![2.0, 1.0]);
    }

    #[test]
    fn k_zero() {
        let v = vec![1.0f64, 2.0];
        assert!(top_k_by(v, 0, |x| *x).is_empty());
    }

    #[test]
    fn nan_keys_do_not_panic() {
        let v = vec![1.0f64, f64::NAN, 2.0];
        let top = top_k_by(v, 3, |x| *x);
        assert_eq!(top.len(), 3);
    }

    #[test]
    fn streaming_matches_sort() {
        // Deterministic pseudo-random keys with deliberate ties.
        let mut state = 0x9E3779B9u64;
        let mut next = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            ((state >> 33) % 17) as f64 / 4.0
        };
        for n in [0usize, 1, 5, 20, 257] {
            let items: Vec<(usize, f64)> = (0..n).map(|i| (i, next())).collect();
            for k in [0usize, 1, 3, 20, 300] {
                let sorted = top_k_by(items.clone(), k, |&(_, s)| s);
                let streamed = top_k_stream(items.iter().copied(), k, |&(_, s)| s);
                assert_eq!(sorted, streamed, "n={n} k={k}");
            }
        }
    }

    #[test]
    fn streaming_ties_keep_arrival_order() {
        let items = vec![(0, 1.0f64), (1, 2.0), (2, 2.0), (3, 2.0), (4, 0.5)];
        let top = top_k_stream(items, 2, |&(_, s)| s);
        assert_eq!(top, vec![(1, 2.0), (2, 2.0)]);
    }
}

//! Top-k selection of weighted neighbours.

/// Keeps the `k` entries with the largest key, in descending key order.
///
/// A simple partial sort: at the sizes the toolkit handles (thousands of
/// candidates) a full `sort_unstable_by` then truncate beats heap
/// management; the function exists to make intent explicit and keep the
/// tie-break rule (stable index order) in one place.
pub fn top_k_by<T, F>(mut items: Vec<T>, k: usize, mut key: F) -> Vec<T>
where
    F: FnMut(&T) -> f64,
{
    items.sort_by(|a, b| {
        key(b)
            .partial_cmp(&key(a))
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    items.truncate(k);
    items
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn selects_largest() {
        let v = vec![1.0f64, 5.0, 3.0, 4.0, 2.0];
        let top = top_k_by(v, 2, |x| *x);
        assert_eq!(top, vec![5.0, 4.0]);
    }

    #[test]
    fn k_larger_than_input() {
        let v = vec![1.0f64, 2.0];
        assert_eq!(top_k_by(v, 10, |x| *x), vec![2.0, 1.0]);
    }

    #[test]
    fn k_zero() {
        let v = vec![1.0f64, 2.0];
        assert!(top_k_by(v, 0, |x| *x).is_empty());
    }

    #[test]
    fn nan_keys_do_not_panic() {
        let v = vec![1.0f64, f64::NAN, 2.0];
        let top = top_k_by(v, 3, |x| *x);
        assert_eq!(top.len(), 3);
    }
}

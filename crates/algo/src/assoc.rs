//! Apriori frequent-itemset mining.
//!
//! Dynamic compound critiquing (survey Section 5.2, after McCarthy et al.
//! and Reilly et al.'s *Dynamic Critiquing*) mines frequently co-occurring
//! attribute differences between the current recommendation and the
//! remaining candidates — "Less Memory AND Lower Resolution AND Cheaper".
//! The miner here is the generic substrate: transactions are sets of
//! symbol ids; output is every itemset meeting a support threshold.

use std::collections::HashMap;

/// A frequent itemset: sorted symbols plus support in `[0, 1]`.
#[derive(Debug, Clone, PartialEq)]
pub struct FrequentSet {
    /// The sorted symbol ids forming the set.
    pub items: Vec<u32>,
    /// Fraction of transactions containing the set.
    pub support: f64,
}

/// Mines all itemsets with `support >= min_support` and size up to
/// `max_len`, using the Apriori level-wise algorithm.
///
/// Transactions are deduplicated-and-sorted internally; empty input yields
/// no sets. Results are ordered by (size, symbols) so output is
/// deterministic.
///
/// ```
/// use exrec_algo::assoc::apriori;
///
/// let transactions = vec![vec![1, 2], vec![1, 2, 3], vec![1, 3]];
/// let sets = apriori(&transactions, 0.6, 2);
/// let pair = sets.iter().find(|s| s.items == [1, 2]).unwrap();
/// assert!((pair.support - 2.0 / 3.0).abs() < 1e-9);
/// ```
pub fn apriori(transactions: &[Vec<u32>], min_support: f64, max_len: usize) -> Vec<FrequentSet> {
    let n = transactions.len();
    if n == 0 || max_len == 0 {
        return Vec::new();
    }
    let min_count = (min_support * n as f64).ceil().max(1.0) as usize;

    // Normalize transactions: sorted, deduped.
    let txs: Vec<Vec<u32>> = transactions
        .iter()
        .map(|t| {
            let mut t = t.clone();
            t.sort_unstable();
            t.dedup();
            t
        })
        .collect();

    // Level 1.
    let mut counts: HashMap<Vec<u32>, usize> = HashMap::new();
    for t in &txs {
        for &s in t {
            *counts.entry(vec![s]).or_insert(0) += 1;
        }
    }
    let mut frequent: Vec<(Vec<u32>, usize)> = counts
        .into_iter()
        .filter(|&(_, c)| c >= min_count)
        .collect();
    frequent.sort_by(|a, b| a.0.cmp(&b.0));

    let mut all: Vec<FrequentSet> = frequent
        .iter()
        .map(|(items, c)| FrequentSet {
            items: items.clone(),
            support: *c as f64 / n as f64,
        })
        .collect();

    let mut level = frequent;
    let mut size = 1;
    while size < max_len && level.len() > 1 {
        // Candidate generation: join sets sharing a (size-1)-prefix.
        let mut candidates: Vec<Vec<u32>> = Vec::new();
        for i in 0..level.len() {
            for j in (i + 1)..level.len() {
                let (a, b) = (&level[i].0, &level[j].0);
                if a[..size - 1] == b[..size - 1] {
                    let mut c = a.clone();
                    c.push(b[size - 1]);
                    candidates.push(c);
                } else {
                    break; // sorted level ⇒ no later j shares the prefix
                }
            }
        }
        // Count support.
        let mut next: Vec<(Vec<u32>, usize)> = Vec::new();
        for cand in candidates {
            let count = txs.iter().filter(|t| is_subset(&cand, t)).count();
            if count >= min_count {
                next.push((cand, count));
            }
        }
        next.sort_by(|a, b| a.0.cmp(&b.0));
        for (items, c) in &next {
            all.push(FrequentSet {
                items: items.clone(),
                support: *c as f64 / n as f64,
            });
        }
        level = next;
        size += 1;
    }

    all.sort_by(|a, b| {
        a.items
            .len()
            .cmp(&b.items.len())
            .then(a.items.cmp(&b.items))
    });
    all
}

/// Whether sorted `needle` is a subset of sorted `haystack`.
fn is_subset(needle: &[u32], haystack: &[u32]) -> bool {
    let mut h = 0;
    'outer: for &x in needle {
        while h < haystack.len() {
            match haystack[h].cmp(&x) {
                std::cmp::Ordering::Less => h += 1,
                std::cmp::Ordering::Equal => {
                    h += 1;
                    continue 'outer;
                }
                std::cmp::Ordering::Greater => return false,
            }
        }
        return false;
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    fn txs() -> Vec<Vec<u32>> {
        vec![
            vec![1, 2, 3],
            vec![1, 2],
            vec![1, 3],
            vec![2, 3],
            vec![1, 2, 3],
        ]
    }

    fn support_of(sets: &[FrequentSet], items: &[u32]) -> Option<f64> {
        sets.iter().find(|s| s.items == items).map(|s| s.support)
    }

    #[test]
    fn singletons_counted() {
        let sets = apriori(&txs(), 0.5, 1);
        assert_eq!(support_of(&sets, &[1]), Some(0.8));
        assert_eq!(support_of(&sets, &[2]), Some(0.8));
        assert_eq!(support_of(&sets, &[3]), Some(0.8));
        assert!(sets.iter().all(|s| s.items.len() == 1));
    }

    #[test]
    fn pairs_and_triples() {
        let sets = apriori(&txs(), 0.4, 3);
        assert_eq!(support_of(&sets, &[1, 2]), Some(0.6));
        assert_eq!(support_of(&sets, &[1, 3]), Some(0.6));
        assert_eq!(support_of(&sets, &[2, 3]), Some(0.6));
        assert_eq!(support_of(&sets, &[1, 2, 3]), Some(0.4));
    }

    #[test]
    fn min_support_prunes() {
        let sets = apriori(&txs(), 0.7, 3);
        assert!(support_of(&sets, &[1, 2]).is_none());
        assert!(support_of(&sets, &[1]).is_some());
    }

    #[test]
    fn downward_closure_holds() {
        let sets = apriori(&txs(), 0.4, 3);
        // Every subset of a frequent set is frequent with >= support.
        for s in &sets {
            if s.items.len() >= 2 {
                for drop in 0..s.items.len() {
                    let mut sub = s.items.clone();
                    sub.remove(drop);
                    let sub_support = support_of(&sets, &sub).expect("subset must be frequent");
                    assert!(sub_support >= s.support - 1e-12);
                }
            }
        }
    }

    #[test]
    fn empty_and_degenerate() {
        assert!(apriori(&[], 0.5, 3).is_empty());
        assert!(apriori(&txs(), 0.5, 0).is_empty());
        let sets = apriori(&[vec![]], 0.5, 3);
        assert!(sets.is_empty());
    }

    #[test]
    fn duplicate_symbols_in_transaction_count_once() {
        let sets = apriori(&[vec![1, 1, 1], vec![1]], 0.5, 2);
        assert_eq!(support_of(&sets, &[1]), Some(1.0));
    }

    #[test]
    fn is_subset_cases() {
        assert!(is_subset(&[1, 3], &[1, 2, 3]));
        assert!(!is_subset(&[1, 4], &[1, 2, 3]));
        assert!(is_subset(&[], &[1]));
        assert!(!is_subset(&[1], &[]));
    }
}

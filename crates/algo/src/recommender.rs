//! The [`Recommender`] trait and its typed [`ModelEvidence`].
//!
//! The survey's key structural observation is that explanation content
//! (collaborative / content / preference-based) is decoupled from the
//! recommendation algorithm. The toolkit enforces that boundary here:
//! recommenders expose *evidence* — who the neighbours were, which
//! features matched, which utility terms contributed — and the explanation
//! engine in `exrec-core` turns evidence into any of the survey's
//! explanation interfaces without knowing the algorithm.

use exrec_data::{Catalog, RatingsMatrix};
use exrec_types::{ItemId, Prediction, Result, UserId};

/// Borrowed view of the data a recommender operates over.
///
/// Recommenders do not own the ratings matrix: conversational interaction
/// (survey Section 5) mutates ratings mid-session, and models must observe
/// the change on the next call.
#[derive(Debug, Clone, Copy)]
pub struct Ctx<'a> {
    /// The observed ratings.
    pub ratings: &'a RatingsMatrix,
    /// The item catalog.
    pub catalog: &'a Catalog,
}

impl<'a> Ctx<'a> {
    /// Bundles a ratings matrix and catalog.
    pub fn new(ratings: &'a RatingsMatrix, catalog: &'a Catalog) -> Self {
        Self { ratings, catalog }
    }
}

/// A scored recommendation candidate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Scored {
    /// The candidate item.
    pub item: ItemId,
    /// Predicted rating and confidence.
    pub prediction: Prediction,
}

/// One neighbour's contribution to a user-based CF prediction.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NeighborContribution {
    /// The neighbouring user.
    pub user: UserId,
    /// Similarity to the target user, in `[-1, 1]`.
    pub similarity: f64,
    /// The rating this neighbour gave the target item.
    pub rating: f64,
}

/// One already-rated item anchoring an item-based CF prediction
/// ("similar to Oliver Twist, which you rated 5").
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ItemAnchor {
    /// The anchoring (already-rated) item.
    pub item: ItemId,
    /// Similarity between the anchor and the target item.
    pub similarity: f64,
    /// The user's rating of the anchor.
    pub user_rating: f64,
}

/// A signed per-feature contribution from a content model
/// ("keyword 'orphan': +1.3", "author Charles Dickens: +2.0").
#[derive(Debug, Clone, PartialEq)]
pub struct FeatureInfluence {
    /// Feature label, already human-readable (e.g. `keyword "orphan"`).
    pub feature: String,
    /// Signed contribution to the like/dislike decision.
    pub weight: f64,
}

/// The influence of one previously-rated item on a recommendation, as a
/// share of the total (survey Figure 3 shows these as percentages).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RatedItemInfluence {
    /// The previously-rated item.
    pub item: ItemId,
    /// The user's rating of it.
    pub user_rating: f64,
    /// Influence share, non-negative; shares over all items sum to ~1.
    pub share: f64,
}

/// One attribute's contribution to a knowledge-based utility score
/// ("price 450 vs target ≤ 500: 0.9 × weight 0.4").
#[derive(Debug, Clone, PartialEq)]
pub struct UtilityTerm {
    /// Attribute name.
    pub attribute: String,
    /// Per-attribute satisfaction in `[0, 1]`.
    pub satisfaction: f64,
    /// The user's weight on the attribute.
    pub weight: f64,
    /// Human-readable account of how the item fares on this attribute.
    pub detail: String,
}

/// One anonymous latent factor's contribution to a matrix-factorization
/// score. Deliberately *not* human-readable — the point the survey makes
/// about accuracy metrics is mirrored here: the most accurate models can
/// be the hardest to explain.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LatentTerm {
    /// Factor index.
    pub factor: usize,
    /// Signed contribution `p_u[k] · q_i[k]`.
    pub contribution: f64,
}

/// Typed evidence for one `(user, item)` prediction.
///
/// This is the algorithm→explanation interface: every survey explanation
/// style is generated from one (or a fusion) of these variants.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum ModelEvidence {
    /// User-based CF: the neighbours that produced the prediction.
    UserNeighbors {
        /// Contributions, strongest |similarity| first.
        neighbors: Vec<NeighborContribution>,
    },
    /// Item-based CF: rated items the target is similar to.
    ItemNeighbors {
        /// Anchors, most similar first.
        anchors: Vec<ItemAnchor>,
    },
    /// Content model: matched features plus per-rated-item influence.
    Content {
        /// Signed feature contributions, largest |weight| first.
        features: Vec<FeatureInfluence>,
        /// Influence of each previously-rated item, largest share first.
        influences: Vec<RatedItemInfluence>,
    },
    /// Knowledge-based: per-attribute utility breakdown.
    Utility {
        /// Terms in schema order.
        terms: Vec<UtilityTerm>,
        /// Weighted total in `[0, 1]`.
        total: f64,
    },
    /// Non-personalized: the item's rating statistics.
    Popularity {
        /// Mean observed rating.
        mean: f64,
        /// Number of ratings.
        count: usize,
    },
    /// Latent-factor model: anonymous factor contributions plus the bias
    /// part of the score. No content-style interface can verbalize this.
    Latent {
        /// Contributions, largest |contribution| first.
        terms: Vec<LatentTerm>,
        /// `μ + b_u + b_i`.
        bias: f64,
    },
}

impl ModelEvidence {
    /// Short tag for logging and dispatch tables.
    pub fn kind(&self) -> &'static str {
        match self {
            ModelEvidence::UserNeighbors { .. } => "user-neighbors",
            ModelEvidence::ItemNeighbors { .. } => "item-neighbors",
            ModelEvidence::Content { .. } => "content",
            ModelEvidence::Utility { .. } => "utility",
            ModelEvidence::Popularity { .. } => "popularity",
            ModelEvidence::Latent { .. } => "latent",
        }
    }
}

/// A recommender that can predict, rank and justify.
pub trait Recommender {
    /// Stable algorithm name (e.g. `"user-knn"`).
    fn name(&self) -> &'static str;

    /// Predicts the rating `user` would give `item`.
    ///
    /// # Errors
    ///
    /// Implementations return [`exrec_types::Error::NoPrediction`] when the
    /// model has no basis for a prediction, and id-range errors for
    /// out-of-space ids.
    fn predict(&self, ctx: &Ctx<'_>, user: UserId, item: ItemId) -> Result<Prediction>;

    /// Produces the evidence behind [`Recommender::predict`] for the same
    /// pair. Must be consistent with the prediction.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Recommender::predict`].
    fn evidence(&self, ctx: &Ctx<'_>, user: UserId, item: ItemId) -> Result<ModelEvidence>;

    /// Ranks the top `n` items the user has not yet rated. Items for which
    /// no prediction is possible are skipped. Ties break toward lower item
    /// ids so output is deterministic.
    fn recommend(&self, ctx: &Ctx<'_>, user: UserId, n: usize) -> Vec<Scored> {
        // Phase attribution for the serving profiler: the candidate
        // scan (predict every unrated item — the brute-force hot spot
        // the ROADMAP's tiled kernel will replace) and the top-k sort.
        // No-ops outside an active route (`exrec_obs::profile`).
        let scan = exrec_obs::profile::phase("scan");
        let mut scored: Vec<Scored> = ctx
            .catalog
            .ids()
            .filter(|&i| ctx.ratings.rating(user, i).is_none())
            .filter_map(|i| {
                self.predict(ctx, user, i).ok().map(|prediction| Scored {
                    item: i,
                    prediction,
                })
            })
            .collect();
        drop(scan);
        let _rank = exrec_obs::profile::phase("rank");
        scored.sort_by(|a, b| {
            b.prediction
                .score
                .partial_cmp(&a.prediction.score)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.item.cmp(&b.item))
        });
        scored.truncate(n);
        scored
    }

    /// Ranks top-`n` recommendations for every user in `users`, in input
    /// order. This default runs sequentially and is the reference
    /// implementation the parallel path ([`crate::batch::BatchPool`])
    /// must match bit-for-bit; overrides must preserve per-user results.
    fn recommend_batch(&self, ctx: &Ctx<'_>, users: &[UserId], n: usize) -> Vec<Vec<Scored>> {
        if users.is_empty() {
            return Vec::new();
        }
        users.iter().map(|&u| self.recommend(ctx, u, n)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use exrec_types::{AttributeSet, Confidence, DomainSchema, Error, RatingScale};

    /// A recommender that scores items by id, for trait-default testing.
    struct ByIdRecommender;

    impl Recommender for ByIdRecommender {
        fn name(&self) -> &'static str {
            "by-id"
        }
        fn predict(&self, ctx: &Ctx<'_>, _user: UserId, item: ItemId) -> Result<Prediction> {
            if item.raw() == 2 {
                return Err(Error::NoPrediction {
                    user: UserId(0),
                    item,
                    reason: "test skip",
                });
            }
            let max = ctx.catalog.len() as f64;
            Ok(Prediction::new(
                5.0 - item.raw() as f64 * 4.0 / max,
                Confidence::CERTAIN,
            ))
        }
        fn evidence(&self, _ctx: &Ctx<'_>, _user: UserId, _item: ItemId) -> Result<ModelEvidence> {
            Ok(ModelEvidence::Popularity {
                mean: 3.0,
                count: 1,
            })
        }
    }

    fn fixtures() -> (RatingsMatrix, Catalog) {
        let schema = DomainSchema::new("d", vec![]).unwrap();
        let mut catalog = Catalog::new(schema);
        for k in 0..5 {
            catalog
                .add(&format!("item-{k}"), AttributeSet::new(), vec![])
                .unwrap();
        }
        let mut ratings = RatingsMatrix::new(2, 5, RatingScale::FIVE_STAR);
        ratings.rate(UserId(0), ItemId(0), 4.0).unwrap();
        (ratings, catalog)
    }

    #[test]
    fn recommend_excludes_rated_and_failed() {
        let (ratings, catalog) = fixtures();
        let ctx = Ctx::new(&ratings, &catalog);
        let recs = ByIdRecommender.recommend(&ctx, UserId(0), 10);
        let ids: Vec<u32> = recs.iter().map(|s| s.item.raw()).collect();
        assert!(!ids.contains(&0), "rated item must be excluded");
        assert!(!ids.contains(&2), "unpredictable item must be skipped");
        assert_eq!(ids, vec![1, 3, 4], "sorted by descending score");
    }

    #[test]
    fn recommend_truncates() {
        let (ratings, catalog) = fixtures();
        let ctx = Ctx::new(&ratings, &catalog);
        assert_eq!(ByIdRecommender.recommend(&ctx, UserId(1), 2).len(), 2);
    }

    #[test]
    fn evidence_kinds() {
        assert_eq!(
            ModelEvidence::Popularity {
                mean: 1.0,
                count: 2
            }
            .kind(),
            "popularity"
        );
        assert_eq!(
            ModelEvidence::UserNeighbors { neighbors: vec![] }.kind(),
            "user-neighbors"
        );
    }
}

//! # exrec-algo
//!
//! Recommender substrates for the `exrec` toolkit. The survey
//! (Tintarev & Masthoff, ICDE'07) classifies explanation *content* as
//! collaborative-based, content-based or preference-based, independent of
//! the algorithm; this crate supplies one or more algorithms behind each
//! content type:
//!
//! * **collaborative** — user-based and item-based k-nearest-neighbour CF
//!   ([`UserKnn`], [`ItemKnn`]);
//! * **content** — TF-IDF/Rocchio profiles ([`content::TfIdfModel`]) and a
//!   LIBRA-style naive-Bayes model with per-feature and per-rated-item
//!   influence ([`content::NaiveBayesModel`]);
//! * **preference/knowledge** — multi-attribute utility scoring over
//!   explicit requirements ([`knowledge::Maut`]);
//! * plus association-rule mining for dynamic compound critiques
//!   ([`assoc`]), hybrids, baselines and evaluation metrics.
//!
//! Any model can be wrapped in an [`InstrumentedRecommender`] to count
//! and time its calls against an `exrec-obs` metrics registry.
//!
//! Every model can return typed [`ModelEvidence`] for a `(user, item)`
//! pair — the raw material the explanation engine (`exrec-core`) renders
//! into the survey's explanation interfaces.
//!
//! ## Serving at scale
//!
//! Two modules turn the one-user-at-a-time substrates into a batch
//! serving path (see `docs/architecture.md` for the request lifecycle
//! and `docs/benchmarking.md` for measured throughput):
//!
//! * [`batch`] — [`Recommender::recommend_batch`] plus
//!   [`batch::BatchPool`], a work-stealing thread pool distributing
//!   request chunks over crossbeam-style MPMC channels; results are
//!   bit-identical to the sequential path under any thread count;
//! * [`cache`] — [`cache::SimilarityCache`], a sharded, lock-striped,
//!   revision-invalidated LRU memo of pair similarities that
//!   [`UserKnn::with_cache`] consults instead of re-walking the ratings
//!   matrix; hit/miss/eviction counters export through `exrec-obs`.
//!
//! ## Sub-linear neighbour search
//!
//! Two further modules replace the uncached brute-force similarity
//! scan with a kernel that is fast when exact and sub-linear when
//! allowed to prune (see `docs/kernels.md`):
//!
//! * [`kernel`] — [`kernel::CsrRatings`] (a revision-stamped CSR/CSC
//!   compaction of the ratings), a cache-blocked tiled similarity scan
//!   with a startup autotuner, and [`kernel::ScanEngine`], the shared
//!   revision-keyed holder of the derived state;
//! * [`index`] — [`index::CandidateIndex`], deterministic coarse
//!   k-means over rating rows; pruned scans probe the nearest
//!   centroids and score only their members, with automatic exact
//!   fallback when the candidate set is too small for `k`.
//!
//! Attach with [`UserKnn::with_engine`]: [`kernel::ScanMode::Exact`]
//! is bit-identical to the brute path, [`kernel::ScanMode::Pruned`]
//! trades a property-tested recall ≥ 0.99 for sub-linear scans.

#![deny(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod assoc;
pub mod baseline;
pub mod batch;
pub mod cache;
pub mod content;
pub mod hybrid;
pub mod index;
pub mod instrument;
pub mod item_knn;
pub mod kernel;
pub mod knowledge;
pub mod metrics;
pub mod mf;
pub mod neighbors;
pub mod recommender;
pub mod similarity;
pub mod user_knn;

pub use batch::BatchPool;
pub use cache::SimilarityCache;
pub use index::{CandidateIndex, IndexConfig};
pub use instrument::InstrumentedRecommender;
pub use item_knn::ItemKnn;
pub use kernel::{CsrRatings, KernelConfig, ScanEngine, ScanMode, ScanStats, TileSize};
pub use recommender::{Ctx, ModelEvidence, Recommender, Scored};
pub use similarity::Similarity;
pub use user_knn::UserKnn;

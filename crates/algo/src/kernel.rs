//! CSR-tiled sparse similarity kernel — the sub-linear neighbour scan.
//!
//! The seed's user-kNN hot path recomputed `sim(u, v)` from the live
//! [`RatingsMatrix`] once per *(candidate item, rater)* pair: a
//! `recommend` call walked every rater of every unrated item and ran a
//! sorted merge over two rating rows for each, an `O(n_users)`-per-item
//! dense scan that left the 100k-user uncached path at fractions of a
//! request per second (see `BENCH_serve.json` and `docs/kernels.md`).
//!
//! This module replaces that scan with a cache-blocked sparse kernel
//! over a CSR-compacted snapshot of the matrix:
//!
//! * [`CsrRatings`] — an immutable, revision-stamped CSR/CSC compaction
//!   of the ratings: user-major rows and item-major columns in four
//!   flat arrays, plus precomputed per-user means. Contiguous storage
//!   is what makes the kernel's inner loops stream instead of chase
//!   `Vec<Vec<…>>` pointers.
//! * [`scan_similarities`] — one pass per *request* instead of one
//!   merge per pair: the candidate (user) dimension is cut into tiles,
//!   the target user's items are walked once per tile, and co-rating
//!   partials accumulate into per-tile scratch blocks sized to stay in
//!   cache. Per-candidate co-rating pairs are gathered in item order —
//!   exactly the order [`exrec_data::RatingsMatrix::co_rated`]
//!   produces — and scored by the *same* similarity functions, so the
//!   kernel's similarities are bit-identical to the seed's.
//! * [`autotune`] — a startup micro-sweep over [`TILE_CANDIDATES`]
//!   that times the kernel on a few sample users and picks the
//!   fastest tile size. Tile size never changes results (tiles
//!   partition candidates; each candidate's pairs are gathered whole),
//!   so the tuner optimizes purely over a correctness-invariant axis.
//! * [`ScanEngine`] — the shared, revision-keyed holder of the CSR
//!   snapshot, the tuned tile size and the cluster-pruned
//!   [`CandidateIndex`]: stale snapshots
//!   are rebuilt when the matrix revision moves, mirroring the
//!   [`SimilarityCache`](crate::cache::SimilarityCache) invalidation
//!   story, and scan counters export through `exrec-obs` under
//!   `scan.<name>.*`.
//!
//! Attach an engine to a model with
//! [`UserKnn::with_engine`](crate::UserKnn::with_engine); see
//! `docs/kernels.md` for the layout diagrams, the autotuner protocol
//! and the exact-mode bit-identity argument.

use std::sync::Arc;
use std::time::Instant;

use exrec_data::{RatingDelta, RatingsMatrix};
use exrec_obs::{Counter, Gauge, Metrics};
use exrec_types::UserId;
use parking_lot::RwLock;

use crate::index::{CandidateIndex, IndexConfig};
use crate::similarity::{self, Similarity};

/// An immutable CSR/CSC compaction of a [`RatingsMatrix`], stamped with
/// the revision it was built from.
///
/// Rows (user-major) drive "which items did `u` rate"; columns
/// (item-major) drive "who rated item `i`". Both sides keep ids sorted
/// ascending, exactly like the source matrix, so merges and binary
/// searches carry over unchanged — just over flat, contiguous arrays.
#[derive(Debug, Clone)]
pub struct CsrRatings {
    revision: u64,
    n_users: usize,
    n_items: usize,
    /// `row_ptr[u]..row_ptr[u + 1]` indexes `row_items` / `row_vals`.
    row_ptr: Vec<usize>,
    /// Item ids of each user's ratings, ascending within a row.
    row_items: Vec<u32>,
    /// Rating values, parallel to `row_items`.
    row_vals: Vec<f64>,
    /// `col_ptr[i]..col_ptr[i + 1]` indexes `col_users` / `col_vals`.
    col_ptr: Vec<usize>,
    /// User ids of each item's raters, ascending within a column.
    col_users: Vec<u32>,
    /// Rating values, parallel to `col_users`.
    col_vals: Vec<f64>,
    /// Per-user mean rating, `0.0` for empty rows. Computed with the
    /// same left-to-right fold as [`RatingsMatrix::user_mean`], so the
    /// values are bit-identical to the live matrix's.
    user_mean: Vec<f64>,
}

impl CsrRatings {
    /// Compacts `ratings` into CSR form. `O(n_ratings)`.
    pub fn from_matrix(ratings: &RatingsMatrix) -> Self {
        let n_users = ratings.n_users();
        let n_items = ratings.n_items();
        let nnz = ratings.n_ratings();

        let mut row_ptr = Vec::with_capacity(n_users + 1);
        let mut row_items = Vec::with_capacity(nnz);
        let mut row_vals = Vec::with_capacity(nnz);
        let mut user_mean = Vec::with_capacity(n_users);
        row_ptr.push(0);
        for u in 0..n_users {
            let row = ratings.user_ratings(UserId::new(u as u32));
            for &(item, value) in row {
                row_items.push(item.raw());
                row_vals.push(value);
            }
            row_ptr.push(row_items.len());
            let mean = if row.is_empty() {
                0.0
            } else {
                // Same fold as RatingsMatrix::user_mean: iterator sum
                // over values in item order, divided by the length.
                row.iter().map(|&(_, v)| v).sum::<f64>() / row.len() as f64
            };
            user_mean.push(mean);
        }

        let mut col_ptr = Vec::with_capacity(n_items + 1);
        let mut col_users = Vec::with_capacity(nnz);
        let mut col_vals = Vec::with_capacity(nnz);
        col_ptr.push(0);
        for i in 0..n_items {
            let col = ratings.item_ratings(exrec_types::ItemId::new(i as u32));
            for &(user, value) in col {
                col_users.push(user.raw());
                col_vals.push(value);
            }
            col_ptr.push(col_users.len());
        }

        CsrRatings {
            revision: ratings.revision(),
            n_users,
            n_items,
            row_ptr,
            row_items,
            row_vals,
            col_ptr,
            col_users,
            col_vals,
            user_mean,
        }
    }

    /// The matrix revision this snapshot was compacted from.
    #[inline]
    pub fn revision(&self) -> u64 {
        self.revision
    }

    /// Number of users in the id space.
    #[inline]
    pub fn n_users(&self) -> usize {
        self.n_users
    }

    /// Number of items in the id space.
    #[inline]
    pub fn n_items(&self) -> usize {
        self.n_items
    }

    /// Stored ratings.
    #[inline]
    pub fn n_ratings(&self) -> usize {
        self.row_items.len()
    }

    /// A user's row: parallel `(item ids, values)` slices, ascending by
    /// item. Empty for out-of-range users.
    #[inline]
    pub fn row(&self, user: usize) -> (&[u32], &[f64]) {
        if user + 1 >= self.row_ptr.len() {
            return (&[], &[]);
        }
        let (a, b) = (self.row_ptr[user], self.row_ptr[user + 1]);
        (&self.row_items[a..b], &self.row_vals[a..b])
    }

    /// An item's column: parallel `(user ids, values)` slices, ascending
    /// by user. Empty for out-of-range items.
    #[inline]
    pub fn col(&self, item: usize) -> (&[u32], &[f64]) {
        if item + 1 >= self.col_ptr.len() {
            return (&[], &[]);
        }
        let (a, b) = (self.col_ptr[item], self.col_ptr[item + 1]);
        (&self.col_users[a..b], &self.col_vals[a..b])
    }

    /// Number of ratings in a user's row.
    #[inline]
    pub fn row_len(&self, user: usize) -> usize {
        if user + 1 >= self.row_ptr.len() {
            0
        } else {
            self.row_ptr[user + 1] - self.row_ptr[user]
        }
    }

    /// The user's mean rating, or `default` when the row is empty (the
    /// same contract as `user_mean(u).unwrap_or(default)` on the live
    /// matrix, with bit-identical means).
    #[inline]
    pub fn user_mean_or(&self, user: usize, default: f64) -> f64 {
        if self.row_len(user) == 0 {
            default
        } else {
            self.user_mean[user]
        }
    }

    /// Builds the snapshot for the matrix state *after* `deltas`, by
    /// splicing the touched rows/columns and copying everything else
    /// wholesale — `O(nnz)` memcpy instead of re-walking the matrix,
    /// and crucially without re-running the autotune sweep.
    ///
    /// The result is **bit-identical** to [`CsrRatings::from_matrix`]
    /// on the mutated matrix: touched rows are merged in ascending id
    /// order exactly as the matrix stores them, and touched users'
    /// means are recomputed with the same left-to-right fold (asserted
    /// by `patched_csr_is_bit_identical_to_fresh` in the tests).
    ///
    /// `deltas` must describe consecutive revisions starting at
    /// `self.revision() + 1`; the engine's chain check enforces this
    /// before calling.
    pub fn apply_deltas(&self, deltas: &[RatingDelta]) -> CsrRatings {
        use std::collections::BTreeMap;
        // Last write wins per cell; BTreeMaps keep the changed ids in
        // the ascending order the splice needs.
        let mut row_changes: BTreeMap<u32, BTreeMap<u32, Option<f64>>> = BTreeMap::new();
        let mut col_changes: BTreeMap<u32, BTreeMap<u32, Option<f64>>> = BTreeMap::new();
        for d in deltas {
            row_changes
                .entry(d.user.raw())
                .or_default()
                .insert(d.item.raw(), d.value);
            col_changes
                .entry(d.item.raw())
                .or_default()
                .insert(d.user.raw(), d.value);
        }

        /// Merges one sorted id/value row with its sorted change set.
        fn splice(
            ids: &[u32],
            vals: &[f64],
            changes: &BTreeMap<u32, Option<f64>>,
            out_ids: &mut Vec<u32>,
            out_vals: &mut Vec<f64>,
        ) {
            let mut pending = changes.iter().peekable();
            for (idx, &id) in ids.iter().enumerate() {
                while let Some(&(&cid, value)) = pending.peek() {
                    if cid >= id {
                        break;
                    }
                    if let Some(v) = value {
                        out_ids.push(cid);
                        out_vals.push(*v);
                    }
                    pending.next();
                }
                match pending.peek() {
                    Some(&(&cid, value)) if cid == id => {
                        if let Some(v) = value {
                            out_ids.push(id);
                            out_vals.push(*v);
                        }
                        pending.next();
                    }
                    _ => {
                        out_ids.push(id);
                        out_vals.push(vals[idx]);
                    }
                }
            }
            for (&cid, value) in pending {
                if let Some(v) = value {
                    out_ids.push(cid);
                    out_vals.push(*v);
                }
            }
        }

        let grow = deltas.len();
        let mut row_ptr = Vec::with_capacity(self.n_users + 1);
        let mut row_items = Vec::with_capacity(self.row_items.len() + grow);
        let mut row_vals = Vec::with_capacity(self.row_vals.len() + grow);
        let mut user_mean = Vec::with_capacity(self.n_users);
        row_ptr.push(0);
        for u in 0..self.n_users {
            let start = row_items.len();
            match row_changes.get(&(u as u32)) {
                None => {
                    let (ids, vals) = self.row(u);
                    row_items.extend_from_slice(ids);
                    row_vals.extend_from_slice(vals);
                    user_mean.push(self.user_mean[u]);
                }
                Some(changes) => {
                    let (ids, vals) = self.row(u);
                    splice(ids, vals, changes, &mut row_items, &mut row_vals);
                    let row = &row_vals[start..];
                    // Same fold as RatingsMatrix::user_mean.
                    let mean = if row.is_empty() {
                        0.0
                    } else {
                        row.iter().sum::<f64>() / row.len() as f64
                    };
                    user_mean.push(mean);
                }
            }
            row_ptr.push(row_items.len());
        }

        let mut col_ptr = Vec::with_capacity(self.n_items + 1);
        let mut col_users = Vec::with_capacity(self.col_users.len() + grow);
        let mut col_vals = Vec::with_capacity(self.col_vals.len() + grow);
        col_ptr.push(0);
        for i in 0..self.n_items {
            match col_changes.get(&(i as u32)) {
                None => {
                    let (ids, vals) = self.col(i);
                    col_users.extend_from_slice(ids);
                    col_vals.extend_from_slice(vals);
                }
                Some(changes) => {
                    let (ids, vals) = self.col(i);
                    splice(ids, vals, changes, &mut col_users, &mut col_vals);
                }
            }
            col_ptr.push(col_users.len());
        }

        CsrRatings {
            revision: deltas.last().map(|d| d.revision).unwrap_or(self.revision),
            n_users: self.n_users,
            n_items: self.n_items,
            row_ptr,
            row_items,
            row_vals,
            col_ptr,
            col_users,
            col_vals,
            user_mean,
        }
    }
}

/// The similarity-measure parameters a scan applies per candidate —
/// the subset of [`UserKnnConfig`](crate::user_knn::UserKnnConfig)
/// that affects pair scores.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SimParams {
    /// Similarity measure over co-ratings.
    pub similarity: Similarity,
    /// Minimum co-rated items before a pair scores at all.
    pub min_overlap: usize,
    /// Significance-weighting threshold (0 disables).
    pub significance: usize,
}

impl SimParams {
    /// Scores one candidate from its gathered co-rating pairs. This is
    /// a line-for-line port of the seed's `similarity_uncached`, taking
    /// the already-merged pairs (in item order) instead of re-merging.
    fn score(&self, csr: &CsrRatings, user: usize, cand: usize, pairs: &[(f64, f64)]) -> f64 {
        if pairs.len() < self.min_overlap {
            return 0.0;
        }
        let raw = match self.similarity {
            Similarity::Pearson => similarity::pearson(pairs),
            Similarity::Cosine => similarity::cosine(pairs),
            Similarity::AdjustedCosine => {
                let ma = csr.user_mean_or(user, 0.0);
                let mb = csr.user_mean_or(cand, 0.0);
                let centred: Vec<(f64, f64)> =
                    pairs.iter().map(|&(x, y)| (x - ma, y - mb)).collect();
                similarity::adjusted_cosine(&centred)
            }
            Similarity::Jaccard => {
                similarity::jaccard(pairs.len(), csr.row_len(user), csr.row_len(cand))
            }
        };
        similarity::significance_weight(raw, pairs.len(), self.significance)
    }
}

/// What one [`scan_similarities`] call touched, for the `scan.*`
/// counters and the prune-ratio gauge.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ScanOutcome {
    /// Tiles the kernel visited (tiles with no co-rating still count).
    pub tiles: u64,
    /// Candidates that had at least one co-rated item and were scored.
    pub scored: u64,
    /// Co-rating pairs gathered across all scored candidates.
    pub pairs: u64,
}

/// Computes `sim(user, v)` for every candidate `v`, writing into the
/// dense `sims` table (`sims[v]`, zero elsewhere — matching the seed's
/// semantics, where a pair below `min_overlap` or with no co-ratings
/// scores exactly `0.0`).
///
/// `candidates` of `None` scans the full user dimension (exact mode);
/// `Some(list)` restricts the scan to a sorted, deduplicated id list
/// (pruned mode, or a single item's raters). The candidate dimension is
/// processed in `tile_users`-sized tiles; per tile, the target user's
/// row is walked once and each item column's in-tile range accumulates
/// co-rating counts, then pairs, then per-candidate scores. Pairs per
/// candidate are gathered in item order — the `co_rated` merge order —
/// so scores are bit-identical to the per-pair path for any tile size.
pub fn scan_similarities(
    csr: &CsrRatings,
    params: &SimParams,
    user: UserId,
    candidates: Option<&[u32]>,
    tile_users: usize,
    sims: &mut Vec<f64>,
) -> ScanOutcome {
    let n_users = csr.n_users();
    sims.clear();
    sims.resize(n_users, 0.0);
    let mut outcome = ScanOutcome::default();

    let u = user.index();
    let (u_items, u_vals) = csr.row(u);
    if u_items.is_empty() {
        return outcome;
    }
    let tile = tile_users.max(1);

    // Per-tile scratch, reused across tiles.
    let mut counts: Vec<u32> = Vec::new();
    let mut offsets: Vec<usize> = Vec::new();
    let mut cursor: Vec<usize> = Vec::new();
    let mut pairs: Vec<(f64, f64)> = Vec::new();
    // Per-item column subranges for the current tile, so pass 2 reuses
    // pass 1's binary searches.
    let mut ranges: Vec<(usize, usize)> = vec![(0, 0); u_items.len()];

    let mut scan_tile = |members: TileMembers<'_>| {
        let width = members.len();
        counts.clear();
        counts.resize(width, 0);

        // Pass 1: count co-ratings per in-tile candidate.
        let mut total = 0usize;
        for (idx, &item) in u_items.iter().enumerate() {
            let (cu, _) = csr.col(item as usize);
            let (lo, hi) = members.column_range(cu);
            ranges[idx] = (lo, hi);
            for &v in &cu[lo..hi] {
                if let Some(slot) = members.slot(v) {
                    counts[slot] += 1;
                    total += 1;
                }
            }
        }
        outcome.tiles += 1;
        if total == 0 {
            return;
        }

        // Prefix-sum offsets; gather pairs in item order per candidate.
        offsets.clear();
        offsets.reserve(width);
        let mut acc = 0usize;
        for &c in counts.iter() {
            offsets.push(acc);
            acc += c as usize;
        }
        cursor.clear();
        cursor.extend_from_slice(&offsets);
        pairs.clear();
        pairs.resize(total, (0.0, 0.0));
        for (idx, &x) in u_vals.iter().enumerate() {
            let (cu, cv) = csr.col(u_items[idx] as usize);
            let (lo, hi) = ranges[idx];
            for j in lo..hi {
                if let Some(slot) = members.slot(cu[j]) {
                    pairs[cursor[slot]] = (x, cv[j]);
                    cursor[slot] += 1;
                }
            }
        }

        // Pass 3: score every candidate that co-rated anything.
        for slot in 0..width {
            let cnt = counts[slot] as usize;
            if cnt == 0 {
                continue;
            }
            let v = members.user_at(slot) as usize;
            if v == u {
                continue;
            }
            let span = &pairs[offsets[slot]..offsets[slot] + cnt];
            sims[v] = params.score(csr, u, v, span);
            outcome.scored += 1;
            outcome.pairs += cnt as u64;
        }
    };

    match candidates {
        None => {
            let mut t0 = 0usize;
            while t0 < n_users {
                let t1 = (t0 + tile).min(n_users);
                scan_tile(TileMembers::Range { start: t0, end: t1 });
                t0 = t1;
            }
        }
        Some(list) => {
            // A dense user → tile-slot map keeps the per-rating inner
            // loop branch-cheap; only the chunk's entries are written
            // and reset, so the O(n_users) allocation amortizes.
            let mut slot_of: Vec<u32> = vec![u32::MAX; n_users];
            for chunk in list.chunks(tile) {
                for (slot, &v) in chunk.iter().enumerate() {
                    if (v as usize) < n_users {
                        slot_of[v as usize] = slot as u32;
                    }
                }
                scan_tile(TileMembers::Sparse {
                    ids: chunk,
                    slot_of: &slot_of,
                });
                for &v in chunk {
                    if (v as usize) < n_users {
                        slot_of[v as usize] = u32::MAX;
                    }
                }
            }
        }
    }

    outcome
}

/// The overlap-pruned candidate pass: ranks every user by *co-rating
/// count* with `user` and keeps roughly the `budget` highest.
///
/// This is pass 1 of the tiled kernel run standalone over the full
/// user dimension — one `u32` increment per co-rating incidence, no
/// pair gathering, no similarity math — so it costs a small fraction
/// of an exact scan. It exists because neighbour weight under
/// Herlocker significance weighting is bounded by the overlap:
/// `|sim(u, v)| ≤ min(1, co(u, v) / significance)`, so the users this
/// pass drops are exactly the ones whose similarity is provably small.
/// The threshold is chosen adaptively (smallest co-count `τ` whose
/// tail `{v : co ≥ τ}` still fits the budget; the whole tie class at
/// `τ` is kept, so the result can exceed `budget` slightly and is
/// deterministic). Returns a sorted, ascending id list excluding
/// `user` itself; empty when the user rated nothing.
pub fn overlap_candidates(csr: &CsrRatings, user: UserId, budget: usize) -> Vec<u32> {
    let n_users = csr.n_users();
    let u = user.index();
    let (u_items, _) = csr.row(u);
    if u_items.is_empty() || budget == 0 {
        return Vec::new();
    }
    let mut counts: Vec<u32> = vec![0; n_users];
    for &item in u_items {
        let (cu, _) = csr.col(item as usize);
        for &v in cu {
            counts[v as usize] += 1;
        }
    }
    if u < n_users {
        counts[u] = 0;
    }
    // Histogram over co-counts (capped — overlaps beyond the cap are
    // always kept) to find the adaptive threshold.
    const CAP: usize = 512;
    let mut hist = [0usize; CAP + 1];
    for &c in &counts {
        if c > 0 {
            hist[(c as usize).min(CAP)] += 1;
        }
    }
    let mut tau = 1usize;
    let mut kept: usize = hist.iter().skip(1).sum();
    for (t, &bucket) in hist.iter().enumerate().skip(1) {
        if kept <= budget {
            break;
        }
        kept -= bucket;
        tau = t + 1;
    }
    (0..n_users as u32)
        .filter(|&v| counts[v as usize] as usize >= tau)
        .collect()
}

/// Merges two sorted, deduplicated ascending id lists.
pub fn union_sorted(a: &[u32], b: &[u32]) -> Vec<u32> {
    let mut out = Vec::with_capacity(a.len() + b.len());
    let (mut i, mut j) = (0usize, 0usize);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => {
                out.push(a[i]);
                i += 1;
            }
            std::cmp::Ordering::Greater => {
                out.push(b[j]);
                j += 1;
            }
            std::cmp::Ordering::Equal => {
                out.push(a[i]);
                i += 1;
                j += 1;
            }
        }
    }
    out.extend_from_slice(&a[i..]);
    out.extend_from_slice(&b[j..]);
    out
}

/// One tile's candidate membership: either a contiguous id range
/// (exact scan) or a sorted id list with a dense slot map (pruned
/// scan). Both expose the same slot arithmetic to the kernel passes.
enum TileMembers<'a> {
    /// Users `start..end`.
    Range { start: usize, end: usize },
    /// An explicit sorted id chunk; `slot_of[v]` is the chunk slot of
    /// user `v`, `u32::MAX` outside the chunk.
    Sparse { ids: &'a [u32], slot_of: &'a [u32] },
}

impl TileMembers<'_> {
    #[inline]
    fn len(&self) -> usize {
        match self {
            TileMembers::Range { start, end } => end - start,
            TileMembers::Sparse { ids, .. } => ids.len(),
        }
    }

    /// The subrange of a sorted user-id column that can belong to this
    /// tile, found by binary search.
    #[inline]
    fn column_range(&self, col_users: &[u32]) -> (usize, usize) {
        let (lo_bound, hi_bound) = match self {
            TileMembers::Range { start, end } => (*start as u32, *end as u32),
            TileMembers::Sparse { ids, .. } => {
                if ids.is_empty() {
                    return (0, 0);
                }
                (ids[0], ids[ids.len() - 1].saturating_add(1))
            }
        };
        let lo = col_users.partition_point(|&v| v < lo_bound);
        let hi = lo + col_users[lo..].partition_point(|&v| v < hi_bound);
        (lo, hi)
    }

    /// The tile slot of user `v`, if `v` belongs to this tile.
    #[inline]
    fn slot(&self, v: u32) -> Option<usize> {
        match self {
            TileMembers::Range { start, end } => {
                let v = v as usize;
                (v >= *start && v < *end).then(|| v - start)
            }
            TileMembers::Sparse { slot_of, .. } => {
                let slot = *slot_of.get(v as usize)?;
                (slot != u32::MAX).then_some(slot as usize)
            }
        }
    }

    /// The user id occupying `slot`.
    #[inline]
    fn user_at(&self, slot: usize) -> u32 {
        match self {
            TileMembers::Range { start, .. } => (start + slot) as u32,
            TileMembers::Sparse { ids, .. } => ids[slot],
        }
    }
}

/// Tile sizes the autotuner sweeps. Powers of two spanning "fits in
/// L1 scratch" to "one tile per request on mid-size worlds".
pub const TILE_CANDIDATES: &[usize] = &[256, 512, 1024, 2048, 4096, 8192];

/// How the kernel picks its tile size.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TileSize {
    /// Startup micro-sweep over [`TILE_CANDIDATES`] (see [`autotune`]).
    #[default]
    Auto,
    /// A fixed tile size (tests and benchmarks; results are identical
    /// for any value — only the clock changes).
    Fixed(usize),
}

/// Deltas applied incrementally since the last full build before the
/// engine forces a fresh rebuild (autotune + k-means). Cluster
/// reassignment moves users between *frozen* centroids, so geometry
/// drifts as writes accumulate; this bounds how far.
pub const DRIFT_REBUILD_THRESHOLD: usize = 4096;

/// Kernel configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KernelConfig {
    /// Candidate-dimension tile size.
    pub tile: TileSize,
    /// Deltas absorbed by incremental patching before the next read
    /// forces a full CSR + index rebuild (see
    /// [`DRIFT_REBUILD_THRESHOLD`]). `0` disables patching entirely:
    /// every revision change rebuilds from scratch.
    pub drift_threshold: usize,
}

impl Default for KernelConfig {
    fn default() -> Self {
        KernelConfig {
            tile: TileSize::default(),
            drift_threshold: DRIFT_REBUILD_THRESHOLD,
        }
    }
}

/// One autotuner measurement: `(tile size, total nanoseconds)` over the
/// sample users.
pub type SweepPoint = (usize, u64);

/// Outcome of an [`autotune`] sweep.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AutotuneReport {
    /// The tile size the kernel will use.
    pub chosen: usize,
    /// Every `(tile, elapsed_ns)` point measured, in sweep order.
    pub sweep: Vec<SweepPoint>,
}

/// Startup micro-sweep: times an exact scan for a handful of sample
/// users at every [`TILE_CANDIDATES`] size and picks the fastest
/// (ties break toward the smaller tile). Tile size cannot change
/// results — the sweep optimizes wall-clock only — so a noisy pick
/// costs microseconds, never correctness.
pub fn autotune(csr: &CsrRatings, params: &SimParams) -> AutotuneReport {
    // Up to 4 sample users, strided over the id space, skipping empty
    // rows so the sweep measures real work.
    let n = csr.n_users();
    let mut samples: Vec<UserId> = Vec::new();
    if n > 0 {
        let stride = (n / 4).max(1);
        let mut u = 0usize;
        while u < n && samples.len() < 4 {
            let mut probe = u;
            while probe < n && csr.row_len(probe) == 0 {
                probe += 1;
            }
            if probe < n {
                samples.push(UserId::new(probe as u32));
            }
            u += stride;
        }
    }
    let mut sims = Vec::new();
    let mut sweep = Vec::with_capacity(TILE_CANDIDATES.len());
    let mut chosen = TILE_CANDIDATES[0];
    let mut best = u64::MAX;
    for &tile in TILE_CANDIDATES {
        let started = Instant::now();
        for &user in &samples {
            scan_similarities(csr, params, user, None, tile, &mut sims);
        }
        let elapsed = started.elapsed().as_nanos() as u64;
        sweep.push((tile, elapsed));
        if elapsed < best {
            best = elapsed;
            chosen = tile;
        }
    }
    AutotuneReport { chosen, sweep }
}

/// How an engine-backed [`UserKnn`](crate::UserKnn) resolves its
/// neighbour scan. `Brute` (the seed's per-pair path) is what a model
/// *without* an engine runs; an attached engine picks between these.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ScanMode {
    /// Full tiled scan over every user: bit-identical to the seed's
    /// per-pair path, just fast.
    #[default]
    Exact,
    /// Cluster-pruned candidate scan: probe the nearest centroids of
    /// the [`CandidateIndex`] and score
    /// only their members, falling back to [`ScanMode::Exact`] when the
    /// candidate set is too small for the neighbourhood size (see
    /// `docs/kernels.md#exact-fallback`).
    Pruned,
}

impl ScanMode {
    /// Stable lowercase name (`"exact"` / `"pruned"`).
    pub fn name(self) -> &'static str {
        match self {
            ScanMode::Exact => "exact",
            ScanMode::Pruned => "pruned",
        }
    }
}

/// Revision-keyed derived state: the CSR snapshot, the tuned tile and
/// the candidate index, rebuilt lazily when the matrix moves — or
/// *patched* in place when the pending delta chain covers the gap.
#[derive(Default)]
struct EngineState {
    csr: Option<Arc<CsrRatings>>,
    tune: Option<AutotuneReport>,
    index: Option<Arc<CandidateIndex>>,
    /// Deltas applied to the matrix since the resident snapshot was
    /// taken, in revision order; drained by the next read.
    pending: Vec<RatingDelta>,
    /// Set when pending deltas were dropped (too many to buffer): the
    /// next read must rebuild from scratch.
    pending_overflow: bool,
    /// Deltas absorbed by patching since the last *full* build; the
    /// drift threshold compares against this.
    patched_since_build: u64,
}

/// Point-in-time scan statistics for `/debug/world` and logs.
#[derive(Debug, Clone, PartialEq)]
pub struct ScanStats {
    /// Tile size currently in use (`None` before the first scan).
    pub tile_users: Option<usize>,
    /// The autotuner's sweep, when tile selection was automatic.
    pub sweep: Vec<SweepPoint>,
    /// Revision of the resident CSR snapshot, if any.
    pub csr_revision: Option<u64>,
    /// CSR snapshot (re)builds from scratch.
    pub csr_builds: u64,
    /// Candidate-index (re)builds from scratch.
    pub index_builds: u64,
    /// CSR snapshots produced by incremental delta patching.
    pub csr_patches: u64,
    /// Candidate indexes produced by cluster reassignment.
    pub index_patches: u64,
    /// Deltas waiting to be absorbed by the next read.
    pub pending_deltas: usize,
    /// Deltas absorbed by patching since the last full build (drives
    /// the drift-threshold rebuild decision).
    pub patched_since_build: u64,
    /// Centroids / probes of the resident index, if any.
    pub index_shape: Option<(usize, usize)>,
    /// Exact scans served (including fallbacks).
    pub exact_scans: u64,
    /// Pruned scans served.
    pub pruned_scans: u64,
    /// Pruned requests that fell back to exact because the candidate
    /// set was too small for `k`.
    pub exact_fallbacks: u64,
    /// Kernel tiles visited, cumulative.
    pub tiles_visited: u64,
    /// Candidates scored, cumulative.
    pub candidates_scored: u64,
    /// Fraction of the user dimension the last pruned scan *skipped*
    /// (`1 - candidates/n_users`); `0.0` until a pruned scan runs.
    pub last_prune_ratio: f64,
}

/// Shared, revision-keyed scan state: CSR snapshot + autotuned tile +
/// pruned candidate index, with `exrec-obs` counters.
///
/// One engine is shared by every clone of a model (batch workers, the
/// serving edge): all derived state sits behind a read-mostly lock and
/// rebuilds at most once per matrix revision, the same invalidation
/// contract as [`SimilarityCache`](crate::cache::SimilarityCache).
pub struct ScanEngine {
    kernel: KernelConfig,
    index_cfg: IndexConfig,
    state: RwLock<EngineState>,
    csr_builds: Counter,
    index_builds: Counter,
    csr_patches: Counter,
    index_patches: Counter,
    exact_scans: Counter,
    pruned_scans: Counter,
    exact_fallbacks: Counter,
    tiles_visited: Counter,
    candidates_scored: Counter,
    prune_ratio: Gauge,
}

impl std::fmt::Debug for ScanEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ScanEngine")
            .field("kernel", &self.kernel)
            .field("index_cfg", &self.index_cfg)
            .field("stats", &self.stats())
            .finish()
    }
}

impl ScanEngine {
    /// Builds an engine with standalone (unregistered) counters.
    pub fn new(kernel: KernelConfig, index_cfg: IndexConfig) -> Self {
        ScanEngine {
            kernel,
            index_cfg,
            state: RwLock::new(EngineState::default()),
            csr_builds: Counter::default(),
            index_builds: Counter::default(),
            csr_patches: Counter::default(),
            index_patches: Counter::default(),
            exact_scans: Counter::default(),
            pruned_scans: Counter::default(),
            exact_fallbacks: Counter::default(),
            tiles_visited: Counter::default(),
            candidates_scored: Counter::default(),
            prune_ratio: Gauge::default(),
        }
    }

    /// Builds an engine whose counters live in `metrics` under
    /// `scan.<name>.{csr_builds,index_builds,csr_patches,index_patches,
    /// exact_scans,pruned_scans,exact_fallbacks,tiles_visited,
    /// candidates_scored}` plus the `scan.<name>.prune_ratio` gauge.
    pub fn instrumented(
        kernel: KernelConfig,
        index_cfg: IndexConfig,
        metrics: &Metrics,
        name: &str,
    ) -> Self {
        let mut engine = Self::new(kernel, index_cfg);
        engine.csr_builds = metrics.counter(&format!("scan.{name}.csr_builds"));
        engine.index_builds = metrics.counter(&format!("scan.{name}.index_builds"));
        engine.csr_patches = metrics.counter(&format!("scan.{name}.csr_patches"));
        engine.index_patches = metrics.counter(&format!("scan.{name}.index_patches"));
        engine.exact_scans = metrics.counter(&format!("scan.{name}.exact_scans"));
        engine.pruned_scans = metrics.counter(&format!("scan.{name}.pruned_scans"));
        engine.exact_fallbacks = metrics.counter(&format!("scan.{name}.exact_fallbacks"));
        engine.tiles_visited = metrics.counter(&format!("scan.{name}.tiles_visited"));
        engine.candidates_scored = metrics.counter(&format!("scan.{name}.candidates_scored"));
        engine.prune_ratio = metrics.gauge(&format!("scan.{name}.prune_ratio"));
        engine
    }

    /// The kernel configuration.
    pub fn kernel_config(&self) -> &KernelConfig {
        &self.kernel
    }

    /// The candidate-index configuration.
    pub fn index_config(&self) -> &IndexConfig {
        &self.index_cfg
    }

    /// Records deltas the matrix absorbed since the resident snapshot,
    /// so the next read can *patch* instead of rebuild. Called by the
    /// write path (under its matrix write lock) with the deltas one
    /// applied record emitted; cheap — an append, never a build.
    ///
    /// Buffering is bounded by the drift threshold: once the pending
    /// backlog (plus deltas already absorbed since the last full
    /// build) crosses it, the backlog is dropped and the next read
    /// rebuilds from scratch anyway.
    pub fn notify_deltas(&self, deltas: &[RatingDelta]) {
        if deltas.is_empty() {
            return;
        }
        let mut state = self.state.write();
        if state.csr.is_none() || state.pending_overflow {
            return; // nothing resident to patch, or already overflowed
        }
        let backlog = state.patched_since_build as usize + state.pending.len() + deltas.len();
        if backlog > self.kernel.drift_threshold {
            state.pending.clear();
            state.pending_overflow = true;
        } else {
            state.pending.extend_from_slice(deltas);
        }
    }

    /// The CSR snapshot for `ratings`. When the matrix revision moved
    /// and the pending delta chain (see [`ScanEngine::notify_deltas`])
    /// covers the gap exactly, the resident snapshot is *patched* —
    /// `O(nnz)` splice, tuned tile kept, index clusters reassigned —
    /// counted under `csr_patches`/`index_patches`. Otherwise (bulk
    /// loads, overflow past the drift threshold, or mutations that
    /// bypassed delta notification) it rebuilds from scratch, re-runs
    /// the tile sweep, and drops the index (counted under
    /// `csr_builds`).
    pub fn csr(&self, ratings: &RatingsMatrix, params: &SimParams) -> Arc<CsrRatings> {
        {
            let state = self.state.read();
            if let Some(csr) = &state.csr {
                if csr.revision() == ratings.revision() {
                    return Arc::clone(csr);
                }
            }
        }
        let mut state = self.state.write();
        // Double-checked: another worker may have rebuilt while we
        // waited for the write lock.
        if let Some(csr) = &state.csr {
            if csr.revision() == ratings.revision() {
                return Arc::clone(csr);
            }
        }

        // Patch path: the pending deltas must chain one-per-revision
        // from the resident snapshot to the live matrix — every
        // successful mutation bumps the revision by exactly one, so a
        // gap means something wrote without notifying and the patch
        // would silently diverge.
        let can_patch = !state.pending_overflow
            && self.kernel.drift_threshold > 0
            && state.csr.as_ref().is_some_and(|csr| {
                let base = csr.revision();
                !state.pending.is_empty()
                    && state.pending.last().map(|d| d.revision) == Some(ratings.revision())
                    && state
                        .pending
                        .iter()
                        .enumerate()
                        .all(|(n, d)| d.revision == base + 1 + n as u64)
            });
        if can_patch {
            let pending = std::mem::take(&mut state.pending);
            let csr = Arc::new(
                state
                    .csr
                    .as_ref()
                    .expect("checked above")
                    .apply_deltas(&pending),
            );
            if let Some(index) = &state.index {
                let mut touched: Vec<u32> = pending.iter().map(|d| d.user.raw()).collect();
                touched.sort_unstable();
                touched.dedup();
                state.index = Some(Arc::new(index.reassign(&csr, &touched)));
                self.index_patches.incr();
            }
            state.patched_since_build += pending.len() as u64;
            state.csr = Some(Arc::clone(&csr));
            self.csr_patches.incr();
            return csr;
        }

        let csr = Arc::new(CsrRatings::from_matrix(ratings));
        state.tune = Some(match self.kernel.tile {
            TileSize::Fixed(tile) => AutotuneReport {
                chosen: tile.max(1),
                sweep: Vec::new(),
            },
            TileSize::Auto => autotune(&csr, params),
        });
        state.index = None; // stale with the old revision; rebuilt on demand
        state.csr = Some(Arc::clone(&csr));
        state.pending.clear();
        state.pending_overflow = false;
        state.patched_since_build = 0;
        self.csr_builds.incr();
        csr
    }

    /// The tuned tile size for the resident snapshot (falls back to a
    /// safe default if called before [`ScanEngine::csr`]).
    pub fn tile(&self) -> usize {
        self.state
            .read()
            .tune
            .as_ref()
            .map(|t| t.chosen)
            .unwrap_or(TILE_CANDIDATES[2])
    }

    /// The candidate index for `csr`, building it on first use per
    /// revision (counted under `index_builds`).
    pub fn index(&self, csr: &Arc<CsrRatings>) -> Arc<CandidateIndex> {
        {
            let state = self.state.read();
            if let Some(index) = &state.index {
                if index.revision() == csr.revision() {
                    return Arc::clone(index);
                }
            }
        }
        let mut state = self.state.write();
        if let Some(index) = &state.index {
            if index.revision() == csr.revision() {
                return Arc::clone(index);
            }
        }
        let index = Arc::new(CandidateIndex::build(csr, &self.index_cfg));
        state.index = Some(Arc::clone(&index));
        self.index_builds.incr();
        index
    }

    /// The candidate-set floor below which a pruned request must fall
    /// back to exact: fewer candidates than this cannot reliably fill a
    /// `k`-neighbourhood per item (see `docs/kernels.md#exact-fallback`).
    pub fn fallback_floor(&self, k: usize) -> usize {
        self.index_cfg.min_candidates.max(k.saturating_mul(4))
    }

    /// Records one scan's outcome against the counters and gauge.
    pub fn record_scan(
        &self,
        outcome: &ScanOutcome,
        pruned: Option<(usize, usize)>,
        fell_back: bool,
    ) {
        self.tiles_visited.add(outcome.tiles);
        self.candidates_scored.add(outcome.scored);
        match pruned {
            Some((candidates, n_users)) => {
                self.pruned_scans.incr();
                let ratio = 1.0 - candidates as f64 / n_users.max(1) as f64;
                self.prune_ratio.set(ratio.max(0.0));
            }
            None => {
                self.exact_scans.incr();
                if fell_back {
                    self.exact_fallbacks.incr();
                }
            }
        }
    }

    /// Point-in-time statistics snapshot.
    pub fn stats(&self) -> ScanStats {
        let state = self.state.read();
        ScanStats {
            tile_users: state.tune.as_ref().map(|t| t.chosen),
            sweep: state
                .tune
                .as_ref()
                .map(|t| t.sweep.clone())
                .unwrap_or_default(),
            csr_revision: state.csr.as_ref().map(|c| c.revision()),
            csr_builds: self.csr_builds.get(),
            index_builds: self.index_builds.get(),
            csr_patches: self.csr_patches.get(),
            index_patches: self.index_patches.get(),
            pending_deltas: state.pending.len(),
            patched_since_build: state.patched_since_build,
            index_shape: state.index.as_ref().map(|i| (i.n_centroids(), i.probes())),
            exact_scans: self.exact_scans.get(),
            pruned_scans: self.pruned_scans.get(),
            exact_fallbacks: self.exact_fallbacks.get(),
            tiles_visited: self.tiles_visited.get(),
            candidates_scored: self.candidates_scored.get(),
            last_prune_ratio: self.prune_ratio.get(),
        }
    }
}

impl Default for ScanEngine {
    fn default() -> Self {
        Self::new(KernelConfig::default(), IndexConfig::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use exrec_types::{ItemId, RatingScale};

    fn toy_matrix() -> RatingsMatrix {
        let mut m = RatingsMatrix::new(5, 4, RatingScale::FIVE_STAR);
        let grid: &[(u32, u32, f64)] = &[
            (0, 0, 5.0),
            (0, 1, 3.0),
            (0, 3, 4.0),
            (1, 0, 4.0),
            (1, 1, 2.0),
            (2, 2, 1.0),
            (3, 0, 5.0),
            (3, 3, 5.0),
        ];
        for &(u, i, v) in grid {
            m.rate(UserId(u), ItemId(i), v).unwrap();
        }
        m
    }

    #[test]
    fn csr_mirrors_matrix() {
        let m = toy_matrix();
        let csr = CsrRatings::from_matrix(&m);
        assert_eq!(csr.n_users(), 5);
        assert_eq!(csr.n_items(), 4);
        assert_eq!(csr.n_ratings(), m.n_ratings());
        assert_eq!(csr.revision(), m.revision());
        let (items, vals) = csr.row(0);
        assert_eq!(items, &[0, 1, 3]);
        assert_eq!(vals, &[5.0, 3.0, 4.0]);
        let (users, vals) = csr.col(0);
        assert_eq!(users, &[0, 1, 3]);
        assert_eq!(vals, &[5.0, 4.0, 5.0]);
        assert_eq!(csr.row(4), (&[][..], &[][..]));
        assert_eq!(csr.row(99), (&[][..], &[][..]));
        assert_eq!(csr.col(99), (&[][..], &[][..]));
        // Bit-identical means, empty rows defaulted.
        let mean0 = m.user_mean(UserId(0)).unwrap();
        assert_eq!(csr.user_mean_or(0, f64::NAN).to_bits(), mean0.to_bits());
        assert_eq!(csr.user_mean_or(4, 2.5), 2.5);
    }

    /// Reference: the seed's per-pair similarity, straight off the
    /// live matrix.
    fn brute_sim(m: &RatingsMatrix, params: &SimParams, a: UserId, b: UserId) -> f64 {
        let co = m.co_rated(a, b);
        if co.len() < params.min_overlap {
            return 0.0;
        }
        let pairs: Vec<(f64, f64)> = co.iter().map(|&(_, x, y)| (x, y)).collect();
        let raw = match params.similarity {
            Similarity::Pearson => similarity::pearson(&pairs),
            Similarity::Cosine => similarity::cosine(&pairs),
            Similarity::AdjustedCosine => {
                let ma = m.user_mean(a).unwrap_or_default();
                let mb = m.user_mean(b).unwrap_or_default();
                let centred: Vec<(f64, f64)> =
                    pairs.iter().map(|&(x, y)| (x - ma, y - mb)).collect();
                similarity::adjusted_cosine(&centred)
            }
            Similarity::Jaccard => {
                similarity::jaccard(co.len(), m.user_ratings(a).len(), m.user_ratings(b).len())
            }
        };
        similarity::significance_weight(raw, co.len(), params.significance)
    }

    #[test]
    fn scan_matches_brute_for_every_measure_and_tile() {
        let m = toy_matrix();
        let csr = CsrRatings::from_matrix(&m);
        for similarity in [
            Similarity::Pearson,
            Similarity::Cosine,
            Similarity::AdjustedCosine,
            Similarity::Jaccard,
        ] {
            let params = SimParams {
                similarity,
                min_overlap: 1,
                significance: 3,
            };
            for tile in [1, 2, 3, 64] {
                let mut sims = Vec::new();
                scan_similarities(&csr, &params, UserId(0), None, tile, &mut sims);
                for v in 0..5u32 {
                    if v == 0 {
                        continue;
                    }
                    let expect = brute_sim(&m, &params, UserId(0), UserId(v));
                    assert_eq!(
                        sims[v as usize].to_bits(),
                        expect.to_bits(),
                        "{similarity:?} tile {tile} candidate {v}"
                    );
                }
            }
        }
    }

    #[test]
    fn candidate_subset_scores_only_members() {
        let m = toy_matrix();
        let csr = CsrRatings::from_matrix(&m);
        let params = SimParams {
            similarity: Similarity::Cosine,
            min_overlap: 1,
            significance: 0,
        };
        let mut sims = Vec::new();
        let outcome = scan_similarities(&csr, &params, UserId(0), Some(&[1, 2]), 1, &mut sims);
        assert!(sims[1] != 0.0, "candidate 1 co-rates items 0 and 1");
        assert_eq!(sims[3], 0.0, "user 3 co-rates but is not a candidate");
        assert_eq!(sims[2], 0.0, "candidate 2 has no co-ratings");
        assert_eq!(outcome.scored, 1);
    }

    #[test]
    fn empty_row_scores_nothing() {
        let m = toy_matrix();
        let csr = CsrRatings::from_matrix(&m);
        let params = SimParams {
            similarity: Similarity::Pearson,
            min_overlap: 1,
            significance: 0,
        };
        let mut sims = Vec::new();
        let outcome = scan_similarities(&csr, &params, UserId(4), None, 8, &mut sims);
        assert_eq!(outcome.scored, 0);
        assert!(sims.iter().all(|&s| s == 0.0));
    }

    #[test]
    fn autotune_picks_a_candidate_tile() {
        let m = toy_matrix();
        let csr = CsrRatings::from_matrix(&m);
        let params = SimParams {
            similarity: Similarity::Pearson,
            min_overlap: 2,
            significance: 0,
        };
        let report = autotune(&csr, &params);
        assert!(TILE_CANDIDATES.contains(&report.chosen));
        assert_eq!(report.sweep.len(), TILE_CANDIDATES.len());
    }

    #[test]
    fn engine_rebuilds_on_revision_change() {
        let mut m = toy_matrix();
        let engine = ScanEngine::default();
        let params = SimParams {
            similarity: Similarity::Pearson,
            min_overlap: 2,
            significance: 0,
        };
        let c1 = engine.csr(&m, &params);
        let c2 = engine.csr(&m, &params);
        assert!(Arc::ptr_eq(&c1, &c2), "same revision reuses the snapshot");
        assert_eq!(engine.stats().csr_builds, 1);
        m.rate(UserId(2), ItemId(0), 2.0).unwrap();
        let c3 = engine.csr(&m, &params);
        assert_eq!(c3.revision(), m.revision());
        assert_eq!(engine.stats().csr_builds, 2);
        assert_eq!(c3.col(0).0.len(), 4, "rebuilt snapshot sees the new rating");
    }

    /// Applies one `rate` to the live matrix and returns the delta the
    /// write path would emit for it.
    fn rate_delta(m: &mut RatingsMatrix, u: u32, i: u32, v: f64) -> RatingDelta {
        let prev = m.rate(UserId(u), ItemId(i), v).unwrap();
        RatingDelta {
            user: UserId(u),
            item: ItemId(i),
            prev,
            value: Some(v),
            revision: m.revision(),
        }
    }

    fn unrate_delta(m: &mut RatingsMatrix, u: u32, i: u32) -> RatingDelta {
        let prev = m.unrate(UserId(u), ItemId(i)).unwrap();
        assert!(prev.is_some(), "test deltas must change the matrix");
        RatingDelta {
            user: UserId(u),
            item: ItemId(i),
            prev,
            value: None,
            revision: m.revision(),
        }
    }

    #[test]
    fn patched_csr_is_bit_identical_to_fresh() {
        let mut m = toy_matrix();
        let base = CsrRatings::from_matrix(&m);
        let deltas = vec![
            rate_delta(&mut m, 4, 2, 3.0), // empty row gains a rating
            rate_delta(&mut m, 0, 2, 1.0), // insert mid-row
            rate_delta(&mut m, 0, 0, 2.0), // replace
            unrate_delta(&mut m, 1, 1),    // remove
            rate_delta(&mut m, 0, 2, 4.0), // re-rate the same cell
            unrate_delta(&mut m, 2, 2),    // row becomes empty
        ];
        let patched = base.apply_deltas(&deltas);
        let fresh = CsrRatings::from_matrix(&m);
        assert_eq!(patched.revision(), fresh.revision());
        assert_eq!(patched.row_ptr, fresh.row_ptr);
        assert_eq!(patched.row_items, fresh.row_items);
        assert_eq!(patched.col_ptr, fresh.col_ptr);
        assert_eq!(patched.col_users, fresh.col_users);
        let bits = |v: &[f64]| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
        assert_eq!(bits(&patched.row_vals), bits(&fresh.row_vals));
        assert_eq!(bits(&patched.col_vals), bits(&fresh.col_vals));
        assert_eq!(bits(&patched.user_mean), bits(&fresh.user_mean));
    }

    #[test]
    fn engine_patches_when_delta_chain_covers_the_gap() {
        let mut m = toy_matrix();
        let engine = ScanEngine::default();
        let params = SimParams {
            similarity: Similarity::Pearson,
            min_overlap: 1,
            significance: 0,
        };
        engine.csr(&m, &params);
        let deltas = vec![rate_delta(&mut m, 2, 0, 4.0), rate_delta(&mut m, 2, 1, 5.0)];
        engine.notify_deltas(&deltas);
        assert_eq!(engine.stats().pending_deltas, 2);
        let patched = engine.csr(&m, &params);
        let stats = engine.stats();
        assert_eq!(stats.csr_builds, 1, "no second full build");
        assert_eq!(stats.csr_patches, 1);
        assert_eq!(stats.pending_deltas, 0);
        assert_eq!(stats.patched_since_build, 2);
        assert_eq!(patched.revision(), m.revision());
        // Patched scan results equal a from-scratch engine's.
        let fresh_engine = ScanEngine::default();
        let fresh = fresh_engine.csr(&m, &params);
        let (mut a, mut b) = (Vec::new(), Vec::new());
        scan_similarities(&patched, &params, UserId(0), None, 64, &mut a);
        scan_similarities(&fresh, &params, UserId(0), None, 64, &mut b);
        let bits = |v: &[f64]| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
        assert_eq!(bits(&a), bits(&b));
    }

    #[test]
    fn unnotified_mutation_falls_back_to_full_rebuild() {
        let mut m = toy_matrix();
        let engine = ScanEngine::default();
        let params = SimParams {
            similarity: Similarity::Cosine,
            min_overlap: 1,
            significance: 0,
        };
        engine.csr(&m, &params);
        let _gap = rate_delta(&mut m, 3, 1, 2.0); // never notified
        let notified = vec![rate_delta(&mut m, 2, 0, 4.0)];
        engine.notify_deltas(&notified);
        let rebuilt = engine.csr(&m, &params);
        let stats = engine.stats();
        assert_eq!(stats.csr_patches, 0, "broken chain must not patch");
        assert_eq!(stats.csr_builds, 2);
        assert_eq!(rebuilt.revision(), m.revision());
        assert_eq!(stats.pending_deltas, 0, "stale backlog discarded");
    }

    #[test]
    fn drift_threshold_forces_full_rebuild() {
        let mut m = toy_matrix();
        let engine = ScanEngine::new(
            KernelConfig {
                tile: TileSize::Fixed(64),
                drift_threshold: 2,
            },
            IndexConfig::default(),
        );
        let params = SimParams {
            similarity: Similarity::Pearson,
            min_overlap: 1,
            significance: 0,
        };
        engine.csr(&m, &params);
        for round in 0..3u32 {
            let deltas = vec![rate_delta(&mut m, 2, 0, f64::from(round % 5) + 1.0)];
            engine.notify_deltas(&deltas);
            engine.csr(&m, &params);
        }
        let stats = engine.stats();
        assert_eq!(stats.csr_patches, 2, "threshold admits two deltas");
        assert_eq!(stats.csr_builds, 2, "third write crossed the threshold");
        assert_eq!(stats.patched_since_build, 0, "rebuild resets drift");
    }

    #[test]
    fn record_scan_tracks_modes_and_prune_ratio() {
        let engine = ScanEngine::default();
        let outcome = ScanOutcome {
            tiles: 3,
            scored: 10,
            pairs: 25,
        };
        engine.record_scan(&outcome, None, false);
        engine.record_scan(&outcome, Some((25, 100)), false);
        engine.record_scan(&outcome, None, true);
        let stats = engine.stats();
        assert_eq!(stats.exact_scans, 2);
        assert_eq!(stats.pruned_scans, 1);
        assert_eq!(stats.exact_fallbacks, 1);
        assert_eq!(stats.tiles_visited, 9);
        assert!((stats.last_prune_ratio - 0.75).abs() < 1e-12);
    }
}

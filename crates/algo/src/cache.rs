//! Sharded, lock-striped similarity cache for the batch serving path.
//!
//! User-based kNN recomputes `sim(u, v)` from the ratings matrix on every
//! call — the right default for a single conversational session (survey
//! Section 5.3 re-rates mid-session and must observe the change), but
//! quadratically wasteful for batch serving: one `recommend` call touches
//! every rater of every candidate item, and each rater recurs once per
//! item they rated. [`SimilarityCache`] memoizes symmetric pair
//! similarities so each pair is computed once per matrix revision.
//!
//! Design, sized for the "heavy traffic" north star:
//!
//! * **Sharding** — entries are spread over `N` shards by a 64-bit hash
//!   of the (ordered) pair, each shard behind its own mutex, so
//!   concurrent batch workers contend only when they hash to the same
//!   shard (lock striping).
//! * **LRU per shard** — every entry carries a shard-local access tick;
//!   a full shard evicts the oldest of a small sampled window (classic
//!   sampled LRU: O(1) eviction, no intrusive lists on the hit path).
//! * **Revision invalidation** — entries are valid for exactly one
//!   [`exrec_data::RatingsMatrix::revision`]. A shard touched with a
//!   newer revision clears itself lazily; there is no epoch scan and no
//!   global pause. Stale reads are therefore impossible by construction,
//!   which is what keeps cached results bit-identical to uncached ones.
//! * **Observability** — hit/miss/eviction/invalidation counters are
//!   `exrec-obs` [`Counter`]s; build with
//!   [`SimilarityCache::instrumented`] to surface them in a shared
//!   [`Metrics`] registry (`cache.<name>.hits`, …).
//!
//! The cache stores whatever `f64` the compute closure produced, so a
//! cached model returns *bit-identical* scores to an uncached one — the
//! property the batch determinism tests assert.

use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hasher};

use exrec_obs::{Counter, Metrics};
use parking_lot::Mutex;

/// A SplitMix64 hasher for the fixed-width pair keys. The default
/// SipHash is DoS-resistant but costs more than the similarity lookup it
/// guards; ids here are dense internal u32s, not attacker-controlled.
#[derive(Default)]
struct PairHasher(u64);

impl Hasher for PairHasher {
    fn write(&mut self, bytes: &[u8]) {
        // Keys hash via `write_u32` below; this path is only hit by
        // exotic key types and stays correct, just slower.
        for &b in bytes {
            self.0 = splitmix64(self.0 ^ u64::from(b));
        }
    }

    fn write_u32(&mut self, n: u32) {
        self.0 = (self.0 << 32) | u64::from(n);
    }

    fn finish(&self) -> u64 {
        splitmix64(self.0)
    }
}

type PairMap = HashMap<(u32, u32), usize, BuildHasherDefault<PairHasher>>;

/// How many resident entries an eviction inspects when choosing a
/// victim. Sampled LRU: evict the oldest tick among a small window.
const EVICTION_SAMPLE: usize = 8;

/// Configuration for a [`SimilarityCache`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CacheConfig {
    /// Number of lock-striped shards. Rounded up to at least 1; use a
    /// power of two for the cheapest shard selection.
    pub shards: usize,
    /// Maximum entries per shard; the cache holds at most
    /// `shards × capacity_per_shard` similarities.
    pub capacity_per_shard: usize,
}

impl Default for CacheConfig {
    fn default() -> Self {
        Self {
            shards: 64,
            capacity_per_shard: 8192,
        }
    }
}

impl CacheConfig {
    /// A config sized to hold roughly `entries` similarities in total.
    pub fn with_capacity(entries: usize) -> Self {
        let shards = 64;
        Self {
            shards,
            capacity_per_shard: entries.div_ceil(shards).max(1),
        }
    }
}

/// One resident similarity.
struct Entry {
    key: (u32, u32),
    value: f64,
    /// Shard-local logical clock at last access.
    tick: u64,
}

/// One lock stripe: an open-addressed index over a dense slab.
struct Shard {
    /// Key → slot in `entries`.
    index: PairMap,
    /// Dense entry slab; eviction swap-removes.
    entries: Vec<Entry>,
    /// Logical clock, bumped on every access.
    tick: u64,
    /// Rotating eviction cursor (start of the next sample window).
    cursor: usize,
    /// Matrix revision the resident entries were computed against.
    revision: u64,
}

impl Shard {
    fn new() -> Self {
        Shard {
            index: PairMap::default(),
            entries: Vec::new(),
            tick: 0,
            cursor: 0,
            revision: 0,
        }
    }

    /// Clears the shard if it holds entries for an older revision.
    /// Returns `true` when an invalidation happened.
    fn sync_revision(&mut self, revision: u64) -> bool {
        if self.revision == revision {
            return false;
        }
        let had_entries = !self.entries.is_empty();
        self.index.clear();
        self.entries.clear();
        self.revision = revision;
        had_entries
    }

    fn get(&mut self, key: (u32, u32)) -> Option<f64> {
        self.tick += 1;
        let tick = self.tick;
        self.index.get(&key).map(|&slot| {
            let entry = &mut self.entries[slot];
            entry.tick = tick;
            entry.value
        })
    }

    /// Inserts or refreshes an entry, evicting when at `capacity`.
    /// Returns `true` when an eviction happened.
    fn insert(&mut self, key: (u32, u32), value: f64, capacity: usize) -> bool {
        self.tick += 1;
        if let Some(&slot) = self.index.get(&key) {
            let entry = &mut self.entries[slot];
            entry.value = value;
            entry.tick = self.tick;
            return false;
        }
        let evicted = if self.entries.len() >= capacity {
            self.evict_one();
            true
        } else {
            false
        };
        self.index.insert(key, self.entries.len());
        self.entries.push(Entry {
            key,
            value,
            tick: self.tick,
        });
        evicted
    }

    /// Removes the least-recently-used entry of a small sampled window.
    fn evict_one(&mut self) {
        let n = self.entries.len();
        debug_assert!(n > 0);
        let start = self.cursor % n;
        let mut victim = start;
        for offset in 1..EVICTION_SAMPLE.min(n) {
            let probe = (start + offset) % n;
            if self.entries[probe].tick < self.entries[victim].tick {
                victim = probe;
            }
        }
        self.cursor = (start + EVICTION_SAMPLE) % n.max(1);
        let removed = self.entries.swap_remove(victim);
        self.index.remove(&removed.key);
        // The former tail now lives in the victim's slot.
        if victim < self.entries.len() {
            let moved_key = self.entries[victim].key;
            self.index.insert(moved_key, victim);
        }
    }
}

/// Point-in-time counters of a [`SimilarityCache`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that had to compute.
    pub misses: u64,
    /// Entries displaced by capacity pressure.
    pub evictions: u64,
    /// Shard clears triggered by a revision change.
    pub invalidations: u64,
    /// Currently resident entries, summed over shards.
    pub entries: usize,
}

impl CacheStats {
    /// Hits as a fraction of all lookups (0 when nothing was looked up).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// A sharded, revision-aware cache of symmetric pair similarities.
///
/// Keys are unordered `(u32, u32)` id pairs — user ids for user-user
/// similarity, item ids for item-item — normalized internally, so
/// `sim(a, b)` and `sim(b, a)` share one entry. Values are valid for a
/// single ratings-matrix revision; see the module docs for the
/// invalidation story.
///
/// ```
/// use exrec_algo::cache::{CacheConfig, SimilarityCache};
///
/// let cache = SimilarityCache::new(CacheConfig::default());
/// let v = cache.get_or_compute(3, 7, 0, || 0.25);
/// assert_eq!(v, 0.25);
/// // Second lookup (either orientation) is a hit: no recompute.
/// let v = cache.get_or_compute(7, 3, 0, || unreachable!());
/// assert_eq!(v, 0.25);
/// assert_eq!(cache.stats().hits, 1);
/// // A new revision invalidates.
/// let v = cache.get_or_compute(3, 7, 1, || -1.0);
/// assert_eq!(v, -1.0);
/// ```
pub struct SimilarityCache {
    shards: Vec<Mutex<Shard>>,
    capacity_per_shard: usize,
    hits: Counter,
    misses: Counter,
    evictions: Counter,
    invalidations: Counter,
}

impl std::fmt::Debug for SimilarityCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SimilarityCache")
            .field("shards", &self.shards.len())
            .field("capacity_per_shard", &self.capacity_per_shard)
            .field("stats", &self.stats())
            .finish()
    }
}

/// SplitMix64 finalizer: cheap, well-mixed.
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Shard-selection hash for an ordered pair key.
fn mix(key: (u32, u32)) -> u64 {
    splitmix64((u64::from(key.0) << 32) | u64::from(key.1))
}

impl SimilarityCache {
    /// Builds a cache with standalone (unregistered) counters.
    pub fn new(config: CacheConfig) -> Self {
        let n = config.shards.max(1);
        SimilarityCache {
            shards: (0..n).map(|_| Mutex::new(Shard::new())).collect(),
            capacity_per_shard: config.capacity_per_shard.max(1),
            hits: Counter::default(),
            misses: Counter::default(),
            evictions: Counter::default(),
            invalidations: Counter::default(),
        }
    }

    /// Builds a cache whose counters live in `metrics` under
    /// `cache.<name>.{hits,misses,evictions,invalidations}`, so snapshots
    /// and the `repro`/`serve_bench` telemetry dumps include them.
    pub fn instrumented(config: CacheConfig, metrics: &Metrics, name: &str) -> Self {
        let mut cache = Self::new(config);
        cache.hits = metrics.counter(&format!("cache.{name}.hits"));
        cache.misses = metrics.counter(&format!("cache.{name}.misses"));
        cache.evictions = metrics.counter(&format!("cache.{name}.evictions"));
        cache.invalidations = metrics.counter(&format!("cache.{name}.invalidations"));
        cache
    }

    /// Number of lock stripes.
    pub fn n_shards(&self) -> usize {
        self.shards.len()
    }

    /// Total entries the cache can hold
    /// (`shards × capacity_per_shard`).
    pub fn capacity(&self) -> usize {
        self.shards.len() * self.capacity_per_shard
    }

    fn shard_and_key(&self, a: u32, b: u32) -> (&Mutex<Shard>, (u32, u32)) {
        let key = if a <= b { (a, b) } else { (b, a) };
        let shard = (mix(key) as usize) % self.shards.len();
        (&self.shards[shard], key)
    }

    /// The cached similarity for the unordered pair `(a, b)` at
    /// `revision`, if resident.
    pub fn get(&self, a: u32, b: u32, revision: u64) -> Option<f64> {
        let (shard, key) = self.shard_and_key(a, b);
        let mut guard = shard.lock();
        if guard.sync_revision(revision) {
            self.invalidations.incr();
        }
        let found = guard.get(key);
        drop(guard);
        match found {
            Some(v) => {
                self.hits.incr();
                Some(v)
            }
            None => {
                self.misses.incr();
                None
            }
        }
    }

    /// Stores a similarity for the unordered pair `(a, b)` at `revision`.
    pub fn insert(&self, a: u32, b: u32, revision: u64, value: f64) {
        let (shard, key) = self.shard_and_key(a, b);
        let mut guard = shard.lock();
        if guard.sync_revision(revision) {
            self.invalidations.incr();
        }
        if guard.insert(key, value, self.capacity_per_shard) {
            self.evictions.incr();
        }
    }

    /// Returns the cached value or computes, stores and returns it.
    ///
    /// The shard lock is *not* held while `compute` runs, so two workers
    /// racing on the same cold pair may both compute; both arrive at the
    /// same deterministic value, so last-write-wins is harmless. This
    /// keeps similarity computation (which walks the ratings matrix) out
    /// of the critical section.
    pub fn get_or_compute(
        &self,
        a: u32,
        b: u32,
        revision: u64,
        compute: impl FnOnce() -> f64,
    ) -> f64 {
        if let Some(v) = self.get(a, b, revision) {
            return v;
        }
        let v = compute();
        self.insert(a, b, revision, v);
        v
    }

    /// Surgically evicts every entry involving one of `users`, then
    /// re-stamps all shards to `revision`. Returns the number of
    /// entries removed.
    ///
    /// This is the delta-invalidation path for live writes: a rating
    /// write touching user `u` changes only `u`'s row and mean, and
    /// `sim(a, b)` depends only on the rows and means of `a` and `b` —
    /// so every pair *not* containing `u` is bit-identical at the new
    /// revision and can legally survive. Callers must hold the matrix
    /// write lock while invalidating (see `exrec_data::MutableWorld`):
    /// re-stamping a shard before a concurrent write's stale entries
    /// were removed would make them readable again. The coarse
    /// `sync_revision` full-shard clear stays
    /// as the fallback for mutations that bypass delta notification
    /// (bulk loads), because those leave shard revisions behind the
    /// matrix and the next lookup clears the whole shard.
    pub fn invalidate_users(&self, users: &[u32], revision: u64) -> u64 {
        let mut removed = 0u64;
        for shard in &self.shards {
            let mut guard = shard.lock();
            let mut slot = 0usize;
            while slot < guard.entries.len() {
                let key = guard.entries[slot].key;
                if users.contains(&key.0) || users.contains(&key.1) {
                    guard.index.remove(&key);
                    guard.entries.swap_remove(slot);
                    // The former tail now lives in the vacated slot.
                    if slot < guard.entries.len() {
                        let moved_key = guard.entries[slot].key;
                        guard.index.insert(moved_key, slot);
                    }
                    removed += 1;
                } else {
                    slot += 1;
                }
            }
            guard.revision = revision;
        }
        removed
    }

    /// Drops every resident entry (counters are preserved).
    pub fn clear(&self) {
        for shard in &self.shards {
            let mut guard = shard.lock();
            guard.index.clear();
            guard.entries.clear();
        }
    }

    /// Currently resident entries, summed over shards.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.lock().entries.len()).sum()
    }

    /// Whether no entry is resident.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Snapshot of the hit/miss/eviction/invalidation counters plus the
    /// resident-entry count.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.get(),
            misses: self.misses.get(),
            evictions: self.evictions.get(),
            invalidations: self.invalidations.get(),
            entries: self.len(),
        }
    }
}

impl Default for SimilarityCache {
    fn default() -> Self {
        Self::new(CacheConfig::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn hit_after_miss_and_symmetry() {
        let cache = SimilarityCache::new(CacheConfig::default());
        assert_eq!(cache.get(1, 2, 0), None);
        cache.insert(1, 2, 0, 0.5);
        assert_eq!(cache.get(2, 1, 0), Some(0.5), "pair key is unordered");
        let s = cache.stats();
        assert_eq!((s.hits, s.misses, s.entries), (1, 1, 1));
        assert!((s.hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn revision_change_invalidates_lazily() {
        let cache = SimilarityCache::new(CacheConfig {
            shards: 1,
            capacity_per_shard: 16,
        });
        cache.insert(1, 2, 0, 0.5);
        assert_eq!(cache.get(1, 2, 1), None, "old revision must not leak");
        assert_eq!(cache.stats().invalidations, 1);
        // The shard is now on revision 1 and usable again.
        cache.insert(1, 2, 1, -0.5);
        assert_eq!(cache.get(1, 2, 1), Some(-0.5));
    }

    #[test]
    fn capacity_is_enforced_with_lru_bias() {
        let cache = SimilarityCache::new(CacheConfig {
            shards: 1,
            capacity_per_shard: 8,
        });
        for i in 0..8 {
            cache.insert(i, 1000, 0, i as f64);
        }
        // Touch key 0 so it is the hottest entry.
        assert!(cache.get(0, 1000, 0).is_some());
        for i in 8..64 {
            cache.insert(i, 1000, 0, i as f64);
        }
        let s = cache.stats();
        assert_eq!(s.entries, 8, "shard never exceeds capacity");
        assert_eq!(s.evictions, 56);
    }

    #[test]
    fn get_or_compute_runs_closure_once_per_revision() {
        let cache = SimilarityCache::new(CacheConfig::default());
        let mut calls = 0;
        let v = cache.get_or_compute(9, 4, 7, || {
            calls += 1;
            0.25
        });
        assert_eq!((v, calls), (0.25, 1));
        let v = cache.get_or_compute(4, 9, 7, || {
            calls += 1;
            f64::NAN
        });
        assert_eq!((v, calls), (0.25, 1), "second lookup must not compute");
    }

    #[test]
    fn invalidate_users_is_surgical() {
        let cache = SimilarityCache::new(CacheConfig {
            shards: 4,
            capacity_per_shard: 64,
        });
        for a in 0..8u32 {
            for b in (a + 1)..8 {
                cache.insert(a, b, 0, f64::from(a * 10 + b));
            }
        }
        let total = cache.len();
        let removed = cache.invalidate_users(&[3], 1);
        assert_eq!(removed, 7, "user 3 appears in 7 of the 28 pairs");
        assert_eq!(cache.len(), total - 7);
        // Surviving pairs are readable at the *new* revision without a
        // shard clear — that is the whole point of the surgical path.
        assert_eq!(cache.get(0, 1, 1), Some(1.0));
        assert_eq!(cache.get(3, 5, 1), None, "touched pair is gone");
        assert_eq!(cache.stats().invalidations, 0, "no shard-wide clear");
    }

    #[test]
    fn invalidate_users_handles_batches_and_absent_users() {
        let cache = SimilarityCache::new(CacheConfig {
            shards: 2,
            capacity_per_shard: 16,
        });
        cache.insert(1, 2, 0, 0.5);
        cache.insert(2, 3, 0, 0.25);
        cache.insert(4, 5, 0, 0.75);
        assert_eq!(cache.invalidate_users(&[1, 3], 5), 2);
        assert_eq!(cache.invalidate_users(&[99], 6), 0);
        assert_eq!(cache.get(4, 5, 6), Some(0.75));
    }

    #[test]
    fn clear_preserves_counters() {
        let cache = SimilarityCache::default();
        cache.insert(1, 2, 0, 1.0);
        assert_eq!(cache.len(), 1);
        cache.clear();
        assert!(cache.is_empty());
        cache.insert(1, 2, 0, 2.0);
        assert_eq!(cache.get(1, 2, 0), Some(2.0));
    }

    #[test]
    fn instrumented_counters_reach_the_registry() {
        let metrics = Metrics::new();
        let cache = SimilarityCache::instrumented(CacheConfig::default(), &metrics, "user_sim");
        cache.get_or_compute(1, 2, 0, || 0.5);
        cache.get_or_compute(1, 2, 0, || unreachable!());
        let report = metrics.report();
        assert_eq!(report.counters["cache.user_sim.hits"], 1);
        assert_eq!(report.counters["cache.user_sim.misses"], 1);
        assert_eq!(report.counters["cache.user_sim.evictions"], 0);
    }

    /// Loom-style interleaving smoke test: many threads hammer a tiny,
    /// highly contended cache with overlapping keys and mixed revisions.
    /// We cannot enumerate interleavings without the real loom crate, but
    /// we can assert the invariants every interleaving must preserve.
    #[test]
    fn concurrent_hammer_preserves_invariants() {
        let cache = Arc::new(SimilarityCache::new(CacheConfig {
            shards: 4,
            capacity_per_shard: 32,
        }));
        let threads = 8;
        let per_thread = 2_000u32;
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                let cache = Arc::clone(&cache);
                std::thread::spawn(move || {
                    for i in 0..per_thread {
                        let a = (i + t) % 64;
                        let b = (i * 7 + t) % 64;
                        let rev = u64::from(i / 1000); // two revisions
                        let v = cache.get_or_compute(a, b, rev, || {
                            f64::from(a.min(b)) + f64::from(a.max(b)) / 100.0
                        });
                        // Whatever interleaving happened, the value must
                        // be the deterministic function of the key.
                        let expect = f64::from(a.min(b)) + f64::from(a.max(b)) / 100.0;
                        assert_eq!(v.to_bits(), expect.to_bits());
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let s = cache.stats();
        assert_eq!(
            s.hits + s.misses,
            u64::from(per_thread) * threads as u64,
            "every lookup is counted exactly once"
        );
        assert!(s.entries <= 4 * 32, "capacity holds under contention");
        assert!(s.invalidations >= 1, "revision flip must invalidate");
    }
}

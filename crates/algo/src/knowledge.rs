//! Knowledge-based recommendation via multi-attribute utility (MAUT).
//!
//! This is the substrate behind the survey's *preference-based*
//! explanations and the "user specifies their requirements" interaction
//! (Section 5.1): the user states weighted requirements over schema
//! attributes; items are filtered by hard constraints and ranked by
//! weighted satisfaction. The per-attribute breakdown *is* the
//! explanation ("price 450 satisfies your ≤ 500 budget…").

use crate::recommender::{Ctx, ModelEvidence, Recommender, Scored, UtilityTerm};
use exrec_types::{AttrValue, Confidence, Error, Item, ItemId, Prediction, Result, UserId};

/// A single requirement's constraint.
#[derive(Debug, Clone, PartialEq)]
pub enum Constraint {
    /// Numeric value should be at most this (e.g. price ≤ 500).
    AtMost(f64),
    /// Numeric value should be at least this (e.g. resolution ≥ 8).
    AtLeast(f64),
    /// Numeric value should be near `target`; satisfaction decays to 0 at
    /// `target ± tolerance`.
    Near {
        /// Preferred value.
        target: f64,
        /// Distance at which satisfaction reaches zero.
        tolerance: f64,
    },
    /// Categorical value must equal this.
    Equals(String),
    /// Categorical value must be one of these.
    OneOf(Vec<String>),
    /// Flag must have this value.
    Is(bool),
}

/// A weighted requirement over one attribute.
#[derive(Debug, Clone, PartialEq)]
pub struct Requirement {
    /// Attribute name (must exist in the domain schema to match).
    pub attribute: String,
    /// The constraint.
    pub constraint: Constraint,
    /// Relative importance (> 0).
    pub weight: f64,
    /// Hard requirements filter items that miss them; soft ones only
    /// lower the score.
    pub hard: bool,
}

impl Requirement {
    /// A soft requirement with weight 1.
    pub fn soft(attribute: &str, constraint: Constraint) -> Self {
        Self {
            attribute: attribute.to_owned(),
            constraint,
            weight: 1.0,
            hard: false,
        }
    }

    /// A hard requirement with weight 1.
    pub fn hard(attribute: &str, constraint: Constraint) -> Self {
        Self {
            attribute: attribute.to_owned(),
            constraint,
            weight: 1.0,
            hard: true,
        }
    }

    /// Adjusts the weight (builder style).
    pub fn with_weight(mut self, weight: f64) -> Self {
        self.weight = weight;
        self
    }

    /// Satisfaction of `item` in `[0, 1]`, plus a human-readable account.
    pub fn satisfaction(&self, item: &Item) -> (f64, String) {
        let value = item.attrs.get(&self.attribute);
        match (&self.constraint, value) {
            (Constraint::AtMost(limit), Some(AttrValue::Num(v))) => {
                if v <= limit {
                    (
                        1.0,
                        format!("{} {v} is within your limit of {limit}", self.attribute),
                    )
                } else {
                    let s = (1.0 - (v - limit) / limit.abs().max(1e-9)).max(0.0);
                    (
                        s,
                        format!("{} {v} exceeds your limit of {limit}", self.attribute),
                    )
                }
            }
            (Constraint::AtLeast(floor), Some(AttrValue::Num(v))) => {
                if v >= floor {
                    (
                        1.0,
                        format!("{} {v} meets your minimum of {floor}", self.attribute),
                    )
                } else {
                    let s = (v / floor.abs().max(1e-9)).clamp(0.0, 1.0);
                    (
                        s,
                        format!("{} {v} is below your minimum of {floor}", self.attribute),
                    )
                }
            }
            (Constraint::Near { target, tolerance }, Some(AttrValue::Num(v))) => {
                let s = (1.0 - (v - target).abs() / tolerance.max(1e-9)).max(0.0);
                (s, format!("{} {v} vs preferred {target}", self.attribute))
            }
            (Constraint::Equals(want), Some(AttrValue::Cat(have))) => {
                if want == have {
                    (1.0, format!("{} is {have}, as requested", self.attribute))
                } else {
                    (0.0, format!("{} is {have}, not {want}", self.attribute))
                }
            }
            (Constraint::OneOf(wants), Some(AttrValue::Cat(have))) => {
                if wants.iter().any(|w| w == have) {
                    (
                        1.0,
                        format!("{} is {have}, one of your choices", self.attribute),
                    )
                } else {
                    (
                        0.0,
                        format!("{} is {have}, not among your choices", self.attribute),
                    )
                }
            }
            (Constraint::Is(want), Some(AttrValue::Flag(have))) => {
                if want == have {
                    (1.0, format!("{} requirement met", self.attribute))
                } else {
                    (0.0, format!("{} requirement not met", self.attribute))
                }
            }
            _ => (
                0.0,
                format!("{} is not specified for this item", self.attribute),
            ),
        }
    }
}

/// A MAUT scorer over a set of requirements.
///
/// User-independent: requirements belong to a session, not to a learned
/// profile, so the same instance serves any user.
///
/// ```
/// use exrec_algo::knowledge::{Constraint, Maut, Requirement};
/// use exrec_types::{AttributeSet, Item, ItemId};
///
/// let maut = Maut::new(vec![
///     Requirement::soft("price", Constraint::AtMost(500.0)).with_weight(2.0),
/// ])?;
/// let camera = Item::new(ItemId::new(0), "Lumora C200")
///     .with_attrs(AttributeSet::new().with("price", 450.0));
/// let (utility, terms) = maut.utility(&camera);
/// assert_eq!(utility, 1.0);
/// assert!(terms[0].detail.contains("within your limit"));
/// # Ok::<(), exrec_types::Error>(())
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Maut {
    requirements: Vec<Requirement>,
}

impl Maut {
    /// Builds a scorer.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidConfig`] when any weight is non-positive.
    pub fn new(requirements: Vec<Requirement>) -> Result<Self> {
        if requirements.iter().any(|r| r.weight <= 0.0) {
            return Err(Error::InvalidConfig {
                parameter: "weight",
                constraint: "all requirement weights > 0".to_owned(),
            });
        }
        Ok(Self { requirements })
    }

    /// The active requirements.
    pub fn requirements(&self) -> &[Requirement] {
        &self.requirements
    }

    /// Adds a requirement.
    pub fn add(&mut self, req: Requirement) {
        self.requirements.push(req);
    }

    /// Removes all requirements on `attribute`, returning how many were
    /// dropped (used by critique "repair actions").
    pub fn relax(&mut self, attribute: &str) -> usize {
        let before = self.requirements.len();
        self.requirements.retain(|r| r.attribute != attribute);
        before - self.requirements.len()
    }

    /// Whether `item` passes every *hard* requirement.
    pub fn passes_hard(&self, item: &Item) -> bool {
        self.requirements
            .iter()
            .filter(|r| r.hard)
            .all(|r| r.satisfaction(item).0 >= 1.0 - 1e-9)
    }

    /// The weighted utility of `item` in `[0, 1]` plus per-term breakdown.
    /// An empty requirement set scores 0.5 everywhere (indifference).
    pub fn utility(&self, item: &Item) -> (f64, Vec<UtilityTerm>) {
        if self.requirements.is_empty() {
            return (0.5, Vec::new());
        }
        let mut terms = Vec::with_capacity(self.requirements.len());
        let mut num = 0.0;
        let mut den = 0.0;
        for req in &self.requirements {
            let (s, detail) = req.satisfaction(item);
            num += req.weight * s;
            den += req.weight;
            terms.push(UtilityTerm {
                attribute: req.attribute.clone(),
                satisfaction: s,
                weight: req.weight,
                detail,
            });
        }
        (num / den, terms)
    }

    /// Ranks catalog items by utility, filtering hard-requirement misses.
    pub fn rank<'a>(&self, ctx: &Ctx<'a>, n: usize) -> Vec<Scored> {
        let scale = ctx.ratings.scale();
        let mut scored: Vec<Scored> = ctx
            .catalog
            .iter()
            .filter(|it| self.passes_hard(it))
            .map(|it| {
                let (u, _) = self.utility(it);
                Scored {
                    item: it.id,
                    prediction: Prediction::new(
                        scale.denormalize_continuous(u),
                        Confidence::CERTAIN,
                    ),
                }
            })
            .collect();
        scored.sort_by(|a, b| {
            b.prediction
                .score
                .partial_cmp(&a.prediction.score)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.item.cmp(&b.item))
        });
        scored.truncate(n);
        scored
    }
}

impl Recommender for Maut {
    fn name(&self) -> &'static str {
        "maut"
    }

    fn predict(&self, ctx: &Ctx<'_>, _user: UserId, item: ItemId) -> Result<Prediction> {
        let it = ctx.catalog.get(item)?;
        let (u, _) = self.utility(it);
        Ok(Prediction::new(
            ctx.ratings.scale().denormalize_continuous(u),
            Confidence::CERTAIN,
        ))
    }

    fn evidence(&self, ctx: &Ctx<'_>, _user: UserId, item: ItemId) -> Result<ModelEvidence> {
        let it = ctx.catalog.get(item)?;
        let (total, terms) = self.utility(it);
        Ok(ModelEvidence::Utility { terms, total })
    }

    fn recommend(&self, ctx: &Ctx<'_>, user: UserId, n: usize) -> Vec<Scored> {
        // Knowledge-based ranking ignores rating history but still skips
        // items the user already rated, like every other recommender.
        self.rank(ctx, usize::MAX)
            .into_iter()
            .filter(|s| ctx.ratings.rating(user, s.item).is_none())
            .take(n)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use exrec_data::synth::{cameras, WorldConfig};
    use exrec_data::World;

    fn world() -> World {
        cameras::generate(&WorldConfig {
            n_items: 40,
            n_users: 5,
            ..WorldConfig::default()
        })
    }

    #[test]
    fn weights_must_be_positive() {
        let req = Requirement::soft("price", Constraint::AtMost(500.0)).with_weight(0.0);
        assert!(Maut::new(vec![req]).is_err());
    }

    #[test]
    fn hard_constraints_filter() {
        let w = world();
        let ctx = Ctx::new(&w.ratings, &w.catalog);
        let maut = Maut::new(vec![Requirement::hard("price", Constraint::AtMost(400.0))]).unwrap();
        let ranked = maut.rank(&ctx, 100);
        assert!(!ranked.is_empty());
        for s in &ranked {
            let item = w.catalog.get(s.item).unwrap();
            assert!(item.attrs.num("price").unwrap() <= 400.0);
        }
    }

    #[test]
    fn soft_constraints_rank() {
        let w = world();
        let ctx = Ctx::new(&w.ratings, &w.catalog);
        let maut = Maut::new(vec![
            Requirement::soft("price", Constraint::AtMost(300.0)).with_weight(2.0),
            Requirement::soft("resolution", Constraint::AtLeast(10.0)),
        ])
        .unwrap();
        let ranked = maut.rank(&ctx, w.catalog.len());
        assert_eq!(
            ranked.len(),
            w.catalog.len(),
            "soft constraints filter nothing"
        );
        assert!(ranked
            .windows(2)
            .all(|p| p[0].prediction.score >= p[1].prediction.score));
    }

    #[test]
    fn utility_breakdown_matches_total() {
        let w = world();
        let item = w.catalog.get(ItemId::new(0)).unwrap();
        let maut = Maut::new(vec![
            Requirement::soft("price", Constraint::AtMost(500.0)).with_weight(3.0),
            Requirement::soft("flash", Constraint::Is(true)),
        ])
        .unwrap();
        let (total, terms) = maut.utility(item);
        let manual: f64 = terms.iter().map(|t| t.weight * t.satisfaction).sum::<f64>()
            / terms.iter().map(|t| t.weight).sum::<f64>();
        assert!((total - manual).abs() < 1e-12);
        assert_eq!(terms.len(), 2);
        assert!(terms.iter().all(|t| (0.0..=1.0).contains(&t.satisfaction)));
    }

    #[test]
    fn near_constraint_decays() {
        let req = Requirement::soft(
            "zoom",
            Constraint::Near {
                target: 10.0,
                tolerance: 5.0,
            },
        );
        let mk = |zoom: f64| {
            Item::new(ItemId::new(0), "c")
                .with_attrs(exrec_types::AttributeSet::new().with("zoom", zoom))
        };
        assert!((req.satisfaction(&mk(10.0)).0 - 1.0).abs() < 1e-9);
        assert!((req.satisfaction(&mk(12.5)).0 - 0.5).abs() < 1e-9);
        assert_eq!(req.satisfaction(&mk(20.0)).0, 0.0);
    }

    #[test]
    fn missing_attribute_scores_zero() {
        let req = Requirement::soft("nonexistent", Constraint::AtMost(1.0));
        let item = Item::new(ItemId::new(0), "x");
        let (s, detail) = req.satisfaction(&item);
        assert_eq!(s, 0.0);
        assert!(detail.contains("not specified"));
    }

    #[test]
    fn relax_removes_requirements() {
        let mut maut = Maut::new(vec![
            Requirement::hard("price", Constraint::AtMost(100.0)),
            Requirement::soft(
                "price",
                Constraint::Near {
                    target: 80.0,
                    tolerance: 20.0,
                },
            ),
            Requirement::soft("zoom", Constraint::AtLeast(5.0)),
        ])
        .unwrap();
        assert_eq!(maut.relax("price"), 2);
        assert_eq!(maut.requirements().len(), 1);
        assert_eq!(maut.relax("price"), 0);
    }

    #[test]
    fn evidence_is_utility() {
        let w = world();
        let ctx = Ctx::new(&w.ratings, &w.catalog);
        let maut = Maut::new(vec![Requirement::soft("price", Constraint::AtMost(500.0))]).unwrap();
        match maut.evidence(&ctx, UserId(0), ItemId(0)).unwrap() {
            ModelEvidence::Utility { terms, total } => {
                assert_eq!(terms.len(), 1);
                assert!((0.0..=1.0).contains(&total));
            }
            other => panic!("wrong evidence {}", other.kind()),
        }
    }

    #[test]
    fn empty_requirements_are_indifferent() {
        let maut = Maut::default();
        let item = Item::new(ItemId::new(0), "x");
        assert_eq!(maut.utility(&item).0, 0.5);
        assert!(maut.passes_hard(&item));
    }
}

//! Matrix factorization (FunkSVD-style biased SGD).
//!
//! Included as the survey's implicit counter-example: latent-factor
//! models are typically *more accurate* than neighbourhood methods yet
//! *explanation-poor* — their evidence ([`ModelEvidence::Latent`]) names
//! anonymous factors no user-facing interface can verbalize beyond a
//! strength/confidence disclosure. The accuracy-vs-explainability
//! experiment (`repro --accuracy`) makes that trade concrete.

use crate::recommender::{Ctx, LatentTerm, ModelEvidence, Recommender};
use exrec_types::{Confidence, Error, ItemId, Prediction, Result, UserId};
use rand::RngExt;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Configuration for [`MatrixFactorization`].
#[derive(Debug, Clone, PartialEq)]
pub struct MfConfig {
    /// Number of latent factors.
    pub factors: usize,
    /// SGD epochs.
    pub epochs: usize,
    /// Learning rate.
    pub learning_rate: f64,
    /// L2 regularization.
    pub regularization: f64,
    /// RNG seed for factor initialization.
    pub seed: u64,
}

impl Default for MfConfig {
    fn default() -> Self {
        Self {
            factors: 12,
            epochs: 40,
            learning_rate: 0.01,
            regularization: 0.05,
            seed: 0x5BD,
        }
    }
}

/// A fitted biased matrix-factorization model:
/// `r̂(u,i) = μ + b_u + b_i + p_u · q_i`.
#[derive(Debug, Clone)]
pub struct MatrixFactorization {
    config: MfConfig,
    global_mean: f64,
    user_bias: Vec<f64>,
    item_bias: Vec<f64>,
    user_factors: Vec<Vec<f64>>,
    item_factors: Vec<Vec<f64>>,
    /// Ratings-per-user at fit time, for confidence.
    user_support: Vec<usize>,
}

impl MatrixFactorization {
    /// Fits the model by SGD over the observed ratings.
    ///
    /// # Errors
    ///
    /// [`Error::InvalidConfig`] for zero factors/epochs or non-positive
    /// learning rate; [`Error::EmptyModel`] for an empty matrix.
    pub fn fit(ctx: &Ctx<'_>, config: MfConfig) -> Result<Self> {
        if config.factors == 0 || config.epochs == 0 {
            return Err(Error::InvalidConfig {
                parameter: "factors/epochs",
                constraint: "both >= 1".to_owned(),
            });
        }
        if config.learning_rate <= 0.0 {
            return Err(Error::InvalidConfig {
                parameter: "learning_rate",
                constraint: "> 0".to_owned(),
            });
        }
        if ctx.ratings.n_ratings() == 0 {
            return Err(Error::EmptyModel {
                model: "matrix-factorization",
            });
        }

        let n_users = ctx.ratings.n_users();
        let n_items = ctx.ratings.n_items();
        let mut rng = ChaCha8Rng::seed_from_u64(config.seed);
        let mut init = |n: usize, k: usize| -> Vec<Vec<f64>> {
            (0..n)
                .map(|_| (0..k).map(|_| rng.random_range(-0.1..0.1)).collect())
                .collect()
        };
        let mut user_factors = init(n_users, config.factors);
        let mut item_factors = init(n_items, config.factors);
        let mut user_bias = vec![0.0; n_users];
        let mut item_bias = vec![0.0; n_items];
        let global_mean = ctx.ratings.global_mean();

        let triples: Vec<(usize, usize, f64)> = ctx
            .ratings
            .triples()
            .map(|(u, i, v)| (u.index(), i.index(), v))
            .collect();

        let lr = config.learning_rate;
        let reg = config.regularization;
        for _ in 0..config.epochs {
            for &(u, i, r) in &triples {
                let dot: f64 = user_factors[u]
                    .iter()
                    .zip(&item_factors[i])
                    .map(|(a, b)| a * b)
                    .sum();
                let err = r - (global_mean + user_bias[u] + item_bias[i] + dot);
                user_bias[u] += lr * (err - reg * user_bias[u]);
                item_bias[i] += lr * (err - reg * item_bias[i]);
                for k in 0..config.factors {
                    let pu = user_factors[u][k];
                    let qi = item_factors[i][k];
                    user_factors[u][k] += lr * (err * qi - reg * pu);
                    item_factors[i][k] += lr * (err * pu - reg * qi);
                }
            }
        }

        let user_support = (0..n_users)
            .map(|u| ctx.ratings.user_ratings(UserId::new(u as u32)).len())
            .collect();

        Ok(Self {
            config,
            global_mean,
            user_bias,
            item_bias,
            user_factors,
            item_factors,
            user_support,
        })
    }

    /// The configuration in use.
    pub fn config(&self) -> &MfConfig {
        &self.config
    }

    fn check_ids(&self, user: UserId, item: ItemId) -> Result<()> {
        if user.index() >= self.user_factors.len() {
            return Err(Error::UnknownUser { user });
        }
        if item.index() >= self.item_factors.len() {
            return Err(Error::UnknownItem { item });
        }
        Ok(())
    }

    fn raw_score(&self, user: UserId, item: ItemId) -> f64 {
        let dot: f64 = self.user_factors[user.index()]
            .iter()
            .zip(&self.item_factors[item.index()])
            .map(|(a, b)| a * b)
            .sum();
        self.global_mean + self.user_bias[user.index()] + self.item_bias[item.index()] + dot
    }
}

impl Recommender for MatrixFactorization {
    fn name(&self) -> &'static str {
        "matrix-factorization"
    }

    fn predict(&self, ctx: &Ctx<'_>, user: UserId, item: ItemId) -> Result<Prediction> {
        self.check_ids(user, item)?;
        let score = ctx.ratings.scale().bound(self.raw_score(user, item));
        let support = self.user_support[user.index()] as f64;
        Ok(Prediction::new(
            score,
            Confidence::new((support / 20.0).min(1.0) * 0.8),
        ))
    }

    fn evidence(&self, _ctx: &Ctx<'_>, user: UserId, item: ItemId) -> Result<ModelEvidence> {
        self.check_ids(user, item)?;
        // The honest evidence of a latent model: anonymous factor
        // contributions. No content-style interface can verbalize these —
        // which is exactly the survey-relevant property.
        let mut terms: Vec<LatentTerm> = self.user_factors[user.index()]
            .iter()
            .zip(&self.item_factors[item.index()])
            .enumerate()
            .map(|(k, (p, q))| LatentTerm {
                factor: k,
                contribution: p * q,
            })
            .collect();
        terms.sort_by(|a, b| {
            b.contribution
                .abs()
                .partial_cmp(&a.contribution.abs())
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        Ok(ModelEvidence::Latent {
            terms,
            bias: self.global_mean + self.user_bias[user.index()] + self.item_bias[item.index()],
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use exrec_data::split::holdout;
    use exrec_data::synth::{movies, WorldConfig};
    use exrec_data::World;

    fn world() -> World {
        movies::generate(&WorldConfig {
            n_users: 60,
            n_items: 50,
            density: 0.35,
            ..WorldConfig::default()
        })
    }

    #[test]
    fn invalid_configs_rejected() {
        let w = world();
        let ctx = Ctx::new(&w.ratings, &w.catalog);
        for cfg in [
            MfConfig {
                factors: 0,
                ..MfConfig::default()
            },
            MfConfig {
                epochs: 0,
                ..MfConfig::default()
            },
            MfConfig {
                learning_rate: 0.0,
                ..MfConfig::default()
            },
        ] {
            assert!(MatrixFactorization::fit(&ctx, cfg).is_err());
        }
    }

    #[test]
    fn beats_global_mean_and_is_competitive_with_knn() {
        let w = world();
        let split = holdout(&w.ratings, 0.2, 3);
        let ctx = Ctx::new(&split.train, &w.catalog);
        let mf = MatrixFactorization::fit(&ctx, MfConfig::default()).unwrap();
        let knn = crate::UserKnn::default();
        let gm = split.train.global_mean();
        let (mut mf_err, mut knn_err, mut gm_err, mut n) = (0.0, 0.0, 0.0, 0);
        for &(u, i, truth) in &split.test {
            let (Ok(pm), Ok(pk)) = (mf.predict(&ctx, u, i), knn.predict(&ctx, u, i)) else {
                continue;
            };
            mf_err += (pm.score - truth).abs();
            knn_err += (pk.score - truth).abs();
            gm_err += (gm - truth).abs();
            n += 1;
        }
        assert!(n > 30);
        let (mf_mae, knn_mae, gm_mae) = (mf_err / n as f64, knn_err / n as f64, gm_err / n as f64);
        assert!(
            mf_mae < gm_mae,
            "MF {mf_mae:.3} must beat global mean {gm_mae:.3}"
        );
        assert!(
            mf_mae < knn_mae * 1.15,
            "MF {mf_mae:.3} should be competitive with kNN {knn_mae:.3}"
        );
    }

    #[test]
    fn evidence_is_latent_and_sorted() {
        let w = world();
        let ctx = Ctx::new(&w.ratings, &w.catalog);
        let mf = MatrixFactorization::fit(&ctx, MfConfig::default()).unwrap();
        match mf.evidence(&ctx, UserId::new(0), ItemId::new(0)).unwrap() {
            ModelEvidence::Latent { terms, .. } => {
                assert_eq!(terms.len(), 12);
                assert!(terms
                    .windows(2)
                    .all(|w| w[0].contribution.abs() >= w[1].contribution.abs()));
            }
            other => panic!("wrong evidence {}", other.kind()),
        }
    }

    #[test]
    fn latent_evidence_cannot_feed_content_interfaces() {
        // The survey-relevant property: accurate but explanation-poor.
        // (Verified at the interface layer in exrec-core tests; here we
        // just pin the evidence kind.)
        let w = world();
        let ctx = Ctx::new(&w.ratings, &w.catalog);
        let mf = MatrixFactorization::fit(&ctx, MfConfig::default()).unwrap();
        let ev = mf.evidence(&ctx, UserId::new(1), ItemId::new(2)).unwrap();
        assert_eq!(ev.kind(), "latent");
    }

    #[test]
    fn deterministic_given_seed() {
        let w = world();
        let ctx = Ctx::new(&w.ratings, &w.catalog);
        let a = MatrixFactorization::fit(&ctx, MfConfig::default()).unwrap();
        let b = MatrixFactorization::fit(&ctx, MfConfig::default()).unwrap();
        let p1 = a.predict(&ctx, UserId::new(3), ItemId::new(4)).unwrap();
        let p2 = b.predict(&ctx, UserId::new(3), ItemId::new(4)).unwrap();
        assert_eq!(p1.score, p2.score);
    }

    #[test]
    fn predictions_bounded() {
        let w = world();
        let ctx = Ctx::new(&w.ratings, &w.catalog);
        let mf = MatrixFactorization::fit(&ctx, MfConfig::default()).unwrap();
        for u in w.ratings.users().take(10) {
            for i in w.catalog.ids().take(10) {
                let p = mf.predict(&ctx, u, i).unwrap();
                assert!(p.score >= 1.0 - 1e-9 && p.score <= 5.0 + 1e-9);
            }
        }
    }
}

//! Non-personalized baselines.
//!
//! Every study needs a control arm: predicting the item's (damped) mean
//! rating, the user's own mean, or the global mean. The popularity
//! baseline also feeds the "recommender personality" machinery — an
//! *affirming* personality (survey Section 4.6) leans toward familiar,
//! popular items.

use crate::recommender::{Ctx, ModelEvidence, Recommender};
use exrec_types::{Confidence, Error, ItemId, Prediction, Result, UserId};

/// Predicts an item's damped mean rating:
/// `(sum + damping × global_mean) / (count + damping)`.
#[derive(Debug, Clone, PartialEq)]
pub struct Popularity {
    /// Bayesian damping strength (pseudo-ratings at the global mean).
    pub damping: f64,
}

impl Default for Popularity {
    fn default() -> Self {
        Self { damping: 5.0 }
    }
}

impl Recommender for Popularity {
    fn name(&self) -> &'static str {
        "popularity"
    }

    fn predict(&self, ctx: &Ctx<'_>, _user: UserId, item: ItemId) -> Result<Prediction> {
        if item.index() >= ctx.ratings.n_items() {
            return Err(Error::UnknownItem { item });
        }
        let ratings = ctx.ratings.item_ratings(item);
        let global = ctx.ratings.global_mean();
        let sum: f64 = ratings.iter().map(|&(_, v)| v).sum();
        let n = ratings.len() as f64;
        let score = (sum + self.damping * global) / (n + self.damping);
        let confidence = Confidence::new((n / 20.0).min(1.0));
        Ok(Prediction::new(
            ctx.ratings.scale().bound(score),
            confidence,
        ))
    }

    fn evidence(&self, ctx: &Ctx<'_>, _user: UserId, item: ItemId) -> Result<ModelEvidence> {
        if item.index() >= ctx.ratings.n_items() {
            return Err(Error::UnknownItem { item });
        }
        let ratings = ctx.ratings.item_ratings(item);
        Ok(ModelEvidence::Popularity {
            mean: ctx
                .ratings
                .item_mean(item)
                .unwrap_or_else(|| ctx.ratings.global_mean()),
            count: ratings.len(),
        })
    }
}

/// Predicts the user's own mean rating for everything.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct UserMean;

impl Recommender for UserMean {
    fn name(&self) -> &'static str {
        "user-mean"
    }

    fn predict(&self, ctx: &Ctx<'_>, user: UserId, item: ItemId) -> Result<Prediction> {
        if user.index() >= ctx.ratings.n_users() {
            return Err(Error::UnknownUser { user });
        }
        if item.index() >= ctx.ratings.n_items() {
            return Err(Error::UnknownItem { item });
        }
        let mean = ctx.ratings.user_mean(user).ok_or(Error::NoPrediction {
            user,
            item,
            reason: "user has no ratings",
        })?;
        let n = ctx.ratings.user_ratings(user).len() as f64;
        Ok(Prediction::new(mean, Confidence::new((n / 20.0).min(1.0))))
    }

    fn evidence(&self, ctx: &Ctx<'_>, user: UserId, item: ItemId) -> Result<ModelEvidence> {
        if item.index() >= ctx.ratings.n_items() {
            return Err(Error::UnknownItem { item });
        }
        let mean = ctx.ratings.user_mean(user).ok_or(Error::NoPrediction {
            user,
            item,
            reason: "user has no ratings",
        })?;
        Ok(ModelEvidence::Popularity {
            mean,
            count: ctx.ratings.user_ratings(user).len(),
        })
    }
}

/// Predicts the global mean for everything. The weakest sensible control.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct GlobalMean;

impl Recommender for GlobalMean {
    fn name(&self) -> &'static str {
        "global-mean"
    }

    fn predict(&self, ctx: &Ctx<'_>, _user: UserId, item: ItemId) -> Result<Prediction> {
        if item.index() >= ctx.ratings.n_items() {
            return Err(Error::UnknownItem { item });
        }
        Ok(Prediction::new(
            ctx.ratings.global_mean(),
            Confidence::new(0.2),
        ))
    }

    fn evidence(&self, ctx: &Ctx<'_>, _user: UserId, item: ItemId) -> Result<ModelEvidence> {
        if item.index() >= ctx.ratings.n_items() {
            return Err(Error::UnknownItem { item });
        }
        Ok(ModelEvidence::Popularity {
            mean: ctx.ratings.global_mean(),
            count: ctx.ratings.n_ratings(),
        })
    }
}

/// Deterministic pseudo-random scores — the floor any real model must
/// beat. Scores are a hash of `(seed, user, item)` so the baseline is
/// stable across runs without carrying RNG state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RandomScores {
    /// Seed mixed into every score.
    pub seed: u64,
}

impl Default for RandomScores {
    fn default() -> Self {
        Self { seed: 0xDECAF }
    }
}

impl RandomScores {
    fn unit(&self, user: UserId, item: ItemId) -> f64 {
        // SplitMix64 over the packed ids.
        let mut z = self
            .seed
            .wrapping_add((user.raw() as u64) << 32 | item.raw() as u64)
            .wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z = z ^ (z >> 31);
        (z >> 11) as f64 / (1u64 << 53) as f64
    }
}

impl Recommender for RandomScores {
    fn name(&self) -> &'static str {
        "random"
    }

    fn predict(&self, ctx: &Ctx<'_>, user: UserId, item: ItemId) -> Result<Prediction> {
        if item.index() >= ctx.ratings.n_items() {
            return Err(Error::UnknownItem { item });
        }
        let scale = ctx.ratings.scale();
        Ok(Prediction::new(
            scale.denormalize_continuous(self.unit(user, item)),
            Confidence::NONE,
        ))
    }

    fn evidence(&self, ctx: &Ctx<'_>, _user: UserId, item: ItemId) -> Result<ModelEvidence> {
        if item.index() >= ctx.ratings.n_items() {
            return Err(Error::UnknownItem { item });
        }
        Ok(ModelEvidence::Popularity {
            mean: 0.0,
            count: 0,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use exrec_data::{Catalog, RatingsMatrix};
    use exrec_types::{DomainSchema, RatingScale};

    fn fixtures() -> (RatingsMatrix, Catalog) {
        let mut catalog = Catalog::new(DomainSchema::new("d", vec![]).unwrap());
        for k in 0..3 {
            catalog
                .add(&format!("i{k}"), Default::default(), vec![])
                .unwrap();
        }
        let mut m = RatingsMatrix::new(2, 3, RatingScale::FIVE_STAR);
        m.rate(UserId(0), ItemId(0), 5.0).unwrap();
        m.rate(UserId(1), ItemId(0), 5.0).unwrap();
        m.rate(UserId(0), ItemId(1), 1.0).unwrap();
        (m, catalog)
    }

    #[test]
    fn popularity_damps_toward_global_mean() {
        let (m, c) = fixtures();
        let ctx = Ctx::new(&m, &c);
        let pop = Popularity { damping: 100.0 };
        let p = pop.predict(&ctx, UserId(0), ItemId(0)).unwrap();
        let global = m.global_mean();
        assert!(
            (p.score - global).abs() < 0.2,
            "heavy damping pulls to global mean"
        );
        let pop = Popularity { damping: 0.0 };
        let p = pop.predict(&ctx, UserId(0), ItemId(0)).unwrap();
        assert!((p.score - 5.0).abs() < 1e-9);
    }

    #[test]
    fn user_mean_needs_ratings() {
        let (mut m, c) = fixtures();
        m.ensure_users(3);
        let ctx = Ctx::new(&m, &c);
        assert!(matches!(
            UserMean.predict(&ctx, UserId(2), ItemId(0)),
            Err(Error::NoPrediction { .. })
        ));
        let p = UserMean.predict(&ctx, UserId(0), ItemId(2)).unwrap();
        assert!((p.score - 3.0).abs() < 1e-9);
    }

    #[test]
    fn global_mean_is_constant() {
        let (m, c) = fixtures();
        let ctx = Ctx::new(&m, &c);
        let a = GlobalMean.predict(&ctx, UserId(0), ItemId(0)).unwrap();
        let b = GlobalMean.predict(&ctx, UserId(1), ItemId(2)).unwrap();
        assert_eq!(a.score, b.score);
    }

    #[test]
    fn random_is_deterministic_and_on_scale() {
        let (m, c) = fixtures();
        let ctx = Ctx::new(&m, &c);
        let r = RandomScores::default();
        let a = r.predict(&ctx, UserId(0), ItemId(1)).unwrap();
        let b = r.predict(&ctx, UserId(0), ItemId(1)).unwrap();
        assert_eq!(a.score, b.score);
        assert!(a.score >= m.scale().min() && a.score <= m.scale().max());
        let other = r.predict(&ctx, UserId(1), ItemId(1)).unwrap();
        assert_ne!(a.score, other.score, "different pairs should differ");
    }

    #[test]
    fn out_of_range_items_rejected() {
        let (m, c) = fixtures();
        let ctx = Ctx::new(&m, &c);
        for rec in [
            &Popularity::default() as &dyn Recommender,
            &UserMean,
            &GlobalMean,
            &RandomScores::default(),
        ] {
            assert!(rec.predict(&ctx, UserId(0), ItemId(99)).is_err());
        }
    }

    #[test]
    fn popularity_evidence_counts() {
        let (m, c) = fixtures();
        let ctx = Ctx::new(&m, &c);
        match Popularity::default()
            .evidence(&ctx, UserId(0), ItemId(0))
            .unwrap()
        {
            ModelEvidence::Popularity { mean, count } => {
                assert_eq!(count, 2);
                assert!((mean - 5.0).abs() < 1e-9);
            }
            other => panic!("wrong evidence {}", other.kind()),
        }
    }
}

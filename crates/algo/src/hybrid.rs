//! Hybrid recommenders.
//!
//! Several systems in the survey's Table 4 blend sources (LIBRA mixes
//! content and collaborative signals; Amazon's "similar to" sits on both).
//! Two standard combinators are provided: a weighted blend and a
//! fallback chain.

use crate::recommender::{Ctx, ModelEvidence, Recommender};
use exrec_types::{Confidence, Error, ItemId, Prediction, Result, UserId};

/// Weighted blend: the prediction is the weight-normalized average of
/// every component that can predict; evidence comes from the
/// highest-weighted component that produced evidence.
pub struct WeightedHybrid {
    parts: Vec<(Box<dyn Recommender + Send + Sync>, f64)>,
}

impl WeightedHybrid {
    /// Builds a blend.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidConfig`] when empty or any weight ≤ 0.
    pub fn new(parts: Vec<(Box<dyn Recommender + Send + Sync>, f64)>) -> Result<Self> {
        if parts.is_empty() {
            return Err(Error::InvalidConfig {
                parameter: "parts",
                constraint: "at least one component".to_owned(),
            });
        }
        if parts.iter().any(|&(_, w)| w <= 0.0) {
            return Err(Error::InvalidConfig {
                parameter: "weight",
                constraint: "all component weights > 0".to_owned(),
            });
        }
        Ok(Self { parts })
    }

    /// Component names and weights, for reporting.
    pub fn components(&self) -> Vec<(&'static str, f64)> {
        self.parts.iter().map(|(r, w)| (r.name(), *w)).collect()
    }
}

impl Recommender for WeightedHybrid {
    fn name(&self) -> &'static str {
        "hybrid-weighted"
    }

    fn predict(&self, ctx: &Ctx<'_>, user: UserId, item: ItemId) -> Result<Prediction> {
        let mut num = 0.0;
        let mut den = 0.0;
        let mut conf = 0.0;
        for (rec, w) in &self.parts {
            if let Ok(p) = rec.predict(ctx, user, item) {
                num += w * p.score;
                conf += w * p.confidence.value();
                den += w;
            }
        }
        if den <= 0.0 {
            return Err(Error::NoPrediction {
                user,
                item,
                reason: "no hybrid component could predict",
            });
        }
        Ok(Prediction::new(num / den, Confidence::new(conf / den)))
    }

    fn evidence(&self, ctx: &Ctx<'_>, user: UserId, item: ItemId) -> Result<ModelEvidence> {
        let mut order: Vec<usize> = (0..self.parts.len()).collect();
        order.sort_by(|&a, &b| {
            self.parts[b]
                .1
                .partial_cmp(&self.parts[a].1)
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        for idx in order {
            if let Ok(ev) = self.parts[idx].0.evidence(ctx, user, item) {
                return Ok(ev);
            }
        }
        Err(Error::NoPrediction {
            user,
            item,
            reason: "no hybrid component produced evidence",
        })
    }
}

/// Fallback chain: first component that can predict wins. The classic
/// "CF when possible, content for cold items" arrangement.
pub struct SwitchingHybrid {
    chain: Vec<Box<dyn Recommender + Send + Sync>>,
}

impl SwitchingHybrid {
    /// Builds a chain.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidConfig`] when the chain is empty.
    pub fn new(chain: Vec<Box<dyn Recommender + Send + Sync>>) -> Result<Self> {
        if chain.is_empty() {
            return Err(Error::InvalidConfig {
                parameter: "chain",
                constraint: "at least one component".to_owned(),
            });
        }
        Ok(Self { chain })
    }
}

impl Recommender for SwitchingHybrid {
    fn name(&self) -> &'static str {
        "hybrid-switching"
    }

    fn predict(&self, ctx: &Ctx<'_>, user: UserId, item: ItemId) -> Result<Prediction> {
        let mut last = Error::NoPrediction {
            user,
            item,
            reason: "empty chain",
        };
        for rec in &self.chain {
            match rec.predict(ctx, user, item) {
                Ok(p) => return Ok(p),
                Err(e) => last = e,
            }
        }
        Err(last)
    }

    fn evidence(&self, ctx: &Ctx<'_>, user: UserId, item: ItemId) -> Result<ModelEvidence> {
        let mut last = Error::NoPrediction {
            user,
            item,
            reason: "empty chain",
        };
        for rec in &self.chain {
            // Evidence must match the component that actually predicted.
            if rec.predict(ctx, user, item).is_ok() {
                return rec.evidence(ctx, user, item);
            }
            if let Err(e) = rec.predict(ctx, user, item) {
                last = e;
            }
        }
        Err(last)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::baseline::{GlobalMean, UserMean};
    use exrec_data::{Catalog, RatingsMatrix};
    use exrec_types::{DomainSchema, RatingScale};

    fn fixtures() -> (RatingsMatrix, Catalog) {
        let mut catalog = Catalog::new(DomainSchema::new("d", vec![]).unwrap());
        for k in 0..3 {
            catalog
                .add(&format!("i{k}"), Default::default(), vec![])
                .unwrap();
        }
        let mut m = RatingsMatrix::new(2, 3, RatingScale::FIVE_STAR);
        m.rate(UserId(0), ItemId(0), 5.0).unwrap();
        m.rate(UserId(0), ItemId(1), 5.0).unwrap();
        m.rate(UserId(1), ItemId(0), 1.0).unwrap();
        (m, catalog)
    }

    #[test]
    fn weighted_blend_is_between_components() {
        let (m, c) = fixtures();
        let ctx = Ctx::new(&m, &c);
        let hybrid =
            WeightedHybrid::new(vec![(Box::new(UserMean), 1.0), (Box::new(GlobalMean), 1.0)])
                .unwrap();
        let p = hybrid.predict(&ctx, UserId(0), ItemId(2)).unwrap();
        let um = UserMean.predict(&ctx, UserId(0), ItemId(2)).unwrap().score;
        let gm = GlobalMean
            .predict(&ctx, UserId(0), ItemId(2))
            .unwrap()
            .score;
        assert!((p.score - (um + gm) / 2.0).abs() < 1e-9);
    }

    #[test]
    fn weighted_skips_failing_components() {
        let (mut m, c) = fixtures();
        m.ensure_users(3);
        let ctx = Ctx::new(&m, &c);
        let hybrid = WeightedHybrid::new(vec![
            (Box::new(UserMean), 10.0), // fails for user 2 (no ratings)
            (Box::new(GlobalMean), 1.0),
        ])
        .unwrap();
        let p = hybrid.predict(&ctx, UserId(2), ItemId(0)).unwrap();
        let gm = GlobalMean
            .predict(&ctx, UserId(2), ItemId(0))
            .unwrap()
            .score;
        assert!((p.score - gm).abs() < 1e-9);
    }

    #[test]
    fn switching_falls_back() {
        let (mut m, c) = fixtures();
        m.ensure_users(3);
        let ctx = Ctx::new(&m, &c);
        let hybrid = SwitchingHybrid::new(vec![Box::new(UserMean), Box::new(GlobalMean)]).unwrap();
        // User 0 has ratings: UserMean wins.
        let p = hybrid.predict(&ctx, UserId(0), ItemId(2)).unwrap();
        assert!((p.score - 5.0).abs() < 1e-9);
        // User 2 is cold: falls back to GlobalMean.
        let p = hybrid.predict(&ctx, UserId(2), ItemId(2)).unwrap();
        assert!((p.score - m.global_mean()).abs() < 1e-9);
    }

    #[test]
    fn invalid_configs() {
        assert!(WeightedHybrid::new(vec![]).is_err());
        assert!(WeightedHybrid::new(vec![(Box::new(GlobalMean), -1.0)]).is_err());
        assert!(SwitchingHybrid::new(vec![]).is_err());
    }

    #[test]
    fn evidence_from_highest_weight() {
        let (m, c) = fixtures();
        let ctx = Ctx::new(&m, &c);
        let hybrid =
            WeightedHybrid::new(vec![(Box::new(UserMean), 5.0), (Box::new(GlobalMean), 1.0)])
                .unwrap();
        // Both produce Popularity evidence; just confirm one arrives.
        assert!(hybrid.evidence(&ctx, UserId(0), ItemId(2)).is_ok());
    }
}

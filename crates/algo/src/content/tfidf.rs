//! TF-IDF item vectors with a Rocchio user profile.

use super::item_tokens;
use crate::recommender::{
    Ctx, FeatureInfluence, ModelEvidence, RatedItemInfluence, Recommender, Scored,
};
use exrec_types::{Confidence, Error, ItemId, Prediction, Result, UserId};
use std::collections::HashMap;

/// Configuration for [`TfIdfModel`].
#[derive(Debug, Clone, PartialEq)]
pub struct TfIdfConfig {
    /// How many top features to report in evidence.
    pub evidence_features: usize,
    /// How many rated-item influences to report in evidence.
    pub evidence_influences: usize,
}

impl Default for TfIdfConfig {
    fn default() -> Self {
        Self {
            evidence_features: 6,
            evidence_influences: 5,
        }
    }
}

/// A fitted TF-IDF content model.
///
/// Item vectors are computed once from the catalog ([`TfIdfModel::fit`]);
/// user profiles are recomputed per call from the live ratings matrix so
/// that mid-session re-rating is observed immediately.
#[derive(Debug, Clone)]
pub struct TfIdfModel {
    config: TfIdfConfig,
    /// Token text by feature index.
    vocab: Vec<String>,
    /// `vectors[i]` = sorted `(feature, tfidf_weight)`, L2-normalized.
    vectors: Vec<Vec<(usize, f64)>>,
}

fn dot_sparse(a: &[(usize, f64)], b: &[(usize, f64)]) -> f64 {
    let (mut x, mut y, mut acc) = (0, 0, 0.0);
    while x < a.len() && y < b.len() {
        match a[x].0.cmp(&b[y].0) {
            std::cmp::Ordering::Less => x += 1,
            std::cmp::Ordering::Greater => y += 1,
            std::cmp::Ordering::Equal => {
                acc += a[x].1 * b[y].1;
                x += 1;
                y += 1;
            }
        }
    }
    acc
}

fn l2_normalize(v: &mut [(usize, f64)]) {
    let norm = v.iter().map(|&(_, w)| w * w).sum::<f64>().sqrt();
    if norm > 1e-12 {
        for (_, w) in v.iter_mut() {
            *w /= norm;
        }
    }
}

impl TfIdfModel {
    /// Fits TF-IDF vectors over the catalog.
    ///
    /// # Errors
    ///
    /// Returns [`Error::EmptyModel`] when the catalog is empty or carries
    /// no tokens at all.
    pub fn fit(ctx: &Ctx<'_>, config: TfIdfConfig) -> Result<Self> {
        if ctx.catalog.is_empty() {
            return Err(Error::EmptyModel { model: "tfidf" });
        }
        let n_items = ctx.catalog.len();
        let mut vocab_index: HashMap<String, usize> = HashMap::new();
        let mut vocab: Vec<String> = Vec::new();
        let mut raw: Vec<Vec<(usize, f64)>> = Vec::with_capacity(n_items);
        let mut df: Vec<usize> = Vec::new();

        for item in ctx.catalog.iter() {
            let mut counts: HashMap<usize, f64> = HashMap::new();
            for tok in item_tokens(item) {
                let idx = *vocab_index.entry(tok.clone()).or_insert_with(|| {
                    vocab.push(tok);
                    df.push(0);
                    vocab.len() - 1
                });
                *counts.entry(idx).or_insert(0.0) += 1.0;
            }
            for &idx in counts.keys() {
                df[idx] += 1;
            }
            let mut vec: Vec<(usize, f64)> = counts.into_iter().collect();
            vec.sort_unstable_by_key(|&(i, _)| i);
            raw.push(vec);
        }
        if vocab.is_empty() {
            return Err(Error::EmptyModel { model: "tfidf" });
        }

        let vectors: Vec<Vec<(usize, f64)>> = raw
            .into_iter()
            .map(|counts| {
                let mut v: Vec<(usize, f64)> = counts
                    .into_iter()
                    .map(|(idx, tf)| {
                        let idf = ((n_items as f64 + 1.0) / (df[idx] as f64 + 1.0)).ln() + 1.0;
                        (idx, tf * idf)
                    })
                    .collect();
                l2_normalize(&mut v);
                v
            })
            .collect();

        Ok(Self {
            config,
            vocab,
            vectors,
        })
    }

    /// The fitted vocabulary size.
    pub fn vocab_size(&self) -> usize {
        self.vocab.len()
    }

    /// The TF-IDF vector of an item.
    ///
    /// # Errors
    ///
    /// Returns [`Error::UnknownItem`] for out-of-range ids.
    pub fn item_vector(&self, item: ItemId) -> Result<&[(usize, f64)]> {
        self.vectors
            .get(item.index())
            .map(Vec::as_slice)
            .ok_or(Error::UnknownItem { item })
    }

    /// Cosine similarity between two items' content vectors.
    pub fn item_similarity(&self, a: ItemId, b: ItemId) -> f64 {
        match (self.vectors.get(a.index()), self.vectors.get(b.index())) {
            (Some(va), Some(vb)) => dot_sparse(va, vb),
            _ => 0.0,
        }
    }

    /// The Rocchio profile of a user: the rating-weighted (mean-centred)
    /// sum of rated item vectors, L2-normalized. Empty when the user has
    /// no ratings.
    pub fn profile(&self, ctx: &Ctx<'_>, user: UserId) -> Vec<(usize, f64)> {
        let rated = ctx.ratings.user_ratings(user);
        if rated.is_empty() {
            return Vec::new();
        }
        let mean = ctx
            .ratings
            .user_mean(user)
            .unwrap_or_else(|| ctx.ratings.global_mean());
        // Degenerate histories (all ratings identical — e.g. an implicit
        // "watched it" log where everything is a 5) centre on the scale
        // midpoint instead of the user mean, so pure viewing history
        // still produces a positive profile — the TiVo situation of the
        // survey's introduction.
        let all_equal = rated.iter().all(|&(_, v)| (v - rated[0].1).abs() < 1e-9);
        let centre = if all_equal {
            let mid = ctx.ratings.scale().midpoint();
            if (rated[0].1 - mid).abs() < 1e-9 {
                // Even the midpoint is uninformative: treat presence as
                // mild positive signal.
                rated[0].1 - 1.0
            } else {
                mid
            }
        } else {
            mean
        };
        let mut acc: HashMap<usize, f64> = HashMap::new();
        for &(item, rating) in rated {
            let weight = rating - centre;
            if weight.abs() < 1e-12 {
                continue;
            }
            if let Some(vec) = self.vectors.get(item.index()) {
                for &(idx, w) in vec {
                    *acc.entry(idx).or_insert(0.0) += weight * w;
                }
            }
        }
        let mut profile: Vec<(usize, f64)> = acc.into_iter().collect();
        profile.sort_unstable_by_key(|&(i, _)| i);
        l2_normalize(&mut profile);
        profile
    }

    fn check_ids(&self, ctx: &Ctx<'_>, user: UserId, item: ItemId) -> Result<()> {
        if user.index() >= ctx.ratings.n_users() {
            return Err(Error::UnknownUser { user });
        }
        if item.index() >= self.vectors.len() {
            return Err(Error::UnknownItem { item });
        }
        Ok(())
    }
}

impl Recommender for TfIdfModel {
    fn name(&self) -> &'static str {
        "tfidf"
    }

    fn predict(&self, ctx: &Ctx<'_>, user: UserId, item: ItemId) -> Result<Prediction> {
        self.check_ids(ctx, user, item)?;
        let profile = self.profile(ctx, user);
        if profile.is_empty() {
            return Err(Error::NoPrediction {
                user,
                item,
                reason: "user profile is empty",
            });
        }
        let cos = dot_sparse(&profile, &self.vectors[item.index()]);
        let mean = ctx
            .ratings
            .user_mean(user)
            .unwrap_or_else(|| ctx.ratings.global_mean());
        let scale = ctx.ratings.scale();
        let score = scale.bound(mean + cos * scale.span() / 2.0);
        let n_rated = ctx.ratings.user_ratings(user).len() as f64;
        let confidence = Confidence::new((n_rated / 20.0).min(1.0) * (0.3 + 0.7 * cos.abs()));
        Ok(Prediction::new(score, confidence))
    }

    fn recommend(&self, ctx: &Ctx<'_>, user: UserId, n: usize) -> Vec<Scored> {
        // Rank by profile cosine, not by the bounded predicted rating:
        // when a user's mean sits at the scale ceiling (implicit all-5
        // histories) every prediction clamps to the maximum and the
        // default ranking would degenerate to item-id order.
        let profile = self.profile(ctx, user);
        if profile.is_empty() {
            return Vec::new();
        }
        let mut scored: Vec<(f64, Scored)> = ctx
            .catalog
            .ids()
            .filter(|&i| ctx.ratings.rating(user, i).is_none())
            .filter_map(|i| {
                let cos = dot_sparse(&profile, self.vectors.get(i.index())?);
                let prediction = self.predict(ctx, user, i).ok()?;
                Some((
                    cos,
                    Scored {
                        item: i,
                        prediction,
                    },
                ))
            })
            .collect();
        scored.sort_by(|a, b| {
            b.0.partial_cmp(&a.0)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.1.item.cmp(&b.1.item))
        });
        scored.into_iter().map(|(_, s)| s).take(n).collect()
    }

    fn evidence(&self, ctx: &Ctx<'_>, user: UserId, item: ItemId) -> Result<ModelEvidence> {
        self.check_ids(ctx, user, item)?;
        let profile = self.profile(ctx, user);
        if profile.is_empty() {
            return Err(Error::NoPrediction {
                user,
                item,
                reason: "user profile is empty",
            });
        }
        let item_vec = &self.vectors[item.index()];

        // Feature contributions: profile ⊙ item vector, signed.
        let profile_map: HashMap<usize, f64> = profile.iter().copied().collect();
        let mut features: Vec<FeatureInfluence> = item_vec
            .iter()
            .filter_map(|&(idx, w)| {
                profile_map.get(&idx).map(|&pw| FeatureInfluence {
                    feature: format!("keyword \"{}\"", self.vocab[idx]),
                    weight: pw * w,
                })
            })
            .collect();
        features.sort_by(|a, b| {
            b.weight
                .abs()
                .partial_cmp(&a.weight.abs())
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        features.truncate(self.config.evidence_features);

        // Rated-item influences: |centred rating × content similarity|.
        let mean = ctx
            .ratings
            .user_mean(user)
            .unwrap_or_else(|| ctx.ratings.global_mean());
        let mut influences: Vec<RatedItemInfluence> = ctx
            .ratings
            .user_ratings(user)
            .iter()
            .map(|&(rated, rating)| {
                let sim = self.item_similarity(rated, item);
                RatedItemInfluence {
                    item: rated,
                    user_rating: rating,
                    share: ((rating - mean) * sim).abs(),
                }
            })
            .filter(|inf| inf.share > 1e-9)
            .collect();
        let total: f64 = influences.iter().map(|i| i.share).sum();
        if total > 1e-12 {
            for inf in &mut influences {
                inf.share /= total;
            }
        }
        influences.sort_by(|a, b| {
            b.share
                .partial_cmp(&a.share)
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        influences.truncate(self.config.evidence_influences);

        Ok(ModelEvidence::Content {
            features,
            influences,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use exrec_data::synth::{books, WorldConfig};
    use exrec_data::World;

    fn world() -> World {
        books::generate(&WorldConfig {
            n_users: 40,
            n_items: 60,
            density: 0.3,
            ..WorldConfig::default()
        })
    }

    #[test]
    fn same_genre_items_are_more_similar() {
        let w = world();
        let ctx = Ctx::new(&w.ratings, &w.catalog);
        let model = TfIdfModel::fit(&ctx, TfIdfConfig::default()).unwrap();
        // Average within-genre vs cross-genre similarity.
        let items: Vec<_> = w.catalog.iter().collect();
        let (mut within, mut wn, mut cross, mut cn) = (0.0, 0, 0.0, 0);
        for a in 0..items.len().min(30) {
            for b in (a + 1)..items.len().min(30) {
                let s = model.item_similarity(items[a].id, items[b].id);
                if items[a].attrs.cat("genre") == items[b].attrs.cat("genre") {
                    within += s;
                    wn += 1;
                } else {
                    cross += s;
                    cn += 1;
                }
            }
        }
        assert!(wn > 0 && cn > 0);
        assert!(
            within / wn as f64 > cross / cn as f64,
            "genre structure must show in content similarity"
        );
    }

    #[test]
    fn profile_points_toward_liked_items() {
        let w = world();
        let ctx = Ctx::new(&w.ratings, &w.catalog);
        let model = TfIdfModel::fit(&ctx, TfIdfConfig::default()).unwrap();
        // Find a user with clear likes/dislikes.
        for u in w.ratings.users() {
            let rated = w.ratings.user_ratings(u);
            let mean = match w.ratings.user_mean(u) {
                Some(m) => m,
                None => continue,
            };
            let liked: Vec<_> = rated.iter().filter(|&&(_, r)| r > mean + 0.5).collect();
            let disliked: Vec<_> = rated.iter().filter(|&&(_, r)| r < mean - 0.5).collect();
            if liked.is_empty() || disliked.is_empty() {
                continue;
            }
            let profile = model.profile(&ctx, u);
            let avg = |items: &[&(ItemId, f64)]| {
                items
                    .iter()
                    .map(|&&(i, _)| dot_sparse(&profile, model.item_vector(i).unwrap()))
                    .sum::<f64>()
                    / items.len() as f64
            };
            assert!(
                avg(&liked) > avg(&disliked),
                "profile must prefer liked items for user {u}"
            );
            return;
        }
        panic!("no user with clear likes/dislikes in fixture");
    }

    #[test]
    fn evidence_shares_sum_to_one() {
        let w = world();
        let ctx = Ctx::new(&w.ratings, &w.catalog);
        let model = TfIdfModel::fit(&ctx, TfIdfConfig::default()).unwrap();
        let user = w
            .ratings
            .users()
            .find(|&u| w.ratings.user_ratings(u).len() >= 5)
            .unwrap();
        let unrated = w
            .catalog
            .ids()
            .find(|&i| ctx.ratings.rating(user, i).is_none())
            .unwrap();
        match model.evidence(&ctx, user, unrated).unwrap() {
            ModelEvidence::Content {
                influences,
                features,
            } => {
                if !influences.is_empty() {
                    let sum: f64 = influences.iter().map(|i| i.share).sum();
                    assert!(sum <= 1.0 + 1e-9, "shares are a partition, sum={sum}");
                    assert!(influences.windows(2).all(|w| w[0].share >= w[1].share));
                }
                assert!(features.len() <= 6);
            }
            other => panic!("wrong evidence {}", other.kind()),
        }
    }

    #[test]
    fn empty_catalog_rejected() {
        use exrec_data::{Catalog, RatingsMatrix};
        use exrec_types::{DomainSchema, RatingScale};
        let catalog = Catalog::new(DomainSchema::new("d", vec![]).unwrap());
        let ratings = RatingsMatrix::new(0, 0, RatingScale::FIVE_STAR);
        let ctx = Ctx::new(&ratings, &catalog);
        assert!(TfIdfModel::fit(&ctx, TfIdfConfig::default()).is_err());
    }

    #[test]
    fn cold_user_has_no_prediction() {
        let w = world();
        let ctx = Ctx::new(&w.ratings, &w.catalog);
        let model = TfIdfModel::fit(&ctx, TfIdfConfig::default()).unwrap();
        let cold = w
            .ratings
            .users()
            .find(|&u| w.ratings.user_ratings(u).is_empty());
        if let Some(cold) = cold {
            assert!(matches!(
                model.predict(&ctx, cold, ItemId(0)),
                Err(Error::NoPrediction { .. })
            ));
        }
    }
}

//! Content-based recommenders.
//!
//! Two models back the survey's content-based explanation style
//! ("We have recommended X because you liked Y"):
//!
//! * [`TfIdfModel`] — TF-IDF item vectors with a Rocchio user profile;
//!   evidence names the overlapping terms and the rated items that shaped
//!   the profile.
//! * [`NaiveBayesModel`] — a LIBRA-style naive-Bayes like/dislike
//!   classifier whose evidence is per-feature log-odds *and* per-rated-item
//!   influence shares, reproducing the survey's Figure 3.

mod naive_bayes;
mod tfidf;

pub use naive_bayes::{NaiveBayesConfig, NaiveBayesModel};
pub use tfidf::{TfIdfConfig, TfIdfModel};

use exrec_types::Item;

/// Extracts the content tokens of an item: its keyword bag plus tokens of
/// any text attributes. Shared by both content models so their feature
/// spaces agree.
pub fn item_tokens(item: &Item) -> Vec<String> {
    let mut toks: Vec<String> = item.keywords.clone();
    for (_, value) in item.attrs.iter() {
        if let Some(text) = value.as_text() {
            toks.extend(exrec_data::text::tokenize(text));
        }
    }
    toks
}

#[cfg(test)]
mod tests {
    use super::*;
    use exrec_types::{AttrValue, AttributeSet, ItemId};

    #[test]
    fn tokens_combine_keywords_and_text() {
        let item = Item::new(ItemId::new(0), "X")
            .with_attrs(AttributeSet::new().with(
                "blurb",
                AttrValue::Text("A quiet tale of dragons".to_owned()),
            ))
            .with_keywords(["fantasy"]);
        let toks = item_tokens(&item);
        assert!(toks.contains(&"fantasy".to_owned()));
        assert!(toks.contains(&"dragons".to_owned()));
        assert!(!toks.contains(&"of".to_owned()), "stopwords dropped");
    }
}

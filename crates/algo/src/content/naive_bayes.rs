//! LIBRA-style naive-Bayes content model (Bilgic & Mooney, survey [5]).
//!
//! Per user, items the user rated above their own mean are "liked" and the
//! rest "disliked"; a multinomial naive-Bayes classifier over item tokens
//! then scores unseen items. Evidence is twofold, matching the survey's
//! Figure 3:
//!
//! * **feature influences** — the log-odds each token of the target item
//!   contributes toward "like";
//! * **rated-item influences** — how much each *training example* (a book
//!   the user rated) influenced the recommendation, computed by
//!   leave-one-out retraining, expressed as percentage shares.

use super::item_tokens;
use crate::recommender::{Ctx, FeatureInfluence, ModelEvidence, RatedItemInfluence, Recommender};
use exrec_types::{Confidence, Error, ItemId, Prediction, Result, UserId};
use std::collections::HashMap;

/// Configuration for [`NaiveBayesModel`].
#[derive(Debug, Clone, PartialEq)]
pub struct NaiveBayesConfig {
    /// Laplace smoothing constant.
    pub alpha: f64,
    /// How many top features to report in evidence.
    pub evidence_features: usize,
    /// How many rated-item influences to report in evidence.
    pub evidence_influences: usize,
}

impl Default for NaiveBayesConfig {
    fn default() -> Self {
        Self {
            alpha: 1.0,
            evidence_features: 6,
            evidence_influences: 5,
        }
    }
}

/// Per-user naive-Bayes state, rebuildable from the live ratings matrix.
#[derive(Debug, Clone)]
struct NbProfile {
    /// token → (count_in_liked, count_in_disliked)
    counts: HashMap<String, (f64, f64)>,
    liked_tokens: f64,
    disliked_tokens: f64,
    n_liked: usize,
    n_disliked: usize,
    vocab: usize,
}

impl NbProfile {
    fn log_odds_token(&self, token: &str, alpha: f64) -> f64 {
        let (l, d) = self.counts.get(token).copied().unwrap_or((0.0, 0.0));
        let p_like = (l + alpha) / (self.liked_tokens + alpha * self.vocab as f64);
        let p_dis = (d + alpha) / (self.disliked_tokens + alpha * self.vocab as f64);
        (p_like / p_dis).ln()
    }

    fn prior_log_odds(&self, alpha: f64) -> f64 {
        ((self.n_liked as f64 + alpha) / (self.n_disliked as f64 + alpha)).ln()
    }

    /// Total log-odds that the user likes an item with these tokens.
    fn log_odds(&self, tokens: &[String], alpha: f64) -> f64 {
        self.prior_log_odds(alpha)
            + tokens
                .iter()
                .map(|t| self.log_odds_token(t, alpha))
                .sum::<f64>()
    }
}

/// The LIBRA-style model. Stateless across users; profiles are built from
/// the live ratings on each call so re-rating is observed immediately.
#[derive(Debug, Clone, Default)]
pub struct NaiveBayesModel {
    config: NaiveBayesConfig,
}

impl NaiveBayesModel {
    /// Builds the model.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidConfig`] for a non-positive `alpha`.
    pub fn new(config: NaiveBayesConfig) -> Result<Self> {
        if config.alpha <= 0.0 {
            return Err(Error::InvalidConfig {
                parameter: "alpha",
                constraint: "alpha > 0".to_owned(),
            });
        }
        Ok(Self { config })
    }

    /// The configuration in use.
    pub fn config(&self) -> &NaiveBayesConfig {
        &self.config
    }

    fn build_profile(
        &self,
        ctx: &Ctx<'_>,
        user: UserId,
        exclude: Option<ItemId>,
    ) -> Option<NbProfile> {
        let rated = ctx.ratings.user_ratings(user);
        let mean = ctx.ratings.user_mean(user)?;
        let mut counts: HashMap<String, (f64, f64)> = HashMap::new();
        let (mut lt, mut dt, mut nl, mut nd) = (0.0, 0.0, 0usize, 0usize);
        for &(item, rating) in rated {
            if Some(item) == exclude {
                continue;
            }
            let Ok(it) = ctx.catalog.get(item) else {
                continue;
            };
            let liked = rating >= mean;
            if liked {
                nl += 1;
            } else {
                nd += 1;
            }
            for tok in item_tokens(it) {
                let entry = counts.entry(tok).or_insert((0.0, 0.0));
                if liked {
                    entry.0 += 1.0;
                    lt += 1.0;
                } else {
                    entry.1 += 1.0;
                    dt += 1.0;
                }
            }
        }
        if nl + nd == 0 {
            return None;
        }
        let vocab = counts.len().max(1);
        Some(NbProfile {
            counts,
            liked_tokens: lt,
            disliked_tokens: dt,
            n_liked: nl,
            n_disliked: nd,
            vocab,
        })
    }

    fn check_ids(&self, ctx: &Ctx<'_>, user: UserId, item: ItemId) -> Result<()> {
        if user.index() >= ctx.ratings.n_users() {
            return Err(Error::UnknownUser { user });
        }
        if item.index() >= ctx.catalog.len() {
            return Err(Error::UnknownItem { item });
        }
        Ok(())
    }

    /// The like/dislike log-odds for `(user, item)`.
    ///
    /// # Errors
    ///
    /// Id-range errors, or [`Error::NoPrediction`] when the user has no
    /// usable ratings.
    pub fn log_odds(&self, ctx: &Ctx<'_>, user: UserId, item: ItemId) -> Result<f64> {
        self.check_ids(ctx, user, item)?;
        let profile = self
            .build_profile(ctx, user, None)
            .ok_or(Error::NoPrediction {
                user,
                item,
                reason: "user has no ratings to learn from",
            })?;
        let tokens = item_tokens(ctx.catalog.get(item)?);
        Ok(profile.log_odds(&tokens, self.config.alpha))
    }

    /// Leave-one-out influence of each rated item on the `(user, item)`
    /// log-odds, as non-negative shares summing to ~1 (largest first).
    ///
    /// # Errors
    ///
    /// Same conditions as [`NaiveBayesModel::log_odds`].
    pub fn influences(
        &self,
        ctx: &Ctx<'_>,
        user: UserId,
        item: ItemId,
    ) -> Result<Vec<RatedItemInfluence>> {
        let full = self.log_odds(ctx, user, item)?;
        let tokens = item_tokens(ctx.catalog.get(item)?);
        let mut influences: Vec<RatedItemInfluence> = Vec::new();
        for &(rated, rating) in ctx.ratings.user_ratings(user) {
            let Some(without) = self.build_profile(ctx, user, Some(rated)) else {
                continue;
            };
            let odds_without = without.log_odds(&tokens, self.config.alpha);
            let delta = (full - odds_without).abs();
            if delta > 1e-12 {
                influences.push(RatedItemInfluence {
                    item: rated,
                    user_rating: rating,
                    share: delta,
                });
            }
        }
        let total: f64 = influences.iter().map(|i| i.share).sum();
        if total > 1e-12 {
            for inf in &mut influences {
                inf.share /= total;
            }
        }
        influences.sort_by(|a, b| {
            b.share
                .partial_cmp(&a.share)
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        Ok(influences)
    }
}

impl Recommender for NaiveBayesModel {
    fn name(&self) -> &'static str {
        "naive-bayes"
    }

    fn predict(&self, ctx: &Ctx<'_>, user: UserId, item: ItemId) -> Result<Prediction> {
        let odds = self.log_odds(ctx, user, item)?;
        let p_like = 1.0 / (1.0 + (-odds).exp());
        let scale = ctx.ratings.scale();
        let score = scale.denormalize_continuous(p_like);
        let n_rated = ctx.ratings.user_ratings(user).len() as f64;
        let confidence =
            Confidence::new((n_rated / 15.0).min(1.0) * (0.3 + 0.7 * (2.0 * p_like - 1.0).abs()));
        Ok(Prediction::new(score, confidence))
    }

    fn evidence(&self, ctx: &Ctx<'_>, user: UserId, item: ItemId) -> Result<ModelEvidence> {
        self.check_ids(ctx, user, item)?;
        let profile = self
            .build_profile(ctx, user, None)
            .ok_or(Error::NoPrediction {
                user,
                item,
                reason: "user has no ratings to learn from",
            })?;
        let tokens = item_tokens(ctx.catalog.get(item)?);
        let mut features: Vec<FeatureInfluence> = tokens
            .iter()
            .map(|t| FeatureInfluence {
                feature: format!("keyword \"{t}\""),
                weight: profile.log_odds_token(t, self.config.alpha),
            })
            .collect();
        // Merge duplicate tokens.
        features.sort_by(|a, b| a.feature.cmp(&b.feature));
        features.dedup_by(|next, prev| {
            if next.feature == prev.feature {
                prev.weight += next.weight;
                true
            } else {
                false
            }
        });
        features.sort_by(|a, b| {
            b.weight
                .abs()
                .partial_cmp(&a.weight.abs())
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        features.truncate(self.config.evidence_features);

        let mut influences = self.influences(ctx, user, item)?;
        influences.truncate(self.config.evidence_influences);

        Ok(ModelEvidence::Content {
            features,
            influences,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use exrec_data::synth::{books, WorldConfig};
    use exrec_data::World;

    fn world() -> World {
        books::generate(&WorldConfig {
            n_users: 30,
            n_items: 50,
            density: 0.3,
            ..WorldConfig::default()
        })
    }

    /// A user with at least `n` ratings including both likes and dislikes.
    fn opinionated_user(w: &World, n: usize) -> UserId {
        w.ratings
            .users()
            .find(|&u| {
                let rated = w.ratings.user_ratings(u);
                if rated.len() < n {
                    return false;
                }
                let mean = w.ratings.user_mean(u).unwrap();
                rated.iter().any(|&(_, r)| r >= mean) && rated.iter().any(|&(_, r)| r < mean)
            })
            .expect("fixture must contain an opinionated user")
    }

    #[test]
    fn alpha_must_be_positive() {
        assert!(NaiveBayesModel::new(NaiveBayesConfig {
            alpha: 0.0,
            ..NaiveBayesConfig::default()
        })
        .is_err());
    }

    #[test]
    fn prefers_items_from_liked_genre() {
        let w = world();
        let ctx = Ctx::new(&w.ratings, &w.catalog);
        let model = NaiveBayesModel::default();
        let user = opinionated_user(&w, 6);
        // Compare predictions for items of the user's best vs worst genre
        // by true utility.
        let fav = w.favourite_prototype(user);
        let fav_name = w.prototype_names[fav].clone();
        let mut fav_scores = Vec::new();
        let mut other_scores = Vec::new();
        for item in w.catalog.ids() {
            if ctx.ratings.rating(user, item).is_some() {
                continue;
            }
            if let Ok(p) = model.predict(&ctx, user, item) {
                if w.prototype_of(item) == fav_name {
                    fav_scores.push(p.score);
                } else {
                    other_scores.push(p.score);
                }
            }
        }
        if fav_scores.is_empty() || other_scores.is_empty() {
            return; // degenerate sample; other tests cover behaviour
        }
        let favg = fav_scores.iter().sum::<f64>() / fav_scores.len() as f64;
        let oavg = other_scores.iter().sum::<f64>() / other_scores.len() as f64;
        assert!(
            favg >= oavg - 0.3,
            "favourite-genre items should score at least comparably: {favg:.2} vs {oavg:.2}"
        );
    }

    #[test]
    fn influence_shares_form_distribution() {
        let w = world();
        let ctx = Ctx::new(&w.ratings, &w.catalog);
        let model = NaiveBayesModel::default();
        let user = opinionated_user(&w, 5);
        let target = w
            .catalog
            .ids()
            .find(|&i| ctx.ratings.rating(user, i).is_none())
            .unwrap();
        let influences = model.influences(&ctx, user, target).unwrap();
        assert!(!influences.is_empty());
        let sum: f64 = influences.iter().map(|i| i.share).sum();
        assert!((sum - 1.0).abs() < 1e-6, "shares must sum to 1, got {sum}");
        assert!(influences.windows(2).all(|w| w[0].share >= w[1].share));
        assert!(influences.iter().all(|i| i.share >= 0.0));
    }

    #[test]
    fn evidence_features_mention_item_tokens() {
        let w = world();
        let ctx = Ctx::new(&w.ratings, &w.catalog);
        let model = NaiveBayesModel::default();
        let user = opinionated_user(&w, 5);
        let target = w
            .catalog
            .ids()
            .find(|&i| ctx.ratings.rating(user, i).is_none())
            .unwrap();
        match model.evidence(&ctx, user, target).unwrap() {
            ModelEvidence::Content { features, .. } => {
                assert!(!features.is_empty());
                let toks = item_tokens(ctx.catalog.get(target).unwrap());
                for f in &features {
                    let name = f
                        .feature
                        .trim_start_matches("keyword \"")
                        .trim_end_matches('"');
                    assert!(
                        toks.iter().any(|t| t == name),
                        "feature {name} not an item token"
                    );
                }
            }
            other => panic!("wrong evidence {}", other.kind()),
        }
    }

    #[test]
    fn cold_user_rejected() {
        let w = world();
        let ctx = Ctx::new(&w.ratings, &w.catalog);
        let model = NaiveBayesModel::default();
        let cold = w
            .ratings
            .users()
            .find(|&u| w.ratings.user_ratings(u).is_empty());
        if let Some(cold) = cold {
            assert!(matches!(
                model.predict(&ctx, cold, ItemId(0)),
                Err(Error::NoPrediction { .. })
            ));
        }
    }

    #[test]
    fn log_odds_shift_with_ratings() {
        // Rating more items of a genre positively should raise log-odds
        // for an unseen item of that genre.
        let mut w = world();
        let ctx_user = opinionated_user(&w, 5);
        let target = w
            .catalog
            .ids()
            .find(|&i| w.ratings.rating(ctx_user, i).is_none())
            .unwrap();
        let genre = w.prototype_of(target).to_owned();
        let model = NaiveBayesModel::default();
        let before = {
            let ctx = Ctx::new(&w.ratings, &w.catalog);
            model.log_odds(&ctx, ctx_user, target).unwrap()
        };
        // Five-star several same-genre items.
        let same_genre: Vec<ItemId> = w
            .catalog
            .iter()
            .filter(|it| {
                it.id != target
                    && w.prototype_of(it.id) == genre
                    && w.ratings.rating(ctx_user, it.id).is_none()
            })
            .map(|it| it.id)
            .take(3)
            .collect();
        for i in same_genre {
            w.ratings.rate(ctx_user, i, 5.0).unwrap();
        }
        let after = {
            let ctx = Ctx::new(&w.ratings, &w.catalog);
            model.log_odds(&ctx, ctx_user, target).unwrap()
        };
        assert!(
            after > before,
            "log-odds should rise after liking same-genre items: {before:.3} -> {after:.3}"
        );
    }
}

//! Cluster-pruned candidate index: coarse k-means over rating vectors.
//!
//! Exact mode makes the neighbour scan fast; this index makes it
//! *sub-linear*. Users are grouped into `C` coarse clusters by cosine
//! similarity of their sparse rating rows, and a pruned scan probes
//! only the `P` centroids nearest the target user, scoring the union of
//! their members instead of the whole user dimension. With `C ≈ √n/2`
//! and a handful of probes, a 100k-user world scans a few thousand
//! candidates per request.
//!
//! Everything here is deterministic: centroid seeding strides the id
//! space from a seeded offset, Lloyd iterations visit users in id
//! order, and assignment ties break toward the lowest centroid id.
//! Rebuilding the index for the same matrix revision always yields the
//! same clusters, so pruned results are reproducible run to run.
//!
//! Pruning is approximate by construction — a true neighbour can live
//! in an unprobed cluster. The quality bar (recall@k ≥ 0.99 against the
//! exact scan on seeded worlds) is enforced by property tests in
//! `crates/algo/tests/kernel.rs` and gated in CI via `serve_bench` +
//! `benchdiff`; `docs/kernels.md#pruned-probing` walks through the
//! semantics and the exact-fallback rules.

use crate::kernel::CsrRatings;

/// Configuration for [`CandidateIndex::build`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IndexConfig {
    /// Number of coarse centroids; `0` picks `√n_users / 2`, clamped to
    /// `8..=256`.
    pub centroids: usize,
    /// Centroids probed per query; `0` picks `max(4, centroids / 8)`.
    pub probes: usize,
    /// Lloyd refinement iterations over the sample.
    pub iterations: usize,
    /// Maximum users visited per Lloyd iteration (strided sample); the
    /// final membership pass always covers every user.
    pub sample: usize,
    /// Hard floor on the candidate-set size a pruned scan may run with;
    /// [`ScanEngine::fallback_floor`](crate::kernel::ScanEngine::fallback_floor)
    /// combines it with the neighbourhood size `k`.
    pub min_candidates: usize,
    /// Budget for the overlap-pruned candidate pass
    /// ([`overlap_candidates`](crate::kernel::overlap_candidates))
    /// whose result is unioned with the probed cluster members; `0`
    /// picks `n_users / 5`, clamped to at least `2048`. Cluster
    /// probing finds *taste* neighbours; the overlap pass finds the
    /// high-co-rating users whose Herlocker significance weight makes
    /// them dominate neighbourhoods — the measured ≥ 0.99 neighbour
    /// recall (docs/kernels.md#the-recallk-guarantee) needs both.
    pub candidate_budget: usize,
    /// Seed for the (deterministic) strided centroid initialisation.
    pub seed: u64,
}

impl Default for IndexConfig {
    fn default() -> Self {
        IndexConfig {
            centroids: 0,
            probes: 0,
            iterations: 3,
            sample: 20_000,
            min_candidates: 64,
            candidate_budget: 0,
            seed: 0x1D_EC0DE,
        }
    }
}

impl IndexConfig {
    fn resolve_centroids(&self, n_users: usize) -> usize {
        let c = if self.centroids == 0 {
            (((n_users as f64).sqrt() * 0.5) as usize).clamp(8, 256)
        } else {
            self.centroids
        };
        c.clamp(1, n_users.max(1))
    }

    fn resolve_probes(&self, centroids: usize) -> usize {
        let p = if self.probes == 0 {
            (centroids / 8).max(4)
        } else {
            self.probes
        };
        p.clamp(1, centroids)
    }

    /// The resolved overlap-pass budget for a world of `n_users`.
    pub fn resolve_budget(&self, n_users: usize) -> usize {
        if self.candidate_budget == 0 {
            (n_users / 5).max(2048)
        } else {
            self.candidate_budget
        }
    }
}

/// A built index: cluster membership lists plus the centroids needed to
/// route queries, frozen at one matrix revision.
#[derive(Debug, Clone)]
pub struct CandidateIndex {
    revision: u64,
    n_users: usize,
    probes: usize,
    /// Per-cluster member lists, each sorted ascending by user id.
    members: Vec<Vec<u32>>,
    /// Centroid coordinates in **item-major** layout:
    /// `vals[item * C + c]` is centroid `c`'s weight on `item`. A
    /// query walks its sparse row once and accumulates all `C` scores
    /// from contiguous per-item blocks. `Arc`-shared so
    /// [`CandidateIndex::reassign`] clones membership without copying
    /// megabytes of frozen centroid geometry.
    vals: std::sync::Arc<Vec<f64>>,
    /// Per-centroid Euclidean norms (for cosine scoring), shared like
    /// `vals`.
    norms: std::sync::Arc<Vec<f64>>,
}

impl CandidateIndex {
    /// Clusters `csr`'s users under `cfg`. `O(iterations · sample ·
    /// row · C)` to refine, plus one full assignment pass.
    pub fn build(csr: &CsrRatings, cfg: &IndexConfig) -> Self {
        let n_users = csr.n_users();
        let n_items = csr.n_items();
        let c = cfg.resolve_centroids(n_users);
        let probes = cfg.resolve_probes(c);
        let mut vals = vec![0.0f64; n_items * c];
        let mut norms = vec![0.0f64; c];

        // Seed centroids from non-empty rows, strided across the id
        // space from a seeded offset so clusters start spread out.
        let seeds = {
            let mut non_empty: Vec<u32> = (0..n_users as u32)
                .filter(|&u| csr.row_len(u as usize) > 0)
                .collect();
            if non_empty.is_empty() {
                non_empty.extend(0..n_users.min(c) as u32);
            }
            let stride = (non_empty.len() / c.max(1)).max(1);
            let offset = (cfg.seed as usize) % stride;
            let mut picked = Vec::with_capacity(c);
            let mut at = offset;
            while picked.len() < c && at < non_empty.len() {
                picked.push(non_empty[at]);
                at += stride;
            }
            // Short worlds: wrap round-robin until every centroid has
            // a seed row.
            let mut wrap = 0usize;
            while picked.len() < c && !non_empty.is_empty() {
                picked.push(non_empty[wrap % non_empty.len()]);
                wrap += 1;
            }
            picked
        };
        for (ci, &u) in seeds.iter().enumerate() {
            let (items, row_vals) = csr.row(u as usize);
            let mean = csr.user_mean_or(u as usize, 0.0);
            for (idx, &item) in items.iter().enumerate() {
                vals[item as usize * c + ci] = row_vals[idx] - mean;
            }
        }
        recompute_norms(&vals, &mut norms, n_items, c);

        // Lloyd refinement over a strided sample of users.
        let sample_stride = if cfg.sample == 0 || n_users <= cfg.sample {
            1
        } else {
            n_users.div_ceil(cfg.sample)
        };
        let mut scores = vec![0.0f64; c];
        for _ in 0..cfg.iterations {
            let mut acc = vec![0.0f64; n_items * c];
            let mut counts = vec![0u64; c];
            let mut u = 0usize;
            while u < n_users {
                if csr.row_len(u) > 0 {
                    let ci = assign(csr, u, &vals, &norms, c, &mut scores);
                    let (items, row_vals) = csr.row(u);
                    let mean = csr.user_mean_or(u, 0.0);
                    for (idx, &item) in items.iter().enumerate() {
                        acc[item as usize * c + ci] += row_vals[idx] - mean;
                    }
                    counts[ci] += 1;
                }
                u += sample_stride;
            }
            // Move non-empty clusters to their member mean; clusters
            // that attracted nobody keep their previous centroid.
            for ci in 0..c {
                if counts[ci] == 0 {
                    continue;
                }
                let inv = 1.0 / counts[ci] as f64;
                for item in 0..n_items {
                    vals[item * c + ci] = acc[item * c + ci] * inv;
                }
            }
            recompute_norms(&vals, &mut norms, n_items, c);
        }

        // Final membership pass over every user, ascending id order, so
        // member lists come out sorted. Empty rows round-robin across
        // clusters: they carry no signal and never score anyway.
        let mut members: Vec<Vec<u32>> = vec![Vec::new(); c];
        for u in 0..n_users {
            let ci = if csr.row_len(u) == 0 {
                u % c
            } else {
                assign(csr, u, &vals, &norms, c, &mut scores)
            };
            members[ci].push(u as u32);
        }

        CandidateIndex {
            revision: csr.revision(),
            n_users,
            probes,
            members,
            vals: std::sync::Arc::new(vals),
            norms: std::sync::Arc::new(norms),
        }
    }

    /// Re-routes `users` to their nearest centroid against the *frozen*
    /// geometry, returning an index stamped with `csr`'s revision. This
    /// is the incremental write path: a rating write moves one user's
    /// row, so only that user's cluster membership can change — the
    /// centroids themselves stay put (they are `Arc`-shared, not
    /// copied) and drift is bounded by the engine's rebuild threshold.
    ///
    /// Assignment uses the exact scoring as [`CandidateIndex::build`]'s
    /// final pass (cosine, ties toward the lowest centroid id; empty
    /// rows round-robin by id), so a user whose row did not meaningfully
    /// move stays in the same cluster.
    pub fn reassign(&self, csr: &CsrRatings, users: &[u32]) -> CandidateIndex {
        let c = self.n_centroids();
        let mut members = self.members.clone();
        let mut scores = vec![0.0f64; c];
        for &u in users {
            if (u as usize) >= self.n_users || c == 0 {
                continue;
            }
            let target = if csr.row_len(u as usize) == 0 {
                (u as usize) % c
            } else {
                assign(csr, u as usize, &self.vals, &self.norms, c, &mut scores)
            };
            let current = members
                .iter()
                .position(|list| list.binary_search(&u).is_ok());
            match current {
                Some(ci) if ci == target => {}
                Some(ci) => {
                    let at = members[ci].binary_search(&u).expect("found above");
                    members[ci].remove(at);
                    let at = members[target].binary_search(&u).unwrap_err();
                    members[target].insert(at, u);
                }
                None => {
                    let at = members[target].binary_search(&u).unwrap_err();
                    members[target].insert(at, u);
                }
            }
        }
        CandidateIndex {
            revision: csr.revision(),
            n_users: self.n_users,
            probes: self.probes,
            members,
            vals: std::sync::Arc::clone(&self.vals),
            norms: std::sync::Arc::clone(&self.norms),
        }
    }

    /// The matrix revision this index was built from.
    #[inline]
    pub fn revision(&self) -> u64 {
        self.revision
    }

    /// Number of centroids.
    pub fn n_centroids(&self) -> usize {
        self.members.len()
    }

    /// Centroids probed per query.
    pub fn probes(&self) -> usize {
        self.probes
    }

    /// `(mean, max)` cluster sizes, for debug surfaces.
    pub fn cluster_sizes(&self) -> (f64, usize) {
        let max = self.members.iter().map(Vec::len).max().unwrap_or(0);
        let mean = self.n_users as f64 / self.members.len().max(1) as f64;
        (mean, max)
    }

    /// The pruned candidate set for `user`: the sorted, deduplicated
    /// union of the members of the `probes` nearest centroids (cosine,
    /// ties toward the lower centroid id). A user with an empty row has
    /// no signal to route on and gets an empty set, which the caller's
    /// fallback floor turns into an exact scan.
    pub fn candidates(&self, csr: &CsrRatings, user: u32) -> Vec<u32> {
        let c = self.n_centroids();
        if c == 0 {
            return Vec::new();
        }
        let (items, row_vals) = csr.row(user as usize);
        if items.is_empty() {
            return Vec::new();
        }
        let mut scores = vec![0.0f64; c];
        let mean = csr.user_mean_or(user as usize, 0.0);
        score_row(items, row_vals, mean, &self.vals, c, &mut scores);
        for (score, &norm) in scores.iter_mut().zip(self.norms.iter()) {
            if norm > 0.0 {
                *score /= norm;
            }
        }
        // Rank centroids by score descending, centroid id ascending on
        // ties; take the first `probes`.
        let mut order: Vec<usize> = (0..c).collect();
        order.sort_by(|&a, &b| {
            scores[b]
                .partial_cmp(&scores[a])
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.cmp(&b))
        });
        let mut out = Vec::new();
        for &ci in order.iter().take(self.probes) {
            out.extend_from_slice(&self.members[ci]);
        }
        // Member lists are disjoint and sorted; a concat of few lists
        // just needs one merge-style sort.
        out.sort_unstable();
        out
    }
}

/// Accumulates `(row − mean) · centroid_c` for all centroids at once
/// from the item-major centroid table. Rows are mean-centred so the
/// clustering geometry matches Pearson-style "taste after removing the
/// user's own scale" rather than raw positive-rating magnitude — on
/// 1–5 star data every raw row points the same direction, and
/// clusters built there separate by popularity, not preference.
#[inline]
fn score_row(
    items: &[u32],
    row_vals: &[f64],
    mean: f64,
    vals: &[f64],
    c: usize,
    scores: &mut [f64],
) {
    scores.fill(0.0);
    for (idx, &item) in items.iter().enumerate() {
        let x = row_vals[idx] - mean;
        let base = item as usize * c;
        for (ci, s) in scores.iter_mut().enumerate() {
            *s += x * vals[base + ci];
        }
    }
}

/// Assigns one (non-empty) user row to its nearest centroid by cosine
/// score, ties toward the lowest centroid id.
fn assign(
    csr: &CsrRatings,
    user: usize,
    vals: &[f64],
    norms: &[f64],
    c: usize,
    scores: &mut [f64],
) -> usize {
    let (items, row_vals) = csr.row(user);
    let mean = csr.user_mean_or(user, 0.0);
    score_row(items, row_vals, mean, vals, c, scores);
    let mut best = 0usize;
    let mut best_score = f64::NEG_INFINITY;
    for ci in 0..c {
        let s = if norms[ci] > 0.0 {
            scores[ci] / norms[ci]
        } else {
            0.0
        };
        if s > best_score {
            best_score = s;
            best = ci;
        }
    }
    best
}

fn recompute_norms(vals: &[f64], norms: &mut [f64], n_items: usize, c: usize) {
    norms.fill(0.0);
    for item in 0..n_items {
        let base = item * c;
        for ci in 0..c {
            let v = vals[base + ci];
            norms[ci] += v * v;
        }
    }
    for n in norms.iter_mut() {
        *n = n.sqrt();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use exrec_data::RatingsMatrix;
    use exrec_types::{ItemId, RatingScale, UserId};

    /// Two obvious taste blocks: users 0..10 love items 0..5 and pan
    /// items 5..10; users 10..20 are the mirror image. Everyone rates
    /// everything, so the blocks differ in *preference*, which is what
    /// the mean-centred clustering geometry separates.
    fn blocky_matrix() -> RatingsMatrix {
        let mut m = RatingsMatrix::new(20, 10, RatingScale::FIVE_STAR);
        for u in 0..20u32 {
            for i in 0..10u32 {
                let loved = (u < 10) == (i < 5);
                let v = if loved {
                    if (u + i) % 3 == 0 {
                        5.0
                    } else {
                        4.0
                    }
                } else if (u + i) % 3 == 0 {
                    2.0
                } else {
                    1.0
                };
                m.rate(UserId(u), ItemId(i), v).unwrap();
            }
        }
        m
    }

    fn cfg(centroids: usize, probes: usize) -> IndexConfig {
        IndexConfig {
            centroids,
            probes,
            ..IndexConfig::default()
        }
    }

    #[test]
    fn auto_shape_scales_with_world() {
        let c = IndexConfig::default().resolve_centroids(100_000);
        assert_eq!(c, 158, "√100k / 2");
        assert_eq!(IndexConfig::default().resolve_probes(c), 19);
        assert_eq!(IndexConfig::default().resolve_centroids(10), 8);
        assert_eq!(
            IndexConfig::default().resolve_centroids(4),
            4,
            "clamped to n_users"
        );
    }

    #[test]
    fn members_partition_all_users_sorted() {
        let m = blocky_matrix();
        let csr = CsrRatings::from_matrix(&m);
        let index = CandidateIndex::build(&csr, &cfg(4, 2));
        let mut all: Vec<u32> = index.members.iter().flatten().copied().collect();
        assert!(index
            .members
            .iter()
            .all(|list| list.windows(2).all(|w| w[0] < w[1])));
        all.sort_unstable();
        assert_eq!(all, (0..20u32).collect::<Vec<_>>());
        assert_eq!(index.revision(), m.revision());
    }

    #[test]
    fn blocks_separate_and_candidates_find_own_block() {
        let m = blocky_matrix();
        let csr = CsrRatings::from_matrix(&m);
        let index = CandidateIndex::build(&csr, &cfg(2, 1));
        let cands = index.candidates(&csr, 0);
        assert!(cands.contains(&1), "same-taste user is a candidate");
        assert!(
            !cands.contains(&15),
            "opposite block pruned away at 1 probe: {cands:?}"
        );
        assert!(
            cands.windows(2).all(|w| w[0] < w[1]),
            "sorted, deduplicated"
        );
        // Probing every centroid recovers the full user set.
        let wide = CandidateIndex::build(&csr, &cfg(2, 2));
        assert_eq!(wide.candidates(&csr, 0).len(), 20);
    }

    #[test]
    fn build_is_deterministic() {
        let m = blocky_matrix();
        let csr = CsrRatings::from_matrix(&m);
        let a = CandidateIndex::build(&csr, &cfg(4, 2));
        let b = CandidateIndex::build(&csr, &cfg(4, 2));
        assert_eq!(a.members, b.members);
        assert_eq!(a.candidates(&csr, 7), b.candidates(&csr, 7));
    }

    #[test]
    fn reassign_moves_only_touched_users() {
        let mut m = blocky_matrix();
        let csr = CsrRatings::from_matrix(&m);
        let index = CandidateIndex::build(&csr, &cfg(2, 1));
        let cluster_of = |index: &CandidateIndex, u: u32| {
            index
                .members
                .iter()
                .position(|list| list.binary_search(&u).is_ok())
                .unwrap()
        };
        let before_0 = cluster_of(&index, 0);
        let before_15 = cluster_of(&index, 15);
        assert_ne!(before_0, before_15, "blocks start separated");

        // User 0 defects to the mirror taste block.
        for i in 0..10u32 {
            let loved = i >= 5;
            m.rate(UserId(0), ItemId(i), if loved { 5.0 } else { 1.0 })
                .unwrap();
        }
        let csr2 = CsrRatings::from_matrix(&m);
        let patched = index.reassign(&csr2, &[0]);
        assert_eq!(patched.revision(), csr2.revision());
        assert_eq!(
            cluster_of(&patched, 0),
            before_15,
            "touched user re-routes to the block it now matches"
        );
        // Untouched users keep their clusters; membership still
        // partitions the id space, sorted.
        for u in 1..20u32 {
            assert_eq!(cluster_of(&patched, u), cluster_of(&index, u));
        }
        let mut all: Vec<u32> = patched.members.iter().flatten().copied().collect();
        all.sort_unstable();
        assert_eq!(all, (0..20u32).collect::<Vec<_>>());
        assert!(patched
            .members
            .iter()
            .all(|list| list.windows(2).all(|w| w[0] < w[1])));

        // A user whose row did not move stays put even when listed.
        let stable = index.reassign(&csr, &[7]);
        assert_eq!(stable.members, index.members);
    }

    #[test]
    fn empty_row_has_no_candidates() {
        let mut m = RatingsMatrix::new(5, 3, RatingScale::FIVE_STAR);
        m.rate(UserId(0), ItemId(0), 4.0).unwrap();
        m.rate(UserId(1), ItemId(0), 5.0).unwrap();
        let csr = CsrRatings::from_matrix(&m);
        let index = CandidateIndex::build(&csr, &cfg(2, 1));
        assert!(index.candidates(&csr, 4).is_empty());
    }
}

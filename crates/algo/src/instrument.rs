//! Telemetry decorator for recommenders.
//!
//! [`InstrumentedRecommender`] wraps any [`Recommender`] and counts and
//! times every `predict`/`evidence`/`recommend` call against a shared
//! [`Telemetry`] registry, under per-model metric names:
//!
//! | metric | kind | meaning |
//! |---|---|---|
//! | `algo.predict.<model>` | counter | successful predictions |
//! | `algo.predict_err.<model>` | counter | failed predictions |
//! | `algo.predict_ns.<model>` | histogram | prediction latency |
//! | `algo.evidence_ns.<model>` | histogram | evidence-gathering latency |
//! | `algo.recommend.<model>` | counter | `recommend` calls |
//! | `algo.recommend_ns.<model>` | histogram | full ranking latency |
//! | `algo.recommend_batch.<model>` | counter | `recommend_batch` calls |
//! | `algo.recommend_batch_users.<model>` | counter | users served via batches |
//! | `algo.recommend_batch_ns.<model>` | histogram | whole-batch latency |
//!
//! Handles are resolved once at construction, so the per-call overhead is
//! a timestamp and two relaxed atomic updates — safe to leave enabled in
//! the hot path.

use std::sync::Arc;
use std::time::Instant;

use exrec_obs::{Counter, Histogram, Telemetry};
use exrec_types::{ItemId, Prediction, Result, UserId};

use crate::recommender::{Ctx, ModelEvidence, Recommender, Scored};

/// A [`Recommender`] that reports per-model metrics on every call.
#[derive(Debug)]
pub struct InstrumentedRecommender<R> {
    inner: R,
    predictions: Counter,
    prediction_errors: Counter,
    predict_ns: Arc<Histogram>,
    evidence_ns: Arc<Histogram>,
    recommends: Counter,
    recommend_ns: Arc<Histogram>,
    batches: Counter,
    batch_users: Counter,
    batch_ns: Arc<Histogram>,
}

impl<R: Recommender> InstrumentedRecommender<R> {
    /// Wraps `inner`, registering its metric family on `telemetry`'s
    /// registry under the model's [`Recommender::name`].
    pub fn new(inner: R, telemetry: &Telemetry) -> Self {
        let name = inner.name();
        let metrics = telemetry.metrics();
        InstrumentedRecommender {
            predictions: metrics.counter(&format!("algo.predict.{name}")),
            prediction_errors: metrics.counter(&format!("algo.predict_err.{name}")),
            predict_ns: metrics.histogram(&format!("algo.predict_ns.{name}")),
            evidence_ns: metrics.histogram(&format!("algo.evidence_ns.{name}")),
            recommends: metrics.counter(&format!("algo.recommend.{name}")),
            recommend_ns: metrics.histogram(&format!("algo.recommend_ns.{name}")),
            batches: metrics.counter(&format!("algo.recommend_batch.{name}")),
            batch_users: metrics.counter(&format!("algo.recommend_batch_users.{name}")),
            batch_ns: metrics.histogram(&format!("algo.recommend_batch_ns.{name}")),
            inner,
        }
    }

    /// The wrapped model.
    pub fn inner(&self) -> &R {
        &self.inner
    }

    /// Unwraps the model, dropping the instrumentation.
    pub fn into_inner(self) -> R {
        self.inner
    }
}

impl<R: Recommender> Recommender for InstrumentedRecommender<R> {
    fn name(&self) -> &'static str {
        self.inner.name()
    }

    fn predict(&self, ctx: &Ctx<'_>, user: UserId, item: ItemId) -> Result<Prediction> {
        let started = Instant::now();
        let result = self.inner.predict(ctx, user, item);
        self.predict_ns.record(started.elapsed());
        match &result {
            Ok(_) => self.predictions.incr(),
            Err(_) => self.prediction_errors.incr(),
        }
        result
    }

    fn evidence(&self, ctx: &Ctx<'_>, user: UserId, item: ItemId) -> Result<ModelEvidence> {
        let started = Instant::now();
        let result = self.inner.evidence(ctx, user, item);
        self.evidence_ns.record(started.elapsed());
        result
    }

    fn recommend(&self, ctx: &Ctx<'_>, user: UserId, n: usize) -> Vec<Scored> {
        let started = Instant::now();
        // Delegate to the inner model so specialised rankings (e.g.
        // TF-IDF's cosine ordering) are preserved; its per-item predict
        // calls bypass this wrapper, so the ranking itself is observed
        // as one `recommend` sample rather than n `predict` samples.
        let result = self.inner.recommend(ctx, user, n);
        self.recommend_ns.record(started.elapsed());
        self.recommends.incr();
        result
    }

    fn recommend_batch(&self, ctx: &Ctx<'_>, users: &[UserId], n: usize) -> Vec<Vec<Scored>> {
        let started = Instant::now();
        // Delegate so a model with a specialised batch path (or a cache
        // warmed across the batch) keeps it; the whole batch is observed
        // as one sample plus a served-user count.
        let result = self.inner.recommend_batch(ctx, users, n);
        self.batch_ns.record(started.elapsed());
        self.batches.incr();
        self.batch_users.add(users.len() as u64);
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use exrec_data::{Catalog, RatingsMatrix};
    use exrec_types::{AttributeDef, AttributeSet, DomainSchema, Error, RatingScale};

    fn fixture() -> (RatingsMatrix, Catalog) {
        let schema =
            DomainSchema::new("d", vec![AttributeDef::categorical("genre", "Genre")]).unwrap();
        let mut catalog = Catalog::new(schema);
        for k in 0..4 {
            catalog
                .add(
                    &format!("item {k}"),
                    AttributeSet::new().with("genre", "g"),
                    vec![],
                )
                .unwrap();
        }
        let mut ratings = RatingsMatrix::new(2, 4, RatingScale::FIVE_STAR);
        ratings.rate(UserId(0), ItemId(0), 4.0).unwrap();
        (ratings, catalog)
    }

    /// Succeeds on even item ids, fails on odd ones.
    struct Flaky;

    impl Recommender for Flaky {
        fn name(&self) -> &'static str {
            "flaky"
        }
        fn predict(&self, _ctx: &Ctx<'_>, user: UserId, item: ItemId) -> Result<Prediction> {
            if item.0.is_multiple_of(2) {
                Ok(Prediction::new(3.0, exrec_types::Confidence::new(0.5)))
            } else {
                Err(Error::NoPrediction {
                    user,
                    item,
                    reason: "odd item",
                })
            }
        }
        fn evidence(&self, _ctx: &Ctx<'_>, _user: UserId, _item: ItemId) -> Result<ModelEvidence> {
            Ok(ModelEvidence::Popularity {
                mean: 3.0,
                count: 1,
            })
        }
    }

    #[test]
    fn counts_successes_errors_and_latency() {
        let (ratings, catalog) = fixture();
        let ctx = Ctx::new(&ratings, &catalog);
        let obs = Telemetry::default();
        let model = InstrumentedRecommender::new(Flaky, &obs);

        for item in 0..4 {
            let _ = model.predict(&ctx, UserId(0), ItemId(item));
        }
        let _ = model.evidence(&ctx, UserId(0), ItemId(0));
        let recs = model.recommend(&ctx, UserId(0), 10);
        let batch = model.recommend_batch(&ctx, &[UserId(0), UserId(1)], 10);

        let report = obs.report();
        assert_eq!(report.counters["algo.predict.flaky"], 2);
        assert_eq!(report.counters["algo.predict_err.flaky"], 2);
        assert_eq!(report.counters["algo.recommend.flaky"], 1);
        assert_eq!(report.counters["algo.recommend_batch.flaky"], 1);
        assert_eq!(report.counters["algo.recommend_batch_users.flaky"], 2);
        assert_eq!(report.histograms["algo.recommend_batch_ns.flaky"].count, 1);
        assert_eq!(batch.len(), 2);
        assert_eq!(report.histograms["algo.predict_ns.flaky"].count, 4);
        assert_eq!(report.histograms["algo.evidence_ns.flaky"].count, 1);
        assert_eq!(report.histograms["algo.recommend_ns.flaky"].count, 1);
        // Item 0 is rated, items 2 is the only unrated even id.
        assert_eq!(recs.len(), 1);
        assert_eq!(model.name(), "flaky");
    }
}

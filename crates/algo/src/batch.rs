//! Work-stealing parallel batch serving.
//!
//! Every recommender in this crate scores one user per call; production
//! traffic and the evaluation harness both arrive in *batches* (score
//! these 10k users, rank for every study participant). This module adds
//! the parallel path:
//!
//! * [`parallel_map`] — the core primitive: a fixed pool of
//!   `std::thread` workers pulling index chunks from a shared
//!   crossbeam-style MPMC [`channel`], so fast workers steal the work
//!   slow workers have not claimed (dynamic load balancing without
//!   per-item locking);
//! * [`BatchPool`] — a configured, optionally telemetry-instrumented
//!   handle exposing [`BatchPool::recommend_batch`] over any
//!   `Recommender + Sync`;
//! * [`Recommender::recommend_batch`] (trait default, sequential) is the
//!   single-threaded reference the parallel path must match bit-for-bit.
//!
//! **Determinism.** Workers only decide *when* each user is scored,
//! never *how*: results land in their input slot, each user's
//! computation reads the shared immutable [`Ctx`], and the similarity
//! cache stores exact values keyed by revision. Output is therefore
//! identical across 1/4/8 threads and to the sequential path — asserted
//! by `crates/algo/tests/batch.rs`.

use std::collections::VecDeque;
use std::ops::Range;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Instant;

use exrec_obs::Telemetry;
use exrec_types::UserId;

use crate::recommender::{Ctx, Recommender, Scored};

/// Shared state of a [`channel`].
struct ChanInner<T> {
    queue: Mutex<VecDeque<T>>,
    ready: Condvar,
    senders: AtomicUsize,
}

/// Sending half of an MPMC channel; cloning adds a producer.
pub struct Sender<T>(Arc<ChanInner<T>>);

/// Receiving half of an MPMC channel; cloning adds a consumer.
pub struct Receiver<T>(Arc<ChanInner<T>>);

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Self {
        self.0.senders.fetch_add(1, Ordering::Relaxed);
        Sender(Arc::clone(&self.0))
    }
}

impl<T> Clone for Receiver<T> {
    fn clone(&self) -> Self {
        Receiver(Arc::clone(&self.0))
    }
}

impl<T> Drop for Sender<T> {
    fn drop(&mut self) {
        if self.0.senders.fetch_sub(1, Ordering::AcqRel) == 1 {
            // Last producer gone: wake every blocked consumer so it can
            // observe disconnection.
            self.0.ready.notify_all();
        }
    }
}

impl<T> Sender<T> {
    /// Enqueues a value; consumers in [`Receiver::recv`] wake in FIFO
    /// claim order.
    pub fn send(&self, value: T) {
        let mut queue = self.0.queue.lock().unwrap_or_else(|p| p.into_inner());
        queue.push_back(value);
        drop(queue);
        self.0.ready.notify_one();
    }
}

impl<T> Receiver<T> {
    /// Dequeues the next value, blocking while the channel is empty.
    /// Returns `None` once the channel is empty *and* every sender is
    /// dropped — the workers' shutdown signal.
    pub fn recv(&self) -> Option<T> {
        let mut queue = self.0.queue.lock().unwrap_or_else(|p| p.into_inner());
        loop {
            if let Some(value) = queue.pop_front() {
                return Some(value);
            }
            if self.0.senders.load(Ordering::Acquire) == 0 {
                return None;
            }
            queue = self.0.ready.wait(queue).unwrap_or_else(|p| p.into_inner());
        }
    }
}

/// An unbounded multi-producer multi-consumer channel (crossbeam-style
/// disconnect semantics: `recv` drains remaining values after the last
/// sender drops, then reports disconnection).
pub fn channel<T>() -> (Sender<T>, Receiver<T>) {
    let inner = Arc::new(ChanInner {
        queue: Mutex::new(VecDeque::new()),
        ready: Condvar::new(),
        senders: AtomicUsize::new(1),
    });
    (Sender(Arc::clone(&inner)), Receiver(inner))
}

/// The number of worker threads [`BatchConfig::threads`]` == 0` resolves
/// to: the machine's available parallelism.
pub fn default_threads() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

/// Applies `f` to every item on a temporary worker pool, returning the
/// results **in input order**.
///
/// Work is distributed as index chunks through a shared MPMC channel:
/// each worker repeatedly steals the next unclaimed chunk, so a chunk
/// that turns out expensive delays only its thief. With `threads <= 1`
/// (or one item) this degrades to a plain sequential map with no pool.
///
/// If the calling thread has an active trace context it is installed in
/// every worker, so spans opened inside `f` parent onto the span that
/// submitted the batch — a request trace stays one tree across the
/// thread boundary. An active profiling context
/// ([`exrec_obs::profile::current`]) propagates the same way, so phase
/// guards opened inside `f` nest under the submitting request's phase.
///
/// `f` receives `(index, &item)`; results are placed by index, so output
/// order never depends on scheduling.
pub fn parallel_map<T, U, F>(threads: usize, items: &[T], f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(usize, &T) -> U + Sync,
{
    if items.is_empty() {
        return Vec::new();
    }
    let threads = threads.min(items.len());
    if threads <= 1 {
        return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
    }

    // ~4 chunks per worker balances steal overhead against skew.
    let chunk = items.len().div_ceil(threads * 4).max(1);
    let (tx, rx) = channel::<Range<usize>>();
    let mut start = 0;
    while start < items.len() {
        let end = (start + chunk).min(items.len());
        tx.send(start..end);
        start = end;
    }
    drop(tx);

    let trace_ctx = exrec_obs::trace::current();
    let profile_ctx = exrec_obs::profile::current();
    let collected: Mutex<Vec<(usize, U)>> = Mutex::new(Vec::with_capacity(items.len()));
    std::thread::scope(|scope| {
        for _ in 0..threads {
            let rx = rx.clone();
            let collected = &collected;
            let f = &f;
            let trace_ctx = trace_ctx.clone();
            let profile_ctx = profile_ctx.clone();
            scope.spawn(move || {
                let _trace = trace_ctx.map(exrec_obs::trace::install);
                let _profile = profile_ctx.map(exrec_obs::profile::install);
                let mut local: Vec<(usize, U)> = Vec::new();
                while let Some(range) = rx.recv() {
                    for i in range {
                        local.push((i, f(i, &items[i])));
                    }
                }
                collected
                    .lock()
                    .unwrap_or_else(|p| p.into_inner())
                    .extend(local);
            });
        }
    });

    let mut slots: Vec<Option<U>> = items.iter().map(|_| None).collect();
    for (i, value) in collected.into_inner().unwrap_or_else(|p| p.into_inner()) {
        slots[i] = Some(value);
    }
    slots
        .into_iter()
        .map(|slot| slot.expect("every index produced exactly one result"))
        .collect()
}

/// Configuration for a [`BatchPool`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BatchConfig {
    /// Worker threads; `0` resolves to [`default_threads`].
    pub threads: usize,
}

/// A handle for running batches of recommendation requests across a
/// worker pool, optionally recording batch telemetry.
///
/// ```
/// use exrec_algo::baseline::Popularity;
/// use exrec_algo::batch::BatchPool;
/// use exrec_algo::{Ctx, Recommender};
/// use exrec_data::synth::{movies, WorldConfig};
/// use exrec_types::UserId;
///
/// let world = movies::generate(&WorldConfig::default());
/// let ctx = Ctx::new(&world.ratings, &world.catalog);
/// let model = Popularity::default();
/// let users: Vec<UserId> = world.ratings.users().take(16).collect();
///
/// let pool = BatchPool::new(4);
/// let parallel = pool.recommend_batch(&model, &ctx, &users, 5);
/// let sequential = model.recommend_batch(&ctx, &users, 5);
/// assert_eq!(parallel, sequential);
/// ```
#[derive(Debug, Clone, Default)]
pub struct BatchPool {
    config: BatchConfig,
    telemetry: Option<Telemetry>,
}

impl BatchPool {
    /// A pool with `threads` workers (`0` = available parallelism).
    pub fn new(threads: usize) -> Self {
        BatchPool {
            config: BatchConfig { threads },
            telemetry: None,
        }
    }

    /// Attaches a telemetry handle. Each batch then records its size
    /// (`batch.requests`), count (`batch.batches`) and wall-clock
    /// (`batch.recommend_ns` / `batch.explain_ns` in `exrec-core`).
    pub fn with_telemetry(mut self, telemetry: Telemetry) -> Self {
        self.telemetry = Some(telemetry);
        self
    }

    /// The resolved worker count.
    pub fn threads(&self) -> usize {
        if self.config.threads == 0 {
            default_threads()
        } else {
            self.config.threads
        }
    }

    /// The attached telemetry, if any.
    pub fn telemetry(&self) -> Option<&Telemetry> {
        self.telemetry.as_ref()
    }

    /// Runs `f` over `items` on this pool, in input order, recording
    /// batch telemetry under `batch.<label>*` when attached.
    pub fn run<T, U, F>(&self, label: &str, items: &[T], f: F) -> Vec<U>
    where
        T: Sync,
        U: Send,
        F: Fn(usize, &T) -> U + Sync,
    {
        // An empty batch does no work; skip the pool and keep the
        // batch.* series free of zero-sized entries.
        if items.is_empty() {
            return Vec::new();
        }
        let started = Instant::now();
        // Inside a request trace the batch gets its own span: workers
        // install the context (see `parallel_map`), so their spans hang
        // off this one. Untraced batches skip the span and keep the
        // established batch.* histograms as their only cost.
        let _span = self.telemetry.as_ref().and_then(|t| {
            exrec_obs::trace::current()
                .is_some()
                .then(|| exrec_obs::span!(t, "batch", label = label, requests = items.len()))
        });
        let out = parallel_map(self.threads(), items, f);
        if let Some(t) = &self.telemetry {
            let m = t.metrics();
            m.counter("batch.batches").incr();
            m.counter("batch.requests").add(items.len() as u64);
            m.gauge("batch.threads").set(self.threads() as f64);
            m.histogram(&format!("batch.{label}_ns"))
                .record(started.elapsed());
        }
        out
    }

    /// Ranks top-`n` recommendations for every user in the batch, in
    /// input order, bit-identical to calling
    /// [`Recommender::recommend`] per user sequentially.
    pub fn recommend_batch<R>(
        &self,
        model: &R,
        ctx: &Ctx<'_>,
        users: &[UserId],
        n: usize,
    ) -> Vec<Vec<Scored>>
    where
        R: Recommender + Sync + ?Sized,
    {
        self.run("recommend", users, |_, &user| model.recommend(ctx, user, n))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::baseline::Popularity;
    use exrec_data::synth::{movies, WorldConfig};

    #[test]
    fn channel_delivers_everything_then_disconnects() {
        let (tx, rx) = channel::<u32>();
        for i in 0..100 {
            tx.send(i);
        }
        drop(tx);
        let mut got: Vec<u32> = std::iter::from_fn(|| rx.recv()).collect();
        got.sort_unstable();
        assert_eq!(got, (0..100).collect::<Vec<_>>());
        assert_eq!(rx.recv(), None, "disconnected channel stays empty");
    }

    #[test]
    fn channel_is_mpmc() {
        let (tx, rx) = channel::<u64>();
        let producers: Vec<_> = (0..4)
            .map(|p| {
                let tx = tx.clone();
                std::thread::spawn(move || {
                    for i in 0..500 {
                        tx.send(p * 1_000 + i);
                    }
                })
            })
            .collect();
        drop(tx);
        let consumers: Vec<_> = (0..4)
            .map(|_| {
                let rx = rx.clone();
                std::thread::spawn(move || {
                    let mut sum = 0u64;
                    let mut n = 0u64;
                    while let Some(v) = rx.recv() {
                        sum += v;
                        n += 1;
                    }
                    (sum, n)
                })
            })
            .collect();
        for p in producers {
            p.join().unwrap();
        }
        let (mut total, mut count) = (0, 0);
        for c in consumers {
            let (s, n) = c.join().unwrap();
            total += s;
            count += n;
        }
        assert_eq!(count, 2_000, "every message consumed exactly once");
        let expected: u64 = (0..4u64)
            .map(|p| (0..500).map(|i| p * 1_000 + i).sum::<u64>())
            .sum();
        assert_eq!(total, expected);
    }

    #[test]
    fn parallel_map_preserves_order() {
        let items: Vec<u64> = (0..1_000).collect();
        for threads in [1, 2, 4, 8] {
            let out = parallel_map(threads, &items, |i, &x| {
                assert_eq!(i as u64, x);
                x * 3
            });
            assert_eq!(out, items.iter().map(|x| x * 3).collect::<Vec<_>>());
        }
    }

    #[test]
    fn parallel_map_handles_edge_sizes() {
        let empty: Vec<u8> = vec![];
        assert!(parallel_map(8, &empty, |_, &x| x).is_empty());
        assert_eq!(parallel_map(8, &[42u8], |_, &x| x), vec![42]);
    }

    #[test]
    fn empty_batch_short_circuits_without_pool_or_telemetry() {
        // `parallel_map` must not spawn (or even size) a pool for zero
        // items, regardless of the requested thread count.
        let empty: Vec<u64> = vec![];
        assert!(parallel_map(usize::MAX, &empty, |_, &x| x).is_empty());

        // `BatchPool::run` returns immediately and records nothing, so
        // empty batches never skew the batch.* series.
        let obs = Telemetry::default();
        let pool = BatchPool::new(4).with_telemetry(obs.clone());
        let out: Vec<u64> = pool.run("recommend", &empty, |_, &x| x);
        assert!(out.is_empty());
        let report = obs.report();
        assert!(!report.counters.contains_key("batch.batches"));
        assert!(!report.histograms.contains_key("batch.recommend_ns"));

        // The trait-default `Recommender::recommend_batch` also
        // short-circuits: no per-user calls, just an empty result.
        let world = movies::generate(&WorldConfig {
            n_users: 5,
            n_items: 5,
            density: 0.5,
            ..WorldConfig::default()
        });
        let ctx = Ctx::new(&world.ratings, &world.catalog);
        let model = Popularity::default();
        assert!(model.recommend_batch(&ctx, &[], 4).is_empty());
        assert!(pool.recommend_batch(&model, &ctx, &[], 4).is_empty());
    }

    #[test]
    fn pool_propagates_trace_context_to_workers() {
        use exrec_obs::{trace, CountingSubscriber, IdSource, Subscriber};
        use std::sync::Arc;

        let collector = Arc::new(CountingSubscriber::new());
        let obs = Telemetry::with_subscriber(Arc::clone(&collector) as Arc<dyn Subscriber>);
        let ids = Arc::new(IdSource::seeded(21));
        let pool = BatchPool::new(4).with_telemetry(obs.clone());
        let items: Vec<u64> = (0..64).collect();
        let expected_trace;
        {
            let root = obs.root_span("request", &ids);
            expected_trace = root.trace_id_hex().unwrap();
            let obs_ref = &obs;
            let out = pool.run("recommend", &items, |_, &x| {
                let _span = obs_ref.span("work_item");
                x * 2
            });
            assert_eq!(out, items.iter().map(|x| x * 2).collect::<Vec<_>>());
        }
        assert!(trace::current().is_none());
        let events = collector.events();
        let batch = events.iter().find(|e| e.name == "batch").unwrap();
        assert_eq!(batch.trace_id.as_deref(), Some(expected_trace.as_str()));
        let work: Vec<_> = events.iter().filter(|e| e.name == "work_item").collect();
        assert_eq!(work.len(), items.len());
        for w in &work {
            assert_eq!(
                w.trace_id.as_deref(),
                Some(expected_trace.as_str()),
                "worker spans join the submitting request's trace"
            );
            assert_eq!(
                w.parent_id, batch.span_id,
                "worker spans parent onto the batch span across threads"
            );
        }
        // Untraced batches stay span-free (no trace context, no span).
        let before = collector.events().len();
        pool.run("recommend", &items, |_, &x| x);
        let after: Vec<_> = collector.events().split_off(before);
        assert!(after.iter().all(|e| e.name != "batch"));
    }

    #[test]
    fn pool_matches_sequential_and_records_telemetry() {
        let world = movies::generate(&WorldConfig {
            n_users: 30,
            n_items: 30,
            density: 0.3,
            ..WorldConfig::default()
        });
        let ctx = Ctx::new(&world.ratings, &world.catalog);
        let model = Popularity::default();
        let users: Vec<UserId> = world.ratings.users().collect();

        let obs = Telemetry::default();
        let pool = BatchPool::new(3).with_telemetry(obs.clone());
        assert_eq!(pool.threads(), 3);
        let parallel = pool.recommend_batch(&model, &ctx, &users, 4);
        assert_eq!(parallel, model.recommend_batch(&ctx, &users, 4));

        let report = obs.report();
        assert_eq!(report.counters["batch.batches"], 1);
        assert_eq!(report.counters["batch.requests"], users.len() as u64);
        assert_eq!(report.histograms["batch.recommend_ns"].count, 1);
        assert_eq!(report.gauges["batch.threads"], 3.0);
    }
}

//! Integration tests for the batch serving path: whatever the thread
//! count or cache configuration, `recommend_batch` must return exactly
//! what the sequential per-user loop returns — bit for bit.

use std::sync::Arc;

use exrec_algo::baseline::Popularity;
use exrec_algo::batch::BatchPool;
use exrec_algo::cache::{CacheConfig, SimilarityCache};
use exrec_algo::{Ctx, Recommender, Scored, UserKnn};
use exrec_data::synth::{movies, WorldConfig};
use exrec_data::World;
use exrec_types::UserId;

fn world() -> World {
    movies::generate(&WorldConfig {
        n_users: 120,
        n_items: 60,
        density: 0.2,
        seed: 0xBA7C,
        ..WorldConfig::default()
    })
}

fn sequential<R: Recommender + ?Sized>(
    model: &R,
    ctx: &Ctx<'_>,
    users: &[UserId],
    n: usize,
) -> Vec<Vec<Scored>> {
    users.iter().map(|&u| model.recommend(ctx, u, n)).collect()
}

/// Compares two result sets down to the bit pattern of every score, so a
/// "close enough" floating-point drift still fails.
fn assert_bit_identical(a: &[Vec<Scored>], b: &[Vec<Scored>], label: &str) {
    assert_eq!(a.len(), b.len(), "{label}: result count");
    for (i, (xs, ys)) in a.iter().zip(b).enumerate() {
        assert_eq!(xs.len(), ys.len(), "{label}: user #{i} result length");
        for (x, y) in xs.iter().zip(ys) {
            assert_eq!(x.item, y.item, "{label}: user #{i} item");
            assert_eq!(
                x.prediction.score.to_bits(),
                y.prediction.score.to_bits(),
                "{label}: user #{i} item {:?} score bits",
                x.item
            );
        }
    }
}

#[test]
fn recommend_batch_matches_sequential_across_thread_counts() {
    let w = world();
    let ctx = Ctx::new(&w.ratings, &w.catalog);
    let users: Vec<UserId> = w.ratings.users().collect();

    let knn = UserKnn::default();
    let pop = Popularity::default();
    let knn_reference = sequential(&knn, &ctx, &users, 5);
    let pop_reference = sequential(&pop, &ctx, &users, 5);

    for threads in [1, 4, 8] {
        let pool = BatchPool::new(threads);
        assert_bit_identical(
            &pool.recommend_batch(&knn, &ctx, &users, 5),
            &knn_reference,
            &format!("UserKnn @ {threads} threads"),
        );
        assert_bit_identical(
            &pool.recommend_batch(&pop, &ctx, &users, 5),
            &pop_reference,
            &format!("Popularity @ {threads} threads"),
        );
    }
}

#[test]
fn cached_model_is_bit_identical_to_uncached() {
    let w = world();
    let ctx = Ctx::new(&w.ratings, &w.catalog);
    let users: Vec<UserId> = w.ratings.users().collect();

    let uncached = UserKnn::default();
    let reference = sequential(&uncached, &ctx, &users, 5);

    let cache = Arc::new(SimilarityCache::new(CacheConfig::default()));
    let cached = UserKnn::default().with_cache(Arc::clone(&cache));
    let pool = BatchPool::new(4);

    // Twice: the first pass fills the cache, the second mostly hits it —
    // both must reproduce the uncached scores exactly.
    for pass in ["cold", "warm"] {
        assert_bit_identical(
            &pool.recommend_batch(&cached, &ctx, &users, 5),
            &reference,
            &format!("cached ({pass})"),
        );
    }
    let stats = cache.stats();
    assert!(stats.hits > 0, "warm pass should hit the cache");
    assert!(stats.misses > 0, "cold pass should miss the cache");
}

#[test]
fn cache_invalidates_when_the_matrix_mutates() {
    let mut w = world();
    let ctx = Ctx::new(&w.ratings, &w.catalog);
    let users: Vec<UserId> = w.ratings.users().take(20).collect();

    let cache = Arc::new(SimilarityCache::new(CacheConfig::default()));
    let cached = UserKnn::default().with_cache(Arc::clone(&cache));
    let pool = BatchPool::new(2);
    let before = pool.recommend_batch(&cached, &ctx, &users, 5);

    // Mutate the matrix: cached similarities are now stale and the next
    // request must recompute them, matching a fresh uncached model.
    let user = users[0];
    let item = w
        .catalog
        .ids()
        .find(|&i| w.ratings.rating(user, i).is_none())
        .expect("some item is unrated");
    let value = w.ratings.scale().max();
    w.ratings.rate(user, item, value).unwrap();

    let ctx = Ctx::new(&w.ratings, &w.catalog);
    let after = pool.recommend_batch(&cached, &ctx, &users, 5);
    let reference = sequential(&UserKnn::default(), &ctx, &users, 5);
    assert_bit_identical(&after, &reference, "post-mutation cached");
    assert!(
        cache.stats().invalidations > 0,
        "revision change must invalidate at least one shard"
    );

    // Sanity: the mutation actually changed something for the rated user
    // (at minimum the scores shift, since every similarity involving
    // `user` changed).
    let bits = |results: &[Vec<Scored>]| {
        results[0]
            .iter()
            .map(|s| (s.item, s.prediction.score.to_bits()))
            .collect::<Vec<_>>()
    };
    assert_ne!(
        bits(&before),
        bits(&after),
        "rating a new item should alter the first user's top-5"
    );
}

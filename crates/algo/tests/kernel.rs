//! Integration and property tests for the CSR-tiled similarity kernel
//! and the cluster-pruned candidate index.
//!
//! The correctness bar from `docs/kernels.md`:
//!
//! * **Exact mode is bit-identical** to the brute per-pair path — same
//!   top-k, same scores down to the float bits, for every similarity
//!   measure, with or without a similarity cache attached, including
//!   the negative-`min_similarity` edge where zero-similarity raters
//!   survive the filter.
//! * **Tile size is a pure performance knob** — any tile size produces
//!   the identical exact ranking.
//! * **Pruned mode keeps recall@k ≥ 0.99** against exact on seeded
//!   synthetic worlds, and **falls back to exact** when the candidate
//!   set is too small for `k`.

use std::sync::Arc;

use exrec_algo::cache::{CacheConfig, SimilarityCache};
use exrec_algo::kernel::{
    overlap_candidates, scan_similarities, union_sorted, CsrRatings, SimParams,
};
use exrec_algo::neighbors::top_k_stream;
use exrec_algo::user_knn::UserKnnConfig;
use exrec_algo::{
    Ctx, IndexConfig, KernelConfig, Recommender, ScanEngine, ScanMode, Scored, Similarity,
    TileSize, UserKnn,
};
use exrec_data::synth::{movies, WorldConfig};
use exrec_data::{RatingsMatrix, World};
use exrec_types::{ItemId, UserId};
use proptest::prelude::*;

fn world(n_users: usize, n_items: usize, seed: u64) -> World {
    movies::generate(&WorldConfig {
        n_users,
        n_items,
        density: 0.2,
        seed,
        ..WorldConfig::default()
    })
}

fn engine_with(tile: TileSize, index: IndexConfig) -> Arc<ScanEngine> {
    Arc::new(ScanEngine::new(
        KernelConfig {
            tile,
            ..KernelConfig::default()
        },
        index,
    ))
}

fn assert_bit_identical(a: &[Scored], b: &[Scored], label: &str) {
    assert_eq!(a.len(), b.len(), "{label}: result length");
    for (x, y) in a.iter().zip(b) {
        assert_eq!(x.item, y.item, "{label}: item order");
        assert_eq!(
            x.prediction.score.to_bits(),
            y.prediction.score.to_bits(),
            "{label}: score bits for {:?}",
            x.item
        );
        assert_eq!(
            x.prediction.confidence.value().to_bits(),
            y.prediction.confidence.value().to_bits(),
            "{label}: confidence bits for {:?}",
            x.item
        );
    }
}

/// Exact mode must reproduce the brute path bit-for-bit: every
/// similarity measure, negative min_similarity (which admits
/// zero-similarity raters), and a cache on the brute side.
#[test]
fn exact_mode_is_bit_identical_to_brute() {
    let w = world(150, 80, 0xC0FFEE);
    let ctx = Ctx::new(&w.ratings, &w.catalog);
    let users: Vec<UserId> = (0..150).step_by(7).map(|u| UserId(u as u32)).collect();
    for similarity in [
        Similarity::Pearson,
        Similarity::Cosine,
        Similarity::AdjustedCosine,
        Similarity::Jaccard,
    ] {
        for min_similarity in [0.0, -2.0] {
            let config = UserKnnConfig {
                similarity,
                min_similarity,
                ..UserKnnConfig::default()
            };
            let brute = UserKnn::new(config.clone()).unwrap();
            let cached = UserKnn::new(config.clone())
                .unwrap()
                .with_cache(Arc::new(SimilarityCache::new(CacheConfig::default())));
            let exact = UserKnn::new(config).unwrap().with_engine(
                engine_with(TileSize::Auto, IndexConfig::default()),
                ScanMode::Exact,
            );
            for &u in &users {
                let want = brute.recommend(&ctx, u, 10);
                let label = format!("{similarity:?} min_sim {min_similarity} user {u}");
                assert_bit_identical(&exact.recommend(&ctx, u, 10), &want, &label);
                assert_bit_identical(&cached.recommend(&ctx, u, 10), &want, &label);
                // The single-item evidence path must agree too.
                if let Some(first) = want.first() {
                    let bn = brute.neighbors(&ctx, u, first.item);
                    let en = exact.neighbors(&ctx, u, first.item);
                    assert_eq!(bn.len(), en.len(), "{label}: neighbour count");
                    for (x, y) in bn.iter().zip(&en) {
                        assert_eq!(x.user, y.user, "{label}: neighbour order");
                        assert_eq!(
                            x.similarity.to_bits(),
                            y.similarity.to_bits(),
                            "{label}: similarity bits"
                        );
                    }
                }
            }
        }
    }
}

/// Tile size only changes the clock, never the ranking.
#[test]
fn tile_size_is_result_invariant() {
    let w = world(200, 60, 0x711E);
    let ctx = Ctx::new(&w.ratings, &w.catalog);
    let reference = UserKnn::default().with_engine(
        engine_with(TileSize::Fixed(1), IndexConfig::default()),
        ScanMode::Exact,
    );
    let users: Vec<UserId> = (0..200).step_by(13).map(|u| UserId(u as u32)).collect();
    let wants: Vec<Vec<Scored>> = users
        .iter()
        .map(|&u| reference.recommend(&ctx, u, 8))
        .collect();
    for tile in [3, 7, 64, 200, 100_000] {
        let model = UserKnn::default().with_engine(
            engine_with(TileSize::Fixed(tile), IndexConfig::default()),
            ScanMode::Exact,
        );
        for (u, want) in users.iter().zip(&wants) {
            assert_bit_identical(
                &model.recommend(&ctx, *u, 8),
                want,
                &format!("tile {tile} user {u}"),
            );
        }
    }
}

/// Pruned mode on seeded worlds: recall@k of the *neighbour search* —
/// the top-k most similar users the pruned candidate set surfaces,
/// against the exact scan's top-k — must hold ≥ 0.99 averaged over
/// sampled queries. This is the metric `docs/kernels.md` defines (the
/// explanation-evidence guarantee: pruning must not change which
/// neighbours get cited), also reported by `serve_bench` and gated by
/// `benchdiff`.
#[test]
fn pruned_recall_at_k_holds() {
    for (n_users, n_items, seed) in [(4000usize, 150usize, 0xFEEDu64), (6000, 200, 0x5EED)] {
        let w = world(n_users, n_items, seed);
        let csr = Arc::new(CsrRatings::from_matrix(&w.ratings));
        let index_cfg = IndexConfig::default();
        let index = exrec_algo::CandidateIndex::build(&csr, &index_cfg);
        let params = SimParams {
            similarity: Similarity::Pearson,
            min_overlap: 2,
            significance: 20,
        };
        let k = 20usize;
        let (mut hit, mut total) = (0usize, 0usize);
        let (mut exact_sims, mut pruned_sims) = (Vec::new(), Vec::new());
        let mut pruned_something = false;
        for u in (0..n_users).step_by(n_users / 50) {
            let user = UserId(u as u32);
            scan_similarities(&csr, &params, user, None, 2048, &mut exact_sims);
            let cands = union_sorted(
                &index.candidates(&csr, user.raw()),
                &overlap_candidates(&csr, user, index_cfg.resolve_budget(n_users)),
            );
            if cands.len() < n_users {
                pruned_something = true;
            }
            scan_similarities(&csr, &params, user, Some(&cands), 2048, &mut pruned_sims);
            let topk = |sims: &[f64]| -> Vec<u32> {
                top_k_stream(
                    (0..n_users as u32).filter(|&v| v as usize != u && sims[v as usize] > 0.0),
                    k,
                    |&v| sims[v as usize],
                )
            };
            let want = topk(&exact_sims);
            let got = topk(&pruned_sims);
            total += want.len();
            hit += want.iter().filter(|v| got.contains(v)).count();
        }
        assert!(pruned_something, "worlds must be big enough to prune");
        assert!(total > 0, "queries must surface neighbours");
        let recall = hit as f64 / total as f64;
        assert!(
            recall >= 0.99,
            "pruned neighbour recall@{k} {recall:.4} below the 0.99 floor on n={n_users}"
        );
    }
}

/// A candidate set below the fallback floor degrades to an exact scan
/// instead of serving a starved neighbourhood.
#[test]
fn tiny_candidate_set_falls_back_to_exact() {
    let w = world(60, 40, 0xFA11);
    let ctx = Ctx::new(&w.ratings, &w.catalog);
    let engine = engine_with(TileSize::Auto, IndexConfig::default());
    let brute = UserKnn::default();
    let pruned = UserKnn::default().with_engine(Arc::clone(&engine), ScanMode::Pruned);
    // 60 users < fallback floor (min_candidates 64, and 4k = 80): every
    // request must fall back, making pruned bit-identical to brute.
    for u in (0..60u32).step_by(5) {
        assert_bit_identical(
            &pruned.recommend(&ctx, UserId(u), 10),
            &brute.recommend(&ctx, UserId(u), 10),
            &format!("fallback user {u}"),
        );
    }
    let stats = engine.stats();
    assert!(stats.exact_fallbacks > 0, "expected fallbacks: {stats:?}");
    assert_eq!(
        stats.pruned_scans, 0,
        "nothing should have pruned: {stats:?}"
    );
}

/// Mutating the matrix must invalidate the engine's snapshot: the next
/// scan sees the new rating, matching the stateless brute path.
#[test]
fn engine_observes_rating_updates() {
    let mut w = world(100, 50, 0xAB1E);
    let engine = engine_with(TileSize::Auto, IndexConfig::default());
    let exact = UserKnn::default().with_engine(Arc::clone(&engine), ScanMode::Exact);
    let brute = UserKnn::default();
    let user = UserId(3);
    let before = {
        let ctx = Ctx::new(&w.ratings, &w.catalog);
        exact.recommend(&ctx, user, 5)
    };
    let target = before.first().expect("needs a recommendation").item;
    // The user rates their own top pick; it must vanish from the list
    // and the rebuilt snapshot must agree with brute exactly.
    w.ratings.rate(user, target, 1.0).unwrap();
    let ctx = Ctx::new(&w.ratings, &w.catalog);
    let after = exact.recommend(&ctx, user, 5);
    assert!(
        after.iter().all(|s| s.item != target),
        "rated item must drop"
    );
    assert_bit_identical(&after, &brute.recommend(&ctx, user, 5), "post-mutation");
    assert!(engine.stats().csr_builds >= 2, "snapshot must have rebuilt");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// CSR round-trip: every row, column, mean and count the snapshot
    /// exposes matches the dense matrix it was built from.
    #[test]
    fn csr_round_trips_dense_matrix(seed in 0u64..1000, n_users in 2usize..40, n_items in 2usize..30) {
        let w = movies::generate(&WorldConfig {
            n_users,
            n_items,
            density: 0.3,
            seed,
            ..WorldConfig::default()
        });
        let m = &w.ratings;
        let csr = CsrRatings::from_matrix(m);
        prop_assert_eq!(csr.n_users(), m.n_users());
        prop_assert_eq!(csr.n_items(), m.n_items());
        prop_assert_eq!(csr.n_ratings(), m.n_ratings());
        prop_assert_eq!(csr.revision(), m.revision());
        for u in 0..m.n_users() {
            let dense = m.user_ratings(UserId(u as u32));
            let (items, vals) = csr.row(u);
            prop_assert_eq!(items.len(), dense.len());
            for (j, &(item, value)) in dense.iter().enumerate() {
                prop_assert_eq!(items[j], item.raw());
                prop_assert_eq!(vals[j].to_bits(), value.to_bits());
            }
            match m.user_mean(UserId(u as u32)) {
                Some(mean) => prop_assert_eq!(csr.user_mean_or(u, f64::NAN).to_bits(), mean.to_bits()),
                None => prop_assert_eq!(csr.user_mean_or(u, 9.5), 9.5),
            }
        }
        for i in 0..m.n_items() {
            let dense = m.item_ratings(ItemId(i as u32));
            let (users, vals) = csr.col(i);
            prop_assert_eq!(users.len(), dense.len());
            for (j, &(user, value)) in dense.iter().enumerate() {
                prop_assert_eq!(users[j], user.raw());
                prop_assert_eq!(vals[j].to_bits(), value.to_bits());
            }
        }
    }

    /// The raw kernel at any tile size equals the tile-1 kernel: the
    /// sims table is bit-for-bit the same, full range or subset.
    #[test]
    fn kernel_sims_tile_invariant(seed in 0u64..500, tile in 1usize..300, user in 0u32..30) {
        let w = movies::generate(&WorldConfig {
            n_users: 30,
            n_items: 25,
            density: 0.3,
            seed,
            ..WorldConfig::default()
        });
        let csr = CsrRatings::from_matrix(&w.ratings);
        let params = SimParams {
            similarity: Similarity::Pearson,
            min_overlap: 2,
            significance: 10,
        };
        let (mut a, mut b) = (Vec::new(), Vec::new());
        scan_similarities(&csr, &params, UserId(user), None, 1, &mut a);
        scan_similarities(&csr, &params, UserId(user), None, tile, &mut b);
        for v in 0..csr.n_users() {
            prop_assert_eq!(a[v].to_bits(), b[v].to_bits(), "full scan, candidate {}", v);
        }
        let subset: Vec<u32> = (0..30u32).step_by(3).collect();
        scan_similarities(&csr, &params, UserId(user), Some(&subset), tile, &mut b);
        for v in 0..csr.n_users() {
            let want = if subset.contains(&(v as u32)) { a[v] } else { 0.0 };
            prop_assert_eq!(b[v].to_bits(), want.to_bits(), "subset scan, candidate {}", v);
        }
    }
}

/// An empty matrix and a single-user world must not panic anywhere in
/// the engine paths.
#[test]
fn degenerate_worlds_are_safe() {
    let m = RatingsMatrix::new(0, 0, exrec_types::RatingScale::FIVE_STAR);
    let csr = CsrRatings::from_matrix(&m);
    assert_eq!(csr.n_ratings(), 0);
    let params = SimParams {
        similarity: Similarity::Pearson,
        min_overlap: 2,
        significance: 0,
    };
    let mut sims = Vec::new();
    let outcome = scan_similarities(&csr, &params, UserId(0), None, 16, &mut sims);
    assert_eq!(outcome.scored, 0);

    let w = world(1, 5, 0x01);
    let ctx = Ctx::new(&w.ratings, &w.catalog);
    let model = UserKnn::default().with_engine(
        engine_with(TileSize::Auto, IndexConfig::default()),
        ScanMode::Pruned,
    );
    // One user has no neighbours; must return empty, not panic.
    assert!(model.recommend(&ctx, UserId(0), 5).is_empty());
    assert!(model.recommend(&ctx, UserId(99), 5).is_empty());
}

//! # exrec-eval
//!
//! The evaluation harness: executable, simulated-user versions of every
//! evaluation protocol in Section 3 of the reproduced survey.
//!
//! * [`stats`] — summaries, Welch-t, Mann–Whitney U, correlations;
//! * [`questionnaire`] — the five-dimension trust battery (Section 3.3);
//! * [`simuser`] — the behavioural model standing in for human
//!   participants (see DESIGN.md §2 for the substitution argument);
//! * [`report`] — tables/series/JSON study reports;
//! * [`studies`] — E-PERS, E-SHIFT, E-EFK, E-EFC, E-TRUST, E-TRA, E-SCR,
//!   E-SAT, the A-TRADE ablation, and the E-MODAL / E-ACC extensions.
//!
//! Every study is seed-deterministic; unit tests assert the *shape* of
//! each cited result (who wins, which direction), never absolute values.
//!
//! Studies can run sequentially ([`run_all_studies_with`]) or fanned out
//! over the work-stealing pool from `exrec_algo::batch`
//! ([`run_all_studies_with_threads`]); because each study owns its RNG
//! stream and shares no mutable state, the parallel mode returns
//! identical reports in canonical order. The `repro` binary exposes this
//! as `--parallel [N]`.

#![deny(missing_docs)]
#![warn(rust_2018_idioms)]

use std::time::Instant;

use exrec_core::aims::Aim;
use exrec_obs::Telemetry;

pub mod quality;
pub mod questionnaire;
pub mod report;
pub mod simuser;
pub mod stats;
pub mod studies;

pub use report::{Series, StudyReport, Table};
pub use simuser::{Persona, SimUser};

/// Runs every study at its default configuration and returns the reports
/// in experiment-id order. Used by the `repro` binary and the benchmark
/// harness.
pub fn run_all_studies() -> Vec<StudyReport> {
    run_all_studies_with(&Telemetry::default())
}

/// Runs one study under telemetry: a `study` span plus, on the metrics
/// registry, its wall-clock (`eval.study_ns.<id>`), the same duration
/// filed under every aim it evaluates (`eval.aim_ns.<aim>`), simulated
/// throughput (`eval.users_per_sec.<id>`), and workspace-wide totals
/// (`eval.studies_run`, `eval.simulated_users`).
fn observed(
    telemetry: &Telemetry,
    aims: &[Aim],
    participants: usize,
    run: impl FnOnce() -> StudyReport,
) -> StudyReport {
    let started = Instant::now();
    let report = run();
    let elapsed = started.elapsed();

    // Re-emit the span after the fact so its duration matches the
    // recorded wall-clock and the id comes from the report itself.
    drop(
        exrec_obs::span!(
            telemetry,
            "study",
            id = &report.id,
            participants = participants
        )
        .started_at(started),
    );
    let metrics = telemetry.metrics();
    metrics
        .histogram(&format!("eval.study_ns.{}", report.id))
        .record(elapsed);
    for aim in aims {
        metrics
            .histogram(&format!("eval.aim_ns.{}", aim.name().to_ascii_lowercase()))
            .record(elapsed);
    }
    let secs = elapsed.as_secs_f64();
    if secs > 0.0 {
        metrics
            .gauge(&format!("eval.users_per_sec.{}", report.id))
            .set(participants as f64 / secs);
    }
    metrics.counter("eval.studies_run").incr();
    metrics
        .counter("eval.simulated_users")
        .add(participants as u64);
    report
}

/// Every study's experiment id, in canonical run order.
pub const STUDY_IDS: [&str; 11] = [
    "E-PERS", "E-SHIFT", "E-EFK", "E-EFC", "E-TRUST", "E-TRA", "E-SCR", "E-SAT", "A-TRADE",
    "E-MODAL", "E-ACC",
];

/// Runs one study (by experiment id, case-insensitive) at its default
/// configuration, recording per-study telemetry (wall-clock, per-aim
/// durations, throughput). Returns `None` for unknown ids.
pub fn run_study_with(telemetry: &Telemetry, id: &str) -> Option<StudyReport> {
    use Aim::*;

    /// Runs one study at its default config under [`observed`], naming
    /// the config field that holds the simulated-participant count.
    macro_rules! study {
        ($module:ident, $participants:ident, [$($aim:ident),+]) => {{
            let cfg = studies::$module::Config::default();
            let n = cfg.$participants;
            observed(telemetry, &[$($aim),+], n, || studies::$module::run(&cfg).report)
        }};
    }

    let report = match id.to_uppercase().as_str() {
        "E-PERS" => study!(persuasion_herlocker, n_participants, [Persuasiveness]),
        "E-SHIFT" => study!(rating_shift, n_participants, [Persuasiveness]),
        "E-EFK" => study!(effectiveness, n_participants, [Effectiveness]),
        "E-EFC" => study!(efficiency, n_shoppers, [Efficiency]),
        "E-TRUST" => study!(trust_loyalty, n_participants, [Trust]),
        "E-TRA" => study!(transparency, n_participants, [Transparency]),
        "E-SCR" => study!(scrutability, n_participants, [Scrutability]),
        "E-SAT" => study!(satisfaction, n_participants, [Satisfaction]),
        // A-TRADE sweeps the survey's two named tensions, so its
        // duration is filed under all four aims being traded off.
        "A-TRADE" => study!(
            tradeoffs,
            n_participants,
            [Transparency, Efficiency, Persuasiveness, Effectiveness]
        ),
        // E-MODAL measures comprehension (effectiveness) and preference
        // (satisfaction) across text/visual variants.
        "E-MODAL" => study!(modality, n_participants, [Effectiveness, Satisfaction]),
        "E-ACC" => study!(accuracy, n_users, [Effectiveness]),
        _ => return None,
    };
    Some(report)
}

/// [`run_all_studies`], recording per-study telemetry: wall-clock
/// histograms (`eval.study_ns.<id>`), the same durations grouped by the
/// survey aim each study evaluates (`eval.aim_ns.<aim>`), and
/// simulated-user throughput gauges (`eval.users_per_sec.<id>`). The
/// study→aim mapping follows the survey's Section 3 assignments; A-TRADE
/// and the extensions are filed under every aim they trade off (see
/// `docs/observability.md`).
pub fn run_all_studies_with(telemetry: &Telemetry) -> Vec<StudyReport> {
    run_all_studies_with_threads(telemetry, 1)
}

/// [`run_all_studies_with`], but fanning independent studies out over
/// `threads` workers (`0` = available parallelism, `1` = sequential)
/// using the work-stealing pool from `exrec_algo::batch`.
///
/// Studies are internally seed-deterministic and share no mutable state,
/// so every report is identical to the sequential run and reports come
/// back in canonical [`STUDY_IDS`] order regardless of scheduling. The
/// telemetry registry is lock-free on the hot path and its counters
/// commute, so aggregate totals (`eval.studies_run`,
/// `eval.simulated_users`, per-study wall-clocks) also match; only
/// throughput gauges may differ, since wall-clock under contention is
/// not wall-clock alone.
pub fn run_all_studies_with_threads(telemetry: &Telemetry, threads: usize) -> Vec<StudyReport> {
    let threads = if threads == 0 {
        exrec_algo::batch::default_threads()
    } else {
        threads
    };
    exrec_algo::batch::parallel_map(threads, &STUDY_IDS, |_, id| {
        run_study_with(telemetry, id).expect("known id")
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_studies_produce_reports_and_telemetry() {
        let obs = Telemetry::default();
        let reports = run_all_studies_with(&obs);
        assert_eq!(reports.len(), 11);
        let ids: Vec<&str> = reports.iter().map(|r| r.id.as_str()).collect();
        assert_eq!(
            ids,
            vec![
                "E-PERS", "E-SHIFT", "E-EFK", "E-EFC", "E-TRUST", "E-TRA", "E-SCR", "E-SAT",
                "A-TRADE", "E-MODAL", "E-ACC"
            ]
        );
        for r in &reports {
            assert!(!r.tables.is_empty(), "{} has no tables", r.id);
            assert!(!r.render_ascii().is_empty());
        }

        let report = obs.report();
        assert_eq!(report.counters["eval.studies_run"], 11);
        assert!(report.counters["eval.simulated_users"] > 0);
        // One wall-clock sample and one throughput gauge per study…
        for id in &ids {
            assert_eq!(report.histograms[&format!("eval.study_ns.{id}")].count, 1);
            assert!(report.gauges[&format!("eval.users_per_sec.{id}")] > 0.0);
        }
        assert_eq!(report.histograms["span_ns.study"].count, 11);
        // …and every one of the survey's seven aims exercised at least
        // once (persuasiveness by both E-PERS and E-SHIFT).
        for aim in Aim::ALL {
            let samples = report.histograms
                [&format!("eval.aim_ns.{}", aim.name().to_ascii_lowercase())]
                .count;
            assert!(samples >= 1, "aim {} never evaluated", aim.name());
        }
        assert_eq!(report.histograms["eval.aim_ns.persuasiveness"].count, 3);
    }

    #[test]
    fn parallel_studies_match_sequential() {
        let sequential = run_all_studies_with(&Telemetry::default());
        let obs = Telemetry::default();
        let parallel = run_all_studies_with_threads(&obs, 4);
        assert_eq!(parallel.len(), sequential.len());
        for (p, s) in parallel.iter().zip(&sequential) {
            assert_eq!(p.id, s.id, "canonical order survives scheduling");
            assert_eq!(p.tables, s.tables, "{}: reports must be identical", p.id);
        }
        // Aggregate telemetry still adds up under concurrency.
        let report = obs.report();
        assert_eq!(report.counters["eval.studies_run"], 11);
        assert_eq!(report.histograms["span_ns.study"].count, 11);
    }
}

//! # exrec-eval
//!
//! The evaluation harness: executable, simulated-user versions of every
//! evaluation protocol in Section 3 of the reproduced survey.
//!
//! * [`stats`] — summaries, Welch-t, Mann–Whitney U, correlations;
//! * [`questionnaire`] — the five-dimension trust battery (Section 3.3);
//! * [`simuser`] — the behavioural model standing in for human
//!   participants (see DESIGN.md §2 for the substitution argument);
//! * [`report`] — tables/series/JSON study reports;
//! * [`studies`] — E-PERS, E-SHIFT, E-EFK, E-EFC, E-TRUST, E-TRA, E-SCR,
//!   E-SAT, the A-TRADE ablation, and the E-MODAL / E-ACC extensions.
//!
//! Every study is seed-deterministic; unit tests assert the *shape* of
//! each cited result (who wins, which direction), never absolute values.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod questionnaire;
pub mod report;
pub mod simuser;
pub mod stats;
pub mod studies;

pub use report::{Series, StudyReport, Table};
pub use simuser::{Persona, SimUser};

/// Runs every study at its default configuration and returns the reports
/// in experiment-id order. Used by the `repro` binary and the benchmark
/// harness.
pub fn run_all_studies() -> Vec<StudyReport> {
    vec![
        studies::persuasion_herlocker::run(&Default::default()).report,
        studies::rating_shift::run(&Default::default()).report,
        studies::effectiveness::run(&Default::default()).report,
        studies::efficiency::run(&Default::default()).report,
        studies::trust_loyalty::run(&Default::default()).report,
        studies::transparency::run(&Default::default()).report,
        studies::scrutability::run(&Default::default()).report,
        studies::satisfaction::run(&Default::default()).report,
        studies::tradeoffs::run(&Default::default()).report,
        studies::modality::run(&Default::default()).report,
        studies::accuracy::run(&Default::default()).report,
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_studies_produce_reports() {
        let reports = run_all_studies();
        assert_eq!(reports.len(), 11);
        let ids: Vec<&str> = reports.iter().map(|r| r.id.as_str()).collect();
        assert_eq!(
            ids,
            vec![
                "E-PERS", "E-SHIFT", "E-EFK", "E-EFC", "E-TRUST", "E-TRA", "E-SCR", "E-SAT",
                "A-TRADE", "E-MODAL", "E-ACC"
            ]
        );
        for r in &reports {
            assert!(!r.tables.is_empty(), "{} has no tables", r.id);
            assert!(!r.render_ascii().is_empty());
        }
    }
}

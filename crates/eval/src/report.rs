//! Study reports: tables and series with ASCII/Markdown/JSON output.
//!
//! Every study returns a [`StudyReport`] so the `repro` binary can print
//! the same rows the paper's cited evaluations report, and EXPERIMENTS.md
//! bookkeeping can diff JSON snapshots across runs.

use serde::{Deserialize, Serialize};
use std::fmt::Write as _;

/// A rectangular table.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Table {
    /// Table title.
    pub title: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Rows (each row must match headers in length).
    pub rows: Vec<Vec<String>>,
}

impl Table {
    /// Builds a table; panics in debug builds on ragged rows.
    pub fn new(title: &str, headers: Vec<&str>) -> Self {
        Self {
            title: title.to_owned(),
            headers: headers.into_iter().map(str::to_owned).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    pub fn push_row(&mut self, cells: Vec<String>) {
        debug_assert_eq!(cells.len(), self.headers.len(), "ragged row");
        self.rows.push(cells);
    }

    /// Renders as an aligned ASCII table.
    pub fn render_ascii(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.chars().count());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "== {} ==", self.title);
        let line = |cells: &[String], widths: &[usize]| -> String {
            cells
                .iter()
                .zip(widths)
                .map(|(c, w)| format!("{:w$}", c, w = w))
                .collect::<Vec<_>>()
                .join("  ")
        };
        let _ = writeln!(out, "{}", line(&self.headers, &widths));
        let _ = writeln!(
            out,
            "{}",
            widths
                .iter()
                .map(|w| "-".repeat(*w))
                .collect::<Vec<_>>()
                .join("  ")
        );
        for row in &self.rows {
            let _ = writeln!(out, "{}", line(row, &widths));
        }
        out
    }

    /// Renders as a Markdown table.
    pub fn render_markdown(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "### {}\n", self.title);
        let _ = writeln!(out, "| {} |", self.headers.join(" | "));
        let _ = writeln!(
            out,
            "|{}|",
            self.headers
                .iter()
                .map(|_| "---")
                .collect::<Vec<_>>()
                .join("|")
        );
        for row in &self.rows {
            let _ = writeln!(out, "| {} |", row.join(" | "));
        }
        out
    }
}

/// A named numeric series (one "figure line").
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Series {
    /// Series name.
    pub name: String,
    /// `(x, y)` points.
    pub points: Vec<(f64, f64)>,
}

/// A complete study report.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StudyReport {
    /// Experiment id from DESIGN.md (e.g. `"E-PERS"`).
    pub id: String,
    /// Human-readable name.
    pub name: String,
    /// Result tables.
    pub tables: Vec<Table>,
    /// Figure-like series.
    pub series: Vec<Series>,
    /// Free-form analysis notes (shape assertions, caveats).
    pub notes: Vec<String>,
}

impl StudyReport {
    /// Builds an empty report.
    pub fn new(id: &str, name: &str) -> Self {
        Self {
            id: id.to_owned(),
            name: name.to_owned(),
            tables: Vec::new(),
            series: Vec::new(),
            notes: Vec::new(),
        }
    }

    /// Renders everything as ASCII.
    pub fn render_ascii(&self) -> String {
        let mut out = format!("### {} — {} ###\n\n", self.id, self.name);
        for t in &self.tables {
            out.push_str(&t.render_ascii());
            out.push('\n');
        }
        for s in &self.series {
            let _ = writeln!(out, "series {}:", s.name);
            for (x, y) in &s.points {
                let _ = writeln!(out, "  {x:>8.3}  {y:>8.3}");
            }
            out.push('\n');
        }
        for n in &self.notes {
            let _ = writeln!(out, "note: {n}");
        }
        out
    }

    /// Serializes to pretty JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("report serializes")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table() -> Table {
        let mut t = Table::new("Mean response", vec!["Interface", "Mean"]);
        t.push_row(vec!["histogram".into(), "5.25".into()]);
        t.push_row(vec!["complex graph".into(), "2.10".into()]);
        t
    }

    #[test]
    fn ascii_is_aligned() {
        let text = table().render_ascii();
        assert!(text.contains("== Mean response =="));
        let rows: Vec<&str> = text.lines().skip(1).collect();
        // Header and rows share the column boundary.
        let header_gap = rows[0].find("  ").unwrap();
        assert!(rows[2].len() > header_gap);
        assert!(text.contains("histogram"));
    }

    #[test]
    fn markdown_has_separator() {
        let md = table().render_markdown();
        assert!(md.contains("| Interface | Mean |"));
        assert!(md.contains("|---|---|"));
    }

    #[test]
    fn report_round_trips_json() {
        let mut r = StudyReport::new("E-PERS", "Persuasion study");
        r.tables.push(table());
        r.series.push(Series {
            name: "shift".into(),
            points: vec![(1.0, 0.2), (2.0, 0.5)],
        });
        r.notes.push("histogram wins".into());
        let json = r.to_json();
        let back: StudyReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back, r);
        assert!(r.render_ascii().contains("note: histogram wins"));
    }
}

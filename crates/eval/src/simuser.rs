//! The simulated-user behavioural model.
//!
//! Substitutes for the human participants of the survey's cited studies
//! (see DESIGN.md §2). A [`Persona`] parameterizes individual differences;
//! response functions consume an explanation interface's *design
//! properties* (informativeness, cognitive load, grounding — declared in
//! `exrec-core::interfaces`) and its *declared aims*, never its name, so
//! study outcomes are emergent rather than hard-coded:
//!
//! * [`SimUser::likelihood_to_try`] — Herlocker-style 1–7 response to an
//!   explanation screen (E-PERS);
//! * [`SimUser::estimate_rating`] — pre-consumption estimate anchored on
//!   the shown prediction (E-SHIFT, E-EFK): persuasion-aimed interfaces
//!   pull the estimate toward the system's number, effectiveness-aimed
//!   interfaces shrink the estimate's error toward the user's own truth;
//! * [`SimUser::comprehension`] — probability of correctly understanding
//!   the mechanism (E-TRA, E-SCR);
//! * [`SimUser::reading_time`] — simulated ticks spent reading.

use exrec_core::aims::Aim;
use exrec_core::interfaces::InterfaceDescriptor;
use exrec_data::World;
use exrec_types::{ItemId, RatingScale, UserId};
use rand::RngExt;
use rand_chacha::ChaCha8Rng;

/// Individual-difference parameters, all in `[0, 1]` except noise.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Persona {
    /// How strongly the user anchors on system claims.
    pub susceptibility: f64,
    /// Tolerance for dense interfaces.
    pub patience: f64,
    /// Domain expertise (improves comprehension, speeds reading).
    pub expertise: f64,
    /// SD of the user's own utility-estimation noise, in scale units.
    pub estimate_noise: f64,
}

impl Persona {
    /// The population-average persona.
    pub fn average() -> Self {
        Self {
            susceptibility: 0.5,
            patience: 0.5,
            expertise: 0.5,
            estimate_noise: 0.5,
        }
    }

    /// Samples a persona from the population distribution.
    pub fn sample(rng: &mut ChaCha8Rng) -> Self {
        Self {
            susceptibility: rng.random_range(0.2..0.9),
            patience: rng.random_range(0.2..0.9),
            expertise: rng.random_range(0.1..0.9),
            estimate_noise: rng.random_range(0.3..0.8),
        }
    }
}

fn gaussian(rng: &mut ChaCha8Rng, sd: f64) -> f64 {
    let s: f64 = (0..12).map(|_| rng.random_range(0.0..1.0)).sum::<f64>() - 6.0;
    s * sd
}

/// A simulated participant bound to a generated world.
#[derive(Debug, Clone, Copy)]
pub struct SimUser<'w> {
    /// The world user this participant plays.
    pub id: UserId,
    /// Individual differences.
    pub persona: Persona,
    world: &'w World,
}

impl<'w> SimUser<'w> {
    /// Binds a persona to a world user.
    pub fn new(id: UserId, persona: Persona, world: &'w World) -> Self {
        Self { id, persona, world }
    }

    /// The participant's *true* liking of an item, on the world's scale.
    pub fn true_rating(&self, item: ItemId) -> f64 {
        self.world
            .latent
            .true_rating(self.id, item, self.world.ratings.scale())
    }

    /// Consuming an item reveals (noisy) truth: the post-consumption
    /// rating of the effectiveness protocol.
    pub fn post_consumption_rating(&self, item: ItemId, rng: &mut ChaCha8Rng) -> f64 {
        let scale = self.world.ratings.scale();
        scale.bound(self.true_rating(item) + gaussian(rng, 0.25))
    }

    /// Herlocker-style response: "how likely would you be to see this
    /// movie?" on a 1–7 scale, given the explanation screen alone.
    pub fn likelihood_to_try(
        &self,
        descriptor: &InterfaceDescriptor,
        shown_score: f64,
        scale: &RatingScale,
        rng: &mut ChaCha8Rng,
    ) -> f64 {
        let appeal = scale.normalize(shown_score) * 2.0 - 1.0; // [-1, 1]
        let value = descriptor.informativeness * descriptor.grounding;
        let load_penalty =
            descriptor.cognitive_load * descriptor.cognitive_load * (1.5 - self.persona.patience);
        let anchoring = (0.5 + self.persona.susceptibility) * appeal;
        let response = 4.0 + 1.6 * value * (0.4 + 0.6 * appeal.max(0.0)) + 1.0 * anchoring
            - 2.6 * load_penalty
            + gaussian(rng, 0.45);
        response.clamp(1.0, 7.0)
    }

    /// Anchoring pull toward the system's shown prediction, derived from
    /// the interface's *declared aims* (survey Section 3.8's
    /// persuasiveness↔effectiveness trade-off):
    /// persuasion-aimed interfaces pull hard; effectiveness-aimed ones
    /// help the user form their own estimate instead.
    pub fn anchor_pull(&self, descriptor: &InterfaceDescriptor) -> f64 {
        let persuasive = descriptor.aims.contains(Aim::Persuasiveness);
        let effective = descriptor.aims.contains(Aim::Effectiveness);
        let base = match (persuasive, effective) {
            (true, false) => 0.65,
            (true, true) => 0.40,
            (false, true) => 0.12,
            (false, false) => 0.30, // bare prediction still anchors a bit
        };
        (base * (0.6 + 0.8 * self.persona.susceptibility)).clamp(0.0, 0.95)
    }

    /// Pre-consumption estimate of how much the participant will like
    /// `item`, after seeing `shown_score` under `descriptor`.
    pub fn estimate_rating(
        &self,
        item: ItemId,
        shown_score: f64,
        descriptor: &InterfaceDescriptor,
        rng: &mut ChaCha8Rng,
    ) -> f64 {
        let scale = self.world.ratings.scale();
        let truth = self.true_rating(item);
        let pull = self.anchor_pull(descriptor);
        // Informative, grounded content lets the user reconstruct their
        // own preference more precisely.
        let info = descriptor.informativeness * descriptor.grounding;
        let noise_sd = self.persona.estimate_noise * (1.0 - 0.6 * info);
        scale.bound(truth + pull * (shown_score - truth) + gaussian(rng, noise_sd))
    }

    /// Probability the participant correctly understands *how the system
    /// works* from this interface (transparency tasks).
    pub fn comprehension(&self, descriptor: &InterfaceDescriptor) -> f64 {
        let info = descriptor.informativeness * descriptor.grounding;
        (0.15 + 0.55 * info + 0.25 * self.persona.expertise
            - 0.35 * descriptor.cognitive_load * (1.0 - self.persona.patience))
            .clamp(0.05, 0.98)
    }

    /// Comprehension adjusted for a concrete explanation's modality mix
    /// (future-work direction #2 of the survey's conclusion): presenting
    /// the same content in *complementary* text and visual form aids
    /// understanding (dual coding), while a chart with no words costs
    /// novices precision.
    pub fn comprehension_of(
        &self,
        descriptor: &InterfaceDescriptor,
        explanation: &exrec_core::explanation::Explanation,
    ) -> f64 {
        let base = self.comprehension(descriptor);
        let mix = exrec_core::modality::analyze(explanation);
        let adjustment = if mix.is_complementary() {
            0.12
        } else if mix.visual > 0 && mix.text == 0 {
            -0.10 * (1.0 - self.persona.expertise)
        } else {
            0.0
        };
        (base + adjustment).clamp(0.05, 0.98)
    }

    /// Simulated ticks spent reading an explanation of `reading_cost`
    /// base ticks (experts skim).
    pub fn reading_time(&self, reading_cost: u64) -> u64 {
        let factor = 1.3 - 0.5 * self.persona.expertise;
        ((reading_cost as f64) * factor).round() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use exrec_core::interfaces::InterfaceId;
    use exrec_data::synth::{movies, WorldConfig};
    use rand::SeedableRng;

    fn world() -> World {
        movies::generate(&WorldConfig {
            n_users: 20,
            n_items: 30,
            density: 0.3,
            ..WorldConfig::default()
        })
    }

    fn mean_response(user: &SimUser<'_>, id: InterfaceId, shown: f64, n: usize, seed: u64) -> f64 {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let d = id.descriptor();
        let scale = RatingScale::FIVE_STAR;
        (0..n)
            .map(|_| user.likelihood_to_try(&d, shown, &scale, &mut rng))
            .sum::<f64>()
            / n as f64
    }

    #[test]
    fn histogram_beats_control_beats_complex_graph() {
        let w = world();
        let user = SimUser::new(UserId::new(0), Persona::average(), &w);
        let hist = mean_response(&user, InterfaceId::ClusteredHistogram, 4.5, 300, 1);
        let none = mean_response(&user, InterfaceId::NoExplanation, 4.5, 300, 2);
        let graph = mean_response(&user, InterfaceId::ComplexGraph, 4.5, 300, 3);
        assert!(
            hist > none,
            "histogram {hist:.2} must beat control {none:.2}"
        );
        assert!(
            graph < none,
            "complex graph {graph:.2} must fall below control {none:.2}"
        );
    }

    #[test]
    fn higher_shown_score_raises_likelihood() {
        let w = world();
        let user = SimUser::new(UserId::new(1), Persona::average(), &w);
        let high = mean_response(&user, InterfaceId::Histogram, 5.0, 200, 4);
        let low = mean_response(&user, InterfaceId::Histogram, 1.5, 200, 5);
        assert!(high > low + 1.0);
    }

    #[test]
    fn persuasive_interfaces_pull_harder_than_effective_ones() {
        let w = world();
        let user = SimUser::new(UserId::new(2), Persona::average(), &w);
        let hist = user.anchor_pull(&InterfaceId::ClusteredHistogram.descriptor());
        let infl = user.anchor_pull(&InterfaceId::InfluenceList.descriptor());
        assert!(
            hist > infl,
            "clustered histogram pull {hist:.2} must exceed influence list {infl:.2}"
        );
    }

    #[test]
    fn estimates_anchor_toward_shown_prediction() {
        let w = world();
        let user = SimUser::new(UserId::new(3), Persona::average(), &w);
        let item = w.catalog.ids().next().unwrap();
        let truth = user.true_rating(item);
        let shown = (truth + 2.0).min(5.0);
        let mut rng = ChaCha8Rng::seed_from_u64(6);
        let d = InterfaceId::ClusteredHistogram.descriptor();
        let n = 300;
        let mean_est: f64 = (0..n)
            .map(|_| user.estimate_rating(item, shown, &d, &mut rng))
            .sum::<f64>()
            / n as f64;
        assert!(
            mean_est > truth + 0.2,
            "estimate {mean_est:.2} should move from truth {truth:.2} toward shown {shown:.2}"
        );
        assert!(mean_est < shown + 0.2);
    }

    #[test]
    fn effective_interfaces_estimate_closer_to_truth() {
        let w = world();
        let user = SimUser::new(UserId::new(4), Persona::average(), &w);
        let item = w.catalog.ids().nth(3).unwrap();
        let truth = user.true_rating(item);
        let shown = w.ratings.scale().bound(truth + 1.5);
        let n = 400;
        let mean_abs_err = |id: InterfaceId, seed: u64| {
            let mut rng = ChaCha8Rng::seed_from_u64(seed);
            let d = id.descriptor();
            (0..n)
                .map(|_| (user.estimate_rating(item, shown, &d, &mut rng) - truth).abs())
                .sum::<f64>()
                / n as f64
        };
        let persuasive = mean_abs_err(InterfaceId::ClusteredHistogram, 7);
        let effective = mean_abs_err(InterfaceId::InfluenceList, 8);
        assert!(
            effective < persuasive,
            "influence-style estimates ({effective:.2}) should sit nearer truth than \
             histogram estimates ({persuasive:.2})"
        );
    }

    #[test]
    fn comprehension_ordering() {
        let w = world();
        let expert = SimUser::new(
            UserId::new(5),
            Persona {
                expertise: 0.9,
                ..Persona::average()
            },
            &w,
        );
        let novice = SimUser::new(
            UserId::new(5),
            Persona {
                expertise: 0.1,
                ..Persona::average()
            },
            &w,
        );
        let d = InterfaceId::DetailedProcess.descriptor();
        assert!(expert.comprehension(&d) > novice.comprehension(&d));
        let none = InterfaceId::NoExplanation.descriptor();
        assert!(
            expert.comprehension(&d) > expert.comprehension(&none),
            "an explanation must aid comprehension over no explanation"
        );
    }

    #[test]
    fn reading_time_scales_with_cost_and_expertise() {
        let w = world();
        let expert = SimUser::new(
            UserId::new(6),
            Persona {
                expertise: 1.0,
                ..Persona::average()
            },
            &w,
        );
        let novice = SimUser::new(
            UserId::new(6),
            Persona {
                expertise: 0.0,
                ..Persona::average()
            },
            &w,
        );
        assert!(novice.reading_time(20) > expert.reading_time(20));
        assert!(expert.reading_time(40) > expert.reading_time(10));
        assert_eq!(expert.reading_time(0), 0);
    }

    #[test]
    fn responses_stay_on_likert_scale() {
        let w = world();
        let user = SimUser::new(
            UserId::new(7),
            Persona::sample(&mut ChaCha8Rng::seed_from_u64(9)),
            &w,
        );
        let mut rng = ChaCha8Rng::seed_from_u64(10);
        for id in InterfaceId::ALL {
            for shown in [1.0, 3.0, 5.0] {
                let r = user.likelihood_to_try(
                    &id.descriptor(),
                    shown,
                    &RatingScale::FIVE_STAR,
                    &mut rng,
                );
                assert!((1.0..=7.0).contains(&r));
            }
        }
    }
}

//! Offline explanation-quality metric suite (ROADMAP item 4).
//!
//! The survey's studies measure what explanations do to *users*; this
//! module measures what explanations say about the *model*, using the
//! metric families of the offline-evaluation literature (Zanon et al.,
//! "Can Offline Metrics Measure Explanation Goals?"; Chen et al.,
//! "Measuring 'Why'"):
//!
//! * **Model fidelity** — does the cited evidence actually drive the
//!   prediction? Measured by citation ablation
//!   ([`exrec_core::quality::ablation_fidelity`]): remove the top-cited
//!   evidence unit, recompute the evidence-implied score, normalize the
//!   shift by the rating-scale span.
//! * **Evidence precision/recall/F1** — are the cited neighbors, items
//!   and features the *right* ones? The synthetic worlds carry latent
//!   ground truth (user affinity, item prototypes, keyword bags), so the
//!   relevant set is known exactly — something no real-world dataset
//!   provides.
//! * **Per-aim aggregates** — each of the survey's seven aims weighs the
//!   measured components differently ([`aim_score`]); the best measured
//!   interface per aim is compared against the *static* default (the
//!   first catalog interface declaring the aim), which is how the
//!   registry's aim-fit selection earns its keep.
//!
//! Everything is seed-deterministic, and [`run`] fans interfaces out
//! over the work-stealing pool — results are identical at any thread
//! count. The `repro --offline-metrics` binary wraps [`run`] and writes
//! the schema-versioned `quality_report.json` that `benchdiff` diffs.

use std::collections::HashSet;

use exrec_algo::content::{TfIdfConfig, TfIdfModel};
use exrec_algo::item_knn::{ItemKnn, ItemKnnConfig};
use exrec_algo::knowledge::{Constraint, Maut, Requirement};
use exrec_algo::{Ctx, ModelEvidence, Recommender, UserKnn};
use exrec_core::aims::Aim;
use exrec_core::engine::Explainer;
use exrec_core::interfaces::{EvidenceNeed, InterfaceId};
use exrec_core::quality::{QualityProbe, MAX_PROVENANCE_DEPTH};
use exrec_data::synth::{cameras, movies, WorldConfig};
use exrec_data::World;
use exrec_types::{ItemId, UserId};
use serde::{Deserialize, Serialize};

/// Version of the [`QualityReport`] JSON shape. Bump on breaking
/// changes; `benchdiff` refuses to diff mismatched versions.
pub const QUALITY_SCHEMA_VERSION: u32 = 1;

/// Shape of an offline quality run.
#[derive(Debug, Clone, PartialEq)]
pub struct QualityConfig {
    /// World seed.
    pub seed: u64,
    /// Users in the scored worlds.
    pub n_users: usize,
    /// Items in the scored worlds.
    pub n_items: usize,
    /// Successful `(user, item)` samples scored per interface.
    pub sample_pairs: usize,
    /// Citation units removed by the fidelity ablation.
    pub ablate_top: usize,
}

impl Default for QualityConfig {
    fn default() -> Self {
        QualityConfig {
            seed: 0xEC,
            n_users: 120,
            n_items: 90,
            sample_pairs: 40,
            ablate_top: 1,
        }
    }
}

impl QualityConfig {
    /// A reduced configuration for smoke tests and CI (`--quick`).
    pub fn quick() -> Self {
        QualityConfig {
            n_users: 60,
            n_items: 48,
            sample_pairs: 10,
            ..QualityConfig::default()
        }
    }
}

/// Measured quality of one explanation interface, averaged over the
/// sampled pairs. The `name` field keys the report's interface array
/// for `benchdiff`'s name-keyed diffing.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct InterfaceQuality {
    /// Interface key (e.g. `"clustered_histogram"`).
    pub name: String,
    /// Samples successfully scored (0 when the pairing model cannot
    /// feed this interface's evidence needs).
    pub samples: usize,
    /// Mean citation-ablation fidelity in `[0, 1]`.
    pub fidelity: f64,
    /// Mean evidence precision in `[0, 1]`.
    pub evidence_precision: f64,
    /// Mean evidence recall in `[0, 1]`.
    pub evidence_recall: f64,
    /// F1 of the mean precision and recall.
    pub evidence_f1: f64,
    /// Mean evidence coverage in `[0, 1]`.
    pub coverage: f64,
    /// Mean provenance depth, `0..=4`.
    pub provenance_depth: f64,
    /// Mean simulated reading cost (ticks).
    pub reading_cost: f64,
}

impl InterfaceQuality {
    fn empty(id: InterfaceId) -> Self {
        InterfaceQuality {
            name: id.key().to_owned(),
            samples: 0,
            fidelity: 0.0,
            evidence_precision: 0.0,
            evidence_recall: 0.0,
            evidence_f1: 0.0,
            coverage: 0.0,
            provenance_depth: 0.0,
            reading_cost: 0.0,
        }
    }
}

/// Per-aim aggregate: the measured best interface against the static
/// catalog default. Name-keyed for `benchdiff`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AimQuality {
    /// Lowercased aim name (e.g. `"transparency"`).
    pub name: String,
    /// Interface key with the highest measured [`aim_score`].
    pub best_interface: String,
    /// Measured score of `best_interface` for this aim.
    pub score: f64,
    /// The static default: the first catalog interface declaring the
    /// aim, chosen without measurement.
    pub static_default: String,
    /// Measured score of the static default for this aim.
    pub static_score: f64,
    /// Number of scoreable candidate interfaces declaring the aim.
    pub candidates: usize,
}

/// The complete offline quality report: every registered interface ×
/// every aim.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QualityReport {
    /// [`QUALITY_SCHEMA_VERSION`] at write time.
    pub schema_version: u32,
    /// Label of the world family the scores came from.
    pub world: String,
    /// Per-interface measurements, catalog order, all 21 present.
    pub interfaces: Vec<InterfaceQuality>,
    /// Per-aim aggregates, Table 1 order, all 7 present.
    pub aims: Vec<AimQuality>,
}

impl QualityReport {
    /// Serializes to pretty-printed JSON.
    ///
    /// # Panics
    ///
    /// Never: the report contains no non-serializable values.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("report serializes")
    }

    /// Parses a report back from JSON.
    ///
    /// # Errors
    ///
    /// Returns the underlying parse error on malformed input.
    pub fn from_json(text: &str) -> Result<Self, serde_json::Error> {
        serde_json::from_str(text)
    }

    /// The measured entry for an interface key, if present.
    pub fn interface(&self, key: &str) -> Option<&InterfaceQuality> {
        self.interfaces.iter().find(|i| i.name == key)
    }

    /// The aggregate for an aim, if present.
    pub fn aim(&self, aim: Aim) -> Option<&AimQuality> {
        let name = aim.name().to_ascii_lowercase();
        self.aims.iter().find(|a| a.name == name)
    }

    /// Assembles a report from per-interface measurements: computes the
    /// per-aim aggregates and stamps the schema version.
    pub fn assemble(world: &str, interfaces: Vec<InterfaceQuality>) -> Self {
        let aims = Aim::ALL
            .iter()
            .map(|&aim| {
                let aim_name = aim.name().to_ascii_lowercase();
                let static_id = static_default_for_aim(aim);
                let mut best: Option<(&InterfaceQuality, f64)> = None;
                let mut candidates = 0usize;
                for id in InterfaceId::ALL {
                    if !id.descriptor().aims.contains(aim) {
                        continue;
                    }
                    let Some(q) = interfaces.iter().find(|q| q.name == id.key()) else {
                        continue;
                    };
                    if q.samples == 0 {
                        continue;
                    }
                    candidates += 1;
                    let score = aim_score(q, aim);
                    // Strict > keeps the catalog-order tie-break.
                    if best.map(|(_, s)| score > s).unwrap_or(true) {
                        best = Some((q, score));
                    }
                }
                let static_key = static_id.map(|id| id.key().to_owned()).unwrap_or_default();
                let static_score = interfaces
                    .iter()
                    .find(|q| q.name == static_key)
                    .filter(|q| q.samples > 0)
                    .map(|q| aim_score(q, aim))
                    .unwrap_or(0.0);
                AimQuality {
                    name: aim_name,
                    best_interface: best.map(|(q, _)| q.name.clone()).unwrap_or_default(),
                    score: best.map(|(_, s)| s).unwrap_or(0.0),
                    static_default: static_key,
                    static_score,
                    candidates,
                }
            })
            .collect();
        QualityReport {
            schema_version: QUALITY_SCHEMA_VERSION,
            world: world.to_owned(),
            interfaces,
            aims,
        }
    }
}

/// The static (unmeasured) default interface for an aim: the first
/// catalog interface whose declared [`exrec_core::aims::AimProfile`]
/// contains it — the choice a Table 2 lookup would make.
pub fn static_default_for_aim(aim: Aim) -> Option<InterfaceId> {
    InterfaceId::ALL
        .into_iter()
        .find(|id| id.descriptor().aims.contains(aim))
}

/// Combines an interface's measured components into a score for one
/// aim, in `[0, 1]`.
///
/// The weights encode what each survey aim rewards: transparency wants
/// faithful, fully-surfaced evidence; trust wants *correct* citations;
/// efficiency wants cheap reading; persuasiveness wants rich, visible
/// evidence, and so on. An interface with no successful samples scores
/// `0.0` — an unmeasurable interface never wins a measured selection.
pub fn aim_score(q: &InterfaceQuality, aim: Aim) -> f64 {
    if q.samples == 0 {
        return 0.0;
    }
    let f = q.fidelity;
    let p = q.evidence_precision;
    let r = q.evidence_recall;
    let c = q.coverage;
    let d = q.provenance_depth / MAX_PROVENANCE_DEPTH as f64;
    // Cheap-to-read bonus: 1 at zero cost, 0.5 at 12 ticks.
    let e = 1.0 / (1.0 + q.reading_cost / 12.0);
    let score = match aim {
        Aim::Transparency => 0.40 * f + 0.25 * c + 0.20 * d + 0.15 * r,
        Aim::Scrutability => 0.30 * d + 0.25 * c + 0.25 * p + 0.20 * f,
        Aim::Trust => 0.35 * p + 0.30 * f + 0.20 * c + 0.15 * d,
        Aim::Effectiveness => 0.35 * p + 0.30 * r + 0.35 * f,
        Aim::Persuasiveness => 0.35 * c + 0.30 * d + 0.20 * p + 0.15 * e,
        Aim::Efficiency => 0.55 * e + 0.25 * f + 0.20 * p,
        Aim::Satisfaction => 0.30 * c + 0.25 * e + 0.25 * d + 0.20 * f,
    };
    score.clamp(0.0, 1.0)
}

/// Evidence precision/recall against the world's latent ground truth.
///
/// Returns `None` when no relevant set can be constructed for the pair
/// (the sample then contributes to fidelity/coverage but not to P/R).
///
/// * `UserNeighbors` — relevant: the top-half of the item's raters by
///   true latent affinity to the target user.
/// * `ItemNeighbors` — relevant: the user's rated items sharing the
///   target item's prototype.
/// * `Content` — relevant: the item's keyword bag plus its prototype
///   name.
/// * `Utility` — terms are definitionally the stated requirements;
///   precision is the positively-weighted fraction.
/// * `Popularity` — citation truthfulness: the cited mean against the
///   noise-free true mean rating.
/// * `Latent` — anonymous factors are unverifiable citations: 0/0 (the
///   accuracy study's "accurate but explanation-poor" result, measured).
pub fn evidence_relevance(
    world: &World,
    user: UserId,
    item: ItemId,
    evidence: &ModelEvidence,
) -> Option<(f64, f64)> {
    match evidence {
        ModelEvidence::UserNeighbors { neighbors } => {
            if neighbors.is_empty() {
                return None;
            }
            let candidates: Vec<UserId> = world
                .ratings
                .item_ratings(item)
                .iter()
                .map(|&(u, _)| u)
                .filter(|&u| u != user)
                .collect();
            if candidates.len() < 2 {
                return None;
            }
            let mut by_affinity: Vec<(UserId, f64)> = candidates
                .iter()
                .map(|&v| (v, world.latent.user_affinity(user, v)))
                .collect();
            by_affinity.sort_by(|a, b| {
                b.1.partial_cmp(&a.1)
                    .unwrap_or(std::cmp::Ordering::Equal)
                    .then(a.0 .0.cmp(&b.0 .0))
            });
            let relevant: HashSet<UserId> = by_affinity
                .iter()
                .take((by_affinity.len() / 2).max(1))
                .map(|&(v, _)| v)
                .collect();
            let cited: Vec<UserId> = neighbors.iter().map(|n| n.user).collect();
            let hits = cited.iter().filter(|u| relevant.contains(u)).count();
            Some((
                hits as f64 / cited.len() as f64,
                hits as f64 / relevant.len() as f64,
            ))
        }
        ModelEvidence::ItemNeighbors { anchors } => {
            if anchors.is_empty() {
                return None;
            }
            let proto = world.prototypes[item.index()];
            let relevant: HashSet<ItemId> = world
                .ratings
                .user_ratings(user)
                .iter()
                .map(|&(i, _)| i)
                .filter(|i| world.prototypes[i.index()] == proto)
                .collect();
            if relevant.is_empty() {
                return None;
            }
            let cited: Vec<ItemId> = anchors.iter().map(|a| a.item).collect();
            let hits = cited.iter().filter(|i| relevant.contains(i)).count();
            Some((
                hits as f64 / cited.len() as f64,
                hits as f64 / relevant.len() as f64,
            ))
        }
        ModelEvidence::Content { features, .. } => {
            if features.is_empty() {
                return None;
            }
            let entry = world.catalog.get(item).ok()?;
            let mut relevant: HashSet<String> = entry
                .keywords
                .iter()
                .map(|k| k.to_ascii_lowercase())
                .collect();
            relevant.insert(world.prototype_of(item).to_ascii_lowercase());
            if relevant.is_empty() {
                return None;
            }
            let cited: Vec<String> = features
                .iter()
                .map(|f| f.feature.to_ascii_lowercase())
                .collect();
            let hits = cited.iter().filter(|f| relevant.contains(*f)).count();
            Some((
                hits as f64 / cited.len() as f64,
                hits as f64 / relevant.len() as f64,
            ))
        }
        ModelEvidence::Utility { terms, .. } => {
            if terms.is_empty() {
                return None;
            }
            let useful = terms.iter().filter(|t| t.weight > 0.0).count();
            Some((useful as f64 / terms.len() as f64, 1.0))
        }
        ModelEvidence::Popularity { mean, count } => {
            if *count == 0 {
                return None;
            }
            let scale = world.ratings.scale();
            let users: Vec<UserId> = world.ratings.users().take(64).collect();
            if users.is_empty() {
                return None;
            }
            let true_mean = users
                .iter()
                .map(|&u| world.latent.true_rating(u, item, scale))
                .sum::<f64>()
                / users.len() as f64;
            let truthfulness = (1.0 - (mean - true_mean).abs() / scale.span()).clamp(0.0, 1.0);
            Some((truthfulness, truthfulness))
        }
        ModelEvidence::Latent { .. } => Some((0.0, 0.0)),
        _ => None,
    }
}

/// Scores one interface against one (world, model) pairing.
///
/// Samples deterministic `(user, item)` pairs — users in id order,
/// their first unrated items with at least one rater — until
/// `config.sample_pairs` explanations are generated or the candidates
/// run out. Pairs the interface cannot explain (evidence mismatch) are
/// skipped; an interface the model can never feed scores zero samples.
pub fn score_interface(
    world: &World,
    model: &(dyn Recommender + Sync),
    id: InterfaceId,
    config: &QualityConfig,
) -> InterfaceQuality {
    let ctx = Ctx::new(&world.ratings, &world.catalog);
    let explainer = Explainer::new(model, id);
    let span = world.ratings.scale().span();

    let mut q = InterfaceQuality::empty(id);
    let mut pr_samples = 0usize;
    let mut attempts = 0usize;
    let max_attempts = config.sample_pairs * 10;

    'outer: for user in world.ratings.users() {
        if world.ratings.user_ratings(user).len() < 2 {
            continue;
        }
        let mut taken = 0usize;
        for item in world.catalog.ids() {
            if q.samples >= config.sample_pairs || attempts >= max_attempts {
                break 'outer;
            }
            if taken >= 2 {
                break;
            }
            if world.ratings.rating(user, item).is_some()
                || world.ratings.item_ratings(item).is_empty()
            {
                continue;
            }
            taken += 1;
            attempts += 1;
            let Ok((_, explanation, evidence)) = explainer.explain_with_evidence(&ctx, user, item)
            else {
                continue;
            };
            let baseline = world
                .ratings
                .user_mean(user)
                .unwrap_or_else(|| world.ratings.global_mean());
            let probe = QualityProbe::measure(&explanation, &evidence, baseline, span);
            q.samples += 1;
            q.fidelity += exrec_core::quality::ablation_fidelity(
                &evidence,
                config.ablate_top,
                baseline,
                span,
            );
            q.coverage += probe.coverage;
            q.provenance_depth += probe.provenance_depth as f64;
            q.reading_cost += explanation.reading_cost() as f64;
            if let Some((precision, recall)) = evidence_relevance(world, user, item, &evidence) {
                pr_samples += 1;
                q.evidence_precision += precision;
                q.evidence_recall += recall;
            }
        }
    }

    if q.samples > 0 {
        let n = q.samples as f64;
        q.fidelity /= n;
        q.coverage /= n;
        q.provenance_depth /= n;
        q.reading_cost /= n;
    }
    if pr_samples > 0 {
        q.evidence_precision /= pr_samples as f64;
        q.evidence_recall /= pr_samples as f64;
        let (p, r) = (q.evidence_precision, q.evidence_recall);
        if p + r > 1e-12 {
            q.evidence_f1 = 2.0 * p * r / (p + r);
        }
    }
    q
}

/// Scores every registered interface against a single (world, model)
/// pairing — the serving edge's view, where one model feeds all
/// interfaces. Interfaces the model cannot feed report zero samples.
pub fn score_interfaces(
    world: &World,
    model: &(dyn Recommender + Sync),
    config: &QualityConfig,
) -> Vec<InterfaceQuality> {
    InterfaceId::ALL
        .into_iter()
        .map(|id| score_interface(world, model, id, config))
        .collect()
}

/// Runs the full offline suite: every registered interface scored with
/// a model matched to its evidence needs, on the world family that
/// exercises it (movies for CF/content, cameras for knowledge-based
/// utility), then aggregated per aim.
///
/// Interfaces fan out over `threads` workers
/// ([`exrec_algo::batch::parallel_map`]); each interface's score is a
/// pure function of the config, so the report is identical at any
/// thread count.
pub fn run(config: &QualityConfig, threads: usize) -> QualityReport {
    let world = movies::generate(&WorldConfig {
        n_users: config.n_users,
        n_items: config.n_items,
        density: 0.25,
        seed: config.seed,
        ..WorldConfig::default()
    });
    let camera_world = cameras::generate(&WorldConfig {
        n_users: (config.n_users / 2).max(16),
        n_items: (config.n_items / 2).max(16),
        density: 0.25,
        seed: config.seed,
        ..WorldConfig::default()
    });
    let ctx = Ctx::new(&world.ratings, &world.catalog);

    let user_knn = UserKnn::default();
    let item_knn = ItemKnn::fit(&ctx, ItemKnnConfig::default()).expect("item-knn fits");
    let tfidf = TfIdfModel::fit(&ctx, TfIdfConfig::default()).expect("tfidf fits");
    let maut = Maut::new(vec![
        Requirement::soft("price", Constraint::AtMost(600.0)).with_weight(2.0),
        Requirement::soft("resolution", Constraint::AtLeast(8.0)),
        Requirement::soft("zoom", Constraint::AtLeast(4.0)),
    ])
    .expect("positive weights");

    let ids: Vec<InterfaceId> = InterfaceId::ALL.to_vec();
    let interfaces = exrec_algo::batch::parallel_map(threads, &ids, |_, &id| {
        // Pair each interface with the model family that feeds its
        // declared evidence need; `Any` interfaces score against the
        // serving default (user-kNN).
        match id.descriptor().needs {
            EvidenceNeed::UserNeighbors | EvidenceNeed::Any => {
                score_interface(&world, &user_knn, id, config)
            }
            EvidenceNeed::ItemNeighbors => score_interface(&world, &item_knn, id, config),
            EvidenceNeed::Content => score_interface(&world, &tfidf, id, config),
            EvidenceNeed::Utility => score_interface(&camera_world, &maut, id, config),
        }
    });

    QualityReport::assemble("movies+cameras", interfaces)
}

#[cfg(test)]
mod tests {
    use super::*;
    use exrec_algo::recommender::NeighborContribution;

    fn quick_report() -> QualityReport {
        run(&QualityConfig::quick(), 1)
    }

    #[test]
    fn report_covers_all_interfaces_and_aims() {
        let report = quick_report();
        assert_eq!(report.schema_version, QUALITY_SCHEMA_VERSION);
        assert_eq!(report.interfaces.len(), InterfaceId::ALL.len());
        assert_eq!(report.aims.len(), Aim::ALL.len());
        for id in InterfaceId::ALL {
            assert!(
                report.interface(id.key()).is_some(),
                "missing interface {}",
                id.key()
            );
        }
        // Every evidence-need family produced at least one measurable
        // interface.
        let measured = report.interfaces.iter().filter(|q| q.samples > 0).count();
        assert!(measured >= 10, "only {measured} interfaces measured");
        for q in &report.interfaces {
            for v in [
                q.fidelity,
                q.evidence_precision,
                q.evidence_recall,
                q.evidence_f1,
                q.coverage,
            ] {
                assert!((0.0..=1.0).contains(&v), "{}: {v} out of range", q.name);
            }
            assert!(q.provenance_depth <= MAX_PROVENANCE_DEPTH as f64);
        }
    }

    #[test]
    fn aim_fit_selection_beats_the_static_default_somewhere() {
        let report = quick_report();
        let improved = report
            .aims
            .iter()
            .filter(|a| a.best_interface != a.static_default && a.score > a.static_score)
            .count();
        assert!(
            improved >= 1,
            "measured selection should beat the static default for at least one aim: {:?}",
            report.aims
        );
        // And selection never does worse than the static pick.
        for a in &report.aims {
            assert!(a.score >= a.static_score, "{}: regressed", a.name);
            assert!(!a.best_interface.is_empty(), "{}: no winner", a.name);
        }
    }

    #[test]
    fn report_round_trips_through_json() {
        let report = quick_report();
        let json = report.to_json();
        let back = QualityReport::from_json(&json).expect("parses");
        assert_eq!(back, report);
        // benchdiff keys arrays by `name`: every entry must carry one.
        let value: serde_json::Value = serde_json::from_str(&json).unwrap();
        for section in ["/interfaces", "/aims"] {
            let arr = value.pointer(section).unwrap();
            let n = match section {
                "/interfaces" => InterfaceId::ALL.len(),
                _ => Aim::ALL.len(),
            };
            for i in 0..n {
                let name = value
                    .pointer(&format!("{section}/{i}/name"))
                    .and_then(|v| v.as_str());
                assert!(name.is_some(), "{section}[{i}] has no name key in {arr:?}");
            }
        }
    }

    #[test]
    fn deterministic_across_thread_counts() {
        let config = QualityConfig::quick();
        let one = run(&config, 1).to_json();
        let four = run(&config, 4).to_json();
        let eight = run(&config, 8).to_json();
        assert_eq!(one, four, "4 threads must match sequential");
        assert_eq!(one, eight, "8 threads must match sequential");
    }

    #[test]
    fn true_evidence_scores_strictly_higher_fidelity_than_decoy() {
        // The satellite property: an explanation citing the evidence
        // that drives the prediction must out-score one citing a
        // decoy set whose citations are decorative. The decoy keeps
        // the same neighbors but flattens every rating to the implied
        // mean — the citations no longer move the score.
        let world = movies::generate(&WorldConfig {
            n_users: 60,
            n_items: 48,
            density: 0.25,
            seed: 0xEC,
            ..WorldConfig::default()
        });
        let ctx = Ctx::new(&world.ratings, &world.catalog);
        let knn = UserKnn::default();
        let explainer = Explainer::new(&knn, InterfaceId::Histogram);
        let span = world.ratings.scale().span();

        let mut checked = 0usize;
        for user in world.ratings.users() {
            for item in world.catalog.ids().take(8) {
                if world.ratings.rating(user, item).is_some() {
                    continue;
                }
                let Ok((_, _, evidence)) = explainer.explain_with_evidence(&ctx, user, item) else {
                    continue;
                };
                let ModelEvidence::UserNeighbors { neighbors } = &evidence else {
                    continue;
                };
                if neighbors.len() < 2 {
                    continue;
                }
                let baseline = world
                    .ratings
                    .user_mean(user)
                    .unwrap_or_else(|| world.ratings.global_mean());
                let true_fidelity =
                    exrec_core::quality::ablation_fidelity(&evidence, 1, baseline, span);
                if true_fidelity <= 1e-9 {
                    continue; // Degenerate pair: nothing to out-score.
                }
                let implied = exrec_core::quality::evidence_score(&evidence, 0).unwrap();
                let decoy = ModelEvidence::UserNeighbors {
                    neighbors: neighbors
                        .iter()
                        .map(|n| NeighborContribution {
                            user: n.user,
                            similarity: n.similarity,
                            rating: implied,
                        })
                        .collect(),
                };
                let decoy_fidelity =
                    exrec_core::quality::ablation_fidelity(&decoy, 1, baseline, span);
                assert!(
                    true_fidelity > decoy_fidelity,
                    "true {true_fidelity} vs decoy {decoy_fidelity} (user {user:?}, item {item:?})"
                );
                checked += 1;
            }
            if checked >= 50 {
                break;
            }
        }
        assert!(checked >= 20, "only {checked} informative pairs found");
    }

    #[test]
    fn static_defaults_exist_for_every_aim() {
        for aim in Aim::ALL {
            let id = static_default_for_aim(aim);
            assert!(id.is_some(), "{aim}: no catalog interface declares it");
            assert!(id.unwrap().descriptor().aims.contains(aim));
        }
    }
}

//! Questionnaire instruments (survey Section 3.3).
//!
//! "Questionnaires can be used to determine the degree of trust a user
//! places in a system. An overview … suggests and validates a five
//! dimensional scale of trust" (after Ohanian). The instrument here
//! administers a five-dimension, 7-point Likert battery to a simulated
//! respondent whose latent trust drives the answers, with per-dimension
//! loadings and response noise — the standard reflective-measurement
//! model.

use rand::RngExt;
use rand_chacha::ChaCha8Rng;

/// A 7-point Likert response (1 = strongly disagree, 7 = strongly agree).
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd)]
pub struct Likert(pub f64);

impl Likert {
    /// Clamps a raw value to the 1–7 range.
    pub fn new(v: f64) -> Self {
        Self(v.clamp(1.0, 7.0))
    }

    /// The response value.
    pub fn value(self) -> f64 {
        self.0
    }
}

/// The five trust dimensions administered.
pub const TRUST_DIMENSIONS: [&str; 5] = [
    "perceived competence",
    "benevolence",
    "integrity",
    "predictability",
    "reliance intention",
];

/// Per-dimension factor loadings on latent trust (reliance intention
/// loads highest: it is the behavioural proxy).
const LOADINGS: [f64; 5] = [0.85, 0.70, 0.75, 0.80, 0.90];

/// Scores from one administration of the trust battery.
#[derive(Debug, Clone, PartialEq)]
pub struct TrustScores {
    /// Per-dimension Likert scores, in [`TRUST_DIMENSIONS`] order.
    pub dims: [Likert; 5],
}

impl TrustScores {
    /// The battery mean (the usual composite score).
    pub fn composite(&self) -> f64 {
        self.dims.iter().map(|l| l.value()).sum::<f64>() / 5.0
    }
}

fn gaussian(rng: &mut ChaCha8Rng, sd: f64) -> f64 {
    let s: f64 = (0..12).map(|_| rng.random_range(0.0..1.0)).sum::<f64>() - 6.0;
    s * sd
}

/// Administers the battery to a respondent with `latent_trust ∈ [0, 1]`
/// and response-noise standard deviation `noise_sd` (Likert units).
pub fn administer_trust(latent_trust: f64, noise_sd: f64, rng: &mut ChaCha8Rng) -> TrustScores {
    let latent = latent_trust.clamp(0.0, 1.0);
    let dims = core::array::from_fn(|k| {
        // Map latent 0..1 onto 1..7 through the loading; unexplained
        // variance shows up as regression to the midpoint plus noise.
        let explained = LOADINGS[k] * (1.0 + latent * 6.0);
        let unexplained = (1.0 - LOADINGS[k]) * 4.0;
        Likert::new(explained + unexplained + gaussian(rng, noise_sd))
    });
    TrustScores { dims }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn likert_clamps() {
        assert_eq!(Likert::new(9.0).value(), 7.0);
        assert_eq!(Likert::new(-3.0).value(), 1.0);
        assert_eq!(Likert::new(4.5).value(), 4.5);
    }

    #[test]
    fn composite_tracks_latent_trust() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let n = 200;
        let low: f64 = (0..n)
            .map(|_| administer_trust(0.1, 0.5, &mut rng).composite())
            .sum::<f64>()
            / n as f64;
        let high: f64 = (0..n)
            .map(|_| administer_trust(0.9, 0.5, &mut rng).composite())
            .sum::<f64>()
            / n as f64;
        assert!(
            high - low > 2.0,
            "latent trust must drive the composite: low={low:.2}, high={high:.2}"
        );
    }

    #[test]
    fn scores_stay_on_scale() {
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        for trust in [0.0, 0.5, 1.0, 2.0, -1.0] {
            let s = administer_trust(trust, 1.5, &mut rng);
            for d in &s.dims {
                assert!((1.0..=7.0).contains(&d.value()));
            }
        }
    }

    #[test]
    fn reliance_loads_highest_on_average() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let n = 400;
        let mut sums = [0.0f64; 5];
        for _ in 0..n {
            let s = administer_trust(1.0, 0.3, &mut rng);
            for (acc, d) in sums.iter_mut().zip(&s.dims) {
                *acc += d.value();
            }
        }
        // At max latent trust, higher loading ⇒ higher mean score.
        assert!(
            sums[4] > sums[1],
            "reliance intention should exceed benevolence"
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let mut a = ChaCha8Rng::seed_from_u64(7);
        let mut b = ChaCha8Rng::seed_from_u64(7);
        assert_eq!(
            administer_trust(0.6, 0.4, &mut a),
            administer_trust(0.6, 0.4, &mut b)
        );
    }
}

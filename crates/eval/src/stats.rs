//! Statistics for study reporting.
//!
//! Self-contained implementations (no stats crate in the approved set):
//! descriptive summaries, Welch's t-test with an accurate Student-t CDF
//! via the regularized incomplete beta function, Mann–Whitney U with
//! normal approximation, Pearson and Spearman correlation, and Cohen's d.

/// Descriptive summary of a sample.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summary {
    /// Sample size.
    pub n: usize,
    /// Sample mean.
    pub mean: f64,
    /// Sample standard deviation (n−1 denominator).
    pub sd: f64,
    /// Half-width of the 95% confidence interval (normal approximation).
    pub ci95: f64,
}

/// Summarizes a sample. Empty samples yield a zeroed summary.
pub fn summarize(xs: &[f64]) -> Summary {
    let n = xs.len();
    if n == 0 {
        return Summary {
            n: 0,
            mean: 0.0,
            sd: 0.0,
            ci95: 0.0,
        };
    }
    let mean = xs.iter().sum::<f64>() / n as f64;
    let var = if n > 1 {
        xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / (n - 1) as f64
    } else {
        0.0
    };
    let sd = var.sqrt();
    Summary {
        n,
        mean,
        sd,
        ci95: 1.96 * sd / (n as f64).sqrt(),
    }
}

/// Natural log of the gamma function (Lanczos approximation).
fn ln_gamma(x: f64) -> f64 {
    const G: [f64; 7] = [
        1.000000000190015,
        76.18009172947146,
        -86.50532032941677,
        24.01409824083091,
        -1.231739572450155,
        1.208650973866179e-3,
        -5.395239384953e-6,
    ];
    let x = x - 1.0;
    let mut a = G[0];
    let t = x + 5.5;
    for (i, &g) in G.iter().enumerate().skip(1) {
        a += g / (x + i as f64);
    }
    (2.0 * std::f64::consts::PI).sqrt().ln() + a.ln() - t + (x + 0.5) * t.ln()
}

/// Regularized incomplete beta function I_x(a, b), by continued fraction
/// (Numerical Recipes `betacf` scheme).
fn beta_inc(a: f64, b: f64, x: f64) -> f64 {
    if x <= 0.0 {
        return 0.0;
    }
    if x >= 1.0 {
        return 1.0;
    }
    let ln_front = ln_gamma(a + b) - ln_gamma(a) - ln_gamma(b) + a * x.ln() + b * (1.0 - x).ln();
    let front = ln_front.exp();
    let symmetric = x >= (a + 1.0) / (a + b + 2.0);
    let (a, b, x) = if symmetric {
        (b, a, 1.0 - x)
    } else {
        (a, b, x)
    };

    // Lentz's continued fraction.
    let mut c = 1.0f64;
    let mut d = 1.0 - (a + b) * x / (a + 1.0);
    if d.abs() < 1e-300 {
        d = 1e-300;
    }
    d = 1.0 / d;
    let mut h = d;
    for m in 1..200 {
        let m = m as f64;
        let num = m * (b - m) * x / ((a + 2.0 * m - 1.0) * (a + 2.0 * m));
        d = 1.0 + num * d;
        if d.abs() < 1e-300 {
            d = 1e-300;
        }
        c = 1.0 + num / c;
        if c.abs() < 1e-300 {
            c = 1e-300;
        }
        d = 1.0 / d;
        h *= d * c;
        let num = -(a + m) * (a + b + m) * x / ((a + 2.0 * m) * (a + 2.0 * m + 1.0));
        d = 1.0 + num * d;
        if d.abs() < 1e-300 {
            d = 1e-300;
        }
        c = 1.0 + num / c;
        if c.abs() < 1e-300 {
            c = 1e-300;
        }
        d = 1.0 / d;
        let delta = d * c;
        h *= delta;
        if (delta - 1.0).abs() < 1e-12 {
            break;
        }
    }
    let result = front * h / a;
    if symmetric {
        1.0 - result
    } else {
        result
    }
}

/// Two-sided p-value of Student's t with `df` degrees of freedom.
pub fn t_two_sided_p(t: f64, df: f64) -> f64 {
    if df <= 0.0 || !t.is_finite() {
        return 1.0;
    }
    let x = df / (df + t * t);
    beta_inc(df / 2.0, 0.5, x).clamp(0.0, 1.0)
}

/// Result of a two-sample test.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TestResult {
    /// Test statistic (t or z).
    pub statistic: f64,
    /// Two-sided p-value.
    pub p: f64,
}

/// Welch's unequal-variance t-test. Returns `None` when either sample has
/// fewer than 2 points or both variances are 0.
pub fn welch_t(a: &[f64], b: &[f64]) -> Option<TestResult> {
    if a.len() < 2 || b.len() < 2 {
        return None;
    }
    let sa = summarize(a);
    let sb = summarize(b);
    let va = sa.sd * sa.sd / sa.n as f64;
    let vb = sb.sd * sb.sd / sb.n as f64;
    if va + vb <= 0.0 {
        return None;
    }
    let t = (sa.mean - sb.mean) / (va + vb).sqrt();
    let df =
        (va + vb) * (va + vb) / (va * va / (sa.n as f64 - 1.0) + vb * vb / (sb.n as f64 - 1.0));
    Some(TestResult {
        statistic: t,
        p: t_two_sided_p(t, df),
    })
}

/// Mann–Whitney U test with normal approximation (ties mid-ranked).
/// Returns `None` for empty samples.
pub fn mann_whitney_u(a: &[f64], b: &[f64]) -> Option<TestResult> {
    if a.is_empty() || b.is_empty() {
        return None;
    }
    let mut all: Vec<(f64, usize)> = a
        .iter()
        .map(|&x| (x, 0usize))
        .chain(b.iter().map(|&x| (x, 1usize)))
        .collect();
    all.sort_by(|x, y| x.0.partial_cmp(&y.0).unwrap_or(std::cmp::Ordering::Equal));
    // Mid-ranks with tie handling.
    let n = all.len();
    let mut ranks = vec![0.0f64; n];
    let mut i = 0;
    while i < n {
        let mut j = i;
        while j + 1 < n && all[j + 1].0 == all[i].0 {
            j += 1;
        }
        let rank = (i + j) as f64 / 2.0 + 1.0;
        for r in ranks.iter_mut().take(j + 1).skip(i) {
            *r = rank;
        }
        i = j + 1;
    }
    let ra: f64 = all
        .iter()
        .zip(&ranks)
        .filter(|((_, grp), _)| *grp == 0)
        .map(|(_, &r)| r)
        .sum();
    let na = a.len() as f64;
    let nb = b.len() as f64;
    let u = ra - na * (na + 1.0) / 2.0;
    let mu = na * nb / 2.0;
    let sigma = (na * nb * (na + nb + 1.0) / 12.0).sqrt();
    if sigma <= 0.0 {
        return None;
    }
    let z = (u - mu) / sigma;
    // Normal two-sided p via erfc-style approximation.
    let p = 2.0 * normal_sf(z.abs());
    Some(TestResult {
        statistic: z,
        p: p.clamp(0.0, 1.0),
    })
}

/// Standard normal survival function (Abramowitz–Stegun 7.1.26 erf).
pub fn normal_sf(z: f64) -> f64 {
    let x = z / std::f64::consts::SQRT_2;
    let t = 1.0 / (1.0 + 0.3275911 * x.abs());
    let poly = t
        * (0.254829592
            + t * (-0.284496736 + t * (1.421413741 + t * (-1.453152027 + t * 1.061405429))));
    let erf = 1.0 - poly * (-x * x).exp();
    let erf = if x >= 0.0 { erf } else { -erf };
    0.5 * (1.0 - erf)
}

/// Pearson correlation; `None` for length mismatch, n < 2, or zero
/// variance.
pub fn pearson(xs: &[f64], ys: &[f64]) -> Option<f64> {
    if xs.len() != ys.len() || xs.len() < 2 {
        return None;
    }
    let n = xs.len() as f64;
    let mx = xs.iter().sum::<f64>() / n;
    let my = ys.iter().sum::<f64>() / n;
    let (mut num, mut dx, mut dy) = (0.0, 0.0, 0.0);
    for (&x, &y) in xs.iter().zip(ys) {
        num += (x - mx) * (y - my);
        dx += (x - mx) * (x - mx);
        dy += (y - my) * (y - my);
    }
    if dx <= 0.0 || dy <= 0.0 {
        None
    } else {
        Some((num / (dx.sqrt() * dy.sqrt())).clamp(-1.0, 1.0))
    }
}

fn rank_transform(xs: &[f64]) -> Vec<f64> {
    let mut idx: Vec<usize> = (0..xs.len()).collect();
    idx.sort_by(|&a, &b| {
        xs[a]
            .partial_cmp(&xs[b])
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    let mut ranks = vec![0.0; xs.len()];
    let mut i = 0;
    while i < idx.len() {
        let mut j = i;
        while j + 1 < idx.len() && xs[idx[j + 1]] == xs[idx[i]] {
            j += 1;
        }
        let rank = (i + j) as f64 / 2.0 + 1.0;
        for &k in idx.iter().take(j + 1).skip(i) {
            ranks[k] = rank;
        }
        i = j + 1;
    }
    ranks
}

/// Spearman rank correlation; same failure conditions as [`pearson`].
pub fn spearman(xs: &[f64], ys: &[f64]) -> Option<f64> {
    if xs.len() != ys.len() || xs.len() < 2 {
        return None;
    }
    pearson(&rank_transform(xs), &rank_transform(ys))
}

/// Cohen's d effect size; `None` when pooled SD is 0 or samples too
/// small.
pub fn cohens_d(a: &[f64], b: &[f64]) -> Option<f64> {
    if a.len() < 2 || b.len() < 2 {
        return None;
    }
    let sa = summarize(a);
    let sb = summarize(b);
    let pooled = (((sa.n - 1) as f64 * sa.sd * sa.sd + (sb.n - 1) as f64 * sb.sd * sb.sd)
        / (sa.n + sb.n - 2) as f64)
        .sqrt();
    if pooled <= 0.0 {
        None
    } else {
        Some((sa.mean - sb.mean) / pooled)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_basics() {
        let s = summarize(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
        assert_eq!(s.n, 8);
        assert!((s.mean - 5.0).abs() < 1e-12);
        assert!((s.sd - 2.13809).abs() < 1e-4);
        assert_eq!(summarize(&[]).n, 0);
        assert_eq!(summarize(&[3.0]).sd, 0.0);
    }

    #[test]
    fn t_cdf_reference_values() {
        // Known: two-sided p for t=2.0, df=10 is ~0.0734.
        assert!((t_two_sided_p(2.0, 10.0) - 0.0734).abs() < 2e-3);
        // t=0 → p=1.
        assert!((t_two_sided_p(0.0, 5.0) - 1.0).abs() < 1e-9);
        // Large |t| → tiny p.
        assert!(t_two_sided_p(10.0, 30.0) < 1e-6);
    }

    #[test]
    fn welch_detects_difference() {
        let a: Vec<f64> = (0..30).map(|k| 5.0 + (k % 3) as f64 * 0.1).collect();
        let b: Vec<f64> = (0..30).map(|k| 3.0 + (k % 3) as f64 * 0.1).collect();
        let r = welch_t(&a, &b).unwrap();
        assert!(
            r.p < 1e-6,
            "clear difference must be significant, p={}",
            r.p
        );
        assert!(r.statistic > 0.0);
    }

    #[test]
    fn welch_accepts_null() {
        let a: Vec<f64> = (0..30).map(|k| 5.0 + ((k * 7) % 10) as f64 * 0.2).collect();
        let b: Vec<f64> = (0..30).map(|k| 5.0 + ((k * 3) % 10) as f64 * 0.2).collect();
        let r = welch_t(&a, &b).unwrap();
        assert!(r.p > 0.05, "similar samples should not differ, p={}", r.p);
    }

    #[test]
    fn welch_degenerate() {
        assert!(welch_t(&[1.0], &[2.0, 3.0]).is_none());
        assert!(welch_t(&[1.0, 1.0], &[1.0, 1.0]).is_none());
    }

    #[test]
    fn mann_whitney_direction() {
        let a = [8.0, 9.0, 10.0, 11.0, 12.0, 13.0];
        let b = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0];
        let r = mann_whitney_u(&a, &b).unwrap();
        assert!(r.p < 0.01);
        assert!(mann_whitney_u(&[], &b).is_none());
    }

    #[test]
    fn pearson_and_spearman() {
        let xs = [1.0, 2.0, 3.0, 4.0, 5.0];
        let ys = [2.0, 4.0, 6.0, 8.0, 10.0];
        assert!((pearson(&xs, &ys).unwrap() - 1.0).abs() < 1e-12);
        assert!((spearman(&xs, &ys).unwrap() - 1.0).abs() < 1e-12);
        // Monotone but non-linear: spearman 1, pearson < 1.
        let zs = [1.0, 8.0, 27.0, 64.0, 125.0];
        assert!((spearman(&xs, &zs).unwrap() - 1.0).abs() < 1e-12);
        assert!(pearson(&xs, &zs).unwrap() < 1.0);
        assert!(pearson(&xs, &[1.0, 1.0, 1.0, 1.0, 1.0]).is_none());
    }

    #[test]
    fn cohens_d_signs() {
        let a = [5.0, 6.0, 7.0];
        let b = [1.0, 2.0, 3.0];
        assert!(cohens_d(&a, &b).unwrap() > 1.0);
        assert!(cohens_d(&b, &a).unwrap() < -1.0);
        assert!(cohens_d(&[1.0, 1.0], &[1.0, 1.0]).is_none());
    }

    #[test]
    fn normal_sf_reference() {
        assert!((normal_sf(0.0) - 0.5).abs() < 1e-6);
        assert!((normal_sf(1.96) - 0.025).abs() < 1e-3);
        assert!((normal_sf(-1.96) - 0.975).abs() < 1e-3);
    }
}

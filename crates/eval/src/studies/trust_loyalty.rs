//! E-TRUST — trust and loyalty (survey Section 3.3, after Chen & Pu and
//! McNee et al.).
//!
//! Trust is measured two ways, as the survey prescribes: directly via a
//! five-dimension questionnaire, and indirectly via *loyalty* — "the
//! number of logins and interactions with the system" — plus consumption
//! ("sales"). Three interface conditions are compared over repeated
//! simulated visits:
//!
//! * **none** — bare recommendations;
//! * **explain** — recommendations with explanations ("a user may be more
//!   forgiving … if they understand why a bad recommendation has been
//!   made");
//! * **explain + scrutinize** — explanations plus the ability to correct
//!   the system (Section 2.2's full cycle).
//!
//! Expected ordering on every measure: none < explain < explain+scrutiny.

use super::{movie_world, participants};
use crate::questionnaire::administer_trust;
use crate::report::{StudyReport, Table};
use crate::stats::{summarize, Summary};
use exrec_algo::baseline::Popularity;
use exrec_algo::{Ctx, Recommender};
use exrec_interact::profile::ScrutableProfile;
use exrec_interact::store::SessionStore;
use rand::RngExt;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Interface condition.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Condition {
    /// Bare recommendations.
    None,
    /// Recommendations with explanations.
    Explain,
    /// Explanations plus scrutiny tools.
    ExplainScrutinize,
}

impl Condition {
    /// All conditions in increasing-support order.
    pub const ALL: [Condition; 3] = [
        Condition::None,
        Condition::Explain,
        Condition::ExplainScrutinize,
    ];

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            Condition::None => "no explanation",
            Condition::Explain => "explanation",
            Condition::ExplainScrutinize => "explanation + scrutiny",
        }
    }
}

/// Study configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct Config {
    /// Master seed.
    pub seed: u64,
    /// Participants per condition.
    pub n_participants: usize,
    /// Visit opportunities per participant.
    pub n_rounds: usize,
}

impl Default for Config {
    fn default() -> Self {
        Self {
            seed: 0xE5,
            n_participants: 40,
            n_rounds: 18,
        }
    }
}

/// Aggregates for one condition.
#[derive(Debug, Clone)]
pub struct ConditionResult {
    /// The condition.
    pub condition: Condition,
    /// Logins per participant.
    pub logins: Summary,
    /// Interactions per participant.
    pub interactions: Summary,
    /// Items consumed per participant ("sales").
    pub consumed: Summary,
    /// Final questionnaire composite (1–7).
    pub trust_composite: Summary,
}

/// Study result.
#[derive(Debug, Clone)]
pub struct Outcome {
    /// Results per condition.
    pub conditions: Vec<ConditionResult>,
    /// The printable report.
    pub report: StudyReport,
}

impl Outcome {
    /// Lookup by condition.
    pub fn result(&self, c: Condition) -> &ConditionResult {
        self.conditions
            .iter()
            .find(|r| r.condition == c)
            .expect("all conditions present")
    }
}

/// Runs the study.
pub fn run(config: &Config) -> Outcome {
    let world = movie_world(config.seed, config.n_participants * 2, 50);
    let mut rng = ChaCha8Rng::seed_from_u64(config.seed);
    let users = participants(&world, config.n_participants, 2, &mut rng);
    let model = Popularity::default();

    let mut results = Vec::new();
    for condition in Condition::ALL {
        let store = SessionStore::new(world.ratings.clone(), world.catalog.clone());
        let mut logins = Vec::new();
        let mut interactions = Vec::new();
        let mut consumed = Vec::new();
        let mut composites = Vec::new();

        for user in &users {
            let mut trust: f64 = 0.5;
            let mut profile = ScrutableProfile::new();
            for _round in 0..config.n_rounds {
                // Return decision: loyalty is earned, not assumed.
                let p_return = 0.12 + 0.8 * trust;
                if rng.random_range(0.0..1.0) > p_return {
                    continue;
                }
                let stored = store.login(user.id);
                if profile.rules().is_empty() && profile.facts().is_empty() {
                    // First visit this run: adopt whatever persisted.
                    profile = stored;
                }
                let ratings = store.ratings_snapshot();
                let ctx = Ctx::new(&ratings, &world.catalog);
                let ranked = model.recommend(&ctx, user.id, 10);
                let ranked = profile.apply(&world.catalog, ranked);
                let Some(pick) = ranked.first() else {
                    continue;
                };
                let mut round_interactions = 2u32; // view + select
                if condition != Condition::None {
                    round_interactions += 1; // read the explanation
                }
                // Consume and judge.
                let liking = world.latent.utility(user.id, pick.item);
                store.record_consumption(user.id);
                let good = liking > 0.5;
                if good {
                    trust += 0.06;
                } else {
                    // Explanations buy forgiveness for bad picks.
                    trust -= if condition == Condition::None {
                        0.16
                    } else {
                        0.07
                    };
                    if condition == Condition::ExplainScrutinize {
                        // Close the loop: block the offending genre.
                        if let Ok(item) = world.catalog.get(pick.item) {
                            if let Some(genre) = item.attrs.cat("genre") {
                                profile.block("genre", genre);
                                round_interactions += 1;
                                trust += 0.04; // control breeds confidence
                            }
                        }
                    }
                }
                trust = trust.clamp(0.0, 1.0);
                let _ = store.rate(
                    user.id,
                    pick.item,
                    world.ratings.scale().clamp(1.0 + liking * 4.0),
                );
                store.record_interactions(user.id, round_interactions);
                store.save_profile(user.id, profile.clone());
            }
            let loyalty = store.loyalty(user.id);
            logins.push(loyalty.logins as f64);
            interactions.push(loyalty.interactions as f64);
            consumed.push(loyalty.consumed as f64);
            composites.push(administer_trust(trust, 0.5, &mut rng).composite());
        }

        results.push(ConditionResult {
            condition,
            logins: summarize(&logins),
            interactions: summarize(&interactions),
            consumed: summarize(&consumed),
            trust_composite: summarize(&composites),
        });
    }

    let mut table = Table::new(
        "Loyalty and questionnaire trust per interface condition",
        vec![
            "Condition",
            "Logins",
            "Interactions",
            "Consumed",
            "Trust (1-7)",
        ],
    );
    for r in &results {
        table.push_row(vec![
            r.condition.name().to_owned(),
            format!("{:.2}", r.logins.mean),
            format!("{:.2}", r.interactions.mean),
            format!("{:.2}", r.consumed.mean),
            format!("{:.2}", r.trust_composite.mean),
        ]);
    }
    let mut report = StudyReport::new("E-TRUST", "Trust and loyalty across interface conditions");
    report.tables.push(table);
    report
        .notes
        .push("Expected ordering: none < explanation < explanation+scrutiny".to_owned());

    Outcome {
        conditions: results,
        report,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn outcome() -> Outcome {
        run(&Config {
            n_participants: 35,
            ..Config::default()
        })
    }

    #[test]
    fn loyalty_ordering_holds() {
        let o = outcome();
        let none = o.result(Condition::None).logins.mean;
        let explain = o.result(Condition::Explain).logins.mean;
        let full = o.result(Condition::ExplainScrutinize).logins.mean;
        assert!(
            explain > none,
            "explanation logins {explain:.2} must exceed bare {none:.2}"
        );
        assert!(
            full >= explain,
            "scrutiny logins {full:.2} must be at least explanation's {explain:.2}"
        );
    }

    #[test]
    fn questionnaire_trust_ordering_holds() {
        let o = outcome();
        let none = o.result(Condition::None).trust_composite.mean;
        let explain = o.result(Condition::Explain).trust_composite.mean;
        let full = o.result(Condition::ExplainScrutinize).trust_composite.mean;
        assert!(explain > none);
        assert!(
            full >= explain - 0.1,
            "scrutiny {full:.2} vs explain {explain:.2}"
        );
    }

    #[test]
    fn consumption_tracks_loyalty() {
        let o = outcome();
        assert!(
            o.result(Condition::ExplainScrutinize).consumed.mean
                > o.result(Condition::None).consumed.mean,
            "more visits must produce more consumption (the survey's sales proxy)"
        );
    }

    #[test]
    fn interactions_scale_with_condition_richness() {
        let o = outcome();
        assert!(
            o.result(Condition::Explain).interactions.mean
                > o.result(Condition::None).interactions.mean
        );
    }

    #[test]
    fn report_has_three_rows() {
        let o = outcome();
        assert_eq!(o.report.tables[0].rows.len(), 3);
    }
}

//! E-MODAL — text/visual complementarity (survey Conclusion, future
//! work #2, implemented as an ablation).
//!
//! The survey proposes studying how text and images *complement* each
//! other rather than asking which is preferable. Three variants of the
//! same explanation content are compared:
//!
//! * **text only** — the chart's information verbalized;
//! * **visual only** — the bare chart;
//! * **complementary** — the chart plus a one-line caption
//!   (`exrec_core::modality::complement`).
//!
//! Expected shape (dual-coding): complementary presentations achieve the
//! highest comprehension; the visual-only variant is fastest but costs
//! novices precision; complementary pays only a small time premium over
//! visual-only while beating both single modalities on comprehension per
//! tick is *not* required (the premium buys understanding).

use super::{movie_world, participants};
use crate::report::{StudyReport, Table};
use crate::stats::{summarize, Summary};
use exrec_algo::{Ctx, UserKnn};
use exrec_core::engine::Explainer;
use exrec_core::interfaces::InterfaceId;
use exrec_core::modality::{analyze, complement, restrict, Modality};
use rand::RngExt;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Presentation variant.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Variant {
    /// Verbalized content only.
    TextOnly,
    /// The bare chart.
    VisualOnly,
    /// Chart plus caption.
    Complementary,
}

impl Variant {
    /// All variants.
    pub const ALL: [Variant; 3] = [
        Variant::TextOnly,
        Variant::VisualOnly,
        Variant::Complementary,
    ];

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            Variant::TextOnly => "text only",
            Variant::VisualOnly => "visual only",
            Variant::Complementary => "complementary",
        }
    }
}

/// Study configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct Config {
    /// Master seed.
    pub seed: u64,
    /// Number of participants.
    pub n_participants: usize,
    /// Explained recommendations per participant.
    pub n_items: usize,
}

impl Default for Config {
    fn default() -> Self {
        Self {
            seed: 0xEA,
            n_participants: 40,
            n_items: 3,
        }
    }
}

/// Per-variant aggregates.
#[derive(Debug, Clone)]
pub struct VariantResult {
    /// The variant.
    pub variant: Variant,
    /// Comprehension-success rate.
    pub comprehension: Summary,
    /// Reading time (ticks).
    pub time: Summary,
}

/// Study result.
#[derive(Debug, Clone)]
pub struct Outcome {
    /// Per-variant aggregates.
    pub variants: Vec<VariantResult>,
    /// The printable report.
    pub report: StudyReport,
}

impl Outcome {
    /// Lookup by variant.
    pub fn result(&self, v: Variant) -> &VariantResult {
        self.variants
            .iter()
            .find(|r| r.variant == v)
            .expect("variant present")
    }
}

/// Runs the study.
pub fn run(config: &Config) -> Outcome {
    let world = movie_world(config.seed, config.n_participants * 2, 50);
    let mut rng = ChaCha8Rng::seed_from_u64(config.seed);
    let users = participants(&world, config.n_participants, 4, &mut rng);
    let ctx = Ctx::new(&world.ratings, &world.catalog);
    let knn = UserKnn::default();
    let explainer = Explainer::new(&knn, InterfaceId::ClusteredHistogram);
    let descriptor = InterfaceId::ClusteredHistogram.descriptor();

    let mut comp: Vec<(Variant, Vec<f64>)> =
        Variant::ALL.iter().map(|&v| (v, Vec::new())).collect();
    let mut time: Vec<(Variant, Vec<f64>)> =
        Variant::ALL.iter().map(|&v| (v, Vec::new())).collect();

    for user in &users {
        for (_, base) in explainer.recommend_explained(&ctx, user.id, config.n_items) {
            // Derive the three variants from the SAME content.
            let visual_only = restrict(&base, Modality::Visual);
            if analyze(&visual_only).visual == 0 {
                continue; // nothing visual to study
            }
            let complementary = complement(&visual_only);
            let text_only = restrict(&complementary, Modality::Text);
            for (variant, explanation) in [
                (Variant::TextOnly, &text_only),
                (Variant::VisualOnly, &visual_only),
                (Variant::Complementary, &complementary),
            ] {
                let p = user.comprehension_of(&descriptor, explanation);
                let understood = rng.random_range(0.0..1.0) < p;
                comp.iter_mut()
                    .find(|(v, _)| *v == variant)
                    .unwrap()
                    .1
                    .push(f64::from(understood));
                time.iter_mut()
                    .find(|(v, _)| *v == variant)
                    .unwrap()
                    .1
                    .push(user.reading_time(explanation.reading_cost()) as f64);
            }
        }
    }

    let variants: Vec<VariantResult> = Variant::ALL
        .iter()
        .map(|&v| VariantResult {
            variant: v,
            comprehension: summarize(&comp.iter().find(|(x, _)| *x == v).unwrap().1),
            time: summarize(&time.iter().find(|(x, _)| *x == v).unwrap().1),
        })
        .collect();

    let mut table = Table::new(
        "Comprehension and reading time by modality variant",
        vec!["Variant", "Comprehension", "Time (ticks)", "n"],
    );
    for r in &variants {
        table.push_row(vec![
            r.variant.name().to_owned(),
            format!("{:.0}%", r.comprehension.mean * 100.0),
            format!("{:.1}", r.time.mean),
            format!("{}", r.comprehension.n),
        ]);
    }
    let mut report = StudyReport::new("E-MODAL", "Modality: text and visuals complement");
    report.tables.push(table);
    report.notes.push(
        "Future-work direction #2 of the survey, run as an ablation: the complementary \
         variant should top comprehension (dual coding)."
            .to_owned(),
    );

    Outcome { variants, report }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn outcome() -> Outcome {
        run(&Config {
            n_participants: 35,
            ..Config::default()
        })
    }

    #[test]
    fn complementary_tops_comprehension() {
        let o = outcome();
        let c = o.result(Variant::Complementary).comprehension.mean;
        assert!(
            c > o.result(Variant::TextOnly).comprehension.mean,
            "complementary {c:.2} must beat text-only {:.2}",
            o.result(Variant::TextOnly).comprehension.mean
        );
        assert!(c > o.result(Variant::VisualOnly).comprehension.mean);
    }

    #[test]
    fn visual_only_is_fastest() {
        let o = outcome();
        let v = o.result(Variant::VisualOnly).time.mean;
        assert!(v <= o.result(Variant::Complementary).time.mean);
    }

    #[test]
    fn complementary_time_premium_is_modest() {
        let o = outcome();
        let premium = o.result(Variant::Complementary).time.mean
            / o.result(Variant::VisualOnly).time.mean.max(1e-9);
        assert!(
            premium < 2.0,
            "a caption should not double the reading time (×{premium:.2})"
        );
    }

    #[test]
    fn samples_are_balanced() {
        let o = outcome();
        let n0 = o.result(Variant::TextOnly).comprehension.n;
        for v in Variant::ALL {
            assert_eq!(o.result(v).comprehension.n, n0);
        }
        assert!(n0 > 50);
    }
}

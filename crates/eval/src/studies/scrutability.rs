//! E-SCR — the scrutinization task (survey Section 3.2, after
//! Czarkowski's SASY evaluation).
//!
//! Task: "stop receiving recommendations of Disney movies" — here, stop a
//! named genre from appearing in the top-5. Three conditions:
//!
//! * **tool, visible** — the scrutability tool is easy to find: one
//!   profile edit;
//! * **tool, hidden** — the tool exists but is hard to discover
//!   (Czarkowski's interface confound: "quantitative measures … were
//!   found to be misleading when interface issues arose");
//! * **no tool** — the user can only down-rate items one by one.
//!
//! Expected shape: visible-tool success ≫ no-tool success; visible-tool
//! time ≪ no-tool time; the hidden-tool cell shows a *misleading* time
//! distribution (huge spread), reproducing the survey's caveat.

use super::{movie_world, participants};
use crate::report::{StudyReport, Table};
use crate::stats::{summarize, Summary};
use exrec_algo::content::{TfIdfConfig, TfIdfModel};
use exrec_algo::{Ctx, Recommender};
use exrec_interact::profile::ScrutableProfile;
use rand::RngExt;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Study condition.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Condition {
    /// Scrutability tool, easy to find.
    ToolVisible,
    /// Scrutability tool, hard to find.
    ToolHidden,
    /// No scrutability tool: down-rating only.
    NoTool,
}

impl Condition {
    /// All conditions.
    pub const ALL: [Condition; 3] = [
        Condition::ToolVisible,
        Condition::ToolHidden,
        Condition::NoTool,
    ];

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            Condition::ToolVisible => "tool (visible)",
            Condition::ToolHidden => "tool (hidden)",
            Condition::NoTool => "no tool",
        }
    }
}

/// Study configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct Config {
    /// Master seed.
    pub seed: u64,
    /// Participants per condition.
    pub n_participants: usize,
    /// Down-ratings allowed before giving up (no-tool path).
    pub downrate_budget: usize,
}

impl Default for Config {
    fn default() -> Self {
        Self {
            seed: 0xE7,
            n_participants: 40,
            downrate_budget: 8,
        }
    }
}

/// Per-condition aggregates.
#[derive(Debug, Clone)]
pub struct ConditionResult {
    /// The condition.
    pub condition: Condition,
    /// Task success rate.
    pub success_rate: f64,
    /// Task time over *all* participants (success or not).
    pub time: Summary,
    /// Median task time (robust against the confound's bimodality).
    pub median_time: f64,
}

/// Study result.
#[derive(Debug, Clone)]
pub struct Outcome {
    /// Per-condition results.
    pub conditions: Vec<ConditionResult>,
    /// The printable report.
    pub report: StudyReport,
}

impl Outcome {
    /// Lookup by condition.
    pub fn result(&self, c: Condition) -> &ConditionResult {
        self.conditions
            .iter()
            .find(|r| r.condition == c)
            .expect("condition present")
    }
}

fn median(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    let mut v = xs.to_vec();
    v.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    let mid = v.len() / 2;
    if v.len().is_multiple_of(2) {
        (v[mid - 1] + v[mid]) / 2.0
    } else {
        v[mid]
    }
}

/// Whether the genre still appears in the user's top-5 under the given
/// profile and ratings.
fn genre_in_top5(
    world: &exrec_data::World,
    ratings: &exrec_data::RatingsMatrix,
    profile: &ScrutableProfile,
    user: exrec_types::UserId,
    genre: &str,
) -> bool {
    let ctx = Ctx::new(ratings, &world.catalog);
    let Ok(model) = TfIdfModel::fit(&ctx, TfIdfConfig::default()) else {
        return true;
    };
    let ranked = profile.apply(&world.catalog, model.recommend(&ctx, user, 20));
    ranked.iter().take(5).any(|s| {
        world
            .catalog
            .get(s.item)
            .map(|it| it.attrs.cat("genre") == Some(genre))
            .unwrap_or(false)
    })
}

/// Runs the study.
pub fn run(config: &Config) -> Outcome {
    let world = movie_world(config.seed, config.n_participants + 10, 60);
    let mut rng = ChaCha8Rng::seed_from_u64(config.seed);
    let users = participants(&world, config.n_participants, 2, &mut rng);

    let mut conditions = Vec::new();
    for condition in Condition::ALL {
        let mut times = Vec::new();
        let mut successes = 0usize;

        for user in &users {
            let mut ratings = world.ratings.clone();
            let mut profile = ScrutableProfile::new();
            let mut time = 0u64;

            // The unwanted genre: whatever currently tops their list.
            let ctx = Ctx::new(&ratings, &world.catalog);
            let model = TfIdfModel::fit(&ctx, TfIdfConfig::default()).expect("catalog");
            let Some(top) = model.recommend(&ctx, user.id, 1).first().copied() else {
                continue;
            };
            let genre = world
                .catalog
                .get(top.item)
                .ok()
                .and_then(|it| it.attrs.cat("genre").map(str::to_owned))
                .unwrap_or_default();

            let mut use_tool = match condition {
                Condition::ToolVisible => {
                    time += 4; // open the profile page
                    true
                }
                Condition::ToolHidden => {
                    // Hunt for the tool first.
                    time += 14;

                    rng.random_range(0.0..1.0) < 0.45 + 0.35 * user.persona.expertise
                }
                Condition::NoTool => false,
            };
            if condition == Condition::NoTool {
                use_tool = false;
            }

            if use_tool {
                time += 3; // add the rule
                profile.block("genre", &genre);
            } else {
                // Without a tool the user must reverse-engineer the
                // system. Whether they pick the *right* corrective action
                // depends on how well they understand the mechanism — the
                // survey's opening TiVo anecdote (Mr. Iwanyk's "guy
                // stuff" recordings) is exactly the wrong-action path.
                time += 5; // initial orientation scan
                let understands = rng.random_range(0.0..1.0)
                    < user.comprehension(
                        &exrec_core::interfaces::InterfaceId::NoExplanation.descriptor(),
                    ) + 0.25;
                // "Users do not scrutinize often" — impatient users
                // abandon manual correction after a few actions.
                let personal_budget =
                    (2.0 + user.persona.patience * config.downrate_budget as f64).round() as usize;
                if understands {
                    // Correct action: down-rate offending items.
                    let unwanted: Vec<_> = world
                        .catalog
                        .iter()
                        .filter(|it| it.attrs.cat("genre") == Some(genre.as_str()))
                        .map(|it| it.id)
                        .take(personal_budget)
                        .collect();
                    for item in unwanted {
                        time += 4; // find the next offending item
                        let _ = ratings.rate(user.id, item, world.ratings.scale().min());
                        time += 2;
                        if !genre_in_top5(&world, &ratings, &profile, user.id, &genre) {
                            break;
                        }
                    }
                } else {
                    // Wrong action: flood the profile with other-genre
                    // positives, hoping to crowd the genre out.
                    let decoys: Vec<_> = world
                        .catalog
                        .iter()
                        .filter(|it| it.attrs.cat("genre") != Some(genre.as_str()))
                        .map(|it| it.id)
                        .take(personal_budget)
                        .collect();
                    for item in decoys {
                        time += 4;
                        let _ = ratings.rate(user.id, item, world.ratings.scale().max());
                        time += 2;
                    }
                }
            }

            let success = !genre_in_top5(&world, &ratings, &profile, user.id, &genre);
            if success {
                successes += 1;
            }
            times.push(time as f64);
        }

        conditions.push(ConditionResult {
            condition,
            success_rate: successes as f64 / users.len() as f64,
            median_time: median(&times),
            time: summarize(&times),
        });
    }

    let mut table = Table::new(
        "Scrutinization task: stop a genre from being recommended",
        vec!["Condition", "Success", "Mean time", "Median time", "SD"],
    );
    for c in &conditions {
        table.push_row(vec![
            c.condition.name().to_owned(),
            format!("{:.0}%", c.success_rate * 100.0),
            format!("{:.1}", c.time.mean),
            format!("{:.1}", c.median_time),
            format!("{:.1}", c.time.sd),
        ]);
    }
    let mut report = StudyReport::new("E-SCR", "Scrutability: stop-the-genre task");
    report.tables.push(table);
    report.notes.push(
        "Czarkowski'06 caveat reproduced: under the hidden-tool confound, time \
         measurements mislead (large spread) — judge by success rate and median."
            .to_owned(),
    );

    Outcome { conditions, report }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn outcome() -> Outcome {
        run(&Config {
            n_participants: 35,
            ..Config::default()
        })
    }

    #[test]
    fn visible_tool_wins_on_success() {
        let o = outcome();
        assert!(
            o.result(Condition::ToolVisible).success_rate
                > o.result(Condition::NoTool).success_rate,
            "visible tool {:.2} must beat no tool {:.2}",
            o.result(Condition::ToolVisible).success_rate,
            o.result(Condition::NoTool).success_rate
        );
        assert!(o.result(Condition::ToolVisible).success_rate > 0.9);
    }

    #[test]
    fn visible_tool_is_fast() {
        let o = outcome();
        assert!(
            o.result(Condition::ToolVisible).time.mean < o.result(Condition::NoTool).time.mean,
            "tool time {:.1} must beat manual down-rating {:.1}",
            o.result(Condition::ToolVisible).time.mean,
            o.result(Condition::NoTool).time.mean
        );
    }

    #[test]
    fn hidden_tool_time_is_misleading() {
        let o = outcome();
        // The confound inflates hidden-tool times beyond the visible-tool
        // cell even when the task itself is identical once found.
        assert!(
            o.result(Condition::ToolHidden).time.mean > o.result(Condition::ToolVisible).time.mean
        );
        // And hidden-tool success sits between the other two cells.
        let hidden = o.result(Condition::ToolHidden).success_rate;
        assert!(hidden < o.result(Condition::ToolVisible).success_rate + 1e-9);
    }

    #[test]
    fn deterministic() {
        let a = run(&Config::default());
        let b = run(&Config::default());
        assert_eq!(
            a.result(Condition::NoTool).success_rate,
            b.result(Condition::NoTool).success_rate
        );
    }
}

//! E-SHIFT — the rating-shift study (survey Section 3.4, after Cosley et
//! al., CHI'03 "Is seeing believing?").
//!
//! Protocol: participants rate items cold (no prediction shown); later
//! they re-rate the same items while a prediction is displayed —
//! accurate, perturbed upward, or perturbed downward — with or without an
//! explanation interface. The published shape:
//!
//! 1. re-ratings shift *toward* the displayed prediction;
//! 2. an explanation amplifies the shift;
//! 3. the shift persists even for deliberately inaccurate predictions
//!    ("users can be manipulated … whether this prediction is accurate
//!    or not").

use super::{movie_world, participants, unrated_items};
use crate::report::{StudyReport, Table};
use crate::stats::{summarize, welch_t, Summary};
use exrec_core::interfaces::InterfaceId;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// How the displayed prediction is produced.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ShownPrediction {
    /// The participant's true rating plus small model error.
    Accurate,
    /// Perturbed one star upward.
    PerturbedUp,
    /// Perturbed one star downward.
    PerturbedDown,
}

impl ShownPrediction {
    /// All conditions.
    pub const ALL: [ShownPrediction; 3] = [
        ShownPrediction::Accurate,
        ShownPrediction::PerturbedUp,
        ShownPrediction::PerturbedDown,
    ];

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            ShownPrediction::Accurate => "accurate",
            ShownPrediction::PerturbedUp => "perturbed +1",
            ShownPrediction::PerturbedDown => "perturbed -1",
        }
    }
}

/// Study configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct Config {
    /// Master seed.
    pub seed: u64,
    /// Number of participants.
    pub n_participants: usize,
    /// Items re-rated per participant per condition.
    pub n_items: usize,
    /// Explanation interface for the "with explanation" arm.
    pub interface: InterfaceId,
}

impl Default for Config {
    fn default() -> Self {
        Self {
            seed: 0xE2,
            n_participants: 40,
            n_items: 4,
            interface: InterfaceId::ClusteredHistogram,
        }
    }
}

/// Per-condition shift summary.
#[derive(Debug, Clone)]
pub struct ConditionResult {
    /// The prediction condition.
    pub shown: ShownPrediction,
    /// Whether an explanation accompanied the prediction.
    pub explained: bool,
    /// Summary of signed shift toward the shown prediction
    /// (`(rerate − pre) · sign(shown − pre)`), in stars.
    pub shift_toward: Summary,
}

/// Study result.
#[derive(Debug, Clone)]
pub struct Outcome {
    /// All six condition cells.
    pub conditions: Vec<ConditionResult>,
    /// Welch-t p-value for explanation-vs-none on the accurate condition.
    pub explanation_effect_p: f64,
    /// The printable report.
    pub report: StudyReport,
}

impl Outcome {
    /// Mean shift of a condition cell.
    pub fn shift(&self, shown: ShownPrediction, explained: bool) -> f64 {
        self.conditions
            .iter()
            .find(|c| c.shown == shown && c.explained == explained)
            .map(|c| c.shift_toward.mean)
            .unwrap_or(f64::NAN)
    }
}

/// Runs the study.
pub fn run(config: &Config) -> Outcome {
    let world = movie_world(config.seed, config.n_participants * 2, 60);
    let mut rng = ChaCha8Rng::seed_from_u64(config.seed);
    let users = participants(&world, config.n_participants, 3, &mut rng);
    let scale = *world.ratings.scale();
    let none = InterfaceId::NoExplanation.descriptor();
    let explained_descriptor = config.interface.descriptor();

    let mut cells: Vec<(ShownPrediction, bool, Vec<f64>)> = ShownPrediction::ALL
        .iter()
        .flat_map(|&s| [(s, false, Vec::new()), (s, true, Vec::new())])
        .collect();
    let mut raw_samples: Vec<((ShownPrediction, bool), Vec<f64>)> = Vec::new();

    for user in &users {
        let items = unrated_items(&world, user.id, config.n_items);
        for &item in &items {
            // Phase 1: cold pre-rating (no prediction shown at all — the
            // estimate anchors on nothing, modelled as pull-free noise).
            let truth = user.true_rating(item);
            let pre = {
                let noisy = truth + user.persona.estimate_noise * (rng_gauss(&mut rng) * 0.8);
                scale.bound(noisy)
            };
            for shown_kind in ShownPrediction::ALL {
                // Paired design: both arms of a condition see the *same*
                // displayed prediction, so the explanation contrast is
                // not diluted by independent display noise.
                let shown = match shown_kind {
                    ShownPrediction::Accurate => scale.bound(truth + rng_gauss(&mut rng) * 0.3),
                    ShownPrediction::PerturbedUp => scale.bound(pre + 1.0),
                    ShownPrediction::PerturbedDown => scale.bound(pre - 1.0),
                };
                let direction = (shown - pre).signum();
                if direction == 0.0 {
                    continue;
                }
                for explained in [false, true] {
                    let d = if explained {
                        &explained_descriptor
                    } else {
                        &none
                    };
                    let rerate = user.estimate_rating(item, shown, d, &mut rng);
                    let shift = (rerate - pre) * direction;
                    cells
                        .iter_mut()
                        .find(|(s, e, _)| *s == shown_kind && *e == explained)
                        .expect("cell exists")
                        .2
                        .push(shift);
                }
            }
        }
    }

    for (s, e, xs) in &cells {
        raw_samples.push(((*s, *e), xs.clone()));
    }
    let conditions: Vec<ConditionResult> = cells
        .iter()
        .map(|(shown, explained, xs)| ConditionResult {
            shown: *shown,
            explained: *explained,
            shift_toward: summarize(xs),
        })
        .collect();

    // Cosley et al.'s central manipulation check: the explanation
    // contrast is tested on the perturbed-up condition, where the
    // anchoring pull is not masked by regression toward the user's own
    // true opinion.
    let up_none = &raw_samples
        .iter()
        .find(|((s, e), _)| *s == ShownPrediction::PerturbedUp && !*e)
        .unwrap()
        .1;
    let up_expl = &raw_samples
        .iter()
        .find(|((s, e), _)| *s == ShownPrediction::PerturbedUp && *e)
        .unwrap()
        .1;
    let explanation_effect_p = welch_t(up_expl, up_none).map(|t| t.p).unwrap_or(1.0);

    let mut table = Table::new(
        "Mean signed shift toward the displayed prediction (stars)",
        vec!["Condition", "Explanation", "Mean shift", "95% CI", "n"],
    );
    for c in &conditions {
        table.push_row(vec![
            c.shown.name().to_owned(),
            if c.explained { "yes" } else { "no" }.to_owned(),
            format!("{:+.3}", c.shift_toward.mean),
            format!("±{:.3}", c.shift_toward.ci95),
            format!("{}", c.shift_toward.n),
        ]);
    }
    let mut report = StudyReport::new("E-SHIFT", "Rating shift under displayed predictions");
    report.tables.push(table);
    report.notes.push(format!(
        "Explanation-vs-none (perturbed +1 condition) Welch p = {explanation_effect_p:.4}"
    ));

    Outcome {
        conditions,
        explanation_effect_p,
        report,
    }
}

fn rng_gauss(rng: &mut ChaCha8Rng) -> f64 {
    use rand::RngExt as _;
    (0..12).map(|_| rng.random_range(0.0..1.0)).sum::<f64>() - 6.0
}

#[cfg(test)]
mod tests {
    use super::*;

    fn outcome() -> Outcome {
        run(&Config {
            n_participants: 30,
            ..Config::default()
        })
    }

    #[test]
    fn reratings_shift_toward_shown() {
        let o = outcome();
        for c in &o.conditions {
            assert!(
                c.shift_toward.mean > 0.0,
                "{} / explained={} shift {:.3} must be positive",
                c.shown.name(),
                c.explained,
                c.shift_toward.mean
            );
        }
    }

    #[test]
    fn explanation_amplifies_shift_under_manipulation() {
        let o = outcome();
        for shown in [ShownPrediction::PerturbedUp, ShownPrediction::PerturbedDown] {
            assert!(
                o.shift(shown, true) > o.shift(shown, false),
                "{}: explained {:.3} must exceed unexplained {:.3}",
                shown.name(),
                o.shift(shown, true),
                o.shift(shown, false)
            );
        }
        // In the accurate condition regression to the user's own opinion
        // dominates; the explanation must at least not reduce the shift
        // materially.
        assert!(
            o.shift(ShownPrediction::Accurate, true)
                > o.shift(ShownPrediction::Accurate, false) - 0.15
        );
    }

    #[test]
    fn manipulation_works_for_inaccurate_predictions() {
        let o = outcome();
        assert!(o.shift(ShownPrediction::PerturbedUp, true) > 0.1);
        assert!(o.shift(ShownPrediction::PerturbedDown, true) > 0.1);
    }

    #[test]
    fn explanation_effect_is_significant() {
        let o = outcome();
        assert!(
            o.explanation_effect_p < 0.05,
            "p = {}",
            o.explanation_effect_p
        );
    }

    #[test]
    fn report_has_six_cells() {
        let o = outcome();
        assert_eq!(o.conditions.len(), 6);
        assert_eq!(o.report.tables[0].rows.len(), 6);
    }
}

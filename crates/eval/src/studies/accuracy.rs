//! E-ACC — accuracy vs. explainability across the recommender substrates.
//!
//! The survey opens with the field's realization that "accuracy metrics
//! … can only partially evaluate a recommender system". This experiment
//! makes the other axis concrete: for every substrate the toolkit ships,
//! measure held-out accuracy (MAE/RMSE) *and* explainability reach — how
//! many of the 21 explanation interfaces the model's evidence can feed.
//!
//! Expected shape: matrix factorization sits at or near the top on
//! accuracy while reaching the **fewest** interfaces (its latent evidence
//! feeds only evidence-agnostic ones); neighbourhood and content models
//! trade a little accuracy for far wider explainability.

use super::movie_world;
use crate::report::{StudyReport, Table};
use exrec_algo::baseline::{GlobalMean, Popularity, UserMean};
use exrec_algo::content::{NaiveBayesModel, TfIdfConfig, TfIdfModel};
use exrec_algo::item_knn::{ItemKnn, ItemKnnConfig};
use exrec_algo::mf::{MatrixFactorization, MfConfig};
use exrec_algo::{Ctx, ModelEvidence, Recommender, UserKnn};
use exrec_core::interfaces::{EvidenceNeed, InterfaceId};
use exrec_data::split::holdout;

/// Study configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct Config {
    /// Master seed.
    pub seed: u64,
    /// World size (users).
    pub n_users: usize,
    /// World size (items).
    pub n_items: usize,
    /// Held-out fraction.
    pub test_fraction: f64,
}

impl Default for Config {
    fn default() -> Self {
        Self {
            seed: 0xACC,
            n_users: 120,
            n_items: 80,
            test_fraction: 0.2,
        }
    }
}

/// Per-model row.
#[derive(Debug, Clone)]
pub struct ModelRow {
    /// Algorithm name.
    pub name: &'static str,
    /// Held-out MAE (None when the model predicted nothing).
    pub mae: Option<f64>,
    /// Held-out RMSE.
    pub rmse: Option<f64>,
    /// Fraction of test pairs the model could predict.
    pub prediction_coverage: f64,
    /// How many of the 21 interfaces its evidence can feed.
    pub interface_reach: usize,
}

/// Study result.
#[derive(Debug, Clone)]
pub struct Outcome {
    /// Rows, in fixed model order.
    pub rows: Vec<ModelRow>,
    /// The printable report.
    pub report: StudyReport,
}

impl Outcome {
    /// Lookup by model name.
    pub fn row(&self, name: &str) -> &ModelRow {
        self.rows
            .iter()
            .find(|r| r.name == name)
            .expect("model present")
    }
}

/// How many of the 21 interfaces an evidence kind satisfies.
pub fn interface_reach(evidence: &ModelEvidence) -> usize {
    InterfaceId::ALL
        .iter()
        .filter(|id| match id.descriptor().needs {
            EvidenceNeed::Any => true,
            EvidenceNeed::UserNeighbors => {
                matches!(evidence, ModelEvidence::UserNeighbors { .. })
            }
            EvidenceNeed::ItemNeighbors => {
                matches!(evidence, ModelEvidence::ItemNeighbors { .. })
            }
            EvidenceNeed::Content => matches!(evidence, ModelEvidence::Content { .. }),
            EvidenceNeed::Utility => matches!(evidence, ModelEvidence::Utility { .. }),
        })
        .count()
}

/// Runs the experiment.
pub fn run(config: &Config) -> Outcome {
    let world = movie_world(config.seed, config.n_users, config.n_items);
    let split = holdout(&world.ratings, config.test_fraction, config.seed);
    let ctx = Ctx::new(&split.train, &world.catalog);

    let user_knn = UserKnn::default();
    let item_knn = ItemKnn::fit(&ctx, ItemKnnConfig::default()).expect("fit");
    let tfidf = TfIdfModel::fit(&ctx, TfIdfConfig::default()).expect("fit");
    let nb = NaiveBayesModel::default();
    let mf = MatrixFactorization::fit(&ctx, MfConfig::default()).expect("fit");
    let pop = Popularity::default();
    let models: Vec<&dyn Recommender> = vec![
        &mf,
        &user_knn,
        &item_knn,
        &tfidf,
        &nb,
        &pop,
        &UserMean,
        &GlobalMean,
    ];

    let mut rows = Vec::new();
    for model in models {
        let mut pairs = Vec::new();
        let mut reach = 0usize;
        for &(u, i, truth) in &split.test {
            if let Ok(p) = model.predict(&ctx, u, i) {
                pairs.push((p.score, truth));
                if reach == 0 {
                    if let Ok(ev) = model.evidence(&ctx, u, i) {
                        reach = interface_reach(&ev);
                    }
                }
            }
        }
        rows.push(ModelRow {
            name: model.name(),
            mae: exrec_algo::metrics::mae(&pairs),
            rmse: exrec_algo::metrics::rmse(&pairs),
            prediction_coverage: pairs.len() as f64 / split.test.len().max(1) as f64,
            interface_reach: reach,
        });
    }

    let mut table = Table::new(
        "Held-out accuracy vs explainability reach (21 interfaces total)",
        vec!["Model", "MAE", "RMSE", "Coverage", "Interfaces"],
    );
    for r in &rows {
        table.push_row(vec![
            r.name.to_owned(),
            r.mae.map(|v| format!("{v:.3}")).unwrap_or("-".into()),
            r.rmse.map(|v| format!("{v:.3}")).unwrap_or("-".into()),
            format!("{:.0}%", r.prediction_coverage * 100.0),
            format!("{}/21", r.interface_reach),
        ]);
    }
    let mut report = StudyReport::new("E-ACC", "Accuracy vs explainability");
    report.tables.push(table);
    report.notes.push(
        "Matrix factorization: strong accuracy, minimal explainability reach — the \
         survey's accuracy-is-not-enough point, quantified."
            .to_owned(),
    );

    Outcome { rows, report }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn outcome() -> Outcome {
        run(&Config {
            n_users: 80,
            n_items: 60,
            ..Config::default()
        })
    }

    #[test]
    fn every_personalized_model_beats_global_mean() {
        let o = outcome();
        let gm = o.row("global-mean").mae.unwrap();
        for name in ["matrix-factorization", "user-knn", "item-knn"] {
            let mae = o.row(name).mae.unwrap();
            assert!(
                mae < gm,
                "{name} MAE {mae:.3} must beat global mean {gm:.3}"
            );
        }
    }

    #[test]
    fn mf_is_accurate_but_explanation_poor() {
        let o = outcome();
        let mf = o.row("matrix-factorization");
        let knn = o.row("user-knn");
        assert!(
            mf.mae.unwrap() <= knn.mae.unwrap() * 1.1,
            "MF accuracy {:.3} should be competitive with kNN {:.3}",
            mf.mae.unwrap(),
            knn.mae.unwrap()
        );
        assert!(
            mf.interface_reach < knn.interface_reach,
            "MF reach {} must be below kNN reach {}",
            mf.interface_reach,
            knn.interface_reach
        );
    }

    #[test]
    fn reach_values_are_sane() {
        let o = outcome();
        // Any-need interfaces exist, so every model reaches at least a few.
        for r in &o.rows {
            assert!(
                r.interface_reach >= 5,
                "{}: reach {} too small",
                r.name,
                r.interface_reach
            );
            assert!(r.interface_reach <= 21);
        }
        // kNN unlocks the neighbour family on top of the Any family.
        let any_only = o.row("matrix-factorization").interface_reach;
        assert!(o.row("user-knn").interface_reach > any_only);
        assert!(o.row("tfidf").interface_reach > any_only);
    }

    #[test]
    fn mf_coverage_is_full() {
        let o = outcome();
        assert!(
            o.row("matrix-factorization").prediction_coverage > 0.99,
            "MF predicts everywhere"
        );
    }
}

//! A-TRADE — the choosing-criteria ablation (survey Section 3.8).
//!
//! "It is hard to create explanations that do well on all our criteria,
//! in reality it is a trade-off." Two sweeps make the survey's two named
//! tensions measurable:
//!
//! * **transparency ↔ efficiency** — across the 21 interfaces, mean
//!   comprehension (transparency) against mean reading time; the survey
//!   predicts a positive time-vs-transparency correlation, i.e.
//!   transparency is bought with efficiency;
//! * **persuasiveness ↔ effectiveness** — sweeping recommendation
//!   "boldness" (Section 4.6's strength inflation), conversion rises
//!   while the pre/post-consumption gap (over-selling) rises with it.

use super::{movie_world, participants};
use crate::report::{Series, StudyReport, Table};
use crate::stats::pearson;
use exrec_algo::baseline::Popularity;
use exrec_algo::{Ctx, Recommender};
use exrec_core::interfaces::InterfaceId;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Study configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct Config {
    /// Master seed.
    pub seed: u64,
    /// Participants.
    pub n_participants: usize,
    /// Boldness sweep steps in `[0, 1]`.
    pub boldness_steps: usize,
}

impl Default for Config {
    fn default() -> Self {
        Self {
            seed: 0xE9,
            n_participants: 30,
            boldness_steps: 6,
        }
    }
}

/// Study result.
#[derive(Debug, Clone)]
pub struct Outcome {
    /// Correlation between interface transparency (comprehension) and
    /// reading time across the 21 interfaces. Expected positive.
    pub transparency_time_r: f64,
    /// Correlation between conversion and over-selling gap across the
    /// boldness sweep. Expected positive (persuasion costs
    /// effectiveness).
    pub conversion_gap_r: f64,
    /// `(boldness, conversion)` sweep points.
    pub conversion_curve: Vec<(f64, f64)>,
    /// `(boldness, mean pre−post gap)` sweep points.
    pub gap_curve: Vec<(f64, f64)>,
    /// The printable report.
    pub report: StudyReport,
}

/// Runs the ablation.
pub fn run(config: &Config) -> Outcome {
    let world = movie_world(config.seed, config.n_participants * 2, 50);
    let mut rng = ChaCha8Rng::seed_from_u64(config.seed);
    let users = participants(&world, config.n_participants, 2, &mut rng);
    let ctx = Ctx::new(&world.ratings, &world.catalog);
    let model = Popularity::default();
    let scale = *world.ratings.scale();

    // ---- Sweep 1: transparency vs time along a verbosity dial ------
    //
    // Holding the interface *style* fixed (a detailed process
    // description) and adding levels of detail: each level explains more
    // of the mechanism (informativeness saturates) while reading load
    // grows linearly — the survey's "an explanation that offers great
    // transparency may impede efficiency".
    let mut transparency = Vec::new();
    let mut time = Vec::new();
    for level in 1..=5u32 {
        let v = level as f64;
        let mut d = InterfaceId::DetailedProcess.descriptor();
        d.informativeness = 0.3 + 0.6 * (1.0 - (-0.6 * v).exp());
        d.cognitive_load = (0.12 * v).min(1.0);
        let mean_comprehension: f64 =
            users.iter().map(|u| u.comprehension(&d)).sum::<f64>() / users.len() as f64;
        let mean_time: f64 = users
            .iter()
            .map(|u| u.reading_time((d.cognitive_load * 25.0 + 1.0) as u64) as f64)
            .sum::<f64>()
            / users.len() as f64;
        transparency.push(mean_comprehension);
        time.push(mean_time);
    }
    let transparency_time_r = pearson(&transparency, &time).unwrap_or(0.0);

    // ---- Sweep 2: boldness vs conversion and over-selling ----------
    let d = InterfaceId::ClusteredHistogram.descriptor();
    let mut conversion_curve = Vec::new();
    let mut gap_curve = Vec::new();
    for step in 0..config.boldness_steps {
        let boldness = step as f64 / (config.boldness_steps - 1).max(1) as f64;
        let mut conversions = 0usize;
        let mut trials = 0usize;
        let mut gaps = Vec::new();
        for user in &users {
            for scored in model.recommend(&ctx, user.id, 3) {
                let honest = scored.prediction.score;
                let shown = scale.bound(honest + boldness * (scale.max() - honest) * 0.8);
                let response = user.likelihood_to_try(&d, shown, &scale, &mut rng);
                trials += 1;
                if response >= 4.5 {
                    conversions += 1;
                    let pre = user.estimate_rating(scored.item, shown, &d, &mut rng);
                    let post = user.post_consumption_rating(scored.item, &mut rng);
                    gaps.push(pre - post);
                }
            }
        }
        let conversion = conversions as f64 / trials.max(1) as f64;
        let mean_gap = if gaps.is_empty() {
            0.0
        } else {
            gaps.iter().sum::<f64>() / gaps.len() as f64
        };
        conversion_curve.push((boldness, conversion));
        gap_curve.push((boldness, mean_gap));
    }
    let conversion_gap_r = pearson(
        &conversion_curve.iter().map(|&(_, c)| c).collect::<Vec<_>>(),
        &gap_curve.iter().map(|&(_, g)| g).collect::<Vec<_>>(),
    )
    .unwrap_or(0.0);

    let mut table = Table::new(
        "Section 3.8 trade-offs, quantified",
        vec!["Tension", "Correlation", "Reading"],
    );
    table.push_row(vec![
        "transparency vs reading time".to_owned(),
        format!("{transparency_time_r:+.3}"),
        "positive: transparency is bought with time".to_owned(),
    ]);
    table.push_row(vec![
        "conversion vs over-selling gap".to_owned(),
        format!("{conversion_gap_r:+.3}"),
        "positive: persuasion is bought with effectiveness".to_owned(),
    ]);
    let mut report = StudyReport::new("A-TRADE", "Criteria trade-off ablation");
    report.tables.push(table);
    report.series.push(Series {
        name: "boldness vs conversion".to_owned(),
        points: conversion_curve.clone(),
    });
    report.series.push(Series {
        name: "boldness vs pre-post gap".to_owned(),
        points: gap_curve.clone(),
    });

    Outcome {
        transparency_time_r,
        conversion_gap_r,
        conversion_curve,
        gap_curve,
        report,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn outcome() -> Outcome {
        run(&Config::default())
    }

    #[test]
    fn transparency_costs_time() {
        let o = outcome();
        assert!(
            o.transparency_time_r > 0.2,
            "transparency-time correlation should be positive, got {:.3}",
            o.transparency_time_r
        );
    }

    #[test]
    fn boldness_raises_conversion() {
        let o = outcome();
        let first = o.conversion_curve.first().unwrap().1;
        let last = o.conversion_curve.last().unwrap().1;
        assert!(
            last > first,
            "conversion should rise with boldness: {first:.3} -> {last:.3}"
        );
    }

    #[test]
    fn boldness_raises_overselling() {
        let o = outcome();
        let first = o.gap_curve.first().unwrap().1;
        let last = o.gap_curve.last().unwrap().1;
        assert!(
            last > first,
            "over-selling gap should rise with boldness: {first:.3} -> {last:.3}"
        );
    }

    #[test]
    fn persuasion_trades_against_effectiveness() {
        let o = outcome();
        assert!(
            o.conversion_gap_r > 0.5,
            "conversion and over-selling should move together, r = {:.3}",
            o.conversion_gap_r
        );
    }

    #[test]
    fn curves_cover_the_sweep() {
        let o = outcome();
        assert_eq!(o.conversion_curve.len(), 6);
        assert_eq!(o.conversion_curve[0].0, 0.0);
        assert_eq!(o.conversion_curve[5].0, 1.0);
    }
}

//! E-SAT — satisfaction walkthrough (survey Section 3.7).
//!
//! The survey separates satisfaction with the *process* (using the
//! system, reading its explanations) from satisfaction with the
//! *products* (the items eventually consumed), and suggests walkthrough
//! metrics: "the ratio of positive to negative comments; the number of
//! times the evaluator was frustrated; … delighted". It also cites Sinha
//! & Swearingen: "the presence of longer descriptions of individual items
//! \[is\] positively correlated with both the perceived usefulness and ease
//! of use of the recommender system".
//!
//! Reproduced shape:
//!
//! 1. perceived usefulness correlates positively with explanation length;
//! 2. process satisfaction peaks at informative-but-light interfaces and
//!    drops for overwhelming ones (frustration events);
//! 3. outcome satisfaction is driven by decision quality, not decoration.

use super::{movie_world, participants};
use crate::report::{Series, StudyReport, Table};
use crate::stats::{pearson, summarize, Summary};
use exrec_algo::baseline::Popularity;
use exrec_algo::{Ctx, Recommender};
use exrec_core::interfaces::InterfaceId;
use rand::RngExt;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Study configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct Config {
    /// Master seed.
    pub seed: u64,
    /// Participants per variant.
    pub n_participants: usize,
    /// Walkthrough comments emitted per participant.
    pub n_comments: usize,
    /// Interface variants, shortest first.
    pub interfaces: Vec<InterfaceId>,
}

impl Default for Config {
    fn default() -> Self {
        Self {
            seed: 0xE8,
            n_participants: 40,
            n_comments: 6,
            interfaces: vec![
                InterfaceId::CanonicalPreference,
                InterfaceId::MovieAverage,
                InterfaceId::ClusteredHistogram,
                InterfaceId::DetailedProcess,
                InterfaceId::ComplexGraph,
            ],
        }
    }
}

/// Per-variant aggregates.
#[derive(Debug, Clone)]
pub struct VariantResult {
    /// The interface variant.
    pub interface: InterfaceId,
    /// Process satisfaction (1–7).
    pub process_satisfaction: Summary,
    /// Outcome satisfaction: post-consumption rating of the chosen item.
    pub outcome_satisfaction: Summary,
    /// Walkthrough positive:negative comment ratio.
    pub comment_ratio: f64,
    /// Frustration events per participant.
    pub frustration: Summary,
    /// Perceived usefulness (0–1).
    pub usefulness: Summary,
    /// Verbosity proxy (mean reading ticks).
    pub verbosity: f64,
}

/// Study result.
#[derive(Debug, Clone)]
pub struct Outcome {
    /// Per-variant aggregates, config order.
    pub variants: Vec<VariantResult>,
    /// Pearson correlation of verbosity vs perceived usefulness.
    pub verbosity_usefulness_r: f64,
    /// The printable report.
    pub report: StudyReport,
}

impl Outcome {
    /// Lookup by variant.
    pub fn result(&self, id: InterfaceId) -> &VariantResult {
        self.variants
            .iter()
            .find(|v| v.interface == id)
            .expect("variant present")
    }
}

/// Runs the study.
pub fn run(config: &Config) -> Outcome {
    let world = movie_world(config.seed, config.n_participants * 2, 50);
    let mut rng = ChaCha8Rng::seed_from_u64(config.seed);
    let users = participants(&world, config.n_participants, 2, &mut rng);
    let ctx = Ctx::new(&world.ratings, &world.catalog);
    let model = Popularity::default();

    let mut variants = Vec::new();
    for &interface in &config.interfaces {
        let d = interface.descriptor();
        let verbosity = d.cognitive_load * 28.0 + 4.0; // reading-tick proxy
        let mut process = Vec::new();
        let mut outcome_sat = Vec::new();
        let mut ratios = (0usize, 0usize);
        let mut frustrations = Vec::new();
        let mut usefulness_samples = Vec::new();

        for user in &users {
            let info = d.informativeness * d.grounding;
            // Perceived usefulness: informative content helps; verbose
            // interfaces are *perceived* as more useful (Sinha &
            // Swearingen's longer-description effect), even when heavy.
            let usefulness =
                (0.25 + 0.45 * info + 0.25 * d.cognitive_load + rng.random_range(-0.08..0.08))
                    .clamp(0.0, 1.0);
            usefulness_samples.push(usefulness);

            let effort = d.cognitive_load * (1.0 - user.persona.patience);
            let fun = 0.3 * f64::from(info > 0.4 && d.cognitive_load < 0.5);
            let sat = (4.0 + 2.4 * usefulness - 3.2 * effort + fun + rng.random_range(-0.4..0.4))
                .clamp(1.0, 7.0);
            process.push(sat);

            // Frustration events: each unit of effort risks one.
            let mut frustration = 0.0;
            for _ in 0..3 {
                if rng.random_range(0.0..1.0) < effort * 0.8 {
                    frustration += 1.0;
                }
            }
            frustrations.push(frustration);

            // Walkthrough comments.
            let p_pos = ((sat - 1.0) / 6.0).clamp(0.05, 0.95);
            for _ in 0..config.n_comments {
                if rng.random_range(0.0..1.0) < p_pos {
                    ratios.0 += 1;
                } else {
                    ratios.1 += 1;
                }
            }

            // Outcome satisfaction: pick the best-estimated of 3 recs,
            // consume it, rate.
            let recs = model.recommend(&ctx, user.id, 3);
            if let Some(best) = recs.iter().max_by(|a, b| {
                let ea = user.estimate_rating(a.item, a.prediction.score, &d, &mut rng);
                let eb = user.estimate_rating(b.item, b.prediction.score, &d, &mut rng);
                ea.partial_cmp(&eb).unwrap_or(std::cmp::Ordering::Equal)
            }) {
                outcome_sat.push(user.post_consumption_rating(best.item, &mut rng));
            }
        }

        variants.push(VariantResult {
            interface,
            process_satisfaction: summarize(&process),
            outcome_satisfaction: summarize(&outcome_sat),
            comment_ratio: ratios.0 as f64 / (ratios.1.max(1)) as f64,
            frustration: summarize(&frustrations),
            usefulness: summarize(&usefulness_samples),
            verbosity,
        });
    }

    let xs: Vec<f64> = variants.iter().map(|v| v.verbosity).collect();
    let ys: Vec<f64> = variants.iter().map(|v| v.usefulness.mean).collect();
    let verbosity_usefulness_r = pearson(&xs, &ys).unwrap_or(0.0);

    let mut table = Table::new(
        "Satisfaction walkthrough per interface variant",
        vec![
            "Interface",
            "Process sat (1-7)",
            "Outcome sat",
            "Pos:neg",
            "Frustration",
            "Usefulness",
        ],
    );
    for v in &variants {
        table.push_row(vec![
            v.interface.descriptor().name.to_owned(),
            format!("{:.2}", v.process_satisfaction.mean),
            format!("{:.2}", v.outcome_satisfaction.mean),
            format!("{:.2}", v.comment_ratio),
            format!("{:.2}", v.frustration.mean),
            format!("{:.2}", v.usefulness.mean),
        ]);
    }
    let mut report = StudyReport::new("E-SAT", "Satisfaction: process vs outcome walkthrough");
    report.tables.push(table);
    report.series.push(Series {
        name: "verbosity vs perceived usefulness".to_owned(),
        points: xs.iter().copied().zip(ys.iter().copied()).collect(),
    });
    report.notes.push(format!(
        "verbosity-usefulness Pearson r = {verbosity_usefulness_r:.3} (expect positive, \
         replicating Sinha & Swearingen)"
    ));

    Outcome {
        variants,
        verbosity_usefulness_r,
        report,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn outcome() -> Outcome {
        run(&Config {
            n_participants: 35,
            ..Config::default()
        })
    }

    #[test]
    fn verbosity_correlates_with_usefulness() {
        let o = outcome();
        assert!(
            o.verbosity_usefulness_r > 0.3,
            "expected positive correlation, got {:.3}",
            o.verbosity_usefulness_r
        );
    }

    #[test]
    fn histogram_beats_overwhelming_interfaces_on_process() {
        let o = outcome();
        assert!(
            o.result(InterfaceId::ClusteredHistogram)
                .process_satisfaction
                .mean
                > o.result(InterfaceId::ComplexGraph)
                    .process_satisfaction
                    .mean,
            "clear visuals must out-satisfy the complex graph"
        );
    }

    #[test]
    fn frustration_tracks_load() {
        let o = outcome();
        assert!(
            o.result(InterfaceId::ComplexGraph).frustration.mean
                > o.result(InterfaceId::CanonicalPreference).frustration.mean
        );
    }

    #[test]
    fn comment_ratio_follows_satisfaction() {
        let o = outcome();
        let best = o.result(InterfaceId::ClusteredHistogram);
        let worst = o.result(InterfaceId::ComplexGraph);
        assert!(best.comment_ratio > worst.comment_ratio);
    }

    #[test]
    fn process_and_outcome_are_distinct_measures() {
        // Outcome satisfaction varies far less across variants than
        // process satisfaction: decoration doesn't change what you
        // consume much (the survey's distinction).
        let o = outcome();
        let spread = |f: fn(&VariantResult) -> f64| {
            let vals: Vec<f64> = o.variants.iter().map(f).collect();
            vals.iter().cloned().fold(f64::MIN, f64::max)
                - vals.iter().cloned().fold(f64::MAX, f64::min)
        };
        let process_spread = spread(|v| v.process_satisfaction.mean);
        let outcome_spread = spread(|v| v.outcome_satisfaction.mean);
        assert!(
            process_spread > outcome_spread,
            "process spread {process_spread:.2} should exceed outcome spread {outcome_spread:.2}"
        );
    }
}

//! E-PERS — the 21-interface persuasion study (survey Section 3.4, after
//! Herlocker, Konstan & Riedl, CSCW'00).
//!
//! Participants see one explanation screen per interface for candidate
//! movies and answer "how likely would you be to see this movie?" on a
//! 1–7 scale. The published shape this reproduction must recover:
//!
//! 1. the clustered ratings histogram performs best;
//! 2. several simple, grounded interfaces beat the no-explanation
//!    control;
//! 3. dense interfaces (neighbour table, complex graph) fall *below*
//!    the control.

use super::{movie_world, participants};
use crate::report::{StudyReport, Table};
use crate::stats::{summarize, Summary};
use exrec_algo::baseline::Popularity;
use exrec_algo::{Ctx, Recommender};
use exrec_core::interfaces::InterfaceId;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Study configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct Config {
    /// Master seed.
    pub seed: u64,
    /// Number of simulated participants.
    pub n_participants: usize,
    /// Candidate movies rated per participant per interface.
    pub n_items: usize,
}

impl Default for Config {
    fn default() -> Self {
        Self {
            seed: 0xE1,
            n_participants: 40,
            n_items: 5,
        }
    }
}

/// Study result.
#[derive(Debug, Clone)]
pub struct Outcome {
    /// Per-interface response summaries, best mean first.
    pub ranking: Vec<(InterfaceId, Summary)>,
    /// The printable report.
    pub report: StudyReport,
}

impl Outcome {
    /// 1-based rank of an interface in the result (lower = better).
    pub fn rank_of(&self, id: InterfaceId) -> usize {
        self.ranking
            .iter()
            .position(|(i, _)| *i == id)
            .map(|p| p + 1)
            .unwrap_or(usize::MAX)
    }

    /// Mean response of an interface.
    pub fn mean_of(&self, id: InterfaceId) -> f64 {
        self.ranking
            .iter()
            .find(|(i, _)| *i == id)
            .map(|(_, s)| s.mean)
            .unwrap_or(f64::NAN)
    }
}

/// Runs the study.
pub fn run(config: &Config) -> Outcome {
    let world = movie_world(config.seed, config.n_participants * 2, 60);
    let mut rng = ChaCha8Rng::seed_from_u64(config.seed);
    let users = participants(&world, config.n_participants, 3, &mut rng);
    let ctx = Ctx::new(&world.ratings, &world.catalog);
    let model = Popularity::default();
    let scale = *world.ratings.scale();

    let mut responses: Vec<(InterfaceId, Vec<f64>)> = InterfaceId::ALL
        .iter()
        .map(|&id| (id, Vec::new()))
        .collect();

    for user in &users {
        // Candidate items: the model's top recommendations (high shown
        // scores, as in the original protocol which explained actual
        // recommendations).
        let candidates = model.recommend(&ctx, user.id, config.n_items);
        for scored in &candidates {
            for (id, bucket) in &mut responses {
                let d = id.descriptor();
                bucket.push(user.likelihood_to_try(&d, scored.prediction.score, &scale, &mut rng));
            }
        }
    }

    let mut ranking: Vec<(InterfaceId, Summary)> = responses
        .into_iter()
        .map(|(id, xs)| (id, summarize(&xs)))
        .collect();
    ranking.sort_by(|a, b| {
        b.1.mean
            .partial_cmp(&a.1.mean)
            .unwrap_or(std::cmp::Ordering::Equal)
    });

    let mut table = Table::new(
        "Mean likelihood-to-try per explanation interface (1-7)",
        vec!["Rank", "Interface", "Mean", "SD", "95% CI", "n"],
    );
    for (rank, (id, s)) in ranking.iter().enumerate() {
        table.push_row(vec![
            format!("{}", rank + 1),
            id.descriptor().name.to_owned(),
            format!("{:.2}", s.mean),
            format!("{:.2}", s.sd),
            format!("±{:.2}", s.ci95),
            format!("{}", s.n),
        ]);
    }
    let mut report = StudyReport::new("E-PERS", "Persuasion: 21 explanation interfaces");
    report.tables.push(table);
    report.notes.push(
        "Reference shape (Herlocker'00): clustered histogram best; dense interfaces \
         below the no-explanation control."
            .to_owned(),
    );

    Outcome { ranking, report }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn outcome() -> Outcome {
        run(&Config {
            n_participants: 30,
            ..Config::default()
        })
    }

    #[test]
    fn clustered_histogram_wins() {
        let o = outcome();
        assert!(
            o.rank_of(InterfaceId::ClusteredHistogram) <= 2,
            "clustered histogram ranked {} — expected top-2",
            o.rank_of(InterfaceId::ClusteredHistogram)
        );
        assert!(o.rank_of(InterfaceId::Histogram) <= 5);
    }

    #[test]
    fn dense_interfaces_fall_below_control() {
        let o = outcome();
        let control = o.mean_of(InterfaceId::NoExplanation);
        assert!(
            o.mean_of(InterfaceId::ComplexGraph) < control,
            "complex graph {:.2} must fall below control {control:.2}",
            o.mean_of(InterfaceId::ComplexGraph)
        );
        assert!(o.mean_of(InterfaceId::NeighborTable) < control);
    }

    #[test]
    fn grounded_simple_interfaces_beat_control() {
        let o = outcome();
        let control = o.mean_of(InterfaceId::NoExplanation);
        for id in [
            InterfaceId::ClusteredHistogram,
            InterfaceId::Histogram,
            InterfaceId::PastPerformance,
            InterfaceId::SimilarToRated,
            InterfaceId::MovieAverage,
        ] {
            assert!(
                o.mean_of(id) > control,
                "{id} ({:.2}) should beat control ({control:.2})",
                o.mean_of(id)
            );
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let a = run(&Config::default());
        let b = run(&Config::default());
        assert_eq!(
            a.ranking.iter().map(|(i, _)| *i).collect::<Vec<_>>(),
            b.ranking.iter().map(|(i, _)| *i).collect::<Vec<_>>()
        );
    }

    #[test]
    fn all_21_interfaces_ranked() {
        let o = outcome();
        assert_eq!(o.ranking.len(), 21);
        assert!(o
            .report
            .render_ascii()
            .contains("Clustered ratings histogram"));
    }
}

//! The executable studies of the survey's Section 3 (see DESIGN.md §4).
//!
//! Each study is a deterministic function of its config (seed included),
//! returns typed results plus a [`crate::report::StudyReport`], and has
//! unit tests asserting the *shape* the survey reports (who wins, in
//! which direction) — never the absolute numbers, which belong to the
//! original human-subject experiments.

pub mod accuracy;
pub mod effectiveness;
pub mod efficiency;
pub mod modality;
pub mod persuasion_herlocker;
pub mod rating_shift;
pub mod satisfaction;
pub mod scrutability;
pub mod tradeoffs;
pub mod transparency;
pub mod trust_loyalty;

use crate::simuser::{Persona, SimUser};
use exrec_data::synth::WorldConfig;
use exrec_data::World;
use exrec_types::UserId;
use rand_chacha::ChaCha8Rng;

/// Picks up to `n` world users with at least `min_ratings` ratings and
/// wraps them in sampled personas.
pub(crate) fn participants<'w>(
    world: &'w World,
    n: usize,
    min_ratings: usize,
    rng: &mut ChaCha8Rng,
) -> Vec<SimUser<'w>> {
    world
        .ratings
        .users()
        .filter(|&u| world.ratings.user_ratings(u).len() >= min_ratings)
        .take(n)
        .map(|u| SimUser::new(u, Persona::sample(rng), world))
        .collect()
}

/// The default movie world used by rating-centric studies.
pub(crate) fn movie_world(seed: u64, n_users: usize, n_items: usize) -> World {
    exrec_data::synth::movies::generate(&WorldConfig {
        n_users,
        n_items,
        density: 0.25,
        seed,
        ..WorldConfig::default()
    })
}

/// A user's top unrated items under a recommender, for study targets.
pub(crate) fn unrated_items(world: &World, user: UserId, n: usize) -> Vec<exrec_types::ItemId> {
    world
        .catalog
        .ids()
        .filter(|&i| world.ratings.rating(user, i).is_none())
        .take(n)
        .collect()
}

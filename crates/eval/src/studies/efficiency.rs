//! E-EFC — conversational efficiency (survey Section 3.6, after Thompson
//! et al.'s Adaptive Place Advisor and Pu & Chen's completion-time
//! comparison).
//!
//! Simulated shoppers know what they want (a hidden target item) but can
//! only partially articulate it as stated requirements. Three strategies
//! are compared for finding the target:
//!
//! * **browse** — scan the requirement-ranked list item by item;
//! * **unit critiquing** — one attribute tweak per cycle;
//! * **compound critiquing** — the explanatory trade-off critiques of
//!   Section 5.2.
//!
//! Published shape: conversational, explanation-backed interaction needs
//! significantly fewer interactions and less total time than plain
//! browsing (\[35\]); compound critiques converge in fewer cycles than unit
//! critiques. (Pu & Chen's completion-time difference was not always
//! significant — we therefore report cycles *and* time.)

use crate::report::{StudyReport, Table};
use crate::stats::{summarize, welch_t, Summary};
use exrec_algo::knowledge::{Constraint, Maut, Requirement};
use exrec_algo::Ctx;
use exrec_data::synth::{cameras, WorldConfig};
use exrec_data::World;
use exrec_interact::critiquing::{CritiqueOutcome, CritiqueSession};
use exrec_present::critiques::{attribute_ranges, pattern_of};
use exrec_present::structured::OverviewConfig;
use exrec_types::ItemId;
use rand::RngExt;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Search strategy under comparison.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Strategy {
    /// Sequential scan of the ranked list.
    Browse,
    /// One unit critique per cycle.
    UnitCritiquing,
    /// Dynamic compound critiques (explanatory feedback).
    CompoundCritiquing,
}

impl Strategy {
    /// All strategies.
    pub const ALL: [Strategy; 3] = [
        Strategy::Browse,
        Strategy::UnitCritiquing,
        Strategy::CompoundCritiquing,
    ];

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            Strategy::Browse => "browse",
            Strategy::UnitCritiquing => "unit critiques",
            Strategy::CompoundCritiquing => "compound critiques",
        }
    }
}

/// Study configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct Config {
    /// Master seed.
    pub seed: u64,
    /// Number of simulated shoppers.
    pub n_shoppers: usize,
    /// Catalog size.
    pub n_items: usize,
    /// Cycle budget before a search counts as failed.
    pub max_cycles: usize,
}

impl Default for Config {
    fn default() -> Self {
        Self {
            seed: 0xE4,
            n_shoppers: 40,
            n_items: 100,
            max_cycles: 40,
        }
    }
}

/// Per-strategy aggregate.
#[derive(Debug, Clone)]
pub struct StrategyResult {
    /// The strategy.
    pub strategy: Strategy,
    /// Interaction cycles to find the target.
    pub cycles: Summary,
    /// Total simulated time (ticks).
    pub time: Summary,
    /// Fraction of shoppers who found the target within budget.
    pub success_rate: f64,
}

/// Study result.
#[derive(Debug, Clone)]
pub struct Outcome {
    /// Per-strategy aggregates.
    pub strategies: Vec<StrategyResult>,
    /// Welch-t p for compound-vs-browse time.
    pub compound_vs_browse_p: f64,
    /// The printable report.
    pub report: StudyReport,
}

impl Outcome {
    /// Lookup by strategy.
    pub fn result(&self, s: Strategy) -> &StrategyResult {
        self.strategies
            .iter()
            .find(|r| r.strategy == s)
            .expect("all strategies present")
    }
}

/// Reading/judging cost of one full item record while browsing.
const BROWSE_ITEM_COST: u64 = 5;

fn stated_requirements(rng: &mut ChaCha8Rng) -> Maut {
    Maut::new(vec![
        Requirement::soft("price", Constraint::AtMost(rng.random_range(300.0..900.0)))
            .with_weight(2.0),
        Requirement::soft(
            "resolution",
            Constraint::AtLeast(rng.random_range(6.0..12.0)),
        ),
        Requirement::soft("zoom", Constraint::AtLeast(rng.random_range(2.0..8.0))),
    ])
    .expect("positive weights")
}

/// The shopper's hidden target: an item ranked well but not first under
/// the stated requirements (they could not fully articulate why).
fn hidden_target(maut: &Maut, ctx: &Ctx<'_>, rng: &mut ChaCha8Rng) -> ItemId {
    let ranked = maut.rank(ctx, usize::MAX);
    let lo = 15.min(ranked.len() - 1);
    let hi = 45.min(ranked.len());
    let idx = if hi > lo {
        rng.random_range(lo..hi)
    } else {
        lo
    };
    ranked[idx].item
}

fn run_browse(maut: &Maut, ctx: &Ctx<'_>, target: ItemId, max_cycles: usize) -> (usize, u64, bool) {
    let ranked = maut.rank(ctx, usize::MAX);
    match ranked.iter().position(|s| s.item == target) {
        Some(pos) if pos < max_cycles => {
            let cycles = pos + 1;
            (cycles, cycles as u64 * BROWSE_ITEM_COST, true)
        }
        _ => (max_cycles, max_cycles as u64 * BROWSE_ITEM_COST, false),
    }
}

fn run_critiquing(
    maut: Maut,
    ctx: &Ctx<'_>,
    target: ItemId,
    compound: bool,
    max_cycles: usize,
) -> (usize, u64, bool) {
    let ranges = attribute_ranges(ctx.catalog);
    let Ok((mut session, mut screen)) =
        CritiqueSession::start(maut, ctx, OverviewConfig::default())
    else {
        return (max_cycles, 0, false);
    };
    let target_item = match ctx.catalog.get(target) {
        Ok(it) => it,
        Err(_) => return (max_cycles, session.elapsed().ticks(), false),
    };

    while session.cycles() <= max_cycles {
        let current = screen.current.item;
        if current == target {
            return (session.cycles(), session.elapsed().ticks(), true);
        }
        let Ok(current_item) = ctx.catalog.get(current) else {
            break;
        };
        let pattern = pattern_of(target_item, current_item, &ranges);
        if pattern.is_empty() {
            // Current is indistinguishable from the target: close enough.
            return (session.cycles(), session.elapsed().ticks(), true);
        }
        // Compound shoppers first try an offered trade-off category that
        // is compatible with the target; unit shoppers always tweak one
        // attribute at a time.
        let outcome = if compound {
            match session.critique_toward(ctx, current, target, &screen.options) {
                Some((c, _)) => {
                    let c = c.clone();
                    session.apply_compound(ctx, current, &c)
                }
                None => session.apply_unit(ctx, current, &pattern[0]),
            }
        } else {
            session.apply_unit(ctx, current, &pattern[0])
        };
        match outcome {
            Ok(CritiqueOutcome::Continue(next))
            | Ok(CritiqueOutcome::Repaired { screen: next, .. }) => {
                screen = next;
            }
            Err(_) => break,
        }
        if !session.reachable(target) {
            break;
        }
    }
    (
        session.cycles().min(max_cycles),
        session.elapsed().ticks(),
        false,
    )
}

/// Runs the study.
pub fn run(config: &Config) -> Outcome {
    let world: World = cameras::generate(&WorldConfig {
        n_users: 5,
        n_items: config.n_items,
        seed: config.seed,
        ..WorldConfig::default()
    });
    let ctx = Ctx::new(&world.ratings, &world.catalog);
    let mut rng = ChaCha8Rng::seed_from_u64(config.seed);

    let mut cycles: Vec<(Strategy, Vec<f64>)> =
        Strategy::ALL.iter().map(|&s| (s, Vec::new())).collect();
    let mut times: Vec<(Strategy, Vec<f64>)> =
        Strategy::ALL.iter().map(|&s| (s, Vec::new())).collect();
    let mut successes: Vec<(Strategy, usize)> = Strategy::ALL.iter().map(|&s| (s, 0)).collect();

    for _ in 0..config.n_shoppers {
        let maut = stated_requirements(&mut rng);
        let target = hidden_target(&maut, &ctx, &mut rng);
        for &strategy in &Strategy::ALL {
            let (c, t, ok) = match strategy {
                Strategy::Browse => run_browse(&maut, &ctx, target, config.max_cycles),
                Strategy::UnitCritiquing => {
                    run_critiquing(maut.clone(), &ctx, target, false, config.max_cycles)
                }
                Strategy::CompoundCritiquing => {
                    run_critiquing(maut.clone(), &ctx, target, true, config.max_cycles)
                }
            };
            cycles
                .iter_mut()
                .find(|(s, _)| *s == strategy)
                .unwrap()
                .1
                .push(c as f64);
            times
                .iter_mut()
                .find(|(s, _)| *s == strategy)
                .unwrap()
                .1
                .push(t as f64);
            if ok {
                successes
                    .iter_mut()
                    .find(|(s, _)| *s == strategy)
                    .unwrap()
                    .1 += 1;
            }
        }
    }

    let strategies: Vec<StrategyResult> = Strategy::ALL
        .iter()
        .map(|&s| StrategyResult {
            strategy: s,
            cycles: summarize(&cycles.iter().find(|(x, _)| *x == s).unwrap().1),
            time: summarize(&times.iter().find(|(x, _)| *x == s).unwrap().1),
            success_rate: successes.iter().find(|(x, _)| *x == s).unwrap().1 as f64
                / config.n_shoppers as f64,
        })
        .collect();

    let compound_times = &times
        .iter()
        .find(|(s, _)| *s == Strategy::CompoundCritiquing)
        .unwrap()
        .1;
    let browse_times = &times
        .iter()
        .find(|(s, _)| *s == Strategy::Browse)
        .unwrap()
        .1;
    let compound_vs_browse_p = welch_t(compound_times, browse_times)
        .map(|t| t.p)
        .unwrap_or(1.0);

    let mut table = Table::new(
        "Cycles and simulated time to locate the desired item",
        vec!["Strategy", "Mean cycles", "Mean time", "Success", "n"],
    );
    for r in &strategies {
        table.push_row(vec![
            r.strategy.name().to_owned(),
            format!("{:.2}", r.cycles.mean),
            format!("{:.1}", r.time.mean),
            format!("{:.0}%", r.success_rate * 100.0),
            format!("{}", r.cycles.n),
        ]);
    }
    let mut report = StudyReport::new("E-EFC", "Efficiency: conversational critiquing");
    report.tables.push(table);
    report.notes.push(format!(
        "compound-vs-browse time Welch p = {compound_vs_browse_p:.4} (cycles are the \
         sturdier measure; Pu & Chen'06 found completion-time differences can be ns)"
    ));

    Outcome {
        strategies,
        compound_vs_browse_p,
        report,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn outcome() -> Outcome {
        // 60 shoppers keeps the weakest strategy's success-rate estimate
        // comfortably clear of the 0.7 floor across RNG streams.
        run(&Config {
            n_shoppers: 60,
            ..Config::default()
        })
    }

    #[test]
    fn critiquing_needs_fewer_cycles_than_browsing() {
        let o = outcome();
        let browse = o.result(Strategy::Browse).cycles.mean;
        assert!(
            o.result(Strategy::CompoundCritiquing).cycles.mean < browse,
            "compound {:.1} must beat browse {:.1}",
            o.result(Strategy::CompoundCritiquing).cycles.mean,
            browse
        );
        assert!(o.result(Strategy::UnitCritiquing).cycles.mean < browse);
    }

    #[test]
    fn compound_beats_unit_on_cycles() {
        let o = outcome();
        assert!(
            o.result(Strategy::CompoundCritiquing).cycles.mean
                <= o.result(Strategy::UnitCritiquing).cycles.mean,
            "compound {:.2} vs unit {:.2}",
            o.result(Strategy::CompoundCritiquing).cycles.mean,
            o.result(Strategy::UnitCritiquing).cycles.mean
        );
    }

    #[test]
    fn critiquing_saves_total_time() {
        let o = outcome();
        assert!(
            o.result(Strategy::CompoundCritiquing).time.mean < o.result(Strategy::Browse).time.mean,
            "compound time {:.1} must beat browse time {:.1}",
            o.result(Strategy::CompoundCritiquing).time.mean,
            o.result(Strategy::Browse).time.mean
        );
    }

    #[test]
    fn success_rates_are_high() {
        let o = outcome();
        for r in &o.strategies {
            assert!(
                r.success_rate > 0.7,
                "{} success {:.0}%",
                r.strategy.name(),
                r.success_rate * 100.0
            );
        }
    }

    #[test]
    fn deterministic() {
        let a = run(&Config::default());
        let b = run(&Config::default());
        assert_eq!(
            a.result(Strategy::Browse).cycles.mean,
            b.result(Strategy::Browse).cycles.mean
        );
    }
}

//! E-TRA — the transparency task (survey Section 3.1, after Sinha &
//! Swearingen).
//!
//! "Users can also be given the task of influencing the system so that it
//! 'learns' a preference for a particular type of item, e.g. comedies in
//! a movie recommender system. Task correctness and time to complete such
//! a task would then be relevant quantitative measures."
//!
//! Each participant must teach a content-based recommender to prefer a
//! target genre. Participants who *understand* the mechanism (probability
//! given by their comprehension of the active explanation interface) rate
//! same-genre items highly and counter-rate others; participants who do
//! not follow a misguided strategy (the Mr. Iwanyk pattern: rating loosely
//! related items and hoping). Success = the target genre dominates the
//! post-task top-10.

use super::{movie_world, participants};
use crate::report::{StudyReport, Table};
use crate::stats::{summarize, Summary};
use exrec_algo::content::{TfIdfConfig, TfIdfModel};
use exrec_algo::{Ctx, Recommender};
use exrec_core::interfaces::InterfaceId;
use rand::RngExt;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Study configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct Config {
    /// Master seed.
    pub seed: u64,
    /// Participants per condition.
    pub n_participants: usize,
    /// Ratings each participant may enter during the task.
    pub rating_budget: usize,
    /// Conditions compared.
    pub interfaces: Vec<InterfaceId>,
    /// Target genre the system must "learn".
    pub target_genre: String,
}

impl Default for Config {
    fn default() -> Self {
        Self {
            seed: 0xE6,
            n_participants: 40,
            rating_budget: 8,
            interfaces: vec![
                InterfaceId::NoExplanation,
                InterfaceId::TopicProfile,
                InterfaceId::DetailedProcess,
            ],
            target_genre: "comedy".to_owned(),
        }
    }
}

/// Per-condition aggregates.
#[derive(Debug, Clone)]
pub struct ConditionResult {
    /// The interface condition.
    pub interface: InterfaceId,
    /// Fraction of participants whose top-10 became target-dominated.
    pub success_rate: f64,
    /// Task time (ticks), successful participants only.
    pub time: Summary,
    /// Fraction of the top-10 in the target genre, all participants.
    pub genre_share: Summary,
}

/// Study result.
#[derive(Debug, Clone)]
pub struct Outcome {
    /// Per-condition results.
    pub conditions: Vec<ConditionResult>,
    /// The printable report.
    pub report: StudyReport,
}

impl Outcome {
    /// Lookup by condition.
    pub fn result(&self, id: InterfaceId) -> &ConditionResult {
        self.conditions
            .iter()
            .find(|c| c.interface == id)
            .expect("condition present")
    }
}

/// Runs the study.
pub fn run(config: &Config) -> Outcome {
    let world = movie_world(config.seed, config.n_participants + 10, 60);
    let mut rng = ChaCha8Rng::seed_from_u64(config.seed);
    let users = participants(&world, config.n_participants, 0, &mut rng);
    let scale = *world.ratings.scale();

    let mut conditions = Vec::new();
    for &interface in &config.interfaces {
        let descriptor = interface.descriptor();
        let mut successes = 0usize;
        let mut times = Vec::new();
        let mut shares = Vec::new();

        for user in &users {
            // Fresh copy of the world's ratings so participants don't
            // contaminate each other.
            let mut ratings = world.ratings.clone();
            let understands = rng.random_range(0.0..1.0) < user.comprehension(&descriptor);
            let mut time = 0u64;

            // Candidate pools.
            let target_items: Vec<_> = world
                .catalog
                .iter()
                .filter(|it| it.attrs.cat("genre") == Some(config.target_genre.as_str()))
                .map(|it| it.id)
                .collect();
            let other_items: Vec<_> = world
                .catalog
                .iter()
                .filter(|it| it.attrs.cat("genre") != Some(config.target_genre.as_str()))
                .map(|it| it.id)
                .collect();

            for k in 0..config.rating_budget {
                // Reading the explanation screen each step costs time.
                time += user.reading_time(descriptor.cognitive_load.mul_add(20.0, 1.0) as u64);
                let (item, value) = if understands {
                    // Correct strategy: push target genre up, others down
                    // (rating only half the budget on targets keeps some
                    // target items unrated and recommendable).
                    if k % 2 == 0 {
                        (target_items[(k / 2) % target_items.len()], scale.max())
                    } else {
                        (other_items[k % other_items.len()], scale.min())
                    }
                } else {
                    // Misguided: rate arbitrary items highly, teaching
                    // the system nothing about the target genre.
                    (other_items[(k * 3 + 1) % other_items.len()], scale.max())
                };
                let _ = ratings.rate(user.id, item, value);
                time += 2;
            }

            // Measure what the system learned. Top-5: the task rates
            // (consumes) several target items, so a wide window would
            // saturate on the few that remain.
            let ctx = Ctx::new(&ratings, &world.catalog);
            let model = TfIdfModel::fit(&ctx, TfIdfConfig::default()).expect("catalog non-empty");
            let top = model.recommend(&ctx, user.id, 5);
            let hits = top
                .iter()
                .filter(|s| {
                    world
                        .catalog
                        .get(s.item)
                        .map(|it| it.attrs.cat("genre") == Some(config.target_genre.as_str()))
                        .unwrap_or(false)
                })
                .count();
            let share = if top.is_empty() {
                0.0
            } else {
                hits as f64 / top.len() as f64
            };
            shares.push(share);
            if share >= 0.6 {
                successes += 1;
                times.push(time as f64);
            }
        }

        conditions.push(ConditionResult {
            interface,
            success_rate: successes as f64 / users.len() as f64,
            time: summarize(&times),
            genre_share: summarize(&shares),
        });
    }

    let mut table = Table::new(
        "Teach-the-system task: correctness (3-of-top-5) and time",
        vec!["Interface", "Success", "Genre share", "Time (success only)"],
    );
    for c in &conditions {
        table.push_row(vec![
            c.interface.descriptor().name.to_owned(),
            format!("{:.0}%", c.success_rate * 100.0),
            format!("{:.2}", c.genre_share.mean),
            format!("{:.1}", c.time.mean),
        ]);
    }
    let mut report = StudyReport::new("E-TRA", "Transparency: teach the system a preference");
    report.tables.push(table);
    report.notes.push(
        "Transparency raises correctness but costs reading time (Section 3.8 trade-off)."
            .to_owned(),
    );

    Outcome { conditions, report }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn outcome() -> Outcome {
        run(&Config {
            n_participants: 40,
            ..Config::default()
        })
    }

    #[test]
    fn explanations_raise_task_success() {
        let o = outcome();
        let none = o.result(InterfaceId::NoExplanation).success_rate;
        let topic = o.result(InterfaceId::TopicProfile).success_rate;
        assert!(
            topic > none,
            "topic profile success {topic:.2} must exceed no-explanation {none:.2}"
        );
    }

    #[test]
    fn explanations_raise_genre_share() {
        let o = outcome();
        assert!(
            o.result(InterfaceId::DetailedProcess).genre_share.mean
                > o.result(InterfaceId::NoExplanation).genre_share.mean
        );
    }

    #[test]
    fn transparency_costs_time() {
        let o = outcome();
        let topic = o.result(InterfaceId::TopicProfile);
        let detailed = o.result(InterfaceId::DetailedProcess);
        if topic.time.n > 3 && detailed.time.n > 3 {
            assert!(
                detailed.time.mean > topic.time.mean,
                "heavier interface must cost more time: {:.1} vs {:.1}",
                detailed.time.mean,
                topic.time.mean
            );
        }
    }

    #[test]
    fn correct_strategy_actually_teaches() {
        // Participants who understood should hit above chance. "Chance"
        // for this simulation is the NoExplanation control, where hardly
        // anyone comprehends the system: the explained condition must
        // shift the whole share distribution past it — and also clear an
        // absolute floor, so a regression that collapses comprehension in
        // both conditions cannot pass on a near-zero control.
        let o = outcome();
        let topic = o.result(InterfaceId::TopicProfile).genre_share.mean;
        let none = o.result(InterfaceId::NoExplanation).genre_share.mean;
        assert!(
            topic > none,
            "topic share {topic:.2} must beat the control's {none:.2}"
        );
        assert!(
            topic > 0.2,
            "topic share {topic:.2} must clear the absolute comprehension floor of 0.2"
        );
    }

    #[test]
    fn deterministic() {
        let a = run(&Config::default());
        let b = run(&Config::default());
        assert_eq!(
            a.result(InterfaceId::TopicProfile).success_rate,
            b.result(InterfaceId::TopicProfile).success_rate
        );
    }
}

//! E-EFK — satisfaction vs. promotion (survey Section 3.5, after Bilgic &
//! Mooney, IUI'05 "Explaining recommendations: satisfaction vs.
//! promotion").
//!
//! Protocol: participants estimate how much they will like a recommended
//! book after seeing only the explanation (pre-consumption rating), then
//! "read" the book and rate it again (post-consumption). The gap
//! `pre − post` measures over- or under-selling. The published shape:
//!
//! 1. the neighbours histogram *promotes* — a clearly positive gap;
//! 2. keyword- and influence-style explanations are more *effective* —
//!    their |gap| is significantly smaller.

use super::participants;
use crate::report::{StudyReport, Table};
use crate::stats::{summarize, welch_t, Summary};
use exrec_algo::user_knn::{UserKnn, UserKnnConfig};
use exrec_algo::{Ctx, Recommender};
use exrec_core::interfaces::InterfaceId;
use exrec_data::synth::{books, WorldConfig};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Study configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct Config {
    /// Master seed.
    pub seed: u64,
    /// Number of participants.
    pub n_participants: usize,
    /// Books evaluated per participant per interface.
    pub n_items: usize,
    /// The interfaces compared (the original compared a neighbours
    /// histogram against keyword and influence styles).
    pub interfaces: Vec<InterfaceId>,
}

impl Default for Config {
    fn default() -> Self {
        Self {
            seed: 0xE3,
            n_participants: 40,
            n_items: 4,
            interfaces: vec![
                InterfaceId::ClusteredHistogram,
                InterfaceId::KeywordMatch,
                InterfaceId::InfluenceList,
                InterfaceId::NoExplanation,
            ],
        }
    }
}

/// Per-interface gap summary.
#[derive(Debug, Clone)]
pub struct InterfaceGap {
    /// The interface.
    pub interface: InterfaceId,
    /// Summary of `pre − post` gaps (stars).
    pub gap: Summary,
    /// Summary of `|pre − post|` (absolute effectiveness error).
    pub abs_gap: Summary,
}

/// Study result.
#[derive(Debug, Clone)]
pub struct Outcome {
    /// Per-interface results in config order.
    pub gaps: Vec<InterfaceGap>,
    /// Welch-t p for histogram-vs-influence absolute gap.
    pub histogram_vs_influence_p: f64,
    /// The printable report.
    pub report: StudyReport,
}

impl Outcome {
    /// Signed gap of an interface.
    pub fn gap_of(&self, id: InterfaceId) -> f64 {
        self.gaps
            .iter()
            .find(|g| g.interface == id)
            .map(|g| g.gap.mean)
            .unwrap_or(f64::NAN)
    }

    /// Absolute gap of an interface.
    pub fn abs_gap_of(&self, id: InterfaceId) -> f64 {
        self.gaps
            .iter()
            .find(|g| g.interface == id)
            .map(|g| g.abs_gap.mean)
            .unwrap_or(f64::NAN)
    }
}

/// Runs the study.
pub fn run(config: &Config) -> Outcome {
    let world = books::generate(&WorldConfig {
        n_users: config.n_participants * 2,
        n_items: 60,
        density: 0.25,
        seed: config.seed,
        ..WorldConfig::default()
    });
    let mut rng = ChaCha8Rng::seed_from_u64(config.seed);
    let users = participants(&world, config.n_participants, 3, &mut rng);
    let ctx = Ctx::new(&world.ratings, &world.catalog);
    let model = UserKnn::new(UserKnnConfig {
        k: 5,
        significance: 0,
        ..UserKnnConfig::default()
    })
    .expect("valid k");

    let mut samples: Vec<(InterfaceId, Vec<f64>, Vec<f64>)> = config
        .interfaces
        .iter()
        .map(|&id| (id, Vec::new(), Vec::new()))
        .collect();

    for user in &users {
        // Recommended books: top-of-list predictions carry the usual
        // positive selection bias (winner's curse), which is exactly the
        // over-selling pressure the study measures.
        let recs = model.recommend(&ctx, user.id, config.n_items);
        for scored in &recs {
            for (id, gaps, abs_gaps) in &mut samples {
                let d = id.descriptor();
                let pre = user.estimate_rating(scored.item, scored.prediction.score, &d, &mut rng);
                let post = user.post_consumption_rating(scored.item, &mut rng);
                gaps.push(pre - post);
                abs_gaps.push((pre - post).abs());
            }
        }
    }

    let gaps: Vec<InterfaceGap> = samples
        .iter()
        .map(|(id, g, a)| InterfaceGap {
            interface: *id,
            gap: summarize(g),
            abs_gap: summarize(a),
        })
        .collect();

    let hist = samples
        .iter()
        .find(|(id, _, _)| *id == InterfaceId::ClusteredHistogram);
    let infl = samples
        .iter()
        .find(|(id, _, _)| *id == InterfaceId::InfluenceList);
    let histogram_vs_influence_p = match (hist, infl) {
        (Some((_, _, h)), Some((_, _, i))) => welch_t(h, i).map(|t| t.p).unwrap_or(1.0),
        _ => 1.0,
    };

    let mut table = Table::new(
        "Pre-consumption minus post-consumption rating (stars)",
        vec!["Interface", "Mean gap", "Mean |gap|", "95% CI", "n"],
    );
    for g in &gaps {
        table.push_row(vec![
            g.interface.descriptor().name.to_owned(),
            format!("{:+.3}", g.gap.mean),
            format!("{:.3}", g.abs_gap.mean),
            format!("±{:.3}", g.gap.ci95),
            format!("{}", g.gap.n),
        ]);
    }
    let mut report = StudyReport::new("E-EFK", "Effectiveness: satisfaction vs promotion");
    report.tables.push(table);
    report.notes.push(format!(
        "histogram-vs-influence |gap| Welch p = {histogram_vs_influence_p:.4}"
    ));

    Outcome {
        gaps,
        histogram_vs_influence_p,
        report,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn outcome() -> Outcome {
        run(&Config {
            n_participants: 35,
            ..Config::default()
        })
    }

    #[test]
    fn histogram_promotes() {
        let o = outcome();
        assert!(
            o.gap_of(InterfaceId::ClusteredHistogram) > 0.1,
            "histogram gap {:+.3} must be clearly positive (over-selling)",
            o.gap_of(InterfaceId::ClusteredHistogram)
        );
    }

    #[test]
    fn content_explanations_are_more_effective() {
        let o = outcome();
        let hist = o.abs_gap_of(InterfaceId::ClusteredHistogram);
        assert!(
            o.abs_gap_of(InterfaceId::InfluenceList) < hist,
            "influence |gap| {:.3} must beat histogram {:.3}",
            o.abs_gap_of(InterfaceId::InfluenceList),
            hist
        );
        assert!(o.abs_gap_of(InterfaceId::KeywordMatch) < hist);
    }

    #[test]
    fn difference_is_significant() {
        let o = outcome();
        assert!(
            o.histogram_vs_influence_p < 0.05,
            "p = {}",
            o.histogram_vs_influence_p
        );
    }

    #[test]
    fn histogram_oversells_more_than_control() {
        let o = outcome();
        assert!(
            o.gap_of(InterfaceId::ClusteredHistogram) > o.gap_of(InterfaceId::NoExplanation),
            "persuasive explanation must oversell beyond the bare prediction"
        );
    }

    #[test]
    fn report_rows_match_interfaces() {
        let o = outcome();
        assert_eq!(o.report.tables[0].rows.len(), 4);
    }
}

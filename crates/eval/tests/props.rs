//! Property tests for the statistics toolbox: p-values are probabilities,
//! tests are symmetric where they should be, correlations are invariant
//! where theory says so.

use exrec_eval::stats::*;
use proptest::prelude::*;

proptest! {
    #[test]
    fn p_values_are_probabilities(t in -50.0f64..50.0, df in 1.0f64..200.0) {
        let p = t_two_sided_p(t, df);
        prop_assert!((0.0..=1.0).contains(&p), "p={p}");
        // Symmetric in t.
        prop_assert!((p - t_two_sided_p(-t, df)).abs() < 1e-9);
    }

    #[test]
    fn larger_t_means_smaller_p(t in 0.1f64..10.0, df in 2.0f64..100.0) {
        prop_assert!(t_two_sided_p(t + 0.5, df) <= t_two_sided_p(t, df) + 1e-9);
    }

    #[test]
    fn welch_is_antisymmetric(
        a in prop::collection::vec(0.0f64..10.0, 3..20),
        b in prop::collection::vec(0.0f64..10.0, 3..20),
    ) {
        if let (Some(ab), Some(ba)) = (welch_t(&a, &b), welch_t(&b, &a)) {
            prop_assert!((ab.statistic + ba.statistic).abs() < 1e-9);
            prop_assert!((ab.p - ba.p).abs() < 1e-9);
        }
    }

    #[test]
    fn welch_on_identical_samples_is_insignificant(
        a in prop::collection::vec(0.0f64..10.0, 4..20),
    ) {
        if let Some(r) = welch_t(&a, &a) {
            prop_assert!(r.statistic.abs() < 1e-9);
            prop_assert!(r.p > 0.99);
        }
    }

    #[test]
    fn spearman_invariant_under_monotone_transform(
        xs in prop::collection::vec(-10.0f64..10.0, 4..20),
        ys in prop::collection::vec(-10.0f64..10.0, 4..20),
    ) {
        let n = xs.len().min(ys.len());
        let (xs, ys) = (&xs[..n], &ys[..n]);
        if let Some(base) = spearman(xs, ys) {
            // exp is strictly monotone.
            let xt: Vec<f64> = xs.iter().map(|x| x.exp()).collect();
            let transformed = spearman(&xt, ys).unwrap();
            prop_assert!((base - transformed).abs() < 1e-9);
        }
    }

    #[test]
    fn pearson_invariant_under_positive_affine(
        xs in prop::collection::vec(-10.0f64..10.0, 4..20),
        ys in prop::collection::vec(-10.0f64..10.0, 4..20),
        a in 0.1f64..5.0,
        b in -10.0f64..10.0,
    ) {
        let n = xs.len().min(ys.len());
        let (xs, ys) = (&xs[..n], &ys[..n]);
        if let Some(base) = pearson(xs, ys) {
            let xt: Vec<f64> = xs.iter().map(|x| a * x + b).collect();
            if let Some(t) = pearson(&xt, ys) {
                prop_assert!((base - t).abs() < 1e-6);
            }
        }
    }

    #[test]
    fn summary_mean_within_minmax(xs in prop::collection::vec(-100.0f64..100.0, 1..50)) {
        let s = summarize(&xs);
        let lo = xs.iter().cloned().fold(f64::MAX, f64::min);
        let hi = xs.iter().cloned().fold(f64::MIN, f64::max);
        prop_assert!(s.mean >= lo - 1e-9 && s.mean <= hi + 1e-9);
        prop_assert!(s.sd >= 0.0);
        prop_assert!(s.ci95 >= 0.0);
    }

    #[test]
    fn mann_whitney_detects_clear_separation(shift in 5.0f64..20.0) {
        let a: Vec<f64> = (0..15).map(|k| k as f64 * 0.1).collect();
        let b: Vec<f64> = (0..15).map(|k| k as f64 * 0.1 + shift).collect();
        let r = mann_whitney_u(&a, &b).unwrap();
        prop_assert!(r.p < 0.01, "p={}", r.p);
    }

    #[test]
    fn cohens_d_scales_with_separation(gap in 0.5f64..5.0) {
        let a: Vec<f64> = (0..20).map(|k| (k % 5) as f64 * 0.2).collect();
        let b: Vec<f64> = a.iter().map(|x| x + gap).collect();
        let d = cohens_d(&b, &a).unwrap();
        prop_assert!(d > 0.0);
        let b2: Vec<f64> = a.iter().map(|x| x + gap + 1.0).collect();
        prop_assert!(cohens_d(&b2, &a).unwrap() > d);
    }
}

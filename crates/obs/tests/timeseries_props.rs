//! Property tests for the time-series engine and the windowed-delta
//! histogram math.
//!
//! The unit tests in `timeseries.rs` pin individual behaviours; these
//! properties sweep the two invariants the whole design rests on:
//!
//! 1. **Windowed delta ≡ direct recording** — summarizing the bucket
//!    delta between two cumulative [`HistogramRaw`] snapshots must be
//!    *identical* (count, mean, every quantile) to summarizing a
//!    histogram that recorded only the window's samples. If this drifts
//!    the "p99 this interval" numbers on every dashboard are fiction.
//! 2. **Ring wraparound** — however many ticks fire, each series
//!    retains exactly `min(ticks, retention)` points, they are the
//!    *newest* ticks, epochs are strictly increasing, and counter
//!    deltas over the retained window never exceed the counter total.

use exrec_obs::timeseries::{TimeSeries, TsConfig};
use exrec_obs::{Histogram, Metrics};
use proptest::prelude::*;

proptest! {
    /// Delta of cumulative snapshots ≡ direct recording of the suffix.
    #[test]
    fn windowed_delta_equals_direct_recording(
        prefix in prop::collection::vec(0u64..=1 << 45, 0..200),
        suffix in prop::collection::vec(0u64..=1 << 45, 0..200),
    ) {
        let cumulative = Histogram::default();
        let direct = Histogram::default();
        for &ns in &prefix {
            cumulative.record_ns(ns);
        }
        let before = cumulative.raw();
        for &ns in &suffix {
            cumulative.record_ns(ns);
            direct.record_ns(ns);
        }
        let windowed = cumulative.raw().since(&before);
        let expected = direct.summarize();
        prop_assert_eq!(windowed, expected);
    }

    /// A window against a fresh (all-zero) snapshot is the histogram's
    /// own summary: first-tick behaviour.
    #[test]
    fn window_from_zero_is_cumulative_summary(
        samples in prop::collection::vec(0u64..=1 << 45, 0..200),
    ) {
        let h = Histogram::default();
        let zero = Histogram::default().raw();
        for &ns in &samples {
            h.record_ns(ns);
        }
        prop_assert_eq!(h.raw().since(&zero), h.summarize());
    }

    /// Ring wraparound: newest-K retention, strictly increasing epochs,
    /// and delta conservation across the retained window.
    #[test]
    fn ring_retains_newest_points_in_order(
        retention in 1usize..12,
        increments in prop::collection::vec(0u64..50, 1..40),
    ) {
        let m = Metrics::new();
        let c = m.counter("events");
        let ts = TimeSeries::new(TsConfig {
            interval_ns: 1_000_000_000,
            retention,
        });
        let mut total = 0u64;
        for (i, &n) in increments.iter().enumerate() {
            c.add(n);
            total += n;
            ts.sample_at(&m, (i as u64 + 1) * 1_000_000_000);
        }
        let snap = ts.snapshot();
        let series = &snap.counters["events"];
        let ticks = increments.len();
        prop_assert_eq!(series.len(), ticks.min(retention));
        // The retained points are exactly the newest ticks, in order.
        let first_kept = ticks - series.len();
        for (j, point) in series.iter().enumerate() {
            prop_assert_eq!(point.epoch, (first_kept + j) as u64 + 1);
            prop_assert_eq!(point.delta, increments[first_kept + j]);
        }
        // Conservation: retained deltas never exceed the counter total.
        let retained: u64 = series.iter().map(|p| p.delta).sum();
        prop_assert!(retained <= total);
        prop_assert_eq!(snap.ticks, ticks as u64);
    }

    /// The due/claim protocol admits exactly one sample per interval no
    /// matter how the clock lands inside it.
    #[test]
    fn at_most_one_tick_per_epoch(
        offsets in prop::collection::vec(1u64..30_000, 1..100),
    ) {
        let m = Metrics::new();
        m.counter("x").incr();
        let ts = TimeSeries::new(TsConfig {
            interval_ns: 1_000,
            retention: 256,
        });
        let mut clock = 0u64;
        let mut sampled_epochs = Vec::new();
        for &step in &offsets {
            clock += step;
            if ts.maybe_sample_at(&m, clock).is_some() {
                sampled_epochs.push(clock / 1_000);
            }
        }
        // Epochs strictly increase: no epoch ever sampled twice.
        for pair in sampled_epochs.windows(2) {
            prop_assert!(pair[0] < pair[1], "epoch {} sampled twice", pair[1]);
        }
        prop_assert_eq!(ts.snapshot().ticks, sampled_epochs.len() as u64);
    }
}

//! Bounded-ring time-series sampling over the metrics registry.
//!
//! Every signal in [`Metrics`] is cumulative-since-start
//! (counters, histogram bucket totals) or last-write-wins (gauges) —
//! fine for "what is the state now", useless for "what changed in the
//! last five minutes". [`TimeSeries`] closes that gap: every
//! `interval_ns` it cuts one snapshot of the whole registry and derives
//! *per-interval* points — counters become rates (delta over elapsed
//! wall time), gauges become sampled values, and histograms become
//! **windowed-delta** digests (per-bucket subtraction between
//! consecutive [`HistogramRaw`] snapshots, summarized by
//! [`HistogramRaw::since`]) — each appended to a bounded ring per
//! series, oldest evicted first.
//!
//! There is no sampler thread. Callers on any request path invoke
//! [`TimeSeries::maybe_sample`], which is two relaxed atomic reads when
//! no tick is due — zero allocation, no lock — and claims the tick by
//! CAS when one is. The serving edge drives it cooperatively from its
//! worker pool (workers tick on queue-pop timeouts and after each
//! connection), so sampling drains with the pool on SIGTERM.
//!
//! Points are stamped with an `epoch` (interval index since process
//! start), so a stall — nobody called in for three intervals — shows up
//! as a gap in the epoch sequence instead of silently stretching the
//! window; rates stay honest because deltas divide by *actual* elapsed
//! time, not the nominal interval.

use std::collections::{BTreeMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use serde::{Deserialize, Serialize};

use crate::metrics::{HistogramRaw, Metrics};
use crate::trace;

/// Wire-schema version stamped into [`TsSnapshot`]; bump on breaking
/// shape changes so pollers (obs_top, loadgen) can refuse mismatches.
pub const TS_SCHEMA: u32 = 1;

/// Tuning for one [`TimeSeries`] engine.
#[derive(Debug, Clone)]
pub struct TsConfig {
    /// Sampling interval in nanoseconds. Each elapsed interval is one
    /// epoch; a tick due-check rounds down to the epoch boundary.
    pub interval_ns: u64,
    /// Points retained per series; the oldest is evicted when full.
    pub retention: usize,
}

impl Default for TsConfig {
    fn default() -> Self {
        TsConfig {
            interval_ns: 5_000_000_000, // 5s
            retention: 120,             // 10 minutes at 5s
        }
    }
}

/// One per-interval point derived from a cumulative counter.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RatePoint {
    /// Interval index since process start.
    pub epoch: u64,
    /// Counter increase over the window.
    pub delta: u64,
    /// `delta` divided by the *actual* elapsed seconds since the
    /// previous tick (which may span several epochs if ticks stalled).
    pub rate_per_sec: f64,
}

/// One sampled gauge value.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GaugePoint {
    /// Interval index since process start.
    pub epoch: u64,
    /// Gauge value at the tick.
    pub value: f64,
}

/// One windowed histogram digest: the distribution of samples recorded
/// *during* the interval, via bucket subtraction of consecutive
/// cumulative snapshots.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HistPoint {
    /// Interval index since process start.
    pub epoch: u64,
    /// Samples recorded in the window.
    pub count: u64,
    /// `count` over actual elapsed seconds.
    pub rate_per_sec: f64,
    /// Mean of the window's samples, nanoseconds.
    pub mean_ns: f64,
    /// Windowed median estimate (bucket upper bound), nanoseconds.
    pub p50_ns: u64,
    /// Windowed 95th percentile, nanoseconds.
    pub p95_ns: u64,
    /// Windowed 99th percentile, nanoseconds.
    pub p99_ns: u64,
}

/// Serializable dump of every retained series — the body of
/// `GET /debug/timeseries`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TsSnapshot {
    /// Wire-schema version ([`TS_SCHEMA`]).
    pub schema: u32,
    /// Sampling interval, nanoseconds.
    pub interval_ns: u64,
    /// Ring capacity per series.
    pub retention: usize,
    /// Ticks taken since start.
    pub ticks: u64,
    /// Counter-derived rate series by metric name.
    pub counters: BTreeMap<String, Vec<RatePoint>>,
    /// Sampled gauge series by metric name.
    pub gauges: BTreeMap<String, Vec<GaugePoint>>,
    /// Windowed histogram series by metric name.
    pub histograms: BTreeMap<String, Vec<HistPoint>>,
}

/// The newest point per series from one tick — handed to the watchdog
/// so detectors see exactly what was just appended.
#[derive(Debug, Clone, PartialEq)]
pub struct Tick {
    /// Interval index of this tick.
    pub epoch: u64,
    /// Process-relative offset of the tick, nanoseconds.
    pub offset_ns: u64,
    /// Newest counter point per series.
    pub counters: BTreeMap<String, RatePoint>,
    /// Newest gauge point per series.
    pub gauges: BTreeMap<String, GaugePoint>,
    /// Newest histogram point per series.
    pub histograms: BTreeMap<String, HistPoint>,
}

/// Which statistic of a series a detector reads from a [`Tick`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
#[serde(rename_all = "snake_case")]
pub enum Stat {
    /// Per-second rate (counters and histograms).
    Rate,
    /// Sampled value (gauges).
    Value,
    /// Windowed p50, nanoseconds (histograms).
    P50,
    /// Windowed p99, nanoseconds (histograms).
    P99,
    /// Windowed sample count (histograms).
    Count,
}

impl Tick {
    /// Reads `stat` of the series named `metric`, if present this tick.
    pub fn value(&self, metric: &str, stat: Stat) -> Option<f64> {
        match stat {
            Stat::Value => self.gauges.get(metric).map(|p| p.value),
            Stat::Rate => self
                .counters
                .get(metric)
                .map(|p| p.rate_per_sec)
                .or_else(|| self.histograms.get(metric).map(|p| p.rate_per_sec)),
            Stat::P50 => self.histograms.get(metric).map(|p| p.p50_ns as f64),
            Stat::P99 => self.histograms.get(metric).map(|p| p.p99_ns as f64),
            Stat::Count => self.histograms.get(metric).map(|p| p.count as f64),
        }
    }
}

/// A bounded ring of points.
#[derive(Debug, Clone)]
struct Ring<T> {
    points: VecDeque<T>,
    capacity: usize,
}

impl<T: Clone> Ring<T> {
    fn new(capacity: usize) -> Self {
        Ring {
            points: VecDeque::with_capacity(capacity.min(1024)),
            capacity: capacity.max(1),
        }
    }

    fn push(&mut self, point: T) {
        if self.points.len() == self.capacity {
            self.points.pop_front();
        }
        self.points.push_back(point);
    }

    fn to_vec(&self) -> Vec<T> {
        self.points.iter().cloned().collect()
    }
}

/// Mutable sampling state, touched only while holding the tick claim.
#[derive(Debug, Default)]
struct TsState {
    /// Offset of the previous tick, for actual-elapsed rate math.
    last_offset_ns: Option<u64>,
    /// Previous cumulative counter values.
    prev_counters: BTreeMap<String, u64>,
    /// Previous cumulative histogram snapshots.
    prev_hists: BTreeMap<String, HistogramRaw>,
    counters: BTreeMap<String, Ring<RatePoint>>,
    gauges: BTreeMap<String, Ring<GaugePoint>>,
    histograms: BTreeMap<String, Ring<HistPoint>>,
    ticks: u64,
}

/// The sampling engine. Share behind an `Arc`; see the module docs for
/// the cooperative driving model.
#[derive(Debug)]
pub struct TimeSeries {
    config: TsConfig,
    /// Process-relative offset (ns) at which the next tick is due. A
    /// due-check is one relaxed load; claiming the tick is one CAS.
    next_due_ns: AtomicU64,
    state: Mutex<TsState>,
}

/// Recovers a poisoned guard; ring state is always structurally valid.
macro_rules! lock {
    ($guard:expr) => {
        $guard.unwrap_or_else(|poisoned| poisoned.into_inner())
    };
}

impl TimeSeries {
    /// A fresh engine; the first tick is due one interval from now.
    pub fn new(config: TsConfig) -> Self {
        let interval = config.interval_ns.max(1);
        let now = trace::process_offset_ns();
        TimeSeries {
            next_due_ns: AtomicU64::new(now.saturating_add(interval)),
            config: TsConfig {
                interval_ns: interval,
                retention: config.retention.max(1),
            },
            state: Mutex::new(TsState::default()),
        }
    }

    /// The engine's tuning.
    pub fn config(&self) -> &TsConfig {
        &self.config
    }

    /// Whether a tick is due — one relaxed load, no allocation. Lets
    /// callers skip pre-tick work (derived-gauge refreshes) cheaply.
    pub fn due(&self) -> bool {
        trace::process_offset_ns() >= self.next_due_ns.load(Ordering::Relaxed)
    }

    /// Takes a tick if one is due, claiming it by CAS so exactly one of
    /// any number of concurrent callers samples. Returns the tick's
    /// newest points when this caller won, `None` otherwise. The
    /// not-due path is two relaxed atomic reads and nothing else.
    pub fn maybe_sample(&self, metrics: &Metrics) -> Option<Tick> {
        self.maybe_sample_at(metrics, trace::process_offset_ns())
    }

    /// [`TimeSeries::maybe_sample`] against an explicit clock, for
    /// deterministic tests.
    pub fn maybe_sample_at(&self, metrics: &Metrics, offset_ns: u64) -> Option<Tick> {
        let due = self.next_due_ns.load(Ordering::Relaxed);
        if offset_ns < due {
            return None;
        }
        // Next deadline is the first epoch boundary after `offset_ns`,
        // so a stalled sampler skips epochs rather than replaying them.
        let interval = self.config.interval_ns;
        let next = (offset_ns / interval + 1).saturating_mul(interval);
        if self
            .next_due_ns
            .compare_exchange(due, next, Ordering::AcqRel, Ordering::Relaxed)
            .is_err()
        {
            return None;
        }
        Some(self.sample_at(metrics, offset_ns))
    }

    /// Cuts one sample unconditionally (tests and forced flushes); the
    /// cooperative entry point is [`TimeSeries::maybe_sample`].
    pub fn sample_at(&self, metrics: &Metrics, offset_ns: u64) -> Tick {
        let epoch = offset_ns / self.config.interval_ns;
        let report = metrics.report();
        let raw_hists = metrics.histograms_raw();
        let mut state = lock!(self.state.lock());
        let elapsed_ns = match state.last_offset_ns {
            Some(prev) => offset_ns.saturating_sub(prev).max(1),
            // First tick: the window is everything since process start.
            None => offset_ns.max(1),
        };
        let elapsed_secs = elapsed_ns as f64 / 1e9;
        state.last_offset_ns = Some(offset_ns);
        state.ticks += 1;

        let mut tick = Tick {
            epoch,
            offset_ns,
            counters: BTreeMap::new(),
            gauges: BTreeMap::new(),
            histograms: BTreeMap::new(),
        };

        let retention = self.config.retention;
        for (name, value) in &report.counters {
            let prev = state.prev_counters.insert(name.clone(), *value);
            let delta = value.saturating_sub(prev.unwrap_or(0));
            let point = RatePoint {
                epoch,
                delta,
                rate_per_sec: delta as f64 / elapsed_secs,
            };
            state
                .counters
                .entry(name.clone())
                .or_insert_with(|| Ring::new(retention))
                .push(point.clone());
            tick.counters.insert(name.clone(), point);
        }
        for (name, value) in &report.gauges {
            let point = GaugePoint {
                epoch,
                value: *value,
            };
            state
                .gauges
                .entry(name.clone())
                .or_insert_with(|| Ring::new(retention))
                .push(point.clone());
            tick.gauges.insert(name.clone(), point);
        }
        for (name, raw) in raw_hists {
            let window = match state.prev_hists.get(&name) {
                Some(prev) => raw.since(prev),
                None => raw.since(&HistogramRaw {
                    buckets: Vec::new(),
                    count: 0,
                    sum_ns: 0,
                }),
            };
            let point = HistPoint {
                epoch,
                count: window.count,
                rate_per_sec: window.count as f64 / elapsed_secs,
                mean_ns: window.mean_ns,
                p50_ns: window.p50_ns,
                p95_ns: window.p95_ns,
                p99_ns: window.p99_ns,
            };
            state
                .histograms
                .entry(name.clone())
                .or_insert_with(|| Ring::new(retention))
                .push(point.clone());
            tick.histograms.insert(name.clone(), point);
            state.prev_hists.insert(name, raw);
        }
        let series = state.counters.len() + state.gauges.len() + state.histograms.len();
        drop(state);
        // Self-describing families: visible in /metrics and — one tick
        // later — in the series map itself.
        metrics.counter("ts.ticks").incr();
        metrics.gauge("ts.series").set(series as f64);
        tick
    }

    /// Dumps every retained series.
    pub fn snapshot(&self) -> TsSnapshot {
        let state = lock!(self.state.lock());
        TsSnapshot {
            schema: TS_SCHEMA,
            interval_ns: self.config.interval_ns,
            retention: self.config.retention,
            ticks: state.ticks,
            counters: state
                .counters
                .iter()
                .map(|(k, v)| (k.clone(), v.to_vec()))
                .collect(),
            gauges: state
                .gauges
                .iter()
                .map(|(k, v)| (k.clone(), v.to_vec()))
                .collect(),
            histograms: state
                .histograms
                .iter()
                .map(|(k, v)| (k.clone(), v.to_vec()))
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn engine(interval_ns: u64, retention: usize) -> TimeSeries {
        TimeSeries::new(TsConfig {
            interval_ns,
            retention,
        })
    }

    #[test]
    fn counters_become_rates_over_actual_elapsed_time() {
        let m = Metrics::new();
        let ts = engine(1_000_000_000, 16);
        m.counter("req").add(100);
        ts.sample_at(&m, 1_000_000_000);
        m.counter("req").add(50);
        // The next tick lands 2s later (one epoch skipped): rate must
        // divide by actual elapsed, and the epoch gap must be visible.
        ts.sample_at(&m, 3_000_000_000);
        let snap = ts.snapshot();
        let series = &snap.counters["req"];
        assert_eq!(series.len(), 2);
        assert_eq!(series[0].epoch, 1);
        assert_eq!(series[1].epoch, 3);
        assert_eq!(series[1].delta, 50);
        assert!((series[1].rate_per_sec - 25.0).abs() < 1e-9);
    }

    #[test]
    fn histograms_report_windowed_percentiles_not_cumulative() {
        let m = Metrics::new();
        let ts = engine(1_000_000_000, 16);
        let h = m.histogram("lat");
        for _ in 0..1000 {
            h.record_ns(100); // fast regime
        }
        ts.sample_at(&m, 1_000_000_000);
        for _ in 0..10 {
            h.record_ns(1_000_000); // slow regime, tiny sample count
        }
        ts.sample_at(&m, 2_000_000_000);
        let snap = ts.snapshot();
        let series = &snap.histograms["lat"];
        assert_eq!(series[1].count, 10, "window counts only new samples");
        // Cumulatively p50 would still sit in the fast bucket; the
        // windowed p50 must see only the slow regime.
        assert!(
            series[1].p50_ns >= 1_000_000,
            "windowed p50 {} must reflect the regression",
            series[1].p50_ns
        );
        assert!(series[0].p50_ns <= 128);
    }

    #[test]
    fn ring_evicts_oldest_at_retention() {
        let m = Metrics::new();
        let ts = engine(1_000_000_000, 3);
        let c = m.counter("x");
        for i in 1..=10u64 {
            c.incr();
            ts.sample_at(&m, i * 1_000_000_000);
        }
        let series = &ts.snapshot().counters["x"];
        assert_eq!(series.len(), 3);
        assert_eq!(
            series.iter().map(|p| p.epoch).collect::<Vec<_>>(),
            vec![8, 9, 10]
        );
    }

    #[test]
    fn cas_claim_admits_exactly_one_tick_per_due() {
        let m = Metrics::new();
        m.counter("x").incr();
        let ts = engine(1_000_000_000, 8);
        assert!(ts.maybe_sample_at(&m, 500_000_000).is_none(), "not due");
        assert!(ts.maybe_sample_at(&m, 1_100_000_000).is_some());
        assert!(
            ts.maybe_sample_at(&m, 1_100_000_000).is_none(),
            "same due already claimed"
        );
        assert!(ts.maybe_sample_at(&m, 2_000_000_000).is_some());
        assert_eq!(ts.snapshot().ticks, 2);
    }

    #[test]
    fn tick_value_lookup_reads_every_stat() {
        let m = Metrics::new();
        m.counter("c").add(10);
        m.gauge("g").set(0.5);
        m.histogram("h").record_ns(1000);
        let ts = engine(1_000_000_000, 8);
        let tick = ts.sample_at(&m, 2_000_000_000);
        assert_eq!(tick.value("c", Stat::Rate), Some(5.0));
        assert_eq!(tick.value("g", Stat::Value), Some(0.5));
        assert_eq!(tick.value("h", Stat::Count), Some(1.0));
        assert!(tick.value("h", Stat::P99).unwrap() >= 1000.0);
        assert!(tick.value("h", Stat::Rate).is_some());
        assert_eq!(tick.value("missing", Stat::Value), None);
    }

    #[test]
    fn snapshot_round_trips_through_json() {
        let m = Metrics::new();
        m.counter("c").incr();
        m.gauge("g").set(1.0);
        m.histogram("h").record_ns(10);
        let ts = engine(1_000_000_000, 4);
        ts.sample_at(&m, 1_000_000_000);
        let snap = ts.snapshot();
        let json = serde_json::to_string(&snap).unwrap();
        let back: TsSnapshot = serde_json::from_str(&json).unwrap();
        assert_eq!(back, snap);
        assert_eq!(back.schema, TS_SCHEMA);
    }
}

//! Lock-free metric instruments and the registry that names them.
//!
//! The hot path — a recommender predicting, an interface firing — touches
//! only pre-registered [`Counter`]/[`Histogram`] handles, each a couple of
//! relaxed atomic operations. The registry's internal lock is taken only
//! when a metric is first named or a [`MetricsReport`] snapshot is cut.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock};
use std::time::Duration;

use serde::{Deserialize, Serialize};

/// Number of power-of-two latency buckets. Bucket `i` holds samples in
/// `[2^(i-1), 2^i)` nanoseconds; the last bucket absorbs everything
/// above `2^41` ns (~37 minutes).
pub const N_BUCKETS: usize = 42;

/// Values above this saturate into the top bucket. The clamp bounds each
/// individual sample; the running sum saturates separately (see
/// [`Histogram::record_ns`]) so it cannot wrap either.
pub const MAX_TRACKED_NS: u64 = 1 << (N_BUCKETS - 1);

/// A monotonically increasing event count.
///
/// Cloning is cheap and every clone addresses the same underlying cell.
#[derive(Debug, Clone, Default)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Adds one.
    pub fn incr(&self) {
        self.add(1);
    }

    /// Adds `n`, saturating at `u64::MAX` instead of wrapping.
    pub fn add(&self, n: u64) {
        let prev = self.0.fetch_add(n, Ordering::Relaxed);
        if prev.checked_add(n).is_none() {
            self.0.store(u64::MAX, Ordering::Relaxed);
        }
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A last-write-wins floating-point measurement (throughput, sizes).
#[derive(Debug, Clone, Default)]
pub struct Gauge(Arc<AtomicU64>);

impl Gauge {
    /// Replaces the value.
    pub fn set(&self, value: f64) {
        self.0.store(value.to_bits(), Ordering::Relaxed);
    }

    /// Adds `delta` atomically (CAS loop over the f64 bit pattern), so
    /// occupancy-style gauges can track +1/-1 transitions from many
    /// threads without recomputing the absolute value under a lock.
    pub fn add(&self, delta: f64) {
        let _ = self
            .0
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |bits| {
                Some((f64::from_bits(bits) + delta).to_bits())
            });
    }

    /// Subtracts `delta` atomically; see [`Gauge::add`].
    pub fn sub(&self, delta: f64) {
        self.add(-delta);
    }

    /// Current value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }
}

/// A fixed-bucket latency histogram over nanoseconds.
///
/// Bucket boundaries are powers of two, so recording is one
/// `leading_zeros` plus one relaxed increment. Quantiles are estimated
/// from the cumulative bucket counts, answering with the upper bound of
/// the bucket containing the requested rank — a ≤2× overestimate by
/// construction, which is the right bias for latency budgets.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; N_BUCKETS],
    count: AtomicU64,
    sum_ns: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum_ns: AtomicU64::new(0),
        }
    }
}

/// The bucket index a nanosecond value lands in.
fn bucket_of(ns: u64) -> usize {
    ((64 - ns.leading_zeros()) as usize).min(N_BUCKETS - 1)
}

/// Upper bound (ns) of bucket `i`.
fn bucket_bound(i: usize) -> u64 {
    1u64 << i
}

/// Upper bound (ns) of bucket `i`, for renderers that need the raw
/// bucket grid (e.g. Prometheus exposition).
pub fn bucket_upper_bound(i: usize) -> u64 {
    bucket_bound(i.min(N_BUCKETS - 1))
}

impl Histogram {
    /// Records one sample, saturating above [`MAX_TRACKED_NS`]. The sum
    /// accumulator saturates at `u64::MAX` rather than wrapping, so the
    /// reported mean degrades to an underestimate instead of garbage
    /// after ~4M max-sized samples.
    pub fn record_ns(&self, ns: u64) {
        let ns = ns.min(MAX_TRACKED_NS);
        self.buckets[bucket_of(ns)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        let prev = self.sum_ns.fetch_add(ns, Ordering::Relaxed);
        if prev.checked_add(ns).is_none() {
            self.sum_ns.store(u64::MAX, Ordering::Relaxed);
        }
    }

    /// Records a [`Duration`] sample.
    pub fn record(&self, elapsed: Duration) {
        self.record_ns(elapsed.as_nanos().min(u128::from(u64::MAX)) as u64);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Zeroes every bucket, the sample count and the running sum, so one
    /// histogram handle can be reused across benchmark iterations
    /// without re-registering (the bench harness resets between
    /// single/batch/cached phases).
    ///
    /// The clears are individually atomic but not mutually: a sample
    /// recorded *while* `reset` runs may be split across the boundary
    /// (e.g. land its bucket increment but lose its sum contribution).
    /// Quiesce writers first when an exact zero matters; for bench
    /// phases, which reset between measured regions, that is free.
    pub fn reset(&self) {
        for bucket in &self.buckets {
            bucket.store(0, Ordering::Relaxed);
        }
        self.count.store(0, Ordering::Relaxed);
        self.sum_ns.store(0, Ordering::Relaxed);
    }

    /// Cuts a consistent-enough summary. Concurrent writers may add
    /// samples mid-snapshot; every load is atomic so no value is torn,
    /// and quantile ranks are computed against the bucket total rather
    /// than the sample counter so they stay internally consistent.
    pub fn summarize(&self) -> HistogramSummary {
        let buckets: Vec<u64> = self
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect();
        let total: u64 = buckets.iter().sum();
        let sum_ns = self.sum_ns.load(Ordering::Relaxed);
        let quantile = |q: f64| -> u64 {
            if total == 0 {
                return 0;
            }
            let rank = ((q * total as f64).ceil() as u64).clamp(1, total);
            let mut seen = 0;
            for (i, &c) in buckets.iter().enumerate() {
                seen += c;
                if seen >= rank {
                    return bucket_bound(i);
                }
            }
            bucket_bound(N_BUCKETS - 1)
        };
        HistogramSummary {
            count: total,
            mean_ns: if total == 0 {
                0.0
            } else {
                sum_ns as f64 / total as f64
            },
            p50_ns: quantile(0.50),
            p95_ns: quantile(0.95),
            p99_ns: quantile(0.99),
        }
    }
}

/// Raw per-bucket snapshot of one histogram, for renderers that need
/// the full distribution rather than a digest (Prometheus exposition
/// emits cumulative buckets).
#[derive(Debug, Clone, PartialEq)]
pub struct HistogramRaw {
    /// Per-bucket sample counts; bucket `i` spans `[2^(i-1), 2^i)` ns.
    pub buckets: Vec<u64>,
    /// Total samples (sum of `buckets`, cut from the same snapshot).
    pub count: u64,
    /// Running sum of recorded nanoseconds.
    pub sum_ns: u64,
}

impl Histogram {
    /// Cuts a raw per-bucket snapshot. `count` is derived from the
    /// bucket loads so the snapshot is internally consistent under
    /// concurrent writers.
    pub fn raw(&self) -> HistogramRaw {
        let buckets: Vec<u64> = self
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect();
        let count = buckets.iter().sum();
        HistogramRaw {
            buckets,
            count,
            sum_ns: self.sum_ns.load(Ordering::Relaxed),
        }
    }
}

impl HistogramRaw {
    /// Summarizes the *window* between an earlier cumulative snapshot of
    /// the same histogram and this one, by per-bucket subtraction. The
    /// result is exactly what [`Histogram::summarize`] would report for
    /// a histogram that recorded only the samples landing between the
    /// two snapshots — the primitive behind windowed time-series
    /// percentiles. Subtraction saturates, so a reset (or mismatched)
    /// predecessor degrades to treating this snapshot as the window.
    pub fn since(&self, prev: &HistogramRaw) -> HistogramSummary {
        let n = self.buckets.len();
        let delta: Vec<u64> = (0..n)
            .map(|i| {
                let before = prev.buckets.get(i).copied().unwrap_or(0);
                self.buckets[i].saturating_sub(before)
            })
            .collect();
        let total: u64 = delta.iter().sum();
        let sum_ns = self.sum_ns.saturating_sub(prev.sum_ns);
        let quantile = |q: f64| -> u64 {
            if total == 0 {
                return 0;
            }
            let rank = ((q * total as f64).ceil() as u64).clamp(1, total);
            let mut seen = 0;
            for (i, &c) in delta.iter().enumerate() {
                seen += c;
                if seen >= rank {
                    return bucket_bound(i);
                }
            }
            bucket_bound(N_BUCKETS - 1)
        };
        HistogramSummary {
            count: total,
            mean_ns: if total == 0 {
                0.0
            } else {
                sum_ns as f64 / total as f64
            },
            p50_ns: quantile(0.50),
            p95_ns: quantile(0.95),
            p99_ns: quantile(0.99),
        }
    }
}

/// Point-in-time digest of one histogram.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HistogramSummary {
    /// Samples recorded.
    pub count: u64,
    /// Arithmetic mean in nanoseconds.
    pub mean_ns: f64,
    /// Median estimate (bucket upper bound), nanoseconds.
    pub p50_ns: u64,
    /// 95th-percentile estimate, nanoseconds.
    pub p95_ns: u64,
    /// 99th-percentile estimate, nanoseconds.
    pub p99_ns: u64,
}

/// Registry mapping metric names to live instruments.
///
/// `Send + Sync`; share it behind an `Arc`. Instrument lookup interns the
/// name once — hold the returned handle in hot code rather than
/// re-resolving per event.
#[derive(Debug, Default)]
pub struct Metrics {
    counters: RwLock<BTreeMap<String, Counter>>,
    gauges: RwLock<BTreeMap<String, Gauge>>,
    histograms: RwLock<BTreeMap<String, Arc<Histogram>>>,
}

/// Recovers from a poisoned std lock: metric state is a grid of atomics,
/// always valid, so a writer that panicked mid-registration left nothing
/// half-built worth dying over.
macro_rules! lock {
    ($guard:expr) => {
        $guard.unwrap_or_else(|poisoned| poisoned.into_inner())
    };
}

impl Metrics {
    /// A fresh, empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// The counter named `name`, created on first use.
    pub fn counter(&self, name: &str) -> Counter {
        if let Some(c) = lock!(self.counters.read()).get(name) {
            return c.clone();
        }
        lock!(self.counters.write())
            .entry(name.to_owned())
            .or_default()
            .clone()
    }

    /// The gauge named `name`, created on first use.
    pub fn gauge(&self, name: &str) -> Gauge {
        if let Some(g) = lock!(self.gauges.read()).get(name) {
            return g.clone();
        }
        lock!(self.gauges.write())
            .entry(name.to_owned())
            .or_default()
            .clone()
    }

    /// The histogram named `name`, created on first use.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        if let Some(h) = lock!(self.histograms.read()).get(name) {
            return Arc::clone(h);
        }
        Arc::clone(
            lock!(self.histograms.write())
                .entry(name.to_owned())
                .or_default(),
        )
    }

    /// Raw per-bucket snapshots of every registered histogram, keyed by
    /// name — the input to the Prometheus exposition renderer.
    pub fn histograms_raw(&self) -> BTreeMap<String, HistogramRaw> {
        lock!(self.histograms.read())
            .iter()
            .map(|(k, v)| (k.clone(), v.raw()))
            .collect()
    }

    /// Cuts a serializable snapshot of every registered instrument.
    pub fn report(&self) -> MetricsReport {
        MetricsReport {
            counters: lock!(self.counters.read())
                .iter()
                .map(|(k, v)| (k.clone(), v.get()))
                .collect(),
            gauges: lock!(self.gauges.read())
                .iter()
                .map(|(k, v)| (k.clone(), v.get()))
                .collect(),
            histograms: lock!(self.histograms.read())
                .iter()
                .map(|(k, v)| (k.clone(), v.summarize()))
                .collect(),
        }
    }
}

/// Serializable snapshot of a [`Metrics`] registry.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct MetricsReport {
    /// Counter values by name.
    pub counters: BTreeMap<String, u64>,
    /// Gauge values by name.
    pub gauges: BTreeMap<String, f64>,
    /// Histogram digests by name.
    pub histograms: BTreeMap<String, HistogramSummary>,
}

/// Renders nanoseconds with a human unit.
fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.2}s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.2}ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.2}µs", ns / 1e3)
    } else {
        format!("{ns:.0}ns")
    }
}

impl MetricsReport {
    /// Whether nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty() && self.histograms.is_empty()
    }

    /// Plain-text rendering for terminals and logs.
    pub fn render_ascii(&self) -> String {
        let mut out = String::new();
        out.push_str("== telemetry ==\n");
        if !self.counters.is_empty() {
            out.push_str("counters:\n");
            for (name, v) in &self.counters {
                out.push_str(&format!("  {name:<44} {v}\n"));
            }
        }
        if !self.gauges.is_empty() {
            out.push_str("gauges:\n");
            for (name, v) in &self.gauges {
                out.push_str(&format!("  {name:<44} {v:.2}\n"));
            }
        }
        if !self.histograms.is_empty() {
            out.push_str("histograms:\n");
            for (name, h) in &self.histograms {
                out.push_str(&format!(
                    "  {name:<44} n={} mean={} p50={} p95={} p99={}\n",
                    h.count,
                    fmt_ns(h.mean_ns),
                    fmt_ns(h.p50_ns as f64),
                    fmt_ns(h.p95_ns as f64),
                    fmt_ns(h.p99_ns as f64),
                ));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn counter_counts_and_saturates() {
        let m = Metrics::new();
        let c = m.counter("hits");
        c.incr();
        c.add(41);
        assert_eq!(c.get(), 42);
        assert_eq!(m.counter("hits").get(), 42, "same name, same cell");
        c.add(u64::MAX);
        assert_eq!(c.get(), u64::MAX, "saturates instead of wrapping");
    }

    #[test]
    fn gauge_last_write_wins() {
        let g = Metrics::new().gauge("throughput");
        g.set(12.5);
        g.set(-3.25);
        assert_eq!(g.get(), -3.25);
    }

    #[test]
    fn gauge_add_sub_is_atomic_across_threads() {
        let m = Arc::new(Metrics::new());
        m.gauge("occupancy").set(0.0);
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let m = Arc::clone(&m);
                thread::spawn(move || {
                    let g = m.gauge("occupancy");
                    for _ in 0..2_000 {
                        g.add(1.0);
                        g.sub(1.0);
                    }
                    g.add(3.5);
                })
            })
            .collect();
        for j in handles {
            j.join().unwrap();
        }
        assert_eq!(m.gauge("occupancy").get(), 8.0 * 3.5);
    }

    #[test]
    fn raw_delta_summary_equals_direct_recording() {
        // Record a prefix, snapshot, record a suffix, snapshot: the
        // windowed summary of the two cumulative snapshots must match a
        // histogram that recorded only the suffix.
        let cumulative = Histogram::default();
        let direct = Histogram::default();
        for ns in [100u64, 9_000, 250_000] {
            cumulative.record_ns(ns);
        }
        let before = cumulative.raw();
        for ns in [700u64, 700, 1_000_000, 42] {
            cumulative.record_ns(ns);
            direct.record_ns(ns);
        }
        assert_eq!(cumulative.raw().since(&before), direct.summarize());
        // Empty window: zeros, not NaNs.
        let after = cumulative.raw();
        let idle = after.since(&after);
        assert_eq!((idle.count, idle.mean_ns, idle.p99_ns), (0, 0.0, 0));
    }

    #[test]
    fn histogram_bucket_boundaries() {
        // 2^k lands in the bucket whose upper bound is 2^(k+1): bounds
        // are half-open [2^(i-1), 2^i).
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of((1 << 20) - 1), 20);
        assert_eq!(bucket_of(1 << 20), 21);
        assert_eq!(bucket_of(u64::MAX), N_BUCKETS - 1);
    }

    #[test]
    fn histogram_quantiles_order_and_bound() {
        let h = Histogram::default();
        for ns in [100u64, 200, 400, 800, 100_000] {
            h.record_ns(ns);
        }
        let s = h.summarize();
        assert_eq!(s.count, 5);
        assert!(s.p50_ns <= s.p95_ns && s.p95_ns <= s.p99_ns);
        // Quantile answers are bucket upper bounds: within 2× above the
        // true value, never below it.
        assert!(s.p50_ns >= 400 && s.p50_ns <= 800);
        assert!(s.p99_ns >= 100_000 && s.p99_ns <= 262_144);
        assert!((s.mean_ns - 20_300.0).abs() < 1.0);
    }

    #[test]
    fn histogram_saturates_oversized_samples() {
        let h = Histogram::default();
        h.record_ns(u64::MAX);
        h.record_ns(u64::MAX);
        let s = h.summarize();
        assert_eq!(s.count, 2);
        // The clamp keeps the sum accumulator from wrapping.
        assert!((s.mean_ns - MAX_TRACKED_NS as f64).abs() < 1.0);
        assert_eq!(s.p99_ns, bucket_bound(N_BUCKETS - 1));
    }

    #[test]
    fn histogram_reset_allows_reuse() {
        let h = Histogram::default();
        for ns in [100u64, 5_000, 250_000] {
            h.record_ns(ns);
        }
        assert_eq!(h.count(), 3);
        h.reset();
        let cleared = h.summarize();
        assert_eq!(
            (
                cleared.count,
                cleared.mean_ns,
                cleared.p50_ns,
                cleared.p99_ns
            ),
            (0, 0.0, 0, 0),
            "reset must be indistinguishable from a fresh histogram"
        );
        // The handle keeps working after reset, with no stale samples.
        h.record_ns(800);
        let s = h.summarize();
        assert_eq!(s.count, 1);
        assert!(s.p50_ns >= 800 && s.p50_ns <= 1024);
        assert!((s.mean_ns - 800.0).abs() < 1e-9);
    }

    #[test]
    fn empty_histogram_summarizes_to_zeros() {
        let s = Histogram::default().summarize();
        assert_eq!(
            (s.count, s.mean_ns, s.p50_ns, s.p95_ns, s.p99_ns),
            (0, 0.0, 0, 0, 0)
        );
    }

    #[test]
    fn multithreaded_updates_lose_nothing() {
        let m = Arc::new(Metrics::new());
        let threads = 8;
        let per_thread = 5_000u64;
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                let m = Arc::clone(&m);
                thread::spawn(move || {
                    let c = m.counter("shared");
                    let h = m.histogram("lat");
                    for i in 0..per_thread {
                        c.incr();
                        h.record_ns(t * 1000 + i);
                    }
                })
            })
            .collect();
        for j in handles {
            j.join().unwrap();
        }
        let report = m.report();
        assert_eq!(report.counters["shared"], threads * per_thread);
        assert_eq!(report.histograms["lat"].count, threads * per_thread);
    }

    #[test]
    fn snapshot_while_writing_is_never_torn() {
        let m = Arc::new(Metrics::new());
        let writer = {
            let m = Arc::clone(&m);
            thread::spawn(move || {
                let c = m.counter("busy");
                let h = m.histogram("busy_ns");
                for i in 0..20_000u64 {
                    c.incr();
                    h.record_ns(i % 4096);
                }
            })
        };
        // Snapshots cut mid-write must be monotone and internally sane.
        let mut last = 0u64;
        for _ in 0..50 {
            let r = m.report();
            let c = r.counters.get("busy").copied().unwrap_or(0);
            assert!(c >= last, "counter snapshot went backwards");
            last = c;
            if let Some(h) = r.histograms.get("busy_ns") {
                assert!(h.p50_ns <= h.p99_ns);
                assert!(h.count <= 20_000);
            }
        }
        writer.join().unwrap();
        assert_eq!(m.report().counters["busy"], 20_000);
    }

    #[test]
    fn report_round_trips_through_json() {
        let m = Metrics::new();
        m.counter("a").add(7);
        m.gauge("b").set(2.5);
        m.histogram("c").record_ns(1500);
        let report = m.report();
        let json = serde_json::to_string(&report).unwrap();
        let back: MetricsReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back, report);
    }

    #[test]
    fn render_ascii_on_empty_report_is_just_the_header() {
        let report = MetricsReport::default();
        assert!(report.is_empty());
        assert_eq!(report.render_ascii(), "== telemetry ==\n");
    }

    #[test]
    fn render_ascii_picks_human_units_per_magnitude() {
        let m = Metrics::new();
        m.histogram("tiny").record_ns(500); // ns
        m.histogram("small").record_ns(5_000); // µs
        m.histogram("medium").record_ns(5_000_000); // ms
        m.histogram("large").record_ns(5_000_000_000); // s
        let text = m.report().render_ascii();
        // Means are exact (single sample each); quantiles round up to
        // the bucket bound, so assert on the mean renderings.
        for needle in ["mean=500ns", "mean=5.00µs", "mean=5.00ms", "mean=5.00s"] {
            assert!(text.contains(needle), "missing {needle} in:\n{text}");
        }
    }

    #[test]
    fn render_ascii_skips_empty_sections() {
        let m = Metrics::new();
        m.counter("only.counter").incr();
        let text = m.report().render_ascii();
        assert!(text.contains("counters:"));
        assert!(!text.contains("gauges:"), "no gauges registered");
        assert!(!text.contains("histograms:"), "no histograms registered");
    }

    #[test]
    fn raw_snapshot_matches_recorded_samples() {
        let h = Histogram::default();
        h.record_ns(3); // bucket 2
        h.record_ns(3); // bucket 2
        h.record_ns(1000); // bucket 10
        let raw = h.raw();
        assert_eq!(raw.count, 3);
        assert_eq!(raw.sum_ns, 1006);
        assert_eq!(raw.buckets.len(), N_BUCKETS);
        assert_eq!(raw.buckets[2], 2);
        assert_eq!(raw.buckets[10], 1);
        assert_eq!(raw.buckets.iter().sum::<u64>(), raw.count);
        let m = Metrics::new();
        m.histogram("lat").record_ns(7);
        assert_eq!(m.histograms_raw()["lat"].count, 1);
        assert_eq!(bucket_upper_bound(3), 8);
        assert_eq!(bucket_upper_bound(usize::MAX), bucket_bound(N_BUCKETS - 1));
    }

    #[test]
    fn ascii_rendering_mentions_every_metric() {
        let m = Metrics::new();
        m.counter("explain.fired.top_n").add(3);
        m.gauge("eval.throughput").set(123.0);
        m.histogram("algo.predict_ns.user_knn").record_ns(40_000);
        let text = m.report().render_ascii();
        for needle in [
            "explain.fired.top_n",
            "eval.throughput",
            "algo.predict_ns.user_knn",
            "p95",
        ] {
            assert!(text.contains(needle), "missing {needle} in:\n{text}");
        }
    }
}

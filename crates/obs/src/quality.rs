//! Online explanation-quality estimation: a cheap, sampled mirror of
//! the offline metric suite.
//!
//! The offline suite (`exrec-eval`) scores every interface exhaustively
//! against ground truth; the serving edge cannot afford that per
//! request. What it *can* afford is a 1-in-N sample: the explanation
//! and its evidence are already in hand when a request completes, so
//! coverage, provenance depth and citation-ablation fidelity cost a few
//! arithmetic operations over data already computed.
//!
//! * **Deterministic sampling** — [`QualityMonitor::should_sample`]
//!   draws from a seeded [`IdSource`] stream (the same SplitMix64
//!   generator the tracer uses), so a replayed request sequence samples
//!   identically.
//! * **`quality.*` metrics** — rolling per-interface and per-aim means
//!   exported as gauges, score distributions as milli-unit histograms,
//!   all through the existing [`Metrics`](crate::Metrics) registry and
//!   Prometheus exposition.
//! * **Sustained-drop detection** — a consecutive-low-sample streak,
//!   mirroring the SLO fast-burn latch: the serving edge dumps the
//!   flight recorder once per drop onset so the low-quality requests
//!   carry their trace ids and phase profiles out of the ring.
//!
//! The monitor never computes explanation quality itself — the edge
//! measures (via `exrec-core`'s probes) and feeds scalars in. That
//! keeps this crate free of core/algo dependencies.

use std::collections::{BTreeMap, VecDeque};
use std::sync::Mutex;

use serde::{Deserialize, Serialize};

use crate::trace::IdSource;
use crate::Telemetry;

/// Shape of the online quality estimator.
#[derive(Debug, Clone, PartialEq)]
pub struct QualityConfig {
    /// Sample one request in `sample_every`. `0` disables sampling,
    /// `1` samples every request.
    pub sample_every: u64,
    /// Seed for the deterministic sampling stream.
    pub seed: u64,
    /// Rolling-window length (samples) for the exported means.
    pub window: usize,
    /// Scores below this count as low-quality.
    pub low_threshold: f64,
    /// Consecutive low samples before the drop counts as sustained.
    pub sustain: usize,
}

impl Default for QualityConfig {
    fn default() -> Self {
        QualityConfig {
            sample_every: 8,
            seed: 0x51,
            window: 128,
            low_threshold: 0.25,
            sustain: 8,
        }
    }
}

/// One sampled quality measurement, as the edge reports it.
#[derive(Debug, Clone, PartialEq)]
pub struct QualitySample<'a> {
    /// Interface key that generated the explanation.
    pub interface: &'a str,
    /// Lowercased aim names the interface declares.
    pub aims: Vec<String>,
    /// Citation-ablation fidelity in `[0, 1]`.
    pub fidelity: f64,
    /// Evidence coverage in `[0, 1]`.
    pub coverage: f64,
    /// Provenance depth (distinct evidence-bearing fragment kinds).
    pub provenance_depth: usize,
    /// Scalar summary in `[0, 1]`.
    pub score: f64,
}

#[derive(Debug, Default)]
struct Rolling {
    window: VecDeque<f64>,
    cap: usize,
}

impl Rolling {
    fn with_cap(cap: usize) -> Self {
        Rolling {
            window: VecDeque::new(),
            cap: cap.max(1),
        }
    }

    fn push(&mut self, v: f64) {
        if self.window.len() == self.cap {
            self.window.pop_front();
        }
        self.window.push_back(v);
    }

    fn mean(&self) -> f64 {
        if self.window.is_empty() {
            0.0
        } else {
            self.window.iter().sum::<f64>() / self.window.len() as f64
        }
    }
}

#[derive(Debug)]
struct ScopeStat {
    samples: u64,
    score: Rolling,
    fidelity: Rolling,
    coverage: Rolling,
    depth: Rolling,
}

impl ScopeStat {
    fn with_cap(cap: usize) -> Self {
        ScopeStat {
            samples: 0,
            score: Rolling::with_cap(cap),
            fidelity: Rolling::with_cap(cap),
            coverage: Rolling::with_cap(cap),
            depth: Rolling::with_cap(cap),
        }
    }
}

#[derive(Debug)]
struct State {
    overall: ScopeStat,
    interfaces: BTreeMap<String, ScopeStat>,
    aims: BTreeMap<String, Rolling>,
    low_streak: u64,
}

/// The live quality estimator: deterministic sampler + rolling stats +
/// `quality.*` metric export.
#[derive(Debug)]
pub struct QualityMonitor {
    telemetry: Telemetry,
    config: QualityConfig,
    ids: IdSource,
    state: Mutex<State>,
}

impl QualityMonitor {
    /// Builds a monitor exporting through `telemetry`'s metrics
    /// registry.
    pub fn new(telemetry: Telemetry, config: QualityConfig) -> Self {
        let window = config.window;
        QualityMonitor {
            ids: IdSource::seeded(config.seed),
            telemetry,
            state: Mutex::new(State {
                overall: ScopeStat::with_cap(window),
                interfaces: BTreeMap::new(),
                aims: BTreeMap::new(),
                low_streak: 0,
            }),
            config,
        }
    }

    /// The active configuration.
    pub fn config(&self) -> &QualityConfig {
        &self.config
    }

    /// Whether the next request should be quality-sampled. Advances
    /// the deterministic sampling stream; ~1-in-`sample_every` calls
    /// return true, in a sequence fixed by the seed.
    pub fn should_sample(&self) -> bool {
        match self.config.sample_every {
            0 => false,
            1 => {
                // Still consume a draw so enabling/disabling 1-in-1
                // sampling never shifts the rest of the stream.
                let _ = self.ids.next_id();
                true
            }
            n => self.ids.next_id().is_multiple_of(n),
        }
    }

    /// Folds one sampled measurement in: updates rolling stats,
    /// exports the `quality.*` metric family, and returns whether the
    /// low-quality streak has just reached the sustained threshold —
    /// the edge's cue to latch a flight-recorder dump.
    pub fn observe(&self, sample: &QualitySample<'_>) -> bool {
        let metrics = self.telemetry.metrics();
        metrics.counter("quality.samples").incr();
        metrics
            .counter(&format!("quality.samples.{}", sample.interface))
            .incr();
        metrics
            .histogram("quality.score_milli")
            .record_ns((sample.score.clamp(0.0, 1.0) * 1000.0) as u64);
        metrics
            .histogram("quality.fidelity_milli")
            .record_ns((sample.fidelity.clamp(0.0, 1.0) * 1000.0) as u64);

        let mut state = self.state.lock().unwrap_or_else(|p| p.into_inner());
        let window = self.config.window;
        state.overall.samples += 1;
        state.overall.score.push(sample.score);
        state.overall.fidelity.push(sample.fidelity);
        state.overall.coverage.push(sample.coverage);
        state.overall.depth.push(sample.provenance_depth as f64);
        metrics
            .gauge("quality.score")
            .set(state.overall.score.mean());
        metrics
            .gauge("quality.fidelity")
            .set(state.overall.fidelity.mean());

        let per_interface = state
            .interfaces
            .entry(sample.interface.to_owned())
            .or_insert_with(|| ScopeStat::with_cap(window));
        per_interface.samples += 1;
        per_interface.score.push(sample.score);
        per_interface.fidelity.push(sample.fidelity);
        per_interface.coverage.push(sample.coverage);
        per_interface.depth.push(sample.provenance_depth as f64);
        metrics
            .gauge(&format!("quality.score.{}", sample.interface))
            .set(per_interface.score.mean());
        metrics
            .gauge(&format!("quality.fidelity.{}", sample.interface))
            .set(per_interface.fidelity.mean());
        metrics
            .gauge(&format!("quality.coverage.{}", sample.interface))
            .set(per_interface.coverage.mean());

        for aim in &sample.aims {
            let rolling = state
                .aims
                .entry(aim.clone())
                .or_insert_with(|| Rolling::with_cap(window));
            rolling.push(sample.score);
            metrics
                .gauge(&format!("quality.aim.{aim}"))
                .set(rolling.mean());
        }

        if sample.score < self.config.low_threshold {
            metrics.counter("quality.low").incr();
            state.low_streak += 1;
        } else {
            state.low_streak = 0;
        }
        state.low_streak >= self.config.sustain as u64
    }

    /// Total measurements folded in so far.
    pub fn samples(&self) -> u64 {
        self.state
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .overall
            .samples
    }

    /// Whether the current low-quality streak has reached the
    /// sustained threshold.
    pub fn sustained_low(&self) -> bool {
        self.state
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .low_streak
            >= self.config.sustain as u64
    }

    /// A serializable snapshot for the `/debug/quality` surface.
    pub fn snapshot(&self) -> QualitySnapshot {
        let state = self.state.lock().unwrap_or_else(|p| p.into_inner());
        QualitySnapshot {
            samples: state.overall.samples,
            sample_every: self.config.sample_every,
            low_threshold: self.config.low_threshold,
            low_streak: state.low_streak,
            sustained_low: state.low_streak >= self.config.sustain as u64,
            mean_score: state.overall.score.mean(),
            mean_fidelity: state.overall.fidelity.mean(),
            interfaces: state
                .interfaces
                .iter()
                .map(|(name, s)| InterfaceQualityStat {
                    name: name.clone(),
                    samples: s.samples,
                    score: s.score.mean(),
                    fidelity: s.fidelity.mean(),
                    coverage: s.coverage.mean(),
                    provenance_depth: s.depth.mean(),
                })
                .collect(),
            aims: state
                .aims
                .iter()
                .map(|(name, r)| AimQualityStat {
                    name: name.clone(),
                    samples: r.window.len() as u64,
                    score: r.mean(),
                })
                .collect(),
        }
    }
}

/// Rolling quality of one interface as observed live.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct InterfaceQualityStat {
    /// Interface key.
    pub name: String,
    /// Samples observed (lifetime, not windowed).
    pub samples: u64,
    /// Rolling mean scalar score.
    pub score: f64,
    /// Rolling mean fidelity.
    pub fidelity: f64,
    /// Rolling mean coverage.
    pub coverage: f64,
    /// Rolling mean provenance depth.
    pub provenance_depth: f64,
}

/// Rolling quality per aim as observed live.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AimQualityStat {
    /// Lowercased aim name.
    pub name: String,
    /// Samples currently in the window.
    pub samples: u64,
    /// Rolling mean score of sampled explanations declaring the aim.
    pub score: f64,
}

/// Snapshot of the live estimator — the `/debug/quality` body's
/// `online` section.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QualitySnapshot {
    /// Measurements folded in so far.
    pub samples: u64,
    /// Configured 1-in-N sampling rate.
    pub sample_every: u64,
    /// Configured low-quality threshold.
    pub low_threshold: f64,
    /// Current consecutive-low-sample streak.
    pub low_streak: u64,
    /// Whether the streak has reached the sustained threshold.
    pub sustained_low: bool,
    /// Rolling mean scalar score across all samples.
    pub mean_score: f64,
    /// Rolling mean fidelity across all samples.
    pub mean_fidelity: f64,
    /// Per-interface rolling stats, name-keyed, sorted by key.
    pub interfaces: Vec<InterfaceQualityStat>,
    /// Per-aim rolling stats, name-keyed, sorted by key.
    pub aims: Vec<AimQualityStat>,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(interface: &str, score: f64) -> QualitySample<'_> {
        QualitySample {
            interface,
            aims: vec!["trust".to_owned(), "transparency".to_owned()],
            fidelity: score,
            coverage: score,
            provenance_depth: 2,
            score,
        }
    }

    #[test]
    fn sampling_is_deterministic_and_roughly_one_in_n() {
        let config = QualityConfig {
            sample_every: 8,
            ..QualityConfig::default()
        };
        let a = QualityMonitor::new(Telemetry::default(), config.clone());
        let b = QualityMonitor::new(Telemetry::default(), config);
        let da: Vec<bool> = (0..1000).map(|_| a.should_sample()).collect();
        let db: Vec<bool> = (0..1000).map(|_| b.should_sample()).collect();
        assert_eq!(da, db, "same seed, same sampling decisions");
        let hits = da.iter().filter(|&&s| s).count();
        assert!((60..=190).contains(&hits), "~1 in 8 of 1000, got {hits}");

        let every = QualityMonitor::new(
            Telemetry::default(),
            QualityConfig {
                sample_every: 1,
                ..QualityConfig::default()
            },
        );
        assert!((0..100).all(|_| every.should_sample()));
        let never = QualityMonitor::new(
            Telemetry::default(),
            QualityConfig {
                sample_every: 0,
                ..QualityConfig::default()
            },
        );
        assert!((0..100).all(|_| !never.should_sample()));
    }

    #[test]
    fn observe_exports_quality_metric_family() {
        let obs = Telemetry::default();
        let monitor = QualityMonitor::new(obs.clone(), QualityConfig::default());
        monitor.observe(&sample("histogram", 0.8));
        monitor.observe(&sample("histogram", 0.6));
        monitor.observe(&sample("item_average", 0.4));

        let report = obs.report();
        assert_eq!(report.counters["quality.samples"], 3);
        assert_eq!(report.counters["quality.samples.histogram"], 2);
        let per_iface = report.gauges["quality.score.histogram"];
        assert!((per_iface - 0.7).abs() < 1e-9, "rolling mean: {per_iface}");
        let overall = report.gauges["quality.score"];
        assert!((overall - 0.6).abs() < 1e-9, "overall mean: {overall}");
        assert!((report.gauges["quality.aim.trust"] - 0.6).abs() < 1e-9);
        assert_eq!(report.histograms["quality.score_milli"].count, 3);
    }

    #[test]
    fn sustained_low_streak_latches_and_recovers() {
        let obs = Telemetry::default();
        let monitor = QualityMonitor::new(
            obs.clone(),
            QualityConfig {
                low_threshold: 0.5,
                sustain: 3,
                ..QualityConfig::default()
            },
        );
        assert!(!monitor.observe(&sample("histogram", 0.1)));
        assert!(!monitor.observe(&sample("histogram", 0.1)));
        assert!(monitor.observe(&sample("histogram", 0.1)), "third low hits");
        assert!(monitor.sustained_low());
        assert!(!monitor.observe(&sample("histogram", 0.9)), "recovery");
        assert!(!monitor.sustained_low());
        assert_eq!(obs.report().counters["quality.low"], 3);
    }

    #[test]
    fn snapshot_round_trips_and_is_name_keyed() {
        let monitor = QualityMonitor::new(Telemetry::default(), QualityConfig::default());
        monitor.observe(&sample("histogram", 0.75));
        monitor.observe(&sample("neighbor_count", 0.25));
        let snap = monitor.snapshot();
        assert_eq!(snap.samples, 2);
        assert_eq!(snap.interfaces.len(), 2);
        assert!(snap.interfaces.iter().all(|i| !i.name.is_empty()));
        assert_eq!(snap.aims.len(), 2);
        let json = serde_json::to_string(&snap).unwrap();
        let back: QualitySnapshot = serde_json::from_str(&json).unwrap();
        assert_eq!(back, snap);
    }

    #[test]
    fn window_bounds_the_rolling_mean() {
        let monitor = QualityMonitor::new(
            Telemetry::default(),
            QualityConfig {
                window: 4,
                ..QualityConfig::default()
            },
        );
        for _ in 0..10 {
            monitor.observe(&sample("histogram", 0.0));
        }
        for _ in 0..4 {
            monitor.observe(&sample("histogram", 1.0));
        }
        let snap = monitor.snapshot();
        assert!(
            (snap.mean_score - 1.0).abs() < 1e-9,
            "old zeros evicted: {}",
            snap.mean_score
        );
    }
}

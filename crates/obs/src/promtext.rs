//! Prometheus text exposition (format version 0.0.4).
//!
//! [`render`] turns a [`Metrics`] registry into the plain-text format
//! every Prometheus-compatible scraper understands: a `# TYPE` line per
//! family, `name value` samples, and histograms as cumulative
//! `_bucket{le="..."}` series plus `_sum`/`_count`. The serving edge
//! content-negotiates this against the JSON report on `GET /metrics`
//! (send `Accept: text/plain`).
//!
//! Metric names are sanitized to the Prometheus charset
//! (`[a-zA-Z_:][a-zA-Z0-9_:]*`): the registry's dotted taxonomy maps
//! `serve.latency_ns.recommend` → `serve_latency_ns_recommend`.
//! Histogram `le` bounds are the registry's power-of-two bucket upper
//! bounds in nanoseconds, with the mandatory trailing `+Inf`.

use crate::metrics::{bucket_upper_bound, Metrics};

/// Sanitizes a registry metric name into the Prometheus charset.
/// Every character outside `[a-zA-Z0-9_:]` becomes `_`, and a leading
/// digit is prefixed with `_`.
pub fn sanitize_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len() + 1);
    for (i, c) in name.chars().enumerate() {
        if c.is_ascii_alphanumeric() || c == '_' || c == ':' {
            if i == 0 && c.is_ascii_digit() {
                out.push('_');
            }
            out.push(c);
        } else {
            out.push('_');
        }
    }
    if out.is_empty() {
        out.push('_');
    }
    out
}

/// Formats a float the way the exposition grammar expects (`Inf`,
/// `-Inf` and `NaN` spelled out; everything else via `Display`).
fn fmt_value(v: f64) -> String {
    if v.is_nan() {
        "NaN".to_owned()
    } else if v.is_infinite() {
        if v > 0.0 { "+Inf" } else { "-Inf" }.to_owned()
    } else {
        format!("{v}")
    }
}

/// Renders every registered instrument as Prometheus text exposition
/// 0.0.4. Serve it with content type `text/plain; version=0.0.4`.
pub fn render(metrics: &Metrics) -> String {
    let report = metrics.report();
    let mut out = String::new();

    for (name, value) in &report.counters {
        let name = sanitize_name(name);
        out.push_str(&format!("# TYPE {name} counter\n{name} {value}\n"));
    }
    for (name, value) in &report.gauges {
        let name = sanitize_name(name);
        out.push_str(&format!(
            "# TYPE {name} gauge\n{name} {}\n",
            fmt_value(*value)
        ));
    }
    for (name, raw) in metrics.histograms_raw() {
        let name = sanitize_name(&name);
        out.push_str(&format!("# TYPE {name} histogram\n"));
        let mut cumulative = 0u64;
        for (i, count) in raw.buckets.iter().enumerate() {
            cumulative += count;
            // Empty interior buckets still render: Prometheus histograms
            // are cumulative, so each le series must be present to be
            // monotone. Collapse nothing, trust the fixed 42-bucket grid.
            out.push_str(&format!(
                "{name}_bucket{{le=\"{}\"}} {cumulative}\n",
                bucket_upper_bound(i)
            ));
        }
        out.push_str(&format!("{name}_bucket{{le=\"+Inf\"}} {cumulative}\n"));
        out.push_str(&format!("{name}_sum {}\n", raw.sum_ns));
        out.push_str(&format!("{name}_count {cumulative}\n"));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::N_BUCKETS;

    #[test]
    fn sanitize_maps_taxonomy_to_prometheus_charset() {
        assert_eq!(
            sanitize_name("serve.latency_ns.recommend"),
            "serve_latency_ns_recommend"
        );
        assert_eq!(sanitize_name("serve.status.2xx"), "serve_status_2xx");
        assert_eq!(sanitize_name("2fast"), "_2fast");
        assert_eq!(sanitize_name(""), "_");
    }

    #[test]
    fn renders_counters_and_gauges_with_type_lines() {
        let m = Metrics::new();
        m.counter("serve.requests").add(17);
        m.gauge("serve.queue_depth").set(3.0);
        let text = render(&m);
        assert!(text.contains("# TYPE serve_requests counter\n"));
        assert!(text.contains("serve_requests 17\n"));
        assert!(text.contains("# TYPE serve_queue_depth gauge\n"));
        assert!(text.contains("serve_queue_depth 3\n"));
    }

    #[test]
    fn histogram_buckets_are_cumulative_and_end_at_inf() {
        let m = Metrics::new();
        let h = m.histogram("lat.ns");
        h.record_ns(3); // bucket 2 (le 4)
        h.record_ns(3);
        h.record_ns(100); // bucket 7 (le 128)
        let text = render(&m);
        assert!(text.contains("# TYPE lat_ns histogram\n"));
        assert!(text.contains("lat_ns_bucket{le=\"2\"} 0\n"));
        assert!(text.contains("lat_ns_bucket{le=\"4\"} 2\n"));
        assert!(text.contains("lat_ns_bucket{le=\"128\"} 3\n"));
        assert!(text.contains("lat_ns_bucket{le=\"+Inf\"} 3\n"));
        assert!(text.contains("lat_ns_sum 106\n"));
        assert!(text.contains("lat_ns_count 3\n"));
        // One le series per bucket plus +Inf.
        let bucket_lines = text
            .lines()
            .filter(|l| l.starts_with("lat_ns_bucket"))
            .count();
        assert_eq!(bucket_lines, N_BUCKETS + 1);
    }

    #[test]
    fn gauge_special_values_follow_the_grammar() {
        let m = Metrics::new();
        m.gauge("weird.nan").set(f64::NAN);
        m.gauge("weird.inf").set(f64::INFINITY);
        m.gauge("weird.ratio").set(0.25);
        let text = render(&m);
        assert!(text.contains("weird_nan NaN\n"));
        assert!(text.contains("weird_inf +Inf\n"));
        assert!(text.contains("weird_ratio 0.25\n"));
    }
}

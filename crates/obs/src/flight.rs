//! Black-box flight recorder: the last N completed requests, always.
//!
//! Tail sampling (PR 7) deliberately drops fast, healthy traces — the
//! right call for log volume, the wrong one when an incident needs
//! "what were the last 200 requests this process served?". The
//! [`FlightRecorder`] answers that: a bounded, lock-striped ring of
//! completed [`RequestRecord`]s, written by the serving edge for
//! *every* request regardless of any sampling decision.
//!
//! * **Lock-striped ring.** Records round-robin over `stripes`
//!   mutex-guarded deques by sequence number; each stripe holds
//!   `capacity / stripes` records and evicts its oldest on overflow,
//!   so the recorder as a whole retains exactly the last `capacity`
//!   records. Writers contend only one-in-`stripes` of the time.
//! * **Torn-record-free.** A record is assigned its sequence number
//!   atomically and inserted whole under its stripe's lock; readers
//!   ([`FlightRecorder::snapshot`]) merge the stripes and sort by
//!   sequence, so the dump is globally ordered.
//! * **Auto-snapshot.** [`FlightRecorder::install_panic_hook`] chains
//!   onto the process panic hook and dumps the ring to stderr; the
//!   serving edge additionally dumps once per SLO fast-burn
//!   degradation onset (see `exrec-serve`).

use std::collections::VecDeque;
use std::io::Write;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use serde::{Deserialize, Serialize};

/// Version of the [`RequestRecord`] JSON shape. Bumped to 2 when the
/// sampled `quality` field was added, and to 3 for the write-path
/// `ingest` block; older dumps (missing fields) still parse, the
/// fields defaulting to `None`.
pub const RECORD_SCHEMA: u32 = 3;

/// Shape of a [`FlightRecorder`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FlightConfig {
    /// Total records retained. Rounded up to a multiple of `stripes`.
    pub capacity: usize,
    /// Lock stripes; writers contend only within a stripe.
    pub stripes: usize,
}

impl Default for FlightConfig {
    fn default() -> Self {
        FlightConfig {
            capacity: 256,
            stripes: 8,
        }
    }
}

/// One completed request, as the black box remembers it.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RequestRecord {
    /// Global completion sequence number (assigned by the recorder;
    /// later numbers completed later).
    pub seq: u64,
    /// Hex trace id, empty when the request never got one (e.g. shed
    /// at admission).
    pub trace_id: String,
    /// Route / endpoint name.
    pub route: String,
    /// HTTP status answered.
    pub status: u16,
    /// Outcome class: `ok`, `client_error`, `shed`, `timeout`,
    /// `panic` or `error`.
    pub outcome: String,
    /// Request start, nanoseconds since the process zero point
    /// ([`crate::trace::process_start`]).
    pub start_offset_ns: u64,
    /// Wall time from admission to response, nanoseconds.
    pub duration_ns: u64,
    /// Per-phase breakdown: `;`-joined phase path → nanoseconds (see
    /// [`crate::profile::PhaseCollector`]).
    pub phases: Vec<(String, u64)>,
    /// Similarity-cache probes answered from the cache.
    pub cache_hits: u64,
    /// Similarity-cache probes that had to compute.
    pub cache_misses: u64,
    /// Sampled explanation-quality score in `[0, 1]`; `None` (JSON
    /// `null`) when the online estimator did not sample this request.
    /// Added in record schema 2; schema-1 dumps parse with `None`.
    pub quality: Option<f64>,
    /// Write-path detail for ingestion routes (`/v1/rate`,
    /// `/v1/rate/batch`); `None` on read routes. Added in record
    /// schema 3; older dumps parse with `None`.
    #[serde(default)]
    pub ingest: Option<IngestRecord>,
}

/// What a write-route request did, as the black box remembers it.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct IngestRecord {
    /// Rating ops that changed the matrix.
    pub applied: u64,
    /// Nanoseconds spent appending the record to the WAL (0 when the
    /// server runs without a journal).
    pub wal_append_ns: u64,
}

impl RequestRecord {
    /// The outcome class conventionally used for `status`.
    pub fn outcome_of(status: u16) -> &'static str {
        match status {
            429 => "shed",
            504 => "timeout",
            500 => "panic",
            s if s >= 500 => "error",
            s if s >= 400 => "client_error",
            _ => "ok",
        }
    }
}

/// The bounded, lock-striped ring of the last N request records.
#[derive(Debug)]
pub struct FlightRecorder {
    stripes: Vec<Mutex<VecDeque<RequestRecord>>>,
    per_stripe: usize,
    seq: AtomicU64,
}

impl Default for FlightRecorder {
    fn default() -> Self {
        FlightRecorder::new(FlightConfig::default())
    }
}

impl FlightRecorder {
    /// A recorder retaining `config.capacity` records (rounded up to a
    /// stripe multiple).
    pub fn new(config: FlightConfig) -> Self {
        let stripes = config.stripes.max(1);
        let per_stripe = config.capacity.div_ceil(stripes).max(1);
        FlightRecorder {
            stripes: (0..stripes)
                .map(|_| Mutex::new(VecDeque::with_capacity(per_stripe)))
                .collect(),
            per_stripe,
            seq: AtomicU64::new(0),
        }
    }

    /// Total records the ring retains.
    pub fn capacity(&self) -> usize {
        self.per_stripe * self.stripes.len()
    }

    /// Records completed so far (monotonic, not bounded by capacity).
    pub fn recorded(&self) -> u64 {
        self.seq.load(Ordering::Relaxed)
    }

    /// Records currently resident.
    pub fn len(&self) -> usize {
        self.stripes
            .iter()
            .map(|s| s.lock().unwrap_or_else(|p| p.into_inner()).len())
            .sum()
    }

    /// Whether nothing has been recorded yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Appends one completed request, evicting the stripe's oldest
    /// record when full. The record's `seq` field is assigned here;
    /// returns it.
    pub fn record(&self, mut record: RequestRecord) -> u64 {
        let seq = self.seq.fetch_add(1, Ordering::Relaxed);
        record.seq = seq;
        let stripe = &self.stripes[(seq % self.stripes.len() as u64) as usize];
        let mut ring = stripe.lock().unwrap_or_else(|p| p.into_inner());
        if ring.len() == self.per_stripe {
            ring.pop_front();
        }
        ring.push_back(record);
        seq
    }

    /// The resident records, oldest first (globally ordered by
    /// completion sequence).
    pub fn snapshot(&self) -> Vec<RequestRecord> {
        let mut records: Vec<RequestRecord> = self
            .stripes
            .iter()
            .flat_map(|s| {
                s.lock()
                    .unwrap_or_else(|p| p.into_inner())
                    .iter()
                    .cloned()
                    .collect::<Vec<_>>()
            })
            .collect();
        records.sort_by_key(|r| r.seq);
        records
    }

    /// Dumps the ring to `w` as JSON lines, framed by `reason` markers
    /// — the black-box readout for post-mortems.
    pub fn dump(&self, w: &mut impl Write, reason: &str) {
        let records = self.snapshot();
        let _ = writeln!(
            w,
            "[flight] === dump ({reason}): {} of last {} requests ===",
            records.len(),
            self.capacity()
        );
        for record in records {
            if let Ok(line) = serde_json::to_string(&record) {
                let _ = writeln!(w, "{line}");
            }
        }
        let _ = writeln!(w, "[flight] === end dump ({reason}) ===");
    }

    /// [`FlightRecorder::dump`] to stderr.
    pub fn dump_stderr(&self, reason: &str) {
        self.dump(&mut std::io::stderr().lock(), reason);
    }

    /// Chains a process panic hook that dumps this recorder to stderr
    /// before the previous hook runs. Call once per process (the
    /// `serve` binary does); every panic — including ones the edge
    /// catches for worker isolation — triggers a dump.
    pub fn install_panic_hook(recorder: &Arc<FlightRecorder>) {
        let recorder = Arc::clone(recorder);
        let previous = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            recorder.dump_stderr("panic");
            previous(info);
        }));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record_for(route: &str, status: u16) -> RequestRecord {
        RequestRecord {
            seq: 0,
            trace_id: "abc".to_owned(),
            route: route.to_owned(),
            status,
            outcome: RequestRecord::outcome_of(status).to_owned(),
            start_offset_ns: 1,
            duration_ns: 2,
            phases: vec![("handle".to_owned(), 2)],
            cache_hits: 0,
            cache_misses: 0,
            quality: None,
            ingest: None,
        }
    }

    #[test]
    fn outcome_classes() {
        assert_eq!(RequestRecord::outcome_of(200), "ok");
        assert_eq!(RequestRecord::outcome_of(404), "client_error");
        assert_eq!(RequestRecord::outcome_of(429), "shed");
        assert_eq!(RequestRecord::outcome_of(500), "panic");
        assert_eq!(RequestRecord::outcome_of(503), "error");
        assert_eq!(RequestRecord::outcome_of(504), "timeout");
    }

    #[test]
    fn ring_retains_exactly_the_last_capacity_records_in_order() {
        let recorder = FlightRecorder::new(FlightConfig {
            capacity: 16,
            stripes: 4,
        });
        assert_eq!(recorder.capacity(), 16);
        for i in 0..100 {
            let seq = recorder.record(record_for("recommend", 200));
            assert_eq!(seq, i);
        }
        assert_eq!(recorder.recorded(), 100);
        let records = recorder.snapshot();
        assert_eq!(records.len(), 16, "wrapped ring holds capacity records");
        let seqs: Vec<u64> = records.iter().map(|r| r.seq).collect();
        assert_eq!(
            seqs,
            (84..100).collect::<Vec<u64>>(),
            "snapshot is the last N, oldest first"
        );
    }

    #[test]
    fn hammer_no_lost_or_torn_records() {
        let recorder = Arc::new(FlightRecorder::new(FlightConfig {
            capacity: 64,
            stripes: 8,
        }));
        let threads = 8;
        let per_thread = 500u64;
        std::thread::scope(|scope| {
            for t in 0..threads {
                let recorder = Arc::clone(&recorder);
                scope.spawn(move || {
                    let route = format!("route-{t}");
                    for i in 0..per_thread {
                        let mut rec = record_for(&route, 200);
                        // A writer-specific fingerprint spread across
                        // fields; a torn record would mismatch.
                        rec.duration_ns = t * 10_000 + i;
                        rec.trace_id = format!("{t}-{i}");
                        recorder.record(rec);
                    }
                });
            }
        });
        assert_eq!(recorder.recorded(), threads * per_thread);
        let records = recorder.snapshot();
        assert_eq!(records.len(), 64, "ring stays at capacity under load");
        let mut seen = std::collections::HashSet::new();
        for r in &records {
            assert!(seen.insert(r.seq), "sequence numbers are unique");
            // Fingerprint consistency across fields = not torn.
            let (t, i) = r.trace_id.split_once('-').expect("writer fingerprint");
            let (t, i): (u64, u64) = (t.parse().unwrap(), i.parse().unwrap());
            assert_eq!(
                r.duration_ns,
                t * 10_000 + i,
                "record fields are consistent"
            );
            assert_eq!(r.route, format!("route-{t}"));
        }
        // The retained window is the tail of the global sequence.
        let min_seq = records.iter().map(|r| r.seq).min().unwrap();
        assert_eq!(min_seq, threads * per_thread - 64);
        let seqs: Vec<u64> = records.iter().map(|r| r.seq).collect();
        assert!(seqs.windows(2).all(|w| w[0] < w[1]), "sorted by completion");
    }

    #[test]
    fn dump_writes_parseable_json_lines() {
        let recorder = FlightRecorder::new(FlightConfig {
            capacity: 4,
            stripes: 2,
        });
        for _ in 0..6 {
            recorder.record(record_for("explain", 504));
        }
        let mut buf = Vec::new();
        recorder.dump(&mut buf, "test");
        let text = String::from_utf8(buf).unwrap();
        assert!(text.contains("=== dump (test)"));
        let parsed: Vec<RequestRecord> = text
            .lines()
            .filter(|l| !l.starts_with("[flight]"))
            .map(|l| serde_json::from_str(l).expect("JSON line"))
            .collect();
        assert_eq!(parsed.len(), 4);
        assert!(parsed.iter().all(|r| r.outcome == "timeout"));
    }

    #[test]
    fn record_round_trips_through_json() {
        let rec = record_for("recommend", 200);
        let json = serde_json::to_string(&rec).unwrap();
        assert!(
            json.contains("\"quality\":null"),
            "unsampled records carry a null quality: {json}"
        );
        // A schema-1 line (no quality field at all) still parses.
        let legacy = json.replace(",\"quality\":null", "");
        let back: RequestRecord = serde_json::from_str(&legacy).unwrap();
        assert_eq!(back.quality, None);
        let back: RequestRecord = serde_json::from_str(&json).unwrap();
        assert_eq!(back.route, "recommend");
        assert_eq!(back.phases, vec![("handle".to_owned(), 2)]);
        assert_eq!(back.quality, None);

        let mut sampled = record_for("explain", 200);
        sampled.quality = Some(0.75);
        let json = serde_json::to_string(&sampled).unwrap();
        assert!(json.contains("\"quality\":0.75"), "schema-2 field: {json}");
        let back: RequestRecord = serde_json::from_str(&json).unwrap();
        assert_eq!(back.quality, Some(0.75));
    }

    #[test]
    fn ingest_field_round_trips_and_legacy_lines_parse() {
        let mut rec = record_for("rate", 200);
        rec.ingest = Some(IngestRecord {
            applied: 3,
            wal_append_ns: 1200,
        });
        let json = serde_json::to_string(&rec).unwrap();
        assert!(
            json.contains("\"ingest\":{\"applied\":3,\"wal_append_ns\":1200}"),
            "schema-3 block: {json}"
        );
        let back: RequestRecord = serde_json::from_str(&json).unwrap();
        assert_eq!(back.ingest, rec.ingest);

        // A schema-2 line (no ingest field at all) still parses.
        let read_route = record_for("recommend", 200);
        let json = serde_json::to_string(&read_route).unwrap();
        let legacy = json.replace(",\"ingest\":null", "");
        assert!(!legacy.contains("ingest"));
        let back: RequestRecord = serde_json::from_str(&legacy).unwrap();
        assert_eq!(back.ingest, None);
    }
}

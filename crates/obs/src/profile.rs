//! Always-on cooperative phase profiler for the serving hot path.
//!
//! Tail-sampled traces (PR 7) say *which* requests were slow; they do
//! not attribute self-time to phases — was it the similarity scan, the
//! top-k sort, evidence gathering? This module answers that with a
//! profiler cheap enough to leave enabled in production:
//!
//! * **Phases are scoped RAII guards.** [`phase`] opens a named region
//!   on the current thread; dropping the guard attributes the elapsed
//!   time. Nesting guards builds a call tree.
//! * **The tree is keyed by route.** [`Profiler::route`] installs a
//!   per-request context; every phase opened beneath it (on this
//!   thread or, via [`current`]/[`install`], on batch workers) lands
//!   under that route's root in the shared [`Profiler`] tree.
//! * **Aggregation is atomic.** Each tree node keeps call count,
//!   inclusive time and accumulated child time in relaxed atomics;
//!   self-time is derived at snapshot time (`total − children`,
//!   saturating — parallel children can legitimately exceed the
//!   parent's wall clock). The only locks are short read-mostly
//!   `RwLock`s on the children maps, taken on first descent into a
//!   phase.
//! * **When no route is active, [`phase`] is a no-op** — one
//!   thread-local read. Library code can therefore instrument
//!   unconditionally.
//!
//! Two exports: [`Profiler::snapshot`] (a serde tree for
//! `GET /debug/profile`) and [`Profiler::collapsed`] (collapsed-stack
//! text — `route;phase;subphase self_ns` per line — which flamegraph
//! tooling consumes directly).
//!
//! Each request additionally gets a [`PhaseCollector`]: a per-request
//! accumulator of phase path → nanoseconds plus cache hit/miss counts,
//! which the serving edge copies into the flight recorder so a single
//! request's breakdown survives after the fact.

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::marker::PhantomData;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, RwLock};
use std::time::{Duration, Instant};

use serde::{Deserialize, Serialize};

/// One node of the hierarchical profile tree. All counters are relaxed
/// atomics; concurrent guards on many threads aggregate without locks.
#[derive(Debug, Default)]
struct PhaseNode {
    calls: AtomicU64,
    total_ns: AtomicU64,
    /// Inclusive time accumulated by direct children (possibly from
    /// parallel workers, so it may exceed `total_ns`).
    child_ns: AtomicU64,
    children: RwLock<BTreeMap<&'static str, Arc<PhaseNode>>>,
}

impl PhaseNode {
    /// The child named `name`, created on first descent.
    fn child(&self, name: &'static str) -> Arc<PhaseNode> {
        if let Some(node) = self
            .children
            .read()
            .unwrap_or_else(|p| p.into_inner())
            .get(name)
        {
            return Arc::clone(node);
        }
        let mut children = self.children.write().unwrap_or_else(|p| p.into_inner());
        Arc::clone(children.entry(name).or_default())
    }

    fn add(&self, elapsed_ns: u64) {
        self.calls.fetch_add(1, Ordering::Relaxed);
        self.total_ns.fetch_add(elapsed_ns, Ordering::Relaxed);
    }

    fn snapshot(&self, name: &str) -> PhaseSnapshot {
        let children: Vec<PhaseSnapshot> = self
            .children
            .read()
            .unwrap_or_else(|p| p.into_inner())
            .iter()
            .map(|(child_name, node)| node.snapshot(child_name))
            .collect();
        let total_ns = self.total_ns.load(Ordering::Relaxed);
        let child_ns = self.child_ns.load(Ordering::Relaxed);
        PhaseSnapshot {
            name: name.to_owned(),
            calls: self.calls.load(Ordering::Relaxed),
            total_ns,
            self_ns: total_ns.saturating_sub(child_ns),
            children,
        }
    }
}

/// One node of a profile snapshot: inclusive time, derived self-time
/// and call count, with children nested beneath.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PhaseSnapshot {
    /// Phase name (route name at the root).
    pub name: String,
    /// Times this phase was entered.
    pub calls: u64,
    /// Inclusive nanoseconds across all calls.
    pub total_ns: u64,
    /// `total_ns` minus child inclusive time, saturating at zero
    /// (parallel children can overlap the parent's wall clock).
    pub self_ns: u64,
    /// Nested phases, sorted by name.
    pub children: Vec<PhaseSnapshot>,
}

/// A serializable snapshot of the whole profile tree.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ProfileReport {
    /// One tree per route, sorted by route name.
    pub routes: Vec<PhaseSnapshot>,
}

/// Per-request accumulator: phase path → nanoseconds, plus cache
/// probe outcomes. The serving edge hands one to [`Profiler::route`]
/// and copies the result into the request's flight record.
#[derive(Debug, Default)]
pub struct PhaseCollector {
    phases: Mutex<BTreeMap<String, u64>>,
    cache_hits: AtomicU64,
    cache_misses: AtomicU64,
    /// Sampled quality score, stored as `(score * 1e6) + 1` so the
    /// atomic's zero default means "not sampled".
    quality_micro: AtomicU64,
}

impl PhaseCollector {
    /// An empty collector.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `elapsed` under `path` (`;`-joined phase names relative to
    /// the route root, e.g. `"handle;scan"`). Repeated paths sum.
    pub fn add(&self, path: &str, elapsed: Duration) {
        let ns = elapsed.as_nanos().min(u128::from(u64::MAX)) as u64;
        let mut phases = self.phases.lock().unwrap_or_else(|p| p.into_inner());
        *phases.entry(path.to_owned()).or_insert(0) += ns;
    }

    /// Counts cache probe outcomes attributed to this request.
    pub fn add_cache_events(&self, hits: u64, misses: u64) {
        self.cache_hits.fetch_add(hits, Ordering::Relaxed);
        self.cache_misses.fetch_add(misses, Ordering::Relaxed);
    }

    /// The accumulated `(path, nanoseconds)` pairs, sorted by path.
    pub fn phases(&self) -> Vec<(String, u64)> {
        self.phases
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .iter()
            .map(|(path, &ns)| (path.clone(), ns))
            .collect()
    }

    /// Cache probes answered from the cache during this request.
    pub fn cache_hits(&self) -> u64 {
        self.cache_hits.load(Ordering::Relaxed)
    }

    /// Cache probes that had to compute during this request.
    pub fn cache_misses(&self) -> u64 {
        self.cache_misses.load(Ordering::Relaxed)
    }

    /// Attributes a sampled explanation-quality score in `[0, 1]` to
    /// this request. The last write wins; the serving edge copies it
    /// into the request's flight record.
    pub fn set_quality(&self, score: f64) {
        let micro = (score.clamp(0.0, 1.0) * 1e6) as u64 + 1;
        self.quality_micro.store(micro, Ordering::Relaxed);
    }

    /// The sampled quality score, if the estimator sampled this
    /// request.
    pub fn quality(&self) -> Option<f64> {
        match self.quality_micro.load(Ordering::Relaxed) {
            0 => None,
            micro => Some((micro - 1) as f64 / 1e6),
        }
    }
}

/// The profiling context active on a thread: where in the tree new
/// phases attach, and which request collects them. Cloneable so the
/// batch pool can capture it at submit ([`current`]) and [`install`]
/// it in each worker.
#[derive(Clone)]
pub struct ProfileCtx {
    node: Arc<PhaseNode>,
    collector: Arc<PhaseCollector>,
    /// `;`-joined phase path relative to the route root; empty at the
    /// root itself.
    path: Arc<str>,
}

impl std::fmt::Debug for ProfileCtx {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ProfileCtx")
            .field("path", &self.path)
            .finish_non_exhaustive()
    }
}

thread_local! {
    static ACTIVE: RefCell<Vec<ProfileCtx>> = const { RefCell::new(Vec::new()) };
}

/// The always-on profile tree, keyed by route.
#[derive(Debug, Default)]
pub struct Profiler {
    routes: RwLock<BTreeMap<String, Arc<PhaseNode>>>,
}

impl Profiler {
    /// An empty profiler.
    pub fn new() -> Self {
        Self::default()
    }

    fn root(&self, route: &str) -> Arc<PhaseNode> {
        if let Some(node) = self
            .routes
            .read()
            .unwrap_or_else(|p| p.into_inner())
            .get(route)
        {
            return Arc::clone(node);
        }
        let mut routes = self.routes.write().unwrap_or_else(|p| p.into_inner());
        Arc::clone(routes.entry(route.to_owned()).or_default())
    }

    /// Installs `route` as this thread's profiling context until the
    /// guard drops; phases opened beneath attach to the route's tree
    /// and accumulate into `collector`. The guard's own elapsed time
    /// is added to the route root.
    pub fn route(&self, route: &str, collector: Arc<PhaseCollector>) -> RouteGuard {
        let node = self.root(route);
        ACTIVE.with(|stack| {
            stack.borrow_mut().push(ProfileCtx {
                node: Arc::clone(&node),
                collector,
                path: Arc::from(""),
            });
        });
        RouteGuard {
            started: Instant::now(),
            node,
            _not_send: PhantomData,
        }
    }

    /// Attributes an externally-measured duration (e.g. queue wait or
    /// request parsing, which happen before the route is known) as a
    /// direct child of `route`'s root, also growing the root's
    /// inclusive time so route totals approximate full request time.
    pub fn record_external(&self, route: &str, phase: &'static str, elapsed: Duration) {
        let ns = elapsed.as_nanos().min(u128::from(u64::MAX)) as u64;
        let root = self.root(route);
        root.child(phase).add(ns);
        root.child_ns.fetch_add(ns, Ordering::Relaxed);
        root.total_ns.fetch_add(ns, Ordering::Relaxed);
    }

    /// A serializable snapshot of every route's tree.
    pub fn snapshot(&self) -> ProfileReport {
        ProfileReport {
            routes: self
                .routes
                .read()
                .unwrap_or_else(|p| p.into_inner())
                .iter()
                .map(|(route, node)| node.snapshot(route))
                .collect(),
        }
    }

    /// Collapsed-stack rendering: one `route;phase;subphase self_ns`
    /// line per tree node with nonzero self-time, the input format of
    /// flamegraph tooling (`flamegraph.pl`, inferno, speedscope).
    pub fn collapsed(&self) -> String {
        let mut out = String::new();
        for route in self.snapshot().routes {
            collapse_into(&mut out, &route.name, &route);
        }
        out
    }
}

fn collapse_into(out: &mut String, stack: &str, node: &PhaseSnapshot) {
    if node.self_ns > 0 {
        out.push_str(stack);
        out.push(' ');
        out.push_str(&node.self_ns.to_string());
        out.push('\n');
    }
    for child in &node.children {
        let frame = format!("{stack};{}", child.name);
        collapse_into(out, &frame, child);
    }
}

/// RAII guard for an active route context; see [`Profiler::route`].
/// Not `Send` — it must drop on the thread that opened it.
#[derive(Debug)]
pub struct RouteGuard {
    started: Instant,
    node: Arc<PhaseNode>,
    _not_send: PhantomData<*const ()>,
}

impl Drop for RouteGuard {
    fn drop(&mut self) {
        let elapsed = self.started.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64;
        self.node.add(elapsed);
        ACTIVE.with(|stack| {
            stack.borrow_mut().pop();
        });
    }
}

/// RAII guard for one phase; see [`phase`]. Not `Send`.
#[derive(Debug)]
pub struct PhaseGuard {
    started: Instant,
    node: Arc<PhaseNode>,
    parent: Arc<PhaseNode>,
    collector: Arc<PhaseCollector>,
    path: Arc<str>,
    _not_send: PhantomData<*const ()>,
}

impl Drop for PhaseGuard {
    fn drop(&mut self) {
        let elapsed = self.started.elapsed();
        let ns = elapsed.as_nanos().min(u128::from(u64::MAX)) as u64;
        self.node.add(ns);
        self.parent.child_ns.fetch_add(ns, Ordering::Relaxed);
        self.collector.add(&self.path, elapsed);
        ACTIVE.with(|stack| {
            stack.borrow_mut().pop();
        });
    }
}

/// Opens phase `name` under the innermost active context. Returns
/// `None` (and does nothing else) when no route is active on this
/// thread — instrumentation in library code costs one thread-local
/// read outside the serving path.
pub fn phase(name: &'static str) -> Option<PhaseGuard> {
    ACTIVE.with(|stack| {
        let parent = stack.borrow().last().cloned()?;
        let node = parent.node.child(name);
        let path: Arc<str> = if parent.path.is_empty() {
            Arc::from(name)
        } else {
            Arc::from(format!("{};{name}", parent.path))
        };
        stack.borrow_mut().push(ProfileCtx {
            node: Arc::clone(&node),
            collector: Arc::clone(&parent.collector),
            path: Arc::clone(&path),
        });
        Some(PhaseGuard {
            started: Instant::now(),
            node,
            parent: parent.node,
            collector: parent.collector,
            path,
            _not_send: PhantomData,
        })
    })
}

/// The innermost active profiling context on this thread, if any — the
/// cross-thread propagation primitive (capture where work is
/// submitted, [`install`] in the worker).
pub fn current() -> Option<ProfileCtx> {
    ACTIVE.with(|stack| stack.borrow().last().cloned())
}

/// Counts cache probe outcomes against the current request's
/// collector; a no-op outside an active route.
pub fn cache_events(hits: u64, misses: u64) {
    if hits == 0 && misses == 0 {
        return;
    }
    ACTIVE.with(|stack| {
        if let Some(ctx) = stack.borrow().last() {
            ctx.collector.add_cache_events(hits, misses);
        }
    });
}

/// Attributes a sampled quality score to the current request's
/// collector; a no-op outside an active route.
pub fn quality_sample(score: f64) {
    ACTIVE.with(|stack| {
        if let Some(ctx) = stack.borrow().last() {
            ctx.collector.set_quality(score);
        }
    });
}

/// RAII guard returned by [`install`]; pops the context when dropped.
/// Not `Send` — a context installation belongs to its thread.
#[derive(Debug)]
pub struct InstallGuard {
    _not_send: PhantomData<*const ()>,
}

impl Drop for InstallGuard {
    fn drop(&mut self) {
        ACTIVE.with(|stack| {
            stack.borrow_mut().pop();
        });
    }
}

/// Installs `ctx` as this thread's innermost profiling context until
/// the guard drops. Phases opened beneath attach where the captured
/// context pointed (the batch pool uses this so worker phases nest
/// under the submitting request's phase).
pub fn install(ctx: ProfileCtx) -> InstallGuard {
    ACTIVE.with(|stack| stack.borrow_mut().push(ctx));
    InstallGuard {
        _not_send: PhantomData,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn find<'a>(report: &'a ProfileReport, route: &str) -> &'a PhaseSnapshot {
        report
            .routes
            .iter()
            .find(|r| r.name == route)
            .expect("route present")
    }

    fn child<'a>(node: &'a PhaseSnapshot, name: &str) -> &'a PhaseSnapshot {
        node.children
            .iter()
            .find(|c| c.name == name)
            .unwrap_or_else(|| panic!("child {name} under {}", node.name))
    }

    #[test]
    fn phase_without_route_is_noop() {
        assert!(phase("scan").is_none());
        assert!(current().is_none());
        cache_events(3, 1); // must not panic or leak anywhere
    }

    #[test]
    fn nested_phases_build_a_tree_and_collector() {
        let profiler = Profiler::new();
        let collector = Arc::new(PhaseCollector::new());
        {
            let _route = profiler.route("recommend", Arc::clone(&collector));
            let _handle = phase("handle").expect("route active");
            {
                let _scan = phase("scan").unwrap();
                std::thread::sleep(Duration::from_millis(2));
                cache_events(5, 2);
            }
            let _rank = phase("rank").unwrap();
        }
        assert!(current().is_none(), "guards restore the empty stack");

        let report = profiler.snapshot();
        let route = find(&report, "recommend");
        assert_eq!(route.calls, 1);
        let handle = child(route, "handle");
        let scan = child(handle, "scan");
        assert_eq!(scan.calls, 1);
        assert!(scan.total_ns >= 2_000_000, "scan slept 2ms");
        assert!(
            handle.total_ns >= scan.total_ns,
            "parent inclusive covers child"
        );
        assert!(handle.self_ns <= handle.total_ns);
        child(handle, "rank");

        let phases = collector.phases();
        let paths: Vec<&str> = phases.iter().map(|(p, _)| p.as_str()).collect();
        assert_eq!(paths, vec!["handle", "handle;rank", "handle;scan"]);
        assert_eq!(collector.cache_hits(), 5);
        assert_eq!(collector.cache_misses(), 2);
    }

    #[test]
    fn repeated_phases_aggregate_calls_and_time() {
        let profiler = Profiler::new();
        let collector = Arc::new(PhaseCollector::new());
        {
            let _route = profiler.route("explain", Arc::clone(&collector));
            for _ in 0..10 {
                let _p = phase("evidence").unwrap();
            }
        }
        let report = profiler.snapshot();
        assert_eq!(child(find(&report, "explain"), "evidence").calls, 10);
        assert_eq!(collector.phases().len(), 1, "same path sums in place");
    }

    #[test]
    fn record_external_attaches_to_route_root() {
        let profiler = Profiler::new();
        profiler.record_external("recommend", "queue_wait", Duration::from_micros(500));
        let report = profiler.snapshot();
        let route = find(&report, "recommend");
        assert_eq!(child(route, "queue_wait").total_ns, 500_000);
        assert_eq!(route.total_ns, 500_000, "root inclusive grows too");
        assert_eq!(route.self_ns, 0, "external time is never root self-time");
    }

    #[test]
    fn contexts_install_across_threads() {
        let profiler = Arc::new(Profiler::new());
        let collector = Arc::new(PhaseCollector::new());
        {
            let _route = profiler.route("recommend", Arc::clone(&collector));
            let _handle = phase("handle").unwrap();
            let ctx = current().expect("context capturable");
            std::thread::scope(|scope| {
                for _ in 0..4 {
                    let ctx = ctx.clone();
                    scope.spawn(move || {
                        let _install = install(ctx);
                        let _scan = phase("scan").unwrap();
                        cache_events(1, 0);
                    });
                }
            });
        }
        let report = profiler.snapshot();
        let handle = child(find(&report, "recommend"), "handle");
        assert_eq!(
            child(handle, "scan").calls,
            4,
            "worker phases nest under submit point"
        );
        assert_eq!(collector.cache_hits(), 4);
        assert_eq!(
            collector
                .phases()
                .iter()
                .find(|(p, _)| p == "handle;scan")
                .map(|&(_, ns)| ns > 0),
            Some(true)
        );
    }

    #[test]
    fn collapsed_stack_format_is_parseable() {
        let profiler = Profiler::new();
        let collector = Arc::new(PhaseCollector::new());
        {
            let _route = profiler.route("recommend", Arc::clone(&collector));
            let _handle = phase("handle").unwrap();
            let _scan = phase("scan").unwrap();
            std::thread::sleep(Duration::from_millis(1));
        }
        let collapsed = profiler.collapsed();
        assert!(!collapsed.is_empty());
        for line in collapsed.lines() {
            let (stack, count) = line.rsplit_once(' ').expect("`stack count` shape");
            assert!(!stack.is_empty());
            assert!(stack.starts_with("recommend"));
            assert!(count.parse::<u64>().expect("numeric sample value") > 0);
        }
        assert!(
            collapsed
                .lines()
                .any(|l| l.starts_with("recommend;handle;scan ")),
            "nested frames render as semicolon-joined stacks: {collapsed:?}"
        );
    }

    #[test]
    fn profile_report_round_trips_through_json() {
        let profiler = Profiler::new();
        let collector = Arc::new(PhaseCollector::new());
        {
            let _route = profiler.route("healthz", collector);
        }
        let json = serde_json::to_string(&profiler.snapshot()).unwrap();
        let back: ProfileReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back.routes.len(), 1);
        assert_eq!(back.routes[0].name, "healthz");
    }
}

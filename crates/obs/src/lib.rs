//! Observability core for the explanation pipeline.
//!
//! Recommenders predict, interfaces fire, studies emulate users — and
//! until now none of it left a trace. This crate provides the three
//! primitives the rest of the workspace instruments itself with:
//!
//! * **[`Metrics`]** — a `Send + Sync` registry of named atomic
//!   [`Counter`]s, [`Gauge`]s and fixed-bucket latency [`Histogram`]s
//!   (p50/p95/p99), cheap enough for the predict/explain hot path;
//! * **spans** — [`Telemetry::span`] / the [`span!`] macro time a named
//!   region and deliver a structured [`SpanEvent`] to a pluggable
//!   [`Subscriber`] ([`NoopSubscriber`] by default,
//!   [`JsonLinesSubscriber`] for structured logs);
//! * **[`MetricsReport`]** — a serde-serializable snapshot of every
//!   registered instrument, rendered by `repro` and the `telemetry`
//!   example.
//!
//! On top of those, three request-centric layers:
//!
//! * **tracing** — [`Telemetry::root_span`] starts a request trace
//!   ([`trace::TraceContext`]: 128-bit trace id, span id, parent id);
//!   spans opened beneath it nest into a tree, and
//!   [`trace::current`]/[`trace::install`] carry the context across
//!   thread boundaries (the batch pool does this for its workers);
//! * **tail sampling** — [`trace::TailSamplingSubscriber`] buffers
//!   in-flight traces in a bounded lock-striped ring and flushes only
//!   the slow, errored, or head-sampled ones to the inner subscriber;
//! * **SLOs** — [`slo::SloMonitor`] tracks per-route good/total ratios
//!   and error-budget burn rate over a rolling window of time buckets,
//!   advanced on record with no background thread; and
//!   [`promtext::render`] exposes the whole registry as Prometheus text
//!   exposition 0.0.4;
//! * **phase profiling** — [`profile::Profiler`] is an always-on
//!   cooperative profiler: scoped RAII [`profile::phase`] guards nest
//!   into a per-route tree with atomic self-time/call-count
//!   aggregation, exported as JSON or collapsed-stack text for
//!   flamegraph tooling;
//! * **flight recording** — [`flight::FlightRecorder`] is the black
//!   box: a bounded lock-striped ring of the last N completed request
//!   records, retained regardless of tail-sampling decisions and
//!   dumped to stderr on panic or SLO fast-burn degradation;
//! * **time series** — [`timeseries::TimeSeries`] periodically
//!   snapshots the whole registry into bounded per-series rings:
//!   counters become per-interval rates, histograms become
//!   windowed-delta percentiles (bucket subtraction between
//!   consecutive snapshots), driven cooperatively with no sampler
//!   thread;
//! * **watchdog** — [`watch::Watchdog`] runs EWMA/z-score and
//!   absolute-threshold detectors over selected series with hysteresis
//!   latches, appending structured [`watch::Incident`] entries to a
//!   bounded incident log and firing the flight dump once per incident
//!   — the unified trigger path for panics, SLO fast-burn and
//!   sustained-low quality.
//!
//! The metric taxonomy (`algo.*`, `explain.*`, `eval.*`, `serve.*`,
//! `trace.*`, `slo.*`, `ts.*`, `watch.*`) and its mapping onto the
//! survey's seven explanation aims are documented in
//! `docs/observability.md`.
//!
//! ```
//! use exrec_obs::{span, Telemetry};
//!
//! let obs = Telemetry::default();
//! let predictions = obs.metrics().counter("algo.predict.user_knn");
//! {
//!     let _span = span!(obs, "predict", model = "user_knn");
//!     predictions.incr();
//! }
//! let report = obs.report();
//! assert_eq!(report.counters["algo.predict.user_knn"], 1);
//! assert_eq!(report.histograms["span_ns.predict"].count, 1);
//! ```

#![deny(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod flight;
pub mod meta;
pub mod metrics;
pub mod profile;
pub mod promtext;
pub mod quality;
pub mod slo;
pub mod span;
pub mod timeseries;
pub mod trace;
pub mod watch;

pub use flight::{FlightConfig, FlightRecorder, IngestRecord, RequestRecord};
pub use meta::RunMeta;
pub use metrics::{
    Counter, Gauge, Histogram, HistogramRaw, HistogramSummary, Metrics, MetricsReport,
};
pub use profile::{PhaseCollector, PhaseSnapshot, ProfileReport, Profiler};
pub use quality::{QualityMonitor, QualitySample, QualitySnapshot};
pub use slo::{RouteStatus, SloConfig, SloMonitor};
pub use span::{
    CountingSubscriber, JsonLinesSubscriber, NoopSubscriber, SpanEvent, Subscriber, Telemetry,
};
pub use timeseries::{Stat, Tick, TimeSeries, TsConfig, TsSnapshot};
pub use trace::{IdSource, TailConfig, TailSamplingSubscriber, TraceContext};
pub use watch::{Detector, Incident, IncidentLog, Rule, WatchConfig, Watchdog};

//! Observability core for the explanation pipeline.
//!
//! Recommenders predict, interfaces fire, studies emulate users — and
//! until now none of it left a trace. This crate provides the three
//! primitives the rest of the workspace instruments itself with:
//!
//! * **[`Metrics`]** — a `Send + Sync` registry of named atomic
//!   [`Counter`]s, [`Gauge`]s and fixed-bucket latency [`Histogram`]s
//!   (p50/p95/p99), cheap enough for the predict/explain hot path;
//! * **spans** — [`Telemetry::span`] / the [`span!`] macro time a named
//!   region and deliver a structured [`SpanEvent`] to a pluggable
//!   [`Subscriber`] ([`NoopSubscriber`] by default,
//!   [`JsonLinesSubscriber`] for structured logs);
//! * **[`MetricsReport`]** — a serde-serializable snapshot of every
//!   registered instrument, rendered by `repro` and the `telemetry`
//!   example.
//!
//! The metric taxonomy (`algo.*`, `explain.*`, `eval.*`) and its mapping
//! onto the survey's seven explanation aims are documented in
//! `docs/observability.md`.
//!
//! ```
//! use exrec_obs::{span, Telemetry};
//!
//! let obs = Telemetry::default();
//! let predictions = obs.metrics().counter("algo.predict.user_knn");
//! {
//!     let _span = span!(obs, "predict", model = "user_knn");
//!     predictions.incr();
//! }
//! let report = obs.report();
//! assert_eq!(report.counters["algo.predict.user_knn"], 1);
//! assert_eq!(report.histograms["span_ns.predict"].count, 1);
//! ```

#![deny(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod metrics;
pub mod span;

pub use metrics::{Counter, Gauge, Histogram, HistogramSummary, Metrics, MetricsReport};
pub use span::{
    CountingSubscriber, JsonLinesSubscriber, NoopSubscriber, SpanEvent, Subscriber, Telemetry,
};

//! Rolling-window SLO monitoring: per-route good/total ratios and burn
//! rate over a ring of fixed-width time buckets.
//!
//! An SLO here is a latency objective ("requests answer within
//! `objective_ns`") plus a target good ratio over a rolling window
//! ("99% over the last minute"). The monitor keeps, per route, a ring
//! of epoch-tagged buckets that is advanced *on record* — there is no
//! background thread; a bucket whose epoch is stale is reset by the
//! next writer to land in its slot, and readers simply skip buckets
//! outside the window. Recording is one mutex lock and two adds.
//!
//! **Burn rate** is the classic SRE measure: the rate the error budget
//! is being spent, `(1 - good_ratio) / (1 - target)`. Burn 1.0 spends
//! exactly the budget; a sustained burn above ~10 exhausts a 30-day
//! budget in hours. The monitor computes it over the full window and
//! over a short *fast-burn* suffix, and flags a route degraded when the
//! fast window burns hot on enough samples — the signal `/healthz`
//! surfaces so load balancers back off before the budget is gone.
//!
//! Deterministic tests drive [`SloMonitor::record_at`] /
//! [`SloMonitor::status_at`] with explicit offsets; production code
//! uses [`SloMonitor::record`] / [`SloMonitor::status`], which read the
//! process clock ([`crate::trace::process_offset_ns`]).

use std::collections::BTreeMap;
use std::sync::{Mutex, RwLock};

use crate::trace::process_offset_ns;

/// Tuning of an [`SloMonitor`].
#[derive(Debug, Clone, Copy)]
pub struct SloConfig {
    /// Latency objective: a request at or under this is *good* (if it
    /// also succeeded).
    pub objective_ns: u64,
    /// Target good ratio over the window, e.g. `0.99`.
    pub target: f64,
    /// Width of one ring bucket in nanoseconds.
    pub bucket_width_ns: u64,
    /// Buckets in the rolling window (window = width × buckets).
    pub buckets: usize,
    /// Buckets in the fast-burn suffix window.
    pub fast_burn_buckets: usize,
    /// Fast-window burn rate at or above which a route is degraded.
    pub fast_burn_threshold: f64,
    /// Minimum events in the fast window before it may trip (keeps a
    /// single slow request on an idle route from flapping `/healthz`).
    pub min_events: u64,
}

impl Default for SloConfig {
    /// 250ms objective, 99% target over a 60×1s window; degraded when
    /// the last 5s burn at ≥ 6× on at least 10 requests.
    fn default() -> Self {
        SloConfig {
            objective_ns: 250_000_000,
            target: 0.99,
            bucket_width_ns: 1_000_000_000,
            buckets: 60,
            fast_burn_buckets: 5,
            fast_burn_threshold: 6.0,
            min_events: 10,
        }
    }
}

/// One ring slot: counts tagged with the epoch they belong to. Epoch 0
/// means never written.
#[derive(Debug, Clone, Copy, Default)]
struct Bucket {
    epoch: u64,
    good: u64,
    total: u64,
}

/// Per-route ring of buckets.
#[derive(Debug)]
struct RouteWindow {
    buckets: Vec<Bucket>,
}

/// A route's SLO standing over the rolling window.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RouteStatus {
    /// Good requests in the window.
    pub good: u64,
    /// Total requests in the window.
    pub total: u64,
    /// `good / total`; `1.0` on an empty window (no news is good news).
    pub good_ratio: f64,
    /// Error-budget burn rate over the full window.
    pub burn_rate: f64,
    /// Burn rate over the fast-burn suffix window.
    pub fast_burn_rate: f64,
    /// Whether the fast window trips the degraded threshold.
    pub degraded: bool,
}

/// Tracks per-route SLO windows. `Send + Sync`; share via `Arc`.
pub struct SloMonitor {
    config: SloConfig,
    routes: RwLock<BTreeMap<String, Mutex<RouteWindow>>>,
}

/// Lock with poison recovery: a panicking recorder must not take SLO
/// accounting down with it.
macro_rules! lock {
    ($m:expr) => {
        $m.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
    };
}

impl SloMonitor {
    /// A monitor with the given objective and window shape.
    pub fn new(config: SloConfig) -> Self {
        SloMonitor {
            config: SloConfig {
                buckets: config.buckets.max(1),
                fast_burn_buckets: config.fast_burn_buckets.clamp(1, config.buckets.max(1)),
                bucket_width_ns: config.bucket_width_ns.max(1),
                ..config
            },
            routes: RwLock::new(BTreeMap::new()),
        }
    }

    /// The monitor's configuration (after clamping).
    pub fn config(&self) -> &SloConfig {
        &self.config
    }

    /// Records one request outcome for `route` at the current process
    /// offset. `ok` is transport-level success (e.g. status < 500); a
    /// request is *good* iff it is ok **and** within the objective.
    pub fn record(&self, route: &str, elapsed_ns: u64, ok: bool) {
        self.record_at(route, elapsed_ns, ok, process_offset_ns());
    }

    /// [`SloMonitor::record`] at an explicit offset, for deterministic
    /// tests.
    pub fn record_at(&self, route: &str, elapsed_ns: u64, ok: bool, offset_ns: u64) {
        // Epochs start at 1 so that 0 can mean "slot never written".
        let epoch = offset_ns / self.config.bucket_width_ns + 1;
        let slot = (epoch % self.config.buckets as u64) as usize;
        let good = ok && elapsed_ns <= self.config.objective_ns;

        // Fast path: the route already has a window.
        {
            let routes = self
                .routes
                .read()
                .unwrap_or_else(|poisoned| poisoned.into_inner());
            if let Some(window) = routes.get(route) {
                let mut w = lock!(window);
                Self::bump(&mut w.buckets[slot], epoch, good);
                return;
            }
        }
        let mut routes = self
            .routes
            .write()
            .unwrap_or_else(|poisoned| poisoned.into_inner());
        let window = routes.entry(route.to_owned()).or_insert_with(|| {
            Mutex::new(RouteWindow {
                buckets: vec![Bucket::default(); self.config.buckets],
            })
        });
        let mut w = lock!(window);
        Self::bump(&mut w.buckets[slot], epoch, good);
    }

    fn bump(bucket: &mut Bucket, epoch: u64, good: bool) {
        if bucket.epoch != epoch {
            // This slot last held an older epoch's counts: the window
            // advanced past them, start the slot over.
            *bucket = Bucket {
                epoch,
                good: 0,
                total: 0,
            };
        }
        bucket.total += 1;
        if good {
            bucket.good += 1;
        }
    }

    /// The rolling-window standing of `route` at the current process
    /// offset; `None` if the route has never recorded.
    pub fn status(&self, route: &str) -> Option<RouteStatus> {
        self.status_at(route, process_offset_ns())
    }

    /// [`SloMonitor::status`] at an explicit offset.
    pub fn status_at(&self, route: &str, offset_ns: u64) -> Option<RouteStatus> {
        let routes = self
            .routes
            .read()
            .unwrap_or_else(|poisoned| poisoned.into_inner());
        let window = routes.get(route)?;
        let w = lock!(window);
        Some(self.summarize(&w.buckets, offset_ns))
    }

    /// Standing of every route that has ever recorded.
    pub fn snapshot(&self) -> BTreeMap<String, RouteStatus> {
        self.snapshot_at(process_offset_ns())
    }

    /// [`SloMonitor::snapshot`] at an explicit offset.
    pub fn snapshot_at(&self, offset_ns: u64) -> BTreeMap<String, RouteStatus> {
        let routes = self
            .routes
            .read()
            .unwrap_or_else(|poisoned| poisoned.into_inner());
        routes
            .iter()
            .map(|(route, window)| {
                let w = lock!(window);
                (route.clone(), self.summarize(&w.buckets, offset_ns))
            })
            .collect()
    }

    /// Whether any route is currently degraded.
    pub fn degraded(&self) -> bool {
        self.snapshot().values().any(|s| s.degraded)
    }

    fn summarize(&self, buckets: &[Bucket], offset_ns: u64) -> RouteStatus {
        let now_epoch = offset_ns / self.config.bucket_width_ns + 1;
        let in_window = |b: &Bucket, len: u64| -> bool {
            b.epoch != 0 && b.epoch <= now_epoch && now_epoch - b.epoch < len
        };
        let (mut good, mut total) = (0u64, 0u64);
        let (mut fast_good, mut fast_total) = (0u64, 0u64);
        for b in buckets {
            if in_window(b, self.config.buckets as u64) {
                good += b.good;
                total += b.total;
            }
            if in_window(b, self.config.fast_burn_buckets as u64) {
                fast_good += b.good;
                fast_total += b.total;
            }
        }
        let ratio = |g: u64, t: u64| if t == 0 { 1.0 } else { g as f64 / t as f64 };
        let budget = (1.0 - self.config.target).max(f64::EPSILON);
        let burn = |g: u64, t: u64| (1.0 - ratio(g, t)) / budget;
        let fast_burn_rate = burn(fast_good, fast_total);
        RouteStatus {
            good,
            total,
            good_ratio: ratio(good, total),
            burn_rate: burn(good, total),
            fast_burn_rate,
            degraded: fast_total >= self.config.min_events
                && fast_burn_rate >= self.config.fast_burn_threshold,
        }
    }
}

impl std::fmt::Debug for SloMonitor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SloMonitor")
            .field("config", &self.config)
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// 100µs objective, 90% target, 10 × 1ms buckets, fast window 2,
    /// degraded at fast burn ≥ 5 on ≥ 4 events.
    fn cfg() -> SloConfig {
        SloConfig {
            objective_ns: 100_000,
            target: 0.9,
            bucket_width_ns: 1_000_000,
            buckets: 10,
            fast_burn_buckets: 2,
            fast_burn_threshold: 5.0,
            min_events: 4,
        }
    }

    const MS: u64 = 1_000_000;

    #[test]
    fn good_requires_ok_and_within_objective() {
        let slo = SloMonitor::new(cfg());
        slo.record_at("r", 50_000, true, 0); // fast + ok → good
        slo.record_at("r", 500_000, true, 0); // slow → bad
        slo.record_at("r", 50_000, false, 0); // errored → bad
        let s = slo.status_at("r", 0).unwrap();
        assert_eq!((s.good, s.total), (1, 3));
        assert!((s.good_ratio - 1.0 / 3.0).abs() < 1e-9);
        assert!(slo.status_at("other", 0).is_none());
    }

    #[test]
    fn empty_window_reads_as_healthy() {
        let slo = SloMonitor::new(cfg());
        slo.record_at("r", 50_000, true, 0);
        // Far in the future the window is empty: ratio 1, burn 0.
        let s = slo.status_at("r", 100 * MS).unwrap();
        assert_eq!(s.total, 0);
        assert_eq!(s.good_ratio, 1.0);
        assert_eq!(s.burn_rate, 0.0);
        assert!(!s.degraded);
    }

    #[test]
    fn window_slides_and_slots_recycle() {
        let slo = SloMonitor::new(cfg());
        slo.record_at("r", 50_000, true, 0);
        slo.record_at("r", 50_000, true, 5 * MS);
        assert_eq!(slo.status_at("r", 5 * MS).unwrap().total, 2);
        // 12ms later the first record left the 10-bucket window...
        assert_eq!(slo.status_at("r", 12 * MS).unwrap().total, 1);
        // ...and a write 10 buckets after the first reuses its slot.
        slo.record_at("r", 50_000, true, 10 * MS);
        let s = slo.status_at("r", 10 * MS).unwrap();
        assert_eq!(s.total, 2, "recycled slot must not resurrect old counts");
    }

    #[test]
    fn burn_rate_measures_budget_spend() {
        let slo = SloMonitor::new(cfg());
        // 8 good, 2 bad → ratio 0.8 → burn (1-0.8)/(1-0.9) = 2.0.
        for _ in 0..8 {
            slo.record_at("r", 50_000, true, 0);
        }
        for _ in 0..2 {
            slo.record_at("r", 500_000, true, 0);
        }
        let s = slo.status_at("r", 0).unwrap();
        assert!((s.burn_rate - 2.0).abs() < 1e-9, "burn {}", s.burn_rate);
        assert!(!s.degraded, "burn 2 < threshold 5");
    }

    #[test]
    fn fast_burn_trips_degraded_and_recovers() {
        let slo = SloMonitor::new(cfg());
        // Old good traffic outside the fast window.
        for _ in 0..50 {
            slo.record_at("r", 50_000, true, 0);
        }
        // A burst of failures in the fast window (epochs 8–9 at t=9ms).
        for _ in 0..6 {
            slo.record_at("r", 500_000, true, 9 * MS);
        }
        let s = slo.status_at("r", 9 * MS).unwrap();
        assert!(
            s.fast_burn_rate >= 5.0,
            "all-bad fast window burns at 1/budget = 10"
        );
        assert!(s.degraded);
        assert!(slo.snapshot_at(9 * MS)["r"].degraded);
        // Once the burst ages out of the fast window the route recovers
        // (full-window burn may still be elevated).
        let later = slo.status_at("r", 15 * MS).unwrap();
        assert!(!later.degraded);
    }

    #[test]
    fn min_events_guards_idle_routes() {
        let slo = SloMonitor::new(cfg());
        // 3 bad requests burn hot but are under min_events=4.
        for _ in 0..3 {
            slo.record_at("r", 500_000, true, 0);
        }
        assert!(!slo.status_at("r", 0).unwrap().degraded);
        slo.record_at("r", 500_000, true, 0);
        assert!(slo.status_at("r", 0).unwrap().degraded);
    }

    #[test]
    fn routes_are_independent() {
        let slo = SloMonitor::new(cfg());
        for _ in 0..10 {
            slo.record_at("bad", 500_000, true, 0);
            slo.record_at("good", 50_000, true, 0);
        }
        let snap = slo.snapshot_at(0);
        assert!(snap["bad"].degraded);
        assert!(!snap["good"].degraded);
        assert!(slo.snapshot_at(0).values().any(|s| s.degraded));
    }
}

//! Build/run identity: the metadata stamp shared by benchmark reports
//! and live processes.
//!
//! [`RunMeta`] began life in `exrec-bench`'s report stamp; it lives
//! here so the serving edge can expose the same block through
//! `/healthz` and `/debug/world` without a circular dependency (bench
//! depends on serve). A bench report and a live process stamped with
//! the same `git_rev`/`world`/`threads` are measuring the same thing —
//! that correlation is what makes "does production match the bench?"
//! answerable.

use serde::{Deserialize, Serialize};

/// Build/world metadata stamped into every benchmark report and served
/// from `/healthz`, so a diff can refuse to compare numbers measured
/// under different conditions — and an operator can tie a live process
/// back to the report that qualified it.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunMeta {
    /// Short git revision of the tree that produced the report
    /// (`"unknown"` outside a git checkout).
    pub git_rev: String,
    /// Compact world-shape description (workload names or
    /// `users x items @ density`); must match for a comparison.
    pub world: String,
    /// Worker/pool threads the run used; must match for a comparison.
    pub threads: usize,
}

impl RunMeta {
    /// Captures the current git revision alongside the given world
    /// shape and thread count.
    pub fn capture(world: impl Into<String>, threads: usize) -> RunMeta {
        RunMeta {
            git_rev: git_rev(),
            world: world.into(),
            threads,
        }
    }
}

/// `git rev-parse --short=12 HEAD`, or `"unknown"`. Shells out once;
/// callers cache the result (the serving edge captures at startup).
pub fn git_rev() -> String {
    std::process::Command::new("git")
        .args(["rev-parse", "--short=12", "HEAD"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_owned())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".to_owned())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn capture_fills_every_field() {
        let meta = RunMeta::capture("2000x300@0.05", 4);
        assert_eq!(meta.world, "2000x300@0.05");
        assert_eq!(meta.threads, 4);
        assert!(!meta.git_rev.is_empty());
    }

    #[test]
    fn round_trips_through_json() {
        let meta = RunMeta {
            git_rev: "abc123".to_owned(),
            world: "w".to_owned(),
            threads: 2,
        };
        let json = serde_json::to_string(&meta).unwrap();
        assert_eq!(serde_json::from_str::<RunMeta>(&json).unwrap(), meta);
    }
}

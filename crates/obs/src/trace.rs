//! Request-scoped distributed tracing: trace contexts, propagation and
//! tail-based sampling.
//!
//! A [`TraceContext`] names one span's position in a request tree: a
//! 128-bit trace id shared by every span of the request, a 64-bit span
//! id, and the parent span's id (`None` at the root). Ids come from a
//! seedable SplitMix64 [`IdSource`], so tests that fix the seed see the
//! same ids run after run.
//!
//! Propagation is a thread-local context stack: the serving edge opens
//! a root span ([`crate::Telemetry::root_span`]), every span opened
//! beneath it ([`crate::Telemetry::span`] / [`crate::span!`]) becomes a
//! child of the innermost active span, and crossing a thread boundary
//! is explicit — capture [`current`] on the submitting thread,
//! [`install`] it on the worker (the batch pool in `exrec-algo` does
//! this for every worker closure). Code that never opens a root span
//! pays one thread-local read per span and emits untraced events,
//! exactly as before.
//!
//! Tail-based sampling ([`TailSamplingSubscriber`]) buffers each
//! in-flight trace in a bounded, lock-striped ring and decides whether
//! to keep it only once the *root* span finishes — when the request
//! turns out slow, errored, or head-sampled at rate 1/N. Everything
//! else is dropped wholesale, so the subscriber behind it sees complete
//! traces for the interesting requests and nothing for the boring ones.

use std::cell::RefCell;
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

use crate::metrics::{Counter, Metrics};
use crate::span::{SpanEvent, Subscriber};

/// The instant the process' monotonic span clock was first read; every
/// `start_offset_ns` is measured from here.
static PROCESS_START: OnceLock<Instant> = OnceLock::new();

/// The zero point of span `start_offset_ns` values (lazily initialised
/// on first use; call early in `main` to anchor it at process start).
pub fn process_start() -> Instant {
    *PROCESS_START.get_or_init(Instant::now)
}

/// Nanoseconds between the process zero point and `instant`.
/// Saturates to 0 for instants before the zero point.
pub fn offset_ns_of(instant: Instant) -> u64 {
    instant
        .saturating_duration_since(process_start())
        .as_nanos()
        .min(u128::from(u64::MAX)) as u64
}

/// Nanoseconds since the process zero point, now.
pub fn process_offset_ns() -> u64 {
    offset_ns_of(Instant::now())
}

/// SplitMix64 finalizer — the same mixer the similarity cache shards
/// with; cheap and well distributed.
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A seedable source of span and trace ids: a SplitMix64 stream over an
/// atomic counter, so ids are unique across threads and deterministic
/// for a fixed seed.
#[derive(Debug)]
pub struct IdSource {
    seed: u64,
    next: AtomicU64,
}

impl Default for IdSource {
    /// An entropy-seeded source (wall clock ⊕ allocation address).
    fn default() -> Self {
        let clock = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_nanos() as u64)
            .unwrap_or(0);
        let addr = {
            let probe = 0u8;
            std::ptr::addr_of!(probe) as u64
        };
        IdSource::seeded(clock ^ addr.rotate_left(32))
    }
}

impl IdSource {
    /// A source producing the same id stream for the same seed.
    pub fn seeded(seed: u64) -> Self {
        IdSource {
            seed,
            next: AtomicU64::new(0),
        }
    }

    /// The next non-zero 64-bit id.
    pub fn next_id(&self) -> u64 {
        loop {
            let n = self.next.fetch_add(1, Ordering::Relaxed);
            let id = splitmix64(self.seed ^ n.wrapping_mul(0x9E37_79B9_7F4A_7C15));
            if id != 0 {
                return id;
            }
        }
    }

    /// The next 128-bit trace id (two draws from the stream).
    pub fn next_trace_id(&self) -> u128 {
        (u128::from(self.next_id()) << 64) | u128::from(self.next_id())
    }
}

/// Formats a 128-bit trace id as 32 lower-case hex characters (the
/// W3C `traceparent` convention, and what `x-exrec-trace-id` carries).
pub fn trace_id_hex(id: u128) -> String {
    format!("{id:032x}")
}

/// Formats a 64-bit span id as 16 lower-case hex characters.
pub fn span_id_hex(id: u64) -> String {
    format!("{id:016x}")
}

/// Parses a 32-hex-char trace id back to its 128-bit value.
pub fn parse_trace_id(hex: &str) -> Option<u128> {
    (hex.len() == 32).then(|| u128::from_str_radix(hex, 16).ok())?
}

/// One span's position in a request's trace tree, plus the id source
/// new child spans draw from. Cloning shares the source.
#[derive(Debug, Clone)]
pub struct TraceContext {
    /// The 128-bit id every span of the request shares.
    pub trace_id: u128,
    /// This span's id.
    pub span_id: u64,
    /// The parent span's id; `None` at the root.
    pub parent_id: Option<u64>,
    ids: Arc<IdSource>,
}

impl TraceContext {
    /// A fresh root context: new trace id, new span id, no parent.
    pub fn root(ids: &Arc<IdSource>) -> Self {
        TraceContext {
            trace_id: ids.next_trace_id(),
            span_id: ids.next_id(),
            parent_id: None,
            ids: Arc::clone(ids),
        }
    }

    /// A child context: same trace, fresh span id, parented on `self`.
    pub fn child(&self) -> Self {
        TraceContext {
            trace_id: self.trace_id,
            span_id: self.ids.next_id(),
            parent_id: Some(self.span_id),
            ids: Arc::clone(&self.ids),
        }
    }

    /// The trace id as 32 hex chars.
    pub fn trace_id_hex(&self) -> String {
        trace_id_hex(self.trace_id)
    }
}

thread_local! {
    /// The active context stack of this thread; the top is the span new
    /// children parent onto.
    static CURRENT: RefCell<Vec<TraceContext>> = const { RefCell::new(Vec::new()) };
}

/// The innermost active [`TraceContext`] on this thread, if any.
pub fn current() -> Option<TraceContext> {
    CURRENT.with(|stack| stack.borrow().last().cloned())
}

/// RAII guard returned by [`install`]; pops the installed context when
/// dropped. Not `Send` — a context belongs to the thread it was
/// installed on.
#[derive(Debug)]
pub struct ContextGuard {
    span_id: u64,
    _not_send: std::marker::PhantomData<*const ()>,
}

impl Drop for ContextGuard {
    fn drop(&mut self) {
        pop(self.span_id);
    }
}

/// Installs `ctx` as this thread's innermost context until the guard
/// drops. This is the cross-thread propagation primitive: capture
/// [`current`] where work is submitted, `install` it in the worker.
pub fn install(ctx: TraceContext) -> ContextGuard {
    let span_id = ctx.span_id;
    CURRENT.with(|stack| stack.borrow_mut().push(ctx));
    ContextGuard {
        span_id,
        _not_send: std::marker::PhantomData,
    }
}

/// Pushes a context (span open). Internal: the span module drives this.
pub(crate) fn push(ctx: TraceContext) {
    CURRENT.with(|stack| stack.borrow_mut().push(ctx));
}

/// Pops the entry for `span_id` (span close). Tolerates out-of-order
/// drops by removing the topmost matching entry.
pub(crate) fn pop(span_id: u64) {
    CURRENT.with(|stack| {
        let mut stack = stack.borrow_mut();
        if let Some(i) = stack.iter().rposition(|c| c.span_id == span_id) {
            stack.remove(i);
        }
    });
}

/// Tuning of the tail sampler.
#[derive(Debug, Clone, Copy)]
pub struct TailConfig {
    /// Traces whose root span takes at least this long are flushed.
    pub slow_threshold_ns: u64,
    /// Head sampling: flush every trace whose id ≡ 0 (mod N). `0`
    /// disables head sampling (only slow/errored traces survive).
    pub head_sample_every: u64,
    /// Most in-flight traces buffered at once (across all stripes);
    /// admitting one more evicts the oldest in its stripe.
    pub max_traces: usize,
    /// Most spans buffered per trace; extras are counted and dropped.
    pub max_spans_per_trace: usize,
    /// Lock stripes the in-flight buffer is split across.
    pub stripes: usize,
}

impl Default for TailConfig {
    fn default() -> Self {
        TailConfig {
            slow_threshold_ns: 500_000_000, // 500ms
            head_sample_every: 0,
            max_traces: 1024,
            max_spans_per_trace: 512,
            stripes: 16,
        }
    }
}

/// One stripe of the in-flight ring: traces keyed by hex trace id,
/// plus arrival order for bounded eviction.
#[derive(Default)]
struct Stripe {
    traces: HashMap<String, Vec<SpanEvent>>,
    order: VecDeque<String>,
}

/// Buffers in-flight traces and forwards only the interesting ones.
///
/// Spans with no trace context pass straight through to the inner
/// subscriber (they belong to no request). Traced spans are buffered
/// per trace until the root span finishes; the whole trace is then
/// either flushed to the inner subscriber (buffered spans in arrival
/// order, root last) or dropped.
///
/// A trace is flushed when its root is **slow** (`slow_threshold_ns`),
/// **errored** (any root field named `error`), or **head-sampled**
/// (trace id ≡ 0 mod `head_sample_every`).
pub struct TailSamplingSubscriber {
    inner: Arc<dyn Subscriber>,
    config: TailConfig,
    stripes: Vec<Mutex<Stripe>>,
    counters: Option<TailCounters>,
}

/// Pre-registered counters describing the sampler's decisions.
struct TailCounters {
    flushed: Counter,
    dropped: Counter,
    evicted: Counter,
    span_overflow: Counter,
}

impl TailSamplingSubscriber {
    /// Wraps `inner` with tail sampling under `config`.
    pub fn new(inner: Arc<dyn Subscriber>, config: TailConfig) -> Self {
        let stripes = config.stripes.max(1);
        TailSamplingSubscriber {
            inner,
            config,
            stripes: (0..stripes)
                .map(|_| Mutex::new(Stripe::default()))
                .collect(),
            counters: None,
        }
    }

    /// Registers decision counters (`trace.flushed`, `trace.dropped`,
    /// `trace.evicted`, `trace.span_overflow`) in `metrics`.
    pub fn with_metrics(mut self, metrics: &Metrics) -> Self {
        self.counters = Some(TailCounters {
            flushed: metrics.counter("trace.flushed"),
            dropped: metrics.counter("trace.dropped"),
            evicted: metrics.counter("trace.evicted"),
            span_overflow: metrics.counter("trace.span_overflow"),
        });
        self
    }

    /// Per-stripe trace budget.
    fn stripe_budget(&self) -> usize {
        (self.config.max_traces / self.stripes.len()).max(1)
    }

    /// The stripe a trace id hashes into.
    fn stripe_of(&self, trace_hex: &str) -> &Mutex<Stripe> {
        // The low 64 bits of the trace id are SplitMix64 output —
        // already uniform, no re-hash needed.
        let low = trace_hex
            .get(16..32)
            .and_then(|h| u64::from_str_radix(h, 16).ok())
            .unwrap_or(0);
        &self.stripes[(low % self.stripes.len() as u64) as usize]
    }

    /// Whether a finished root span earns its trace a flush.
    fn keep(&self, root: &SpanEvent) -> bool {
        if root.elapsed_ns >= self.config.slow_threshold_ns {
            return true;
        }
        if root.fields.iter().any(|(k, _)| k == "error") {
            return true;
        }
        if self.config.head_sample_every > 0 {
            if let Some(id) = root.trace_id.as_deref().and_then(parse_trace_id) {
                return (id as u64).is_multiple_of(self.config.head_sample_every);
            }
        }
        false
    }
}

impl Subscriber for TailSamplingSubscriber {
    fn on_span(&self, event: &SpanEvent) {
        let Some(trace_hex) = event.trace_id.as_deref() else {
            // Untraced span: not part of any request, pass through.
            self.inner.on_span(event);
            return;
        };

        if event.parent_id.is_none() {
            // Root finished: the whole trace is decided here.
            let buffered = {
                let mut stripe = self
                    .stripe_of(trace_hex)
                    .lock()
                    .unwrap_or_else(|p| p.into_inner());
                stripe.order.retain(|t| t != trace_hex);
                stripe.traces.remove(trace_hex).unwrap_or_default()
            };
            if self.keep(event) {
                if let Some(c) = &self.counters {
                    c.flushed.incr();
                }
                for span in &buffered {
                    self.inner.on_span(span);
                }
                self.inner.on_span(event);
            } else if let Some(c) = &self.counters {
                c.dropped.incr();
            }
            return;
        }

        // Interior span: buffer it under its trace.
        let budget = self.stripe_budget();
        let mut stripe = self
            .stripe_of(trace_hex)
            .lock()
            .unwrap_or_else(|p| p.into_inner());
        if !stripe.traces.contains_key(trace_hex) {
            if stripe.traces.len() >= budget {
                // Ring behaviour: the oldest in-flight trace is evicted
                // to stay bounded (its root, when it lands, flushes a
                // rootless remainder of nothing).
                if let Some(oldest) = stripe.order.pop_front() {
                    stripe.traces.remove(&oldest);
                    if let Some(c) = &self.counters {
                        c.evicted.incr();
                    }
                }
            }
            stripe.order.push_back(trace_hex.to_owned());
            stripe.traces.insert(trace_hex.to_owned(), Vec::new());
        }
        let spans = stripe
            .traces
            .get_mut(trace_hex)
            .expect("trace entry just ensured");
        if spans.len() < self.config.max_spans_per_trace {
            spans.push(event.clone());
        } else if let Some(c) = &self.counters {
            c.span_overflow.incr();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::CountingSubscriber;

    fn event(name: &str, trace: Option<u128>, span: u64, parent: Option<u64>) -> SpanEvent {
        SpanEvent {
            name: name.to_owned(),
            fields: Vec::new(),
            elapsed_ns: 1_000,
            start_offset_ns: 0,
            trace_id: trace.map(trace_id_hex),
            span_id: Some(span_id_hex(span)),
            parent_id: parent.map(span_id_hex),
        }
    }

    #[test]
    fn id_source_is_deterministic_and_collision_free() {
        let a = IdSource::seeded(42);
        let b = IdSource::seeded(42);
        let ids_a: Vec<u64> = (0..100).map(|_| a.next_id()).collect();
        let ids_b: Vec<u64> = (0..100).map(|_| b.next_id()).collect();
        assert_eq!(ids_a, ids_b, "same seed, same stream");
        let mut dedup = ids_a.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), ids_a.len(), "no collisions in a short run");
        let c = IdSource::seeded(43);
        assert_ne!(c.next_id(), ids_a[0], "different seed, different stream");
    }

    #[test]
    fn trace_ids_format_and_parse() {
        let ids = Arc::new(IdSource::seeded(7));
        let root = TraceContext::root(&ids);
        let hex = root.trace_id_hex();
        assert_eq!(hex.len(), 32);
        assert_eq!(parse_trace_id(&hex), Some(root.trace_id));
        assert_eq!(parse_trace_id("nope"), None);
        assert_eq!(span_id_hex(root.span_id).len(), 16);
    }

    #[test]
    fn child_contexts_link_to_their_parent() {
        let ids = Arc::new(IdSource::seeded(1));
        let root = TraceContext::root(&ids);
        assert_eq!(root.parent_id, None);
        let child = root.child();
        assert_eq!(child.trace_id, root.trace_id);
        assert_eq!(child.parent_id, Some(root.span_id));
        assert_ne!(child.span_id, root.span_id);
        let grandchild = child.child();
        assert_eq!(grandchild.parent_id, Some(child.span_id));
    }

    #[test]
    fn install_nests_and_restores() {
        assert!(current().is_none());
        let ids = Arc::new(IdSource::seeded(9));
        let outer = TraceContext::root(&ids);
        {
            let _g = install(outer.clone());
            assert_eq!(current().unwrap().span_id, outer.span_id);
            let inner = outer.child();
            {
                let _g2 = install(inner.clone());
                assert_eq!(current().unwrap().span_id, inner.span_id);
            }
            assert_eq!(current().unwrap().span_id, outer.span_id);
        }
        assert!(current().is_none());
    }

    #[test]
    fn tail_sampler_flushes_slow_traces_in_order() {
        let collector = Arc::new(CountingSubscriber::new());
        let tail = TailSamplingSubscriber::new(
            Arc::clone(&collector) as Arc<dyn Subscriber>,
            TailConfig {
                slow_threshold_ns: 500,
                ..TailConfig::default()
            },
        );
        tail.on_span(&event("child_a", Some(1), 2, Some(1)));
        tail.on_span(&event("child_b", Some(1), 3, Some(1)));
        assert!(collector.events().is_empty(), "nothing until the root");
        let mut root = event("root", Some(1), 1, None);
        root.elapsed_ns = 10_000; // above threshold
        tail.on_span(&root);
        let names: Vec<String> = collector.events().iter().map(|e| e.name.clone()).collect();
        assert_eq!(names, vec!["child_a", "child_b", "root"]);
    }

    #[test]
    fn tail_sampler_drops_fast_clean_traces() {
        let collector = Arc::new(CountingSubscriber::new());
        let metrics = Metrics::new();
        let tail = TailSamplingSubscriber::new(
            Arc::clone(&collector) as Arc<dyn Subscriber>,
            TailConfig {
                slow_threshold_ns: 1_000_000,
                ..TailConfig::default()
            },
        )
        .with_metrics(&metrics);
        tail.on_span(&event("child", Some(5), 2, Some(1)));
        tail.on_span(&event("root", Some(5), 1, None)); // fast, clean
        assert!(collector.events().is_empty());
        assert_eq!(metrics.counter("trace.dropped").get(), 1);
        assert_eq!(metrics.counter("trace.flushed").get(), 0);
    }

    #[test]
    fn tail_sampler_keeps_errored_and_head_sampled_roots() {
        let collector = Arc::new(CountingSubscriber::new());
        let tail = TailSamplingSubscriber::new(
            Arc::clone(&collector) as Arc<dyn Subscriber>,
            TailConfig {
                slow_threshold_ns: u64::MAX,
                head_sample_every: 4,
                ..TailConfig::default()
            },
        );
        // Errored root: kept regardless of latency.
        let mut errored = event("root", Some(3), 1, None);
        errored
            .fields
            .push(("error".to_owned(), "panic".to_owned()));
        tail.on_span(&errored);
        assert_eq!(collector.events().len(), 1);
        // Head-sampled root: trace id divisible by 4.
        tail.on_span(&event("root", Some(8), 2, None));
        assert_eq!(collector.events().len(), 2);
        // Neither slow, errored, nor divisible: dropped.
        tail.on_span(&event("root", Some(9), 3, None));
        assert_eq!(collector.events().len(), 2);
    }

    #[test]
    fn tail_sampler_ring_is_bounded() {
        let collector = Arc::new(CountingSubscriber::new());
        let metrics = Metrics::new();
        let tail = TailSamplingSubscriber::new(
            Arc::clone(&collector) as Arc<dyn Subscriber>,
            TailConfig {
                slow_threshold_ns: 0, // flush everything that survives
                max_traces: 2,
                max_spans_per_trace: 2,
                stripes: 1,
                ..TailConfig::default()
            },
        )
        .with_metrics(&metrics);
        // Three in-flight traces into a 2-trace ring: the oldest goes.
        tail.on_span(&event("a", Some(1), 11, Some(10)));
        tail.on_span(&event("b", Some(2), 21, Some(20)));
        tail.on_span(&event("c", Some(3), 31, Some(30)));
        assert_eq!(metrics.counter("trace.evicted").get(), 1);
        // Trace 1 was evicted: its root flushes alone.
        tail.on_span(&event("root1", Some(1), 10, None));
        assert_eq!(
            collector.events().len(),
            1,
            "evicted trace keeps only its root"
        );
        // Per-trace span cap: the third span of trace 2 is dropped.
        tail.on_span(&event("b2", Some(2), 22, Some(20)));
        tail.on_span(&event("b3", Some(2), 23, Some(20)));
        assert_eq!(metrics.counter("trace.span_overflow").get(), 1);
        tail.on_span(&event("root2", Some(2), 20, None));
        let names: Vec<String> = collector.events().iter().map(|e| e.name.clone()).collect();
        assert_eq!(names, vec!["root1", "b", "b2", "root2"]);
    }

    #[test]
    fn untraced_spans_pass_straight_through() {
        let collector = Arc::new(CountingSubscriber::new());
        let tail = TailSamplingSubscriber::new(
            Arc::clone(&collector) as Arc<dyn Subscriber>,
            TailConfig::default(),
        );
        let mut plain = event("library_span", None, 0, None);
        plain.span_id = None;
        plain.parent_id = None;
        tail.on_span(&plain);
        assert_eq!(collector.events().len(), 1);
    }
}

//! Span tracing: named, timed regions with key/value fields, delivered
//! to a pluggable [`Subscriber`].
//!
//! A span is opened with [`Telemetry::span`] (or the `span!` macro,
//! which adds fields ergonomically) and reports on drop: duration goes
//! into the metrics histogram `span_ns.<name>` and a structured
//! [`SpanEvent`] goes to the subscriber. The default [`NoopSubscriber`]
//! reduces tracing to two atomic increments per span, cheap enough for
//! the predict/explain hot path; [`JsonLinesSubscriber`] writes one JSON
//! object per line for offline analysis.

use std::io::Write;
use std::sync::{Arc, Mutex};
use std::time::Instant;

use serde::{Deserialize, Serialize};

use crate::metrics::{Metrics, MetricsReport};

/// A finished span, as delivered to subscribers.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SpanEvent {
    /// Span name, e.g. `"explain"`.
    pub name: String,
    /// Key/value annotations attached at open time.
    pub fields: Vec<(String, String)>,
    /// Wall-clock duration in nanoseconds.
    pub elapsed_ns: u64,
}

/// Receives finished spans. Implementations must be cheap or buffered:
/// the callback runs synchronously on the instrumented thread.
pub trait Subscriber: Send + Sync {
    /// Called once per finished span.
    fn on_span(&self, event: &SpanEvent);
}

/// Discards every event. The default subscriber.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoopSubscriber;

impl Subscriber for NoopSubscriber {
    fn on_span(&self, _event: &SpanEvent) {}
}

/// Writes each span as one JSON object per line to a writer.
pub struct JsonLinesSubscriber<W: Write + Send> {
    writer: Mutex<W>,
}

impl<W: Write + Send> JsonLinesSubscriber<W> {
    /// Wraps a writer (file, `Vec<u8>`, stderr lock, ...).
    pub fn new(writer: W) -> Self {
        JsonLinesSubscriber {
            writer: Mutex::new(writer),
        }
    }

    /// Unwraps the writer, flushing buffered lines.
    pub fn into_inner(self) -> W {
        self.writer
            .into_inner()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    /// Clones the writer's current state — e.g. the bytes accumulated in
    /// a `Vec<u8>` sink — without detaching the subscriber.
    pub fn snapshot(&self) -> W
    where
        W: Clone,
    {
        self.writer
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
            .clone()
    }
}

impl<W: Write + Send> Subscriber for JsonLinesSubscriber<W> {
    fn on_span(&self, event: &SpanEvent) {
        let line = serde_json::to_string(event).unwrap_or_default();
        let mut w = self
            .writer
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner());
        // Telemetry must never take the pipeline down with it: a full
        // disk or closed pipe drops the event, not the recommendation.
        let _ = writeln!(w, "{line}");
    }
}

/// Counts spans by name; handy for tests and cheap aggregate tracing.
#[derive(Debug, Default)]
pub struct CountingSubscriber {
    events: Mutex<Vec<SpanEvent>>,
}

impl CountingSubscriber {
    /// A fresh collector.
    pub fn new() -> Self {
        Self::default()
    }

    /// All events seen so far.
    pub fn events(&self) -> Vec<SpanEvent> {
        self.events
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
            .clone()
    }
}

impl Subscriber for CountingSubscriber {
    fn on_span(&self, event: &SpanEvent) {
        self.events
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
            .push(event.clone());
    }
}

/// The observability bundle threaded through the pipeline: a shared
/// [`Metrics`] registry plus the active [`Subscriber`].
///
/// Cloning shares both. `Telemetry::default()` is a fresh registry with
/// the noop subscriber — safe to construct anywhere, including library
/// code that may run without any observer attached.
#[derive(Clone)]
pub struct Telemetry {
    metrics: Arc<Metrics>,
    subscriber: Arc<dyn Subscriber>,
}

impl std::fmt::Debug for Telemetry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Telemetry").finish_non_exhaustive()
    }
}

impl Default for Telemetry {
    fn default() -> Self {
        Telemetry {
            metrics: Arc::new(Metrics::new()),
            subscriber: Arc::new(NoopSubscriber),
        }
    }
}

impl Telemetry {
    /// Bundles an existing registry with a subscriber.
    pub fn new(metrics: Arc<Metrics>, subscriber: Arc<dyn Subscriber>) -> Self {
        Telemetry {
            metrics,
            subscriber,
        }
    }

    /// A fresh registry observed by `subscriber`.
    pub fn with_subscriber(subscriber: Arc<dyn Subscriber>) -> Self {
        Telemetry::new(Arc::new(Metrics::new()), subscriber)
    }

    /// The shared metrics registry.
    pub fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    /// Snapshot of every registered metric.
    pub fn report(&self) -> MetricsReport {
        self.metrics.report()
    }

    /// Opens a timed span; it reports when the guard drops.
    pub fn span(&self, name: &'static str) -> SpanGuard<'_> {
        SpanGuard {
            telemetry: self,
            name,
            fields: Vec::new(),
            started: Instant::now(),
        }
    }
}

/// Live span handle. Records duration and notifies the subscriber on
/// drop.
#[derive(Debug)]
pub struct SpanGuard<'t> {
    telemetry: &'t Telemetry,
    name: &'static str,
    fields: Vec<(String, String)>,
    started: Instant,
}

impl SpanGuard<'_> {
    /// Attaches a key/value annotation.
    pub fn field(mut self, key: &str, value: impl std::fmt::Display) -> Self {
        self.fields.push((key.to_owned(), value.to_string()));
        self
    }

    /// Backdates the span's start, for reporting a region that was
    /// already timed externally (the guard then covers `started..drop`).
    pub fn started_at(mut self, started: Instant) -> Self {
        self.started = started;
        self
    }
}

impl Drop for SpanGuard<'_> {
    fn drop(&mut self) {
        let elapsed = self.started.elapsed();
        self.telemetry
            .metrics
            .histogram(&format!("span_ns.{}", self.name))
            .record(elapsed);
        let event = SpanEvent {
            name: self.name.to_owned(),
            fields: std::mem::take(&mut self.fields),
            elapsed_ns: elapsed.as_nanos().min(u128::from(u64::MAX)) as u64,
        };
        self.telemetry.subscriber.on_span(&event);
    }
}

/// Opens a span on a [`Telemetry`] handle with optional fields:
///
/// ```
/// use exrec_obs::{span, Telemetry};
/// let obs = Telemetry::default();
/// {
///     let _span = span!(obs, "explain", interface = "top_n", user = 3);
///     // ... timed work ...
/// }
/// assert_eq!(obs.report().histograms["span_ns.explain"].count, 1);
/// ```
#[macro_export]
macro_rules! span {
    ($telemetry:expr, $name:expr $(, $key:ident = $value:expr)* $(,)?) => {{
        #[allow(unused_mut)]
        let mut guard = $telemetry.span($name);
        $(let guard = guard.field(stringify!($key), $value);)*
        guard
    }};
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn span_records_histogram_and_event() {
        let collector = Arc::new(CountingSubscriber::new());
        let obs = Telemetry::with_subscriber(Arc::clone(&collector) as Arc<dyn Subscriber>);
        {
            let _span = span!(obs, "explain", interface = "top_n", user = 7);
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        let events = collector.events();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].name, "explain");
        assert_eq!(
            events[0].fields,
            vec![
                ("interface".to_owned(), "top_n".to_owned()),
                ("user".to_owned(), "7".to_owned()),
            ]
        );
        assert!(events[0].elapsed_ns >= 1_000_000);
        let report = obs.report();
        assert_eq!(report.histograms["span_ns.explain"].count, 1);
    }

    #[test]
    fn json_lines_subscriber_writes_one_line_per_span() {
        let shared = Arc::new(JsonLinesSubscriber::new(Vec::new()));
        let obs = Telemetry::new(
            Arc::new(Metrics::new()),
            Arc::clone(&shared) as Arc<dyn Subscriber>,
        );
        for i in 0..3 {
            let _span = span!(obs, "predict", model = "user_knn", item = i);
        }
        let text = String::from_utf8(shared.snapshot()).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3);
        for (i, line) in lines.iter().enumerate() {
            let event: SpanEvent = serde_json::from_str(line).unwrap();
            assert_eq!(event.name, "predict");
            assert_eq!(event.fields[1], ("item".to_owned(), i.to_string()));
        }
    }

    #[test]
    fn noop_subscriber_still_feeds_metrics() {
        let obs = Telemetry::default();
        for _ in 0..10 {
            let _span = obs.span("cheap");
        }
        assert_eq!(obs.report().histograms["span_ns.cheap"].count, 10);
    }

    #[test]
    fn telemetry_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Telemetry>();
        assert_send_sync::<Metrics>();
    }
}

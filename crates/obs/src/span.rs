//! Span tracing: named, timed regions with key/value fields, delivered
//! to a pluggable [`Subscriber`].
//!
//! A span is opened with [`Telemetry::span`] (or the `span!` macro,
//! which adds fields ergonomically) and reports on drop: duration goes
//! into the metrics histogram `span_ns.<name>` and a structured
//! [`SpanEvent`] goes to the subscriber. The default [`NoopSubscriber`]
//! reduces tracing to two atomic increments per span, cheap enough for
//! the predict/explain hot path; [`JsonLinesSubscriber`] writes one JSON
//! object per line for offline analysis.
//!
//! Every event carries `start_offset_ns` — monotonic nanoseconds from
//! the process zero point ([`crate::trace::process_start`]) — so JSON
//! lines order into a timeline even outside any request. When a
//! [`crate::trace::TraceContext`] is active on the thread (a request is
//! being traced), spans additionally carry `trace_id`/`span_id`/
//! `parent_id` and nest as children of the innermost open span; see the
//! [`crate::trace`] module for propagation and tail sampling.

use std::io::Write;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use serde::{Deserialize, Serialize};

use crate::metrics::{Metrics, MetricsReport};
use crate::trace::{self, IdSource, TraceContext};

/// A finished span, as delivered to subscribers.
///
/// The three id fields are hex strings (32 chars for `trace_id`, 16 for
/// the span ids), not integers: the JSON layer round-trips numbers
/// through `f64`, which would silently corrupt random 64-bit ids above
/// 2^53. They are `None` for spans emitted outside any request trace.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SpanEvent {
    /// Span name, e.g. `"explain"`.
    pub name: String,
    /// Key/value annotations attached at open time.
    pub fields: Vec<(String, String)>,
    /// Wall-clock duration in nanoseconds.
    pub elapsed_ns: u64,
    /// Monotonic start time, nanoseconds from the process zero point.
    pub start_offset_ns: u64,
    /// 128-bit trace id as 32 hex chars; `None` when untraced.
    pub trace_id: Option<String>,
    /// This span's 64-bit id as 16 hex chars; `None` when untraced.
    pub span_id: Option<String>,
    /// Parent span's id as 16 hex chars; `None` at a trace root (and
    /// when untraced).
    pub parent_id: Option<String>,
}

/// Receives finished spans. Implementations must be cheap or buffered:
/// the callback runs synchronously on the instrumented thread.
pub trait Subscriber: Send + Sync {
    /// Called once per finished span.
    fn on_span(&self, event: &SpanEvent);
}

/// Discards every event. The default subscriber.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoopSubscriber;

impl Subscriber for NoopSubscriber {
    fn on_span(&self, _event: &SpanEvent) {}
}

/// Writes each span as one JSON object per line to a writer.
pub struct JsonLinesSubscriber<W: Write + Send> {
    writer: Mutex<W>,
}

impl<W: Write + Send> JsonLinesSubscriber<W> {
    /// Wraps a writer (file, `Vec<u8>`, stderr lock, ...).
    pub fn new(writer: W) -> Self {
        JsonLinesSubscriber {
            writer: Mutex::new(writer),
        }
    }

    /// Unwraps the writer, flushing buffered lines.
    pub fn into_inner(self) -> W {
        self.writer
            .into_inner()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    /// Clones the writer's current state — e.g. the bytes accumulated in
    /// a `Vec<u8>` sink — without detaching the subscriber.
    pub fn snapshot(&self) -> W
    where
        W: Clone,
    {
        self.writer
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
            .clone()
    }
}

impl<W: Write + Send> Subscriber for JsonLinesSubscriber<W> {
    fn on_span(&self, event: &SpanEvent) {
        let line = serde_json::to_string(event).unwrap_or_default();
        let mut w = self
            .writer
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner());
        // Telemetry must never take the pipeline down with it: a full
        // disk or closed pipe drops the event, not the recommendation.
        let _ = writeln!(w, "{line}");
    }
}

/// Counts spans by name; handy for tests and cheap aggregate tracing.
#[derive(Debug, Default)]
pub struct CountingSubscriber {
    events: Mutex<Vec<SpanEvent>>,
}

impl CountingSubscriber {
    /// A fresh collector.
    pub fn new() -> Self {
        Self::default()
    }

    /// All events seen so far.
    pub fn events(&self) -> Vec<SpanEvent> {
        self.events
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
            .clone()
    }
}

impl Subscriber for CountingSubscriber {
    fn on_span(&self, event: &SpanEvent) {
        self.events
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
            .push(event.clone());
    }
}

/// The observability bundle threaded through the pipeline: a shared
/// [`Metrics`] registry plus the active [`Subscriber`].
///
/// Cloning shares both. `Telemetry::default()` is a fresh registry with
/// the noop subscriber — safe to construct anywhere, including library
/// code that may run without any observer attached.
#[derive(Clone)]
pub struct Telemetry {
    metrics: Arc<Metrics>,
    subscriber: Arc<dyn Subscriber>,
}

impl std::fmt::Debug for Telemetry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Telemetry").finish_non_exhaustive()
    }
}

impl Default for Telemetry {
    fn default() -> Self {
        Telemetry {
            metrics: Arc::new(Metrics::new()),
            subscriber: Arc::new(NoopSubscriber),
        }
    }
}

impl Telemetry {
    /// Bundles an existing registry with a subscriber.
    pub fn new(metrics: Arc<Metrics>, subscriber: Arc<dyn Subscriber>) -> Self {
        Telemetry {
            metrics,
            subscriber,
        }
    }

    /// A fresh registry observed by `subscriber`.
    pub fn with_subscriber(subscriber: Arc<dyn Subscriber>) -> Self {
        Telemetry::new(Arc::new(Metrics::new()), subscriber)
    }

    /// The shared metrics registry.
    pub fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    /// Snapshot of every registered metric.
    pub fn report(&self) -> MetricsReport {
        self.metrics.report()
    }

    /// Opens a timed span; it reports when the guard drops.
    ///
    /// If a [`TraceContext`] is active on this thread the span joins
    /// the trace as a child of the innermost open span; otherwise it is
    /// untraced, exactly as before tracing existed.
    pub fn span(&self, name: &'static str) -> SpanGuard<'_> {
        let ctx = trace::current().map(|parent| {
            let child = parent.child();
            trace::push(child.clone());
            child
        });
        SpanGuard {
            telemetry: self,
            name,
            fields: Vec::new(),
            started: Instant::now(),
            duration: None,
            ctx,
        }
    }

    /// Opens a *root* span: starts a fresh trace (new trace id, no
    /// parent) drawing ids from `ids`, and makes it this thread's
    /// innermost context so spans opened beneath it become children.
    /// The serving edge calls this once per request.
    pub fn root_span(&self, name: &'static str, ids: &Arc<IdSource>) -> SpanGuard<'_> {
        let ctx = TraceContext::root(ids);
        trace::push(ctx.clone());
        SpanGuard {
            telemetry: self,
            name,
            fields: Vec::new(),
            started: Instant::now(),
            duration: None,
            ctx: Some(ctx),
        }
    }
}

/// Live span handle. Records duration and notifies the subscriber on
/// drop. Guards must drop in LIFO order on a given thread (the natural
/// order for scoped guards) for parent links to stay correct.
#[derive(Debug)]
pub struct SpanGuard<'t> {
    telemetry: &'t Telemetry,
    name: &'static str,
    fields: Vec<(String, String)>,
    started: Instant,
    duration: Option<Duration>,
    ctx: Option<TraceContext>,
}

impl SpanGuard<'_> {
    /// Attaches a key/value annotation.
    pub fn field(mut self, key: &str, value: impl std::fmt::Display) -> Self {
        self.fields.push((key.to_owned(), value.to_string()));
        self
    }

    /// Backdates the span's start, for reporting a region that was
    /// already timed externally (the guard then covers `started..drop`).
    pub fn started_at(mut self, started: Instant) -> Self {
        self.started = started;
        self
    }

    /// Fixes the reported duration instead of measuring to drop time —
    /// for emitting a region whose bounds were both measured externally
    /// (e.g. queue wait, timed at dequeue but reported inside the
    /// request's root span).
    pub fn with_duration(mut self, elapsed: Duration) -> Self {
        self.duration = Some(elapsed);
        self
    }

    /// The trace id this span belongs to, as 32 hex chars; `None` when
    /// untraced.
    pub fn trace_id_hex(&self) -> Option<String> {
        self.ctx.as_ref().map(TraceContext::trace_id_hex)
    }
}

impl Drop for SpanGuard<'_> {
    fn drop(&mut self) {
        let elapsed = self.duration.unwrap_or_else(|| self.started.elapsed());
        self.telemetry
            .metrics
            .histogram(&format!("span_ns.{}", self.name))
            .record(elapsed);
        let (trace_id, span_id, parent_id) = match &self.ctx {
            Some(ctx) => (
                Some(ctx.trace_id_hex()),
                Some(trace::span_id_hex(ctx.span_id)),
                ctx.parent_id.map(trace::span_id_hex),
            ),
            None => (None, None, None),
        };
        let event = SpanEvent {
            name: self.name.to_owned(),
            fields: std::mem::take(&mut self.fields),
            elapsed_ns: elapsed.as_nanos().min(u128::from(u64::MAX)) as u64,
            start_offset_ns: trace::offset_ns_of(self.started),
            trace_id,
            span_id,
            parent_id,
        };
        if let Some(ctx) = self.ctx.take() {
            trace::pop(ctx.span_id);
        }
        self.telemetry.subscriber.on_span(&event);
    }
}

/// Opens a span on a [`Telemetry`] handle with optional fields:
///
/// ```
/// use exrec_obs::{span, Telemetry};
/// let obs = Telemetry::default();
/// {
///     let _span = span!(obs, "explain", interface = "top_n", user = 3);
///     // ... timed work ...
/// }
/// assert_eq!(obs.report().histograms["span_ns.explain"].count, 1);
/// ```
#[macro_export]
macro_rules! span {
    ($telemetry:expr, $name:expr $(, $key:ident = $value:expr)* $(,)?) => {{
        #[allow(unused_mut)]
        let mut guard = $telemetry.span($name);
        $(let guard = guard.field(stringify!($key), $value);)*
        guard
    }};
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn span_records_histogram_and_event() {
        let collector = Arc::new(CountingSubscriber::new());
        let obs = Telemetry::with_subscriber(Arc::clone(&collector) as Arc<dyn Subscriber>);
        {
            let _span = span!(obs, "explain", interface = "top_n", user = 7);
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        let events = collector.events();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].name, "explain");
        assert_eq!(
            events[0].fields,
            vec![
                ("interface".to_owned(), "top_n".to_owned()),
                ("user".to_owned(), "7".to_owned()),
            ]
        );
        assert!(events[0].elapsed_ns >= 1_000_000);
        let report = obs.report();
        assert_eq!(report.histograms["span_ns.explain"].count, 1);
    }

    #[test]
    fn json_lines_subscriber_writes_one_line_per_span() {
        let shared = Arc::new(JsonLinesSubscriber::new(Vec::new()));
        let obs = Telemetry::new(
            Arc::new(Metrics::new()),
            Arc::clone(&shared) as Arc<dyn Subscriber>,
        );
        for i in 0..3 {
            let _span = span!(obs, "predict", model = "user_knn", item = i);
        }
        let text = String::from_utf8(shared.snapshot()).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3);
        for (i, line) in lines.iter().enumerate() {
            let event: SpanEvent = serde_json::from_str(line).unwrap();
            assert_eq!(event.name, "predict");
            assert_eq!(event.fields[1], ("item".to_owned(), i.to_string()));
        }
    }

    #[test]
    fn noop_subscriber_still_feeds_metrics() {
        let obs = Telemetry::default();
        for _ in 0..10 {
            let _span = obs.span("cheap");
        }
        assert_eq!(obs.report().histograms["span_ns.cheap"].count, 10);
    }

    #[test]
    fn telemetry_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Telemetry>();
        assert_send_sync::<Metrics>();
    }

    #[test]
    fn untraced_spans_carry_start_offset_but_no_ids() {
        // Regression: spans emitted outside any request context must
        // still be orderable into a timeline via start_offset_ns.
        let collector = Arc::new(CountingSubscriber::new());
        let obs = Telemetry::with_subscriber(Arc::clone(&collector) as Arc<dyn Subscriber>);
        let before = trace::process_offset_ns();
        {
            let _a = obs.span("first");
        }
        std::thread::sleep(std::time::Duration::from_millis(1));
        {
            let _b = obs.span("second");
        }
        let events = collector.events();
        assert_eq!(events.len(), 2);
        for e in &events {
            assert!(e.trace_id.is_none() && e.span_id.is_none() && e.parent_id.is_none());
            assert!(e.start_offset_ns >= before);
        }
        assert!(
            events[1].start_offset_ns > events[0].start_offset_ns,
            "offsets order the timeline: {} !> {}",
            events[1].start_offset_ns,
            events[0].start_offset_ns
        );
    }

    #[test]
    fn root_span_starts_a_trace_and_children_nest() {
        let collector = Arc::new(CountingSubscriber::new());
        let obs = Telemetry::with_subscriber(Arc::clone(&collector) as Arc<dyn Subscriber>);
        let ids = Arc::new(IdSource::seeded(11));
        let expected_trace;
        {
            let root = obs.root_span("request", &ids);
            expected_trace = root.trace_id_hex().unwrap();
            {
                let _mid = obs.span("middle");
                let _leaf = obs.span("leaf");
            }
        }
        assert!(trace::current().is_none(), "stack restored after root");
        let events = collector.events();
        // Drop order: leaf, middle, request.
        assert_eq!(events.len(), 3);
        let (leaf, mid, root) = (&events[0], &events[1], &events[2]);
        assert_eq!(root.name, "request");
        assert_eq!(root.parent_id, None);
        for e in [leaf, mid, root] {
            assert_eq!(e.trace_id.as_deref(), Some(expected_trace.as_str()));
            assert!(e.span_id.is_some());
        }
        assert_eq!(mid.parent_id, root.span_id);
        assert_eq!(leaf.parent_id, mid.span_id);
    }

    #[test]
    fn installed_context_parents_spans_across_threads() {
        let collector = Arc::new(CountingSubscriber::new());
        let obs = Telemetry::with_subscriber(Arc::clone(&collector) as Arc<dyn Subscriber>);
        let ids = Arc::new(IdSource::seeded(5));
        let root = obs.root_span("submit", &ids);
        // Capture-and-install, the way BatchPool workers do it.
        let captured = trace::current().unwrap();
        let parent_span_id = captured.span_id;
        let obs2 = obs.clone();
        std::thread::spawn(move || {
            let _g = trace::install(captured);
            let _span = obs2.span("worker");
        })
        .join()
        .unwrap();
        drop(root);
        let worker = collector
            .events()
            .into_iter()
            .find(|e| e.name == "worker")
            .unwrap();
        assert_eq!(worker.parent_id, Some(trace::span_id_hex(parent_span_id)));
    }

    #[test]
    fn with_duration_overrides_measured_elapsed() {
        let collector = Arc::new(CountingSubscriber::new());
        let obs = Telemetry::with_subscriber(Arc::clone(&collector) as Arc<dyn Subscriber>);
        {
            let _span = obs
                .span("queue_wait")
                .with_duration(Duration::from_nanos(12_345));
        }
        assert_eq!(collector.events()[0].elapsed_ns, 12_345);
    }

    #[test]
    fn json_lines_snapshot_observes_live_state() {
        let shared = Arc::new(JsonLinesSubscriber::new(Vec::new()));
        let obs = Telemetry::new(
            Arc::new(Metrics::new()),
            Arc::clone(&shared) as Arc<dyn Subscriber>,
        );
        assert!(shared.snapshot().is_empty(), "fresh sink starts empty");
        {
            let _span = obs.span("one");
        }
        let first = shared.snapshot();
        assert_eq!(String::from_utf8(first).unwrap().lines().count(), 1);
        {
            let _span = obs.span("two");
        }
        // The earlier snapshot was a copy: the live sink kept growing.
        assert_eq!(
            String::from_utf8(shared.snapshot())
                .unwrap()
                .lines()
                .count(),
            2
        );
    }

    #[test]
    fn json_lines_subscriber_survives_poisoned_lock() {
        let shared = Arc::new(JsonLinesSubscriber::new(Vec::new()));
        // Poison the writer lock by panicking while holding it.
        let poisoner = Arc::clone(&shared);
        let _ = std::thread::spawn(move || {
            let _guard = poisoner.writer.lock().unwrap();
            panic!("poison the writer");
        })
        .join();
        // All three accessors must shrug the poison off.
        let event = SpanEvent {
            name: "after_poison".to_owned(),
            fields: Vec::new(),
            elapsed_ns: 1,
            start_offset_ns: 0,
            trace_id: None,
            span_id: None,
            parent_id: None,
        };
        shared.on_span(&event);
        let text = String::from_utf8(shared.snapshot()).unwrap();
        assert!(text.contains("after_poison"));
        let inner = Arc::try_unwrap(shared)
            .unwrap_or_else(|_| panic!("sole owner"))
            .into_inner();
        assert!(String::from_utf8(inner).unwrap().contains("after_poison"));
    }
}

//! Anomaly watchdog: detectors over time-series ticks, hysteresis
//! latches, and a bounded incident log unifying every flight-dump
//! trigger.
//!
//! The serving edge used to carry three ad-hoc "dump the black box"
//! triggers — a panic hook, an SLO fast-burn latch, and a sustained-low
//! quality latch — each its own `AtomicBool` with its own once-only
//! logic. [`Watchdog`] replaces them with one path: **rules** evaluate
//! a [`Detector`] against each [`Tick`] the time-series engine cuts,
//! **hysteresis** keeps a rule from flapping (an incident opens only
//! after `trip_after` consecutive anomalous ticks and closes only after
//! `clear_after` consecutive normal ones), and every opening appends a
//! structured [`Incident`] to a bounded [`IncidentLog`] and fires the
//! flight-recorder dump **once per incident** (latched — a regression
//! that stays bad across fifty ticks produces one incident and one
//! dump, not fifty).
//!
//! Signals that already latch elsewhere (SLO fast-burn, sustained-low
//! quality) enter through [`Watchdog::external`], which edge-detects a
//! boolean standing; point events with no duration (a caught panic)
//! enter through [`Watchdog::event`]. All three paths converge on the
//! same log, the same metrics (`watch.*`), and the same dump budget.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use serde::{Deserialize, Serialize};

use crate::flight::FlightRecorder;
use crate::metrics::Metrics;
use crate::timeseries::{Stat, Tick};
use crate::trace;

/// Wire-schema version of the incident dump; bump on breaking changes.
pub const WATCH_SCHEMA: u32 = 1;

/// How a rule decides a tick is anomalous.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[serde(rename_all = "snake_case")]
pub enum Detector {
    /// Drift detection: EWMA mean/variance over the series; anomalous
    /// when the sample sits more than `factor` standard deviations
    /// above the running mean. One-sided — only upward drift (latency,
    /// lag) trips. Needs `min_samples` observations of warmup first.
    ZScore {
        /// Trip threshold in standard deviations.
        factor: f64,
        /// Observations before the detector may trip.
        min_samples: u64,
    },
    /// Absolute ceiling: anomalous when `value > max`.
    Above {
        /// Inclusive ceiling the series must stay at or under.
        max: f64,
    },
    /// Absolute floor: anomalous when `value < min`, but only after
    /// the series has been observed at or above the floor at least
    /// `min_samples` times. A collapse needs something to collapse
    /// from: a series that legitimately idles at 0 forever (the pair
    /// cache bypassed by the pruned engine, the prune ratio in exact
    /// mode) never arms the rule and never trips it.
    Below {
        /// Inclusive floor the series must stay at or above.
        min: f64,
        /// Healthy (at-or-above-floor) observations before the
        /// detector may trip.
        min_samples: u64,
    },
}

impl Detector {
    /// Short kind tag used in incident records.
    fn kind(&self) -> &'static str {
        match self {
            Detector::ZScore { .. } => "zscore",
            Detector::Above { .. } => "above",
            Detector::Below { .. } => "below",
        }
    }
}

/// One watched series + detector.
#[derive(Debug, Clone)]
pub struct Rule {
    /// Incident-facing rule name, e.g. `latency_drift.recommend`.
    pub name: String,
    /// Metric (series) name in the registry.
    pub metric: String,
    /// Which statistic of the series to read.
    pub stat: Stat,
    /// The anomaly test.
    pub detector: Detector,
}

/// Hysteresis + log tuning.
#[derive(Debug, Clone)]
pub struct WatchConfig {
    /// Consecutive anomalous ticks before an incident opens.
    pub trip_after: u32,
    /// Consecutive normal ticks before a latched incident closes.
    pub clear_after: u32,
    /// EWMA smoothing factor for [`Detector::ZScore`] (0 < α ≤ 1).
    pub ewma_alpha: f64,
    /// Incidents retained in the bounded log.
    pub log_capacity: usize,
}

impl Default for WatchConfig {
    fn default() -> Self {
        WatchConfig {
            trip_after: 2,
            clear_after: 3,
            ewma_alpha: 0.3,
            log_capacity: 64,
        }
    }
}

/// One structured incident, open or closed.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Incident {
    /// Monotonic sequence number (1-based) over the process lifetime.
    pub seq: u64,
    /// Rule (or external trigger / event) name.
    pub rule: String,
    /// Series the rule watched; empty for externals/events.
    pub series: String,
    /// Detector kind: `zscore`/`above`/`below`/`external`/`event`.
    pub kind: String,
    /// Tick epoch at open (0 for externals/events, which are not
    /// epoch-aligned).
    pub opened_epoch: u64,
    /// Process-relative offset at open, nanoseconds.
    pub opened_offset_ns: u64,
    /// Tick epoch at close; `None` while the incident stands.
    pub closed_epoch: Option<u64>,
    /// Observed value at the trip.
    pub value: f64,
    /// Threshold it crossed (z-score for `zscore` rules).
    pub threshold: f64,
    /// Human-readable context.
    pub detail: String,
}

/// Per-rule detector and latch state.
#[derive(Debug, Clone, Default)]
struct RuleState {
    ewma_mean: f64,
    ewma_var: f64,
    samples: u64,
    anomalous_streak: u32,
    normal_streak: u32,
    latched: bool,
    open_seq: u64,
}

/// Latch state for one external boolean standing.
#[derive(Debug, Clone, Default)]
struct ExternalState {
    active: bool,
    open_seq: u64,
}

/// A bounded append-only incident log: the oldest entry is evicted at
/// capacity, while the `opened` total keeps counting.
#[derive(Debug, Default)]
pub struct IncidentLog {
    incidents: std::collections::VecDeque<Incident>,
    opened: u64,
}

impl IncidentLog {
    /// Appends a new incident, evicting the oldest at `capacity`;
    /// returns the assigned sequence number.
    fn open(&mut self, capacity: usize, mut incident: Incident) -> u64 {
        self.opened += 1;
        incident.seq = self.opened;
        if self.incidents.len() == capacity {
            self.incidents.pop_front();
        }
        self.incidents.push_back(incident);
        self.opened
    }

    /// Marks incident `seq` closed if it is still retained.
    fn close(&mut self, seq: u64, epoch: u64) {
        if let Some(incident) = self.incidents.iter_mut().find(|i| i.seq == seq) {
            incident.closed_epoch = Some(epoch);
        }
    }

    /// Retained incidents, oldest first.
    pub fn entries(&self) -> Vec<Incident> {
        self.incidents.iter().cloned().collect()
    }

    /// Total incidents ever opened (including evicted ones).
    pub fn opened(&self) -> u64 {
        self.opened
    }
}

/// Everything behind the watchdog's one mutex.
#[derive(Debug, Default)]
struct WatchState {
    rules: Vec<RuleState>,
    externals: BTreeMap<String, ExternalState>,
    log: IncidentLog,
}

/// The watchdog. Construct with [`Watchdog::new`], attach the flight
/// recorder with [`Watchdog::with_flight`], then feed it ticks via
/// [`Watchdog::observe`]. Cheap when nothing changes: one mutex, no
/// allocation unless an incident opens or closes.
#[derive(Debug)]
pub struct Watchdog {
    config: WatchConfig,
    rules: Vec<Rule>,
    state: Mutex<WatchState>,
    flight: Option<Arc<FlightRecorder>>,
    flight_dumps: AtomicU64,
    metrics: Option<WatchMetrics>,
}

/// Pre-registered `watch.*` handles.
#[derive(Debug, Clone)]
struct WatchMetrics {
    incidents: crate::metrics::Counter,
    active: crate::metrics::Gauge,
    dumps: crate::metrics::Counter,
}

/// Recovers a poisoned guard; incident state is always valid.
macro_rules! lock {
    ($guard:expr) => {
        $guard.unwrap_or_else(|poisoned| poisoned.into_inner())
    };
}

impl Watchdog {
    /// A watchdog over `rules`.
    pub fn new(config: WatchConfig, rules: Vec<Rule>) -> Self {
        let state = WatchState {
            rules: vec![RuleState::default(); rules.len()],
            ..WatchState::default()
        };
        Watchdog {
            config: WatchConfig {
                trip_after: config.trip_after.max(1),
                clear_after: config.clear_after.max(1),
                ewma_alpha: config.ewma_alpha.clamp(1e-6, 1.0),
                log_capacity: config.log_capacity.max(1),
            },
            rules,
            state: Mutex::new(state),
            flight: None,
            flight_dumps: AtomicU64::new(0),
            metrics: None,
        }
    }

    /// Wires the unified dump path: every incident opening (rule trip,
    /// external rising edge, or event) dumps the flight ring once.
    pub fn with_flight(mut self, flight: Arc<FlightRecorder>) -> Self {
        self.flight = Some(flight);
        self
    }

    /// Registers the `watch.*` families up front so they exist in
    /// `/metrics` before any incident does.
    pub fn with_metrics(mut self, metrics: &Metrics) -> Self {
        let m = WatchMetrics {
            incidents: metrics.counter("watch.incidents"),
            active: metrics.gauge("watch.active"),
            dumps: metrics.counter("watch.flight_dumps"),
        };
        m.incidents.add(0);
        m.dumps.add(0);
        m.active.set(0.0);
        self.metrics = Some(m);
        self
    }

    /// The configured rules, for documentation surfaces.
    pub fn rules(&self) -> &[Rule] {
        &self.rules
    }

    /// Runs every rule against one tick. Returns the sequence numbers
    /// of incidents that opened on this tick (usually empty).
    pub fn observe(&self, tick: &Tick) -> Vec<u64> {
        let mut opened = Vec::new();
        let mut dump_reasons: Vec<String> = Vec::new();
        {
            let mut state = lock!(self.state.lock());
            for (i, rule) in self.rules.iter().enumerate() {
                let Some(value) = tick.value(&rule.metric, rule.stat) else {
                    continue; // series not yet registered
                };
                if !value.is_finite() {
                    continue;
                }
                let (anomalous, threshold) = {
                    let rs = &mut state.rules[i];
                    Self::evaluate(&self.config, &rule.detector, rs, value)
                };
                let rs = &mut state.rules[i];
                if anomalous {
                    rs.anomalous_streak = rs.anomalous_streak.saturating_add(1);
                    rs.normal_streak = 0;
                } else {
                    rs.normal_streak = rs.normal_streak.saturating_add(1);
                    rs.anomalous_streak = 0;
                }
                if !rs.latched && rs.anomalous_streak >= self.config.trip_after {
                    rs.latched = true;
                    let streak = rs.anomalous_streak;
                    let detail = format!(
                        "{}:{:?} = {value:.3} crossed {threshold:.3} for {streak} consecutive ticks",
                        rule.metric, rule.stat
                    );
                    let seq = state.log.open(
                        self.config.log_capacity,
                        Incident {
                            seq: 0,
                            rule: rule.name.clone(),
                            series: rule.metric.clone(),
                            kind: rule.detector.kind().to_owned(),
                            opened_epoch: tick.epoch,
                            opened_offset_ns: tick.offset_ns,
                            closed_epoch: None,
                            value,
                            threshold,
                            detail,
                        },
                    );
                    state.rules[i].open_seq = seq;
                    opened.push(seq);
                    dump_reasons.push(format!("watchdog: {}", rule.name));
                } else if rs.latched && rs.normal_streak >= self.config.clear_after {
                    rs.latched = false;
                    let seq = rs.open_seq;
                    state.log.close(seq, tick.epoch);
                }
            }
        }
        self.publish(&dump_reasons);
        opened
    }

    /// Evaluates one detector; returns `(anomalous, threshold_crossed)`
    /// and updates EWMA state for z-score rules.
    fn evaluate(
        config: &WatchConfig,
        detector: &Detector,
        rs: &mut RuleState,
        value: f64,
    ) -> (bool, f64) {
        match detector {
            Detector::Above { max } => (value > *max, *max),
            Detector::Below { min, min_samples } => {
                // Only healthy observations arm the rule; see the
                // detector docs for why idle-at-zero must not count.
                if value >= *min {
                    rs.samples += 1;
                }
                (rs.samples >= *min_samples && value < *min, *min)
            }
            Detector::ZScore {
                factor,
                min_samples,
            } => {
                let warm = rs.samples >= *min_samples;
                let sd = rs.ewma_var.max(0.0).sqrt();
                // Floor the deviation so a perfectly flat warmup series
                // (sd = 0) doesn't trip on the first real sample.
                let floor = (rs.ewma_mean.abs() * 0.05).max(1e-9);
                let z = (value - rs.ewma_mean) / sd.max(floor);
                let anomalous = warm && z > *factor;
                // Track the signal only while it is normal, so the trip
                // baseline doesn't chase the regression it just caught.
                if !anomalous {
                    let alpha = config.ewma_alpha;
                    if rs.samples == 0 {
                        rs.ewma_mean = value;
                        rs.ewma_var = 0.0;
                    } else {
                        let diff = value - rs.ewma_mean;
                        rs.ewma_mean += alpha * diff;
                        rs.ewma_var = (1.0 - alpha) * (rs.ewma_var + alpha * diff * diff);
                    }
                    rs.samples += 1;
                }
                (anomalous, *factor)
            }
        }
    }

    /// Edge-detects an external boolean standing (an already-latched
    /// signal like SLO fast-burn): a rising edge opens an incident and
    /// dumps once; a falling edge closes it. Returns the incident seq
    /// when this call opened one.
    pub fn external(&self, name: &str, active: bool, detail: &str) -> Option<u64> {
        let mut opened = None;
        let mut dump_reason = None;
        {
            let mut state = lock!(self.state.lock());
            let current = state.externals.entry(name.to_owned()).or_default().clone();
            if active && !current.active {
                let seq = state.log.open(
                    self.config.log_capacity,
                    Incident {
                        seq: 0,
                        rule: name.to_owned(),
                        series: String::new(),
                        kind: "external".to_owned(),
                        opened_epoch: 0,
                        opened_offset_ns: trace::process_offset_ns(),
                        closed_epoch: None,
                        value: 1.0,
                        threshold: 0.0,
                        detail: detail.to_owned(),
                    },
                );
                let ext = state.externals.get_mut(name).expect("just inserted");
                ext.active = true;
                ext.open_seq = seq;
                opened = Some(seq);
                dump_reason = Some(format!("watchdog: {name}"));
            } else if !active && current.active {
                let seq = current.open_seq;
                if let Some(ext) = state.externals.get_mut(name) {
                    ext.active = false;
                }
                state.log.close(seq, 0);
            }
        }
        self.publish(dump_reason.as_slice());
        opened
    }

    /// Records a point event (a caught panic): the incident opens and
    /// closes in the same instant, and the flight ring dumps once.
    pub fn event(&self, name: &str, detail: &str) -> u64 {
        let seq = {
            let mut state = lock!(self.state.lock());
            state.log.open(
                self.config.log_capacity,
                Incident {
                    seq: 0,
                    rule: name.to_owned(),
                    series: String::new(),
                    kind: "event".to_owned(),
                    opened_epoch: 0,
                    opened_offset_ns: trace::process_offset_ns(),
                    closed_epoch: Some(0),
                    value: 1.0,
                    threshold: 0.0,
                    detail: detail.to_owned(),
                },
            )
        };
        self.publish(&[format!("watchdog: {name}")]);
        seq
    }

    /// Installs a panic hook that records an `event` incident and dumps
    /// the flight ring before unwinding continues. Chains the previous
    /// hook so the default backtrace printer still runs.
    pub fn install_panic_hook(watchdog: &Arc<Watchdog>) {
        let watchdog = Arc::clone(watchdog);
        let previous = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let detail = info
                .payload()
                .downcast_ref::<&str>()
                .map(|s| (*s).to_owned())
                .or_else(|| info.payload().downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "panic".to_owned());
            watchdog.event("panic", &detail);
            previous(info);
        }));
    }

    /// Emits dumps + refreshes `watch.*` after releasing the state lock.
    fn publish(&self, dump_reasons: &[String]) {
        for reason in dump_reasons {
            if let Some(flight) = &self.flight {
                flight.dump_stderr(reason);
            }
            self.flight_dumps.fetch_add(1, Ordering::Relaxed);
            if let Some(m) = &self.metrics {
                m.incidents.incr();
                m.dumps.incr();
            }
        }
        if let Some(m) = &self.metrics {
            m.active.set(self.active() as f64);
        }
    }

    /// Whether the named external standing is currently active —
    /// cheap enough to guard a per-request edge check.
    pub fn external_active(&self, name: &str) -> bool {
        lock!(self.state.lock())
            .externals
            .get(name)
            .is_some_and(|e| e.active)
    }

    /// Number of incidents currently standing (latched rules + active
    /// externals).
    pub fn active(&self) -> u64 {
        let state = lock!(self.state.lock());
        let rules = state.rules.iter().filter(|r| r.latched).count();
        let externals = state.externals.values().filter(|e| e.active).count();
        (rules + externals) as u64
    }

    /// Total incidents opened over the process lifetime.
    pub fn opened(&self) -> u64 {
        lock!(self.state.lock()).log.opened()
    }

    /// Flight dumps fired through the unified trigger path.
    pub fn flight_dumps(&self) -> u64 {
        self.flight_dumps.load(Ordering::Relaxed)
    }

    /// The retained incidents, oldest first.
    pub fn incidents(&self) -> Vec<Incident> {
        lock!(self.state.lock()).log.entries()
    }

    /// Bounded log capacity.
    pub fn log_capacity(&self) -> usize {
        self.config.log_capacity
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::timeseries::{TimeSeries, TsConfig};

    /// A tick whose only series is gauge `g` at `value`.
    fn gauge_tick(epoch: u64, value: f64) -> Tick {
        let m = Metrics::new();
        m.gauge("g").set(value);
        TimeSeries::new(TsConfig {
            interval_ns: 1_000_000_000,
            retention: 4,
        })
        .sample_at(&m, epoch * 1_000_000_000)
    }

    fn above_rule() -> Rule {
        Rule {
            name: "g_high".to_owned(),
            metric: "g".to_owned(),
            stat: Stat::Value,
            detector: Detector::Above { max: 10.0 },
        }
    }

    #[test]
    fn hysteresis_requires_consecutive_anomalies_to_trip() {
        let w = Watchdog::new(
            WatchConfig {
                trip_after: 3,
                clear_after: 2,
                ..WatchConfig::default()
            },
            vec![above_rule()],
        );
        // Alternating good/bad never reaches a 3-streak: no flapping.
        for epoch in 0..12 {
            let value = if epoch % 2 == 0 { 50.0 } else { 1.0 };
            assert!(w.observe(&gauge_tick(epoch, value)).is_empty());
        }
        assert_eq!(w.opened(), 0);
        // Three consecutive bad ticks trip exactly once; staying bad
        // does not re-trip (latched).
        for epoch in 12..20 {
            w.observe(&gauge_tick(epoch, 50.0));
        }
        assert_eq!(w.opened(), 1);
        assert_eq!(w.active(), 1);
        assert_eq!(w.flight_dumps(), 1, "dump fires once per incident");
    }

    #[test]
    fn latch_clears_only_after_consecutive_normals_then_rearms() {
        let w = Watchdog::new(
            WatchConfig {
                trip_after: 2,
                clear_after: 3,
                ..WatchConfig::default()
            },
            vec![above_rule()],
        );
        w.observe(&gauge_tick(0, 50.0));
        w.observe(&gauge_tick(1, 50.0)); // trips
        assert_eq!(w.active(), 1);
        // One good tick then bad again: still latched, still 1 incident.
        w.observe(&gauge_tick(2, 1.0));
        w.observe(&gauge_tick(3, 50.0));
        assert_eq!((w.opened(), w.active()), (1, 1));
        // Three consecutive good ticks clear the latch.
        for epoch in 4..7 {
            w.observe(&gauge_tick(epoch, 1.0));
        }
        assert_eq!(w.active(), 0);
        let incidents = w.incidents();
        assert_eq!(incidents.len(), 1);
        assert_eq!(incidents[0].closed_epoch, Some(6));
        // Re-armed: a fresh regression opens a second incident.
        w.observe(&gauge_tick(7, 50.0));
        w.observe(&gauge_tick(8, 50.0));
        assert_eq!(w.opened(), 2);
    }

    #[test]
    fn zscore_trips_on_drift_not_on_steady_noise() {
        let w = Watchdog::new(
            WatchConfig {
                trip_after: 2,
                clear_after: 2,
                ..WatchConfig::default()
            },
            vec![Rule {
                name: "drift".to_owned(),
                metric: "g".to_owned(),
                stat: Stat::Value,
                detector: Detector::ZScore {
                    factor: 4.0,
                    min_samples: 8,
                },
            }],
        );
        // Steady mild noise around 100: never trips.
        for epoch in 0..30 {
            let value = 100.0 + if epoch % 2 == 0 { 2.0 } else { -2.0 };
            w.observe(&gauge_tick(epoch, value));
        }
        assert_eq!(w.opened(), 0);
        // A 10x step change trips after trip_after ticks.
        w.observe(&gauge_tick(30, 1000.0));
        w.observe(&gauge_tick(31, 1000.0));
        assert_eq!(w.opened(), 1);
        let incident = &w.incidents()[0];
        assert_eq!(incident.kind, "zscore");
        assert_eq!(incident.opened_epoch, 31);
    }

    #[test]
    fn below_detector_waits_out_warmup() {
        let w = Watchdog::new(
            WatchConfig {
                trip_after: 1,
                clear_after: 1,
                ..WatchConfig::default()
            },
            vec![Rule {
                name: "hit_ratio_collapse".to_owned(),
                metric: "g".to_owned(),
                stat: Stat::Value,
                detector: Detector::Below {
                    min: 0.5,
                    min_samples: 3,
                },
            }],
        );
        // A series that idles at 0 forever never arms the rule: an
        // unused subsystem is not a collapsed one.
        for epoch in 0..20 {
            w.observe(&gauge_tick(epoch, 0.0));
        }
        assert_eq!(w.opened(), 0, "idle-at-zero must never trip");
        // Healthy traffic arms it; only then does a drop trip.
        for epoch in 20..22 {
            w.observe(&gauge_tick(epoch, 0.8));
        }
        w.observe(&gauge_tick(22, 0.1));
        assert_eq!(w.opened(), 0, "still one healthy tick short");
        w.observe(&gauge_tick(23, 0.8));
        w.observe(&gauge_tick(24, 0.1));
        assert_eq!(w.opened(), 1, "post-activation collapse trips");
    }

    #[test]
    fn external_edges_open_and_close_one_incident() {
        let w = Watchdog::new(WatchConfig::default(), Vec::new());
        assert!(w.external("slo_fast_burn", false, "").is_none());
        let seq = w.external("slo_fast_burn", true, "burn 14.2 on explain");
        assert!(seq.is_some());
        // Standing high: no re-trigger, dump budget stays at 1.
        assert!(w.external("slo_fast_burn", true, "still burning").is_none());
        assert_eq!((w.opened(), w.active(), w.flight_dumps()), (1, 1, 1));
        w.external("slo_fast_burn", false, "");
        assert_eq!(w.active(), 0);
        assert_eq!(w.incidents()[0].closed_epoch, Some(0));
        // Rising edge again: a second incident.
        w.external("slo_fast_burn", true, "again");
        assert_eq!(w.opened(), 2);
    }

    #[test]
    fn events_are_instantaneous_and_always_logged() {
        let m = Metrics::new();
        let w = Watchdog::new(WatchConfig::default(), Vec::new()).with_metrics(&m);
        w.event("panic", "worker panicked: boom");
        w.event("panic", "again");
        assert_eq!(w.opened(), 2);
        assert_eq!(w.active(), 0, "events never stand");
        assert_eq!(w.flight_dumps(), 2);
        assert_eq!(m.report().counters["watch.incidents"], 2);
        assert_eq!(m.report().counters["watch.flight_dumps"], 2);
    }

    #[test]
    fn incident_log_is_bounded_and_serializable() {
        let w = Watchdog::new(
            WatchConfig {
                log_capacity: 4,
                ..WatchConfig::default()
            },
            Vec::new(),
        );
        for i in 0..10 {
            w.event("panic", &format!("p{i}"));
        }
        let incidents = w.incidents();
        assert_eq!(incidents.len(), 4);
        assert_eq!(incidents[0].seq, 7, "oldest evicted");
        assert_eq!(w.opened(), 10);
        let json = serde_json::to_string(&incidents).unwrap();
        let back: Vec<Incident> = serde_json::from_str(&json).unwrap();
        assert_eq!(back, incidents);
    }

    #[test]
    fn metrics_families_exist_before_any_incident() {
        let m = Metrics::new();
        let _w = Watchdog::new(WatchConfig::default(), Vec::new()).with_metrics(&m);
        let report = m.report();
        assert_eq!(report.counters["watch.incidents"], 0);
        assert_eq!(report.counters["watch.flight_dumps"], 0);
        assert_eq!(report.gauges["watch.active"], 0.0);
    }
}

//! Predicted-ratings-for-all-items browsing (survey Section 4.4).
//!
//! "Rather than forcing selections on the user, a system may allow its
//! users to browse all the available options" with a predicted rating per
//! item. The user can then counteract predictions by re-rating — the
//! scrutability loop of Section 2.2.

use crate::top::star_glyphs;
use exrec_algo::{Ctx, Recommender};
use exrec_types::{ItemId, Prediction, UserId};

/// One row of the browse-all view.
#[derive(Debug, Clone, PartialEq)]
pub struct BrowseRow {
    /// The item.
    pub item: ItemId,
    /// Its title.
    pub title: String,
    /// The user's own rating, if they already rated it.
    pub own_rating: Option<f64>,
    /// The model's prediction, if one is possible.
    pub prediction: Option<Prediction>,
    /// Star display (own rating wins over prediction).
    pub stars: String,
}

/// Sort order for the browse view.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BrowseOrder {
    /// Catalog (id) order.
    Catalog,
    /// Best predicted first; unpredictable items last.
    PredictionDescending,
}

/// Builds the full browse view for `user`: *every* catalog item appears,
/// rated or not, predictable or not.
pub fn browse_all(
    rec: &dyn Recommender,
    ctx: &Ctx<'_>,
    user: UserId,
    order: BrowseOrder,
) -> Vec<BrowseRow> {
    let scale = ctx.ratings.scale();
    let mut rows: Vec<BrowseRow> = ctx
        .catalog
        .iter()
        .map(|it| {
            let own_rating = ctx.ratings.rating(user, it.id);
            let prediction = rec.predict(ctx, user, it.id).ok();
            let display = own_rating.or(prediction.map(|p| p.score));
            BrowseRow {
                item: it.id,
                title: it.title.clone(),
                own_rating,
                prediction,
                stars: match display {
                    Some(score) => star_glyphs(score, scale),
                    None => "—————".to_owned(),
                },
            }
        })
        .collect();
    if order == BrowseOrder::PredictionDescending {
        rows.sort_by(|a, b| {
            let ka = a.prediction.map(|p| p.score).unwrap_or(f64::MIN);
            let kb = b.prediction.map(|p| p.score).unwrap_or(f64::MIN);
            kb.partial_cmp(&ka)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.item.cmp(&b.item))
        });
    }
    rows
}

/// Rows whose prediction the user might want to challenge: low predicted
/// score despite the user never having said anything negative — the
/// "why is local hockey predicted 1 star?" entry point of Section 4.4.
pub fn challengeable_rows(rows: &[BrowseRow], scale_midpoint: f64) -> Vec<&BrowseRow> {
    rows.iter()
        .filter(|r| {
            r.own_rating.is_none()
                && r.prediction
                    .map(|p| p.score < scale_midpoint)
                    .unwrap_or(false)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use exrec_algo::baseline::Popularity;
    use exrec_data::synth::{news, WorldConfig};
    use exrec_data::World;

    fn world() -> World {
        news::generate(&WorldConfig {
            n_users: 20,
            n_items: 25,
            density: 0.3,
            ..WorldConfig::default()
        })
    }

    #[test]
    fn every_item_gets_a_row() {
        let w = world();
        let ctx = Ctx::new(&w.ratings, &w.catalog);
        let user = w.ratings.users().next().unwrap();
        let rows = browse_all(&Popularity::default(), &ctx, user, BrowseOrder::Catalog);
        assert_eq!(rows.len(), w.catalog.len());
        // Catalog order = id order.
        assert!(rows.windows(2).all(|p| p[0].item < p[1].item));
    }

    #[test]
    fn own_ratings_surface() {
        let w = world();
        let ctx = Ctx::new(&w.ratings, &w.catalog);
        let user = w
            .ratings
            .users()
            .find(|&u| !w.ratings.user_ratings(u).is_empty())
            .unwrap();
        let rows = browse_all(&Popularity::default(), &ctx, user, BrowseOrder::Catalog);
        let rated = w.ratings.user_ratings(user);
        for &(item, value) in rated {
            let row = rows.iter().find(|r| r.item == item).unwrap();
            assert_eq!(row.own_rating, Some(value));
        }
    }

    #[test]
    fn prediction_order_descends() {
        let w = world();
        let ctx = Ctx::new(&w.ratings, &w.catalog);
        let user = w.ratings.users().next().unwrap();
        let rows = browse_all(
            &Popularity::default(),
            &ctx,
            user,
            BrowseOrder::PredictionDescending,
        );
        let scores: Vec<f64> = rows
            .iter()
            .filter_map(|r| r.prediction.map(|p| p.score))
            .collect();
        assert!(scores.windows(2).all(|w| w[0] >= w[1]));
    }

    #[test]
    fn challengeable_rows_are_low_and_unrated() {
        let w = world();
        let ctx = Ctx::new(&w.ratings, &w.catalog);
        let user = w.ratings.users().next().unwrap();
        let rows = browse_all(&Popularity::default(), &ctx, user, BrowseOrder::Catalog);
        let mid = ctx.ratings.scale().midpoint();
        for r in challengeable_rows(&rows, mid) {
            assert!(r.own_rating.is_none());
            assert!(r.prediction.unwrap().score < mid);
        }
    }
}

//! Faceted metadata browsing (survey Section 4.5, after Yee et al.).
//!
//! "The user can see how many items there are available at each level for
//! each aspect." A facet is a categorical attribute; the browser keeps a
//! selection per facet and reports value counts over the *currently
//! filtered* item set, so counts always answer "what would I get if I
//! clicked this".

use exrec_data::Catalog;
use exrec_types::{Item, ItemId};
use std::collections::BTreeMap;

/// One facet value with its count under the current selection.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FacetValue {
    /// The value label.
    pub value: String,
    /// How many currently-visible items carry it.
    pub count: usize,
    /// Whether it is part of the active selection.
    pub selected: bool,
}

/// A faceted browser over a catalog.
#[derive(Debug, Clone)]
pub struct FacetBrowser<'a> {
    catalog: &'a Catalog,
    facets: Vec<String>,
    /// facet name → selected value (None = no filter on that facet).
    selection: BTreeMap<String, String>,
}

impl<'a> FacetBrowser<'a> {
    /// Builds a browser over every categorical attribute in the schema.
    pub fn new(catalog: &'a Catalog) -> Self {
        let facets = catalog
            .schema()
            .attributes()
            .iter()
            .filter(|a| a.kind == exrec_types::AttributeKind::Categorical)
            .map(|a| a.name.clone())
            .collect();
        Self {
            catalog,
            facets,
            selection: BTreeMap::new(),
        }
    }

    /// The facet names.
    pub fn facets(&self) -> &[String] {
        &self.facets
    }

    /// Selects a value on a facet (replacing any previous selection).
    pub fn select(&mut self, facet: &str, value: &str) {
        if self.facets.iter().any(|f| f == facet) {
            self.selection.insert(facet.to_owned(), value.to_owned());
        }
    }

    /// Clears a facet's selection.
    pub fn clear(&mut self, facet: &str) {
        self.selection.remove(facet);
    }

    /// Clears every selection.
    pub fn clear_all(&mut self) {
        self.selection.clear();
    }

    fn visible(&self, item: &Item) -> bool {
        self.selection
            .iter()
            .all(|(facet, value)| item.attrs.cat(facet) == Some(value.as_str()))
    }

    /// Items matching the current selection, in id order.
    pub fn items(&self) -> Vec<ItemId> {
        self.catalog
            .iter()
            .filter(|it| self.visible(it))
            .map(|it| it.id)
            .collect()
    }

    /// Value counts for `facet` under the current selection *excluding
    /// that facet's own filter* (so users see sibling options), sorted by
    /// value.
    pub fn values(&self, facet: &str) -> Vec<FacetValue> {
        let mut counts: BTreeMap<String, usize> = BTreeMap::new();
        for item in self.catalog.iter() {
            let others_ok = self
                .selection
                .iter()
                .filter(|(f, _)| f.as_str() != facet)
                .all(|(f, v)| item.attrs.cat(f) == Some(v.as_str()));
            if !others_ok {
                continue;
            }
            if let Some(v) = item.attrs.cat(facet) {
                *counts.entry(v.to_owned()).or_insert(0) += 1;
            }
        }
        counts
            .into_iter()
            .map(|(value, count)| FacetValue {
                selected: self.selection.get(facet) == Some(&value),
                value,
                count,
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use exrec_data::synth::{holidays, WorldConfig};
    use exrec_data::World;

    fn world() -> World {
        holidays::generate(&WorldConfig {
            n_items: 40,
            n_users: 5,
            ..WorldConfig::default()
        })
    }

    #[test]
    fn facets_are_categorical_attributes() {
        let w = world();
        let b = FacetBrowser::new(&w.catalog);
        assert!(b.facets().contains(&"style".to_owned()));
        assert!(b.facets().contains(&"climate".to_owned()));
        assert!(
            !b.facets().contains(&"price".to_owned()),
            "numeric excluded"
        );
    }

    #[test]
    fn selection_filters_items() {
        let w = world();
        let mut b = FacetBrowser::new(&w.catalog);
        let all = b.items().len();
        b.select("style", "beach");
        let beach = b.items();
        assert!(!beach.is_empty());
        assert!(beach.len() < all);
        for id in &beach {
            assert_eq!(
                w.catalog.get(*id).unwrap().attrs.cat("style"),
                Some("beach")
            );
        }
    }

    #[test]
    fn counts_sum_to_visible_items() {
        let w = world();
        let mut b = FacetBrowser::new(&w.catalog);
        b.select("climate", "hot");
        let total: usize = b.values("style").iter().map(|v| v.count).sum();
        assert_eq!(total, b.items().len());
    }

    #[test]
    fn own_facet_counts_show_siblings() {
        let w = world();
        let mut b = FacetBrowser::new(&w.catalog);
        b.select("style", "beach");
        // Counts for "style" ignore the style filter itself.
        let style_values = b.values("style");
        assert!(style_values.len() > 1, "siblings stay visible");
        assert!(style_values
            .iter()
            .any(|v| v.selected && v.value == "beach"));
    }

    #[test]
    fn cross_facet_filters_compose() {
        let w = world();
        let mut b = FacetBrowser::new(&w.catalog);
        b.select("style", "beach");
        b.select("climate", "hot");
        for id in b.items() {
            let it = w.catalog.get(id).unwrap();
            assert_eq!(it.attrs.cat("style"), Some("beach"));
            assert_eq!(it.attrs.cat("climate"), Some("hot"));
        }
        b.clear("climate");
        let after = b.items().len();
        b.clear_all();
        assert!(b.items().len() >= after);
    }

    #[test]
    fn selecting_unknown_facet_is_ignored() {
        let w = world();
        let mut b = FacetBrowser::new(&w.catalog);
        let before = b.items().len();
        b.select("nonexistent", "x");
        assert_eq!(b.items().len(), before);
    }
}

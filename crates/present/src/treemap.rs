//! Squarified and ordered treemap layout (survey Figure 2, after
//! Bederson, Shneiderman & Wattenberg).
//!
//! "Here it is possible to use different colors to represent topic areas,
//! square and font size to represent importance to the current user, and
//! shades of each topic color to represent recency." Nodes carry a
//! weight (importance → area), a colour group (topic) and a shade
//! (recency); layouts place them in the unit rectangle, and renderers
//! produce ASCII (for terminal demos) or SVG.

use std::fmt::Write as _;

/// A node to lay out.
#[derive(Debug, Clone, PartialEq)]
pub struct TreemapNode {
    /// Display label.
    pub label: String,
    /// Area weight (> 0). Importance to the current user.
    pub weight: f64,
    /// Colour group (topic index).
    pub group: usize,
    /// Shade within the group, `[0, 1]` (recency: 1 = newest).
    pub shade: f64,
}

/// An axis-aligned rectangle.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Rect {
    /// Left edge.
    pub x: f64,
    /// Top edge.
    pub y: f64,
    /// Width.
    pub w: f64,
    /// Height.
    pub h: f64,
}

impl Rect {
    /// The unit square.
    pub const UNIT: Rect = Rect {
        x: 0.0,
        y: 0.0,
        w: 1.0,
        h: 1.0,
    };

    /// Rectangle area.
    pub fn area(&self) -> f64 {
        self.w * self.h
    }

    /// Aspect ratio ≥ 1 (1 = square).
    pub fn aspect(&self) -> f64 {
        if self.w <= 0.0 || self.h <= 0.0 {
            f64::INFINITY
        } else {
            (self.w / self.h).max(self.h / self.w)
        }
    }

    /// Whether the point lies inside (inclusive of top/left edges).
    pub fn contains(&self, px: f64, py: f64) -> bool {
        px >= self.x && px < self.x + self.w && py >= self.y && py < self.y + self.h
    }
}

/// A computed layout: nodes with their rectangles.
#[derive(Debug, Clone, PartialEq)]
pub struct Treemap {
    /// `(node, rect)` pairs in layout order.
    pub cells: Vec<(TreemapNode, Rect)>,
}

/// Layout algorithm choice.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Layout {
    /// Bruls-style squarified layout: near-square cells, weight-sorted.
    Squarified,
    /// Ordered slice-and-dice: preserves input order, alternating axis.
    SliceAndDice,
}

/// Lays out `nodes` in `bounds`. Zero/negative-weight nodes are dropped.
///
/// ```
/// use exrec_present::treemap::{layout, Layout, Rect, TreemapNode};
///
/// let nodes = (1..=4)
///     .map(|k| TreemapNode {
///         label: format!("n{k}"),
///         weight: k as f64,
///         group: 0,
///         shade: 0.5,
///     })
///     .collect();
/// let map = layout(nodes, Rect::UNIT, Layout::Squarified);
/// let area: f64 = map.cells.iter().map(|(_, r)| r.area()).sum();
/// assert!((area - 1.0).abs() < 1e-9);
/// ```
pub fn layout(nodes: Vec<TreemapNode>, bounds: Rect, algorithm: Layout) -> Treemap {
    let nodes: Vec<TreemapNode> = nodes.into_iter().filter(|n| n.weight > 0.0).collect();
    if nodes.is_empty() || bounds.area() <= 0.0 {
        return Treemap { cells: Vec::new() };
    }
    match algorithm {
        Layout::Squarified => squarify(nodes, bounds),
        Layout::SliceAndDice => slice_dice(nodes, bounds, true),
    }
}

fn slice_dice(nodes: Vec<TreemapNode>, bounds: Rect, horizontal: bool) -> Treemap {
    let total: f64 = nodes.iter().map(|n| n.weight).sum();
    let mut cells = Vec::with_capacity(nodes.len());
    let mut offset = 0.0;
    for node in nodes {
        let frac = node.weight / total;
        let rect = if horizontal {
            Rect {
                x: bounds.x + offset * bounds.w,
                y: bounds.y,
                w: frac * bounds.w,
                h: bounds.h,
            }
        } else {
            Rect {
                x: bounds.x,
                y: bounds.y + offset * bounds.h,
                w: bounds.w,
                h: frac * bounds.h,
            }
        };
        offset += frac;
        cells.push((node, rect));
    }
    Treemap { cells }
}

/// Worst aspect ratio of a row of areas laid against a side of length
/// `side`.
fn worst_aspect(row: &[f64], side: f64) -> f64 {
    let sum: f64 = row.iter().sum();
    if sum <= 0.0 || side <= 0.0 {
        return f64::INFINITY;
    }
    let (min, max) = row
        .iter()
        .fold((f64::MAX, f64::MIN), |(lo, hi), &a| (lo.min(a), hi.max(a)));
    let s2 = sum * sum;
    let w2 = side * side;
    (w2 * max / s2).max(s2 / (w2 * min))
}

fn squarify(mut nodes: Vec<TreemapNode>, bounds: Rect) -> Treemap {
    // Normalize weights to the bounds area.
    let total: f64 = nodes.iter().map(|n| n.weight).sum();
    let scale = bounds.area() / total;
    nodes.sort_by(|a, b| {
        b.weight
            .partial_cmp(&a.weight)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.label.cmp(&b.label))
    });
    let areas: Vec<f64> = nodes.iter().map(|n| n.weight * scale).collect();

    let mut cells: Vec<(TreemapNode, Rect)> = Vec::with_capacity(nodes.len());
    let mut free = bounds;
    let mut row: Vec<usize> = Vec::new();
    let mut i = 0usize;

    let mut nodes_opt: Vec<Option<TreemapNode>> = nodes.into_iter().map(Some).collect();

    while i < areas.len() {
        let side = free.w.min(free.h);
        let row_areas: Vec<f64> = row.iter().map(|&k| areas[k]).collect();
        let mut with_next = row_areas.clone();
        with_next.push(areas[i]);
        if row.is_empty() || worst_aspect(&with_next, side) <= worst_aspect(&row_areas, side) {
            row.push(i);
            i += 1;
        } else {
            lay_row(&mut cells, &mut nodes_opt, &row, &areas, &mut free);
            row.clear();
        }
    }
    if !row.is_empty() {
        lay_row(&mut cells, &mut nodes_opt, &row, &areas, &mut free);
    }
    Treemap { cells }
}

/// Places a finished row along the shorter side of `free`, shrinking it.
fn lay_row(
    cells: &mut Vec<(TreemapNode, Rect)>,
    nodes: &mut [Option<TreemapNode>],
    row: &[usize],
    areas: &[f64],
    free: &mut Rect,
) {
    let row_area: f64 = row.iter().map(|&k| areas[k]).sum();
    if row_area <= 0.0 {
        return;
    }
    let horizontal = free.w < free.h; // lay row along the top (full width)
    if horizontal {
        let row_h = row_area / free.w;
        let mut x = free.x;
        for &k in row {
            let w = areas[k] / row_h;
            cells.push((
                nodes[k].take().expect("node used once"),
                Rect {
                    x,
                    y: free.y,
                    w,
                    h: row_h,
                },
            ));
            x += w;
        }
        free.y += row_h;
        free.h -= row_h;
    } else {
        let row_w = row_area / free.h;
        let mut y = free.y;
        for &k in row {
            let h = areas[k] / row_w;
            cells.push((
                nodes[k].take().expect("node used once"),
                Rect {
                    x: free.x,
                    y,
                    w: row_w,
                    h,
                },
            ));
            y += h;
        }
        free.x += row_w;
        free.w -= row_w;
    }
}

impl Treemap {
    /// Mean aspect ratio across cells (1 = all squares). Empty maps
    /// return 1.
    pub fn mean_aspect(&self) -> f64 {
        if self.cells.is_empty() {
            return 1.0;
        }
        self.cells.iter().map(|(_, r)| r.aspect()).sum::<f64>() / self.cells.len() as f64
    }

    /// ASCII rendering on a `cols`×`rows` character grid: each cell is
    /// filled with a letter cycling a–z in layout order.
    pub fn render_ascii(&self, cols: usize, rows: usize) -> String {
        let mut out = String::with_capacity((cols + 1) * rows);
        for ry in 0..rows {
            for rx in 0..cols {
                let px = (rx as f64 + 0.5) / cols as f64;
                let py = (ry as f64 + 0.5) / rows as f64;
                let ch = self
                    .cells
                    .iter()
                    .position(|(_, r)| r.contains(px, py))
                    .map(|k| (b'a' + (k % 26) as u8) as char)
                    .unwrap_or(' ');
                out.push(ch);
            }
            out.push('\n');
        }
        out
    }

    /// SVG rendering: `palette[group]` gives the base colour as
    /// `(r, g, b)`; shade scales lightness (newer = more saturated).
    pub fn render_svg(&self, width: u32, height: u32, palette: &[(u8, u8, u8)]) -> String {
        let mut svg = format!(
            "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"{width}\" height=\"{height}\" \
             viewBox=\"0 0 {width} {height}\">\n"
        );
        for (node, rect) in &self.cells {
            let (r, g, b) = palette
                .get(node.group % palette.len().max(1))
                .copied()
                .unwrap_or((128, 128, 128));
            let fade = 0.45 + 0.55 * node.shade.clamp(0.0, 1.0);
            let (r, g, b) = (
                (r as f64 * fade + 255.0 * (1.0 - fade)) as u8,
                (g as f64 * fade + 255.0 * (1.0 - fade)) as u8,
                (b as f64 * fade + 255.0 * (1.0 - fade)) as u8,
            );
            let _ = writeln!(
                svg,
                "  <rect x=\"{:.1}\" y=\"{:.1}\" width=\"{:.1}\" height=\"{:.1}\" \
                 fill=\"rgb({r},{g},{b})\" stroke=\"white\" stroke-width=\"1\">\
                 <title>{}</title></rect>",
                rect.x * width as f64,
                rect.y * height as f64,
                rect.w * width as f64,
                rect.h * height as f64,
                node.label
            );
        }
        svg.push_str("</svg>\n");
        svg
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn nodes(weights: &[f64]) -> Vec<TreemapNode> {
        weights
            .iter()
            .enumerate()
            .map(|(k, &w)| TreemapNode {
                label: format!("n{k}"),
                weight: w,
                group: k % 3,
                shade: 0.5,
            })
            .collect()
    }

    #[test]
    fn areas_proportional_to_weights() {
        for algo in [Layout::Squarified, Layout::SliceAndDice] {
            let t = layout(nodes(&[6.0, 3.0, 1.0]), Rect::UNIT, algo);
            let total: f64 = t.cells.iter().map(|(_, r)| r.area()).sum();
            assert!(
                (total - 1.0).abs() < 1e-9,
                "{algo:?}: cells tile the square"
            );
            for (n, r) in &t.cells {
                assert!(
                    (r.area() - n.weight / 10.0).abs() < 1e-9,
                    "{algo:?}: area of {} should be {}",
                    n.label,
                    n.weight / 10.0
                );
            }
        }
    }

    #[test]
    fn cells_do_not_overlap() {
        let t = layout(
            nodes(&[5.0, 4.0, 3.0, 2.0, 1.0, 1.0]),
            Rect::UNIT,
            Layout::Squarified,
        );
        // Sample a fine grid: each point lies in at most one cell.
        for gx in 0..50 {
            for gy in 0..50 {
                let px = (gx as f64 + 0.5) / 50.0;
                let py = (gy as f64 + 0.5) / 50.0;
                let hits = t.cells.iter().filter(|(_, r)| r.contains(px, py)).count();
                assert!(hits <= 1, "point ({px},{py}) in {hits} cells");
            }
        }
    }

    #[test]
    fn squarified_beats_slice_dice_on_aspect() {
        let ws: Vec<f64> = (1..=12).map(|k| k as f64).collect();
        let sq = layout(nodes(&ws), Rect::UNIT, Layout::Squarified);
        let sd = layout(nodes(&ws), Rect::UNIT, Layout::SliceAndDice);
        assert!(
            sq.mean_aspect() < sd.mean_aspect(),
            "squarified {:.2} should beat slice-dice {:.2}",
            sq.mean_aspect(),
            sd.mean_aspect()
        );
        assert!(sq.mean_aspect() < 3.0, "squarified cells stay near-square");
    }

    #[test]
    fn slice_dice_preserves_order() {
        let t = layout(nodes(&[1.0, 2.0, 3.0]), Rect::UNIT, Layout::SliceAndDice);
        let labels: Vec<&str> = t.cells.iter().map(|(n, _)| n.label.as_str()).collect();
        assert_eq!(labels, vec!["n0", "n1", "n2"]);
        // Left-to-right placement.
        assert!(t.cells.windows(2).all(|w| w[0].1.x <= w[1].1.x));
    }

    #[test]
    fn degenerate_inputs() {
        assert!(layout(vec![], Rect::UNIT, Layout::Squarified)
            .cells
            .is_empty());
        assert!(layout(nodes(&[0.0, -1.0]), Rect::UNIT, Layout::Squarified)
            .cells
            .is_empty());
        let single = layout(nodes(&[5.0]), Rect::UNIT, Layout::Squarified);
        assert_eq!(single.cells.len(), 1);
        assert!((single.cells[0].1.area() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn ascii_renders_all_cells() {
        let t = layout(nodes(&[4.0, 2.0, 1.0, 1.0]), Rect::UNIT, Layout::Squarified);
        let art = t.render_ascii(40, 20);
        assert_eq!(art.lines().count(), 20);
        for k in 0..4usize {
            let ch = (b'a' + k as u8) as char;
            assert!(art.contains(ch), "cell {ch} missing from ASCII render");
        }
    }

    #[test]
    fn svg_contains_rects_and_titles() {
        let t = layout(nodes(&[3.0, 1.0]), Rect::UNIT, Layout::Squarified);
        let svg = t.render_svg(400, 300, &[(200, 60, 60), (60, 60, 200), (60, 200, 60)]);
        assert!(svg.starts_with("<svg"));
        assert_eq!(svg.matches("<rect").count(), 2);
        assert!(svg.contains("<title>n0</title>"));
        assert!(svg.ends_with("</svg>\n"));
    }

    #[test]
    fn bigger_weight_gets_bigger_cell() {
        let t = layout(nodes(&[10.0, 1.0]), Rect::UNIT, Layout::Squarified);
        let big = t.cells.iter().find(|(n, _)| n.label == "n0").unwrap().1;
        let small = t.cells.iter().find(|(n, _)| n.label == "n1").unwrap().1;
        assert!(big.area() > small.area() * 5.0);
    }
}

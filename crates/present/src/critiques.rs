//! Unit and compound critiques (survey Sections 4.5 and 5.2).
//!
//! A *unit critique* is a single-attribute difference between a candidate
//! and the current recommendation ("Cheaper"). *Dynamic compound
//! critiques* (McCarthy et al.; Reilly et al.) are frequently co-occurring
//! difference patterns mined from the remaining candidates — the survey's
//! example: **"Less Memory and Lower Resolution and Cheaper"**. Their
//! titles double as category headers in the structured overview
//! (Section 4.5) and as one-click feedback actions (Section 5.2).

use exrec_algo::assoc::apriori;
use exrec_data::Catalog;
use exrec_types::{Direction, DomainSchema, Item, ItemId, Result};
use std::collections::HashMap;

/// Fraction of an attribute's catalog range that counts as "noticeably
/// different".
const EPSILON_FRAC: f64 = 0.05;

/// The direction of a unit critique on a numeric attribute.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CritiqueDirection {
    /// The candidate has noticeably less of the attribute.
    Less,
    /// The candidate has noticeably more of the attribute.
    More,
}

/// A single-attribute critique relative to a reference item.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct UnitCritique {
    /// The numeric attribute name.
    pub attribute: String,
    /// Direction of difference.
    pub direction: CritiqueDirection,
}

impl UnitCritique {
    /// Builds a unit critique.
    pub fn new(attribute: &str, direction: CritiqueDirection) -> Self {
        Self {
            attribute: attribute.to_owned(),
            direction,
        }
    }

    /// The display phrase, using the schema's comparative adjectives
    /// ("Cheaper", "Less Memory", "Higher Resolution").
    pub fn phrase(&self, schema: &DomainSchema) -> String {
        match schema.attribute(&self.attribute) {
            Some(def) => match self.direction {
                CritiqueDirection::Less => def.less_word(),
                CritiqueDirection::More => def.more_word(),
            },
            None => format!(
                "{} {}",
                match self.direction {
                    CritiqueDirection::Less => "less",
                    CritiqueDirection::More => "more",
                },
                self.attribute
            ),
        }
    }

    /// Whether moving in this direction is an improvement, a sacrifice,
    /// or neutral under the schema's preference direction.
    pub fn is_improvement(&self, schema: &DomainSchema) -> Option<bool> {
        let def = schema.attribute(&self.attribute)?;
        match (def.direction, self.direction) {
            (Direction::LowerIsBetter, CritiqueDirection::Less)
            | (Direction::HigherIsBetter, CritiqueDirection::More) => Some(true),
            (Direction::LowerIsBetter, CritiqueDirection::More)
            | (Direction::HigherIsBetter, CritiqueDirection::Less) => Some(false),
            (Direction::Neutral, _) => None,
        }
    }

    /// Whether `candidate` differs from `reference` in this critique's
    /// direction by more than epsilon of the attribute's `range`.
    pub fn matches(&self, candidate: &Item, reference: &Item, range: (f64, f64)) -> bool {
        let (Some(c), Some(r)) = (
            candidate.attrs.num(&self.attribute),
            reference.attrs.num(&self.attribute),
        ) else {
            return false;
        };
        let eps = (range.1 - range.0).abs() * EPSILON_FRAC;
        match self.direction {
            CritiqueDirection::Less => c < r - eps,
            CritiqueDirection::More => c > r + eps,
        }
    }
}

/// A mined compound critique: a set of unit critiques that frequently
/// co-occur among the remaining candidates, with its support.
#[derive(Debug, Clone, PartialEq)]
pub struct CompoundCritique {
    /// The constituent unit critiques, in schema attribute order.
    pub parts: Vec<UnitCritique>,
    /// Fraction of candidates exhibiting the full pattern.
    pub support: f64,
}

impl CompoundCritique {
    /// The category title in the survey's style: improvements joined by
    /// "and", sacrifices after "but" — e.g.
    /// `"Cheaper and Lighter, but Lower Resolution"`.
    pub fn title(&self, schema: &DomainSchema) -> String {
        let mut ups: Vec<String> = Vec::new();
        let mut downs: Vec<String> = Vec::new();
        for p in &self.parts {
            let phrase = p.phrase(schema);
            match p.is_improvement(schema) {
                Some(false) => downs.push(phrase),
                _ => ups.push(phrase),
            }
        }
        match (ups.is_empty(), downs.is_empty()) {
            (false, false) => format!("{}, but {}", ups.join(" and "), downs.join(" and ")),
            (false, true) => ups.join(" and "),
            (true, false) => downs.join(" and "),
            (true, true) => String::new(),
        }
    }

    /// Whether `candidate` exhibits every part of the pattern relative to
    /// `reference`.
    pub fn matches(
        &self,
        candidate: &Item,
        reference: &Item,
        ranges: &HashMap<String, (f64, f64)>,
    ) -> bool {
        self.parts.iter().all(|p| {
            ranges
                .get(&p.attribute)
                .map(|&r| p.matches(candidate, reference, r))
                .unwrap_or(false)
        })
    }
}

/// Catalog-wide numeric ranges for every numeric attribute in the schema.
pub fn attribute_ranges(catalog: &Catalog) -> HashMap<String, (f64, f64)> {
    catalog
        .schema()
        .attributes()
        .iter()
        .filter_map(|def| {
            catalog
                .numeric_range(&def.name)
                .map(|r| (def.name.clone(), r))
        })
        .collect()
}

/// The difference pattern of `candidate` vs `reference`: one unit
/// critique per numeric attribute that differs noticeably.
pub fn pattern_of(
    candidate: &Item,
    reference: &Item,
    ranges: &HashMap<String, (f64, f64)>,
) -> Vec<UnitCritique> {
    let mut out = Vec::new();
    let mut attrs: Vec<&String> = ranges.keys().collect();
    attrs.sort();
    for attr in attrs {
        for dir in [CritiqueDirection::Less, CritiqueDirection::More] {
            let uc = UnitCritique::new(attr, dir);
            if uc.matches(candidate, reference, ranges[attr]) {
                out.push(uc);
                break;
            }
        }
    }
    out
}

/// Mines dynamic compound critiques of size 2..=`max_len` over
/// `candidates` relative to `reference`, keeping patterns with support ≥
/// `min_support`. Results are ordered by descending support, then by
/// descending size, then lexically — the presentation order of the
/// structured overview.
///
/// # Errors
///
/// Propagates catalog lookups for `reference` and candidates.
pub fn mine_compound(
    catalog: &Catalog,
    reference: ItemId,
    candidates: &[ItemId],
    min_support: f64,
    max_len: usize,
) -> Result<Vec<CompoundCritique>> {
    let reference_item = catalog.get(reference)?;
    let ranges = attribute_ranges(catalog);

    // Stable symbol table: attribute index × direction.
    let mut attr_names: Vec<&str> = ranges.keys().map(String::as_str).collect();
    attr_names.sort_unstable();
    let symbol = |uc: &UnitCritique| -> u32 {
        let idx = attr_names
            .binary_search(&uc.attribute.as_str())
            .expect("attribute from ranges") as u32;
        idx * 2
            + match uc.direction {
                CritiqueDirection::Less => 0,
                CritiqueDirection::More => 1,
            }
    };
    let unsymbol = |s: u32| -> UnitCritique {
        UnitCritique::new(
            attr_names[(s / 2) as usize],
            if s.is_multiple_of(2) {
                CritiqueDirection::Less
            } else {
                CritiqueDirection::More
            },
        )
    };

    let mut transactions: Vec<Vec<u32>> = Vec::with_capacity(candidates.len());
    for &cand in candidates {
        if cand == reference {
            continue;
        }
        let item = catalog.get(cand)?;
        let pattern = pattern_of(item, reference_item, &ranges);
        transactions.push(pattern.iter().map(&symbol).collect());
    }

    let mut compounds: Vec<CompoundCritique> = apriori(&transactions, min_support, max_len)
        .into_iter()
        .filter(|fs| fs.items.len() >= 2)
        .map(|fs| CompoundCritique {
            parts: fs.items.iter().map(|&s| unsymbol(s)).collect(),
            support: fs.support,
        })
        .collect();
    compounds.sort_by(|a, b| {
        b.support
            .partial_cmp(&a.support)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(b.parts.len().cmp(&a.parts.len()))
            .then_with(|| format!("{:?}", a.parts).cmp(&format!("{:?}", b.parts)))
    });
    Ok(compounds)
}

#[cfg(test)]
mod tests {
    use super::*;
    use exrec_data::synth::{cameras, WorldConfig};
    use exrec_data::World;

    fn world() -> World {
        cameras::generate(&WorldConfig {
            n_items: 40,
            n_users: 5,
            ..WorldConfig::default()
        })
    }

    #[test]
    fn phrases_use_schema_comparatives() {
        let schema = cameras::schema();
        assert_eq!(
            UnitCritique::new("price", CritiqueDirection::Less).phrase(&schema),
            "Cheaper"
        );
        assert_eq!(
            UnitCritique::new("memory", CritiqueDirection::Less).phrase(&schema),
            "Less Memory"
        );
        assert_eq!(
            UnitCritique::new("resolution", CritiqueDirection::Less).phrase(&schema),
            "Lower Resolution"
        );
    }

    #[test]
    fn improvement_classification() {
        let schema = cameras::schema();
        assert_eq!(
            UnitCritique::new("price", CritiqueDirection::Less).is_improvement(&schema),
            Some(true)
        );
        assert_eq!(
            UnitCritique::new("resolution", CritiqueDirection::Less).is_improvement(&schema),
            Some(false)
        );
        assert_eq!(
            UnitCritique::new("zoom", CritiqueDirection::More).is_improvement(&schema),
            Some(true)
        );
    }

    #[test]
    fn title_joins_with_but() {
        let schema = cameras::schema();
        let c = CompoundCritique {
            parts: vec![
                UnitCritique::new("memory", CritiqueDirection::Less),
                UnitCritique::new("resolution", CritiqueDirection::Less),
                UnitCritique::new("price", CritiqueDirection::Less),
            ],
            support: 0.3,
        };
        let title = c.title(&schema);
        // The survey's exact example pattern: improvements first, then but.
        assert!(title.contains("Cheaper"));
        assert!(title.contains("but"));
        assert!(title.contains("Less Memory"));
        assert!(title.contains("Lower Resolution"));
        assert!(
            title.starts_with("Cheaper"),
            "improvement leads the title: {title}"
        );
    }

    #[test]
    fn title_without_sacrifices_has_no_but() {
        let schema = cameras::schema();
        let c = CompoundCritique {
            parts: vec![
                UnitCritique::new("price", CritiqueDirection::Less),
                UnitCritique::new("weight", CritiqueDirection::Less),
            ],
            support: 0.5,
        };
        let title = c.title(&schema);
        assert_eq!(title, "Cheaper and Lighter");
    }

    #[test]
    fn pattern_detects_differences() {
        let w = world();
        let ranges = attribute_ranges(&w.catalog);
        // Find two cameras with clearly different price.
        let items: Vec<&exrec_types::Item> = w.catalog.iter().collect();
        let (mut lo, mut hi) = (items[0], items[0]);
        for it in &items {
            if it.attrs.num("price") < lo.attrs.num("price") {
                lo = it;
            }
            if it.attrs.num("price") > hi.attrs.num("price") {
                hi = it;
            }
        }
        let pattern = pattern_of(lo, hi, &ranges);
        assert!(
            pattern.contains(&UnitCritique::new("price", CritiqueDirection::Less)),
            "cheapest vs priciest must include a Cheaper critique"
        );
    }

    #[test]
    fn mined_compounds_have_support_and_match_candidates() {
        let w = world();
        let reference = w.catalog.ids().next().unwrap();
        let candidates: Vec<ItemId> = w.catalog.ids().collect();
        let compounds = mine_compound(&w.catalog, reference, &candidates, 0.15, 3).unwrap();
        assert!(!compounds.is_empty(), "camera world must yield compounds");
        let ranges = attribute_ranges(&w.catalog);
        let reference_item = w.catalog.get(reference).unwrap();
        for c in &compounds {
            assert!(c.parts.len() >= 2);
            assert!(c.support >= 0.15);
            // Support is consistent: counting matching candidates
            // reproduces it.
            let matching = candidates
                .iter()
                .filter(|&&i| i != reference)
                .filter(|&&i| c.matches(w.catalog.get(i).unwrap(), reference_item, &ranges))
                .count();
            let expected = (c.support * (candidates.len() - 1) as f64).round() as usize;
            assert_eq!(matching, expected, "support mismatch for {c:?}");
        }
        // Ordered by support.
        assert!(compounds.windows(2).all(|w| w[0].support >= w[1].support));
    }

    #[test]
    fn less_and_more_are_exclusive_per_attribute() {
        let w = world();
        let ranges = attribute_ranges(&w.catalog);
        let a = w.catalog.get(ItemId::new(0)).unwrap();
        let b = w.catalog.get(ItemId::new(1)).unwrap();
        let pattern = pattern_of(a, b, &ranges);
        let mut attrs: Vec<&str> = pattern.iter().map(|p| p.attribute.as_str()).collect();
        let before = attrs.len();
        attrs.sort_unstable();
        attrs.dedup();
        assert_eq!(attrs.len(), before, "one critique per attribute");
    }
}

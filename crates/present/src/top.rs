//! Top-item and top-N presentations (survey Sections 4.1–4.2).
//!
//! "Relevance can be represented by the order in which recommendations
//! are given. In a list, the best items are at the top." Star glyphs and
//! rank markers make relevance visible.

use exrec_algo::{Ctx, Recommender, Scored};
use exrec_types::{Result, UserId};
use std::fmt::Write as _;

/// One row of a presented recommendation list.
#[derive(Debug, Clone, PartialEq)]
pub struct PresentedItem {
    /// 1-based rank.
    pub rank: usize,
    /// The scored item.
    pub scored: Scored,
    /// The item's display title.
    pub title: String,
    /// Star string for the predicted rating, e.g. `"★★★★☆"`.
    pub stars: String,
}

/// A rendered recommendation list.
#[derive(Debug, Clone, PartialEq)]
pub struct TopList {
    /// The rows, best first.
    pub entries: Vec<PresentedItem>,
}

/// Renders a predicted score as filled/empty stars on a 5-slot display,
/// regardless of the underlying scale (the display normalizes).
pub fn star_glyphs(score: f64, scale: &exrec_types::RatingScale) -> String {
    let unit = scale.normalize(score);
    let filled = (unit * 5.0).round() as usize;
    let filled = filled.min(5);
    format!("{}{}", "★".repeat(filled), "☆".repeat(5 - filled))
}

/// Builds the single-best-item presentation (survey Section 4.1).
///
/// # Errors
///
/// Returns [`exrec_types::Error::NoPrediction`] when the recommender
/// cannot rank anything for this user.
pub fn top_item(rec: &dyn Recommender, ctx: &Ctx<'_>, user: UserId) -> Result<PresentedItem> {
    top_n(rec, ctx, user, 1)
        .entries
        .into_iter()
        .next()
        .ok_or(exrec_types::Error::NoPrediction {
            user,
            item: exrec_types::ItemId::new(0),
            reason: "recommender produced no candidates",
        })
}

/// Builds a top-N list (survey Section 4.2). Items without catalog
/// entries are skipped.
pub fn top_n(rec: &dyn Recommender, ctx: &Ctx<'_>, user: UserId, n: usize) -> TopList {
    let entries = rec
        .recommend(ctx, user, n)
        .into_iter()
        .enumerate()
        .filter_map(|(k, scored)| {
            let item = ctx.catalog.get(scored.item).ok()?;
            Some(PresentedItem {
                rank: k + 1,
                title: item.title.clone(),
                stars: star_glyphs(scored.prediction.score, ctx.ratings.scale()),
                scored,
            })
        })
        .collect();
    TopList { entries }
}

impl TopList {
    /// Plain-text rendering, one row per line.
    pub fn render_plain(&self) -> String {
        let mut out = String::new();
        for e in &self.entries {
            let _ = writeln!(
                out,
                "{:>2}. {} {} ({:.1})",
                e.rank, e.stars, e.title, e.scored.prediction.score
            );
        }
        out
    }

    /// Whether ranks strictly ascend and scores weakly descend — the
    /// ordering invariant of Section 4's "best items at the top".
    pub fn is_well_ordered(&self) -> bool {
        self.entries.windows(2).all(|w| {
            w[0].rank + 1 == w[1].rank
                && w[0].scored.prediction.score >= w[1].scored.prediction.score
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use exrec_algo::baseline::Popularity;
    use exrec_data::synth::{movies, WorldConfig};
    use exrec_data::World;
    use exrec_types::RatingScale;

    fn world() -> World {
        movies::generate(&WorldConfig {
            n_users: 20,
            n_items: 30,
            density: 0.3,
            ..WorldConfig::default()
        })
    }

    #[test]
    fn star_glyphs_span() {
        let s = RatingScale::FIVE_STAR;
        assert_eq!(star_glyphs(5.0, &s), "★★★★★");
        assert_eq!(star_glyphs(1.0, &s), "☆☆☆☆☆");
        assert_eq!(star_glyphs(3.0, &s), "★★★☆☆");
        assert_eq!(star_glyphs(3.0, &s).chars().count(), 5);
    }

    #[test]
    fn top_n_is_ordered_and_sized() {
        let w = world();
        let ctx = Ctx::new(&w.ratings, &w.catalog);
        let rec = Popularity::default();
        let user = w.ratings.users().next().unwrap();
        let list = top_n(&rec, &ctx, user, 5);
        assert_eq!(list.entries.len(), 5);
        assert!(list.is_well_ordered());
        assert_eq!(list.entries[0].rank, 1);
    }

    #[test]
    fn top_item_is_head_of_list() {
        let w = world();
        let ctx = Ctx::new(&w.ratings, &w.catalog);
        let rec = Popularity::default();
        let user = w.ratings.users().next().unwrap();
        let single = top_item(&rec, &ctx, user).unwrap();
        let list = top_n(&rec, &ctx, user, 3);
        assert_eq!(single, list.entries[0]);
    }

    #[test]
    fn render_contains_titles() {
        let w = world();
        let ctx = Ctx::new(&w.ratings, &w.catalog);
        let rec = Popularity::default();
        let user = w.ratings.users().next().unwrap();
        let list = top_n(&rec, &ctx, user, 3);
        let text = list.render_plain();
        for e in &list.entries {
            assert!(text.contains(&e.title));
        }
        assert_eq!(text.lines().count(), 3);
    }
}

//! "You might also like…" presentation (survey Section 4.3).
//!
//! Once a user shows a preference for one or more items, the system
//! presents items similar to them — individually ("You might also
//! like… Oliver Twist by Charles Dickens") or socially ("People like you
//! liked… Oliver Twist").

use crate::top::star_glyphs;
use exrec_algo::item_knn::ItemKnn;
use exrec_algo::Ctx;
use exrec_types::{ItemId, Result, UserId};

/// One "similar to" suggestion.
#[derive(Debug, Clone, PartialEq)]
pub struct SimilarSuggestion {
    /// The suggested item.
    pub item: ItemId,
    /// Its title.
    pub title: String,
    /// The anchor item it is similar to.
    pub anchor: ItemId,
    /// Anchor title.
    pub anchor_title: String,
    /// Similarity score.
    pub similarity: f64,
    /// The lead sentence, in the survey's phrasing.
    pub lead: String,
}

/// Phrasing variant for the lead sentence.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SimilarPhrasing {
    /// "You might also like…" (individual framing).
    Individual,
    /// "People like you liked…" (social framing).
    Social,
}

/// Suggests up to `n` items similar to `anchor` that `user` has not yet
/// rated, using a fitted item-kNN similarity table.
///
/// # Errors
///
/// Propagates catalog lookup failures for the anchor.
pub fn similar_to(
    model: &ItemKnn,
    ctx: &Ctx<'_>,
    user: UserId,
    anchor: ItemId,
    n: usize,
    phrasing: SimilarPhrasing,
) -> Result<Vec<SimilarSuggestion>> {
    let anchor_item = ctx.catalog.get(anchor)?;
    let out = model
        .similar_items(anchor, usize::MAX)
        .iter()
        .filter(|&&(i, _)| ctx.ratings.rating(user, i).is_none())
        .filter_map(|&(i, similarity)| {
            let item = ctx.catalog.get(i).ok()?;
            let lead = match phrasing {
                SimilarPhrasing::Individual => {
                    format!("You might also like… \"{}\"", item.title)
                }
                SimilarPhrasing::Social => {
                    format!("People like you liked… \"{}\"", item.title)
                }
            };
            Some(SimilarSuggestion {
                item: i,
                title: item.title.clone(),
                anchor,
                anchor_title: anchor_item.title.clone(),
                similarity,
                lead,
            })
        })
        .take(n)
        .collect();
    Ok(out)
}

/// Suggests items similar to the user's highest-rated item(s): picks the
/// user's top `n_anchors` rated items and merges their neighbours,
/// deduplicated, best similarity first.
pub fn similar_to_favourites(
    model: &ItemKnn,
    ctx: &Ctx<'_>,
    user: UserId,
    n_anchors: usize,
    n: usize,
) -> Vec<SimilarSuggestion> {
    let mut rated: Vec<(ItemId, f64)> = ctx.ratings.user_ratings(user).to_vec();
    rated.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));
    let mut out: Vec<SimilarSuggestion> = Vec::new();
    for &(anchor, _) in rated.iter().take(n_anchors) {
        if let Ok(suggestions) =
            similar_to(model, ctx, user, anchor, n, SimilarPhrasing::Individual)
        {
            for s in suggestions {
                if !out.iter().any(|o| o.item == s.item) {
                    out.push(s);
                }
            }
        }
    }
    out.sort_by(|a, b| {
        b.similarity
            .partial_cmp(&a.similarity)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.item.cmp(&b.item))
    });
    out.truncate(n);
    out
}

/// Renders one suggestion with the anchor context and star display.
pub fn render_suggestion(s: &SimilarSuggestion, ctx: &Ctx<'_>) -> String {
    let stars = star_glyphs(
        ctx.ratings
            .item_mean(s.item)
            .unwrap_or_else(|| ctx.ratings.scale().midpoint()),
        ctx.ratings.scale(),
    );
    format!(
        "{} {} — because you liked \"{}\" (similarity {:.2})",
        s.lead, stars, s.anchor_title, s.similarity
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use exrec_algo::item_knn::ItemKnnConfig;
    use exrec_data::synth::{books, WorldConfig};
    use exrec_data::World;

    fn world() -> World {
        books::generate(&WorldConfig {
            n_users: 40,
            n_items: 40,
            density: 0.35,
            ..WorldConfig::default()
        })
    }

    fn fitted(w: &World) -> ItemKnn {
        let ctx = Ctx::new(&w.ratings, &w.catalog);
        ItemKnn::fit(&ctx, ItemKnnConfig::default()).unwrap()
    }

    fn anchored_user(w: &World, model: &ItemKnn) -> (UserId, ItemId) {
        for u in w.ratings.users() {
            for &(i, _) in w.ratings.user_ratings(u) {
                if !model.similar_items(i, 1).is_empty() {
                    return (u, i);
                }
            }
        }
        panic!("no anchor with neighbours");
    }

    #[test]
    fn suggestions_exclude_rated_items() {
        let w = world();
        let model = fitted(&w);
        let ctx = Ctx::new(&w.ratings, &w.catalog);
        let (user, anchor) = anchored_user(&w, &model);
        let sugg = similar_to(&model, &ctx, user, anchor, 5, SimilarPhrasing::Individual).unwrap();
        for s in &sugg {
            assert!(ctx.ratings.rating(user, s.item).is_none());
            assert_eq!(s.anchor, anchor);
        }
    }

    #[test]
    fn phrasing_variants() {
        let w = world();
        let model = fitted(&w);
        let ctx = Ctx::new(&w.ratings, &w.catalog);
        let (user, anchor) = anchored_user(&w, &model);
        let ind = similar_to(&model, &ctx, user, anchor, 1, SimilarPhrasing::Individual).unwrap();
        let soc = similar_to(&model, &ctx, user, anchor, 1, SimilarPhrasing::Social).unwrap();
        if let (Some(i), Some(s)) = (ind.first(), soc.first()) {
            assert!(i.lead.starts_with("You might also like…"));
            assert!(s.lead.starts_with("People like you liked…"));
        }
    }

    #[test]
    fn favourites_merge_dedupes_and_sorts() {
        let w = world();
        let model = fitted(&w);
        let ctx = Ctx::new(&w.ratings, &w.catalog);
        let user = w
            .ratings
            .users()
            .find(|&u| w.ratings.user_ratings(u).len() >= 3)
            .unwrap();
        let sugg = similar_to_favourites(&model, &ctx, user, 3, 10);
        let mut ids: Vec<ItemId> = sugg.iter().map(|s| s.item).collect();
        let before = ids.len();
        ids.sort();
        ids.dedup();
        assert_eq!(ids.len(), before, "no duplicates");
        assert!(sugg.windows(2).all(|w| w[0].similarity >= w[1].similarity));
    }

    #[test]
    fn render_mentions_anchor() {
        let w = world();
        let model = fitted(&w);
        let ctx = Ctx::new(&w.ratings, &w.catalog);
        let (user, anchor) = anchored_user(&w, &model);
        if let Some(s) = similar_to(&model, &ctx, user, anchor, 1, SimilarPhrasing::Individual)
            .unwrap()
            .first()
        {
            let text = render_suggestion(s, &ctx);
            assert!(text.contains(&s.anchor_title));
            assert!(text.contains('★') || text.contains('☆'));
        }
    }
}

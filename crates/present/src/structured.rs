//! Pu & Chen's structured overview (survey Section 4.5).
//!
//! "The best matching item is displayed at the top. Below it several
//! categories of trade-off alternatives are listed. Each category has a
//! title explaining the characteristics of the items in it" — e.g.
//! *"[these laptops]… are cheaper and lighter, but have lower processor
//! speed"*. The ordering of categories follows how well each category
//! matches the user's requirements.

use crate::critiques::{attribute_ranges, mine_compound, CompoundCritique};
use exrec_algo::knowledge::Maut;
use exrec_algo::{Ctx, Scored};
use exrec_types::{Error, ItemId, Result};
use std::fmt::Write as _;

/// One trade-off category.
#[derive(Debug, Clone, PartialEq)]
pub struct Category {
    /// The compound critique characterizing the category.
    pub critique: CompoundCritique,
    /// The category title shown to the user.
    pub title: String,
    /// Member items, best first.
    pub items: Vec<Scored>,
    /// Mean requirement-utility of the members (ordering key).
    pub mean_utility: f64,
}

/// The full structured overview.
#[derive(Debug, Clone, PartialEq)]
pub struct StructuredOverview {
    /// The best-matching item.
    pub best: Scored,
    /// Trade-off categories, best matching first.
    pub categories: Vec<Category>,
}

/// Configuration for building a structured overview.
#[derive(Debug, Clone, PartialEq)]
pub struct OverviewConfig {
    /// Minimum support for mined compound critiques.
    pub min_support: f64,
    /// Maximum critique size.
    pub max_critique_len: usize,
    /// Maximum number of categories shown.
    pub max_categories: usize,
    /// Maximum items listed per category.
    pub max_items_per_category: usize,
}

impl Default for OverviewConfig {
    fn default() -> Self {
        Self {
            min_support: 0.15,
            max_critique_len: 3,
            max_categories: 4,
            max_items_per_category: 5,
        }
    }
}

/// Builds the structured overview: ranks candidates with `maut`, takes
/// the best as the reference, mines compound critiques over the rest, and
/// groups the remainder into titled trade-off categories ordered by how
/// well their members satisfy the requirements.
///
/// # Errors
///
/// Returns [`Error::NoPrediction`]-style failure when no candidate passes
/// the hard requirements, and propagates catalog lookups.
pub fn build_overview(
    maut: &Maut,
    ctx: &Ctx<'_>,
    config: &OverviewConfig,
) -> Result<StructuredOverview> {
    let ranked = maut.rank(ctx, usize::MAX);
    let best = *ranked.first().ok_or(Error::NoPrediction {
        user: exrec_types::UserId::new(0),
        item: ItemId::new(0),
        reason: "no candidate passes the hard requirements",
    })?;

    let candidates: Vec<ItemId> = ranked.iter().skip(1).map(|s| s.item).collect();
    let compounds = mine_compound(
        ctx.catalog,
        best.item,
        &candidates,
        config.min_support,
        config.max_critique_len,
    )?;

    let ranges = attribute_ranges(ctx.catalog);
    let reference = ctx.catalog.get(best.item)?;
    let schema = ctx.catalog.schema();

    let mut categories: Vec<Category> = Vec::new();
    let mut used: Vec<ItemId> = Vec::new();
    for critique in compounds {
        if categories.len() >= config.max_categories {
            break;
        }
        let mut items: Vec<Scored> = ranked
            .iter()
            .skip(1)
            .filter(|s| !used.contains(&s.item))
            .filter(|s| {
                ctx.catalog
                    .get(s.item)
                    .map(|it| critique.matches(it, reference, &ranges))
                    .unwrap_or(false)
            })
            .copied()
            .collect();
        if items.is_empty() {
            continue;
        }
        items.truncate(config.max_items_per_category);
        used.extend(items.iter().map(|s| s.item));
        let mean_utility = items
            .iter()
            .map(|s| {
                ctx.catalog
                    .get(s.item)
                    .map(|it| maut.utility(it).0)
                    .unwrap_or(0.0)
            })
            .sum::<f64>()
            / items.len() as f64;
        let title = critique.title(schema);
        categories.push(Category {
            critique,
            title,
            items,
            mean_utility,
        });
    }
    // "The order of the titles depends on how well the category matches
    // the user's requirements."
    categories.sort_by(|a, b| {
        b.mean_utility
            .partial_cmp(&a.mean_utility)
            .unwrap_or(std::cmp::Ordering::Equal)
    });

    Ok(StructuredOverview { best, categories })
}

impl StructuredOverview {
    /// Plain-text rendering: the best item, then each titled category.
    pub fn render_plain(&self, ctx: &Ctx<'_>) -> String {
        let mut out = String::new();
        if let Ok(best) = ctx.catalog.get(self.best.item) {
            let _ = writeln!(
                out,
                "Best match: \"{}\" ({:.1})",
                best.title, self.best.prediction.score
            );
        }
        for cat in &self.categories {
            let _ = writeln!(out, "\n[{}]", cat.title);
            for s in &cat.items {
                if let Ok(item) = ctx.catalog.get(s.item) {
                    let _ = writeln!(out, "  - \"{}\" ({:.1})", item.title, s.prediction.score);
                }
            }
        }
        out
    }

    /// Total number of alternative items shown across categories.
    pub fn n_alternatives(&self) -> usize {
        self.categories.iter().map(|c| c.items.len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use exrec_algo::knowledge::{Constraint, Requirement};
    use exrec_data::synth::{cameras, WorldConfig};
    use exrec_data::World;

    fn world() -> World {
        cameras::generate(&WorldConfig {
            n_items: 50,
            n_users: 5,
            ..WorldConfig::default()
        })
    }

    fn maut() -> Maut {
        Maut::new(vec![
            Requirement::soft("price", Constraint::AtMost(400.0)).with_weight(2.0),
            Requirement::soft("resolution", Constraint::AtLeast(8.0)),
            Requirement::soft("zoom", Constraint::AtLeast(5.0)),
        ])
        .unwrap()
    }

    #[test]
    fn overview_has_best_and_categories() {
        let w = world();
        let ctx = Ctx::new(&w.ratings, &w.catalog);
        let o = build_overview(&maut(), &ctx, &OverviewConfig::default()).unwrap();
        assert!(
            !o.categories.is_empty(),
            "camera world must yield categories"
        );
        // Best item is the MAUT top choice.
        let top = maut().rank(&ctx, 1)[0];
        assert_eq!(o.best.item, top.item);
    }

    #[test]
    fn categories_ordered_by_requirement_match() {
        let w = world();
        let ctx = Ctx::new(&w.ratings, &w.catalog);
        let o = build_overview(&maut(), &ctx, &OverviewConfig::default()).unwrap();
        assert!(o
            .categories
            .windows(2)
            .all(|c| c[0].mean_utility >= c[1].mean_utility));
    }

    #[test]
    fn categories_do_not_repeat_items() {
        let w = world();
        let ctx = Ctx::new(&w.ratings, &w.catalog);
        let o = build_overview(&maut(), &ctx, &OverviewConfig::default()).unwrap();
        let mut seen: Vec<ItemId> = vec![o.best.item];
        for cat in &o.categories {
            for s in &cat.items {
                assert!(!seen.contains(&s.item), "item {:?} repeated", s.item);
                seen.push(s.item);
            }
        }
    }

    #[test]
    fn titles_are_nonempty_and_use_comparatives() {
        let w = world();
        let ctx = Ctx::new(&w.ratings, &w.catalog);
        let o = build_overview(&maut(), &ctx, &OverviewConfig::default()).unwrap();
        for c in &o.categories {
            assert!(!c.title.is_empty());
            assert!(
                c.title.contains("and") || c.title.contains("but"),
                "compound titles combine phrases: {}",
                c.title
            );
        }
    }

    #[test]
    fn members_actually_match_their_critique() {
        let w = world();
        let ctx = Ctx::new(&w.ratings, &w.catalog);
        let o = build_overview(&maut(), &ctx, &OverviewConfig::default()).unwrap();
        let ranges = attribute_ranges(&w.catalog);
        let reference = w.catalog.get(o.best.item).unwrap();
        for cat in &o.categories {
            for s in &cat.items {
                let item = w.catalog.get(s.item).unwrap();
                assert!(
                    cat.critique.matches(item, reference, &ranges),
                    "\"{}\" does not satisfy \"{}\"",
                    item.title,
                    cat.title
                );
            }
        }
    }

    #[test]
    fn hard_filter_with_no_survivors_errors() {
        let w = world();
        let ctx = Ctx::new(&w.ratings, &w.catalog);
        let impossible =
            Maut::new(vec![Requirement::hard("price", Constraint::AtMost(1.0))]).unwrap();
        assert!(build_overview(&impossible, &ctx, &OverviewConfig::default()).is_err());
    }

    #[test]
    fn render_lists_best_and_titles() {
        let w = world();
        let ctx = Ctx::new(&w.ratings, &w.catalog);
        let o = build_overview(&maut(), &ctx, &OverviewConfig::default()).unwrap();
        let text = o.render_plain(&ctx);
        assert!(text.starts_with("Best match:"));
        for c in &o.categories {
            assert!(text.contains(&c.title));
        }
    }
}

//! Topic diversification (survey Introduction, after Ziegler et al.,
//! WWW'05 — citation \[39\]).
//!
//! The survey's opening argument is that accuracy alone under-serves
//! users; *diversity* is one of the satisfaction-adjacent qualities it
//! names. This module reranks a recommendation list greedily: each slot
//! picks the candidate maximizing
//! `(1 − θ) · relevance + θ · dissimilarity-to-already-picked`
//! (maximal-marginal-relevance style), with similarity supplied by any
//! pairwise function — content cosine, attribute overlap, or the
//! user-adapted explainable measure.

use exrec_algo::Scored;
use exrec_types::ItemId;

/// Reranks `candidates` (already sorted by relevance) into a list of at
/// most `n` items balancing relevance against intra-list similarity.
///
/// * `theta = 0` reproduces the input order;
/// * `theta = 1` ignores relevance beyond the seed item.
///
/// Relevance is normalized to the candidate list's score range so theta
/// is comparable across scales; `sim` must return values in `[-1, 1]`.
pub fn diversify<F>(candidates: &[Scored], n: usize, theta: f64, mut sim: F) -> Vec<Scored>
where
    F: FnMut(ItemId, ItemId) -> f64,
{
    if candidates.is_empty() || n == 0 {
        return Vec::new();
    }
    let theta = theta.clamp(0.0, 1.0);
    let (lo, hi) = candidates.iter().fold((f64::MAX, f64::MIN), |(lo, hi), s| {
        (lo.min(s.prediction.score), hi.max(s.prediction.score))
    });
    let span = (hi - lo).max(1e-9);
    let relevance = |s: &Scored| (s.prediction.score - lo) / span;

    let mut picked: Vec<Scored> = vec![candidates[0]];
    let mut remaining: Vec<&Scored> = candidates.iter().skip(1).collect();
    while picked.len() < n && !remaining.is_empty() {
        let mut best_idx = 0;
        let mut best_val = f64::MIN;
        for (idx, cand) in remaining.iter().enumerate() {
            let mean_sim =
                picked.iter().map(|p| sim(cand.item, p.item)).sum::<f64>() / picked.len() as f64;
            let value = (1.0 - theta) * relevance(cand)
                + theta * (1.0 - mean_sim) / 2.0
                + theta * 0.5 * (1.0 - mean_sim.max(0.0));
            if value > best_val {
                best_val = value;
                best_idx = idx;
            }
        }
        picked.push(*remaining.remove(best_idx));
    }
    picked
}

#[cfg(test)]
mod tests {
    use super::*;
    use exrec_algo::metrics::intra_list_diversity;
    use exrec_types::{Confidence, Prediction};

    /// Ten candidates in two tight topic clusters: items 0-4 (topic A,
    /// high scores) and 5-9 (topic B, lower scores).
    fn candidates() -> Vec<Scored> {
        (0..10u32)
            .map(|k| Scored {
                item: ItemId(k),
                prediction: Prediction::new(5.0 - k as f64 * 0.2, Confidence::new(1.0)),
            })
            .collect()
    }

    fn topic_sim(a: ItemId, b: ItemId) -> f64 {
        if (a.raw() < 5) == (b.raw() < 5) {
            0.9
        } else {
            0.05
        }
    }

    #[test]
    fn theta_zero_preserves_order() {
        let out = diversify(&candidates(), 5, 0.0, topic_sim);
        let ids: Vec<u32> = out.iter().map(|s| s.item.raw()).collect();
        assert_eq!(ids, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn diversification_raises_intra_list_diversity() {
        let plain = diversify(&candidates(), 5, 0.0, topic_sim);
        let mixed = diversify(&candidates(), 5, 0.7, topic_sim);
        let d = |xs: &[Scored]| {
            let ids: Vec<ItemId> = xs.iter().map(|s| s.item).collect();
            intra_list_diversity(&ids, topic_sim).unwrap()
        };
        assert!(
            d(&mixed) > d(&plain),
            "diversified {:.3} must beat plain {:.3}",
            d(&mixed),
            d(&plain)
        );
        // Both topics represented under diversification.
        assert!(mixed.iter().any(|s| s.item.raw() >= 5));
    }

    #[test]
    fn top_item_is_always_kept() {
        for theta in [0.0, 0.5, 1.0] {
            let out = diversify(&candidates(), 3, theta, topic_sim);
            assert_eq!(out[0].item, ItemId(0), "theta={theta}");
        }
    }

    #[test]
    fn no_duplicates_and_size_respected() {
        let out = diversify(&candidates(), 7, 0.5, topic_sim);
        assert_eq!(out.len(), 7);
        let mut ids: Vec<u32> = out.iter().map(|s| s.item.raw()).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), 7);
        assert!(diversify(&candidates(), 0, 0.5, topic_sim).is_empty());
        assert!(diversify(&[], 5, 0.5, topic_sim).is_empty());
    }

    #[test]
    fn relevance_still_matters_at_moderate_theta() {
        // With mild diversification the worst item should not jump the
        // queue ahead of everything.
        let out = diversify(&candidates(), 4, 0.3, topic_sim);
        assert_ne!(out[1].item, ItemId(9));
    }
}

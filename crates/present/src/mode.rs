//! The presentation-mode taxonomy of the survey's Tables 3 and 4.

use std::fmt;

/// How recommendations are laid out for the user (survey Section 4).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PresentationMode {
    /// A single best item (Section 4.1).
    TopItem,
    /// A ranked list of several items (Section 4.2).
    TopN,
    /// Items similar to something the user liked (Section 4.3).
    SimilarToTopItem,
    /// Predicted ratings shown for every browsable item (Section 4.4).
    PredictedRatings,
    /// Best match plus trade-off categories (Section 4.5).
    StructuredOverview,
}

impl PresentationMode {
    /// All modes, in the survey's section order.
    pub const ALL: [PresentationMode; 5] = [
        PresentationMode::TopItem,
        PresentationMode::TopN,
        PresentationMode::SimilarToTopItem,
        PresentationMode::PredictedRatings,
        PresentationMode::StructuredOverview,
    ];

    /// Name as used in the survey's tables.
    pub fn name(self) -> &'static str {
        match self {
            PresentationMode::TopItem => "Top item",
            PresentationMode::TopN => "Top-N",
            PresentationMode::SimilarToTopItem => "Similar to top item(s)",
            PresentationMode::PredictedRatings => "Predicted ratings",
            PresentationMode::StructuredOverview => "Structured overview",
        }
    }

    /// The survey subsection describing the mode.
    pub fn section(self) -> &'static str {
        match self {
            PresentationMode::TopItem => "4.1",
            PresentationMode::TopN => "4.2",
            PresentationMode::SimilarToTopItem => "4.3",
            PresentationMode::PredictedRatings => "4.4",
            PresentationMode::StructuredOverview => "4.5",
        }
    }
}

impl fmt::Display for PresentationMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_match_tables() {
        assert_eq!(PresentationMode::TopItem.name(), "Top item");
        assert_eq!(
            PresentationMode::SimilarToTopItem.name(),
            "Similar to top item(s)"
        );
        assert_eq!(PresentationMode::ALL.len(), 5);
    }

    #[test]
    fn sections_cover_4_1_to_4_5() {
        let sections: Vec<&str> = PresentationMode::ALL.iter().map(|m| m.section()).collect();
        assert_eq!(sections, vec!["4.1", "4.2", "4.3", "4.4", "4.5"]);
    }
}

//! # exrec-present
//!
//! Presentation layer (survey Section 4): *how* recommendations reach the
//! user, which the survey shows is itself part of the explanation.
//!
//! * [`mode`] — the presentation-mode taxonomy of Tables 3/4;
//! * [`top`] — top item and top-N lists with star rendering;
//! * [`similar`] — "You might also like…" presentation anchored on rated
//!   items (Section 4.3);
//! * [`predicted`] — browse-everything with predicted ratings
//!   (Section 4.4);
//! * [`critiques`] — unit and compound critique mining ("Less Memory and
//!   Lower Resolution and Cheaper", Section 5.2);
//! * [`structured`] — Pu & Chen's organizational structure: best match on
//!   top, trade-off categories below (Section 4.5);
//! * [`facets`] — faceted metadata browsing (Yee et al.);
//! * [`treemap`] — ordered squarified treemaps (Figure 2);
//! * [`diversify`] — Ziegler-style topic diversification (the diversity
//!   quality the survey's introduction names).

#![deny(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod critiques;
pub mod diversify;
pub mod facets;
pub mod mode;
pub mod predicted;
pub mod similar;
pub mod structured;
pub mod top;
pub mod treemap;

pub use critiques::{CompoundCritique, CritiqueDirection, UnitCritique};
pub use mode::PresentationMode;
pub use structured::StructuredOverview;
pub use treemap::{Treemap, TreemapNode};

//! Property tests for the presentation layer.

use exrec_data::synth::{cameras, holidays, WorldConfig};
use exrec_present::critiques::{attribute_ranges, mine_compound, pattern_of};
use exrec_present::facets::FacetBrowser;
use exrec_present::treemap::{layout, Layout, Rect, TreemapNode};
use exrec_types::ItemId;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn mined_critiques_always_match_their_supporters(seed in 0u64..500) {
        let world = cameras::generate(&WorldConfig {
            n_items: 25,
            n_users: 3,
            seed,
            ..WorldConfig::default()
        });
        let candidates: Vec<ItemId> = world.catalog.ids().collect();
        let reference = candidates[(seed % 25) as usize];
        let compounds =
            mine_compound(&world.catalog, reference, &candidates, 0.2, 3).unwrap();
        let ranges = attribute_ranges(&world.catalog);
        let reference_item = world.catalog.get(reference).unwrap();
        for c in &compounds {
            prop_assert!((0.0..=1.0).contains(&c.support));
            prop_assert!(c.parts.len() >= 2);
            let matches = candidates
                .iter()
                .filter(|&&i| i != reference)
                .filter(|&&i| c.matches(world.catalog.get(i).unwrap(), reference_item, &ranges))
                .count();
            let expected = (c.support * (candidates.len() - 1) as f64).round() as usize;
            prop_assert_eq!(matches, expected);
            // Titles always verbalize.
            prop_assert!(!c.title(world.catalog.schema()).is_empty());
        }
    }

    #[test]
    fn pattern_is_antisymmetric(seed in 0u64..500, a in 0u32..25, b in 0u32..25) {
        let world = cameras::generate(&WorldConfig {
            n_items: 25,
            n_users: 3,
            seed,
            ..WorldConfig::default()
        });
        let ranges = attribute_ranges(&world.catalog);
        let ia = world.catalog.get(ItemId(a)).unwrap();
        let ib = world.catalog.get(ItemId(b)).unwrap();
        let ab = pattern_of(ia, ib, &ranges);
        let ba = pattern_of(ib, ia, &ranges);
        // Every Less in a-vs-b appears as More in b-vs-a on the same attr.
        use exrec_present::CritiqueDirection::*;
        for uc in &ab {
            let flipped = exrec_present::UnitCritique::new(
                &uc.attribute,
                match uc.direction { Less => More, More => Less },
            );
            prop_assert!(ba.contains(&flipped), "no mirror for {uc:?}");
        }
        prop_assert_eq!(ab.len(), ba.len());
    }

    #[test]
    fn facet_counts_always_sum_to_visible(seed in 0u64..500) {
        let world = holidays::generate(&WorldConfig {
            n_items: 30,
            n_users: 3,
            seed,
            ..WorldConfig::default()
        });
        let mut browser = FacetBrowser::new(&world.catalog);
        // Apply an arbitrary style selection derived from the seed.
        let styles = world.catalog.category_values("style");
        let style = &styles[(seed % styles.len() as u64) as usize];
        browser.select("style", style);
        // For any *other* facet, counts sum to exactly the visible items.
        let visible = browser.items().len();
        let total: usize = browser.values("climate").iter().map(|v| v.count).sum();
        prop_assert_eq!(total, visible);
    }

    #[test]
    fn treemap_never_overlaps(weights in prop::collection::vec(0.1f64..20.0, 2..25)) {
        let nodes: Vec<TreemapNode> = weights
            .iter()
            .enumerate()
            .map(|(k, &w)| TreemapNode {
                label: format!("n{k}"),
                weight: w,
                group: k % 3,
                shade: 0.5,
            })
            .collect();
        let t = layout(nodes, Rect::UNIT, Layout::Squarified);
        for gx in 0..20 {
            for gy in 0..20 {
                let px = (gx as f64 + 0.5) / 20.0;
                let py = (gy as f64 + 0.5) / 20.0;
                let hits = t.cells.iter().filter(|(_, r)| r.contains(px, py)).count();
                prop_assert!(hits <= 1);
            }
        }
    }

    #[test]
    fn svg_is_well_formed_enough(weights in prop::collection::vec(0.5f64..10.0, 1..15)) {
        let nodes: Vec<TreemapNode> = weights
            .iter()
            .enumerate()
            .map(|(k, &w)| TreemapNode {
                label: format!("n{k}"),
                weight: w,
                group: k,
                shade: (k % 10) as f64 / 10.0,
            })
            .collect();
        let n = nodes.len();
        let t = layout(nodes, Rect::UNIT, Layout::Squarified);
        let svg = t.render_svg(300, 200, &[(10, 20, 30), (200, 100, 50)]);
        prop_assert_eq!(svg.matches("<rect").count(), n);
        prop_assert_eq!(svg.matches("</svg>").count(), 1);
    }
}

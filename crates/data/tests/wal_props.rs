//! Property tests for the write-ahead log.
//!
//! The unit tests in `wal.rs` pin individual failure modes; these
//! properties sweep the invariants the ingestion path relies on across
//! randomly shaped logs: frames round-trip, a torn or truncated tail
//! never yields garbage (replay stops cleanly at the first invalid
//! frame), replay is idempotent at the content level, and compaction at
//! any cut point reproduces the fully replayed matrix — ordering
//! included.

use exrec_data::wal::{decode_frames, encode_frame, replay_into, FsyncPolicy, Wal};
use exrec_data::{RatingsMatrix, WalOp, WalRecord};
use exrec_types::{ItemId, RatingScale, UserId};
use proptest::prelude::*;

const N_USERS: u32 = 24;
const N_ITEMS: u32 = 24;

/// Folds a raw tuple into an in-range, on-scale op.
fn op((u, i, v, rate): (u32, u32, f64, bool)) -> WalOp {
    let user = UserId::new(u % N_USERS);
    let item = ItemId::new(i % N_ITEMS);
    if rate {
        WalOp::Rate {
            user,
            item,
            value: RatingScale::HALF_STAR.clamp(v),
        }
    } else {
        WalOp::Unrate { user, item }
    }
}

/// Builds records from grouped raw ops: singleton groups become plain
/// `Rate`/`Unrate` records, larger groups become `Batch` records.
fn records(groups: &[Vec<(u32, u32, f64, bool)>]) -> Vec<WalRecord> {
    groups
        .iter()
        .map(|group| {
            let ops: Vec<WalOp> = group.iter().copied().map(op).collect();
            match ops.as_slice() {
                [WalOp::Rate { user, item, value }] => WalRecord::Rate {
                    user: *user,
                    item: *item,
                    value: *value,
                },
                [WalOp::Unrate { user, item }] => WalRecord::Unrate {
                    user: *user,
                    item: *item,
                },
                _ => WalRecord::Batch(ops),
            }
        })
        .collect()
}

fn fresh_matrix() -> RatingsMatrix {
    RatingsMatrix::new(N_USERS as usize, N_ITEMS as usize, RatingScale::HALF_STAR)
}

fn groups_strategy() -> impl Strategy<Value = Vec<Vec<(u32, u32, f64, bool)>>> {
    prop::collection::vec(
        prop::collection::vec(
            (any::<u32>(), any::<u32>(), -2.0f64..8.0, any::<bool>()),
            1..6,
        ),
        0..40,
    )
}

fn temp_wal(tag: &str, case: u64) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("exrec-walprop-{}-{tag}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(format!("{case}.wal"))
}

proptest! {
    #[test]
    fn frames_round_trip(groups in groups_strategy()) {
        let records = records(&groups);
        let mut stream = Vec::new();
        for record in &records {
            stream.extend_from_slice(&encode_frame(record));
        }
        let (decoded, consumed) = decode_frames(&stream);
        prop_assert_eq!(consumed, stream.len());
        prop_assert_eq!(decoded, records);
    }

    #[test]
    fn truncation_yields_a_clean_prefix(
        groups in groups_strategy(),
        frac in 0.0f64..1.0,
    ) {
        let records = records(&groups);
        let mut stream = Vec::new();
        let mut ends = Vec::new();
        for record in &records {
            stream.extend_from_slice(&encode_frame(record));
            ends.push(stream.len());
        }
        let cut = ((stream.len() as f64) * frac) as usize;
        let (decoded, consumed) = decode_frames(&stream[..cut]);
        // Replay stops exactly at the last frame that fully fits.
        let intact = ends.iter().filter(|&&e| e <= cut).count();
        prop_assert_eq!(decoded.len(), intact);
        prop_assert_eq!(&decoded[..], &records[..intact]);
        prop_assert_eq!(consumed, if intact == 0 { 0 } else { ends[intact - 1] });
    }

    #[test]
    fn corruption_never_yields_garbage(
        groups in groups_strategy(),
        byte in any::<usize>(),
        flip in 1u8..=255,
    ) {
        let records = records(&groups);
        let mut stream = Vec::new();
        for record in &records {
            stream.extend_from_slice(&encode_frame(record));
        }
        if !stream.is_empty() {
            let at = byte % stream.len();
            stream[at] ^= flip;
            let (decoded, consumed) = decode_frames(&stream);
            // Whatever survives is an exact prefix of the original log —
            // a flipped bit can only shorten the replay, never alter it.
            prop_assert!(decoded.len() <= records.len());
            prop_assert_eq!(&decoded[..], &records[..decoded.len()]);
            prop_assert!(consumed <= stream.len());
        }
    }

    #[test]
    fn replay_is_idempotent(groups in groups_strategy()) {
        let records = records(&groups);
        let mut once = fresh_matrix();
        replay_into(&mut once, &records).unwrap();
        let mut twice = fresh_matrix();
        replay_into(&mut twice, &records).unwrap();
        replay_into(&mut twice, &records).unwrap();
        // Content-equal (revision is excluded from equality by design).
        prop_assert_eq!(once, twice);
    }

    #[test]
    fn compaction_at_any_cut_reproduces_the_full_replay(
        groups in groups_strategy(),
        cut in any::<usize>(),
        case in any::<u64>(),
    ) {
        let records = records(&groups);
        let k = if records.is_empty() { 0 } else { cut % (records.len() + 1) };

        // Ground truth: every record replayed in order onto a fresh matrix.
        let mut full = fresh_matrix();
        replay_into(&mut full, &records).unwrap();

        // Journal run: apply+append all records, compacting after the
        // first k, so the snapshot holds records[..k] and the log holds
        // records[k..].
        let path = temp_wal("compact", case);
        let _ = std::fs::remove_file(&path);
        let _ = std::fs::remove_file(exrec_data::wal::snapshot_path(&path));
        {
            let (mut wal, replayed) = Wal::open(&path, FsyncPolicy::Never).unwrap();
            prop_assert!(replayed.is_empty());
            let mut live = fresh_matrix();
            for (n, record) in records.iter().enumerate() {
                record.apply(&mut live).unwrap();
                wal.append(record).unwrap();
                if n + 1 == k {
                    wal.compact(&live).unwrap();
                }
            }
            if k == 0 && records.is_empty() {
                wal.compact(&live).unwrap();
            }
        }

        // Warm restart: snapshot base + WAL tail == full replay,
        // ordering and all.
        let mut restored = match exrec_data::wal::load_snapshot(&path).unwrap() {
            Some(base) => base,
            None => fresh_matrix(),
        };
        let (_, tail) = Wal::open(&path, FsyncPolicy::Never).unwrap();
        prop_assert_eq!(&tail[..], &records[k..]);
        replay_into(&mut restored, &tail).unwrap();
        prop_assert_eq!(restored, full);

        let _ = std::fs::remove_file(&path);
        let _ = std::fs::remove_file(exrec_data::wal::snapshot_path(&path));
    }
}

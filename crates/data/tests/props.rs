//! Property tests for the data substrate, including decode fuzzing.

use exrec_data::{snapshot, split, RatingsMatrix};
use exrec_types::{ItemId, RatingScale, UserId};
use proptest::prelude::*;

fn arb_matrix() -> impl Strategy<Value = RatingsMatrix> {
    prop::collection::vec((0u32..7, 0u32..11, 1u32..=5), 0..80).prop_map(|ops| {
        let mut m = RatingsMatrix::new(7, 11, RatingScale::FIVE_STAR);
        for (u, i, v) in ops {
            m.rate(UserId(u), ItemId(i), v as f64).unwrap();
        }
        m
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn decode_never_panics_on_garbage(bytes in prop::collection::vec(any::<u8>(), 0..200)) {
        // Failure injection: arbitrary bytes must produce Err, not panic.
        let _ = snapshot::decode(&bytes);
    }

    #[test]
    fn decode_never_panics_on_truncated_valid(m in arb_matrix(), cut_frac in 0.0f64..1.0) {
        let bytes = snapshot::encode(&m);
        let cut = ((bytes.len() as f64) * cut_frac) as usize;
        let result = snapshot::decode(&bytes[..cut.min(bytes.len())]);
        if cut >= bytes.len() {
            prop_assert!(result.is_ok());
        }
    }

    #[test]
    fn decode_never_panics_on_bitflips(m in arb_matrix(), flips in prop::collection::vec((any::<prop::sample::Index>(), any::<u8>()), 1..8)) {
        let mut bytes = snapshot::encode(&m).to_vec();
        if bytes.is_empty() {
            return Ok(());
        }
        for (idx, mask) in flips {
            let k = idx.index(bytes.len());
            bytes[k] ^= mask;
        }
        let _ = snapshot::decode(&bytes); // must not panic
    }

    #[test]
    fn holdout_partitions_exactly(m in arb_matrix(), frac in 0.0f64..1.0, seed in any::<u64>()) {
        let s = split::holdout(&m, frac, seed);
        prop_assert_eq!(s.train.n_ratings() + s.test.len(), m.n_ratings());
        for &(u, i, v) in &s.test {
            prop_assert_eq!(m.rating(u, i), Some(v));
            prop_assert_eq!(s.train.rating(u, i), None);
        }
        // Per-user: never lose every training rating.
        for u in m.users() {
            if !m.user_ratings(u).is_empty() {
                prop_assert!(!s.train.user_ratings(u).is_empty());
            }
        }
    }

    #[test]
    fn k_folds_are_a_partition(m in arb_matrix(), k in 2usize..6, seed in any::<u64>()) {
        let folds = split::k_folds(&m, k, seed);
        prop_assert_eq!(folds.len(), k);
        let total: usize = folds.iter().map(|f| f.test.len()).sum();
        prop_assert_eq!(total, m.n_ratings());
        // No triple in two folds.
        let mut seen = std::collections::HashSet::new();
        for f in &folds {
            for &(u, i, _) in &f.test {
                prop_assert!(seen.insert((u, i)), "({u},{i}) in two folds");
            }
        }
    }

    #[test]
    fn co_rated_is_symmetric(m in arb_matrix(), a in 0u32..7, b in 0u32..7) {
        let ab = m.co_rated(UserId(a), UserId(b));
        let ba = m.co_rated(UserId(b), UserId(a));
        prop_assert_eq!(ab.len(), ba.len());
        for (x, y) in ab.iter().zip(&ba) {
            prop_assert_eq!(x.0, y.0);
            prop_assert_eq!(x.1, y.2);
            prop_assert_eq!(x.2, y.1);
        }
    }

    #[test]
    fn global_mean_within_bounds(m in arb_matrix()) {
        let g = m.global_mean();
        prop_assert!((1.0..=5.0).contains(&g), "global mean {g}");
    }

    #[test]
    fn tokenize_output_is_normalized(text in "\\PC{0,120}") {
        for tok in exrec_data::text::tokenize(&text) {
            prop_assert!(tok.len() > 1);
            prop_assert_eq!(tok.clone(), tok.to_lowercase());
            prop_assert!(!exrec_data::text::is_stopword(&tok));
        }
    }
}

//! Property tests for the binary snapshot codec.
//!
//! The unit tests in `snapshot.rs` pin individual failure modes; these
//! properties sweep the happy path across randomly shaped matrices and
//! check the two invariants callers rely on: `decode(encode(m)) == m`
//! for any valid matrix, and the revision counter never leaks into the
//! wire format.

use exrec_data::snapshot::{decode, encode};
use exrec_data::RatingsMatrix;
use exrec_types::{ItemId, RatingScale, UserId};
use proptest::prelude::*;

/// Builds a matrix of the given shape, rating each `(user, item, value)`
/// cell after folding ids into range and clamping values on-scale.
fn build(n_users: usize, n_items: usize, cells: &[(u32, u32, f64)]) -> RatingsMatrix {
    let scale = RatingScale::HALF_STAR;
    let mut m = RatingsMatrix::new(n_users, n_items, scale);
    for (u, i, v) in cells {
        let user = UserId::new(u % n_users as u32);
        let item = ItemId::new(i % n_items as u32);
        let value = RatingScale::HALF_STAR.clamp(*v);
        m.rate(user, item, value)
            .expect("clamped value is on-scale");
    }
    m
}

proptest! {
    #[test]
    fn encode_decode_round_trips(
        n_users in 1usize..48,
        n_items in 1usize..48,
        cells in prop::collection::vec((any::<u32>(), any::<u32>(), -2.0f64..8.0), 0..200),
    ) {
        let m = build(n_users, n_items, &cells);
        let bytes = encode(&m);
        let back = decode(&bytes).expect("snapshot of a valid matrix decodes");
        prop_assert_eq!(&back, &m);
        // The codec is deterministic: re-encoding the decoded matrix
        // reproduces the exact byte stream.
        prop_assert_eq!(encode(&back), bytes);
    }

    #[test]
    fn revision_counter_is_excluded_from_the_wire_format(
        n_users in 1usize..32,
        n_items in 1usize..32,
        cells in prop::collection::vec((any::<u32>(), any::<u32>(), -2.0f64..8.0), 1..100),
        extra_bumps in 1usize..5,
    ) {
        let a = build(n_users, n_items, &cells);

        // Same content, different history: re-rating an existing cell
        // with its current value advances the revision but leaves the
        // ratings (and their storage order) untouched.
        let mut b = build(n_users, n_items, &cells);
        let (u, i, v) = {
            let (u, i, _) = cells[0];
            let user = UserId::new(u % n_users as u32);
            let item = ItemId::new(i % n_items as u32);
            let value = b.rating(user, item).expect("cell 0 was rated");
            (user, item, value)
        };
        for _ in 0..extra_bumps {
            b.rate(u, i, v).unwrap();
        }
        prop_assert!(b.revision() > a.revision(), "re-rating must bump the revision");

        // Content-equal matrices encode identically regardless of
        // revision, so decoding starts a fresh lineage: both decoded
        // matrices land on the same revision (decode replays one `rate`
        // per stored triple), not on their sources' diverged counters.
        prop_assert_eq!(&a, &b);
        prop_assert_eq!(encode(&a), encode(&b));
        let back_a = decode(&encode(&a)).unwrap();
        let back_b = decode(&encode(&b)).unwrap();
        prop_assert_eq!(back_a.revision(), back_b.revision());
        prop_assert!(back_b.revision() < b.revision());
    }

    #[test]
    fn truncated_snapshots_error_instead_of_panicking(
        cells in prop::collection::vec((any::<u32>(), any::<u32>(), -2.0f64..8.0), 0..40),
        frac in 0.0f64..1.0,
    ) {
        let m = build(8, 8, &cells);
        let bytes = encode(&m);
        let cut = ((bytes.len() as f64) * frac) as usize;
        if cut < bytes.len() {
            prop_assert!(decode(&bytes[..cut]).is_err(), "cut at {} of {}", cut, bytes.len());
        }
    }
}

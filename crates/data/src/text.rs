//! Minimal text processing for content-based models.
//!
//! LIBRA-style explanations (survey Figure 3) and keyword explanations
//! need bag-of-words features over item descriptions. This module provides
//! a deterministic tokenizer, an English stopword filter, and a
//! [`Vocabulary`] mapping tokens to dense feature indexes.

use std::collections::HashMap;

/// A small English stopword list, sufficient for synthetic descriptions.
const STOPWORDS: &[&str] = &[
    "a", "an", "and", "are", "as", "at", "be", "but", "by", "for", "from", "has", "have", "he",
    "her", "his", "in", "is", "it", "its", "of", "on", "or", "she", "that", "the", "their", "they",
    "this", "to", "was", "were", "which", "will", "with", "you", "your",
];

/// Whether `token` is an English stopword (expects lowercase input).
pub fn is_stopword(token: &str) -> bool {
    STOPWORDS.binary_search(&token).is_ok()
}

/// Splits text into lowercase alphanumeric tokens, dropping stopwords and
/// single-character tokens.
pub fn tokenize(text: &str) -> Vec<String> {
    text.split(|c: char| !c.is_alphanumeric())
        .filter(|t| t.len() > 1)
        .map(str::to_lowercase)
        .filter(|t| !is_stopword(t))
        .collect()
}

/// A token → dense-index dictionary.
#[derive(Debug, Clone, Default)]
pub struct Vocabulary {
    index: HashMap<String, usize>,
    tokens: Vec<String>,
}

impl Vocabulary {
    /// An empty vocabulary.
    pub fn new() -> Self {
        Self::default()
    }

    /// Interns a token, returning its stable index.
    pub fn intern(&mut self, token: &str) -> usize {
        if let Some(&i) = self.index.get(token) {
            return i;
        }
        let i = self.tokens.len();
        self.tokens.push(token.to_owned());
        self.index.insert(token.to_owned(), i);
        i
    }

    /// Looks a token up without interning.
    pub fn get(&self, token: &str) -> Option<usize> {
        self.index.get(token).copied()
    }

    /// The token at `index`.
    pub fn token(&self, index: usize) -> Option<&str> {
        self.tokens.get(index).map(String::as_str)
    }

    /// Number of distinct tokens.
    pub fn len(&self) -> usize {
        self.tokens.len()
    }

    /// Whether the vocabulary is empty.
    pub fn is_empty(&self) -> bool {
        self.tokens.is_empty()
    }

    /// Converts raw text into a sparse `(token_index, count)` bag,
    /// interning unseen tokens. Indices are sorted.
    pub fn bag(&mut self, text: &str) -> Vec<(usize, u32)> {
        let mut counts: HashMap<usize, u32> = HashMap::new();
        for tok in tokenize(text) {
            let i = self.intern(&tok);
            *counts.entry(i).or_insert(0) += 1;
        }
        let mut bag: Vec<(usize, u32)> = counts.into_iter().collect();
        bag.sort_unstable_by_key(|&(i, _)| i);
        bag
    }

    /// Converts raw text into a bag using only already-interned tokens.
    pub fn bag_frozen(&self, text: &str) -> Vec<(usize, u32)> {
        let mut counts: HashMap<usize, u32> = HashMap::new();
        for tok in tokenize(text) {
            if let Some(i) = self.get(&tok) {
                *counts.entry(i).or_insert(0) += 1;
            }
        }
        let mut bag: Vec<(usize, u32)> = counts.into_iter().collect();
        bag.sort_unstable_by_key(|&(i, _)| i);
        bag
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stopword_list_is_sorted_for_binary_search() {
        let mut sorted = STOPWORDS.to_vec();
        sorted.sort_unstable();
        assert_eq!(sorted, STOPWORDS, "STOPWORDS must stay sorted");
    }

    #[test]
    fn tokenize_basic() {
        let toks = tokenize("The Quick brown-fox, jumps! Over 2 dogs");
        assert_eq!(toks, vec!["quick", "brown", "fox", "jumps", "over", "dogs"]);
    }

    #[test]
    fn tokenize_drops_stopwords_and_short() {
        assert!(tokenize("a an the of I x").is_empty());
    }

    #[test]
    fn intern_is_stable() {
        let mut v = Vocabulary::new();
        let a = v.intern("spice");
        let b = v.intern("desert");
        assert_eq!(v.intern("spice"), a);
        assert_ne!(a, b);
        assert_eq!(v.token(a), Some("spice"));
        assert_eq!(v.len(), 2);
    }

    #[test]
    fn bag_counts_and_sorts() {
        let mut v = Vocabulary::new();
        let bag = v.bag("spice spice desert");
        assert_eq!(bag.len(), 2);
        let spice = v.get("spice").unwrap();
        assert!(bag.contains(&(spice, 2)));
        assert!(bag.windows(2).all(|w| w[0].0 < w[1].0));
    }

    #[test]
    fn frozen_bag_ignores_unknown() {
        let mut v = Vocabulary::new();
        v.intern("spice");
        let bag = v.bag_frozen("spice worm worm");
        assert_eq!(bag, vec![(0, 1)]);
        assert_eq!(v.len(), 1, "frozen bag must not intern");
    }
}

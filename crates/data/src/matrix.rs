//! Sparse user–item ratings matrix.
//!
//! Storage is row-major (per-user) with a mirrored per-item inverted
//! index, both kept sorted by id, so that user-based *and* item-based
//! collaborative filtering get cache-friendly, binary-searchable access.
//! The matrix is incrementally updatable: conversational interaction
//! (survey Section 5.3) re-rates items mid-session and expects models to
//! observe the change.

use exrec_types::{Error, ItemId, Rating, RatingScale, Result, UserId};

/// A sparse ratings matrix over dense user and item id spaces.
///
/// ```
/// use exrec_data::RatingsMatrix;
/// use exrec_types::{ItemId, RatingScale, UserId};
///
/// let mut m = RatingsMatrix::new(2, 3, RatingScale::FIVE_STAR);
/// m.rate(UserId(0), ItemId(1), 4.0)?;
/// assert_eq!(m.rating(UserId(0), ItemId(1)), Some(4.0));
/// assert_eq!(m.user_mean(UserId(0)), Some(4.0));
/// m.unrate(UserId(0), ItemId(1))?;
/// assert_eq!(m.n_ratings(), 0);
/// # Ok::<(), exrec_types::Error>(())
/// ```
#[derive(Debug, Clone)]
pub struct RatingsMatrix {
    scale: RatingScale,
    /// `by_user[u]` = sorted `(item, value)` pairs.
    by_user: Vec<Vec<(ItemId, f64)>>,
    /// `by_item[i]` = sorted `(user, value)` pairs.
    by_item: Vec<Vec<(UserId, f64)>>,
    n_ratings: usize,
    sum: f64,
    /// Bumped on every mutation; lets derived state (similarity caches,
    /// fitted models) detect that the matrix has changed underneath them.
    revision: u64,
}

/// Equality compares *content* (scale and ratings), not the revision
/// counter: a decoded snapshot equals the matrix it encoded even though
/// their mutation histories differ.
impl PartialEq for RatingsMatrix {
    fn eq(&self, other: &Self) -> bool {
        self.scale == other.scale
            && self.by_user == other.by_user
            && self.by_item == other.by_item
            && self.n_ratings == other.n_ratings
            && self.sum == other.sum
    }
}

impl RatingsMatrix {
    /// Creates an empty matrix with capacity for `n_users` users and
    /// `n_items` items, rated on `scale`.
    pub fn new(n_users: usize, n_items: usize, scale: RatingScale) -> Self {
        Self {
            scale,
            by_user: vec![Vec::new(); n_users],
            by_item: vec![Vec::new(); n_items],
            n_ratings: 0,
            sum: 0.0,
            revision: 0,
        }
    }

    /// Monotone mutation counter: incremented by every call that changes
    /// stored ratings ([`RatingsMatrix::rate`] / [`RatingsMatrix::unrate`]).
    ///
    /// Consumers that derive state from the matrix — the sharded
    /// similarity cache in `exrec-algo`, fitted item-item tables — record
    /// the revision they computed against and treat a mismatch as "the
    /// world moved, recompute". Cloning preserves the current value;
    /// revisions are comparable only within one matrix's lineage.
    #[inline]
    pub fn revision(&self) -> u64 {
        self.revision
    }

    /// The rating scale.
    #[inline]
    pub fn scale(&self) -> &RatingScale {
        &self.scale
    }

    /// Number of users in the id space (rated or not).
    #[inline]
    pub fn n_users(&self) -> usize {
        self.by_user.len()
    }

    /// Number of items in the id space (rated or not).
    #[inline]
    pub fn n_items(&self) -> usize {
        self.by_item.len()
    }

    /// Total number of stored ratings.
    #[inline]
    pub fn n_ratings(&self) -> usize {
        self.n_ratings
    }

    /// Fraction of the user×item grid that is rated.
    pub fn density(&self) -> f64 {
        let cells = self.n_users() * self.n_items();
        if cells == 0 {
            0.0
        } else {
            self.n_ratings as f64 / cells as f64
        }
    }

    /// Grows the user space to at least `n` users.
    pub fn ensure_users(&mut self, n: usize) {
        if n > self.by_user.len() {
            self.by_user.resize_with(n, Vec::new);
        }
    }

    /// Grows the item space to at least `n` items.
    pub fn ensure_items(&mut self, n: usize) {
        if n > self.by_item.len() {
            self.by_item.resize_with(n, Vec::new);
        }
    }

    fn check_user(&self, user: UserId) -> Result<()> {
        if user.index() < self.by_user.len() {
            Ok(())
        } else {
            Err(Error::UnknownUser { user })
        }
    }

    fn check_item(&self, item: ItemId) -> Result<()> {
        if item.index() < self.by_item.len() {
            Ok(())
        } else {
            Err(Error::UnknownItem { item })
        }
    }

    /// Inserts or replaces a rating. Returns the previous value if the
    /// pair was already rated.
    ///
    /// # Errors
    ///
    /// * [`Error::UnknownUser`] / [`Error::UnknownItem`] when ids are out
    ///   of range;
    /// * [`Error::InvalidRating`] when `value` is off-scale.
    pub fn rate(&mut self, user: UserId, item: ItemId, value: f64) -> Result<Option<f64>> {
        self.check_user(user)?;
        self.check_item(item)?;
        let rating = Rating::new(value, &self.scale)?;
        let v = rating.value();

        let row = &mut self.by_user[user.index()];
        let prev = match row.binary_search_by_key(&item, |&(i, _)| i) {
            Ok(pos) => {
                let old = row[pos].1;
                row[pos].1 = v;
                Some(old)
            }
            Err(pos) => {
                row.insert(pos, (item, v));
                None
            }
        };

        let col = &mut self.by_item[item.index()];
        match col.binary_search_by_key(&user, |&(u, _)| u) {
            Ok(pos) => col[pos].1 = v,
            Err(pos) => col.insert(pos, (user, v)),
        }

        match prev {
            Some(old) => {
                self.sum += v - old;
            }
            None => {
                self.n_ratings += 1;
                self.sum += v;
            }
        }
        self.revision += 1;
        Ok(prev)
    }

    /// Removes a rating, returning its value if present.
    ///
    /// # Errors
    ///
    /// Returns [`Error::UnknownUser`] / [`Error::UnknownItem`] for ids out
    /// of range.
    pub fn unrate(&mut self, user: UserId, item: ItemId) -> Result<Option<f64>> {
        self.check_user(user)?;
        self.check_item(item)?;
        let row = &mut self.by_user[user.index()];
        let removed = match row.binary_search_by_key(&item, |&(i, _)| i) {
            Ok(pos) => Some(row.remove(pos).1),
            Err(_) => None,
        };
        if let Some(v) = removed {
            let col = &mut self.by_item[item.index()];
            if let Ok(pos) = col.binary_search_by_key(&user, |&(u, _)| u) {
                col.remove(pos);
            }
            self.n_ratings -= 1;
            self.sum -= v;
            self.revision += 1;
        }
        Ok(removed)
    }

    /// The rating a user gave an item, if any. Out-of-range ids yield
    /// `None` (lookup is a query, not a mutation — it should not fail).
    pub fn rating(&self, user: UserId, item: ItemId) -> Option<f64> {
        let row = self.by_user.get(user.index())?;
        row.binary_search_by_key(&item, |&(i, _)| i)
            .ok()
            .map(|pos| row[pos].1)
    }

    /// All ratings by `user`, sorted by item id. Empty for out-of-range
    /// users.
    pub fn user_ratings(&self, user: UserId) -> &[(ItemId, f64)] {
        self.by_user
            .get(user.index())
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// All ratings of `item`, sorted by user id. Empty for out-of-range
    /// items.
    pub fn item_ratings(&self, item: ItemId) -> &[(UserId, f64)] {
        self.by_item
            .get(item.index())
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// Mean of a user's ratings, or `None` if they have rated nothing.
    pub fn user_mean(&self, user: UserId) -> Option<f64> {
        let row = self.user_ratings(user);
        if row.is_empty() {
            None
        } else {
            Some(row.iter().map(|&(_, v)| v).sum::<f64>() / row.len() as f64)
        }
    }

    /// Mean of an item's ratings, or `None` if it has none.
    pub fn item_mean(&self, item: ItemId) -> Option<f64> {
        let col = self.item_ratings(item);
        if col.is_empty() {
            None
        } else {
            Some(col.iter().map(|&(_, v)| v).sum::<f64>() / col.len() as f64)
        }
    }

    /// Global mean rating, or the scale midpoint when empty.
    pub fn global_mean(&self) -> f64 {
        if self.n_ratings == 0 {
            self.scale.midpoint()
        } else {
            self.sum / self.n_ratings as f64
        }
    }

    /// Iterator over all user ids in the id space.
    pub fn users(&self) -> impl Iterator<Item = UserId> + '_ {
        (0..self.by_user.len() as u32).map(UserId::new)
    }

    /// Iterator over all item ids in the id space.
    pub fn items(&self) -> impl Iterator<Item = ItemId> + '_ {
        (0..self.by_item.len() as u32).map(ItemId::new)
    }

    /// Iterator over every `(user, item, value)` triple, user-major.
    pub fn triples(&self) -> impl Iterator<Item = (UserId, ItemId, f64)> + '_ {
        self.by_user
            .iter()
            .enumerate()
            .flat_map(|(u, row)| row.iter().map(move |&(i, v)| (UserId::new(u as u32), i, v)))
    }

    /// Items rated by both users, with both values:
    /// `(item, value_a, value_b)`. Linear merge over the two sorted rows.
    pub fn co_rated(&self, a: UserId, b: UserId) -> Vec<(ItemId, f64, f64)> {
        let ra = self.user_ratings(a);
        let rb = self.user_ratings(b);
        let mut out = Vec::with_capacity(ra.len().min(rb.len()));
        let (mut x, mut y) = (0, 0);
        while x < ra.len() && y < rb.len() {
            match ra[x].0.cmp(&rb[y].0) {
                std::cmp::Ordering::Less => x += 1,
                std::cmp::Ordering::Greater => y += 1,
                std::cmp::Ordering::Equal => {
                    out.push((ra[x].0, ra[x].1, rb[y].1));
                    x += 1;
                    y += 1;
                }
            }
        }
        out
    }

    /// Users who rated both items, with both values:
    /// `(user, value_a, value_b)`.
    pub fn co_raters(&self, a: ItemId, b: ItemId) -> Vec<(UserId, f64, f64)> {
        let ca = self.item_ratings(a);
        let cb = self.item_ratings(b);
        let mut out = Vec::with_capacity(ca.len().min(cb.len()));
        let (mut x, mut y) = (0, 0);
        while x < ca.len() && y < cb.len() {
            match ca[x].0.cmp(&cb[y].0) {
                std::cmp::Ordering::Less => x += 1,
                std::cmp::Ordering::Greater => y += 1,
                std::cmp::Ordering::Equal => {
                    out.push((ca[x].0, ca[x].1, cb[y].1));
                    x += 1;
                    y += 1;
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> RatingsMatrix {
        let mut m = RatingsMatrix::new(3, 4, RatingScale::FIVE_STAR);
        m.rate(UserId(0), ItemId(0), 5.0).unwrap();
        m.rate(UserId(0), ItemId(1), 3.0).unwrap();
        m.rate(UserId(1), ItemId(1), 4.0).unwrap();
        m.rate(UserId(1), ItemId(2), 2.0).unwrap();
        m.rate(UserId(2), ItemId(0), 1.0).unwrap();
        m
    }

    #[test]
    fn insert_and_lookup() {
        let m = tiny();
        assert_eq!(m.rating(UserId(0), ItemId(0)), Some(5.0));
        assert_eq!(m.rating(UserId(0), ItemId(2)), None);
        assert_eq!(m.rating(UserId(9), ItemId(0)), None);
        assert_eq!(m.n_ratings(), 5);
    }

    #[test]
    fn replace_updates_both_indexes_and_sum() {
        let mut m = tiny();
        let prev = m.rate(UserId(0), ItemId(0), 2.0).unwrap();
        assert_eq!(prev, Some(5.0));
        assert_eq!(m.rating(UserId(0), ItemId(0)), Some(2.0));
        assert_eq!(
            m.item_ratings(ItemId(0)),
            &[(UserId(0), 2.0), (UserId(2), 1.0)]
        );
        assert_eq!(m.n_ratings(), 5);
        let expected_mean = (2.0 + 3.0 + 4.0 + 2.0 + 1.0) / 5.0;
        assert!((m.global_mean() - expected_mean).abs() < 1e-12);
    }

    #[test]
    fn unrate_removes_everywhere() {
        let mut m = tiny();
        assert_eq!(m.unrate(UserId(0), ItemId(1)).unwrap(), Some(3.0));
        assert_eq!(m.unrate(UserId(0), ItemId(1)).unwrap(), None);
        assert_eq!(m.rating(UserId(0), ItemId(1)), None);
        assert!(m
            .item_ratings(ItemId(1))
            .iter()
            .all(|&(u, _)| u != UserId(0)));
        assert_eq!(m.n_ratings(), 4);
    }

    #[test]
    fn rejects_bad_inputs() {
        let mut m = tiny();
        assert!(matches!(
            m.rate(UserId(5), ItemId(0), 3.0),
            Err(Error::UnknownUser { .. })
        ));
        assert!(matches!(
            m.rate(UserId(0), ItemId(9), 3.0),
            Err(Error::UnknownItem { .. })
        ));
        assert!(matches!(
            m.rate(UserId(0), ItemId(0), 3.5),
            Err(Error::InvalidRating { .. })
        ));
    }

    #[test]
    fn means() {
        let m = tiny();
        assert_eq!(m.user_mean(UserId(0)), Some(4.0));
        assert_eq!(m.item_mean(ItemId(1)), Some(3.5));
        assert_eq!(m.user_mean(UserId(9)), None);
        assert!((m.global_mean() - 3.0).abs() < 1e-12);
        let empty = RatingsMatrix::new(2, 2, RatingScale::FIVE_STAR);
        assert_eq!(empty.global_mean(), 3.0, "midpoint when empty");
    }

    #[test]
    fn co_rated_merge() {
        let m = tiny();
        assert_eq!(
            m.co_rated(UserId(0), UserId(1)),
            vec![(ItemId(1), 3.0, 4.0)]
        );
        assert!(m.co_rated(UserId(0), UserId(2)).len() == 1);
        assert_eq!(
            m.co_raters(ItemId(0), ItemId(1)),
            vec![(UserId(0), 5.0, 3.0)]
        );
    }

    #[test]
    fn rows_stay_sorted() {
        let mut m = RatingsMatrix::new(1, 10, RatingScale::FIVE_STAR);
        for i in [7u32, 2, 9, 0, 4] {
            m.rate(UserId(0), ItemId(i), 3.0).unwrap();
        }
        let ids: Vec<u32> = m
            .user_ratings(UserId(0))
            .iter()
            .map(|&(i, _)| i.raw())
            .collect();
        assert_eq!(ids, vec![0, 2, 4, 7, 9]);
    }

    #[test]
    fn density_and_growth() {
        let mut m = tiny();
        assert!((m.density() - 5.0 / 12.0).abs() < 1e-12);
        m.ensure_users(10);
        m.ensure_items(10);
        assert_eq!(m.n_users(), 10);
        assert_eq!(m.n_items(), 10);
        assert!(m.rate(UserId(9), ItemId(9), 1.0).is_ok());
    }

    #[test]
    fn revision_tracks_mutations_but_not_equality() {
        let mut m = RatingsMatrix::new(2, 2, RatingScale::FIVE_STAR);
        assert_eq!(m.revision(), 0);
        m.rate(UserId(0), ItemId(0), 4.0).unwrap();
        let r1 = m.revision();
        assert!(r1 > 0);
        // Re-rating and unrating both advance the revision.
        m.rate(UserId(0), ItemId(0), 2.0).unwrap();
        assert!(m.revision() > r1);
        let r2 = m.revision();
        m.unrate(UserId(0), ItemId(0)).unwrap();
        assert!(m.revision() > r2);
        // Unrating an absent pair and failed mutations change nothing.
        let r3 = m.revision();
        m.unrate(UserId(0), ItemId(1)).unwrap();
        assert!(m.rate(UserId(0), ItemId(0), 3.5).is_err());
        assert_eq!(m.revision(), r3);
        // Equality is content-based: different histories, same ratings.
        let mut a = RatingsMatrix::new(1, 1, RatingScale::FIVE_STAR);
        a.rate(UserId(0), ItemId(0), 5.0).unwrap();
        let mut b = RatingsMatrix::new(1, 1, RatingScale::FIVE_STAR);
        b.rate(UserId(0), ItemId(0), 3.0).unwrap();
        b.rate(UserId(0), ItemId(0), 5.0).unwrap();
        assert_ne!(a.revision(), b.revision());
        assert_eq!(a, b);
    }

    #[test]
    fn triples_cover_everything() {
        let m = tiny();
        let triples: Vec<_> = m.triples().collect();
        assert_eq!(triples.len(), 5);
        assert!(triples.contains(&(UserId(1), ItemId(2), 2.0)));
    }
}

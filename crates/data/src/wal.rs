//! Write-ahead log for live rating writes.
//!
//! Serving worlds were frozen at startup until the ingestion path
//! arrived; the WAL is what makes mutation durable. Every accepted
//! write is appended here *before* it is applied to the in-memory
//! [`RatingsMatrix`], so a crash loses at most the writes the fsync
//! policy allows, and a restart replays the tail on top of the last
//! snapshot to recover the exact pre-crash world.
//!
//! # On-disk format
//!
//! ```text
//! header  magic b"EXWL" (4 bytes) + version u8 (currently 1)
//! frame   len u32 LE  | checksum u64 LE | payload (len bytes)
//!         …repeated until end of file
//! ```
//!
//! The checksum is FNV-1a 64 over the payload. Payloads are tagged:
//!
//! ```text
//! tag 1  Rate    user u32 LE, item u32 LE, value f64 LE
//! tag 2  Unrate  user u32 LE, item u32 LE
//! tag 3  Batch   count u32 LE, then count × (op tag u8 + op fields)
//! ```
//!
//! Replay-on-open stops cleanly at the first torn or corrupt frame —
//! a short length prefix, a truncated payload, a checksum mismatch, or
//! an undecodable payload all mark the end of the valid log — and the
//! file is truncated back to the last valid frame so subsequent
//! appends never write after garbage.
//!
//! Compaction composes with the [`crate::snapshot`] codec: write the
//! current matrix as a snapshot beside the log ([`snapshot_path`]),
//! then [`Wal::reset`] the log to just its header. Warm restart is the
//! inverse: decode the snapshot if present, then replay the WAL tail.

use std::fs::{File, OpenOptions};
use std::io::{Read as _, Seek as _, SeekFrom, Write as _};
use std::path::{Path, PathBuf};

use crate::matrix::RatingsMatrix;
use exrec_types::{Error, ItemId, Result, UserId};

const MAGIC: &[u8; 4] = b"EXWL";
const VERSION: u8 = 1;
/// Header length in bytes: magic + version.
pub const HEADER_LEN: u64 = 5;
/// Frame overhead in bytes: length prefix + checksum.
const FRAME_OVERHEAD: usize = 4 + 8;

const TAG_RATE: u8 = 1;
const TAG_UNRATE: u8 = 2;
const TAG_BATCH: u8 = 3;

/// When appended records reach the disk.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FsyncPolicy {
    /// `fsync` after every append — survives OS crash, slowest.
    Always,
    /// Leave flushing to the page cache — survives process crash only.
    Never,
}

/// A single rating mutation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum WalOp {
    /// Insert or replace a rating.
    Rate {
        /// User issuing the rating.
        user: UserId,
        /// Item being rated.
        item: ItemId,
        /// Rating value (validated against the matrix scale on apply).
        value: f64,
    },
    /// Remove a rating if present.
    Unrate {
        /// User whose rating is removed.
        user: UserId,
        /// Item the rating was for.
        item: ItemId,
    },
}

impl WalOp {
    /// The user this op touches.
    pub fn user(&self) -> UserId {
        match *self {
            WalOp::Rate { user, .. } | WalOp::Unrate { user, .. } => user,
        }
    }

    /// Applies the op to a matrix, returning the previous value if any.
    pub fn apply(&self, matrix: &mut RatingsMatrix) -> Result<Option<f64>> {
        match *self {
            WalOp::Rate { user, item, value } => matrix.rate(user, item, value),
            WalOp::Unrate { user, item } => matrix.unrate(user, item),
        }
    }
}

/// One appended log record: a single op or an atomic batch of ops.
#[derive(Debug, Clone, PartialEq)]
pub enum WalRecord {
    /// A single rating insert/replace.
    Rate {
        /// User issuing the rating.
        user: UserId,
        /// Item being rated.
        item: ItemId,
        /// Rating value.
        value: f64,
    },
    /// A single rating removal.
    Unrate {
        /// User whose rating is removed.
        user: UserId,
        /// Item the rating was for.
        item: ItemId,
    },
    /// An ordered batch applied as one record.
    Batch(Vec<WalOp>),
}

impl WalRecord {
    /// The ops this record carries, in application order.
    pub fn ops(&self) -> Vec<WalOp> {
        match self {
            WalRecord::Rate { user, item, value } => vec![WalOp::Rate {
                user: *user,
                item: *item,
                value: *value,
            }],
            WalRecord::Unrate { user, item } => vec![WalOp::Unrate {
                user: *user,
                item: *item,
            }],
            WalRecord::Batch(ops) => ops.clone(),
        }
    }

    /// Number of ops in the record.
    pub fn len(&self) -> usize {
        match self {
            WalRecord::Rate { .. } | WalRecord::Unrate { .. } => 1,
            WalRecord::Batch(ops) => ops.len(),
        }
    }

    /// Whether the record carries no ops (only possible for an empty batch).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Applies every op in order to `matrix`.
    pub fn apply(&self, matrix: &mut RatingsMatrix) -> Result<()> {
        for op in self.ops() {
            op.apply(matrix)?;
        }
        Ok(())
    }
}

/// FNV-1a 64-bit over `data` — dependency-free frame checksum.
fn fnv1a(data: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &byte in data {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

fn put_op(buf: &mut Vec<u8>, op: &WalOp) {
    match *op {
        WalOp::Rate { user, item, value } => {
            buf.push(TAG_RATE);
            buf.extend_from_slice(&user.raw().to_le_bytes());
            buf.extend_from_slice(&item.raw().to_le_bytes());
            buf.extend_from_slice(&value.to_le_bytes());
        }
        WalOp::Unrate { user, item } => {
            buf.push(TAG_UNRATE);
            buf.extend_from_slice(&user.raw().to_le_bytes());
            buf.extend_from_slice(&item.raw().to_le_bytes());
        }
    }
}

fn encode_payload(record: &WalRecord) -> Vec<u8> {
    let mut buf = Vec::with_capacity(32);
    match record {
        WalRecord::Rate { user, item, value } => put_op(
            &mut buf,
            &WalOp::Rate {
                user: *user,
                item: *item,
                value: *value,
            },
        ),
        WalRecord::Unrate { user, item } => put_op(
            &mut buf,
            &WalOp::Unrate {
                user: *user,
                item: *item,
            },
        ),
        WalRecord::Batch(ops) => {
            buf.push(TAG_BATCH);
            buf.extend_from_slice(&(ops.len() as u32).to_le_bytes());
            for op in ops {
                put_op(&mut buf, op);
            }
        }
    }
    buf
}

/// Encodes a record as a complete frame (length prefix + checksum + payload).
pub fn encode_frame(record: &WalRecord) -> Vec<u8> {
    let payload = encode_payload(record);
    let mut frame = Vec::with_capacity(FRAME_OVERHEAD + payload.len());
    frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    frame.extend_from_slice(&fnv1a(&payload).to_le_bytes());
    frame.extend_from_slice(&payload);
    frame
}

fn take_u32(data: &[u8], at: &mut usize) -> Option<u32> {
    let bytes = data.get(*at..*at + 4)?;
    *at += 4;
    Some(u32::from_le_bytes(bytes.try_into().unwrap()))
}

fn take_f64(data: &[u8], at: &mut usize) -> Option<f64> {
    let bytes = data.get(*at..*at + 8)?;
    *at += 8;
    Some(f64::from_le_bytes(bytes.try_into().unwrap()))
}

fn take_op(data: &[u8], at: &mut usize) -> Option<WalOp> {
    let tag = *data.get(*at)?;
    *at += 1;
    match tag {
        TAG_RATE => {
            let user = UserId::new(take_u32(data, at)?);
            let item = ItemId::new(take_u32(data, at)?);
            let value = take_f64(data, at)?;
            Some(WalOp::Rate { user, item, value })
        }
        TAG_UNRATE => {
            let user = UserId::new(take_u32(data, at)?);
            let item = ItemId::new(take_u32(data, at)?);
            Some(WalOp::Unrate { user, item })
        }
        _ => None,
    }
}

/// Decodes one payload; `None` marks a corrupt record.
fn decode_payload(payload: &[u8]) -> Option<WalRecord> {
    let mut at = 0usize;
    let record = match *payload.first()? {
        TAG_BATCH => {
            at += 1;
            let count = take_u32(payload, &mut at)? as usize;
            let mut ops = Vec::with_capacity(count.min(payload.len()));
            for _ in 0..count {
                ops.push(take_op(payload, &mut at)?);
            }
            WalRecord::Batch(ops)
        }
        _ => match take_op(payload, &mut at)? {
            WalOp::Rate { user, item, value } => WalRecord::Rate { user, item, value },
            WalOp::Unrate { user, item } => WalRecord::Unrate { user, item },
        },
    };
    // Trailing bytes mean the frame length disagrees with the payload —
    // treat the whole frame as corrupt rather than silently dropping data.
    (at == payload.len()).then_some(record)
}

/// Decodes consecutive frames from `data`, stopping cleanly at the first
/// torn or corrupt frame. Returns the decoded records and the number of
/// bytes consumed by *valid* frames (the safe truncation point).
pub fn decode_frames(data: &[u8]) -> (Vec<WalRecord>, usize) {
    let mut records = Vec::new();
    let mut at = 0usize;
    while let Some(len_bytes) = data.get(at..at + 4) {
        let len = u32::from_le_bytes(len_bytes.try_into().unwrap()) as usize;
        let Some(checksum_bytes) = data.get(at + 4..at + 12) else {
            break;
        };
        let checksum = u64::from_le_bytes(checksum_bytes.try_into().unwrap());
        let Some(payload) = data.get(at + 12..at + 12 + len) else {
            break;
        };
        if fnv1a(payload) != checksum {
            break;
        }
        let Some(record) = decode_payload(payload) else {
            break;
        };
        records.push(record);
        at += FRAME_OVERHEAD + len;
    }
    (records, at)
}

/// Default snapshot location for a WAL file: `<wal-path>.snap`.
pub fn snapshot_path(wal_path: &Path) -> PathBuf {
    let mut name = wal_path.as_os_str().to_owned();
    name.push(".snap");
    PathBuf::from(name)
}

fn io_err(op: &str, path: &Path, e: std::io::Error) -> Error {
    Error::Io {
        detail: format!("{op} {}: {e}", path.display()),
    }
}

/// Point-in-time view of a log's size and recovery history.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct WalStats {
    /// Bytes in the log file, header included.
    pub size_bytes: u64,
    /// Records currently in the log (replayed on open + appended since).
    pub records: u64,
    /// Records recovered by the last [`Wal::open`].
    pub replayed: u64,
    /// Torn-tail bytes discarded by the last [`Wal::open`].
    pub truncated_bytes: u64,
}

/// An open write-ahead log.
///
/// Created by [`Wal::open`], which replays any existing records and
/// truncates a torn tail. Appends go through [`Wal::append`]; after a
/// snapshot is written, [`Wal::reset`] empties the log.
#[derive(Debug)]
pub struct Wal {
    file: File,
    path: PathBuf,
    policy: FsyncPolicy,
    size_bytes: u64,
    records: u64,
    replayed: u64,
    truncated_bytes: u64,
}

impl Wal {
    /// Opens (creating if absent) the log at `path` and replays it.
    ///
    /// Returns the log handle plus every valid record in append order.
    /// A torn or corrupt tail is truncated away; a bad header is an
    /// error (the file is not a WAL — refusing beats clobbering it).
    ///
    /// # Errors
    ///
    /// [`Error::Io`] on filesystem failures; [`Error::CorruptSnapshot`]
    /// if the file exists but does not start with a WAL header.
    pub fn open(path: &Path, policy: FsyncPolicy) -> Result<(Self, Vec<WalRecord>)> {
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(path)
            .map_err(|e| io_err("open", path, e))?;
        let mut data = Vec::new();
        file.read_to_end(&mut data)
            .map_err(|e| io_err("read", path, e))?;

        let (records, valid_len) = if data.is_empty() {
            let mut header = Vec::with_capacity(HEADER_LEN as usize);
            header.extend_from_slice(MAGIC);
            header.push(VERSION);
            file.write_all(&header)
                .map_err(|e| io_err("write header", path, e))?;
            file.sync_data().map_err(|e| io_err("fsync", path, e))?;
            (Vec::new(), HEADER_LEN)
        } else {
            if data.len() < HEADER_LEN as usize || &data[..4] != MAGIC {
                return Err(Error::CorruptSnapshot {
                    detail: format!("{} is not a WAL (bad magic)", path.display()),
                });
            }
            if data[4] != VERSION {
                return Err(Error::CorruptSnapshot {
                    detail: format!("unsupported WAL version {}", data[4]),
                });
            }
            let (records, consumed) = decode_frames(&data[HEADER_LEN as usize..]);
            (records, HEADER_LEN + consumed as u64)
        };

        let truncated_bytes = data.len() as u64 - valid_len.min(data.len() as u64);
        if truncated_bytes > 0 {
            file.set_len(valid_len)
                .map_err(|e| io_err("truncate", path, e))?;
        }
        file.seek(SeekFrom::End(0))
            .map_err(|e| io_err("seek", path, e))?;

        let replayed = records.len() as u64;
        Ok((
            Self {
                file,
                path: path.to_owned(),
                policy,
                size_bytes: valid_len,
                records: replayed,
                replayed,
                truncated_bytes,
            },
            records,
        ))
    }

    /// Appends one record, honouring the fsync policy.
    ///
    /// Returns the frame size in bytes.
    ///
    /// # Errors
    ///
    /// [`Error::Io`] if the write or fsync fails.
    pub fn append(&mut self, record: &WalRecord) -> Result<u64> {
        let frame = encode_frame(record);
        self.file
            .write_all(&frame)
            .map_err(|e| io_err("append", &self.path, e))?;
        if self.policy == FsyncPolicy::Always {
            self.file
                .sync_data()
                .map_err(|e| io_err("fsync", &self.path, e))?;
        }
        self.size_bytes += frame.len() as u64;
        self.records += 1;
        Ok(frame.len() as u64)
    }

    /// Empties the log back to its header (after compaction).
    ///
    /// # Errors
    ///
    /// [`Error::Io`] if truncation fails.
    pub fn reset(&mut self) -> Result<()> {
        self.file
            .set_len(HEADER_LEN)
            .map_err(|e| io_err("truncate", &self.path, e))?;
        self.file
            .seek(SeekFrom::End(0))
            .map_err(|e| io_err("seek", &self.path, e))?;
        self.file
            .sync_data()
            .map_err(|e| io_err("fsync", &self.path, e))?;
        self.size_bytes = HEADER_LEN;
        self.records = 0;
        Ok(())
    }

    /// Compacts the log: writes `matrix` as a snapshot at
    /// [`snapshot_path`] (tmp file + rename, so a crash mid-compaction
    /// leaves the old snapshot intact), then resets the log. After this,
    /// snapshot + (empty) WAL reproduce `matrix` exactly.
    ///
    /// # Errors
    ///
    /// [`Error::Io`] on filesystem failures.
    pub fn compact(&mut self, matrix: &RatingsMatrix) -> Result<PathBuf> {
        let snap = snapshot_path(&self.path);
        let tmp = {
            let mut name = snap.as_os_str().to_owned();
            name.push(".tmp");
            PathBuf::from(name)
        };
        let bytes = crate::snapshot::encode(matrix);
        let mut file = File::create(&tmp).map_err(|e| io_err("create", &tmp, e))?;
        file.write_all(&bytes)
            .map_err(|e| io_err("write", &tmp, e))?;
        file.sync_data().map_err(|e| io_err("fsync", &tmp, e))?;
        drop(file);
        std::fs::rename(&tmp, &snap).map_err(|e| io_err("rename", &tmp, e))?;
        self.reset()?;
        Ok(snap)
    }

    /// Current size and recovery stats.
    pub fn stats(&self) -> WalStats {
        WalStats {
            size_bytes: self.size_bytes,
            records: self.records,
            replayed: self.replayed,
            truncated_bytes: self.truncated_bytes,
        }
    }

    /// Path of the log file.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// The configured fsync policy.
    pub fn policy(&self) -> FsyncPolicy {
        self.policy
    }
}

/// Loads the compaction snapshot beside a WAL, if one exists.
///
/// # Errors
///
/// Propagates decode errors for an existing-but-corrupt snapshot;
/// a missing snapshot is `Ok(None)`.
pub fn load_snapshot(wal_path: &Path) -> Result<Option<RatingsMatrix>> {
    let snap = snapshot_path(wal_path);
    match std::fs::read(&snap) {
        Ok(bytes) => crate::snapshot::decode(&bytes).map(Some),
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(None),
        Err(e) => Err(io_err("read", &snap, e)),
    }
}

/// Replays `records` onto `matrix` in order, returning the op count.
///
/// # Errors
///
/// Propagates apply errors (out-of-range ids, off-scale values) — the
/// ops were validated before they were logged, so a failure here means
/// the log and the base matrix disagree.
pub fn replay_into(matrix: &mut RatingsMatrix, records: &[WalRecord]) -> Result<u64> {
    let mut applied = 0u64;
    for record in records {
        applied += record.len() as u64;
        record.apply(matrix)?;
    }
    Ok(applied)
}

#[cfg(test)]
mod tests {
    use super::*;
    use exrec_types::RatingScale;

    fn temp_path(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("exrec-wal-{}-{name}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir.join("log.wal")
    }

    fn cleanup(path: &Path) {
        let _ = std::fs::remove_dir_all(path.parent().unwrap());
    }

    fn sample_records() -> Vec<WalRecord> {
        vec![
            WalRecord::Rate {
                user: UserId(0),
                item: ItemId(1),
                value: 4.0,
            },
            WalRecord::Batch(vec![
                WalOp::Rate {
                    user: UserId(1),
                    item: ItemId(0),
                    value: 2.5,
                },
                WalOp::Unrate {
                    user: UserId(0),
                    item: ItemId(1),
                },
                WalOp::Rate {
                    user: UserId(0),
                    item: ItemId(2),
                    value: 5.0,
                },
            ]),
            WalRecord::Unrate {
                user: UserId(1),
                item: ItemId(0),
            },
        ]
    }

    #[test]
    fn frame_round_trip() {
        for record in sample_records() {
            let frame = encode_frame(&record);
            let (decoded, consumed) = decode_frames(&frame);
            assert_eq!(consumed, frame.len());
            assert_eq!(decoded, vec![record]);
        }
    }

    #[test]
    fn append_and_replay() {
        let path = temp_path("append-replay");
        {
            let (mut wal, replayed) = Wal::open(&path, FsyncPolicy::Always).unwrap();
            assert!(replayed.is_empty());
            for record in sample_records() {
                wal.append(&record).unwrap();
            }
            assert_eq!(wal.stats().records, 3);
        }
        let (wal, replayed) = Wal::open(&path, FsyncPolicy::Never).unwrap();
        assert_eq!(replayed, sample_records());
        assert_eq!(wal.stats().replayed, 3);
        assert_eq!(wal.stats().truncated_bytes, 0);
        cleanup(&path);
    }

    #[test]
    fn torn_tail_is_truncated() {
        let path = temp_path("torn-tail");
        {
            let (mut wal, _) = Wal::open(&path, FsyncPolicy::Never).unwrap();
            for record in sample_records() {
                wal.append(&record).unwrap();
            }
        }
        // Tear the last frame by chopping bytes off the end.
        let full = std::fs::read(&path).unwrap();
        std::fs::write(&path, &full[..full.len() - 3]).unwrap();
        let (wal, replayed) = Wal::open(&path, FsyncPolicy::Never).unwrap();
        assert_eq!(replayed, sample_records()[..2].to_vec());
        assert!(wal.stats().truncated_bytes > 0);
        // The torn bytes are gone: reopening replays the same prefix
        // and reports nothing further truncated.
        drop(wal);
        let (wal, replayed) = Wal::open(&path, FsyncPolicy::Never).unwrap();
        assert_eq!(replayed.len(), 2);
        assert_eq!(wal.stats().truncated_bytes, 0);
        cleanup(&path);
    }

    #[test]
    fn corrupt_checksum_stops_replay() {
        let path = temp_path("corrupt");
        {
            let (mut wal, _) = Wal::open(&path, FsyncPolicy::Never).unwrap();
            for record in sample_records() {
                wal.append(&record).unwrap();
            }
        }
        // Flip a payload byte in the second frame.
        let mut bytes = std::fs::read(&path).unwrap();
        let first_frame = encode_frame(&sample_records()[0]).len();
        let target = HEADER_LEN as usize + first_frame + FRAME_OVERHEAD + 1;
        bytes[target] ^= 0xFF;
        std::fs::write(&path, &bytes).unwrap();
        let (_, replayed) = Wal::open(&path, FsyncPolicy::Never).unwrap();
        assert_eq!(replayed, sample_records()[..1].to_vec());
        cleanup(&path);
    }

    #[test]
    fn rejects_non_wal_file() {
        let path = temp_path("not-a-wal");
        std::fs::write(&path, b"definitely not a wal").unwrap();
        assert!(Wal::open(&path, FsyncPolicy::Never).is_err());
        cleanup(&path);
    }

    #[test]
    fn compact_round_trip() {
        let path = temp_path("compact");
        let mut matrix = RatingsMatrix::new(4, 4, RatingScale::HALF_STAR);
        let (mut wal, _) = Wal::open(&path, FsyncPolicy::Never).unwrap();
        for record in sample_records() {
            record.apply(&mut matrix).unwrap();
            wal.append(&record).unwrap();
        }
        wal.compact(&matrix).unwrap();
        assert_eq!(wal.stats().records, 0);
        assert_eq!(wal.stats().size_bytes, HEADER_LEN);

        // Post-compaction writes land in the (now empty) log.
        let tail = WalRecord::Rate {
            user: UserId(3),
            item: ItemId(3),
            value: 1.0,
        };
        tail.apply(&mut matrix).unwrap();
        wal.append(&tail).unwrap();
        drop(wal);

        // Warm restart: snapshot base + WAL tail == live matrix.
        let mut restored = load_snapshot(&path).unwrap().expect("snapshot exists");
        let (_, records) = Wal::open(&path, FsyncPolicy::Never).unwrap();
        replay_into(&mut restored, &records).unwrap();
        assert_eq!(restored, matrix);
        cleanup(&path);
    }
}

//! Synthetic movie world (MovieLens-style, survey Tables 3/4 rows
//! "MovieLens", "LoveFilm", "ACORN").

use super::{names, World, WorldConfig};
use crate::catalog::Catalog;
use exrec_types::{AttributeDef, AttributeSet, Direction, DomainSchema};
use rand::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Movie genres used as latent prototypes.
pub const GENRES: &[&str] = &[
    "comedy",
    "drama",
    "action",
    "thriller",
    "scifi",
    "romance",
    "horror",
    "documentary",
];

/// Per-genre descriptive vocabulary feeding item keywords.
const GENRE_WORDS: &[&[&str]] = &[
    &["hilarious", "sitcom", "slapstick", "witty", "parody"],
    &["moving", "family", "tragedy", "memoir", "quiet"],
    &["explosive", "chase", "heist", "combat", "stunt"],
    &["suspense", "conspiracy", "detective", "noir", "twist"],
    &["space", "robot", "future", "alien", "dystopia"],
    &["love", "wedding", "heartbreak", "summer", "letters"],
    &["haunted", "scream", "curse", "midnight", "shadow"],
    &["archive", "interview", "nature", "history", "essay"],
];

const TITLE_PATTERNS: &[&str] = &[
    "The {A} {B}",
    "{A} of {B}",
    "{A} Rising",
    "Last {A}",
    "{A} & {B}",
];

/// The movie domain schema.
pub fn schema() -> DomainSchema {
    DomainSchema::new(
        "movies",
        vec![
            AttributeDef::categorical("genre", "Genre"),
            AttributeDef::categorical("director", "Director"),
            AttributeDef::categorical("lead", "Lead Actor"),
            AttributeDef::numeric("year", "Year", Direction::Neutral),
            AttributeDef::numeric("length", "Length", Direction::Neutral).with_unit("min"),
            AttributeDef::categorical("rating_cert", "Certificate"),
        ],
    )
    .expect("static schema is valid")
}

/// Generates a movie world from `cfg`.
pub fn generate(cfg: &WorldConfig) -> World {
    let mut rng = ChaCha8Rng::seed_from_u64(cfg.seed ^ 0x4D4F5649); // "MOVI"
    let mut catalog = Catalog::new(schema());
    let mut prototypes = Vec::with_capacity(cfg.n_items);

    let directors: Vec<String> = (0..8).map(|_| names::person_name(&mut rng)).collect();
    let actors: Vec<String> = (0..16).map(|_| names::person_name(&mut rng)).collect();
    let certs = ["G", "PG", "PG-13", "R"];

    for k in 0..cfg.n_items {
        let genre_idx = if k < GENRES.len() {
            // Guarantee every genre appears at least once.
            k
        } else {
            rng.random_range(0..GENRES.len())
        };
        let genre = GENRES[genre_idx];
        let pattern = TITLE_PATTERNS[rng.random_range(0..TITLE_PATTERNS.len())];
        let title = pattern
            .replace("{A}", &names::pseudo_word(&mut rng))
            .replace("{B}", &names::pseudo_word(&mut rng));
        let director = directors[rng.random_range(0..directors.len())].clone();
        let lead = actors[rng.random_range(0..actors.len())].clone();
        let words = GENRE_WORDS[genre_idx];
        let mut keywords: Vec<String> = names::pick_distinct(words, 3, &mut rng)
            .into_iter()
            .map(|w| w.to_string())
            .collect();
        keywords.push(genre.to_string());
        keywords.push(
            lead.split(' ')
                .next_back()
                .unwrap_or_default()
                .to_lowercase(),
        );

        let attrs = AttributeSet::new()
            .with("genre", genre)
            .with("director", director.as_str())
            .with("lead", lead.as_str())
            .with("year", rng.random_range(1970..2007) as f64)
            .with("length", rng.random_range(80..180) as f64)
            .with("rating_cert", certs[rng.random_range(0..certs.len())]);

        catalog
            .add(&title, attrs, keywords)
            .expect("generated attrs conform to schema");
        prototypes.push(genre_idx);
    }

    World::assemble(
        catalog,
        prototypes,
        GENRES.iter().map(|g| g.to_string()).collect(),
        cfg,
        &mut rng,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_genre_is_represented() {
        let w = generate(&WorldConfig {
            n_items: 30,
            n_users: 10,
            ..WorldConfig::default()
        });
        for genre in GENRES {
            assert!(
                w.catalog.with_category("genre", genre).next().is_some(),
                "missing genre {genre}"
            );
        }
    }

    #[test]
    fn items_have_genre_keyword() {
        let w = generate(&WorldConfig {
            n_items: 20,
            n_users: 5,
            ..WorldConfig::default()
        });
        for item in w.catalog.iter() {
            let genre = item.attrs.cat("genre").unwrap();
            assert!(
                item.has_keyword(genre),
                "{} lacks its genre keyword",
                item.title
            );
        }
    }

    #[test]
    fn prototype_matches_genre_attr() {
        let w = generate(&WorldConfig {
            n_items: 20,
            n_users: 5,
            ..WorldConfig::default()
        });
        for item in w.catalog.iter() {
            assert_eq!(w.prototype_of(item.id), item.attrs.cat("genre").unwrap());
        }
    }

    #[test]
    fn years_in_range() {
        let w = generate(&WorldConfig::default());
        for item in w.catalog.iter() {
            let y = item.attrs.num("year").unwrap();
            assert!((1970.0..2007.0).contains(&y));
        }
    }
}

//! Synthetic book world (survey Table 4 row "LIBRA", Figure 3's
//! influence-based explanation, Table 3 rows "Amazon"/"LibraryThing").

use super::{names, World, WorldConfig};
use crate::catalog::Catalog;
use exrec_types::{AttrValue, AttributeDef, AttributeSet, Direction, DomainSchema};
use rand::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Book genres used as latent prototypes.
pub const GENRES: &[&str] = &[
    "classic", "scifi", "mystery", "fantasy", "history", "romance",
];

const GENRE_WORDS: &[&[&str]] = &[
    &["orphan", "victorian", "estate", "inheritance", "society"],
    &["starship", "colony", "android", "quantum", "terraform"],
    &["murder", "detective", "alibi", "poison", "manor"],
    &["dragon", "quest", "prophecy", "sword", "kingdom"],
    &["empire", "revolution", "biography", "archive", "war"],
    &["courtship", "scandal", "letters", "ballroom", "elopement"],
];

/// The book domain schema.
pub fn schema() -> DomainSchema {
    DomainSchema::new(
        "books",
        vec![
            AttributeDef::categorical("author", "Author"),
            AttributeDef::categorical("genre", "Genre"),
            AttributeDef::numeric("pages", "Pages", Direction::Neutral),
            AttributeDef::numeric("year", "Year", Direction::Neutral),
            AttributeDef::text("blurb", "Blurb"),
        ],
    )
    .expect("static schema is valid")
}

/// Generates a book world from `cfg`. Authors write 2–6 books each within
/// one genre, so author-based content explanations ("more by Charles
/// Dickens") have signal.
pub fn generate(cfg: &WorldConfig) -> World {
    let mut rng = ChaCha8Rng::seed_from_u64(cfg.seed ^ 0x424F4F4B); // "BOOK"
    let mut catalog = Catalog::new(schema());
    let mut prototypes = Vec::with_capacity(cfg.n_items);

    // Pre-assign authors to genres.
    let n_authors = (cfg.n_items / 3).clamp(4, 40);
    let authors: Vec<(String, usize)> = (0..n_authors)
        .map(|a| {
            let genre = if a < GENRES.len() {
                a
            } else {
                rng.random_range(0..GENRES.len())
            };
            (names::person_name(&mut rng), genre)
        })
        .collect();

    for _ in 0..cfg.n_items {
        let (author, genre_idx) = authors[rng.random_range(0..authors.len())].clone();
        let words = GENRE_WORDS[genre_idx];
        let picked = names::pick_distinct(words, 3, &mut rng);
        let title = format!(
            "The {} {}",
            capitalize(picked[0]),
            capitalize(&names::pseudo_word(&mut rng)),
        );
        let blurb = format!(
            "A {} tale of {} and {}, following the {} through {}.",
            GENRES[genre_idx], picked[0], picked[1], picked[2], picked[0]
        );
        let mut keywords: Vec<String> = picked.iter().map(|w| w.to_string()).collect();
        keywords.push(GENRES[genre_idx].to_string());
        keywords.push(
            author
                .split(' ')
                .next_back()
                .unwrap_or_default()
                .to_lowercase(),
        );

        let attrs = AttributeSet::new()
            .with("author", author.as_str())
            .with("genre", GENRES[genre_idx])
            .with("pages", rng.random_range(150..800) as f64)
            .with("year", rng.random_range(1840..2007) as f64)
            .with("blurb", AttrValue::Text(blurb));

        catalog
            .add(&title, attrs, keywords)
            .expect("generated attrs conform to schema");
        prototypes.push(genre_idx);
    }

    World::assemble(
        catalog,
        prototypes,
        GENRES.iter().map(|g| g.to_string()).collect(),
        cfg,
        &mut rng,
    )
}

fn capitalize(s: &str) -> String {
    let mut chars = s.chars();
    match chars.next() {
        Some(c) => c.to_uppercase().collect::<String>() + chars.as_str(),
        None => String::new(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    fn world() -> World {
        generate(&WorldConfig {
            n_items: 60,
            n_users: 20,
            ..WorldConfig::default()
        })
    }

    #[test]
    fn authors_stay_in_one_genre() {
        let w = world();
        let mut seen: HashMap<String, String> = HashMap::new();
        for item in w.catalog.iter() {
            let author = item.attrs.cat("author").unwrap().to_owned();
            let genre = item.attrs.cat("genre").unwrap().to_owned();
            if let Some(prev) = seen.insert(author.clone(), genre.clone()) {
                assert_eq!(prev, genre, "author {author} spans genres");
            }
        }
    }

    #[test]
    fn some_author_has_multiple_books() {
        let w = world();
        let mut counts: HashMap<&str, usize> = HashMap::new();
        for item in w.catalog.iter() {
            *counts.entry(item.attrs.cat("author").unwrap()).or_insert(0) += 1;
        }
        assert!(
            counts.values().any(|&c| c >= 2),
            "need multi-book authors for 'more by this author' explanations"
        );
    }

    #[test]
    fn blurbs_mention_genre() {
        let w = world();
        for item in w.catalog.iter() {
            let blurb = item.attrs.text("blurb").unwrap();
            let genre = item.attrs.cat("genre").unwrap();
            assert!(blurb.contains(genre), "blurb should carry genre signal");
        }
    }
}

//! Synthetic digital-camera world (survey Table 3 row "Qwikshop",
//! Section 5.2's "Less Memory and Lower Resolution and Cheaper").
//!
//! Cameras are the canonical *knowledge-based / critiquing* domain:
//! numeric attributes with clear preference directions, few ratings.

use super::{World, WorldConfig};
use crate::catalog::Catalog;
use exrec_types::{AttributeDef, AttributeSet, Direction, DomainSchema};
use rand::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Camera classes used as latent prototypes.
pub const CLASSES: &[&str] = &["compact", "superzoom", "dslr", "rugged"];

const BRANDS: &[&str] = &[
    "Lumora",
    "Pentaxis",
    "Veldt",
    "Okari",
    "Brightline",
    "Corvid",
];

/// The camera domain schema, with comparative adjectives wired in so
/// critique titles read like the survey's example.
pub fn schema() -> DomainSchema {
    DomainSchema::new(
        "cameras",
        vec![
            AttributeDef::numeric("price", "Price", Direction::LowerIsBetter)
                .with_unit("$")
                .with_comparatives("More Expensive", "Cheaper"),
            AttributeDef::numeric("resolution", "Resolution", Direction::HigherIsBetter)
                .with_unit("MP")
                .with_comparatives("Higher Resolution", "Lower Resolution"),
            AttributeDef::numeric("zoom", "Optical Zoom", Direction::HigherIsBetter)
                .with_unit("x")
                .with_comparatives("More Zoom", "Less Zoom"),
            AttributeDef::numeric("memory", "Memory", Direction::HigherIsBetter)
                .with_unit("GB")
                .with_comparatives("More Memory", "Less Memory"),
            AttributeDef::numeric("weight", "Weight", Direction::LowerIsBetter)
                .with_unit("g")
                .with_comparatives("Heavier", "Lighter"),
            AttributeDef::categorical("brand", "Brand"),
            AttributeDef::categorical("class", "Class"),
            AttributeDef::flag("flash", "Built-in Flash"),
        ],
    )
    .expect("static schema is valid")
}

/// Class-conditional attribute ranges:
/// `(price, resolution, zoom, memory, weight)` as `(lo, hi)` pairs.
fn class_ranges(class: usize) -> [(f64, f64); 5] {
    match class {
        0 => [
            (120.0, 350.0),
            (6.0, 10.0),
            (3.0, 5.0),
            (1.0, 4.0),
            (120.0, 220.0),
        ], // compact
        1 => [
            (280.0, 600.0),
            (8.0, 12.0),
            (10.0, 24.0),
            (2.0, 8.0),
            (300.0, 500.0),
        ], // superzoom
        2 => [
            (600.0, 1800.0),
            (10.0, 21.0),
            (1.0, 3.0),
            (4.0, 16.0),
            (500.0, 900.0),
        ], // dslr
        _ => [
            (200.0, 450.0),
            (6.0, 9.0),
            (3.0, 5.0),
            (1.0, 4.0),
            (180.0, 300.0),
        ], // rugged
    }
}

/// Generates a camera world from `cfg`.
pub fn generate(cfg: &WorldConfig) -> World {
    let mut rng = ChaCha8Rng::seed_from_u64(cfg.seed ^ 0x43414D45); // "CAME"
    let mut catalog = Catalog::new(schema());
    let mut prototypes = Vec::with_capacity(cfg.n_items);

    for k in 0..cfg.n_items {
        let class = if k < CLASSES.len() {
            k
        } else {
            rng.random_range(0..CLASSES.len())
        };
        let ranges = class_ranges(class);
        let brand = BRANDS[rng.random_range(0..BRANDS.len())];
        let model_no = rng.random_range(100..999);
        let title = format!(
            "{brand} {}{model_no}",
            CLASSES[class].to_uppercase().chars().next().unwrap()
        );

        let sample = |rng: &mut ChaCha8Rng, (lo, hi): (f64, f64)| {
            (rng.random_range(lo..hi) * 10.0).round() / 10.0
        };
        let attrs = AttributeSet::new()
            .with("price", sample(&mut rng, ranges[0]).round())
            .with("resolution", sample(&mut rng, ranges[1]))
            .with("zoom", sample(&mut rng, ranges[2]))
            .with("memory", sample(&mut rng, ranges[3]).round().max(1.0))
            .with("weight", sample(&mut rng, ranges[4]).round())
            .with("brand", brand)
            .with("class", CLASSES[class])
            .with("flash", rng.random_range(0.0..1.0) < 0.8);

        let keywords = vec![CLASSES[class].to_string(), brand.to_lowercase()];
        catalog
            .add(&title, attrs, keywords)
            .expect("generated attrs conform to schema");
        prototypes.push(class);
    }

    World::assemble(
        catalog,
        prototypes,
        CLASSES.iter().map(|c| c.to_string()).collect(),
        cfg,
        &mut rng,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn world() -> World {
        generate(&WorldConfig {
            n_items: 40,
            n_users: 20,
            ..WorldConfig::default()
        })
    }

    #[test]
    fn attributes_within_class_ranges() {
        let w = world();
        for item in w.catalog.iter() {
            let class = CLASSES
                .iter()
                .position(|c| Some(*c) == item.attrs.cat("class"))
                .unwrap();
            let ranges = class_ranges(class);
            let price = item.attrs.num("price").unwrap();
            assert!(
                price >= ranges[0].0 - 1.0 && price <= ranges[0].1 + 1.0,
                "{}: price {price} outside class range",
                item.title
            );
        }
    }

    #[test]
    fn schema_has_critique_comparatives() {
        let s = schema();
        assert_eq!(s.attribute("memory").unwrap().less_word(), "Less Memory");
        assert_eq!(s.attribute("price").unwrap().less_word(), "Cheaper");
        assert_eq!(
            s.attribute("resolution").unwrap().less_word(),
            "Lower Resolution"
        );
    }

    #[test]
    fn price_direction_is_lower_better() {
        let s = schema();
        assert_eq!(
            s.attribute("price").unwrap().direction,
            Direction::LowerIsBetter
        );
        assert_eq!(
            s.attribute("zoom").unwrap().direction,
            Direction::HigherIsBetter
        );
    }

    #[test]
    fn every_class_present() {
        let w = world();
        for c in CLASSES {
            assert!(w.catalog.with_category("class", c).next().is_some());
        }
    }
}

//! Synthetic restaurant world (survey Table 4 row "Adaptive Place
//! Advisor" — the conversational efficiency study of Section 3.6).

use super::{names, World, WorldConfig};
use crate::catalog::Catalog;
use exrec_types::{AttributeDef, AttributeSet, Direction, DomainSchema};
use rand::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Cuisines used as latent prototypes.
pub const CUISINES: &[&str] = &["italian", "japanese", "indian", "mexican", "french", "thai"];

/// The restaurant domain schema.
pub fn schema() -> DomainSchema {
    DomainSchema::new(
        "restaurants",
        vec![
            AttributeDef::categorical("cuisine", "Cuisine"),
            AttributeDef::numeric("price_level", "Price Level", Direction::LowerIsBetter)
                .with_comparatives("Pricier", "Cheaper"),
            AttributeDef::numeric("distance", "Distance", Direction::LowerIsBetter)
                .with_unit("km")
                .with_comparatives("Farther", "Closer"),
            AttributeDef::numeric("stars", "Stars", Direction::HigherIsBetter)
                .with_comparatives("Better Rated", "Worse Rated"),
            AttributeDef::flag("vegetarian", "Vegetarian Options"),
            AttributeDef::flag("open_late", "Open Late"),
        ],
    )
    .expect("static schema is valid")
}

/// Generates a restaurant world from `cfg`.
pub fn generate(cfg: &WorldConfig) -> World {
    let mut rng = ChaCha8Rng::seed_from_u64(cfg.seed ^ 0x52455354); // "REST"
    let mut catalog = Catalog::new(schema());
    let mut prototypes = Vec::with_capacity(cfg.n_items);

    for k in 0..cfg.n_items {
        let cuisine_idx = if k < CUISINES.len() {
            k
        } else {
            rng.random_range(0..CUISINES.len())
        };
        let title = format!(
            "{} {}",
            names::pseudo_word(&mut rng),
            ["Kitchen", "House", "Table", "Garden", "Corner"][rng.random_range(0..5)]
        );
        let attrs = AttributeSet::new()
            .with("cuisine", CUISINES[cuisine_idx])
            .with("price_level", rng.random_range(1..5) as f64)
            .with("distance", (rng.random_range(2..120) as f64) / 10.0)
            .with("stars", (rng.random_range(4..11) as f64) / 2.0)
            .with("vegetarian", rng.random_range(0.0..1.0) < 0.5)
            .with("open_late", rng.random_range(0.0..1.0) < 0.4);
        catalog
            .add(&title, attrs, vec![CUISINES[cuisine_idx].to_string()])
            .expect("generated attrs conform to schema");
        prototypes.push(cuisine_idx);
    }

    World::assemble(
        catalog,
        prototypes,
        CUISINES.iter().map(|c| c.to_string()).collect(),
        cfg,
        &mut rng,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn attribute_ranges() {
        let w = generate(&WorldConfig {
            n_items: 40,
            n_users: 10,
            ..WorldConfig::default()
        });
        for item in w.catalog.iter() {
            let p = item.attrs.num("price_level").unwrap();
            assert!((1.0..=4.0).contains(&p));
            let s = item.attrs.num("stars").unwrap();
            assert!((2.0..=5.0).contains(&s));
            let d = item.attrs.num("distance").unwrap();
            assert!(d > 0.0 && d < 12.0);
        }
    }

    #[test]
    fn all_cuisines_present() {
        let w = generate(&WorldConfig {
            n_items: 30,
            n_users: 10,
            ..WorldConfig::default()
        });
        for c in CUISINES {
            assert!(w.catalog.with_category("cuisine", c).next().is_some());
        }
    }
}

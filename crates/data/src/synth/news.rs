//! Synthetic news world (survey Table 3 row "Findory", Table 4 row
//! "News Dude", Figure 2's treemap, and the running football/technology
//! fan example of Section 4).

use super::{names, World, WorldConfig};
use crate::catalog::Catalog;
use exrec_types::{AttributeDef, AttributeSet, Direction, DomainSchema};
use rand::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// News topics used as latent prototypes. "sport" is subdivided via the
/// `subtopic` attribute (football/tennis/hockey) to support the survey's
/// running example ("you like football but not hockey").
pub const TOPICS: &[&str] = &[
    "sport",
    "technology",
    "politics",
    "business",
    "culture",
    "science",
];

const SUBTOPICS: &[&[&str]] = &[
    &["football", "tennis", "hockey"],
    &["gadgets", "software", "internet"],
    &["elections", "policy", "world"],
    &["markets", "startups", "trade"],
    &["film", "music", "books"],
    &["space", "health", "climate"],
];

const TOPIC_WORDS: &[&[&str]] = &[
    &["match", "league", "goal", "final", "cup", "season"],
    &["device", "launch", "update", "chip", "startup"],
    &["vote", "minister", "debate", "reform", "summit"],
    &["shares", "profit", "merger", "forecast", "index"],
    &["festival", "premiere", "album", "exhibition", "review"],
    &["study", "discovery", "mission", "vaccine", "data"],
];

/// The news domain schema.
pub fn schema() -> DomainSchema {
    DomainSchema::new(
        "news",
        vec![
            AttributeDef::categorical("topic", "Topic"),
            AttributeDef::categorical("subtopic", "Subtopic"),
            AttributeDef::numeric("recency", "Recency", Direction::HigherIsBetter),
            AttributeDef::numeric("popularity", "Popularity", Direction::HigherIsBetter),
            AttributeDef::flag("local", "Local"),
            AttributeDef::text("summary", "Summary"),
        ],
    )
    .expect("static schema is valid")
}

/// Generates a news world from `cfg`.
///
/// `recency` is a 0–100 score (100 = just published); `popularity` a 0–100
/// view score. Both feed the treemap of Figure 2 (size = importance,
/// shade = recency).
pub fn generate(cfg: &WorldConfig) -> World {
    let mut rng = ChaCha8Rng::seed_from_u64(cfg.seed ^ 0x4E455753); // "NEWS"
    let mut catalog = Catalog::new(schema());
    let mut prototypes = Vec::with_capacity(cfg.n_items);

    for k in 0..cfg.n_items {
        let topic_idx = if k < TOPICS.len() {
            k
        } else {
            rng.random_range(0..TOPICS.len())
        };
        let subtopic = SUBTOPICS[topic_idx][rng.random_range(0..SUBTOPICS[topic_idx].len())];
        let words = TOPIC_WORDS[topic_idx];
        let picked = names::pick_distinct(words, 3, &mut rng);
        let headline = format!("{} {} {}", capitalize(subtopic), picked[0], picked[1]);
        let summary = format!(
            "{} {} {} {} in the {} {}",
            capitalize(picked[0]),
            subtopic,
            picked[1],
            picked[2],
            TOPICS[topic_idx],
            if rng.random_range(0.0..1.0) < 0.5 {
                "today"
            } else {
                "this week"
            },
        );
        let mut keywords: Vec<String> = picked.iter().map(|w| w.to_string()).collect();
        keywords.push(TOPICS[topic_idx].to_string());
        keywords.push(subtopic.to_string());

        let attrs = AttributeSet::new()
            .with("topic", TOPICS[topic_idx])
            .with("subtopic", subtopic)
            .with("recency", rng.random_range(0..101) as f64)
            .with("popularity", rng.random_range(0..101) as f64)
            .with("local", rng.random_range(0.0..1.0) < 0.3)
            .with("summary", exrec_types::AttrValue::Text(summary));

        catalog
            .add(&headline, attrs, keywords)
            .expect("generated attrs conform to schema");
        prototypes.push(topic_idx);
    }

    World::assemble(
        catalog,
        prototypes,
        TOPICS.iter().map(|t| t.to_string()).collect(),
        cfg,
        &mut rng,
    )
}

fn capitalize(s: &str) -> String {
    let mut chars = s.chars();
    match chars.next() {
        Some(c) => c.to_uppercase().collect::<String>() + chars.as_str(),
        None => String::new(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn world() -> World {
        generate(&WorldConfig {
            n_items: 60,
            n_users: 20,
            ..WorldConfig::default()
        })
    }

    #[test]
    fn subtopics_belong_to_topics() {
        let w = world();
        for item in w.catalog.iter() {
            let topic = item.attrs.cat("topic").unwrap();
            let sub = item.attrs.cat("subtopic").unwrap();
            let topic_idx = TOPICS.iter().position(|t| *t == topic).unwrap();
            assert!(
                SUBTOPICS[topic_idx].contains(&sub),
                "{sub} is not a subtopic of {topic}"
            );
        }
    }

    #[test]
    fn recency_and_popularity_bounded() {
        let w = world();
        for item in w.catalog.iter() {
            let r = item.attrs.num("recency").unwrap();
            let p = item.attrs.num("popularity").unwrap();
            assert!((0.0..=100.0).contains(&r));
            assert!((0.0..=100.0).contains(&p));
        }
    }

    #[test]
    fn summaries_are_text() {
        let w = world();
        for item in w.catalog.iter() {
            assert!(item.attrs.text("summary").unwrap().len() > 10);
        }
    }

    #[test]
    fn football_items_exist() {
        // The survey's running example requires football stories.
        let w = world();
        let football = w
            .catalog
            .iter()
            .filter(|it| it.attrs.cat("subtopic") == Some("football"))
            .count();
        assert!(
            football > 0,
            "need football items for the Section 4 example"
        );
    }
}

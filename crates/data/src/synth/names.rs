//! Deterministic pseudo-name generation for synthetic catalogs.

use rand::prelude::*;

const SYLLABLES: &[&str] = &[
    "ka", "lo", "mi", "ra", "ve", "to", "na", "si", "du", "pel", "mar", "tin", "os", "el", "bra",
    "cor", "fen", "gil", "hart", "ley",
];

/// A deterministic capitalized pseudo-word of 2–3 syllables.
pub fn pseudo_word(rng: &mut impl Rng) -> String {
    let n = rng.random_range(2..=3usize);
    let mut w = String::new();
    for _ in 0..n {
        w.push_str(SYLLABLES[rng.random_range(0..SYLLABLES.len())]);
    }
    let mut chars = w.chars();
    match chars.next() {
        Some(c) => c.to_uppercase().collect::<String>() + chars.as_str(),
        None => w,
    }
}

/// A pseudo person name ("Firstname Lastname").
pub fn person_name(rng: &mut impl Rng) -> String {
    format!("{} {}", pseudo_word(rng), pseudo_word(rng))
}

/// Picks `k` distinct elements of `pool` (or all of them if `k` exceeds
/// the pool size), preserving no particular order.
pub fn pick_distinct<'a, T>(pool: &'a [T], k: usize, rng: &mut impl Rng) -> Vec<&'a T> {
    let mut idx: Vec<usize> = (0..pool.len()).collect();
    idx.shuffle(rng);
    idx.into_iter().take(k).map(|i| &pool[i]).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn words_are_deterministic() {
        let mut a = ChaCha8Rng::seed_from_u64(5);
        let mut b = ChaCha8Rng::seed_from_u64(5);
        assert_eq!(pseudo_word(&mut a), pseudo_word(&mut b));
    }

    #[test]
    fn words_are_capitalized() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        for _ in 0..20 {
            let w = pseudo_word(&mut rng);
            assert!(w.chars().next().unwrap().is_uppercase());
            assert!(w.len() >= 4);
        }
    }

    #[test]
    fn person_names_have_two_parts() {
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let n = person_name(&mut rng);
        assert_eq!(n.split(' ').count(), 2);
    }

    #[test]
    fn pick_distinct_has_no_duplicates() {
        let pool: Vec<u32> = (0..10).collect();
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let picked = pick_distinct(&pool, 5, &mut rng);
        assert_eq!(picked.len(), 5);
        let mut seen: Vec<u32> = picked.iter().map(|&&x| x).collect();
        seen.sort_unstable();
        seen.dedup();
        assert_eq!(seen.len(), 5);
        assert_eq!(pick_distinct(&pool, 99, &mut rng).len(), 10);
    }
}

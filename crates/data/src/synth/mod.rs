//! Synthetic worlds with latent-factor ground truth.
//!
//! The survey's cited studies ran on proprietary data (MovieLens
//! deployments, Amazon, TiVo). We substitute generative worlds: each world
//! has a hidden [`LatentModel`] defining every user's *true* utility for
//! every item, a catalog of schema-described items, and a ratings matrix
//! sampled from the model with exposure bias and noise.
//!
//! The latent space is *prototype-structured*: every item belongs to a
//! prototype (genre, topic, cuisine…) and item vectors cluster around
//! prototype vectors. User vectors are sparse mixtures of prototypes. This
//! gives content-based models something learnable, and makes
//! prototype-level assertions ("this user truly likes comedies") possible
//! in studies such as the transparency task (survey Section 3.1).

pub mod books;
pub mod cameras;
pub mod holidays;
pub mod movies;
pub mod names;
pub mod news;
pub mod restaurants;

use crate::catalog::Catalog;
use crate::matrix::RatingsMatrix;
use exrec_types::{ItemId, RatingScale, UserId};
use rand::prelude::*;
use rand_chacha::ChaCha8Rng;

/// Parameters controlling world generation.
#[derive(Debug, Clone, PartialEq)]
pub struct WorldConfig {
    /// Number of users to simulate.
    pub n_users: usize,
    /// Number of items to generate (domain generators may round this to
    /// fit their templates).
    pub n_items: usize,
    /// Dimensionality of the latent preference space.
    pub n_factors: usize,
    /// Expected fraction of the catalog each user has rated.
    pub density: f64,
    /// Standard deviation of rating noise, on the `[0, 1]` utility scale.
    pub noise_sd: f64,
    /// Rating scale of the generated matrix.
    pub scale: RatingScale,
    /// RNG seed; equal configs generate identical worlds.
    pub seed: u64,
    /// Exposure skew: 0 = uniform exposure, larger = popular items are
    /// rated disproportionately often (Zipf-like exponent).
    pub popularity_skew: f64,
}

impl Default for WorldConfig {
    fn default() -> Self {
        Self {
            n_users: 200,
            n_items: 120,
            n_factors: 8,
            density: 0.15,
            noise_sd: 0.08,
            scale: RatingScale::FIVE_STAR,
            seed: 0xEC,
            popularity_skew: 0.8,
        }
    }
}

impl WorldConfig {
    /// Convenience: same config with a different seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Convenience: same config with different user/item counts.
    pub fn with_size(mut self, n_users: usize, n_items: usize) -> Self {
        self.n_users = n_users;
        self.n_items = n_items;
        self
    }
}

/// Hidden ground truth: latent user/item vectors plus per-item quality.
#[derive(Debug, Clone)]
pub struct LatentModel {
    n_factors: usize,
    user_factors: Vec<Vec<f64>>,
    item_factors: Vec<Vec<f64>>,
    item_quality: Vec<f64>,
    /// Sharpness of the dot-product → utility mapping.
    gain: f64,
}

fn sigmoid(x: f64) -> f64 {
    1.0 / (1.0 + (-x).exp())
}

fn normalize(v: &mut [f64]) {
    let norm = v.iter().map(|x| x * x).sum::<f64>().sqrt();
    if norm > 1e-12 {
        for x in v.iter_mut() {
            *x /= norm;
        }
    }
}

fn random_unit(rng: &mut impl Rng, n: usize) -> Vec<f64> {
    // Box-Muller-free: sample from a symmetric triangular-ish distribution
    // and normalize; direction uniformity is not critical here.
    let mut v: Vec<f64> = (0..n).map(|_| rng.random_range(-1.0..1.0)).collect();
    normalize(&mut v);
    v
}

fn gaussian(rng: &mut impl Rng, sd: f64) -> f64 {
    // Sum of 12 uniforms minus 6 approximates a standard normal.
    let s: f64 = (0..12).map(|_| rng.random_range(0.0..1.0)).sum::<f64>() - 6.0;
    s * sd
}

impl LatentModel {
    /// Generates a prototype-structured latent model.
    ///
    /// * `prototypes[i]` assigns item `i` to one of `n_prototypes`
    ///   clusters;
    /// * item vectors are jittered prototype vectors;
    /// * user vectors are sparse mixtures of 1–3 prototypes.
    pub fn generate(
        n_users: usize,
        prototypes: &[usize],
        n_prototypes: usize,
        n_factors: usize,
        rng: &mut ChaCha8Rng,
    ) -> Self {
        let n_prototypes = n_prototypes.max(1);
        let proto_vecs: Vec<Vec<f64>> = (0..n_prototypes)
            .map(|_| random_unit(rng, n_factors))
            .collect();

        let item_factors: Vec<Vec<f64>> = prototypes
            .iter()
            .map(|&p| {
                let base = &proto_vecs[p.min(n_prototypes - 1)];
                let mut v: Vec<f64> = base.iter().map(|&x| x + gaussian(rng, 0.25)).collect();
                normalize(&mut v);
                v
            })
            .collect();

        let user_factors: Vec<Vec<f64>> = (0..n_users)
            .map(|_| {
                let n_likes = rng.random_range(1..=3usize.min(n_prototypes));
                let mut v = vec![0.0; n_factors];
                let mut chosen: Vec<usize> = (0..n_prototypes).collect();
                chosen.shuffle(rng);
                for &p in chosen.iter().take(n_likes) {
                    let w = rng.random_range(0.5..1.5);
                    for (dst, src) in v.iter_mut().zip(&proto_vecs[p]) {
                        *dst += w * src;
                    }
                }
                for x in v.iter_mut() {
                    *x += gaussian(rng, 0.15);
                }
                normalize(&mut v);
                v
            })
            .collect();

        let item_quality: Vec<f64> = (0..prototypes.len()).map(|_| gaussian(rng, 0.5)).collect();

        Self {
            n_factors,
            user_factors,
            item_factors,
            item_quality,
            gain: 2.5,
        }
    }

    /// Latent dimensionality.
    pub fn n_factors(&self) -> usize {
        self.n_factors
    }

    /// Number of users covered.
    pub fn n_users(&self) -> usize {
        self.user_factors.len()
    }

    /// Number of items covered.
    pub fn n_items(&self) -> usize {
        self.item_factors.len()
    }

    /// The *true* utility of `item` for `user`, in `(0, 1)`. Panics on
    /// out-of-range ids (ground truth is internal to generated worlds).
    pub fn utility(&self, user: UserId, item: ItemId) -> f64 {
        let u = &self.user_factors[user.index()];
        let q = &self.item_factors[item.index()];
        let dot: f64 = u.iter().zip(q).map(|(a, b)| a * b).sum();
        sigmoid(self.gain * dot + self.item_quality[item.index()])
    }

    /// True utility expressed on a rating scale (no noise).
    pub fn true_rating(&self, user: UserId, item: ItemId, scale: &RatingScale) -> f64 {
        scale.denormalize(self.utility(user, item))
    }

    /// A noisy observed rating on `scale`.
    pub fn noisy_rating(
        &self,
        user: UserId,
        item: ItemId,
        noise_sd: f64,
        scale: &RatingScale,
        rng: &mut ChaCha8Rng,
    ) -> f64 {
        let u = (self.utility(user, item) + gaussian(rng, noise_sd)).clamp(0.0, 1.0);
        scale.denormalize(u)
    }

    /// Cosine similarity of two users' latent vectors — the "people like
    /// you" ground truth.
    pub fn user_affinity(&self, a: UserId, b: UserId) -> f64 {
        let va = &self.user_factors[a.index()];
        let vb = &self.user_factors[b.index()];
        va.iter().zip(vb).map(|(x, y)| x * y).sum()
    }
}

/// A fully generated world: catalog + ratings + hidden ground truth.
#[derive(Debug, Clone)]
pub struct World {
    /// The item catalog.
    pub catalog: Catalog,
    /// Observed (sampled) ratings.
    pub ratings: RatingsMatrix,
    /// Hidden ground truth.
    pub latent: LatentModel,
    /// Item → prototype assignment used during generation.
    pub prototypes: Vec<usize>,
    /// Prototype display names (genre/topic/cuisine names).
    pub prototype_names: Vec<String>,
    /// The configuration the world was generated from.
    pub config: WorldConfig,
}

impl World {
    /// Samples ratings and assembles a world from a prepared catalog and
    /// prototype assignment. Used by every domain generator.
    pub fn assemble(
        catalog: Catalog,
        prototypes: Vec<usize>,
        prototype_names: Vec<String>,
        config: &WorldConfig,
        rng: &mut ChaCha8Rng,
    ) -> Self {
        assert_eq!(catalog.len(), prototypes.len());
        let n_items = catalog.len();
        let latent = LatentModel::generate(
            config.n_users,
            &prototypes,
            prototype_names.len(),
            config.n_factors,
            rng,
        );

        // Exposure weights: Zipf-ish over a random popularity order.
        let mut order: Vec<usize> = (0..n_items).collect();
        order.shuffle(rng);
        let mut exposure = vec![0.0; n_items];
        for (rank, &item) in order.iter().enumerate() {
            exposure[item] = 1.0 / ((rank + 1) as f64).powf(config.popularity_skew);
        }
        let exposure_sum: f64 = exposure.iter().sum();

        let mut ratings = RatingsMatrix::new(config.n_users, n_items, config.scale);
        let per_user = ((n_items as f64 * config.density).round() as usize).clamp(1, n_items);

        for u in 0..config.n_users {
            let user = UserId::new(u as u32);
            let mut rated = 0usize;
            let mut guard = 0usize;
            while rated < per_user && guard < per_user * 50 {
                guard += 1;
                // Sample an item by exposure weight.
                let mut pick = rng.random_range(0.0..exposure_sum);
                let mut idx = 0usize;
                for (i, &w) in exposure.iter().enumerate() {
                    pick -= w;
                    if pick <= 0.0 {
                        idx = i;
                        break;
                    }
                }
                let item = ItemId::new(idx as u32);
                if ratings.rating(user, item).is_some() {
                    continue;
                }
                // Mild self-selection: users are more likely to have
                // consumed (and thus rated) items they like.
                let util = latent.utility(user, item);
                if rng.random_range(0.0..1.0) > 0.35 + 0.65 * util {
                    continue;
                }
                let v = latent.noisy_rating(user, item, config.noise_sd, &config.scale, rng);
                ratings
                    .rate(user, item, v)
                    .expect("generated ids are in range");
                rated += 1;
            }
        }

        Self {
            catalog,
            ratings,
            latent,
            prototypes,
            prototype_names,
            config: config.clone(),
        }
    }

    /// The prototype (genre/topic/…) name of an item.
    pub fn prototype_of(&self, item: ItemId) -> &str {
        &self.prototype_names[self.prototypes[item.index()]]
    }

    /// The prototype a user truly likes most, determined by averaging true
    /// utility per prototype. Studies use this as the "teach the system I
    /// like comedies" target.
    pub fn favourite_prototype(&self, user: UserId) -> usize {
        let mut sums = vec![0.0f64; self.prototype_names.len()];
        let mut counts = vec![0usize; self.prototype_names.len()];
        for item in self.catalog.ids() {
            let p = self.prototypes[item.index()];
            sums[p] += self.latent.utility(user, item);
            counts[p] += 1;
        }
        let mut best = 0;
        let mut best_score = f64::MIN;
        for p in 0..sums.len() {
            if counts[p] > 0 {
                let s = sums[p] / counts[p] as f64;
                if s > best_score {
                    best_score = s;
                    best = p;
                }
            }
        }
        best
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_world() -> World {
        movies::generate(&WorldConfig {
            n_users: 30,
            n_items: 40,
            density: 0.3,
            ..WorldConfig::default()
        })
    }

    #[test]
    fn generation_is_deterministic() {
        let a = small_world();
        let b = small_world();
        assert_eq!(a.ratings, b.ratings);
        assert_eq!(
            a.catalog.iter().map(|i| &i.title).collect::<Vec<_>>(),
            b.catalog.iter().map(|i| &i.title).collect::<Vec<_>>()
        );
    }

    #[test]
    fn different_seeds_differ() {
        let a = movies::generate(&WorldConfig::default().with_seed(1));
        let b = movies::generate(&WorldConfig::default().with_seed(2));
        assert_ne!(a.ratings, b.ratings);
    }

    #[test]
    fn utilities_in_unit_interval() {
        let w = small_world();
        for u in w.ratings.users().take(10) {
            for i in w.catalog.ids().take(10) {
                let util = w.latent.utility(u, i);
                assert!(util > 0.0 && util < 1.0, "utility {util} out of range");
            }
        }
    }

    #[test]
    fn ratings_are_on_scale() {
        let w = small_world();
        for (_, _, v) in w.ratings.triples() {
            assert!(w.ratings.scale().contains(v));
        }
    }

    #[test]
    fn ratings_roughly_match_density() {
        let w = small_world();
        let expected = (w.catalog.len() as f64 * 0.3).round() as usize * 30;
        let got = w.ratings.n_ratings();
        assert!(
            got as f64 > expected as f64 * 0.5,
            "got {got}, expected near {expected}"
        );
    }

    #[test]
    fn ratings_correlate_with_true_utility() {
        let w = small_world();
        let mut num = 0.0;
        let mut du = 0.0;
        let mut dv = 0.0;
        let (mut mu, mut mv, mut n) = (0.0, 0.0, 0.0);
        let pairs: Vec<(f64, f64)> = w
            .ratings
            .triples()
            .map(|(u, i, v)| (w.latent.utility(u, i), v))
            .collect();
        for &(a, b) in &pairs {
            mu += a;
            mv += b;
            n += 1.0;
        }
        mu /= n;
        mv /= n;
        for &(a, b) in &pairs {
            num += (a - mu) * (b - mv);
            du += (a - mu) * (a - mu);
            dv += (b - mv) * (b - mv);
        }
        let r = num / (du.sqrt() * dv.sqrt());
        assert!(r > 0.6, "observed ratings should track true utility, r={r}");
    }

    #[test]
    fn favourite_prototype_is_stable() {
        let w = small_world();
        let u = UserId::new(0);
        assert_eq!(w.favourite_prototype(u), w.favourite_prototype(u));
        assert!(w.favourite_prototype(u) < w.prototype_names.len());
    }

    #[test]
    fn user_affinity_symmetric() {
        let w = small_world();
        let (a, b) = (UserId::new(1), UserId::new(2));
        assert!((w.latent.user_affinity(a, b) - w.latent.user_affinity(b, a)).abs() < 1e-12);
        assert!((w.latent.user_affinity(a, a) - 1.0).abs() < 1e-9);
    }
}

//! Synthetic holiday world (survey Figure 1 / Table 4 row "SASY" — the
//! scrutable adaptive hypertext demo, and Table 4 row "Top Case").

use super::{names, World, WorldConfig};
use crate::catalog::Catalog;
use exrec_types::{AttributeDef, AttributeSet, Direction, DomainSchema};
use rand::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Holiday styles used as latent prototypes.
pub const STYLES: &[&str] = &["beach", "city", "ski", "adventure", "countryside"];

/// The holiday domain schema.
pub fn schema() -> DomainSchema {
    DomainSchema::new(
        "holidays",
        vec![
            AttributeDef::categorical("style", "Style"),
            AttributeDef::categorical("climate", "Climate"),
            AttributeDef::numeric("price", "Price", Direction::LowerIsBetter)
                .with_unit("$")
                .with_comparatives("More Expensive", "Cheaper"),
            AttributeDef::numeric("days", "Days", Direction::Neutral),
            AttributeDef::flag("kid_friendly", "Kid Friendly"),
            AttributeDef::flag("nightlife", "Nightlife"),
        ],
    )
    .expect("static schema is valid")
}

fn climate_for(style: usize, rng: &mut ChaCha8Rng) -> &'static str {
    match style {
        0 => "hot",
        2 => "cold",
        _ => ["mild", "hot", "cold"][rng.random_range(0..3)],
    }
}

/// Generates a holiday world from `cfg`.
pub fn generate(cfg: &WorldConfig) -> World {
    let mut rng = ChaCha8Rng::seed_from_u64(cfg.seed ^ 0x484F4C49); // "HOLI"
    let mut catalog = Catalog::new(schema());
    let mut prototypes = Vec::with_capacity(cfg.n_items);

    for k in 0..cfg.n_items {
        let style_idx = if k < STYLES.len() {
            k
        } else {
            rng.random_range(0..STYLES.len())
        };
        let place = names::pseudo_word(&mut rng);
        let title = format!("{place} {}", capitalize(STYLES[style_idx]));
        let attrs = AttributeSet::new()
            .with("style", STYLES[style_idx])
            .with("climate", climate_for(style_idx, &mut rng))
            .with("price", rng.random_range(300..3000) as f64)
            .with("days", rng.random_range(3..15) as f64)
            .with("kid_friendly", rng.random_range(0.0..1.0) < 0.5)
            .with("nightlife", rng.random_range(0.0..1.0) < 0.45);
        catalog
            .add(&title, attrs, vec![STYLES[style_idx].to_string()])
            .expect("generated attrs conform to schema");
        prototypes.push(style_idx);
    }

    World::assemble(
        catalog,
        prototypes,
        STYLES.iter().map(|s| s.to_string()).collect(),
        cfg,
        &mut rng,
    )
}

fn capitalize(s: &str) -> String {
    let mut chars = s.chars();
    match chars.next() {
        Some(c) => c.to_uppercase().collect::<String>() + chars.as_str(),
        None => String::new(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn beach_is_hot_and_ski_is_cold() {
        let w = generate(&WorldConfig {
            n_items: 30,
            n_users: 10,
            ..WorldConfig::default()
        });
        for item in w.catalog.iter() {
            match item.attrs.cat("style").unwrap() {
                "beach" => assert_eq!(item.attrs.cat("climate"), Some("hot")),
                "ski" => assert_eq!(item.attrs.cat("climate"), Some("cold")),
                _ => {}
            }
        }
    }

    #[test]
    fn prices_in_range() {
        let w = generate(&WorldConfig {
            n_items: 30,
            n_users: 10,
            ..WorldConfig::default()
        });
        for item in w.catalog.iter() {
            let p = item.attrs.num("price").unwrap();
            assert!((300.0..3000.0).contains(&p));
        }
    }
}

//! Plain-text import/export for ratings (`user,item,rating` lines).
//!
//! The toolkit's studies run on generated worlds, but a downstream user
//! adopting the library will have real ratings. This module reads and
//! writes the venerable comma-separated triple format (MovieLens-style),
//! with `#`-comment and blank-line tolerance and precise error positions.

use crate::matrix::RatingsMatrix;
use exrec_types::{Error, ItemId, RatingScale, Result, UserId};
use std::fmt::Write as _;

/// Serializes a matrix as `user,item,rating` lines (header comment
/// included), user-major order.
pub fn to_csv(matrix: &RatingsMatrix) -> String {
    let mut out = String::with_capacity(matrix.n_ratings() * 12 + 64);
    let _ = writeln!(
        out,
        "# exrec ratings: scale {} ({} users, {} items)",
        matrix.scale(),
        matrix.n_users(),
        matrix.n_items()
    );
    let _ = writeln!(out, "# user,item,rating");
    for (u, i, v) in matrix.triples() {
        let _ = writeln!(out, "{},{},{}", u.raw(), i.raw(), v);
    }
    out
}

/// Parses `user,item,rating` lines into a matrix on `scale`. The id
/// spaces are sized to the maximum ids seen (+1). Blank lines and lines
/// starting with `#` are skipped. Duplicate pairs keep the *last* value
/// (the natural semantics of an append-only rating log).
///
/// # Errors
///
/// Returns [`Error::CorruptSnapshot`] with a 1-based line number for any
/// malformed line, and propagates off-scale rating errors.
pub fn from_csv(text: &str, scale: RatingScale) -> Result<RatingsMatrix> {
    let mut triples: Vec<(u32, u32, f64)> = Vec::new();
    let (mut max_user, mut max_item) = (0u32, 0u32);
    for (lineno, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut parts = line.split(',');
        let bad = |what: &str| Error::CorruptSnapshot {
            detail: format!("line {}: {what}: {line:?}", lineno + 1),
        };
        let user: u32 = parts
            .next()
            .and_then(|s| s.trim().parse().ok())
            .ok_or_else(|| bad("bad user id"))?;
        let item: u32 = parts
            .next()
            .and_then(|s| s.trim().parse().ok())
            .ok_or_else(|| bad("bad item id"))?;
        let rating: f64 = parts
            .next()
            .and_then(|s| s.trim().parse().ok())
            .ok_or_else(|| bad("bad rating"))?;
        if parts.next().is_some() {
            return Err(bad("trailing fields"));
        }
        max_user = max_user.max(user);
        max_item = max_item.max(item);
        triples.push((user, item, rating));
    }
    let mut matrix = if triples.is_empty() {
        RatingsMatrix::new(0, 0, scale)
    } else {
        RatingsMatrix::new(max_user as usize + 1, max_item as usize + 1, scale)
    };
    for (u, i, v) in triples {
        matrix.rate(UserId::new(u), ItemId::new(i), v)?;
    }
    Ok(matrix)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn matrix() -> RatingsMatrix {
        let mut m = RatingsMatrix::new(3, 4, RatingScale::FIVE_STAR);
        m.rate(UserId(0), ItemId(2), 4.0).unwrap();
        m.rate(UserId(2), ItemId(0), 1.0).unwrap();
        m.rate(UserId(1), ItemId(3), 5.0).unwrap();
        m
    }

    #[test]
    fn round_trip() {
        let m = matrix();
        let csv = to_csv(&m);
        let back = from_csv(&csv, *m.scale()).unwrap();
        // Id spaces shrink to max-seen, so compare triples, not matrices.
        let a: Vec<_> = m.triples().collect();
        let b: Vec<_> = back.triples().collect();
        assert_eq!(a, b);
    }

    #[test]
    fn tolerates_comments_blanks_and_spaces() {
        let csv = "# header\n\n 0 , 1 , 3.0 \n# mid comment\n1,0,4\n";
        let m = from_csv(csv, RatingScale::FIVE_STAR).unwrap();
        assert_eq!(m.n_ratings(), 2);
        assert_eq!(m.rating(UserId(0), ItemId(1)), Some(3.0));
        assert_eq!(m.rating(UserId(1), ItemId(0)), Some(4.0));
    }

    #[test]
    fn duplicates_keep_last() {
        let csv = "0,0,1\n0,0,5\n";
        let m = from_csv(csv, RatingScale::FIVE_STAR).unwrap();
        assert_eq!(m.n_ratings(), 1);
        assert_eq!(m.rating(UserId(0), ItemId(0)), Some(5.0));
    }

    #[test]
    fn errors_carry_line_numbers() {
        for (csv, needle) in [
            ("0,1\n", "line 1"),
            ("# ok\nx,1,3\n", "line 2: bad user"),
            ("0,1,3,9\n", "trailing fields"),
            ("0,1,notanumber\n", "bad rating"),
        ] {
            let err = from_csv(csv, RatingScale::FIVE_STAR).unwrap_err();
            assert!(
                err.to_string().contains(needle),
                "{csv:?} should mention {needle}, got {err}"
            );
        }
    }

    #[test]
    fn off_scale_ratings_rejected() {
        assert!(from_csv("0,0,9.5\n", RatingScale::FIVE_STAR).is_err());
    }

    #[test]
    fn empty_input_yields_empty_matrix() {
        let m = from_csv("# nothing\n", RatingScale::FIVE_STAR).unwrap();
        assert_eq!(m.n_ratings(), 0);
        assert_eq!(m.n_users(), 0);
    }
}

//! Live, mutable worlds: concurrent rating writes with delta events.
//!
//! A generated [`World`] is immutable by construction; [`MutableWorld`]
//! wraps one behind a reader/writer lock so the serving edge can apply
//! live rating writes while read traffic continues. Each successful
//! write emits fine-grained [`RatingDelta`] events — *which* user/item
//! changed and how — instead of leaning on the matrix's coarse revision
//! counter, which is what lets downstream caches and indexes maintain
//! themselves incrementally rather than rebuilding from scratch.
//!
//! Writes are journaled through an optional [`Wal`] *before* they touch
//! the matrix, and cache/index maintenance runs via a caller-supplied
//! callback **inside the write-lock critical section**. That ordering is
//! load-bearing: if maintenance ran after the lock dropped, two
//! interleaved writes could stamp a similarity-cache shard with a newer
//! revision before an older write's stale entries were evicted, making
//! them readable again. Under the lock, readers only observe the new
//! revision after its maintenance completed.

use std::path::PathBuf;
use std::sync::{Mutex, RwLock, RwLockReadGuard};
use std::time::Instant;

use crate::synth::World;
use crate::wal::{Wal, WalOp, WalRecord, WalStats};
use exrec_types::{Error, ItemId, Result, UserId};

/// One observed change to the ratings matrix.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RatingDelta {
    /// User whose row changed.
    pub user: UserId,
    /// Item whose column changed.
    pub item: ItemId,
    /// Value before the write (`None` = was unrated).
    pub prev: Option<f64>,
    /// Value after the write (`None` = now unrated).
    pub value: Option<f64>,
    /// Matrix revision *after* this delta was applied.
    pub revision: u64,
}

/// What one [`MutableWorld::apply`] call did.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ApplyOutcome {
    /// Ops that changed the matrix (no-op unrates excluded).
    pub applied: u64,
    /// Ops carried by the record (applied + no-ops).
    pub ops: u64,
    /// Matrix revision after the record.
    pub revision: u64,
    /// Time spent appending to the WAL, in nanoseconds (0 without one).
    pub wal_append_ns: u64,
    /// WAL size after the append, in bytes (0 without one).
    pub wal_size_bytes: u64,
}

/// A [`World`] that accepts journaled writes while being served.
#[derive(Debug)]
pub struct MutableWorld {
    world: RwLock<World>,
    wal: Mutex<Option<Wal>>,
}

impl MutableWorld {
    /// Wraps a world with no journal (writes are volatile).
    pub fn new(world: World) -> Self {
        Self::with_wal(world, None)
    }

    /// Wraps a world with an optional journal.
    pub fn with_wal(world: World, wal: Option<Wal>) -> Self {
        Self {
            world: RwLock::new(world),
            wal: Mutex::new(wal),
        }
    }

    /// Read access for serving. Holds the lock until dropped — keep the
    /// guard for the duration of one request, no longer.
    pub fn read(&self) -> RwLockReadGuard<'_, World> {
        self.world.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Validates and applies one record atomically.
    ///
    /// All ops are validated against the current matrix *before*
    /// anything is journaled or applied, so a bad op rejects the whole
    /// record and the matrix/WAL never diverge. On success the record
    /// is appended to the journal (if any), applied to the matrix, and
    /// `sync` runs with the post-write world and the emitted deltas —
    /// still under the write lock, see the module docs for why.
    ///
    /// # Errors
    ///
    /// Validation errors ([`Error::UnknownUser`], [`Error::UnknownItem`],
    /// [`Error::InvalidRating`]) or journal I/O failures; in both cases
    /// the matrix is unchanged.
    pub fn apply<F>(&self, record: &WalRecord, sync: F) -> Result<ApplyOutcome>
    where
        F: FnOnce(&World, &[RatingDelta]),
    {
        let mut world = self.world.write().unwrap_or_else(|e| e.into_inner());
        let ops = record.ops();
        for op in &ops {
            validate(&world, op)?;
        }

        let (wal_append_ns, wal_size_bytes) = {
            let mut wal = self.wal.lock().unwrap_or_else(|e| e.into_inner());
            match wal.as_mut() {
                Some(wal) => {
                    let started = Instant::now();
                    wal.append(record)?;
                    (started.elapsed().as_nanos() as u64, wal.stats().size_bytes)
                }
                None => (0, 0),
            }
        };

        let mut deltas = Vec::with_capacity(ops.len());
        for op in &ops {
            let (item, value) = match *op {
                WalOp::Rate { item, value, .. } => (item, Some(value)),
                WalOp::Unrate { item, .. } => (item, None),
            };
            let prev = op
                .apply(&mut world.ratings)
                .expect("ops were validated before journaling");
            if prev.is_none() && value.is_none() {
                continue; // unrate of an absent rating: nothing changed
            }
            deltas.push(RatingDelta {
                user: op.user(),
                item,
                prev,
                value,
                revision: world.ratings.revision(),
            });
        }
        sync(&world, &deltas);

        Ok(ApplyOutcome {
            applied: deltas.len() as u64,
            ops: ops.len() as u64,
            revision: world.ratings.revision(),
            wal_append_ns,
            wal_size_bytes,
        })
    }

    /// Compacts the journal: snapshots the current matrix beside the WAL
    /// and empties the log, so the next open warm-starts from the
    /// snapshot alone. No-op (returning `None`) without a journal.
    ///
    /// # Errors
    ///
    /// [`Error::Io`] on snapshot or truncation failures.
    pub fn compact(&self) -> Result<Option<PathBuf>> {
        // Read lock is enough: the wal mutex serialises against apply's
        // journal append, and apply holds the *write* lock, so no write
        // can land between the snapshot and the reset.
        let world = self.world.read().unwrap_or_else(|e| e.into_inner());
        let mut wal = self.wal.lock().unwrap_or_else(|e| e.into_inner());
        match wal.as_mut() {
            Some(wal) => wal.compact(&world.ratings).map(Some),
            None => Ok(None),
        }
    }

    /// Journal stats, if a journal is attached.
    pub fn wal_stats(&self) -> Option<WalStats> {
        self.wal
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .as_ref()
            .map(|w| w.stats())
    }
}

fn validate(world: &World, op: &WalOp) -> Result<()> {
    let (user, item) = match *op {
        WalOp::Rate { user, item, value } => {
            if !world.ratings.scale().contains(value) {
                return Err(Error::InvalidRating {
                    value,
                    scale: *world.ratings.scale(),
                });
            }
            (user, item)
        }
        WalOp::Unrate { user, item } => (user, item),
    };
    if user.index() >= world.ratings.n_users() {
        return Err(Error::UnknownUser { user });
    }
    if item.index() >= world.ratings.n_items() {
        return Err(Error::UnknownItem { item });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synth::{movies, WorldConfig};

    fn world() -> World {
        movies::generate(&WorldConfig {
            n_users: 12,
            n_items: 10,
            density: 0.3,
            seed: 7,
            ..WorldConfig::default()
        })
    }

    #[test]
    fn apply_emits_deltas_and_bumps_revision() {
        let live = MutableWorld::new(world());
        let before = live.read().ratings.revision();
        let mut seen = Vec::new();
        let outcome = live
            .apply(
                &WalRecord::Rate {
                    user: UserId(1),
                    item: ItemId(2),
                    value: 4.0,
                },
                |w, deltas| {
                    assert_eq!(w.ratings.rating(UserId(1), ItemId(2)), Some(4.0));
                    seen = deltas.to_vec();
                },
            )
            .unwrap();
        assert_eq!(outcome.applied, 1);
        assert_eq!(outcome.revision, before + 1);
        assert_eq!(seen.len(), 1);
        assert_eq!(seen[0].user, UserId(1));
        assert_eq!(seen[0].value, Some(4.0));
        assert_eq!(seen[0].revision, before + 1);
    }

    #[test]
    fn invalid_op_rejects_whole_batch() {
        let live = MutableWorld::new(world());
        let before = live.read().ratings.clone();
        let record = WalRecord::Batch(vec![
            WalOp::Rate {
                user: UserId(0),
                item: ItemId(0),
                value: 3.0,
            },
            WalOp::Rate {
                user: UserId(999),
                item: ItemId(0),
                value: 3.0,
            },
        ]);
        let err = live.apply(&record, |_, _| panic!("sync must not run"));
        assert!(matches!(err, Err(Error::UnknownUser { .. })));
        assert_eq!(
            *live.read().ratings.triples().collect::<Vec<_>>(),
            *before.triples().collect::<Vec<_>>()
        );
    }

    #[test]
    fn noop_unrate_emits_no_delta() {
        let live = MutableWorld::new(world());
        // Find an unrated pair.
        let (user, item) = {
            let w = live.read();
            let mut found = None;
            'outer: for u in 0..w.ratings.n_users() {
                for i in 0..w.ratings.n_items() {
                    if w.ratings
                        .rating(UserId(u as u32), ItemId(i as u32))
                        .is_none()
                    {
                        found = Some((UserId(u as u32), ItemId(i as u32)));
                        break 'outer;
                    }
                }
            }
            found.expect("sparse world has unrated pairs")
        };
        let before = live.read().ratings.revision();
        let outcome = live
            .apply(&WalRecord::Unrate { user, item }, |_, deltas| {
                assert!(deltas.is_empty())
            })
            .unwrap();
        assert_eq!(outcome.applied, 0);
        assert_eq!(outcome.ops, 1);
        assert_eq!(outcome.revision, before);
    }

    #[test]
    fn journaled_writes_replay_after_restart() {
        let dir = std::env::temp_dir().join(format!("exrec-live-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("live.wal");
        let _ = std::fs::remove_file(&path);

        let (wal, replayed) = Wal::open(&path, crate::wal::FsyncPolicy::Never).unwrap();
        assert!(replayed.is_empty());
        let live = MutableWorld::with_wal(world(), Some(wal));
        live.apply(
            &WalRecord::Rate {
                user: UserId(2),
                item: ItemId(3),
                value: 2.0,
            },
            |_, _| {},
        )
        .unwrap();
        let expect = live.read().ratings.clone();
        drop(live);

        // "Crash" (no compaction): regenerate the same base world and
        // replay the journal tail on top.
        let mut fresh = world();
        let (_, records) = Wal::open(&path, crate::wal::FsyncPolicy::Never).unwrap();
        crate::wal::replay_into(&mut fresh.ratings, &records).unwrap();
        assert_eq!(fresh.ratings, expect);
        let _ = std::fs::remove_dir_all(&dir);
    }
}

//! Train/test splitting of ratings matrices.
//!
//! Accuracy-adjacent effectiveness metrics (survey Section 3.5 relates
//! effectiveness to precision/recall) need held-out ratings. Splits are
//! per-user and seeded, so every study is reproducible.

use crate::matrix::RatingsMatrix;
use exrec_types::{ItemId, UserId};
use rand::seq::SliceRandom;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// A held-out test set: `(user, item, true_rating)` triples, with the
/// corresponding training matrix.
#[derive(Debug, Clone)]
pub struct Split {
    /// Training matrix (test ratings removed).
    pub train: RatingsMatrix,
    /// Held-out triples.
    pub test: Vec<(UserId, ItemId, f64)>,
}

/// Splits `matrix` per user: each user's ratings are shuffled (seeded) and
/// `test_fraction` of them (rounded down, but at most `ratings - 1` so
/// every user keeps at least one training rating) are held out.
///
/// `test_fraction` is clamped into `[0, 1]`.
pub fn holdout(matrix: &RatingsMatrix, test_fraction: f64, seed: u64) -> Split {
    let frac = test_fraction.clamp(0.0, 1.0);
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut train = matrix.clone();
    let mut test = Vec::new();

    for user in matrix.users() {
        let mut rated: Vec<(ItemId, f64)> = matrix.user_ratings(user).to_vec();
        if rated.len() < 2 {
            continue;
        }
        rated.shuffle(&mut rng);
        let n_test = ((rated.len() as f64 * frac) as usize).min(rated.len() - 1);
        for &(item, value) in rated.iter().take(n_test) {
            train
                .unrate(user, item)
                .expect("ids come from the matrix itself");
            test.push((user, item, value));
        }
    }
    Split { train, test }
}

/// Produces `k` cross-validation folds. Each rating lands in exactly one
/// fold's test set; every fold's training matrix is the original matrix
/// minus that fold's test triples.
///
/// `k` is clamped to at least 2.
pub fn k_folds(matrix: &RatingsMatrix, k: usize, seed: u64) -> Vec<Split> {
    let k = k.max(2);
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut triples: Vec<(UserId, ItemId, f64)> = matrix.triples().collect();
    triples.shuffle(&mut rng);

    let mut folds: Vec<Vec<(UserId, ItemId, f64)>> = vec![Vec::new(); k];
    for (n, t) in triples.into_iter().enumerate() {
        folds[n % k].push(t);
    }

    folds
        .into_iter()
        .map(|test| {
            let mut train = matrix.clone();
            for &(u, i, _) in &test {
                train.unrate(u, i).expect("ids come from the matrix itself");
            }
            Split { train, test }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use exrec_types::RatingScale;

    fn matrix() -> RatingsMatrix {
        let mut m = RatingsMatrix::new(4, 10, RatingScale::FIVE_STAR);
        for u in 0..4u32 {
            for i in 0..10u32 {
                if (u + i) % 2 == 0 {
                    m.rate(UserId(u), ItemId(i), ((u + i) % 5 + 1) as f64)
                        .unwrap();
                }
            }
        }
        m
    }

    #[test]
    fn holdout_preserves_total_ratings() {
        let m = matrix();
        let s = holdout(&m, 0.2, 7);
        assert_eq!(s.train.n_ratings() + s.test.len(), m.n_ratings());
        assert!(!s.test.is_empty());
        for &(u, i, v) in &s.test {
            assert_eq!(s.train.rating(u, i), None, "held-out pair still in train");
            assert_eq!(m.rating(u, i), Some(v));
        }
    }

    #[test]
    fn holdout_keeps_one_training_rating_per_user() {
        let m = matrix();
        let s = holdout(&m, 1.0, 7);
        for u in m.users() {
            if !m.user_ratings(u).is_empty() {
                assert!(
                    !s.train.user_ratings(u).is_empty(),
                    "user {u} lost all training ratings"
                );
            }
        }
    }

    #[test]
    fn holdout_is_deterministic() {
        let m = matrix();
        let a = holdout(&m, 0.3, 42);
        let b = holdout(&m, 0.3, 42);
        assert_eq!(a.test, b.test);
        let c = holdout(&m, 0.3, 43);
        assert_ne!(a.test, c.test, "different seeds should differ");
    }

    #[test]
    fn k_folds_partition_ratings() {
        let m = matrix();
        let folds = k_folds(&m, 4, 1);
        assert_eq!(folds.len(), 4);
        let total: usize = folds.iter().map(|f| f.test.len()).sum();
        assert_eq!(total, m.n_ratings());
        for f in &folds {
            assert_eq!(f.train.n_ratings() + f.test.len(), m.n_ratings());
        }
    }

    #[test]
    fn k_is_clamped() {
        let m = matrix();
        let folds = k_folds(&m, 0, 1);
        assert_eq!(folds.len(), 2);
    }

    #[test]
    fn zero_fraction_holds_out_nothing() {
        let m = matrix();
        let s = holdout(&m, 0.0, 1);
        assert!(s.test.is_empty());
        assert_eq!(s.train.n_ratings(), m.n_ratings());
    }
}

//! # exrec-data
//!
//! Data substrate for the `exrec` toolkit: sparse ratings matrices, item
//! catalogs, lightweight text processing, train/test splitting, binary
//! snapshots, and — because the survey's evidence base is proprietary
//! deployments (TiVo, Amazon, MovieLens) — *synthetic world generators*
//! with latent-factor ground truth for every domain the survey touches:
//! movies, news, books, digital cameras, restaurants and holidays.
//!
//! Ground truth matters: effectiveness (survey Section 3.5) is measured as
//! the gap between a user's pre-consumption estimate and their true
//! post-consumption liking, which only a generative world model can
//! provide.
//!
//! The [`RatingsMatrix`] additionally carries a monotone *revision
//! counter* ([`RatingsMatrix::revision`]) bumped by every successful
//! mutation. Derived caches — most prominently the sharded similarity
//! cache in `exrec-algo` — key their entries to it, which makes cache
//! invalidation lazy, exact, and free when nothing changed. The counter
//! is deliberately excluded from equality: two matrices with the same
//! content compare equal regardless of their edit histories.

#![deny(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod catalog;
pub mod csv;
pub mod live;
pub mod matrix;
pub mod snapshot;
pub mod split;
pub mod synth;
pub mod text;
pub mod wal;

pub use catalog::Catalog;
pub use live::{ApplyOutcome, MutableWorld, RatingDelta};
pub use matrix::RatingsMatrix;
pub use synth::{LatentModel, World, WorldConfig};
pub use wal::{FsyncPolicy, Wal, WalOp, WalRecord};

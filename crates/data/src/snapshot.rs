//! Compact binary snapshots of ratings matrices.
//!
//! Studies operate on generated worlds; snapshotting the ratings matrix
//! lets a benchmark harness stash a workload and reload it without
//! re-running generation. The format is a simple little-endian layout:
//!
//! ```text
//! magic  b"EXRS"      4 bytes
//! version u8          currently 1
//! scale  min,max,step 3 × f64
//! n_users u32
//! n_items u32
//! n_ratings u64
//! triples (user u32, item u32, value f64) × n_ratings
//! ```

use crate::matrix::RatingsMatrix;
use bytes::{Buf, BufMut, Bytes, BytesMut};
use exrec_types::{Error, ItemId, RatingScale, Result, UserId};

const MAGIC: &[u8; 4] = b"EXRS";
const VERSION: u8 = 1;

/// Upper bound on either dimension of a decoded matrix. Protects decode
/// from allocating gigabytes off a corrupted header (a flipped bit in the
/// `n_users` field would otherwise request a multi-GB `Vec` before any
/// triple is validated).
pub const MAX_DIMENSION: usize = 16_777_216;

/// Serializes a matrix into the snapshot format.
pub fn encode(matrix: &RatingsMatrix) -> Bytes {
    let mut buf = BytesMut::with_capacity(33 + matrix.n_ratings() * 16);
    buf.put_slice(MAGIC);
    buf.put_u8(VERSION);
    buf.put_f64_le(matrix.scale().min());
    buf.put_f64_le(matrix.scale().max());
    buf.put_f64_le(matrix.scale().step());
    buf.put_u32_le(matrix.n_users() as u32);
    buf.put_u32_le(matrix.n_items() as u32);
    buf.put_u64_le(matrix.n_ratings() as u64);
    for (u, i, v) in matrix.triples() {
        buf.put_u32_le(u.raw());
        buf.put_u32_le(i.raw());
        buf.put_f64_le(v);
    }
    buf.freeze()
}

/// Deserializes a snapshot produced by [`encode`].
///
/// # Errors
///
/// Returns [`Error::CorruptSnapshot`] on truncated input, a bad magic or
/// version, or out-of-range ids/values, and propagates scale/rating
/// validation errors.
pub fn decode(mut data: &[u8]) -> Result<RatingsMatrix> {
    fn need(data: &[u8], n: usize, what: &str) -> Result<()> {
        if data.remaining() < n {
            Err(Error::CorruptSnapshot {
                detail: format!("truncated while reading {what}"),
            })
        } else {
            Ok(())
        }
    }

    need(data, 5, "header")?;
    let mut magic = [0u8; 4];
    data.copy_to_slice(&mut magic);
    if &magic != MAGIC {
        return Err(Error::CorruptSnapshot {
            detail: "bad magic".to_owned(),
        });
    }
    let version = data.get_u8();
    if version != VERSION {
        return Err(Error::CorruptSnapshot {
            detail: format!("unsupported version {version}"),
        });
    }

    need(data, 24 + 4 + 4 + 8, "dimensions")?;
    let min = data.get_f64_le();
    let max = data.get_f64_le();
    let step = data.get_f64_le();
    let scale = RatingScale::new(min, max, step)?;
    let n_users = data.get_u32_le() as usize;
    let n_items = data.get_u32_le() as usize;
    let n_ratings = data.get_u64_le() as usize;
    if n_users > MAX_DIMENSION || n_items > MAX_DIMENSION {
        return Err(Error::CorruptSnapshot {
            detail: format!("implausible dimensions {n_users}x{n_items}"),
        });
    }

    need(data, n_ratings.saturating_mul(16), "triples")?;
    let mut matrix = RatingsMatrix::new(n_users, n_items, scale);
    for _ in 0..n_ratings {
        let u = UserId::new(data.get_u32_le());
        let i = ItemId::new(data.get_u32_le());
        let v = data.get_f64_le();
        matrix.rate(u, i, v)?;
    }
    Ok(matrix)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn matrix() -> RatingsMatrix {
        let mut m = RatingsMatrix::new(3, 5, RatingScale::HALF_STAR);
        m.rate(UserId(0), ItemId(1), 4.5).unwrap();
        m.rate(UserId(2), ItemId(4), 0.5).unwrap();
        m.rate(UserId(1), ItemId(0), 3.0).unwrap();
        m
    }

    #[test]
    fn round_trip() {
        let m = matrix();
        let bytes = encode(&m);
        let back = decode(&bytes).unwrap();
        assert_eq!(back, m);
    }

    #[test]
    fn round_trip_empty() {
        let m = RatingsMatrix::new(0, 0, RatingScale::FIVE_STAR);
        assert_eq!(decode(&encode(&m)).unwrap(), m);
    }

    #[test]
    fn rejects_bad_magic() {
        let mut bytes = encode(&matrix()).to_vec();
        bytes[0] = b'X';
        assert!(matches!(decode(&bytes), Err(Error::CorruptSnapshot { .. })));
    }

    #[test]
    fn rejects_bad_version() {
        let mut bytes = encode(&matrix()).to_vec();
        bytes[4] = 99;
        let err = decode(&bytes).unwrap_err();
        assert!(err.to_string().contains("version"));
    }

    #[test]
    fn rejects_truncation() {
        let bytes = encode(&matrix());
        for cut in [0, 3, 8, 30, bytes.len() - 1] {
            assert!(decode(&bytes[..cut]).is_err(), "cut at {cut} should fail");
        }
    }

    #[test]
    fn rejects_implausible_dimensions() {
        // A flipped bit in the header must not trigger a huge allocation.
        let mut bytes = encode(&matrix()).to_vec();
        bytes[29..33].copy_from_slice(&u32::MAX.to_le_bytes()); // n_users
        let err = decode(&bytes).unwrap_err();
        assert!(err.to_string().contains("implausible"));
    }

    #[test]
    fn rejects_out_of_range_ids() {
        // Hand-craft a snapshot whose triple references user 9 of 1.
        let mut m = RatingsMatrix::new(10, 10, RatingScale::FIVE_STAR);
        m.rate(UserId(9), ItemId(9), 5.0).unwrap();
        let mut bytes = encode(&m).to_vec();
        // Patch n_users down to 1 (offset: 4 magic + 1 version + 24 scale).
        bytes[29..33].copy_from_slice(&1u32.to_le_bytes());
        assert!(decode(&bytes).is_err());
    }
}

//! Item catalogs.
//!
//! A [`Catalog`] owns a [`DomainSchema`] and a dense vector of items
//! validated against it. Ids are assigned at insertion, so `ItemId(k)`
//! always indexes position `k`.

use exrec_types::{AttributeSet, DomainSchema, Error, Item, ItemId, Result};

/// A schema-validated, densely-indexed collection of items.
#[derive(Debug, Clone, PartialEq)]
pub struct Catalog {
    schema: DomainSchema,
    items: Vec<Item>,
}

impl Catalog {
    /// Creates an empty catalog over `schema`.
    pub fn new(schema: DomainSchema) -> Self {
        Self {
            schema,
            items: Vec::new(),
        }
    }

    /// The domain schema.
    #[inline]
    pub fn schema(&self) -> &DomainSchema {
        &self.schema
    }

    /// Number of items.
    #[inline]
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether the catalog is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Adds an item, assigning and returning its id. The item's attributes
    /// are validated against the schema.
    ///
    /// # Errors
    ///
    /// Propagates schema validation errors
    /// ([`Error::UnknownAttribute`], [`Error::KindMismatch`]).
    pub fn add(
        &mut self,
        title: &str,
        attrs: AttributeSet,
        keywords: Vec<String>,
    ) -> Result<ItemId> {
        self.schema.validate(&attrs)?;
        let id = ItemId::new(self.items.len() as u32);
        self.items.push(
            Item::new(id, title)
                .with_attrs(attrs)
                .with_keywords(keywords),
        );
        Ok(id)
    }

    /// Looks an item up by id.
    ///
    /// # Errors
    ///
    /// Returns [`Error::UnknownItem`] for out-of-range ids.
    pub fn get(&self, id: ItemId) -> Result<&Item> {
        self.items
            .get(id.index())
            .ok_or(Error::UnknownItem { item: id })
    }

    /// Looks an item up by exact title (first match).
    pub fn by_title(&self, title: &str) -> Option<&Item> {
        self.items.iter().find(|it| it.title == title)
    }

    /// Iterates over all items in id order.
    pub fn iter(&self) -> impl Iterator<Item = &Item> {
        self.items.iter()
    }

    /// Iterates over all item ids.
    pub fn ids(&self) -> impl Iterator<Item = ItemId> + '_ {
        (0..self.items.len() as u32).map(ItemId::new)
    }

    /// Items whose categorical attribute `name` equals `value`.
    pub fn with_category<'a>(
        &'a self,
        name: &'a str,
        value: &'a str,
    ) -> impl Iterator<Item = &'a Item> {
        self.items
            .iter()
            .filter(move |it| it.attrs.cat(name) == Some(value))
    }

    /// The distinct values of a categorical attribute, sorted.
    pub fn category_values(&self, name: &str) -> Vec<String> {
        let mut vals: Vec<String> = self
            .items
            .iter()
            .filter_map(|it| it.attrs.cat(name).map(str::to_owned))
            .collect();
        vals.sort_unstable();
        vals.dedup();
        vals
    }

    /// The `(min, max)` range of a numeric attribute over the catalog, or
    /// `None` when no item carries it.
    pub fn numeric_range(&self, name: &str) -> Option<(f64, f64)> {
        let mut range: Option<(f64, f64)> = None;
        for it in &self.items {
            if let Some(v) = it.attrs.num(name) {
                range = Some(match range {
                    None => (v, v),
                    Some((lo, hi)) => (lo.min(v), hi.max(v)),
                });
            }
        }
        range
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use exrec_types::{AttributeDef, Direction};

    fn catalog() -> Catalog {
        let schema = DomainSchema::new(
            "books",
            vec![
                AttributeDef::categorical("author", "Author"),
                AttributeDef::categorical("genre", "Genre"),
                AttributeDef::numeric("pages", "Pages", Direction::Neutral),
            ],
        )
        .unwrap();
        let mut c = Catalog::new(schema);
        c.add(
            "Great Expectations",
            AttributeSet::new()
                .with("author", "Charles Dickens")
                .with("genre", "classic")
                .with("pages", 505.0),
            vec!["orphan".into(), "victorian".into()],
        )
        .unwrap();
        c.add(
            "Oliver Twist",
            AttributeSet::new()
                .with("author", "Charles Dickens")
                .with("genre", "classic")
                .with("pages", 424.0),
            vec!["orphan".into(), "london".into()],
        )
        .unwrap();
        c.add(
            "Dune",
            AttributeSet::new()
                .with("author", "Frank Herbert")
                .with("genre", "scifi")
                .with("pages", 412.0),
            vec!["desert".into(), "spice".into()],
        )
        .unwrap();
        c
    }

    #[test]
    fn ids_are_dense_and_ordered() {
        let c = catalog();
        assert_eq!(c.len(), 3);
        for (k, it) in c.iter().enumerate() {
            assert_eq!(it.id, ItemId::new(k as u32));
        }
    }

    #[test]
    fn get_and_by_title() {
        let c = catalog();
        assert_eq!(c.get(ItemId::new(1)).unwrap().title, "Oliver Twist");
        assert!(matches!(
            c.get(ItemId::new(99)),
            Err(Error::UnknownItem { .. })
        ));
        assert_eq!(c.by_title("Dune").unwrap().id, ItemId::new(2));
        assert!(c.by_title("Missing").is_none());
    }

    #[test]
    fn schema_enforced_on_add() {
        let mut c = catalog();
        let err = c.add(
            "Bad",
            AttributeSet::new().with("publisher", "X"),
            Vec::new(),
        );
        assert!(matches!(err, Err(Error::UnknownAttribute { .. })));
    }

    #[test]
    fn category_queries() {
        let c = catalog();
        let dickens: Vec<_> = c.with_category("author", "Charles Dickens").collect();
        assert_eq!(dickens.len(), 2);
        assert_eq!(c.category_values("genre"), vec!["classic", "scifi"]);
    }

    #[test]
    fn numeric_range() {
        let c = catalog();
        assert_eq!(c.numeric_range("pages"), Some((412.0, 505.0)));
        assert_eq!(c.numeric_range("weight"), None);
    }
}

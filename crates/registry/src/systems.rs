//! Descriptors for the systems of the survey's Tables 2–4.

use exrec_core::aims::{Aim, AimProfile};
use exrec_core::style::ExplanationStyle;
use exrec_interact::mode::InteractionMode;
use exrec_present::mode::PresentationMode;

/// Commercial or academic system.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SystemKind {
    /// Table 3.
    Commercial,
    /// Table 4.
    Academic,
}

/// One row of Table 3 or 4.
#[derive(Debug, Clone, PartialEq)]
pub struct SystemDescriptor {
    /// System name as printed in the survey.
    pub name: &'static str,
    /// Commercial or academic.
    pub kind: SystemKind,
    /// Survey citation key (academic systems), e.g. `"[5]"`.
    pub citation: Option<&'static str>,
    /// The "Item type" column.
    pub item_type: &'static str,
    /// The "Presentation" column.
    pub presentation: Vec<PresentationMode>,
    /// The "Explanation" column.
    pub explanation: Vec<ExplanationStyle>,
    /// The "Interaction" column.
    pub interaction: Vec<InteractionMode>,
    /// Aims pursued (Table 2; reconstructed for academic systems).
    pub aims: AimProfile,
    /// Which toolkit emulation backs this row, if any (see [`crate::live`]).
    pub emulation: Option<&'static str>,
}

impl SystemDescriptor {
    /// The presentation column as printed.
    pub fn presentation_text(&self) -> String {
        self.presentation
            .iter()
            .map(|p| p.name())
            .collect::<Vec<_>>()
            .join(", ")
    }

    /// The explanation column as printed.
    pub fn explanation_text(&self) -> String {
        self.explanation
            .iter()
            .map(|e| e.name())
            .collect::<Vec<_>>()
            .join(", ")
    }

    /// The interaction column as printed.
    pub fn interaction_text(&self) -> String {
        self.interaction
            .iter()
            .map(|i| i.name())
            .collect::<Vec<_>>()
            .join(", ")
    }
}

/// The eight commercial systems of Table 3, verbatim classification.
pub fn commercial() -> Vec<SystemDescriptor> {
    use ExplanationStyle as E;
    use InteractionMode as I;
    use PresentationMode as P;
    let d = |name, item_type, presentation: Vec<P>, explanation: Vec<E>, interaction: Vec<I>| {
        SystemDescriptor {
            name,
            kind: SystemKind::Commercial,
            citation: None,
            item_type,
            presentation,
            explanation,
            interaction,
            aims: AimProfile::empty(),
            emulation: None,
        }
    };
    vec![
        d(
            "Amazon",
            "e.g. Books, Movies",
            vec![P::SimilarToTopItem],
            vec![E::ContentBased],
            vec![I::Rating, I::Opinion],
        ),
        d(
            "Findory",
            "News",
            vec![P::SimilarToTopItem],
            vec![E::PreferenceBased],
            vec![I::ImplicitRating],
        ),
        d(
            "LibraryThing",
            "Books",
            vec![P::SimilarToTopItem],
            vec![E::CollaborativeBased],
            vec![I::Rating],
        ),
        d(
            "LoveFilm",
            "Movies",
            vec![P::TopN, P::PredictedRatings],
            vec![E::ContentBased],
            vec![I::Rating],
        ),
        d(
            "OkCupid",
            "People to date",
            vec![P::TopN, P::PredictedRatings],
            vec![E::PreferenceBased],
            vec![I::SpecifyRequirements],
        ),
        d(
            "Pandora",
            "Music",
            vec![P::TopItem],
            vec![E::PreferenceBased],
            vec![I::Opinion],
        ),
        d(
            "StumbleUpon",
            "Web pages",
            vec![P::TopItem],
            vec![E::PreferenceBased],
            vec![I::Opinion],
        ),
        d(
            "Qwikshop",
            "Digital cameras",
            vec![P::TopItem, P::SimilarToTopItem],
            vec![E::PreferenceBased],
            vec![I::Alteration],
        ),
    ]
}

/// The ten academic systems of Table 4, each backed by a live toolkit
/// emulation, with Table 2 aims (reconstructed — see crate docs).
pub fn academic() -> Vec<SystemDescriptor> {
    use Aim as A;
    use ExplanationStyle as E;
    use InteractionMode as I;
    use PresentationMode as P;
    #[allow(clippy::too_many_arguments)]
    fn d(
        name: &'static str,
        citation: &'static str,
        item_type: &'static str,
        presentation: Vec<PresentationMode>,
        explanation: Vec<ExplanationStyle>,
        interaction: Vec<InteractionMode>,
        aims: &[Aim],
        emulation: &'static str,
    ) -> SystemDescriptor {
        SystemDescriptor {
            name,
            kind: SystemKind::Academic,
            citation: Some(citation),
            item_type,
            presentation,
            explanation,
            interaction,
            aims: AimProfile::of(aims),
            emulation: Some(emulation),
        }
    }
    vec![
        d(
            "LIBRA",
            "[5]",
            "Books",
            vec![P::TopN, P::PredictedRatings],
            vec![E::ContentBased, E::CollaborativeBased],
            vec![I::Rating],
            &[A::Effectiveness],
            "libra",
        ),
        d(
            "News Dude",
            "[6]",
            "News",
            vec![P::TopN],
            vec![E::PreferenceBased],
            vec![I::Opinion],
            &[A::Transparency, A::Satisfaction],
            "news_dude",
        ),
        d(
            "MYCIN",
            "[7]",
            "Prescriptions",
            vec![P::TopItem],
            vec![E::PreferenceBased],
            vec![I::SpecifyRequirements],
            &[A::Transparency, A::Trust],
            "mycin",
        ),
        d(
            "MovieLens",
            "[10, 18]",
            "Movies",
            vec![P::TopN, P::PredictedRatings],
            vec![E::CollaborativeBased],
            vec![I::Rating],
            &[A::Trust, A::Persuasiveness, A::Satisfaction],
            "movielens",
        ),
        d(
            "SASY",
            "[11]",
            "E.g. holiday",
            vec![P::TopItem],
            vec![E::PreferenceBased],
            vec![I::Alteration],
            &[A::Transparency, A::Scrutability],
            "sasy",
        ),
        d(
            "Sim",
            "[21]",
            "PCs",
            vec![P::TopN],
            vec![E::PreferenceBased],
            vec![I::Varied],
            &[A::Efficiency],
            "sim",
        ),
        d(
            "Top Case",
            "[24]",
            "Holiday",
            vec![P::TopItem, P::SimilarToTopItem],
            vec![E::PreferenceBased],
            vec![I::SpecifyRequirements],
            &[A::Transparency, A::Trust],
            "top_case",
        ),
        d(
            "\"Organizational Structure\"",
            "[28]",
            "Digital camera, notebook computer",
            vec![P::StructuredOverview],
            vec![E::PreferenceBased],
            vec![I::None],
            &[A::Trust],
            "organizational",
        ),
        d(
            "ADAPTIVE PLACE ADVISOR",
            "[35]",
            "Restaurants",
            vec![P::TopItem],
            vec![E::PreferenceBased],
            vec![I::SpecifyRequirements],
            &[A::Efficiency, A::Satisfaction],
            "place_advisor",
        ),
        d(
            "ACORN",
            "[37]",
            "Movies",
            vec![P::StructuredOverview, P::TopN],
            vec![E::PreferenceBased],
            vec![I::SpecifyRequirements],
            &[A::Efficiency, A::Satisfaction],
            "acorn",
        ),
    ]
}

/// The additional cited works of Table 2 that are studies rather than
/// Table 4 systems, with their reconstructed aims.
pub fn table2_extra() -> Vec<(&'static str, AimProfile)> {
    use Aim as A;
    vec![
        ("[2]", AimProfile::of(&[A::Transparency, A::Satisfaction])), // INTRIGUE
        ("[20]", AimProfile::of(&[A::Effectiveness, A::Efficiency])), // Qwikshop critiques
        ("[31]", AimProfile::of(&[A::Transparency])),                 // Sinha & Swearingen
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table3_has_eight_rows() {
        let rows = commercial();
        assert_eq!(rows.len(), 8);
        let names: Vec<&str> = rows.iter().map(|r| r.name).collect();
        assert_eq!(
            names,
            vec![
                "Amazon",
                "Findory",
                "LibraryThing",
                "LoveFilm",
                "OkCupid",
                "Pandora",
                "StumbleUpon",
                "Qwikshop"
            ]
        );
    }

    #[test]
    fn table4_has_ten_rows_all_emulated() {
        let rows = academic();
        assert_eq!(rows.len(), 10);
        for r in &rows {
            assert!(r.emulation.is_some(), "{} lacks an emulation", r.name);
            assert!(r.citation.is_some());
            assert!(!r.aims.is_empty(), "{} has no aims", r.name);
        }
    }

    #[test]
    fn classification_matches_survey_text() {
        let rows = commercial();
        let amazon = &rows[0];
        assert_eq!(amazon.presentation_text(), "Similar to top item(s)");
        assert_eq!(amazon.explanation_text(), "Content-based");
        assert_eq!(amazon.interaction_text(), "Rating, Opinion");

        let qwikshop = rows.iter().find(|r| r.name == "Qwikshop").unwrap();
        assert_eq!(qwikshop.interaction_text(), "Alteration");

        let academic_rows = academic();
        let sasy = academic_rows.iter().find(|r| r.name == "SASY").unwrap();
        assert_eq!(sasy.item_type, "E.g. holiday");
        assert_eq!(sasy.interaction_text(), "Alteration");
        let org = academic_rows
            .iter()
            .find(|r| r.name.contains("Organizational"))
            .unwrap();
        assert_eq!(org.presentation_text(), "Structured overview");
        assert_eq!(org.interaction_text(), "(None)");
    }

    #[test]
    fn table2_covers_fourteen_citations() {
        let total = academic().len() + table2_extra().len();
        // The survey's Table 2 lists 14 cited systems; [10,18] share one
        // Table 4 row (MovieLens) but are two Table 2 rows, so 10 + 3 + 1
        // (the shared row counts twice) = 14.
        assert_eq!(total + 1, 14);
    }

    #[test]
    fn scrutability_only_with_corrective_interaction() {
        // Sanity constraint: a system that claims the scrutability aim
        // must expose a corrective interaction mode.
        for r in academic() {
            if r.aims.contains(Aim::Scrutability) {
                assert!(
                    r.interaction.iter().any(|i| i.is_corrective()),
                    "{} claims scrutability without corrective interaction",
                    r.name
                );
            }
        }
    }
}

//! Live emulations of the survey's Table 4 systems.
//!
//! Every academic system the survey classifies is assembled here from
//! toolkit components and exercised end-to-end; each emulation returns a
//! deterministic transcript. The point is epistemic: Table 4's
//! classification columns (presentation / explanation / interaction) are
//! claims about *behaviour*, and these functions make the claims
//! executable.

use exrec_algo::baseline::Popularity;
use exrec_algo::content::{NaiveBayesModel, TfIdfConfig, TfIdfModel};
use exrec_algo::knowledge::{Constraint, Maut, Requirement};
use exrec_algo::{Ctx, Recommender, UserKnn};
use exrec_core::engine::Explainer;
use exrec_core::interfaces::InterfaceId;
use exrec_core::render::{PlainRenderer, Render};
use exrec_data::synth::{books, cameras, holidays, movies, news, restaurants, WorldConfig};
use exrec_data::Catalog;
use exrec_interact::profile::ScrutableProfile;
use exrec_interact::requirements::{DialogManager, Slot, SlotAnswer};
use exrec_present::structured::{build_overview, OverviewConfig};
use exrec_types::{AttributeDef, AttributeSet, Direction, DomainSchema, Result, UserId};
use std::fmt::Write as _;

/// A runnable emulation.
pub struct Emulation {
    /// Stable key (matches `SystemDescriptor::emulation`).
    pub key: &'static str,
    /// The emulated system's name.
    pub name: &'static str,
    /// Runs the scenario, returning a transcript.
    pub run: fn(u64) -> Result<String>,
}

/// All ten emulations, Table 4 order.
pub fn all() -> Vec<Emulation> {
    vec![
        Emulation {
            key: "libra",
            name: "LIBRA",
            run: libra,
        },
        Emulation {
            key: "news_dude",
            name: "News Dude",
            run: news_dude,
        },
        Emulation {
            key: "mycin",
            name: "MYCIN",
            run: mycin,
        },
        Emulation {
            key: "movielens",
            name: "MovieLens",
            run: movielens,
        },
        Emulation {
            key: "sasy",
            name: "SASY",
            run: sasy,
        },
        Emulation {
            key: "sim",
            name: "Sim",
            run: sim,
        },
        Emulation {
            key: "top_case",
            name: "Top Case",
            run: top_case,
        },
        Emulation {
            key: "organizational",
            name: "Organizational Structure",
            run: organizational,
        },
        Emulation {
            key: "place_advisor",
            name: "Adaptive Place Advisor",
            run: place_advisor,
        },
        Emulation {
            key: "acorn",
            name: "ACORN",
            run: acorn,
        },
    ]
}

/// Runs one emulation by key.
///
/// # Errors
///
/// Propagates the emulation's own errors; unknown keys yield
/// [`exrec_types::Error::InvalidConfig`].
pub fn run(key: &str, seed: u64) -> Result<String> {
    let emu =
        all()
            .into_iter()
            .find(|e| e.key == key)
            .ok_or(exrec_types::Error::InvalidConfig {
                parameter: "emulation",
                constraint: "a key from registry::live::all()".to_owned(),
            })?;
    (emu.run)(seed)
}

fn pick_user_with_ratings(ratings: &exrec_data::RatingsMatrix, min: usize) -> Option<UserId> {
    ratings
        .users()
        .find(|&u| ratings.user_ratings(u).len() >= min)
}

/// LIBRA: naive-Bayes book recommendation with influence explanation.
fn libra(seed: u64) -> Result<String> {
    let world = books::generate(&WorldConfig {
        n_users: 30,
        n_items: 40,
        density: 0.3,
        seed,
        ..WorldConfig::default()
    });
    let ctx = Ctx::new(&world.ratings, &world.catalog);
    let model = NaiveBayesModel::default();
    let user = pick_user_with_ratings(&world.ratings, 5).expect("dense world");
    let explainer = Explainer::new(&model, InterfaceId::InfluenceList);
    let mut out = String::from("LIBRA (content-based book recommender)\n");
    for (scored, expl) in explainer.recommend_explained(&ctx, user, 2) {
        let title = &ctx.catalog.get(scored.item)?.title;
        let _ = writeln!(
            out,
            "\nRecommended: \"{}\" ({:.1})",
            title, scored.prediction.score
        );
        out.push_str(&PlainRenderer.render(&expl));
    }
    Ok(out)
}

/// News Dude: preference-based news stream with opinion feedback.
fn news_dude(seed: u64) -> Result<String> {
    let world = news::generate(&WorldConfig {
        n_users: 20,
        n_items: 40,
        density: 0.3,
        seed,
        ..WorldConfig::default()
    });
    let mut ratings = world.ratings.clone();
    let model = TfIdfModel::fit(&Ctx::new(&ratings, &world.catalog), TfIdfConfig::default())?;
    let user = pick_user_with_ratings(&ratings, 4).expect("dense world");
    let mut session = exrec_interact::session::RecommendationSession::new(
        &mut ratings,
        &world.catalog,
        &model,
        user,
        exrec_interact::session::SessionStyle::Conversational,
        InterfaceId::KeywordMatch,
    );
    let mut out =
        String::from("News Dude (personal news agent that talks, learns, and explains)\n");
    let recs = session.recommend(3);
    for s in &recs {
        let _ = writeln!(out, "story: \"{}\"", world.catalog.get(s.item)?.title);
    }
    if let Some(first) = recs.first() {
        let (_, expl) = session.why(first.item)?;
        out.push_str("why? ");
        out.push_str(&PlainRenderer.render(&expl));
        session.opine(first.item, exrec_interact::opinions::Opinion::AlreadyKnow)?;
        let _ = writeln!(out, "user: \"I already know this!\"");
        let after = session.recommend(3);
        let _ = writeln!(
            out,
            "next story: \"{}\"",
            world.catalog.get(after[0].item)?.title
        );
    }
    Ok(out)
}

/// MYCIN-style: rule/knowledge-based prescription with utility breakdown.
fn mycin(_seed: u64) -> Result<String> {
    let schema = DomainSchema::new(
        "prescriptions",
        vec![
            AttributeDef::categorical("organism", "Target Organism"),
            AttributeDef::numeric("toxicity", "Toxicity", Direction::LowerIsBetter),
            AttributeDef::numeric("efficacy", "Efficacy", Direction::HigherIsBetter),
            AttributeDef::flag("oral", "Oral Administration"),
        ],
    )?;
    let mut catalog = Catalog::new(schema);
    for (name, organism, tox, eff, oral) in [
        ("Penicillin G", "gram-positive", 2.0, 0.85, false),
        ("Ampicillin", "gram-positive", 2.5, 0.80, true),
        ("Gentamicin", "gram-negative", 6.0, 0.90, false),
        ("Tetracycline", "broad", 3.5, 0.70, true),
        ("Erythromycin", "gram-positive", 2.0, 0.75, true),
    ] {
        catalog.add(
            name,
            AttributeSet::new()
                .with("organism", organism)
                .with("toxicity", tox)
                .with("efficacy", eff)
                .with("oral", oral),
            vec![],
        )?;
    }
    let ratings = exrec_data::RatingsMatrix::new(1, catalog.len(), exrec_types::RatingScale::UNIT);
    let ctx = Ctx::new(&ratings, &catalog);
    let maut = Maut::new(vec![
        Requirement::hard(
            "organism",
            Constraint::OneOf(vec!["gram-positive".to_owned(), "broad".to_owned()]),
        ),
        Requirement::soft("efficacy", Constraint::AtLeast(0.8)).with_weight(2.0),
        Requirement::soft("toxicity", Constraint::AtMost(3.0)),
        Requirement::soft("oral", Constraint::Is(true)),
    ])?;
    let explainer = Explainer::new(&maut, InterfaceId::UtilityBreakdown);
    let top = maut.rank(&ctx, 1)[0];
    let (_, expl) = explainer.explain(&ctx, UserId::new(0), top.item)?;
    let mut out = String::from("MYCIN-style prescription advisor (knowledge-based)\n");
    let _ = writeln!(out, "prescribe: {}", catalog.get(top.item)?.title);
    out.push_str(&PlainRenderer.render(&expl));
    Ok(out)
}

/// MovieLens: collaborative filtering with the ratings histogram.
fn movielens(seed: u64) -> Result<String> {
    let world = movies::generate(&WorldConfig {
        n_users: 40,
        n_items: 40,
        density: 0.3,
        seed,
        ..WorldConfig::default()
    });
    let ctx = Ctx::new(&world.ratings, &world.catalog);
    let model = UserKnn::default();
    let user = pick_user_with_ratings(&world.ratings, 5).expect("dense world");
    let explainer = Explainer::new(&model, InterfaceId::ClusteredHistogram);
    let mut out = String::from("MovieLens (collaborative filtering with histogram explanations)\n");
    for (scored, expl) in explainer.recommend_explained(&ctx, user, 1) {
        let _ = writeln!(
            out,
            "\npredicted {:.1} for \"{}\"",
            scored.prediction.score,
            ctx.catalog.get(scored.item)?.title
        );
        out.push_str(&PlainRenderer.render(&expl));
    }
    Ok(out)
}

/// SASY: scrutable holiday profile with correction.
fn sasy(seed: u64) -> Result<String> {
    let world = holidays::generate(&WorldConfig {
        n_users: 10,
        n_items: 30,
        density: 0.2,
        seed,
        ..WorldConfig::default()
    });
    let ctx = Ctx::new(&world.ratings, &world.catalog);
    let model = Popularity::default();
    let user = UserId::new(0);
    let mut profile = ScrutableProfile::new();
    profile.set_fact(exrec_core::provenance::ProfileFact::volunteered(
        "travel_party",
        "family with children",
    ));
    profile.set_fact(exrec_core::provenance::ProfileFact::inferred(
        "budget_band",
        "premium",
        "your last three bookings were above $2000",
    ));
    profile.infer_rule(
        "style",
        "ski",
        exrec_interact::profile::RuleEffect::Bias(3.0),
        "you viewed 5 ski holidays last week",
    );
    let mut out = String::from("SASY (scrutable adaptive hypertext for holidays)\n\n");
    out.push_str(&profile.render_scrutable());
    let ranked = profile.apply(&world.catalog, model.recommend(&ctx, user, usize::MAX));
    let _ = writeln!(
        out,
        "\ntop suggestion: {}",
        ctx.catalog.get(ranked[0].item)?.title
    );
    // The user scrutinizes and corrects the inferred interest.
    profile.remove_rules("style", "ski");
    profile.block("style", "ski");
    out.push_str("\nuser corrects the profile: no skiing, thanks.\n");
    let ranked = profile.apply(&world.catalog, model.recommend(&ctx, user, usize::MAX));
    let _ = writeln!(
        out,
        "new top suggestion: {}",
        ctx.catalog.get(ranked[0].item)?.title
    );
    Ok(out)
}

/// Sim: comparison-based PC recommendation.
fn sim(_seed: u64) -> Result<String> {
    let schema = DomainSchema::new(
        "pcs",
        vec![
            AttributeDef::numeric("price", "Price", Direction::LowerIsBetter)
                .with_unit("$")
                .with_comparatives("More Expensive", "Cheaper"),
            AttributeDef::numeric("ram", "RAM", Direction::HigherIsBetter)
                .with_unit("GB")
                .with_comparatives("More RAM", "Less RAM"),
            AttributeDef::numeric("cpu", "Processor Speed", Direction::HigherIsBetter)
                .with_comparatives("Faster", "Lower Processor Speed"),
            AttributeDef::numeric("weight", "Weight", Direction::LowerIsBetter)
                .with_comparatives("Heavier", "Lighter"),
        ],
    )?;
    let mut catalog = Catalog::new(schema);
    for (name, price, ram, cpu, weight) in [
        ("Veldt Aero 13", 1400.0, 16.0, 3.2, 1.2),
        ("Okari Slab 15", 900.0, 8.0, 2.4, 2.1),
        ("Corvid Forge", 2100.0, 32.0, 4.0, 2.8),
        ("Lumora Breeze", 700.0, 8.0, 2.0, 1.1),
        ("Pentaxis Core", 1100.0, 16.0, 2.8, 1.7),
    ] {
        catalog.add(
            name,
            AttributeSet::new()
                .with("price", price)
                .with("ram", ram)
                .with("cpu", cpu)
                .with("weight", weight),
            vec![],
        )?;
    }
    let ratings = exrec_data::RatingsMatrix::new(1, catalog.len(), exrec_types::RatingScale::UNIT);
    let ctx = Ctx::new(&ratings, &catalog);
    let maut = Maut::new(vec![
        Requirement::soft("price", Constraint::AtMost(1200.0)).with_weight(2.0),
        Requirement::soft("ram", Constraint::AtLeast(16.0)),
    ])?;
    let ranked = maut.rank(&ctx, 3);
    let mut out = String::from("Sim (comparison-based PC recommender)\n");
    let reference = catalog.get(ranked[0].item)?;
    let _ = writeln!(out, "best match: {}", reference.title);
    let ranges = exrec_present::critiques::attribute_ranges(&catalog);
    for s in &ranked[1..] {
        let item = catalog.get(s.item)?;
        let pattern = exrec_present::critiques::pattern_of(item, reference, &ranges);
        let phrases: Vec<String> = pattern.iter().map(|p| p.phrase(catalog.schema())).collect();
        let _ = writeln!(
            out,
            "compared to it, {} is: {}",
            item.title,
            phrases.join(" and ")
        );
    }
    Ok(out)
}

/// Top Case: best holiday case plus explained alternatives.
fn top_case(seed: u64) -> Result<String> {
    let world = holidays::generate(&WorldConfig {
        n_users: 10,
        n_items: 30,
        density: 0.2,
        seed,
        ..WorldConfig::default()
    });
    let ctx = Ctx::new(&world.ratings, &world.catalog);
    let maut = Maut::new(vec![
        Requirement::soft("climate", Constraint::Equals("hot".to_owned())).with_weight(2.0),
        Requirement::soft("price", Constraint::AtMost(1500.0)),
        Requirement::soft("kid_friendly", Constraint::Is(true)),
    ])?;
    let explainer = Explainer::new(&maut, InterfaceId::UtilityBreakdown);
    let ranked = maut.rank(&ctx, 3);
    let mut out = String::from("Top Case (CBR holiday recommender)\n");
    for (k, s) in ranked.iter().enumerate() {
        let (_, expl) = explainer.explain(&ctx, UserId::new(0), s.item)?;
        let _ = writeln!(out, "\ncase {}: {}", k + 1, ctx.catalog.get(s.item)?.title);
        out.push_str(&PlainRenderer.render(&expl));
    }
    Ok(out)
}

/// Pu & Chen's organizational structure over digital cameras.
fn organizational(seed: u64) -> Result<String> {
    let world = cameras::generate(&WorldConfig {
        n_users: 5,
        n_items: 40,
        seed,
        ..WorldConfig::default()
    });
    let ctx = Ctx::new(&world.ratings, &world.catalog);
    let maut = Maut::new(vec![
        Requirement::soft("price", Constraint::AtMost(400.0)).with_weight(2.0),
        Requirement::soft("resolution", Constraint::AtLeast(8.0)),
        Requirement::soft("zoom", Constraint::AtLeast(5.0)),
    ])?;
    let overview = build_overview(&maut, &ctx, &OverviewConfig::default())?;
    let mut out = String::from("Organizational Structure (trade-off categories)\n\n");
    out.push_str(&overview.render_plain(&ctx));
    Ok(out)
}

/// Adaptive Place Advisor: conversational restaurant search.
fn place_advisor(seed: u64) -> Result<String> {
    let world = restaurants::generate(&WorldConfig {
        n_users: 10,
        n_items: 30,
        density: 0.2,
        seed,
        ..WorldConfig::default()
    });
    let ctx = Ctx::new(&world.ratings, &world.catalog);
    let mut dialog = DialogManager::new(vec![
        Slot::new("cuisine", "What kind of food would you like?"),
        Slot::new("price_level", "How much do you want to spend?"),
        Slot::new("vegetarian", "Do you need vegetarian options?"),
    ]);
    dialog.prompt();
    dialog.answer(SlotAnswer::Value("italian".to_owned()))?;
    dialog.prompt();
    dialog.answer(SlotAnswer::AtMost(2.0))?;
    dialog.prompt();
    dialog.answer(SlotAnswer::Unsure)?;
    let mut out = String::from("Adaptive Place Advisor (conversational restaurant search)\n\n");
    out.push_str(&dialog.render_transcript());
    let maut = dialog.finish()?;
    let ranked = maut.rank(&ctx, 1);
    if let Some(top) = ranked.first() {
        let _ = writeln!(
            out,
            "\nSystem: How about {}?",
            ctx.catalog.get(top.item)?.title
        );
    }
    Ok(out)
}

/// ACORN: conversational movie recommendation with a structured close.
fn acorn(seed: u64) -> Result<String> {
    let world = movies::generate(&WorldConfig {
        n_users: 20,
        n_items: 40,
        density: 0.25,
        seed,
        ..WorldConfig::default()
    });
    let ctx = Ctx::new(&world.ratings, &world.catalog);
    let mut dialog = DialogManager::new(vec![
        Slot::new("genre", "What kind of movie do you feel like?"),
        Slot::new("lead", "A favourite actor or actress?"),
    ]);
    dialog.prompt();
    dialog.answer(SlotAnswer::Value("thriller".to_owned()))?;
    dialog.prompt();
    dialog.answer(SlotAnswer::Unsure)?;
    let mut out = String::from("ACORN (conversational movie recommender)\n\n");
    out.push_str(&dialog.render_transcript());
    let maut = dialog.finish()?;
    let ranked = maut.rank(&ctx, 3);
    out.push_str("\n\nSystem: here is what matches, best first:\n");
    for s in &ranked {
        let _ = writeln!(
            out,
            "  - {} ({:.1})",
            ctx.catalog.get(s.item)?.title,
            s.prediction.score
        );
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_ten_emulations_run() {
        for emu in all() {
            let transcript = (emu.run)(7).unwrap_or_else(|e| panic!("{} failed: {e}", emu.key));
            assert!(
                transcript.len() > 40,
                "{} transcript too short:\n{transcript}",
                emu.key
            );
        }
    }

    #[test]
    fn emulations_are_deterministic() {
        for emu in all() {
            assert_eq!(
                (emu.run)(11).unwrap(),
                (emu.run)(11).unwrap(),
                "{} not deterministic",
                emu.key
            );
        }
    }

    #[test]
    fn keys_match_table4() {
        let keys: Vec<&str> = all().iter().map(|e| e.key).collect();
        for sys in crate::systems::academic() {
            assert!(
                keys.contains(&sys.emulation.unwrap()),
                "{} has no live emulation",
                sys.name
            );
        }
    }

    #[test]
    fn run_by_key_and_unknown_key() {
        assert!(run("libra", 3).is_ok());
        assert!(run("nonexistent", 3).is_err());
    }

    #[test]
    fn characteristic_content() {
        let sasy = run("sasy", 5).unwrap();
        assert!(sasy.contains("You told us"), "scrutable sentences present");
        assert!(sasy.contains("corrects the profile"));

        let org = run("organizational", 5).unwrap();
        assert!(org.contains("Best match:"));
        assert!(
            org.contains("but") || org.contains("and"),
            "trade-off titles"
        );

        let pa = run("place_advisor", 5).unwrap();
        assert!(pa.contains("System:"));
        assert!(pa.contains("User: Uhm, I'm not sure"));

        let ml = run("movielens", 5).unwrap();
        assert!(ml.contains("tastes like yours") || ml.contains("Neighbour ratings"));

        let libra_out = run("libra", 5).unwrap();
        assert!(libra_out.contains("influenced the recommendation"));

        let mycin_out = run("mycin", 5).unwrap();
        assert!(mycin_out.contains("prescribe:"));
        assert!(mycin_out.contains("matches your requirements"));
    }
}

//! Measured aim-fit interface selection.
//!
//! Tables 1–4 answer "which aims does each interface *claim*?"; the
//! offline quality suite (`exrec_eval::quality`) answers "which aims
//! does each interface *measurably achieve*, on this world, with this
//! model?". The [`QualityBook`] stores those measurements and turns
//! them into selection: given a requested aim, pick the interface with
//! the highest measured [`aim_score`] instead of the first catalog row
//! that declares the aim.
//!
//! The book is seeded from an offline [`QualityReport`] (or a direct
//! scoring pass over the served world) and *refreshed* by the live
//! estimator's rolling means — the serving edge periodically folds the
//! online fidelity/coverage/depth observations back in, so selection
//! tracks what the system is actually serving, not what a cold report
//! said at boot.

use std::collections::BTreeMap;
use std::sync::RwLock;

use exrec_core::aims::Aim;
use exrec_core::interfaces::InterfaceId;
use exrec_eval::quality::{aim_score, InterfaceQuality, QualityReport};

pub use exrec_eval::quality::static_default_for_aim;

/// Measured per-interface quality scores with aim-fit selection.
///
/// Thread-safe: the serving edge reads on the request path and the
/// estimator refreshes concurrently.
#[derive(Debug, Default)]
pub struct QualityBook {
    entries: RwLock<BTreeMap<String, InterfaceQuality>>,
}

impl QualityBook {
    /// An empty book: every selection falls back to the static default.
    pub fn new() -> Self {
        Self::default()
    }

    /// A book seeded from an offline report's interface measurements.
    pub fn from_report(report: &QualityReport) -> Self {
        Self::from_interfaces(report.interfaces.clone())
    }

    /// A book seeded from raw per-interface measurements (e.g. a
    /// scoring pass over the serving world).
    pub fn from_interfaces(interfaces: Vec<InterfaceQuality>) -> Self {
        QualityBook {
            entries: RwLock::new(
                interfaces
                    .into_iter()
                    .map(|q| (q.name.clone(), q))
                    .collect(),
            ),
        }
    }

    /// Number of interfaces with stored measurements.
    pub fn len(&self) -> usize {
        self.entries.read().unwrap_or_else(|p| p.into_inner()).len()
    }

    /// Whether the book holds no measurements at all.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The stored measurement for an interface key.
    pub fn measured(&self, key: &str) -> Option<InterfaceQuality> {
        self.entries
            .read()
            .unwrap_or_else(|p| p.into_inner())
            .get(key)
            .cloned()
    }

    /// Folds live-estimator rolling means back into the stored
    /// measurement: fidelity, coverage and provenance depth are what
    /// the online sampler can observe; evidence precision/recall keep
    /// their offline values (ground truth is not available live).
    /// A key without an offline entry is ignored — the estimator can
    /// only refresh interfaces the offline pass could score.
    pub fn refresh(&self, key: &str, fidelity: f64, coverage: f64, provenance_depth: f64) {
        let mut entries = self.entries.write().unwrap_or_else(|p| p.into_inner());
        if let Some(q) = entries.get_mut(key) {
            if q.samples == 0 {
                return;
            }
            q.fidelity = fidelity.clamp(0.0, 1.0);
            q.coverage = coverage.clamp(0.0, 1.0);
            q.provenance_depth = provenance_depth.max(0.0);
        }
    }

    /// The measured score of one interface for one aim; `0.0` when
    /// unmeasured (an unmeasured interface never wins a selection).
    pub fn aim_score(&self, id: InterfaceId, aim: Aim) -> f64 {
        self.measured(id.key())
            .map(|q| aim_score(&q, aim))
            .unwrap_or(0.0)
    }

    /// Aim-fit selection: the measurably best interface for `aim`
    /// among those declaring it, with catalog order breaking ties.
    /// Returns the interface and its measured score; `None` when no
    /// declaring interface has measurements (caller falls back to
    /// [`static_default_for_aim`]).
    pub fn select_for_aim(&self, aim: Aim) -> Option<(InterfaceId, f64)> {
        let entries = self.entries.read().unwrap_or_else(|p| p.into_inner());
        let mut best: Option<(InterfaceId, f64)> = None;
        for id in InterfaceId::ALL {
            if !id.descriptor().aims.contains(aim) {
                continue;
            }
            let Some(q) = entries.get(id.key()) else {
                continue;
            };
            if q.samples == 0 {
                continue;
            }
            let score = aim_score(q, aim);
            if best.map(|(_, s)| score > s).unwrap_or(true) {
                best = Some((id, score));
            }
        }
        best
    }

    /// [`QualityBook::select_for_aim`] with the static fallback folded
    /// in: always returns an interface as long as *any* catalog
    /// interface declares the aim.
    pub fn select_or_default(&self, aim: Aim) -> Option<InterfaceId> {
        self.select_for_aim(aim)
            .map(|(id, _)| id)
            .or_else(|| static_default_for_aim(aim))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use exrec_eval::quality::{run, QualityConfig};

    fn measured(name: &str, fidelity: f64, coverage: f64) -> InterfaceQuality {
        InterfaceQuality {
            name: name.to_owned(),
            samples: 10,
            fidelity,
            evidence_precision: 0.5,
            evidence_recall: 0.5,
            evidence_f1: 0.5,
            coverage,
            provenance_depth: 1.0,
            reading_cost: 6.0,
        }
    }

    #[test]
    fn empty_book_falls_back_to_static_default() {
        let book = QualityBook::new();
        assert!(book.is_empty());
        for aim in Aim::ALL {
            assert!(book.select_for_aim(aim).is_none());
            assert_eq!(book.select_or_default(aim), static_default_for_aim(aim));
        }
    }

    #[test]
    fn selection_is_argmax_with_catalog_tie_break() {
        // Both declare Transparency (histogram variants do); give the
        // later catalog entry a decisively better measurement.
        let hist = InterfaceId::Histogram.key();
        let clustered = InterfaceId::ClusteredHistogram.key();
        let book = QualityBook::from_interfaces(vec![
            measured(clustered, 0.1, 0.1),
            measured(hist, 0.9, 0.9),
        ]);
        let aim = Aim::Transparency;
        assert!(InterfaceId::Histogram.descriptor().aims.contains(aim));
        assert!(InterfaceId::ClusteredHistogram
            .descriptor()
            .aims
            .contains(aim));
        let (winner, score) = book.select_for_aim(aim).unwrap();
        assert_eq!(winner, InterfaceId::Histogram);
        assert!(score > 0.0);

        // Identical measurements: the earlier catalog row wins (strict
        // improvement required to displace).
        let tied = QualityBook::from_interfaces(vec![
            measured(clustered, 0.5, 0.5),
            measured(hist, 0.5, 0.5),
        ]);
        let (winner, _) = tied.select_for_aim(aim).unwrap();
        assert_eq!(
            winner,
            InterfaceId::ClusteredHistogram,
            "catalog order tie-break"
        );
    }

    #[test]
    fn unmeasured_interfaces_never_win() {
        let book = QualityBook::from_interfaces(vec![InterfaceQuality {
            samples: 0,
            ..measured(InterfaceId::Histogram.key(), 0.9, 0.9)
        }]);
        assert!(book.select_for_aim(Aim::Transparency).is_none());
        assert_eq!(
            book.aim_score(InterfaceId::Histogram, Aim::Transparency),
            0.0
        );
    }

    #[test]
    fn refresh_updates_live_components_only() {
        let book =
            QualityBook::from_interfaces(vec![measured(InterfaceId::Histogram.key(), 0.2, 0.2)]);
        book.refresh(InterfaceId::Histogram.key(), 0.8, 0.9, 2.0);
        let q = book.measured(InterfaceId::Histogram.key()).unwrap();
        assert_eq!(q.fidelity, 0.8);
        assert_eq!(q.coverage, 0.9);
        assert_eq!(q.provenance_depth, 2.0);
        assert_eq!(q.evidence_precision, 0.5, "offline P/R untouched");
        // Refreshing an unknown key is a no-op, not a panic.
        book.refresh("no_such_interface", 1.0, 1.0, 4.0);
        assert_eq!(book.len(), 1);
    }

    #[test]
    fn offline_report_feeds_selection_that_beats_the_static_default() {
        let report = run(&QualityConfig::quick(), 1);
        let book = QualityBook::from_report(&report);
        assert_eq!(book.len(), InterfaceId::ALL.len());
        let mut improved = 0usize;
        for aim in Aim::ALL {
            let (selected, score) = book
                .select_for_aim(aim)
                .expect("every aim has a measured candidate");
            let fallback = static_default_for_aim(aim).unwrap();
            let static_score = book.aim_score(fallback, aim);
            assert!(score >= static_score, "{aim}: selection regressed");
            if selected != fallback && score > static_score {
                improved += 1;
            }
        }
        assert!(
            improved >= 1,
            "measured selection should beat the static default for at least one aim"
        );
    }
}

//! # exrec-registry
//!
//! Machine-readable descriptors for every recommender system the survey
//! classifies, plus generators that *regenerate* the survey's Tables 1–4
//! from those descriptors and the toolkit's own taxonomies:
//!
//! * Table 1 — the seven aims (generated from `exrec_core::aims`);
//! * Table 2 — aims of academic systems (from [`systems::academic`]);
//! * Table 3 — commercial systems (from [`systems::commercial`]);
//! * Table 4 — academic systems (from [`systems::academic`]).
//!
//! Each academic row is also *runnable*: [`live`] assembles the described
//! system from toolkit components and executes a small end-to-end
//! scenario, so Table 4 classifies working code rather than prose.
//!
//! **Reconstruction note.** The survey's Table 2 is a check-mark matrix
//! whose column alignment does not survive text extraction; the matrix
//! here is reconstructed from each cited system's stated goals and is
//! flagged as such in EXPERIMENTS.md.

#![deny(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod live;
pub mod quality;
pub mod systems;
pub mod tables;

pub use quality::QualityBook;
pub use systems::{SystemDescriptor, SystemKind};
pub use tables::{table1, table2, table3, table4, TableSpec};

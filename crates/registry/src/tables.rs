//! Generators for the survey's Tables 1–4.

use crate::systems::{academic, commercial, table2_extra};
use exrec_core::aims::Aim;
use std::fmt::Write as _;

/// A generated table: title, headers, rows.
#[derive(Debug, Clone, PartialEq)]
pub struct TableSpec {
    /// Table title as printed.
    pub title: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Row cells.
    pub rows: Vec<Vec<String>>,
}

impl TableSpec {
    /// Aligned ASCII rendering.
    pub fn render_ascii(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.chars().count()).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.chars().count());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "== {} ==", self.title);
        let fmt_row = |cells: &[String]| {
            cells
                .iter()
                .zip(&widths)
                .map(|(c, w)| format!("{:w$}", c, w = w))
                .collect::<Vec<_>>()
                .join("  ")
                .trim_end()
                .to_owned()
        };
        let _ = writeln!(out, "{}", fmt_row(&self.headers));
        let _ = writeln!(
            out,
            "{}",
            widths
                .iter()
                .map(|w| "-".repeat(*w))
                .collect::<Vec<_>>()
                .join("  ")
        );
        for row in &self.rows {
            let _ = writeln!(out, "{}", fmt_row(row));
        }
        out
    }
}

/// Table 1: the seven aims and their definitions, verbatim.
pub fn table1() -> TableSpec {
    TableSpec {
        title: "Table 1. Aims".to_owned(),
        headers: vec!["Aim".to_owned(), "Definition".to_owned()],
        rows: Aim::ALL
            .iter()
            .map(|a| {
                vec![
                    format!("{} ({})", a.name(), a.abbreviation()),
                    a.definition().to_owned(),
                ]
            })
            .collect(),
    }
}

/// Table 2: aims of academic systems, one row per citation key, `X`
/// marks per aim column (matrix reconstructed — see crate docs).
pub fn table2() -> TableSpec {
    let mut rows: Vec<(String, exrec_core::aims::AimProfile)> = Vec::new();
    for sys in academic() {
        // MovieLens carries two citations in Table 4 but Table 2 lists
        // them separately.
        let citation = sys.citation.unwrap_or("?");
        if citation.contains(',') {
            for c in citation.split(',') {
                rows.push((format!("[{}]", c.trim().trim_matches(['[', ']'])), sys.aims));
            }
        } else {
            rows.push((citation.to_owned(), sys.aims));
        }
    }
    for (citation, aims) in table2_extra() {
        rows.push((citation.to_owned(), aims));
    }
    rows.sort_by_key(|(c, _)| {
        c.trim_matches(['[', ']'])
            .parse::<u32>()
            .unwrap_or(u32::MAX)
    });

    let mut headers = vec!["System".to_owned()];
    headers.extend(Aim::ALL.iter().map(|a| a.abbreviation().to_owned()));
    TableSpec {
        title: "Table 2. Aims of academic systems (matrix reconstructed)".to_owned(),
        headers,
        rows: rows
            .into_iter()
            .map(|(citation, aims)| {
                let mut row = vec![citation];
                for a in Aim::ALL {
                    row.push(if aims.contains(a) { "X" } else { "" }.to_owned());
                }
                row
            })
            .collect(),
    }
}

/// Table 3: commercial systems with explanation facilities.
pub fn table3() -> TableSpec {
    TableSpec {
        title: "Table 3. A selection of commercial recommender systems with explanation facilities"
            .to_owned(),
        headers: vec![
            "System".to_owned(),
            "Item type".to_owned(),
            "Presentation (Section 4)".to_owned(),
            "Explanation".to_owned(),
            "Interaction (Section 5)".to_owned(),
        ],
        rows: commercial()
            .into_iter()
            .map(|s| {
                vec![
                    s.name.to_owned(),
                    s.item_type.to_owned(),
                    s.presentation_text(),
                    s.explanation_text(),
                    s.interaction_text(),
                ]
            })
            .collect(),
    }
}

/// Table 4: academic systems with explanation facilities, each backed by
/// a live toolkit emulation.
pub fn table4() -> TableSpec {
    TableSpec {
        title: "Table 4. A selection of academic recommender systems with explanation facilities"
            .to_owned(),
        headers: vec![
            "System".to_owned(),
            "Item type".to_owned(),
            "Presentation (Section 4)".to_owned(),
            "Explanation".to_owned(),
            "Interaction (Section 5)".to_owned(),
            "Emulation".to_owned(),
        ],
        rows: academic()
            .into_iter()
            .map(|s| {
                vec![
                    format!("{} {}", s.name, s.citation.unwrap_or("")),
                    s.item_type.to_owned(),
                    s.presentation_text(),
                    s.explanation_text(),
                    s.interaction_text(),
                    s.emulation.unwrap_or("-").to_owned(),
                ]
            })
            .collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_is_verbatim() {
        let t = table1();
        assert_eq!(t.rows.len(), 7);
        assert_eq!(t.rows[0][0], "Transparency (Tra.)");
        assert_eq!(t.rows[0][1], "Explain how the system works");
        assert_eq!(t.rows[6][1], "Increase the ease of usability or enjoyment");
        let ascii = t.render_ascii();
        assert!(ascii.contains("Table 1. Aims"));
        assert!(ascii.contains("Convince users to try or buy"));
    }

    #[test]
    fn table2_rows_sorted_by_citation() {
        let t = table2();
        assert_eq!(t.headers.len(), 8);
        assert_eq!(t.rows.len(), 14);
        let keys: Vec<u32> = t
            .rows
            .iter()
            .map(|r| r[0].trim_matches(['[', ']']).parse::<u32>().unwrap())
            .collect();
        let mut sorted = keys.clone();
        sorted.sort_unstable();
        assert_eq!(keys, sorted);
        // Every row has at least one X.
        for r in &t.rows {
            assert!(r[1..].iter().any(|c| c == "X"), "{} has no aims", r[0]);
        }
    }

    #[test]
    fn table3_matches_survey_rows() {
        let t = table3();
        assert_eq!(t.rows.len(), 8);
        let ascii = t.render_ascii();
        assert!(ascii.contains("Amazon"));
        assert!(ascii.contains("Qwikshop"));
        assert!(ascii.contains("Similar to top item(s)"));
    }

    #[test]
    fn table4_lists_emulations() {
        let t = table4();
        assert_eq!(t.rows.len(), 10);
        for row in &t.rows {
            assert_ne!(row[5], "-", "{} must have an emulation", row[0]);
        }
        assert!(t.render_ascii().contains("ADAPTIVE PLACE ADVISOR"));
    }
}

//! Cross-session persistence: the scrutability loop must survive logout
//! (survey Section 2.2 — corrections are durable, not per-session).

use exrec::algo::baseline::Popularity;
use exrec::interact::store::SessionStore;
use exrec::prelude::*;

fn store() -> (SessionStore, World) {
    let world = exrec::data::synth::movies::generate(&WorldConfig {
        n_users: 20,
        n_items: 40,
        density: 0.3,
        ..WorldConfig::default()
    });
    (
        SessionStore::new(world.ratings.clone(), world.catalog.clone()),
        world,
    )
}

#[test]
fn corrections_survive_logout() {
    let (store, world) = store();
    let user = UserId::new(0);

    // Session 1: block the top genre and log out.
    let mut profile = store.login(user);
    let ratings = store.ratings_snapshot();
    let ctx = Ctx::new(&ratings, store.catalog());
    let top = Popularity::default().recommend(&ctx, user, 1)[0];
    let genre = world
        .catalog
        .get(top.item)
        .unwrap()
        .attrs
        .cat("genre")
        .unwrap()
        .to_owned();
    profile.block("genre", &genre);
    store.save_profile(user, profile);

    // Session 2: fresh login sees the rule and the filtered list.
    let profile = store.login(user);
    assert_eq!(profile.rules().len(), 1, "rule persisted across sessions");
    let ranked = profile.apply(
        store.catalog(),
        Popularity::default().recommend(&ctx, user, 10),
    );
    for s in &ranked {
        assert_ne!(
            world.catalog.get(s.item).unwrap().attrs.cat("genre"),
            Some(genre.as_str())
        );
    }
    assert_eq!(store.loyalty(user).logins, 2);
}

#[test]
fn ratings_entered_in_one_session_shape_the_next() {
    let (store, world) = store();
    let user = UserId::new(1);

    // Session 1: the user slams an item.
    store.login(user);
    let ratings = store.ratings_snapshot();
    let ctx = Ctx::new(&ratings, store.catalog());
    let top = Popularity::default().recommend(&ctx, user, 1)[0];
    store.rate(user, top.item, 1.0).unwrap();

    // Session 2: the rated item is no longer recommendable.
    store.login(user);
    let ratings = store.ratings_snapshot();
    let ctx = Ctx::new(&ratings, store.catalog());
    let recs = Popularity::default().recommend(&ctx, user, 10);
    assert!(
        !recs.iter().any(|s| s.item == top.item),
        "rated items leave the list in later sessions"
    );
    let _ = world;
}

#[test]
fn snapshot_backup_and_restore_of_live_store() {
    // Operational path: snapshot the store's ratings, corrupt nothing,
    // restore into a fresh store, verify behaviour is identical.
    let (store, world) = store();
    let user = UserId::new(2);
    store.rate(user, ItemId::new(3), 5.0).unwrap();

    let bytes = exrec::data::snapshot::encode(&store.ratings_snapshot());
    let restored = exrec::data::snapshot::decode(&bytes).unwrap();
    let store2 = SessionStore::new(restored, world.catalog.clone());

    let ctx1_r = store.ratings_snapshot();
    let ctx2_r = store2.ratings_snapshot();
    assert_eq!(ctx1_r, ctx2_r);
    let ctx1 = Ctx::new(&ctx1_r, store.catalog());
    let ctx2 = Ctx::new(&ctx2_r, store2.catalog());
    assert_eq!(
        Popularity::default().recommend(&ctx1, user, 5),
        Popularity::default().recommend(&ctx2, user, 5)
    );
}

#[test]
fn csv_export_import_preserves_recommendations() {
    let (store, world) = store();
    let csv = exrec::data::csv::to_csv(&store.ratings_snapshot());
    let imported = exrec::data::csv::from_csv(&csv, *store.ratings_snapshot().scale()).unwrap();
    let user = UserId::new(3);
    let r1 = store.ratings_snapshot();
    let ctx1 = Ctx::new(&r1, &world.catalog);
    let ctx2 = Ctx::new(&imported, &world.catalog);
    assert_eq!(
        Popularity::default().recommend(&ctx1, user, 5),
        Popularity::default().recommend(&ctx2, user, 5)
    );
}

//! End-to-end telemetry: the metrics a full pipeline run reports must
//! agree, exactly, with what the pipeline actually did.
//!
//! One synthetic world, one instrumented recommender, one explainer per
//! interface condition — and independently-kept tallies of every
//! prediction, explanation and abort, checked against the
//! [`MetricsReport`] snapshot at the end.

use std::sync::Arc;

use exrec::obs::{CountingSubscriber, Metrics, Subscriber, Telemetry};
use exrec::prelude::*;
use exrec::types::Error;

fn world() -> World {
    exrec::data::synth::movies::generate(&WorldConfig {
        n_users: 50,
        n_items: 50,
        density: 0.25,
        ..WorldConfig::default()
    })
}

#[test]
fn report_counts_match_pipeline_activity() {
    let w = world();
    let ctx = Ctx::new(&w.ratings, &w.catalog);
    let spans = Arc::new(CountingSubscriber::new());
    let obs = Telemetry::new(
        Arc::new(Metrics::new()),
        Arc::clone(&spans) as Arc<dyn Subscriber>,
    );

    let knn = InstrumentedRecommender::new(UserKnn::default(), &obs);
    let users: Vec<UserId> = w
        .ratings
        .users()
        .filter(|&u| w.ratings.user_ratings(u).len() >= 4)
        .take(8)
        .collect();
    assert!(users.len() >= 4, "world too sparse for the scenario");
    let items: Vec<ItemId> = w.catalog.ids().take(12).collect();

    // Ground truth tallies, kept by hand as the pipeline runs.
    let mut ok_predictions = 0u64;
    let mut failed_predictions = 0u64;
    let mut explanations = 0u64;
    let mut recommend_calls = 0u64;

    // Per-pair predictions straight on the model.
    for &user in &users {
        for &item in &items {
            match knn.predict(&ctx, user, item) {
                Ok(_) => ok_predictions += 1,
                Err(_) => failed_predictions += 1,
            }
        }
    }

    // Explained recommendations through a compatible interface.
    let explainer =
        Explainer::new(&knn, InterfaceId::ClusteredHistogram).with_telemetry(obs.clone());
    for &user in &users {
        explanations += explainer.recommend_explained(&ctx, user, 3).len() as u64;
        recommend_calls += 1;
    }
    assert!(explanations > 0, "no explanation ever fired");

    // A popularity model cannot feed a neighbour histogram: every
    // attempt must abort with MissingEvidence, and be counted.
    let pop = InstrumentedRecommender::new(exrec::algo::baseline::Popularity::default(), &obs);
    let mismatched = Explainer::new(&pop, InterfaceId::Histogram).with_telemetry(obs.clone());
    let mut aborts = 0u64;
    for &user in &users[..4] {
        match mismatched.explain(&ctx, user, items[0]) {
            Err(Error::MissingEvidence { .. }) => aborts += 1,
            other => panic!("expected MissingEvidence, got {other:?}"),
        }
    }

    let report = obs.report();

    // Algorithm layer: the wrapper saw exactly the calls we made.
    assert_eq!(report.counters["algo.predict.user-knn"], ok_predictions);
    assert_eq!(
        report.counters["algo.predict_err.user-knn"],
        failed_predictions
    );
    assert_eq!(report.counters["algo.recommend.user-knn"], recommend_calls);
    assert_eq!(
        report.histograms["algo.predict_ns.user-knn"].count,
        ok_predictions + failed_predictions
    );
    assert!(report.histograms["algo.predict_ns.user-knn"].p99_ns > 0);
    // The mismatched explainer predicted once per abort attempt.
    assert_eq!(report.counters["algo.predict.popularity"], aborts);

    // Explanation layer: one fire per explanation delivered, one abort
    // per mismatched attempt, nothing else.
    assert_eq!(
        report.counters["explain.fired.clustered_histogram"],
        explanations
    );
    assert_eq!(report.counters["explain.abort.missing_evidence"], aborts);
    assert_eq!(
        report.histograms["span_ns.recommend_explained"].count,
        recommend_calls
    );

    // Span events reached the subscriber, tagged with the interface.
    let events = spans.events();
    assert_eq!(events.len(), recommend_calls as usize);
    for event in &events {
        assert_eq!(event.name, "recommend_explained");
        assert_eq!(
            event.fields,
            vec![("interface".to_owned(), "clustered_histogram".to_owned())]
        );
    }

    // The snapshot survives a JSON round-trip intact.
    let json = serde_json::to_string(&report).expect("report serializes");
    let back: MetricsReport = serde_json::from_str(&json).expect("report deserializes");
    assert_eq!(back.counters, report.counters);
    assert_eq!(back.histograms.len(), report.histograms.len());
}

#[test]
fn studies_report_per_aim_telemetry() {
    let obs = Telemetry::default();
    let report = exrec::eval::run_study_with(&obs, "e-tra")
        .expect("E-TRA is a known study id (case-insensitive)");
    assert_eq!(report.id, "E-TRA");

    let metrics = obs.report();
    assert_eq!(metrics.counters["eval.studies_run"], 1);
    assert_eq!(metrics.histograms["eval.study_ns.E-TRA"].count, 1);
    assert_eq!(metrics.histograms["eval.aim_ns.transparency"].count, 1);
    assert!(metrics.gauges["eval.users_per_sec.E-TRA"] > 0.0);
    assert!(exrec::eval::run_study_with(&obs, "E-BOGUS").is_none());
}

//! Cross-crate integration: every recommender × every compatible
//! explanation interface, end to end, over every domain world.

use exrec::algo::baseline::{GlobalMean, Popularity, UserMean};
use exrec::algo::content::{NaiveBayesModel, TfIdfConfig, TfIdfModel};
use exrec::algo::item_knn::{ItemKnn, ItemKnnConfig};
use exrec::core::interfaces::EvidenceNeed;
use exrec::prelude::*;

fn movie_world() -> World {
    exrec::data::synth::movies::generate(&WorldConfig {
        n_users: 50,
        n_items: 50,
        density: 0.3,
        ..WorldConfig::default()
    })
}

fn active_user(world: &World) -> UserId {
    world
        .ratings
        .users()
        .find(|&u| world.ratings.user_ratings(u).len() >= 6)
        .expect("active user exists")
}

#[test]
fn every_interface_runs_on_some_recommender() {
    let world = movie_world();
    let ctx = Ctx::new(&world.ratings, &world.catalog);
    let user = active_user(&world);

    let user_knn = UserKnn::default();
    let item_knn = ItemKnn::fit(&ctx, ItemKnnConfig::default()).unwrap();
    let tfidf = TfIdfModel::fit(&ctx, TfIdfConfig::default()).unwrap();
    let nb = NaiveBayesModel::default();
    let pop = Popularity::default();
    let maut = exrec::algo::knowledge::Maut::new(vec![exrec::algo::knowledge::Requirement::soft(
        "year",
        exrec::algo::knowledge::Constraint::AtLeast(1990.0),
    )])
    .unwrap();
    let recommenders: Vec<&(dyn Recommender + Sync)> =
        vec![&user_knn, &item_knn, &tfidf, &nb, &pop, &maut];

    for id in InterfaceId::ALL {
        let mut generated = false;
        for rec in &recommenders {
            let explainer = Explainer::new(*rec, id);
            for item in world.catalog.ids() {
                if world.ratings.rating(user, item).is_some() {
                    continue;
                }
                if let Ok((_, explanation)) = explainer.explain(&ctx, user, item) {
                    assert_eq!(explanation.interface, id.key());
                    // Rendering never panics and is non-empty except for
                    // the control.
                    let text = PlainRenderer.render(&explanation);
                    if id != InterfaceId::NoExplanation {
                        assert!(!text.is_empty(), "{id:?} rendered empty");
                    }
                    generated = true;
                    break;
                }
            }
            if generated {
                break;
            }
        }
        assert!(generated, "no recommender could feed interface {id:?}");
    }
}

#[test]
fn evidence_needs_are_honest() {
    // Every interface declaring a specific need refuses mismatched
    // evidence, and every interface declaring Any accepts popularity
    // evidence.
    let world = movie_world();
    let ctx = Ctx::new(&world.ratings, &world.catalog);
    let user = active_user(&world);
    let pop = Popularity::default();
    let item = world
        .catalog
        .ids()
        .find(|&i| world.ratings.rating(user, i).is_none())
        .unwrap();

    for id in InterfaceId::ALL {
        let explainer = Explainer::new(&pop, id);
        let outcome = explainer.explain(&ctx, user, item);
        match id.descriptor().needs {
            EvidenceNeed::Any => {
                assert!(outcome.is_ok(), "{id:?} should accept popularity evidence");
            }
            _ => assert!(outcome.is_err(), "{id:?} should reject popularity evidence"),
        }
    }
}

#[test]
fn predictions_stay_on_scale_across_models() {
    let world = movie_world();
    let ctx = Ctx::new(&world.ratings, &world.catalog);
    let scale = world.ratings.scale();
    let user_knn = UserKnn::default();
    let item_knn = ItemKnn::fit(&ctx, ItemKnnConfig::default()).unwrap();
    let tfidf = TfIdfModel::fit(&ctx, TfIdfConfig::default()).unwrap();
    let nb = NaiveBayesModel::default();
    let recommenders: Vec<&dyn Recommender> =
        vec![&user_knn, &item_knn, &tfidf, &nb, &GlobalMean, &UserMean];
    for rec in recommenders {
        let mut checked = 0;
        for u in world.ratings.users().take(10) {
            for i in world.catalog.ids().take(10) {
                if let Ok(p) = rec.predict(&ctx, u, i) {
                    assert!(
                        p.score >= scale.min() - 1e-9 && p.score <= scale.max() + 1e-9,
                        "{}: score {} off scale",
                        rec.name(),
                        p.score
                    );
                    assert!((0.0..=1.0).contains(&p.confidence.value()));
                    checked += 1;
                }
            }
        }
        assert!(checked > 0, "{} predicted nothing", rec.name());
    }
}

#[test]
fn every_domain_world_supports_the_full_pipeline() {
    use exrec::data::synth;
    let cfg = WorldConfig {
        n_users: 30,
        n_items: 30,
        density: 0.3,
        ..WorldConfig::default()
    };
    let worlds: Vec<(&str, World)> = vec![
        ("movies", synth::movies::generate(&cfg)),
        ("books", synth::books::generate(&cfg)),
        ("news", synth::news::generate(&cfg)),
        ("cameras", synth::cameras::generate(&cfg)),
        ("restaurants", synth::restaurants::generate(&cfg)),
        ("holidays", synth::holidays::generate(&cfg)),
    ];
    for (name, world) in worlds {
        let ctx = Ctx::new(&world.ratings, &world.catalog);
        let pop = Popularity::default();
        let explainer = Explainer::new(&pop, InterfaceId::MovieAverage);
        let user = world.ratings.users().next().unwrap();
        let explained = explainer.recommend_explained(&ctx, user, 3);
        assert!(
            !explained.is_empty(),
            "{name}: no explained recommendations"
        );
        // And the catalog supports faceted browsing on some attribute.
        let browser = exrec::present::facets::FacetBrowser::new(&world.catalog);
        assert!(!browser.facets().is_empty(), "{name}: no facets");
    }
}

#[test]
fn snapshot_round_trips_generated_worlds() {
    let world = movie_world();
    let bytes = exrec::data::snapshot::encode(&world.ratings);
    let decoded = exrec::data::snapshot::decode(&bytes).unwrap();
    assert_eq!(decoded, world.ratings);
}

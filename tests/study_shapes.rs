//! Cross-study integration: the survey's headline result shapes hold at
//! default study configurations, and reports serialize cleanly.
//!
//! (Per-study assertions live in `exrec-eval`'s unit tests; this file
//! checks the *relationships between* studies the survey's conclusion
//! draws, plus reporting plumbing.)

use exrec::core::interfaces::InterfaceId;
use exrec::eval::studies;

#[test]
fn persuasion_and_effectiveness_disagree_about_the_histogram() {
    // The conclusion's central warning: "[18] measured user satisfaction
    // with recommendations (persuasion), this is not the same as
    // measuring satisfaction with actual items (effectiveness) [5]".
    // Concretely: the clustered histogram tops the persuasion ranking
    // while being the *worst* of the compared interfaces at
    // effectiveness.
    let persuasion = studies::persuasion_herlocker::run(&Default::default());
    let effectiveness = studies::effectiveness::run(&Default::default());

    assert!(persuasion.rank_of(InterfaceId::ClusteredHistogram) <= 3);
    let hist_abs = effectiveness.abs_gap_of(InterfaceId::ClusteredHistogram);
    for other in [InterfaceId::KeywordMatch, InterfaceId::InfluenceList] {
        assert!(
            effectiveness.abs_gap_of(other) < hist_abs,
            "{other:?} must be more effective than the persuasion winner"
        );
    }
}

#[test]
fn shift_study_confirms_the_persuasion_mechanism() {
    // The rating-shift study's explanation amplification is the causal
    // mechanism behind the persuasion ranking: both must point the same
    // way for the histogram interface.
    let shift = studies::rating_shift::run(&Default::default());
    use studies::rating_shift::ShownPrediction;
    assert!(
        shift.shift(ShownPrediction::PerturbedUp, true)
            > shift.shift(ShownPrediction::PerturbedUp, false)
    );
    assert!(shift.explanation_effect_p < 0.05);
}

#[test]
fn all_reports_serialize_and_render() {
    let reports = exrec::eval::run_all_studies();
    assert_eq!(reports.len(), 11);
    for r in &reports {
        let json = r.to_json();
        let back: exrec::eval::StudyReport = serde_json::from_str(&json).unwrap();
        assert_eq!(&back, r);
        let ascii = r.render_ascii();
        assert!(ascii.contains(&r.id));
        for t in &r.tables {
            assert!(!t.rows.is_empty(), "{}: empty table", r.id);
            assert!(!t.render_markdown().is_empty());
        }
    }
}

#[test]
fn trust_and_scrutability_studies_agree_on_control() {
    // Both E-TRUST and E-SCR operationalize "let the user correct the
    // system"; both must show the scrutiny condition helping.
    let trust = studies::trust_loyalty::run(&Default::default());
    use studies::trust_loyalty::Condition as TrustCondition;
    assert!(
        trust
            .result(TrustCondition::ExplainScrutinize)
            .trust_composite
            .mean
            > trust.result(TrustCondition::None).trust_composite.mean
    );

    let scr = studies::scrutability::run(&Default::default());
    use studies::scrutability::Condition as ScrCondition;
    assert!(
        scr.result(ScrCondition::ToolVisible).success_rate
            > scr.result(ScrCondition::NoTool).success_rate
    );
}

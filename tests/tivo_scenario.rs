//! The survey's opening anecdote, executed: TiVo decides Mr. Iwanyk is
//! gay from his viewing history; his counter-programming makes things
//! worse; scrutability fixes in one step what counter-rating cannot.

use exrec::algo::content::{TfIdfConfig, TfIdfModel};
use exrec::interact::profile::ScrutableProfile;
use exrec::prelude::*;

/// Builds a movie world and a fresh user whose viewing history is all
/// `seed_genre`, returning (world, user).
fn world_with_fan(seed_genre: &str) -> (World, UserId) {
    let world = exrec::data::synth::movies::generate(&WorldConfig {
        n_users: 40,
        n_items: 60,
        density: 0.25,
        ..WorldConfig::default()
    });
    let mut world = world;
    // Re-purpose user 0: wipe their history and make them watch only the
    // seed genre.
    let user = UserId::new(0);
    let rated: Vec<ItemId> = world
        .ratings
        .user_ratings(user)
        .iter()
        .map(|&(i, _)| i)
        .collect();
    for item in rated {
        world.ratings.unrate(user, item).unwrap();
    }
    let seeds: Vec<ItemId> = world
        .catalog
        .iter()
        .filter(|it| it.attrs.cat("genre") == Some(seed_genre))
        .map(|it| it.id)
        .take(5)
        .collect();
    assert!(seeds.len() >= 3, "world must contain the seed genre");
    for item in seeds {
        world.ratings.rate(user, item, 5.0).unwrap();
    }
    (world, user)
}

fn genre_share(world: &World, recs: &[Scored], genre: &str) -> f64 {
    if recs.is_empty() {
        return 0.0;
    }
    recs.iter()
        .filter(|s| {
            world
                .catalog
                .get(s.item)
                .map(|it| it.attrs.cat("genre") == Some(genre))
                .unwrap_or(false)
        })
        .count() as f64
        / recs.len() as f64
}

fn base_rate(world: &World, genre: &str) -> f64 {
    world
        .catalog
        .iter()
        .filter(|it| it.attrs.cat("genre") == Some(genre))
        .count() as f64
        / world.catalog.len() as f64
}

#[test]
fn the_system_overfits_to_observed_behaviour() {
    // Phase 1: the recorder infers a strong genre preference from
    // behaviour alone — the genre is heavily over-represented relative
    // to its catalog base rate, and tops the list.
    let (world, user) = world_with_fan("romance");
    let ctx = Ctx::new(&world.ratings, &world.catalog);
    let model = TfIdfModel::fit(&ctx, TfIdfConfig::default()).unwrap();
    let recs = model.recommend(&ctx, user, 5);
    let share = genre_share(&world, &recs, "romance");
    let base = base_rate(&world, "romance");
    assert!(
        share >= base * 2.0,
        "romance share {share:.2} should far exceed base rate {base:.2}"
    );
    let top = world.catalog.get(recs[0].item).unwrap();
    assert_eq!(
        top.attrs.cat("genre"),
        Some("romance"),
        "the top pick follows the watched genre"
    );
}

#[test]
fn counter_programming_overcorrects() {
    // Phase 2: Mr. Iwanyk records "guy stuff" to fix it — and the system
    // simply pivots to the new obsession instead of balancing. The
    // counter-programming has to outweigh the original five-movie
    // history to tip the profile, so he records war movies in bulk.
    let (mut world, user) = world_with_fan("romance");
    let war_items: Vec<ItemId> = world
        .catalog
        .iter()
        .filter(|it| it.attrs.cat("genre") == Some("action"))
        .map(|it| it.id)
        .take(8) // leave some action items unrated and recommendable
        .collect();
    for item in &war_items {
        world.ratings.rate(user, *item, 5.0).unwrap();
    }
    let ctx = Ctx::new(&world.ratings, &world.catalog);
    let model = TfIdfModel::fit(&ctx, TfIdfConfig::default()).unwrap();
    let recs = model.recommend(&ctx, user, 5);
    let action_share = genre_share(&world, &recs, "action");
    let base = base_rate(&world, "action");
    assert!(
        action_share > 0.0 && action_share >= base,
        "counter-programming creates a new fixation (action share {action_share:.2}          vs base {base:.2})"
    );
}

#[test]
fn scrutability_fixes_it_in_one_step() {
    // Phase 3: with a scrutable profile the user just says "no".
    let (world, user) = world_with_fan("romance");
    let ctx = Ctx::new(&world.ratings, &world.catalog);
    let model = TfIdfModel::fit(&ctx, TfIdfConfig::default()).unwrap();

    let mut profile = ScrutableProfile::new();
    profile.block("genre", "romance");
    let recs = profile.apply(&world.catalog, model.recommend(&ctx, user, 12));
    assert!(
        genre_share(&world, &recs, "romance") == 0.0,
        "one profile rule removes the genre entirely"
    );
    assert!(!recs.is_empty(), "other genres remain recommendable");
    // And the user can see why any remaining item was allowed.
    for s in &recs {
        assert!(profile.why(&world.catalog, s.item).is_empty());
    }
}

//! Property-based tests over the toolkit's core invariants.

use exrec::algo::assoc::apriori;
use exrec::core::templates;
use exrec::prelude::*;
use exrec::present::treemap::{layout, Layout, Rect, TreemapNode};
use proptest::prelude::*;

proptest! {
    // ---------- rating scales ----------------------------------------

    #[test]
    fn scale_clamp_always_lands_on_scale(value in -100.0f64..100.0) {
        let scale = RatingScale::FIVE_STAR;
        prop_assert!(scale.contains(scale.clamp(value)));
    }

    #[test]
    fn scale_bound_respects_bounds(value in -100.0f64..100.0) {
        let scale = RatingScale::HALF_STAR;
        let b = scale.bound(value);
        prop_assert!(b >= scale.min() && b <= scale.max());
    }

    #[test]
    fn normalize_denormalize_round_trip(unit in 0.0f64..=1.0) {
        let scale = RatingScale::UNIT;
        let v = scale.denormalize_continuous(unit);
        prop_assert!((scale.normalize(v) - unit).abs() < 1e-9);
    }

    // ---------- ratings matrix ----------------------------------------

    #[test]
    fn matrix_rate_unrate_is_identity(
        ops in prop::collection::vec((0u32..8, 0u32..12, 1u32..=5), 1..60)
    ) {
        let mut m = RatingsMatrix::new(8, 12, RatingScale::FIVE_STAR);
        let empty = m.clone();
        for &(u, i, v) in &ops {
            m.rate(UserId(u), ItemId(i), v as f64).unwrap();
        }
        // Indexes agree: every user-row entry appears in the item column.
        for u in m.users() {
            for &(i, v) in m.user_ratings(u) {
                let col = m.item_ratings(i);
                prop_assert!(col.iter().any(|&(cu, cv)| cu == u && cv == v));
            }
        }
        // n_ratings equals the number of distinct (u, i) pairs.
        let mut pairs: Vec<(u32, u32)> = ops.iter().map(|&(u, i, _)| (u, i)).collect();
        pairs.sort_unstable();
        pairs.dedup();
        prop_assert_eq!(m.n_ratings(), pairs.len());
        // Removing everything restores the empty matrix.
        for &(u, i) in &pairs {
            m.unrate(UserId(u), ItemId(i)).unwrap();
        }
        prop_assert_eq!(m, empty);
    }

    #[test]
    fn snapshot_round_trip_any_matrix(
        ops in prop::collection::vec((0u32..6, 0u32..9, 1u32..=5), 0..40)
    ) {
        let mut m = RatingsMatrix::new(6, 9, RatingScale::FIVE_STAR);
        for &(u, i, v) in &ops {
            m.rate(UserId(u), ItemId(i), v as f64).unwrap();
        }
        let decoded = exrec::data::snapshot::decode(&exrec::data::snapshot::encode(&m)).unwrap();
        prop_assert_eq!(decoded, m);
    }

    // ---------- similarity --------------------------------------------

    #[test]
    fn pearson_is_symmetric_and_bounded(
        pairs in prop::collection::vec((1.0f64..5.0, 1.0f64..5.0), 2..30)
    ) {
        let fwd = exrec::algo::similarity::pearson(&pairs);
        let swapped: Vec<(f64, f64)> = pairs.iter().map(|&(a, b)| (b, a)).collect();
        let rev = exrec::algo::similarity::pearson(&swapped);
        prop_assert!((fwd - rev).abs() < 1e-9);
        prop_assert!((-1.0..=1.0).contains(&fwd));
    }

    #[test]
    fn jaccard_bounded_and_symmetric(overlap in 0usize..20, extra_a in 0usize..20, extra_b in 0usize..20) {
        let a = overlap + extra_a;
        let b = overlap + extra_b;
        let j = exrec::algo::similarity::jaccard(overlap, a, b);
        prop_assert!((0.0..=1.0).contains(&j));
        prop_assert!((j - exrec::algo::similarity::jaccard(overlap, b, a)).abs() < 1e-12);
    }

    // ---------- apriori ------------------------------------------------

    #[test]
    fn apriori_supports_are_consistent(
        txs in prop::collection::vec(prop::collection::vec(0u32..6, 0..5), 1..25),
        min_support in 0.1f64..0.9,
    ) {
        let sets = apriori(&txs, min_support, 3);
        for fs in &sets {
            prop_assert!(fs.support >= min_support - 1e-9);
            prop_assert!(fs.support <= 1.0 + 1e-9);
            // Support matches a direct count.
            let count = txs
                .iter()
                .filter(|t| fs.items.iter().all(|s| t.contains(s)))
                .count();
            prop_assert!((fs.support - count as f64 / txs.len() as f64).abs() < 1e-9);
            // Sorted, deduped symbols.
            prop_assert!(fs.items.windows(2).all(|w| w[0] < w[1]));
        }
    }

    // ---------- treemap -------------------------------------------------

    #[test]
    fn treemap_tiles_the_unit_square(weights in prop::collection::vec(0.1f64..50.0, 1..40)) {
        let nodes: Vec<TreemapNode> = weights
            .iter()
            .enumerate()
            .map(|(k, &w)| TreemapNode {
                label: format!("n{k}"),
                weight: w,
                group: k % 4,
                shade: 0.5,
            })
            .collect();
        let t = layout(nodes, Rect::UNIT, Layout::Squarified);
        let total: f64 = t.cells.iter().map(|(_, r)| r.area()).sum();
        prop_assert!((total - 1.0).abs() < 1e-6, "area sum {total}");
        let wsum: f64 = weights.iter().sum();
        for (node, rect) in &t.cells {
            prop_assert!((rect.area() - node.weight / wsum).abs() < 1e-6);
            prop_assert!(rect.x >= -1e-9 && rect.y >= -1e-9);
            prop_assert!(rect.x + rect.w <= 1.0 + 1e-6);
            prop_assert!(rect.y + rect.h <= 1.0 + 1e-6);
        }
    }

    // ---------- templates ------------------------------------------------

    #[test]
    fn template_fill_is_stable_without_slots(text in "[a-zA-Z0-9 .,!?]{0,80}") {
        let vals = std::collections::HashMap::new();
        // Text without braces passes through untouched.
        if !text.contains('{') && !text.contains('}') {
            prop_assert_eq!(templates::fill(&text, &vals), text);
        }
    }

    #[test]
    fn join_natural_contains_every_item(items in prop::collection::vec("[a-z]{1,8}", 0..6)) {
        let joined = templates::join_natural(&items);
        for item in &items {
            prop_assert!(joined.contains(item.as_str()));
        }
    }

    // ---------- aims ------------------------------------------------------

    #[test]
    fn aim_profile_set_semantics(indices in prop::collection::vec(0usize..7, 0..20)) {
        let aims: Vec<Aim> = indices.iter().map(|&i| Aim::ALL[i]).collect();
        let profile: AimProfile = aims.iter().copied().collect();
        for aim in Aim::ALL {
            prop_assert_eq!(profile.contains(aim), aims.contains(&aim));
        }
        prop_assert!(profile.len() <= 7);
    }
}

// ---------- explanation reading cost (plain, non-proptest invariant) ----

#[test]
fn reading_cost_is_monotone_in_fragments() {
    use exrec::core::explanation::{Explanation, Fragment};
    use exrec::core::ExplanationStyle;
    let mut fragments = Vec::new();
    let mut last = 0;
    for k in 0..10 {
        fragments.push(Fragment::Text(format!("sentence number {k} with words")));
        let e = Explanation::new(
            "t",
            ExplanationStyle::ContentBased,
            AimProfile::empty(),
            fragments.clone(),
        );
        assert!(e.reading_cost() > last);
        last = e.reading_cost();
    }
}

/root/repo/target/release/examples/scrutable_holiday-f97595e6560c26b5.d: examples/scrutable_holiday.rs

/root/repo/target/release/examples/scrutable_holiday-f97595e6560c26b5: examples/scrutable_holiday.rs

examples/scrutable_holiday.rs:

/root/repo/target/release/examples/movie_night-411add580e972bd2.d: examples/movie_night.rs

/root/repo/target/release/examples/movie_night-411add580e972bd2: examples/movie_night.rs

examples/movie_night.rs:

/root/repo/target/release/examples/camera_shop-3beee14a994867d7.d: examples/camera_shop.rs

/root/repo/target/release/examples/camera_shop-3beee14a994867d7: examples/camera_shop.rs

examples/camera_shop.rs:

/root/repo/target/release/examples/movie_night-8d7441bf21f8ab9c.d: examples/movie_night.rs

/root/repo/target/release/examples/movie_night-8d7441bf21f8ab9c: examples/movie_night.rs

examples/movie_night.rs:

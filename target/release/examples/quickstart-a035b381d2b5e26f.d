/root/repo/target/release/examples/quickstart-a035b381d2b5e26f.d: examples/quickstart.rs

/root/repo/target/release/examples/quickstart-a035b381d2b5e26f: examples/quickstart.rs

examples/quickstart.rs:

/root/repo/target/release/examples/telemetry-1367adf4eb4ab918.d: examples/telemetry.rs

/root/repo/target/release/examples/telemetry-1367adf4eb4ab918: examples/telemetry.rs

examples/telemetry.rs:

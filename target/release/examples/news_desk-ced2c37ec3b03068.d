/root/repo/target/release/examples/news_desk-ced2c37ec3b03068.d: examples/news_desk.rs

/root/repo/target/release/examples/news_desk-ced2c37ec3b03068: examples/news_desk.rs

examples/news_desk.rs:

/root/repo/target/release/examples/camera_shop-9fbe170aba4cde19.d: examples/camera_shop.rs

/root/repo/target/release/examples/camera_shop-9fbe170aba4cde19: examples/camera_shop.rs

examples/camera_shop.rs:

/root/repo/target/release/examples/similarity_lab-c2d320fc87705f17.d: examples/similarity_lab.rs

/root/repo/target/release/examples/similarity_lab-c2d320fc87705f17: examples/similarity_lab.rs

examples/similarity_lab.rs:

/root/repo/target/release/examples/systems_gallery-f1c209e4e62b883e.d: examples/systems_gallery.rs

/root/repo/target/release/examples/systems_gallery-f1c209e4e62b883e: examples/systems_gallery.rs

examples/systems_gallery.rs:

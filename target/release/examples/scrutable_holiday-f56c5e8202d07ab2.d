/root/repo/target/release/examples/scrutable_holiday-f56c5e8202d07ab2.d: examples/scrutable_holiday.rs

/root/repo/target/release/examples/scrutable_holiday-f56c5e8202d07ab2: examples/scrutable_holiday.rs

examples/scrutable_holiday.rs:

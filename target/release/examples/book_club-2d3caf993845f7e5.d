/root/repo/target/release/examples/book_club-2d3caf993845f7e5.d: examples/book_club.rs

/root/repo/target/release/examples/book_club-2d3caf993845f7e5: examples/book_club.rs

examples/book_club.rs:

/root/repo/target/release/examples/book_club-abfa080e677974fc.d: examples/book_club.rs

/root/repo/target/release/examples/book_club-abfa080e677974fc: examples/book_club.rs

examples/book_club.rs:

/root/repo/target/release/examples/similarity_lab-f58d8a33b514d09b.d: examples/similarity_lab.rs

/root/repo/target/release/examples/similarity_lab-f58d8a33b514d09b: examples/similarity_lab.rs

examples/similarity_lab.rs:

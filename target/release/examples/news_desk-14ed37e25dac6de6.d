/root/repo/target/release/examples/news_desk-14ed37e25dac6de6.d: examples/news_desk.rs

/root/repo/target/release/examples/news_desk-14ed37e25dac6de6: examples/news_desk.rs

examples/news_desk.rs:

/root/repo/target/release/examples/systems_gallery-0a18b9e473627e66.d: examples/systems_gallery.rs

/root/repo/target/release/examples/systems_gallery-0a18b9e473627e66: examples/systems_gallery.rs

examples/systems_gallery.rs:

/root/repo/target/release/examples/quickstart-307e15bcb9221435.d: examples/quickstart.rs

/root/repo/target/release/examples/quickstart-307e15bcb9221435: examples/quickstart.rs

examples/quickstart.rs:

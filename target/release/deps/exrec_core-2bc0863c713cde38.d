/root/repo/target/release/deps/exrec_core-2bc0863c713cde38.d: crates/core/src/lib.rs crates/core/src/aims.rs crates/core/src/engine.rs crates/core/src/explanation.rs crates/core/src/group.rs crates/core/src/influence.rs crates/core/src/interfaces/mod.rs crates/core/src/interfaces/generators.rs crates/core/src/modality.rs crates/core/src/personality.rs crates/core/src/provenance.rs crates/core/src/render.rs crates/core/src/similexp.rs crates/core/src/style.rs crates/core/src/templates.rs

/root/repo/target/release/deps/libexrec_core-2bc0863c713cde38.rlib: crates/core/src/lib.rs crates/core/src/aims.rs crates/core/src/engine.rs crates/core/src/explanation.rs crates/core/src/group.rs crates/core/src/influence.rs crates/core/src/interfaces/mod.rs crates/core/src/interfaces/generators.rs crates/core/src/modality.rs crates/core/src/personality.rs crates/core/src/provenance.rs crates/core/src/render.rs crates/core/src/similexp.rs crates/core/src/style.rs crates/core/src/templates.rs

/root/repo/target/release/deps/libexrec_core-2bc0863c713cde38.rmeta: crates/core/src/lib.rs crates/core/src/aims.rs crates/core/src/engine.rs crates/core/src/explanation.rs crates/core/src/group.rs crates/core/src/influence.rs crates/core/src/interfaces/mod.rs crates/core/src/interfaces/generators.rs crates/core/src/modality.rs crates/core/src/personality.rs crates/core/src/provenance.rs crates/core/src/render.rs crates/core/src/similexp.rs crates/core/src/style.rs crates/core/src/templates.rs

crates/core/src/lib.rs:
crates/core/src/aims.rs:
crates/core/src/engine.rs:
crates/core/src/explanation.rs:
crates/core/src/group.rs:
crates/core/src/influence.rs:
crates/core/src/interfaces/mod.rs:
crates/core/src/interfaces/generators.rs:
crates/core/src/modality.rs:
crates/core/src/personality.rs:
crates/core/src/provenance.rs:
crates/core/src/render.rs:
crates/core/src/similexp.rs:
crates/core/src/style.rs:
crates/core/src/templates.rs:

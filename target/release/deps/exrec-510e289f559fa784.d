/root/repo/target/release/deps/exrec-510e289f559fa784.d: src/lib.rs

/root/repo/target/release/deps/libexrec-510e289f559fa784.rlib: src/lib.rs

/root/repo/target/release/deps/libexrec-510e289f559fa784.rmeta: src/lib.rs

src/lib.rs:

/root/repo/target/release/deps/exrec_bench-aac812a732c02762.d: crates/bench/src/lib.rs

/root/repo/target/release/deps/libexrec_bench-aac812a732c02762.rlib: crates/bench/src/lib.rs

/root/repo/target/release/deps/libexrec_bench-aac812a732c02762.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:

/root/repo/target/release/deps/exrec_interact-daa4ede24a171432.d: crates/interact/src/lib.rs crates/interact/src/critiquing.rs crates/interact/src/mode.rs crates/interact/src/opinions.rs crates/interact/src/profile.rs crates/interact/src/requirements.rs crates/interact/src/session.rs crates/interact/src/store.rs

/root/repo/target/release/deps/libexrec_interact-daa4ede24a171432.rlib: crates/interact/src/lib.rs crates/interact/src/critiquing.rs crates/interact/src/mode.rs crates/interact/src/opinions.rs crates/interact/src/profile.rs crates/interact/src/requirements.rs crates/interact/src/session.rs crates/interact/src/store.rs

/root/repo/target/release/deps/libexrec_interact-daa4ede24a171432.rmeta: crates/interact/src/lib.rs crates/interact/src/critiquing.rs crates/interact/src/mode.rs crates/interact/src/opinions.rs crates/interact/src/profile.rs crates/interact/src/requirements.rs crates/interact/src/session.rs crates/interact/src/store.rs

crates/interact/src/lib.rs:
crates/interact/src/critiquing.rs:
crates/interact/src/mode.rs:
crates/interact/src/opinions.rs:
crates/interact/src/profile.rs:
crates/interact/src/requirements.rs:
crates/interact/src/session.rs:
crates/interact/src/store.rs:

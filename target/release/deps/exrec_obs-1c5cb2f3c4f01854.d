/root/repo/target/release/deps/exrec_obs-1c5cb2f3c4f01854.d: crates/obs/src/lib.rs crates/obs/src/metrics.rs crates/obs/src/span.rs

/root/repo/target/release/deps/libexrec_obs-1c5cb2f3c4f01854.rlib: crates/obs/src/lib.rs crates/obs/src/metrics.rs crates/obs/src/span.rs

/root/repo/target/release/deps/libexrec_obs-1c5cb2f3c4f01854.rmeta: crates/obs/src/lib.rs crates/obs/src/metrics.rs crates/obs/src/span.rs

crates/obs/src/lib.rs:
crates/obs/src/metrics.rs:
crates/obs/src/span.rs:

/root/repo/target/release/deps/exrec_types-056748c4bdc3ca19.d: crates/types/src/lib.rs crates/types/src/attribute.rs crates/types/src/domain.rs crates/types/src/error.rs crates/types/src/id.rs crates/types/src/rating.rs crates/types/src/time.rs

/root/repo/target/release/deps/libexrec_types-056748c4bdc3ca19.rlib: crates/types/src/lib.rs crates/types/src/attribute.rs crates/types/src/domain.rs crates/types/src/error.rs crates/types/src/id.rs crates/types/src/rating.rs crates/types/src/time.rs

/root/repo/target/release/deps/libexrec_types-056748c4bdc3ca19.rmeta: crates/types/src/lib.rs crates/types/src/attribute.rs crates/types/src/domain.rs crates/types/src/error.rs crates/types/src/id.rs crates/types/src/rating.rs crates/types/src/time.rs

crates/types/src/lib.rs:
crates/types/src/attribute.rs:
crates/types/src/domain.rs:
crates/types/src/error.rs:
crates/types/src/id.rs:
crates/types/src/rating.rs:
crates/types/src/time.rs:

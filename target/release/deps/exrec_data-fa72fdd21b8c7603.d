/root/repo/target/release/deps/exrec_data-fa72fdd21b8c7603.d: crates/data/src/lib.rs crates/data/src/catalog.rs crates/data/src/csv.rs crates/data/src/matrix.rs crates/data/src/snapshot.rs crates/data/src/split.rs crates/data/src/synth/mod.rs crates/data/src/synth/books.rs crates/data/src/synth/cameras.rs crates/data/src/synth/holidays.rs crates/data/src/synth/movies.rs crates/data/src/synth/names.rs crates/data/src/synth/news.rs crates/data/src/synth/restaurants.rs crates/data/src/text.rs

/root/repo/target/release/deps/libexrec_data-fa72fdd21b8c7603.rlib: crates/data/src/lib.rs crates/data/src/catalog.rs crates/data/src/csv.rs crates/data/src/matrix.rs crates/data/src/snapshot.rs crates/data/src/split.rs crates/data/src/synth/mod.rs crates/data/src/synth/books.rs crates/data/src/synth/cameras.rs crates/data/src/synth/holidays.rs crates/data/src/synth/movies.rs crates/data/src/synth/names.rs crates/data/src/synth/news.rs crates/data/src/synth/restaurants.rs crates/data/src/text.rs

/root/repo/target/release/deps/libexrec_data-fa72fdd21b8c7603.rmeta: crates/data/src/lib.rs crates/data/src/catalog.rs crates/data/src/csv.rs crates/data/src/matrix.rs crates/data/src/snapshot.rs crates/data/src/split.rs crates/data/src/synth/mod.rs crates/data/src/synth/books.rs crates/data/src/synth/cameras.rs crates/data/src/synth/holidays.rs crates/data/src/synth/movies.rs crates/data/src/synth/names.rs crates/data/src/synth/news.rs crates/data/src/synth/restaurants.rs crates/data/src/text.rs

crates/data/src/lib.rs:
crates/data/src/catalog.rs:
crates/data/src/csv.rs:
crates/data/src/matrix.rs:
crates/data/src/snapshot.rs:
crates/data/src/split.rs:
crates/data/src/synth/mod.rs:
crates/data/src/synth/books.rs:
crates/data/src/synth/cameras.rs:
crates/data/src/synth/holidays.rs:
crates/data/src/synth/movies.rs:
crates/data/src/synth/names.rs:
crates/data/src/synth/news.rs:
crates/data/src/synth/restaurants.rs:
crates/data/src/text.rs:

/root/repo/target/release/deps/bytes-55ebdc12b9f11276.d: vendor/bytes/src/lib.rs

/root/repo/target/release/deps/libbytes-55ebdc12b9f11276.rlib: vendor/bytes/src/lib.rs

/root/repo/target/release/deps/libbytes-55ebdc12b9f11276.rmeta: vendor/bytes/src/lib.rs

vendor/bytes/src/lib.rs:

/root/repo/target/release/deps/exrec_bench-7cd996e002472a61.d: crates/bench/src/lib.rs

/root/repo/target/release/deps/exrec_bench-7cd996e002472a61: crates/bench/src/lib.rs

crates/bench/src/lib.rs:

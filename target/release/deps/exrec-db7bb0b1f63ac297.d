/root/repo/target/release/deps/exrec-db7bb0b1f63ac297.d: src/lib.rs

/root/repo/target/release/deps/exrec-db7bb0b1f63ac297: src/lib.rs

src/lib.rs:

/root/repo/target/release/deps/explain-bb3c2b7c8c7d834e.d: crates/bench/benches/explain.rs

/root/repo/target/release/deps/explain-bb3c2b7c8c7d834e: crates/bench/benches/explain.rs

crates/bench/benches/explain.rs:

/root/repo/target/release/deps/algo-a9a7fe0e8ea8876b.d: crates/bench/benches/algo.rs

/root/repo/target/release/deps/algo-a9a7fe0e8ea8876b: crates/bench/benches/algo.rs

crates/bench/benches/algo.rs:

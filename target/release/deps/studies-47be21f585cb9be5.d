/root/repo/target/release/deps/studies-47be21f585cb9be5.d: crates/bench/benches/studies.rs

/root/repo/target/release/deps/studies-47be21f585cb9be5: crates/bench/benches/studies.rs

crates/bench/benches/studies.rs:

/root/repo/target/release/deps/repro-6c33b08e1048aa93.d: crates/bench/src/bin/repro.rs

/root/repo/target/release/deps/repro-6c33b08e1048aa93: crates/bench/src/bin/repro.rs

crates/bench/src/bin/repro.rs:

/root/repo/target/release/deps/exrec_registry-dd0aab791a162235.d: crates/registry/src/lib.rs crates/registry/src/live.rs crates/registry/src/systems.rs crates/registry/src/tables.rs

/root/repo/target/release/deps/libexrec_registry-dd0aab791a162235.rlib: crates/registry/src/lib.rs crates/registry/src/live.rs crates/registry/src/systems.rs crates/registry/src/tables.rs

/root/repo/target/release/deps/libexrec_registry-dd0aab791a162235.rmeta: crates/registry/src/lib.rs crates/registry/src/live.rs crates/registry/src/systems.rs crates/registry/src/tables.rs

crates/registry/src/lib.rs:
crates/registry/src/live.rs:
crates/registry/src/systems.rs:
crates/registry/src/tables.rs:

/root/repo/target/release/deps/serde_derive-efe8abbe5b95fee1.d: vendor/serde_derive/src/lib.rs

/root/repo/target/release/deps/libserde_derive-efe8abbe5b95fee1.so: vendor/serde_derive/src/lib.rs

vendor/serde_derive/src/lib.rs:

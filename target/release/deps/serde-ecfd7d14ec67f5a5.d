/root/repo/target/release/deps/serde-ecfd7d14ec67f5a5.d: vendor/serde/src/lib.rs

/root/repo/target/release/deps/libserde-ecfd7d14ec67f5a5.rlib: vendor/serde/src/lib.rs

/root/repo/target/release/deps/libserde-ecfd7d14ec67f5a5.rmeta: vendor/serde/src/lib.rs

vendor/serde/src/lib.rs:

/root/repo/target/release/deps/exrec_eval-3406e886679a9459.d: crates/eval/src/lib.rs crates/eval/src/questionnaire.rs crates/eval/src/report.rs crates/eval/src/simuser.rs crates/eval/src/stats.rs crates/eval/src/studies/mod.rs crates/eval/src/studies/accuracy.rs crates/eval/src/studies/effectiveness.rs crates/eval/src/studies/efficiency.rs crates/eval/src/studies/modality.rs crates/eval/src/studies/persuasion_herlocker.rs crates/eval/src/studies/rating_shift.rs crates/eval/src/studies/satisfaction.rs crates/eval/src/studies/scrutability.rs crates/eval/src/studies/tradeoffs.rs crates/eval/src/studies/transparency.rs crates/eval/src/studies/trust_loyalty.rs

/root/repo/target/release/deps/libexrec_eval-3406e886679a9459.rlib: crates/eval/src/lib.rs crates/eval/src/questionnaire.rs crates/eval/src/report.rs crates/eval/src/simuser.rs crates/eval/src/stats.rs crates/eval/src/studies/mod.rs crates/eval/src/studies/accuracy.rs crates/eval/src/studies/effectiveness.rs crates/eval/src/studies/efficiency.rs crates/eval/src/studies/modality.rs crates/eval/src/studies/persuasion_herlocker.rs crates/eval/src/studies/rating_shift.rs crates/eval/src/studies/satisfaction.rs crates/eval/src/studies/scrutability.rs crates/eval/src/studies/tradeoffs.rs crates/eval/src/studies/transparency.rs crates/eval/src/studies/trust_loyalty.rs

/root/repo/target/release/deps/libexrec_eval-3406e886679a9459.rmeta: crates/eval/src/lib.rs crates/eval/src/questionnaire.rs crates/eval/src/report.rs crates/eval/src/simuser.rs crates/eval/src/stats.rs crates/eval/src/studies/mod.rs crates/eval/src/studies/accuracy.rs crates/eval/src/studies/effectiveness.rs crates/eval/src/studies/efficiency.rs crates/eval/src/studies/modality.rs crates/eval/src/studies/persuasion_herlocker.rs crates/eval/src/studies/rating_shift.rs crates/eval/src/studies/satisfaction.rs crates/eval/src/studies/scrutability.rs crates/eval/src/studies/tradeoffs.rs crates/eval/src/studies/transparency.rs crates/eval/src/studies/trust_loyalty.rs

crates/eval/src/lib.rs:
crates/eval/src/questionnaire.rs:
crates/eval/src/report.rs:
crates/eval/src/simuser.rs:
crates/eval/src/stats.rs:
crates/eval/src/studies/mod.rs:
crates/eval/src/studies/accuracy.rs:
crates/eval/src/studies/effectiveness.rs:
crates/eval/src/studies/efficiency.rs:
crates/eval/src/studies/modality.rs:
crates/eval/src/studies/persuasion_herlocker.rs:
crates/eval/src/studies/rating_shift.rs:
crates/eval/src/studies/satisfaction.rs:
crates/eval/src/studies/scrutability.rs:
crates/eval/src/studies/tradeoffs.rs:
crates/eval/src/studies/transparency.rs:
crates/eval/src/studies/trust_loyalty.rs:

/root/repo/target/release/deps/rand_chacha-ca30e0669782dd60.d: vendor/rand_chacha/src/lib.rs

/root/repo/target/release/deps/librand_chacha-ca30e0669782dd60.rlib: vendor/rand_chacha/src/lib.rs

/root/repo/target/release/deps/librand_chacha-ca30e0669782dd60.rmeta: vendor/rand_chacha/src/lib.rs

vendor/rand_chacha/src/lib.rs:

/root/repo/target/release/deps/tables-519d679cf4b7d886.d: crates/bench/benches/tables.rs

/root/repo/target/release/deps/tables-519d679cf4b7d886: crates/bench/benches/tables.rs

crates/bench/benches/tables.rs:

/root/repo/target/release/deps/repro-175617d14fd21e9e.d: crates/bench/src/bin/repro.rs

/root/repo/target/release/deps/repro-175617d14fd21e9e: crates/bench/src/bin/repro.rs

crates/bench/src/bin/repro.rs:

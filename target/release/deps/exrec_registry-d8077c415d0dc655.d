/root/repo/target/release/deps/exrec_registry-d8077c415d0dc655.d: crates/registry/src/lib.rs crates/registry/src/live.rs crates/registry/src/systems.rs crates/registry/src/tables.rs

/root/repo/target/release/deps/libexrec_registry-d8077c415d0dc655.rlib: crates/registry/src/lib.rs crates/registry/src/live.rs crates/registry/src/systems.rs crates/registry/src/tables.rs

/root/repo/target/release/deps/libexrec_registry-d8077c415d0dc655.rmeta: crates/registry/src/lib.rs crates/registry/src/live.rs crates/registry/src/systems.rs crates/registry/src/tables.rs

crates/registry/src/lib.rs:
crates/registry/src/live.rs:
crates/registry/src/systems.rs:
crates/registry/src/tables.rs:

/root/repo/target/release/deps/serde_json-00adcbd09a9a6317.d: vendor/serde_json/src/lib.rs

/root/repo/target/release/deps/libserde_json-00adcbd09a9a6317.rlib: vendor/serde_json/src/lib.rs

/root/repo/target/release/deps/libserde_json-00adcbd09a9a6317.rmeta: vendor/serde_json/src/lib.rs

vendor/serde_json/src/lib.rs:

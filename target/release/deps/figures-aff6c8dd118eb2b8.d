/root/repo/target/release/deps/figures-aff6c8dd118eb2b8.d: crates/bench/benches/figures.rs

/root/repo/target/release/deps/figures-aff6c8dd118eb2b8: crates/bench/benches/figures.rs

crates/bench/benches/figures.rs:

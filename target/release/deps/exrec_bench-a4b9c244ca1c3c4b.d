/root/repo/target/release/deps/exrec_bench-a4b9c244ca1c3c4b.d: crates/bench/src/lib.rs

/root/repo/target/release/deps/libexrec_bench-a4b9c244ca1c3c4b.rlib: crates/bench/src/lib.rs

/root/repo/target/release/deps/libexrec_bench-a4b9c244ca1c3c4b.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:

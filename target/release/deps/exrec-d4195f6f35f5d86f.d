/root/repo/target/release/deps/exrec-d4195f6f35f5d86f.d: src/lib.rs

/root/repo/target/release/deps/libexrec-d4195f6f35f5d86f.rlib: src/lib.rs

/root/repo/target/release/deps/libexrec-d4195f6f35f5d86f.rmeta: src/lib.rs

src/lib.rs:

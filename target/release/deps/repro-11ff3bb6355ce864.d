/root/repo/target/release/deps/repro-11ff3bb6355ce864.d: crates/bench/src/bin/repro.rs

/root/repo/target/release/deps/repro-11ff3bb6355ce864: crates/bench/src/bin/repro.rs

crates/bench/src/bin/repro.rs:

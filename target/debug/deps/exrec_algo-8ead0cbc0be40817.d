/root/repo/target/debug/deps/exrec_algo-8ead0cbc0be40817.d: crates/algo/src/lib.rs crates/algo/src/assoc.rs crates/algo/src/baseline.rs crates/algo/src/content/mod.rs crates/algo/src/content/naive_bayes.rs crates/algo/src/content/tfidf.rs crates/algo/src/hybrid.rs crates/algo/src/instrument.rs crates/algo/src/item_knn.rs crates/algo/src/knowledge.rs crates/algo/src/metrics.rs crates/algo/src/mf.rs crates/algo/src/neighbors.rs crates/algo/src/recommender.rs crates/algo/src/similarity.rs crates/algo/src/user_knn.rs Cargo.toml

/root/repo/target/debug/deps/libexrec_algo-8ead0cbc0be40817.rmeta: crates/algo/src/lib.rs crates/algo/src/assoc.rs crates/algo/src/baseline.rs crates/algo/src/content/mod.rs crates/algo/src/content/naive_bayes.rs crates/algo/src/content/tfidf.rs crates/algo/src/hybrid.rs crates/algo/src/instrument.rs crates/algo/src/item_knn.rs crates/algo/src/knowledge.rs crates/algo/src/metrics.rs crates/algo/src/mf.rs crates/algo/src/neighbors.rs crates/algo/src/recommender.rs crates/algo/src/similarity.rs crates/algo/src/user_knn.rs Cargo.toml

crates/algo/src/lib.rs:
crates/algo/src/assoc.rs:
crates/algo/src/baseline.rs:
crates/algo/src/content/mod.rs:
crates/algo/src/content/naive_bayes.rs:
crates/algo/src/content/tfidf.rs:
crates/algo/src/hybrid.rs:
crates/algo/src/instrument.rs:
crates/algo/src/item_knn.rs:
crates/algo/src/knowledge.rs:
crates/algo/src/metrics.rs:
crates/algo/src/mf.rs:
crates/algo/src/neighbors.rs:
crates/algo/src/recommender.rs:
crates/algo/src/similarity.rs:
crates/algo/src/user_knn.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

/root/repo/target/debug/deps/telemetry-a6e61c3e928a4aaf.d: tests/telemetry.rs Cargo.toml

/root/repo/target/debug/deps/libtelemetry-a6e61c3e928a4aaf.rmeta: tests/telemetry.rs Cargo.toml

tests/telemetry.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

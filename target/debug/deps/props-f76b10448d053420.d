/root/repo/target/debug/deps/props-f76b10448d053420.d: crates/eval/tests/props.rs Cargo.toml

/root/repo/target/debug/deps/libprops-f76b10448d053420.rmeta: crates/eval/tests/props.rs Cargo.toml

crates/eval/tests/props.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

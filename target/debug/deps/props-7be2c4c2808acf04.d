/root/repo/target/debug/deps/props-7be2c4c2808acf04.d: crates/present/tests/props.rs Cargo.toml

/root/repo/target/debug/deps/libprops-7be2c4c2808acf04.rmeta: crates/present/tests/props.rs Cargo.toml

crates/present/tests/props.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

/root/repo/target/debug/deps/exrec-c674cd8caaa4a941.d: src/lib.rs

/root/repo/target/debug/deps/exrec-c674cd8caaa4a941: src/lib.rs

src/lib.rs:

/root/repo/target/debug/deps/persistence-9922a88278f29c8e.d: tests/persistence.rs Cargo.toml

/root/repo/target/debug/deps/libpersistence-9922a88278f29c8e.rmeta: tests/persistence.rs Cargo.toml

tests/persistence.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

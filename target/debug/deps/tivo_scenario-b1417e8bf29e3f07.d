/root/repo/target/debug/deps/tivo_scenario-b1417e8bf29e3f07.d: tests/tivo_scenario.rs Cargo.toml

/root/repo/target/debug/deps/libtivo_scenario-b1417e8bf29e3f07.rmeta: tests/tivo_scenario.rs Cargo.toml

tests/tivo_scenario.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

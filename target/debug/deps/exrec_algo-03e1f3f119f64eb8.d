/root/repo/target/debug/deps/exrec_algo-03e1f3f119f64eb8.d: crates/algo/src/lib.rs crates/algo/src/assoc.rs crates/algo/src/baseline.rs crates/algo/src/content/mod.rs crates/algo/src/content/naive_bayes.rs crates/algo/src/content/tfidf.rs crates/algo/src/hybrid.rs crates/algo/src/instrument.rs crates/algo/src/item_knn.rs crates/algo/src/knowledge.rs crates/algo/src/metrics.rs crates/algo/src/mf.rs crates/algo/src/neighbors.rs crates/algo/src/recommender.rs crates/algo/src/similarity.rs crates/algo/src/user_knn.rs

/root/repo/target/debug/deps/exrec_algo-03e1f3f119f64eb8: crates/algo/src/lib.rs crates/algo/src/assoc.rs crates/algo/src/baseline.rs crates/algo/src/content/mod.rs crates/algo/src/content/naive_bayes.rs crates/algo/src/content/tfidf.rs crates/algo/src/hybrid.rs crates/algo/src/instrument.rs crates/algo/src/item_knn.rs crates/algo/src/knowledge.rs crates/algo/src/metrics.rs crates/algo/src/mf.rs crates/algo/src/neighbors.rs crates/algo/src/recommender.rs crates/algo/src/similarity.rs crates/algo/src/user_knn.rs

crates/algo/src/lib.rs:
crates/algo/src/assoc.rs:
crates/algo/src/baseline.rs:
crates/algo/src/content/mod.rs:
crates/algo/src/content/naive_bayes.rs:
crates/algo/src/content/tfidf.rs:
crates/algo/src/hybrid.rs:
crates/algo/src/instrument.rs:
crates/algo/src/item_knn.rs:
crates/algo/src/knowledge.rs:
crates/algo/src/metrics.rs:
crates/algo/src/mf.rs:
crates/algo/src/neighbors.rs:
crates/algo/src/recommender.rs:
crates/algo/src/similarity.rs:
crates/algo/src/user_knn.rs:

/root/repo/target/debug/deps/exrec_interact-a88ad9beded3a7bc.d: crates/interact/src/lib.rs crates/interact/src/critiquing.rs crates/interact/src/mode.rs crates/interact/src/opinions.rs crates/interact/src/profile.rs crates/interact/src/requirements.rs crates/interact/src/session.rs crates/interact/src/store.rs Cargo.toml

/root/repo/target/debug/deps/libexrec_interact-a88ad9beded3a7bc.rmeta: crates/interact/src/lib.rs crates/interact/src/critiquing.rs crates/interact/src/mode.rs crates/interact/src/opinions.rs crates/interact/src/profile.rs crates/interact/src/requirements.rs crates/interact/src/session.rs crates/interact/src/store.rs Cargo.toml

crates/interact/src/lib.rs:
crates/interact/src/critiquing.rs:
crates/interact/src/mode.rs:
crates/interact/src/opinions.rs:
crates/interact/src/profile.rs:
crates/interact/src/requirements.rs:
crates/interact/src/session.rs:
crates/interact/src/store.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

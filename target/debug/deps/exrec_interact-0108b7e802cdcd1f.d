/root/repo/target/debug/deps/exrec_interact-0108b7e802cdcd1f.d: crates/interact/src/lib.rs crates/interact/src/critiquing.rs crates/interact/src/mode.rs crates/interact/src/opinions.rs crates/interact/src/profile.rs crates/interact/src/requirements.rs crates/interact/src/session.rs crates/interact/src/store.rs

/root/repo/target/debug/deps/exrec_interact-0108b7e802cdcd1f: crates/interact/src/lib.rs crates/interact/src/critiquing.rs crates/interact/src/mode.rs crates/interact/src/opinions.rs crates/interact/src/profile.rs crates/interact/src/requirements.rs crates/interact/src/session.rs crates/interact/src/store.rs

crates/interact/src/lib.rs:
crates/interact/src/critiquing.rs:
crates/interact/src/mode.rs:
crates/interact/src/opinions.rs:
crates/interact/src/profile.rs:
crates/interact/src/requirements.rs:
crates/interact/src/session.rs:
crates/interact/src/store.rs:

/root/repo/target/debug/deps/exrec_obs-60e86f5086dc30f7.d: crates/obs/src/lib.rs crates/obs/src/metrics.rs crates/obs/src/span.rs Cargo.toml

/root/repo/target/debug/deps/libexrec_obs-60e86f5086dc30f7.rmeta: crates/obs/src/lib.rs crates/obs/src/metrics.rs crates/obs/src/span.rs Cargo.toml

crates/obs/src/lib.rs:
crates/obs/src/metrics.rs:
crates/obs/src/span.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

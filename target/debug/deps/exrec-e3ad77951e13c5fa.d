/root/repo/target/debug/deps/exrec-e3ad77951e13c5fa.d: src/lib.rs

/root/repo/target/debug/deps/libexrec-e3ad77951e13c5fa.rlib: src/lib.rs

/root/repo/target/debug/deps/libexrec-e3ad77951e13c5fa.rmeta: src/lib.rs

src/lib.rs:

/root/repo/target/debug/deps/exrec_present-069f44e7a9c7b4a5.d: crates/present/src/lib.rs crates/present/src/critiques.rs crates/present/src/diversify.rs crates/present/src/facets.rs crates/present/src/mode.rs crates/present/src/predicted.rs crates/present/src/similar.rs crates/present/src/structured.rs crates/present/src/top.rs crates/present/src/treemap.rs Cargo.toml

/root/repo/target/debug/deps/libexrec_present-069f44e7a9c7b4a5.rmeta: crates/present/src/lib.rs crates/present/src/critiques.rs crates/present/src/diversify.rs crates/present/src/facets.rs crates/present/src/mode.rs crates/present/src/predicted.rs crates/present/src/similar.rs crates/present/src/structured.rs crates/present/src/top.rs crates/present/src/treemap.rs Cargo.toml

crates/present/src/lib.rs:
crates/present/src/critiques.rs:
crates/present/src/diversify.rs:
crates/present/src/facets.rs:
crates/present/src/mode.rs:
crates/present/src/predicted.rs:
crates/present/src/similar.rs:
crates/present/src/structured.rs:
crates/present/src/top.rs:
crates/present/src/treemap.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

/root/repo/target/debug/deps/pipeline-ba2b34e14841bc2d.d: tests/pipeline.rs

/root/repo/target/debug/deps/pipeline-ba2b34e14841bc2d: tests/pipeline.rs

tests/pipeline.rs:

/root/repo/target/debug/deps/props-e4384aeba183afc7.d: crates/data/tests/props.rs

/root/repo/target/debug/deps/props-e4384aeba183afc7: crates/data/tests/props.rs

crates/data/tests/props.rs:

/root/repo/target/debug/deps/exrec_bench-08243d72347adc5d.d: crates/bench/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libexrec_bench-08243d72347adc5d.rmeta: crates/bench/src/lib.rs Cargo.toml

crates/bench/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

/root/repo/target/debug/deps/rand_chacha-7e03161366b25a36.d: vendor/rand_chacha/src/lib.rs

/root/repo/target/debug/deps/librand_chacha-7e03161366b25a36.rlib: vendor/rand_chacha/src/lib.rs

/root/repo/target/debug/deps/librand_chacha-7e03161366b25a36.rmeta: vendor/rand_chacha/src/lib.rs

vendor/rand_chacha/src/lib.rs:

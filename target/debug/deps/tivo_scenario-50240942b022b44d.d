/root/repo/target/debug/deps/tivo_scenario-50240942b022b44d.d: tests/tivo_scenario.rs

/root/repo/target/debug/deps/tivo_scenario-50240942b022b44d: tests/tivo_scenario.rs

tests/tivo_scenario.rs:

/root/repo/target/debug/deps/props-aafcf38e9057581e.d: crates/data/tests/props.rs Cargo.toml

/root/repo/target/debug/deps/libprops-aafcf38e9057581e.rmeta: crates/data/tests/props.rs Cargo.toml

crates/data/tests/props.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

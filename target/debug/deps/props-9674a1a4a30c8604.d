/root/repo/target/debug/deps/props-9674a1a4a30c8604.d: crates/present/tests/props.rs

/root/repo/target/debug/deps/props-9674a1a4a30c8604: crates/present/tests/props.rs

crates/present/tests/props.rs:

/root/repo/target/debug/deps/pipeline-686f44301e509d06.d: tests/pipeline.rs Cargo.toml

/root/repo/target/debug/deps/libpipeline-686f44301e509d06.rmeta: tests/pipeline.rs Cargo.toml

tests/pipeline.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

/root/repo/target/debug/deps/study_shapes-510a10fcdc3d589f.d: tests/study_shapes.rs

/root/repo/target/debug/deps/study_shapes-510a10fcdc3d589f: tests/study_shapes.rs

tests/study_shapes.rs:

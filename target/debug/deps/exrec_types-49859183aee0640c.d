/root/repo/target/debug/deps/exrec_types-49859183aee0640c.d: crates/types/src/lib.rs crates/types/src/attribute.rs crates/types/src/domain.rs crates/types/src/error.rs crates/types/src/id.rs crates/types/src/rating.rs crates/types/src/time.rs Cargo.toml

/root/repo/target/debug/deps/libexrec_types-49859183aee0640c.rmeta: crates/types/src/lib.rs crates/types/src/attribute.rs crates/types/src/domain.rs crates/types/src/error.rs crates/types/src/id.rs crates/types/src/rating.rs crates/types/src/time.rs Cargo.toml

crates/types/src/lib.rs:
crates/types/src/attribute.rs:
crates/types/src/domain.rs:
crates/types/src/error.rs:
crates/types/src/id.rs:
crates/types/src/rating.rs:
crates/types/src/time.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

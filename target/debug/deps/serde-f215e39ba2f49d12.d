/root/repo/target/debug/deps/serde-f215e39ba2f49d12.d: vendor/serde/src/lib.rs

/root/repo/target/debug/deps/libserde-f215e39ba2f49d12.rlib: vendor/serde/src/lib.rs

/root/repo/target/debug/deps/libserde-f215e39ba2f49d12.rmeta: vendor/serde/src/lib.rs

vendor/serde/src/lib.rs:

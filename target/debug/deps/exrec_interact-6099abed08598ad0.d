/root/repo/target/debug/deps/exrec_interact-6099abed08598ad0.d: crates/interact/src/lib.rs crates/interact/src/critiquing.rs crates/interact/src/mode.rs crates/interact/src/opinions.rs crates/interact/src/profile.rs crates/interact/src/requirements.rs crates/interact/src/session.rs crates/interact/src/store.rs

/root/repo/target/debug/deps/libexrec_interact-6099abed08598ad0.rlib: crates/interact/src/lib.rs crates/interact/src/critiquing.rs crates/interact/src/mode.rs crates/interact/src/opinions.rs crates/interact/src/profile.rs crates/interact/src/requirements.rs crates/interact/src/session.rs crates/interact/src/store.rs

/root/repo/target/debug/deps/libexrec_interact-6099abed08598ad0.rmeta: crates/interact/src/lib.rs crates/interact/src/critiquing.rs crates/interact/src/mode.rs crates/interact/src/opinions.rs crates/interact/src/profile.rs crates/interact/src/requirements.rs crates/interact/src/session.rs crates/interact/src/store.rs

crates/interact/src/lib.rs:
crates/interact/src/critiquing.rs:
crates/interact/src/mode.rs:
crates/interact/src/opinions.rs:
crates/interact/src/profile.rs:
crates/interact/src/requirements.rs:
crates/interact/src/session.rs:
crates/interact/src/store.rs:

/root/repo/target/debug/deps/exrec_interact-7c248911f67d23b7.d: crates/interact/src/lib.rs crates/interact/src/critiquing.rs crates/interact/src/mode.rs crates/interact/src/opinions.rs crates/interact/src/profile.rs crates/interact/src/requirements.rs crates/interact/src/session.rs crates/interact/src/store.rs Cargo.toml

/root/repo/target/debug/deps/libexrec_interact-7c248911f67d23b7.rmeta: crates/interact/src/lib.rs crates/interact/src/critiquing.rs crates/interact/src/mode.rs crates/interact/src/opinions.rs crates/interact/src/profile.rs crates/interact/src/requirements.rs crates/interact/src/session.rs crates/interact/src/store.rs Cargo.toml

crates/interact/src/lib.rs:
crates/interact/src/critiquing.rs:
crates/interact/src/mode.rs:
crates/interact/src/opinions.rs:
crates/interact/src/profile.rs:
crates/interact/src/requirements.rs:
crates/interact/src/session.rs:
crates/interact/src/store.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

/root/repo/target/debug/deps/exrec_interact-e59ac7ecd29b41a0.d: crates/interact/src/lib.rs crates/interact/src/critiquing.rs crates/interact/src/mode.rs crates/interact/src/opinions.rs crates/interact/src/profile.rs crates/interact/src/requirements.rs crates/interact/src/session.rs crates/interact/src/store.rs

/root/repo/target/debug/deps/libexrec_interact-e59ac7ecd29b41a0.rlib: crates/interact/src/lib.rs crates/interact/src/critiquing.rs crates/interact/src/mode.rs crates/interact/src/opinions.rs crates/interact/src/profile.rs crates/interact/src/requirements.rs crates/interact/src/session.rs crates/interact/src/store.rs

/root/repo/target/debug/deps/libexrec_interact-e59ac7ecd29b41a0.rmeta: crates/interact/src/lib.rs crates/interact/src/critiquing.rs crates/interact/src/mode.rs crates/interact/src/opinions.rs crates/interact/src/profile.rs crates/interact/src/requirements.rs crates/interact/src/session.rs crates/interact/src/store.rs

crates/interact/src/lib.rs:
crates/interact/src/critiquing.rs:
crates/interact/src/mode.rs:
crates/interact/src/opinions.rs:
crates/interact/src/profile.rs:
crates/interact/src/requirements.rs:
crates/interact/src/session.rs:
crates/interact/src/store.rs:

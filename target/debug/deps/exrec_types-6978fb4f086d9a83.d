/root/repo/target/debug/deps/exrec_types-6978fb4f086d9a83.d: crates/types/src/lib.rs crates/types/src/attribute.rs crates/types/src/domain.rs crates/types/src/error.rs crates/types/src/id.rs crates/types/src/rating.rs crates/types/src/time.rs

/root/repo/target/debug/deps/exrec_types-6978fb4f086d9a83: crates/types/src/lib.rs crates/types/src/attribute.rs crates/types/src/domain.rs crates/types/src/error.rs crates/types/src/id.rs crates/types/src/rating.rs crates/types/src/time.rs

crates/types/src/lib.rs:
crates/types/src/attribute.rs:
crates/types/src/domain.rs:
crates/types/src/error.rs:
crates/types/src/id.rs:
crates/types/src/rating.rs:
crates/types/src/time.rs:

/root/repo/target/debug/deps/repro-a61a0c0c49589ac0.d: crates/bench/src/bin/repro.rs

/root/repo/target/debug/deps/repro-a61a0c0c49589ac0: crates/bench/src/bin/repro.rs

crates/bench/src/bin/repro.rs:

/root/repo/target/debug/deps/bytes-5e1378c7cdcd42d3.d: vendor/bytes/src/lib.rs

/root/repo/target/debug/deps/bytes-5e1378c7cdcd42d3: vendor/bytes/src/lib.rs

vendor/bytes/src/lib.rs:

/root/repo/target/debug/deps/exrec_present-71d620342d80a375.d: crates/present/src/lib.rs crates/present/src/critiques.rs crates/present/src/diversify.rs crates/present/src/facets.rs crates/present/src/mode.rs crates/present/src/predicted.rs crates/present/src/similar.rs crates/present/src/structured.rs crates/present/src/top.rs crates/present/src/treemap.rs

/root/repo/target/debug/deps/libexrec_present-71d620342d80a375.rlib: crates/present/src/lib.rs crates/present/src/critiques.rs crates/present/src/diversify.rs crates/present/src/facets.rs crates/present/src/mode.rs crates/present/src/predicted.rs crates/present/src/similar.rs crates/present/src/structured.rs crates/present/src/top.rs crates/present/src/treemap.rs

/root/repo/target/debug/deps/libexrec_present-71d620342d80a375.rmeta: crates/present/src/lib.rs crates/present/src/critiques.rs crates/present/src/diversify.rs crates/present/src/facets.rs crates/present/src/mode.rs crates/present/src/predicted.rs crates/present/src/similar.rs crates/present/src/structured.rs crates/present/src/top.rs crates/present/src/treemap.rs

crates/present/src/lib.rs:
crates/present/src/critiques.rs:
crates/present/src/diversify.rs:
crates/present/src/facets.rs:
crates/present/src/mode.rs:
crates/present/src/predicted.rs:
crates/present/src/similar.rs:
crates/present/src/structured.rs:
crates/present/src/top.rs:
crates/present/src/treemap.rs:
